// Command slingshotd runs a simulated Slingshot vRAN deployment and
// narrates the resilience events: bring-up, traffic, a PHY failure with
// in-switch detection and failover, and a planned zero-downtime migration.
//
// Usage:
//
//	slingshotd [-seconds 4] [-baseline] [-kill-at 1.5] [-migrate-at 3] [-trace out.json]
//	slingshotd -cells 20 -ues 400          # sharded metro fleet, narrated summary
//	slingshotd -serve :8080 -scenario fleet-chaos -ckpt-every 40
//	                                       # resident server: /metrics /events /checkpoint /restore
package main

import (
	"flag"
	"fmt"
	"os"

	"slingshot/internal/ckpt"
	"slingshot/internal/core"
	"slingshot/internal/orion"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
	"slingshot/internal/trace"
	"slingshot/internal/traffic"
	"slingshot/internal/ue"
)

func main() {
	var (
		seconds   = flag.Float64("seconds", 4, "virtual seconds to simulate")
		baseline  = flag.Bool("baseline", false, "run the no-Slingshot hot-backup baseline")
		killAt    = flag.Float64("kill-at", 2.5, "kill the active PHY at this time (0 = never)")
		migrateAt = flag.Float64("migrate-at", 1.2, "planned migration at this time (0 = never; Slingshot only)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		tracePath = flag.String("trace", "", "record cross-layer events and write a Chrome trace_event JSON here (open in chrome://tracing or Perfetto)")
		cells     = flag.Int("cells", 0, "run a sharded multi-cell fleet of this size instead of the single-cell narration")
		ues       = flag.Int("ues", 0, "total UEs across the fleet (with -cells; default 10 per cell)")
		profile   = flag.String("profile", "", "correlated-failure scenario for the fleet: independent, rack-loss, partition, upgrade-wave (with -cells; default fleet-chaos)")
		serve     = flag.String("serve", "", "run as a resident HTTP server on this address (e.g. :8080); exposes /status /metrics /events /checkpoint /restore")
		scenario  = flag.String("scenario", "fleet-chaos", "fleet scenario for -serve: "+fmt.Sprint(ckpt.ScenarioNames()))
		ckptEvery = flag.Int("ckpt-every", 40, "with -serve: checkpoint every N TTI barriers (0 = only on demand)")
		ckptDir   = flag.String("ckpt-dir", "", "with -serve: checkpoint directory (default $SLINGSHOT_CKPT, else a fresh temp dir)")
		rogueAt   = flag.Float64("rogue-at", 0, "with -serve: inject an out-of-order RLC delivery at this virtual second (0 = never) to force an invariant violation and exercise the auto-replay path")
		rogueCell = flag.Int("rogue-cell", 0, "with -serve: cell targeted by -rogue-at")
	)
	flag.Parse()

	if *serve != "" {
		c, u := *cells, *ues
		if c <= 0 {
			c = 8
		}
		if u <= 0 {
			u = c * 3
		}
		runServe(serveOpts{
			addr: *serve, scenario: *scenario, cells: c, ues: u, seed: *seed,
			ckptEvery: *ckptEvery, ckptDir: *ckptDir,
			rogueAt: sim.Time(*rogueAt * float64(sim.Second)), rogueCell: *rogueCell,
		})
		return
	}

	if *cells > 0 {
		runFleet(*cells, *ues, *seed, *profile)
		return
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder(0)
		cfg.Trace = rec
	}
	var d *core.Deployment
	mode := "slingshot"
	if *baseline {
		d = core.NewBaseline(cfg)
		mode = "baseline (hot-backup vRAN, no Slingshot)"
	} else {
		d = core.NewSlingshot(cfg)
	}
	say := func(format string, args ...any) {
		fmt.Printf("[%10v] ", d.Engine.Now())
		fmt.Printf(format+"\n", args...)
	}
	say("deployment: %s; cell %d on PHY server %d (standby %d), L2 on %d",
		mode, cfg.Cell, cfg.PrimaryServer, cfg.SecondaryServer, cfg.L2Server)

	for id, u := range d.UEs {
		id := id
		u.OnStateChange = func(s ue.State) { say("UE %d (%s): %v", id, u.Cfg.Name, s) }
	}
	if !*baseline {
		d.L2Orion.OnMigration = func(ev orion.MigrationEvent) {
			kind := "planned migration"
			if ev.Failover {
				kind = "FAILOVER"
			}
			say("orion: %s of cell %d to server %d at slot %d", kind, ev.Cell, ev.ToServer, ev.AtSlot)
		}
	}
	for srv, p := range d.PHYs {
		srv, p := srv, p
		p.OnCrash = func(reason string) { say("PHY on server %d crashed: %s", srv, reason) }
	}

	// Light uplink traffic from every UE, counted at the server.
	received := map[uint16]int{}
	d.OnUplink(func(ueID uint16, pkt []byte) { received[ueID]++ })
	d.Start()
	for id := range d.UEs {
		id := id
		tx := &traffic.UDPSender{Engine: d.Engine, Flow: id, RateBps: 2e6, PktSize: 1000,
			Send: func(pkt []byte) bool {
				u := d.UEs[id]
				if !u.Connected() {
					return false
				}
				u.SendUplink(pkt)
				return true
			}}
		d.Engine.At(100*sim.Millisecond, "traffic", tx.Start)
	}

	if *killAt > 0 {
		d.Engine.At(sim.Time(*killAt*float64(sim.Second)), "kill", func() {
			say("injecting SIGKILL into active PHY (server %d)", d.ActivePHYServer())
			d.KillActivePHY()
		})
	}
	if *migrateAt > 0 && !*baseline {
		d.Engine.At(sim.Time(*migrateAt*float64(sim.Second)), "migrate", func() {
			say("operator requests planned migration")
			if _, err := d.PlannedMigration(); err != nil {
				say("migration error: %v", err)
			}
		})
	}
	// Progress line every second.
	d.Engine.Every(sim.Second, sim.Second, "progress", func() {
		total := 0
		for _, n := range received {
			total += n
		}
		say("active PHY: server %d; uplink packets delivered: %d; detections: %d",
			d.ActivePHYServer(), total, len(d.Switch.DetectionLog))
	})

	d.Run(sim.Time(*seconds * float64(sim.Second)))
	for _, p := range d.PHYs {
		p.OnCrash = nil // teardown kills are not crashes
	}
	d.Stop()

	say("done. switch stats: %d forwarded, %d migrations, %d failures detected",
		d.Switch.Stats.Forwarded, d.Switch.Stats.MigrationsExecuted, d.Switch.Stats.FailuresDetected)
	for id, u := range d.UEs {
		say("UE %d (%s): state=%v attaches=%d rlfs=%d delivered=%d pkts",
			id, u.Cfg.Name, u.State(), u.Stats.Attaches, u.Stats.RLFs, received[id])
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := rec.WriteChrome(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		say("trace: %d events captured (%d retained), chrome trace written to %s",
			rec.Total(), rec.Len(), *tracePath)
		fmt.Print(rec.Metrics().Exposition())
	}
}

// runFleet executes the sharded fleet-chaos scenario (or a correlated
// profile over a zoned topology) and narrates its outcome: fleet-wide
// totals, the controller's spare-pool decisions, and every cell that was
// killed, failed over, or handed load off.
func runFleet(cells, ues int, seed uint64, profile string) {
	if ues <= 0 {
		ues = cells * 10
	}
	cfg := shard.ChaosConfig(cells, ues)
	if profile != "" {
		c, err := shard.CorrelatedConfig(profile, cells, ues)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg = c
		zones := cfg.Topo.Zones
		fmt.Printf("fleet: %d cells / %d UEs over %d zones (%d spares/zone + %d overflow), scenario %s\n",
			cfg.Cells, cfg.UEs, zones, cfg.Topo.ZoneSpares, cfg.Topo.OverflowSpares, profile)
	} else {
		fmt.Printf("fleet: %d cells / %d UEs, %d PHY kills against a %d-spare pool, %d-migration storm\n",
			cfg.Cells, cfg.UEs, cfg.Kills, cfg.Spares, cfg.Migrations)
	}
	cfg.Seed = seed
	rep, err := shard.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, fl := range rep.Faults {
		fmt.Printf("fault: %s\n", fl)
	}
	var ul, dl, exch uint64
	for _, cs := range rep.Cells {
		ul += cs.UL
		dl += cs.DL
		if cs.Killed {
			outcome := "DENIED a spare (pool exhausted), running unprotected"
			if cs.SpareOK {
				outcome = "granted a pooled spare and reprotected"
			}
			fmt.Printf("cell %d: active PHY killed, failed over (%d TTIs dropped), %s\n",
				cs.Cell, cs.Dropped, outcome)
		}
		if cs.HandoverRx > 0 {
			fmt.Printf("cell %d: absorbed %d handover transfers from unprotected neighbors\n",
				cs.Cell, cs.HandoverRx)
		}
		exch += cs.BackhaulRx + cs.HandoverRx
	}
	for _, z := range rep.Zones {
		fmt.Printf("zone %d: %d cells, %d killed, %d re-spared (%d local + %d cross grants), %d denied; availability %.4f%%\n",
			z.Zone, z.Cells, z.Killed, z.Respared, z.GrantsLocal, z.GrantsCross, z.Denied, z.Availability)
	}
	fmt.Printf("controller: %d spare grants (%d local, %d cross-zone), %d denials, %d migration commands, %d upgrade steps\n",
		rep.Grants, rep.GrantsLocal, rep.GrantsCross, rep.Denials, rep.MigrateCmds, rep.UpgradeCmds)
	fmt.Printf("delivered in order: %d uplink / %d downlink packets; %d inter-cell messages\n",
		ul, dl, exch)
	fmt.Printf("fingerprint: %016x\n", rep.Fingerprint)
	if rep.Err() != nil {
		fmt.Fprintln(os.Stderr, rep.Err())
		os.Exit(1)
	}
	fmt.Printf("all %d cells within the §8.2 failover budget; 0 invariant violations\n", len(rep.Cells))
}
