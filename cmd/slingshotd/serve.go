package main

// Resident service mode: instead of one batch narration, slingshotd -serve
// keeps a fleet alive behind an HTTP control plane. The step loop advances
// one TTI barrier at a time under a mutex, so every handler that wins the
// lock observes the fleet at a barrier — the only instant a checkpoint is
// valid. The flight recorder is always armed in this mode; when a live
// invariant violation appears, the server automatically rewinds to the
// nearest on-disk checkpoint, replays to the violation barrier, and
// compares the replayed flight-recorder dumps byte-for-byte against the
// live ones (the time-travel debugging loop from the paper's operational
// story, exercised end to end).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"

	"slingshot/internal/ckpt"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

// server is the resident deployment plus its checkpoint ledger.
type server struct {
	mu   sync.Mutex
	f    *shard.Fleet
	mgr  *ckpt.Manager
	cfg  shard.Config
	done bool

	paused  bool // restore?hold=1 parks the fleet at a barrier
	looping bool // a stepLoop goroutine is alive

	ckptEvery int // barriers between automatic checkpoints
	steps     int // barriers completed since (re)start
	lastViol  int // violation count at the previous barrier
	saved     int
	replays   int
	events    []string
}

func (s *server) event(format string, args ...any) {
	line := fmt.Sprintf("[%10v] ", s.f.Now()) + fmt.Sprintf(format, args...)
	s.events = append(s.events, line)
	fmt.Println(line)
}

// serveOpts bundles the -serve flag set.
type serveOpts struct {
	addr, scenario string
	cells, ues     int
	seed           uint64
	ckptEvery      int
	ckptDir        string
	rogueAt        sim.Time
	rogueCell      int
}

// runServe is the -serve entry point.
func runServe(o serveOpts) {
	cfg, err := ckpt.Scenario(o.scenario, o.cells, o.ues)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Seed = o.seed
	cfg.Trace = true // serve mode always arms the flight recorder
	cfg.RogueAt = o.rogueAt
	cfg.RogueCell = o.rogueCell
	ckptDir := o.ckptDir
	if ckptDir == "" {
		ckptDir = os.Getenv("SLINGSHOT_CKPT")
	}
	if ckptDir == "" {
		ckptDir, err = os.MkdirTemp("", "slingshot-ckpt-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	f, err := shard.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := &server{f: f, mgr: &ckpt.Manager{Dir: ckptDir}, cfg: f.Config(), ckptEvery: o.ckptEvery}
	s.f.Start()
	s.event("serve: scenario %s, %d cells / %d UEs, horizon %v, checkpoints every %d TTIs into %s",
		o.scenario, s.cfg.Cells, s.cfg.UEs, s.cfg.Horizon, o.ckptEvery, ckptDir)
	if _, err := s.checkpointLocked(); err != nil { // barrier 0 is always on disk
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/restore", s.handleRestore)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}()

	fmt.Printf("serve: listening on http://%s\n", ln.Addr())
	s.looping = true
	s.stepLoop()
	select {} // run complete; stay resident for inspection
}

// stepLoop advances the fleet barrier by barrier, checkpointing on the
// grid and watching for live invariant violations. It returns when the
// horizon is reached or the server is paused (the HTTP plane stays up).
// Handlers interleave between barriers: sync.Mutex's starvation mode
// hands the lock to any waiter blocked more than ~1ms, so the tight loop
// cannot lock them out.
func (s *server) stepLoop() {
	for {
		s.mu.Lock()
		if s.done || s.paused {
			s.looping = false
			s.mu.Unlock()
			return
		}
		done, err := s.step()
		if err != nil {
			s.event("step error: %v", err)
			s.done = true
			s.looping = false
			s.mu.Unlock()
			return
		}
		if done {
			// Final barrier: persist it before finalizing, so the whole
			// run remains rewindable.
			if _, err := s.checkpointLocked(); err != nil {
				s.event("final checkpoint: %v", err)
			}
			rep := s.f.Finish()
			s.event("run complete: fingerprint %016x, %d violations", rep.Fingerprint, s.f.ViolationsLive())
			s.done = true
			s.looping = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
}

// ensureLoop restarts the step loop if the fleet can and should advance.
// Caller holds s.mu.
func (s *server) ensureLoop() {
	if !s.done && !s.paused && !s.looping {
		s.looping = true
		go s.stepLoop()
	}
}

// step advances one barrier and runs the violation watch + checkpoint
// cadence. Caller holds s.mu.
func (s *server) step() (bool, error) {
	done, err := s.f.Step()
	if err != nil {
		return false, err
	}
	s.steps++
	if v := s.f.ViolationsLive(); v > s.lastViol {
		s.event("invariant violation detected (%d live) at barrier %v", v, s.f.Now())
		s.lastViol = v
		s.autoReplay()
	}
	if !done && s.ckptEvery > 0 && s.steps%s.ckptEvery == 0 {
		if _, err := s.checkpointLocked(); err != nil {
			s.event("checkpoint: %v", err)
		}
	}
	return done, nil
}

// checkpointLocked captures and persists the current barrier. Caller
// holds s.mu and the fleet is at a barrier.
func (s *server) checkpointLocked() (*ckpt.Snapshot, error) {
	snap := ckpt.Capture(s.f)
	path, err := s.mgr.Save(snap)
	if err != nil {
		return nil, err
	}
	s.saved++
	s.event("checkpoint %d: barrier %v -> %s (fingerprint %016x)", s.saved, snap.At, path, snap.Fingerprint)
	return snap, nil
}

// autoReplay rewinds to the nearest checkpoint strictly before the
// violation barrier, replays forward with the flight recorder armed, and
// compares the replayed dumps against the live fleet's. Caller holds s.mu.
func (s *server) autoReplay() {
	violAt := s.f.Now()
	snap, err := s.mgr.Nearest(violAt - s.cfg.Step)
	if err != nil {
		s.event("auto-replay: %v", err)
		return
	}
	s.event("auto-replay: rewinding to checkpoint at %v", snap.At)
	g, err := ckpt.Restore(snap)
	if err != nil {
		s.event("auto-replay: restore failed: %v", err)
		return
	}
	for g.Now() < violAt {
		if _, err := g.Step(); err != nil {
			s.event("auto-replay: replay step: %v", err)
			return
		}
	}
	live, replay := s.f.FlightDumps(), g.FlightDumps()
	for i := range live {
		if live[i] != replay[i] {
			s.event("auto-replay: DIVERGENT flight dump for cell %d — replay is not faithful", i)
			return
		}
	}
	s.replays++
	s.event("auto-replay: flight dumps byte-identical to live run (%d cells) — violation reproduced deterministically", len(live))
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, map[string]any{
		"now_us":      int64(s.f.Now() / sim.Microsecond),
		"horizon_us":  int64(s.cfg.Horizon / sim.Microsecond),
		"done":        s.done,
		"paused":      s.paused,
		"steps":       s.steps,
		"violations":  s.f.ViolationsLive(),
		"checkpoints": s.saved,
		"replays":     s.replays,
		"ckpt_dir":    s.mgr.Dir,
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg := s.f.MergedMetrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, reg.Exposition())
	fmt.Fprintf(w, "# fingerprint %016x\n", reg.Fingerprint())
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, map[string]any{
		"faults": s.f.Faults(),
		"log":    s.events,
	})
}

// handleCheckpoint forces a checkpoint at the current barrier.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		http.Error(w, "run complete; final barrier is already on disk", http.StatusConflict)
		return
	}
	snap, err := s.checkpointLocked()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{
		"at_us":       int64(snap.At / sim.Microsecond),
		"fingerprint": fmt.Sprintf("%016x", snap.Fingerprint),
		"path":        s.mgr.Path(snap.At),
	})
}

// handleRestore replaces the live fleet with one verified-restored from
// disk: ?at_us=N picks the nearest checkpoint at or before N microseconds
// (omitted = latest); ?hold=1 parks the restored fleet at its barrier
// instead of resuming the run (a later plain /restore resumes). The
// response carries the snapshot fingerprint so the caller can confirm
// which barrier came back.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	bound := sim.Time(-1)
	if v := r.URL.Query().Get("at_us"); v != "" {
		us, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad at_us: "+err.Error(), http.StatusBadRequest)
			return
		}
		bound = sim.Time(us) * sim.Microsecond
	}
	hold := r.URL.Query().Get("hold") == "1"
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.mgr.Nearest(bound)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	f, err := ckpt.Restore(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.f = f
	s.steps = int(snap.Steps)
	s.lastViol = f.ViolationsLive()
	s.done = f.Now() >= s.cfg.Horizon
	s.paused = hold
	mode := "resuming run"
	if hold {
		mode = "holding at barrier"
	} else if s.done {
		mode = "already at horizon"
	}
	s.event("restore: fleet rewound to barrier %v (fingerprint %016x), verified against snapshot; %s", snap.At, snap.Fingerprint, mode)
	s.ensureLoop()
	writeJSON(w, map[string]any{
		"at_us":       int64(snap.At / sim.Microsecond),
		"fingerprint": fmt.Sprintf("%016x", snap.Fingerprint),
		"violations":  f.ViolationsLive(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
