package main

import (
	"testing"
	"time"
)

func TestValidateMetroFlags(t *testing.T) {
	cases := []struct {
		name               string
		cells, ues, shards int
		horizon            time.Duration
		uesSet, horizonSet bool
		wantErr            bool
	}{
		{"defaults ok", 8, 0, 0, 0, false, false, false},
		{"explicit ok", 8, 96, 4, time.Second, true, true, false},
		{"shards equals cells", 4, 16, 4, 0, true, false, false},
		{"shards exceeds cells", 4, 16, 5, 0, true, false, true},
		{"negative shards", 4, 16, -1, 0, true, false, true},
		{"zero ues explicit", 4, 0, 0, 0, true, false, true},
		{"negative ues", 4, -3, 0, 0, true, false, true},
		{"ues below cells", 8, 4, 0, 0, true, false, true},
		{"zero horizon explicit", 4, 16, 0, 0, true, true, true},
		{"negative horizon", 4, 16, 0, -time.Second, true, true, true},
	}
	for _, tc := range cases {
		err := validateMetroFlags(tc.cells, tc.ues, tc.shards, tc.horizon, tc.uesSet, tc.horizonSet)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateMetroFlags = %v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
}
