// Command experiments regenerates the tables and figures of the paper's
// evaluation (§8). Each experiment builds its own deployment, runs it on
// virtual time, and prints the rows/series the paper reports.
//
// Usage:
//
//	experiments -list
//	experiments -run fig8
//	experiments -run all -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"slingshot/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run, or 'all'")
		scale = flag.Float64("scale", 1.0, "duration scale in (0,1]; 1 = paper-scale")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.List() {
			fmt.Printf("  %-8s %s\n", id, experiments.Title(id))
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}
	if *run == "all" {
		for _, r := range experiments.RunAll(*scale) {
			fmt.Println(r)
		}
		return
	}
	r, err := experiments.Run(*run, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r)
}
