// Command experiments regenerates the tables and figures of the paper's
// evaluation (§8). Each experiment builds its own deployment, runs it on
// virtual time, and prints the rows/series the paper reports. It can also
// run a single traced chaos schedule and export its cross-layer event
// trace for chrome://tracing.
//
// Usage:
//
//	experiments -list
//	experiments -run fig8
//	experiments -run all -scale 0.5
//	experiments -chaos light -seed 5 -trace chaos.json
//	experiments -cells 100 -ues 10000
//	experiments -cells 12 -ues 144 -fleet-chaos -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"slingshot/internal/chaos"
	"slingshot/internal/experiments"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

func main() {
	var (
		run       = flag.String("run", "", "experiment id to run, or 'all'")
		scale     = flag.Float64("scale", 1.0, "duration scale in (0,1]; 1 = paper-scale")
		list      = flag.Bool("list", false, "list experiment ids")
		chaosProf = flag.String("chaos", "", "run one traced chaos schedule with this profile (light, default, heavy) instead of an experiment")
		seed      = flag.Uint64("seed", 1, "schedule seed (with -chaos or -cells)")
		tracePath = flag.String("trace", "", "write the chaos run's Chrome trace_event JSON here (with -chaos)")

		cells      = flag.Int("cells", 0, "run the sharded metro scenario with this many cells instead of an experiment")
		ues        = flag.Int("ues", 0, "total UEs across the metro fleet (with -cells)")
		shards     = flag.Int("shards", 0, "shard-group count (0 = SLINGSHOT_SHARDS, then GOMAXPROCS); reports are identical at any value")
		fleetChaos = flag.Bool("fleet-chaos", false, "use the fleet-chaos scenario: PHY kills + pooled spares + migration storm (with -cells)")
		fleetProf  = flag.String("fleet-profile", "", "correlated-failure scenario over a zoned topology: independent, rack-loss, partition, upgrade-wave (with -cells)")
		horizon    = flag.Duration("horizon", 0, "override the metro virtual run length (with -cells)")
	)
	flag.Parse()

	if *cells > 0 {
		if err := validateMetroFlags(*cells, *ues, *shards, *horizon, flagWasSet("ues"), flagWasSet("horizon")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runMetro(*cells, *ues, *shards, *seed, *fleetChaos, *fleetProf, *horizon)
		return
	}
	for _, name := range []string{"ues", "shards", "fleet-chaos", "fleet-profile"} {
		if flagWasSet(name) {
			fmt.Fprintf(os.Stderr, "-%s requires -cells (the sharded metro scenario)\n", name)
			os.Exit(2)
		}
	}
	if *chaosProf != "" {
		runTracedChaos(*chaosProf, *seed, *tracePath)
		return
	}
	if *tracePath != "" {
		fmt.Fprintln(os.Stderr, "-trace requires -chaos (experiments build many deployments; only chaos runs are traced)")
		os.Exit(2)
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.List() {
			fmt.Printf("  %-8s %s\n", id, experiments.Title(id))
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id>, -run all, or -chaos <profile>")
		}
		return
	}
	if *run == "all" {
		for _, r := range experiments.RunAll(*scale) {
			fmt.Println(r)
		}
		return
	}
	r, err := experiments.Run(*run, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r)
}

// flagWasSet reports whether the user passed a flag explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// validateMetroFlags rejects impossible metro flag combinations up front
// with a clear error, instead of a panic or a silent clamp deep in fleet
// setup. uesSet/horizonSet distinguish "omitted" (defaulted later) from
// "explicitly nonsensical".
func validateMetroFlags(cells, ues, shards int, horizon time.Duration, uesSet, horizonSet bool) error {
	if uesSet && ues <= 0 {
		return fmt.Errorf("-ues must be positive (got %d); omit it to default to 100 per cell", ues)
	}
	if uesSet && ues < cells {
		return fmt.Errorf("-ues %d spread over -cells %d leaves empty cells; need at least one UE per cell", ues, cells)
	}
	if horizonSet && horizon <= 0 {
		return fmt.Errorf("-horizon must be positive (got %v)", horizon)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be ≥ 0 (got %d); 0 reads SLINGSHOT_SHARDS", shards)
	}
	if shards > cells {
		return fmt.Errorf("-shards %d exceeds -cells %d: a shard group needs at least one cell", shards, cells)
	}
	return nil
}

// runMetro executes one sharded metro-scale fleet run and prints its
// deterministic report. Exit status 1 when any cell violated an
// invariant.
func runMetro(cells, ues, shards int, seed uint64, fleetChaos bool, fleetProf string, horizon time.Duration) {
	if ues <= 0 {
		ues = cells * 100
	}
	cfg := shard.DefaultConfig(cells, ues)
	if fleetChaos {
		cfg = shard.ChaosConfig(cells, ues)
	}
	if fleetProf != "" {
		c, err := shard.CorrelatedConfig(fleetProf, cells, ues)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg = c
	}
	cfg.Seed = seed
	cfg.Shards = shards
	if horizon != 0 {
		cfg.Horizon = sim.FromDuration(horizon)
	}
	rep, err := shard.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(rep.String())
	fmt.Printf("lockstep: %d barrier steps of %v\n",
		int64(cfg.Horizon/cfg.Step), cfg.Step.Duration())
	if rep.Err() != nil {
		fmt.Fprintln(os.Stderr, rep.Err())
		os.Exit(1)
	}
}

// runTracedChaos executes one seeded chaos schedule with event tracing on,
// prints the invariant report (which embeds the flight-recorder dump when
// an invariant broke) and the live counters, and optionally exports the
// event ring as Chrome trace_event JSON.
func runTracedChaos(profile string, seed uint64, tracePath string) {
	p, ok := chaos.ByName(profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown chaos profile %q (have light, default, heavy)\n", profile)
		os.Exit(2)
	}
	rep, rec := chaos.RunTraced(seed, p)
	fmt.Print(rep.String())
	fmt.Printf("trace: %d events captured (%d retained)\n", rec.Total(), rec.Len())
	fmt.Print(rec.Metrics().Exposition())
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := rec.WriteChrome(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s\n", tracePath)
	}
	if rep.Err() != nil {
		os.Exit(1)
	}
}
