// Command fhdump decodes Slingshot wire formats from hex on stdin or the
// command line: O-RAN split-7.2x fronthaul packets (eCPRI), FAPI messages,
// and switch control commands. One hex string per line; output is a
// layer-by-layer dump in the spirit of gopacket's LayerDump.
//
// Usage:
//
//	fhdump 10000c000100...            # decode arguments
//	echo 1000... | fhdump             # or stdin, one packet per line
//	fhdump -gen                       # print example packets to play with
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/switchsim"
)

func main() {
	gen := flag.Bool("gen", false, "emit example packets as hex")
	flag.Parse()

	if *gen {
		generate()
		return
	}
	args := flag.Args()
	if len(args) > 0 {
		for _, a := range args {
			dump(a)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dump(line)
	}
}

func dump(hexStr string) {
	data, err := hex.DecodeString(strings.ReplaceAll(hexStr, " ", ""))
	if err != nil {
		fmt.Printf("!! bad hex: %v\n", err)
		return
	}
	if pkt, err := fronthaul.Decode(data); err == nil {
		dumpFronthaul(pkt, len(data))
		return
	}
	if msg, err := fapi.Decode(data); err == nil {
		dumpFAPI(msg, len(data))
		return
	}
	if cmd, err := switchsim.DecodeCommand(data); err == nil {
		fmt.Printf("SWITCH-CONTROL %d bytes\n", len(data))
		fmt.Printf("  type=%d ru=%d phy=%d slot=%v absSlot=%d\n",
			cmd.Type, cmd.RU, cmd.PHY, cmd.Slot, cmd.AbsSlot)
		return
	}
	fmt.Printf("!! %d bytes: not a fronthaul packet, FAPI message, or switch command\n", len(data))
}

func dumpFronthaul(p *fronthaul.Packet, wire int) {
	fmt.Printf("FRONTHAUL (eCPRI) %d bytes\n", wire)
	fmt.Printf("  %v %v eAxC=%d seq=%d slot=%v\n", p.Type, p.Dir, p.EAxC, p.Seq, p.Slot)
	switch p.Type {
	case fronthaul.MsgRTControl:
		secs, err := fronthaul.DecodeSections(p.Payload)
		if err != nil {
			fmt.Printf("  !! bad section list: %v\n", err)
			return
		}
		fmt.Printf("  C-plane: %d sections\n", len(secs))
		for i, s := range secs {
			fmt.Printf("    [%d] ue=%d %v prb=[%d,+%d) mod=%db harq=%d rv=%d new=%v tb=%dB grantSlot=%d\n",
				i, s.UEID, s.Dir, s.StartPRB, s.NumPRB, s.ModBits, s.HARQID, s.Rv, s.NewData, s.TBBytes, s.GrantSlot)
		}
		if len(p.Aux) > 0 {
			if reports, err := fapi.DecodeUCIList(p.Aux); err == nil {
				fmt.Printf("  UCI: %d reports\n", len(reports))
				for _, r := range reports {
					fmt.Printf("    ue=%d harq=%d fb=%v ack=%v cqi=%.1fdB\n",
						r.UEID, r.HARQID, r.HasFeedback, r.ACK, r.CQIdB)
				}
			}
		}
	case fronthaul.MsgIQData:
		fmt.Printf("  U-plane: section(ue)=%d prb=[%d,+%d) bfp=%d-bit payload=%dB aux=%dB\n",
			p.Section, p.StartPRB, p.NumPRB, p.MantissaBits, len(p.Payload), len(p.Aux))
		if iq, err := p.IQ(); err == nil {
			n := len(iq)
			show := n
			if show > 4 {
				show = 4
			}
			fmt.Printf("  IQ: %d samples, first %d: %v\n", n, show, iq[:show])
		}
	}
}

func dumpFAPI(m fapi.Message, wire int) {
	fmt.Printf("FAPI %d bytes\n", wire)
	fmt.Printf("  %v cell=%d slot=%d\n", m.Kind(), m.Cell(), m.AbsSlot())
	switch msg := m.(type) {
	case *fapi.ULConfig:
		dumpPDUs("UL", msg.PDUs)
	case *fapi.DLConfig:
		dumpPDUs("DL", msg.PDUs)
	case *fapi.TxData:
		for _, pl := range msg.Payloads {
			fmt.Printf("  payload ue=%d harq=%d %dB\n", pl.UEID, pl.HARQID, len(pl.Data))
		}
	case *fapi.RxData:
		for _, pl := range msg.Payloads {
			fmt.Printf("  payload ue=%d harq=%d %dB\n", pl.UEID, pl.HARQID, len(pl.Data))
		}
	case *fapi.CRCIndication:
		for _, r := range msg.Results {
			fmt.Printf("  crc ue=%d harq=%d ok=%v snr=%.1fdB\n", r.UEID, r.HARQID, r.OK, r.SNRdB)
		}
	case *fapi.ConfigRequest:
		fmt.Printf("  numPRB=%d bfp=%d fecIters=%d seed=%#x\n",
			msg.NumPRB, msg.MantissaBits, msg.FECIters, msg.Seed)
	case *fapi.UCIIndication:
		for _, r := range msg.Reports {
			fmt.Printf("  uci ue=%d harq=%d fb=%v ack=%v cqi=%.1f\n",
				r.UEID, r.HARQID, r.HasFeedback, r.ACK, r.CQIdB)
		}
	}
}

func dumpPDUs(dir string, pdus []fapi.PDU) {
	if len(pdus) == 0 {
		fmt.Printf("  null %s_CONFIG (no UE work — keeps a standby PHY alive)\n", dir)
		return
	}
	for _, p := range pdus {
		fmt.Printf("  %s pdu ue=%d harq=%d rv=%d new=%v prb=[%d,+%d) %v tb=%dB\n",
			dir, p.UEID, p.HARQID, p.Rv, p.NewData,
			p.Alloc.StartPRB, p.Alloc.NumPRB, p.Alloc.Mod, p.TBBytes)
	}
}

func generate() {
	hb := fronthaul.NewControl(0, 7, fronthaul.Downlink, fronthaul.SlotID{Frame: 1, Subframe: 2, Slot: 1}, 1)
	hb.Payload = fronthaul.EncodeSections([]fronthaul.Section{{
		UEID: 3, Dir: fronthaul.Uplink, NumPRB: 91, ModBits: 2,
		HARQID: 5, NewData: true, TBBytes: 4000, GrantSlot: 1234,
	}})
	fmt.Printf("# DL C-plane heartbeat with one UL grant section\n%x\n", hb.Serialize())

	null := fapi.NullUL(0, 1234)
	fmt.Printf("# null UL_CONFIG (standby keep-alive)\n%x\n", fapi.Encode(null))

	cmd := &switchsim.Command{Type: switchsim.CmdMigrateOnSlot, RU: 0, PHY: 2,
		Slot: fronthaul.SlotFromCounter(1240), AbsSlot: 1240}
	fmt.Printf("# migrate_on_slot command\n%x\n", cmd.Encode())
}
