// Package slingshot is the public API of the Slingshot reproduction: a
// simulated 5G vRAN deployment with resilient baseband (PHY) processing.
//
// Slingshot (SIGCOMM 2023) makes the vRAN's physical layer resilient to
// server failures and upgrades with three mechanisms, all reproduced here:
//
//   - an in-switch fronthaul middlebox that remaps an RU to a different
//     PHY server at an exact TTI boundary (§5),
//   - an in-switch failure detector that treats the PHY's per-slot
//     downlink packet stream as a natural heartbeat (§5.2), and
//   - Orion, a FAPI middlebox pair that keeps a hot-standby secondary PHY
//     alive with null slot requests and swaps it in on migration (§6).
//
// The package wraps the deployment assembly in internal/core. A minimal
// session:
//
//	d := slingshot.New(slingshot.DefaultOptions())
//	d.Start()
//	d.RunFor(time.Second)
//	d.KillActivePHY()         // in-switch detection + failover
//	d.RunFor(time.Second)     // UEs never notice
//
// Everything runs on a deterministic discrete-event clock; see DESIGN.md
// for how the simulation substitutes for the paper's hardware testbed.
package slingshot

import (
	"fmt"
	"time"

	"slingshot/internal/chaos"
	"slingshot/internal/core"
	"slingshot/internal/experiments"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

// UE describes one user device in the deployment.
type UE struct {
	ID   uint16
	Name string
	// SNRdB is the device's average channel quality; ~25 is a good
	// mid-cell phone, <5 is cell edge.
	SNRdB float64
}

// Options configures a deployment.
type Options struct {
	// Seed drives every random stream; equal seeds give identical runs.
	Seed uint64
	// UEs in the cell. Nil selects the paper's three-device set.
	UEs []UE
	// Baseline selects the paper's no-Slingshot hot-backup-vRAN baseline
	// instead of a Slingshot deployment.
	Baseline bool
	// PrimaryFECIters / SecondaryFECIters override the PHY decoder
	// iteration budgets (the live-upgrade experiment's knob). Zero keeps
	// the default (8).
	PrimaryFECIters   int
	SecondaryFECIters int
}

// DefaultOptions returns the three-server, three-UE testbed configuration
// the paper evaluates.
func DefaultOptions() Options {
	return Options{Seed: 1}
}

// Deployment is a running simulated vRAN.
type Deployment struct {
	d *core.Deployment
}

// New builds a deployment.
func New(opts Options) *Deployment {
	cfg := core.DefaultConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.UEs != nil {
		cfg.UEs = nil
		for _, u := range opts.UEs {
			cfg.UEs = append(cfg.UEs, core.UESpec{ID: u.ID, Name: u.Name, MeanSNRdB: u.SNRdB})
		}
	}
	if opts.PrimaryFECIters != 0 || opts.SecondaryFECIters != 0 {
		cfg.PHYIters = map[uint8]int{}
		if opts.PrimaryFECIters != 0 {
			cfg.PHYIters[cfg.PrimaryServer] = opts.PrimaryFECIters
		}
		if opts.SecondaryFECIters != 0 {
			cfg.PHYIters[cfg.SecondaryServer] = opts.SecondaryFECIters
		}
	}
	if opts.Baseline {
		return &Deployment{d: core.NewBaseline(cfg)}
	}
	return &Deployment{d: core.NewSlingshot(cfg)}
}

// Start brings the deployment up (cells configured, clocks running, UEs
// attached).
func (dep *Deployment) Start() { dep.d.Start() }

// RunFor advances virtual time by d.
func (dep *Deployment) RunFor(d time.Duration) {
	dep.d.Run(dep.d.Engine.Now() + sim.FromDuration(d))
}

// Now returns the current virtual time since deployment start.
func (dep *Deployment) Now() time.Duration {
	return dep.d.Engine.Now().Duration()
}

// At schedules fn at a virtual time offset from now (executed during a
// later RunFor).
func (dep *Deployment) At(d time.Duration, fn func()) {
	dep.d.Engine.After(sim.FromDuration(d), "api.at", fn)
}

// KillActivePHY crashes the PHY currently serving the cell, as the
// experiments' SIGKILL does. With Slingshot, the in-switch detector
// notices within ~450 µs and fails over to the hot standby.
func (dep *Deployment) KillActivePHY() { dep.d.KillActivePHY() }

// Migrate performs a planned zero-downtime PHY migration to the standby
// (the live-upgrade path). It errors on baseline deployments.
func (dep *Deployment) Migrate() error {
	_, err := dep.d.PlannedMigration()
	return err
}

// ActivePHYServer returns the server id currently serving the cell.
func (dep *Deployment) ActivePHYServer() uint8 { return dep.d.ActivePHYServer() }

// SendDownlink injects an application packet towards a UE. It reports
// whether the UE had a bearer.
func (dep *Deployment) SendDownlink(ue uint16, pkt []byte) bool {
	return dep.d.SendDownlink(ue, pkt)
}

// SendUplink injects an application packet from a UE.
func (dep *Deployment) SendUplink(ue uint16, pkt []byte) bool {
	u, ok := dep.d.UEs[ue]
	if !ok || !u.Connected() {
		return false
	}
	u.SendUplink(pkt)
	return true
}

// OnUplink registers the application-server-side sink for uplink packets.
func (dep *Deployment) OnUplink(fn func(ue uint16, pkt []byte)) {
	dep.d.OnUplink(fn)
}

// OnDownlink registers a UE-side sink for downlink packets.
func (dep *Deployment) OnDownlink(ue uint16, fn func(pkt []byte)) error {
	u, ok := dep.d.UEs[ue]
	if !ok {
		return fmt.Errorf("slingshot: unknown UE %d", ue)
	}
	u.OnDownlink = fn
	return nil
}

// UEConnected reports whether a UE currently has a radio connection.
func (dep *Deployment) UEConnected(ue uint16) bool {
	u, ok := dep.d.UEs[ue]
	return ok && u.Connected()
}

// Detections returns the virtual times at which the in-switch detector
// declared a PHY failure.
func (dep *Deployment) Detections() []time.Duration {
	out := make([]time.Duration, len(dep.d.Switch.DetectionLog))
	for i, t := range dep.d.Switch.DetectionLog {
		out[i] = t.Duration()
	}
	return out
}

// Migrations returns how many fronthaul migrations the switch executed.
func (dep *Deployment) Migrations() int { return len(dep.d.Switch.MigrationLog) }

// Stop tears the deployment down (clocks, timers).
func (dep *Deployment) Stop() { dep.d.Stop() }

// Core exposes the underlying deployment for advanced instrumentation
// (experiment harnesses, tests).
func (dep *Deployment) Core() *core.Deployment { return dep.d }

// Experiments lists the paper-reproduction experiment ids runnable via
// RunExperiment (one per table/figure in §8 of the paper).
func Experiments() []string { return experiments.List() }

// Chaos runs one deterministic fault-injection schedule against a fresh
// Slingshot deployment: the seed fully determines the fault times,
// targets and packet-level perturbations, and a cross-layer invariant
// checker (TTI monotonicity, the §8.2 dropped-TTI bound, HARQ soft-buffer
// conservation, RLC ordering, boundary-only switch migration, UE
// continuity) watches the run. profile is "light", "default"/"" or
// "heavy". The report text is returned even on violation; the error is
// non-nil when any invariant broke or the profile is unknown.
func Chaos(seed uint64, profile string) (string, error) {
	p, ok := chaos.ByName(profile)
	if !ok {
		return "", fmt.Errorf("slingshot: unknown chaos profile %q (have light, default, heavy)", profile)
	}
	rep := chaos.Run(seed, p)
	return rep.String(), rep.Err()
}

// ChaosTraced is Chaos plus the run's serialized event trace: every chaos
// run records cross-layer events (TTIs, decodes, HARQ, fronthaul faults,
// failovers, invariant verdicts) into a bounded ring on virtual time, and
// the returned trace text is the deterministic rendering of that ring —
// byte-identical for equal seeds regardless of worker-pool width. On an
// invariant violation the report already embeds the flight-recorder dump
// (the last events before the first violation plus counter deltas); the
// full trace returned here is the wider window around it.
func ChaosTraced(seed uint64, profile string) (report, eventTrace string, err error) {
	p, ok := chaos.ByName(profile)
	if !ok {
		return "", "", fmt.Errorf("slingshot: unknown chaos profile %q (have light, default, heavy)", profile)
	}
	rep, rec := chaos.RunTraced(seed, p)
	return rep.String(), rec.Serialize() + rec.Metrics().Exposition(), rep.Err()
}

// MetroOptions configures a sharded multi-cell (metro-scale) run: Cells
// independent per-cell deployments advance in lockstep on the
// internal/par pool and exchange cross-cell traffic through a
// deterministic inter-shard mailbox.
type MetroOptions struct {
	// Cells and UEs size the fleet; UEs spread evenly across cells.
	Cells int
	UEs   int
	// Shards is the runner-group count (0 = SLINGSHOT_SHARDS, then
	// GOMAXPROCS). Purely an execution knob: the report is byte-identical
	// at any value.
	Shards int
	// Seed drives the whole fleet; equal seeds give identical reports.
	Seed uint64
	// Horizon overrides the virtual run length (0 keeps the scenario
	// default).
	Horizon time.Duration
	// Chaos switches to the fleet-chaos scenario: PHY kills across a
	// quarter of the fleet contending for a half-sized pooled-spare set,
	// plus a migration storm — with the §8.2 ≤3-dropped-TTI invariant
	// checked per cell.
	Chaos bool
	// Profile selects a correlated-failure scenario over a zoned
	// topology instead: "independent", "rack-loss", "partition" or
	// "upgrade-wave" (see shard.CorrelatedConfig). Takes precedence over
	// Chaos when both are set.
	Profile string
	// Trace aggregates every cell's counters into the report.
	Trace bool
}

// Metro runs a sharded multi-cell scenario and returns its deterministic
// report. The error is non-nil when the run could not be built or any
// cell violated a cross-layer invariant (the report text is returned
// either way when the fleet ran).
func Metro(opts MetroOptions) (string, error) {
	cfg := shard.DefaultConfig(opts.Cells, opts.UEs)
	if opts.Chaos {
		cfg = shard.ChaosConfig(opts.Cells, opts.UEs)
	}
	if opts.Profile != "" {
		c, err := shard.CorrelatedConfig(opts.Profile, opts.Cells, opts.UEs)
		if err != nil {
			return "", err
		}
		cfg = c
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Shards != 0 {
		cfg.Shards = opts.Shards
	}
	if opts.Horizon != 0 {
		cfg.Horizon = sim.FromDuration(opts.Horizon)
	}
	cfg.Trace = opts.Trace
	rep, err := shard.Run(cfg)
	if err != nil {
		return "", err
	}
	return rep.String(), rep.Err()
}

// MetroSoak soaks the fleet-chaos scenario over seeds 1..n, reporting the
// first per-cell invariant violation in (seed, cell) order. The returned
// report text is empty when every seed passed.
func MetroSoak(n, cells, ues int) (string, bool) {
	failing, ok := chaos.SoakReports(n, func(seed uint64) []*chaos.Report {
		cfg := shard.ChaosConfig(cells, ues)
		cfg.Seed = seed
		f, err := shard.New(cfg)
		if err != nil {
			return []*chaos.Report{soakError(seed, err)}
		}
		rep, err := f.Run()
		if err != nil {
			return []*chaos.Report{soakError(seed, err)}
		}
		return f.CellReports(rep)
	})
	if ok {
		return "", true
	}
	return failing.String(), false
}

// FrontierOptions configures an availability-vs-spare-ratio sweep: a
// scenario × spare-ratio × seed grid of fleet runs, aggregated into a
// deterministic frontier table (availability plus the per-cell
// dropped-TTI P50/P99/max SLO view).
type FrontierOptions struct {
	// Cells and UEs size every fleet run in the grid (defaults 8 / 48).
	Cells int
	UEs   int
	// Shards is the execution knob (0 = SLINGSHOT_SHARDS); the table is
	// byte-identical at any value.
	Shards int
	// Seeds runs each grid point for seeds 1..Seeds (default 1).
	Seeds int
	// Scenarios defaults to every frontier scenario: independent,
	// rack-loss, partition, upgrade-wave.
	Scenarios []string
	// Ratios are the pooled-spares-per-cell budgets to sweep (default
	// 0, 0.25, 0.5, 1).
	Ratios []float64
	// Horizon overrides each run's virtual length (0 keeps the scenario
	// default, 400ms).
	Horizon time.Duration
}

// Frontier sweeps spare-pool budgets against independent and correlated
// failure scenarios and returns the availability-vs-spare-ratio table.
// The error is non-nil when a run could not be built or any grid point
// recorded a cross-layer invariant violation (availability loss alone is
// data, not an error).
func Frontier(opts FrontierOptions) (string, error) {
	if opts.Cells == 0 {
		opts.Cells = 8
	}
	if opts.UEs == 0 {
		opts.UEs = opts.Cells * 6
	}
	spec := chaos.FrontierSpec{Scenarios: opts.Scenarios, Ratios: opts.Ratios, Seeds: opts.Seeds}
	if len(spec.Scenarios) == 0 {
		spec.Scenarios = shard.FrontierScenarios
	}
	if len(spec.Ratios) == 0 {
		spec.Ratios = []float64{0, 0.25, 0.5, 1}
	}
	rep, err := chaos.Frontier(spec, func(scenario string, ratio float64, seed uint64) (chaos.FrontierSample, error) {
		return shard.FrontierSample(scenario, opts.Cells, opts.UEs, opts.Shards,
			sim.FromDuration(opts.Horizon), ratio, seed)
	})
	if err != nil {
		return "", err
	}
	return rep.String(), rep.Err()
}

// soakError renders a fleet build/run failure as a failing soak report so
// it surfaces instead of silently passing the seed.
func soakError(seed uint64, err error) *chaos.Report {
	r := &chaos.Report{
		Seed:            seed,
		Profile:         "fleet-error",
		TotalViolations: 1,
		Violations:      []chaos.Violation{{Invariant: "fleet-run", Detail: err.Error()}},
	}
	r.Finalize()
	return r
}

// RunExperiment regenerates one of the paper's tables/figures and returns
// its textual report. scale in (0,1] shrinks long experiments (1 =
// paper-scale durations).
func RunExperiment(id string, scale float64) (string, error) {
	r, err := experiments.Run(id, scale)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
