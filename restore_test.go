package slingshot

// Restore-replay equivalence: the checkpoint/restore subsystem
// (internal/ckpt) must hand back a fleet whose remaining run is
// byte-identical to an uninterrupted one — at any checkpoint barrier, for
// every scenario family, at any shards × workers × pooling execution
// configuration. This is the snapshot-era extension of the
// TestReportsInvariantTo{WorkerCount,Pooling,ShardCount} contract: a
// snapshot is only trustworthy if execution knobs can change between
// capture and restore without moving a single report byte.

import (
	"strings"
	"testing"

	"slingshot/internal/ckpt"
	"slingshot/internal/mem"
	"slingshot/internal/par"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

// restoreScenario shrinks a registry scenario to test size. The returned
// config is what both the straight run and every restore rebuild from.
func restoreScenario(t *testing.T, name string) shard.Config {
	t.Helper()
	cfg, err := ckpt.Scenario(name, 6, 18)
	if err != nil {
		t.Fatal(err)
	}
	switch name {
	case "fleet-chaos":
		cfg.Horizon = 220 * sim.Millisecond
	case "frontier-sample":
		cfg.Horizon = 240 * sim.Millisecond
	}
	return cfg
}

// runWithCheckpoints runs cfg to the horizon on the given shard count,
// capturing snapshots at the requested barrier times, and returns the
// report plus the captures.
func runWithCheckpoints(t *testing.T, cfg shard.Config, shards int, at []sim.Time) (string, []*ckpt.Snapshot) {
	t.Helper()
	cfg.Shards = shards
	f, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	snaps := make([]*ckpt.Snapshot, len(at))
	capture := func() {
		for i, want := range at {
			if snaps[i] == nil && f.Now() >= want {
				snaps[i] = ckpt.Capture(f)
			}
		}
	}
	capture() // k = 0 snapshots happen before the first step
	for {
		done, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		capture()
		if done {
			break
		}
	}
	rep := f.Finish()
	for i, s := range snaps {
		if s == nil {
			t.Fatalf("no barrier reached checkpoint target %v (index %d)", at[i], i)
		}
	}
	return rep.String(), snaps
}

func TestRestoreReplayEquivalence(t *testing.T) {
	for _, name := range []string{"fig8", "fleet-chaos", "frontier-sample"} {
		t.Run(name, func(t *testing.T) {
			cfg := restoreScenario(t, name)
			// Checkpoint targets: before the first step, mid-run, and the
			// barrier one step short of the horizon.
			targets := []sim.Time{0, cfg.Horizon / 2, cfg.Horizon - cfg.Step}

			// Reference run and snapshots at shards=1, workers=1.
			prev := par.SetWorkers(1)
			ref, snaps := runWithCheckpoints(t, cfg, 1, targets)
			par.SetWorkers(prev)

			for _, shards := range []int{1, 4} {
				for _, workers := range []int{1, 4} {
					prevW := par.SetWorkers(workers)
					// Straight run at this execution config must match the
					// reference (the PR-5 invariant, re-asserted here so a
					// restore mismatch below is attributable to ckpt).
					straight, _ := runWithCheckpoints(t, cfg, shards, nil)
					if straight != ref {
						par.SetWorkers(prevW)
						t.Fatalf("straight run diverged at shards=%d workers=%d", shards, workers)
					}
					// Every snapshot restores onto this shard count and
					// finishes byte-identically.
					for i, s := range snaps {
						f, err := ckpt.RestoreExec(s, shards)
						if err != nil {
							par.SetWorkers(prevW)
							t.Fatalf("restore k=%v shards=%d workers=%d: %v", targets[i], shards, workers, err)
						}
						rep, err := f.Run()
						if err != nil {
							par.SetWorkers(prevW)
							t.Fatalf("post-restore run k=%v: %v", targets[i], err)
						}
						if rep.String() != ref {
							par.SetWorkers(prevW)
							t.Fatalf("restored run diverged: k=%v shards=%d workers=%d\n--- ref ---\n%s\n--- got ---\n%s",
								targets[i], shards, workers, ref, rep.String())
						}
					}
					par.SetWorkers(prevW)
				}
			}
		})
	}
}

// TestRestoreReplayEquivalencePooling pins the third execution axis: a
// snapshot captured with pooling ON must restore and finish identically
// with pooling OFF, and vice versa. Snapshots digest pooled buffers
// immediately (wire.Blob copies, bulk payloads fold to hashes), so no
// recycled buffer can leak into — or differ across — the images.
func TestRestoreReplayEquivalencePooling(t *testing.T) {
	cfg := restoreScenario(t, "fleet-chaos")
	target := []sim.Time{cfg.Horizon / 2}

	prevPool := mem.SetEnabled(true)
	defer mem.SetEnabled(prevPool)
	ref, snapsOn := runWithCheckpoints(t, cfg, 2, target)

	mem.SetEnabled(false)
	refOff, snapsOff := runWithCheckpoints(t, cfg, 2, target)
	if refOff != ref {
		t.Fatal("straight runs diverged across pooling modes")
	}
	if string(snapsOff[0].State) != string(snapsOn[0].State) {
		t.Fatal("snapshot state images differ across pooling modes")
	}

	// Captured pooled, restored unpooled (and the reverse).
	f, err := ckpt.Restore(snapsOn[0])
	if err != nil {
		t.Fatalf("restore pooled snapshot with pooling off: %v", err)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != ref {
		t.Fatal("pooled snapshot restored unpooled diverged")
	}
	mem.SetEnabled(true)
	f, err = ckpt.Restore(snapsOff[0])
	if err != nil {
		t.Fatalf("restore unpooled snapshot with pooling on: %v", err)
	}
	rep, err = f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != ref {
		t.Fatal("unpooled snapshot restored pooled diverged")
	}
}

// TestForcedViolationReplayDump is the time-travel acceptance check: a
// run with a forced rogue violation is re-run from the nearest checkpoint
// with the flight recorder armed, and the replayed flight dump must be
// byte-identical to the straight run's — same history, observed twice.
func TestForcedViolationReplayDump(t *testing.T) {
	cfg := shard.DefaultConfig(4, 8)
	cfg.Trace = true
	cfg.Horizon = 160 * sim.Millisecond
	cfg.RogueAt = 100 * sim.Millisecond
	cfg.RogueCell = 2
	cfg.Shards = 2

	// Straight run, checkpointing every 20 ms; note the barrier at which
	// the violation first appears.
	f, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	var snaps []*ckpt.Snapshot
	violatedAt := sim.Time(-1)
	every := 20 * sim.Millisecond
	next := sim.Time(0)
	for {
		if f.Now() >= next {
			snaps = append(snaps, ckpt.Capture(f))
			next += every
		}
		done, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		if violatedAt < 0 && f.ViolationsLive() > 0 {
			violatedAt = f.Now()
		}
		if done {
			break
		}
	}
	if violatedAt < 0 {
		t.Fatal("rogue knob produced no violation")
	}
	straightDumps := f.FlightDumps()
	if straightDumps[cfg.RogueCell] == "" {
		t.Fatal("no flight dump latched in the rogue cell")
	}
	if !strings.Contains(straightDumps[cfg.RogueCell], "rlc-order-ul") {
		t.Fatalf("unexpected dump contents:\n%s", straightDumps[cfg.RogueCell])
	}

	// Rewind: nearest checkpoint at or before the violation barrier.
	var nearest *ckpt.Snapshot
	for _, s := range snaps {
		if s.At <= violatedAt-cfg.Step && (nearest == nil || s.At > nearest.At) {
			nearest = s
		}
	}
	if nearest == nil {
		t.Fatal("no checkpoint before the violation")
	}
	g, err := ckpt.Restore(nearest)
	if err != nil {
		t.Fatal(err)
	}
	for g.Now() < violatedAt {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if g.ViolationsLive() == 0 {
		t.Fatal("replay did not reproduce the violation")
	}
	replayDumps := g.FlightDumps()
	for i := range straightDumps {
		if replayDumps[i] != straightDumps[i] {
			t.Fatalf("cell %d flight dump differs between straight run and replay:\n--- straight ---\n%s\n--- replay ---\n%s",
				i, straightDumps[i], replayDumps[i])
		}
	}
}
