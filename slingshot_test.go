package slingshot

import (
	"testing"
	"time"
)

func TestFacadeFailoverKeepsConnectivity(t *testing.T) {
	d := New(DefaultOptions())
	d.Start()
	d.RunFor(100 * time.Millisecond)
	if !d.UEConnected(1) || !d.UEConnected(2) || !d.UEConnected(3) {
		t.Fatal("UEs not connected after bring-up")
	}
	before := d.ActivePHYServer()
	d.KillActivePHY()
	d.RunFor(200 * time.Millisecond)
	defer d.Stop()
	if d.ActivePHYServer() == before {
		t.Fatal("failover did not move the PHY")
	}
	if len(d.Detections()) != 1 {
		t.Fatalf("detections = %d", len(d.Detections()))
	}
	if d.Migrations() != 1 {
		t.Fatalf("migrations = %d", d.Migrations())
	}
	for ue := uint16(1); ue <= 3; ue++ {
		if !d.UEConnected(ue) {
			t.Fatalf("UE %d disconnected across failover", ue)
		}
	}
}

func TestFacadeDataPath(t *testing.T) {
	d := New(Options{Seed: 2, UEs: []UE{{ID: 1, Name: "dev", SNRdB: 26}}})
	var up, down int
	d.OnUplink(func(ue uint16, pkt []byte) { up++ })
	if err := d.OnDownlink(1, func(pkt []byte) { down++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.OnDownlink(99, nil); err == nil {
		t.Fatal("unknown UE accepted")
	}
	d.Start()
	d.At(50*time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			if !d.SendUplink(1, make([]byte, 200)) {
				t.Error("SendUplink rejected")
			}
			if !d.SendDownlink(1, make([]byte, 200)) {
				t.Error("SendDownlink rejected")
			}
		}
	})
	d.RunFor(300 * time.Millisecond)
	defer d.Stop()
	if up < 10 || down < 10 {
		t.Fatalf("delivered up=%d down=%d of 10 each", up, down)
	}
	if d.Now() < 300*time.Millisecond {
		t.Fatalf("Now = %v", d.Now())
	}
}

func TestFacadeMigrate(t *testing.T) {
	d := New(DefaultOptions())
	d.Start()
	d.RunFor(50 * time.Millisecond)
	if err := d.Migrate(); err != nil {
		t.Fatal(err)
	}
	d.RunFor(50 * time.Millisecond)
	defer d.Stop()
	if d.Migrations() != 1 {
		t.Fatal("planned migration not executed")
	}
}

func TestFacadeBaselineRejectsMigrate(t *testing.T) {
	d := New(Options{Seed: 1, Baseline: true, UEs: []UE{{ID: 1, Name: "x", SNRdB: 25}}})
	d.Start()
	d.RunFor(10 * time.Millisecond)
	defer d.Stop()
	if err := d.Migrate(); err == nil {
		t.Fatal("baseline accepted planned migration")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() []time.Duration {
		d := New(DefaultOptions())
		d.Start()
		d.At(100*time.Millisecond, d.KillActivePHY)
		d.RunFor(300 * time.Millisecond)
		defer d.Stop()
		return d.Detections()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("detection counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic detection time: %v vs %v", a[i], b[i])
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"ablations", "chaos", "extl2", "extmimo", "fig10a", "fig10b", "fig11", "fig12",
		"fig3", "fig8", "fig9", "frontier", "sec82", "sec85", "sec86", "table2"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", got, want)
		}
	}
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
