package slingshot

// One benchmark per table and figure of the paper's evaluation (§8): each
// bench regenerates its experiment end-to-end at a reduced scale so the
// full evaluation is exercised by `go test -bench=.`. Run the experiments
// at paper scale with `go run ./cmd/experiments -run all` (results are
// recorded in EXPERIMENTS.md).

import (
	"testing"
	"time"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(id, scale)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// BenchmarkFig3VMMigration regenerates the VM pause-time CDF baseline.
func BenchmarkFig3VMMigration(b *testing.B) { benchExperiment(b, "fig3", 1) }

// BenchmarkFig8Video regenerates the video-conferencing failover figure.
func BenchmarkFig8Video(b *testing.B) { benchExperiment(b, "fig8", 0.5) }

// BenchmarkFig9Ping regenerates the three-UE ping-latency failover figure.
func BenchmarkFig9Ping(b *testing.B) { benchExperiment(b, "fig9", 0.5) }

// BenchmarkFig10Downlink regenerates the downlink throughput figure.
func BenchmarkFig10Downlink(b *testing.B) { benchExperiment(b, "fig10a", 0.5) }

// BenchmarkFig10Uplink regenerates the uplink throughput figure.
func BenchmarkFig10Uplink(b *testing.B) { benchExperiment(b, "fig10b", 0.5) }

// BenchmarkFig11Upgrade regenerates the live PHY upgrade figure.
func BenchmarkFig11Upgrade(b *testing.B) { benchExperiment(b, "fig11", 0.6) }

// BenchmarkTable2Stress regenerates the migration-storm stress table.
func BenchmarkTable2Stress(b *testing.B) { benchExperiment(b, "table2", 0.1) }

// BenchmarkFig12OrionLatency regenerates the Orion latency-vs-load figure.
func BenchmarkFig12OrionLatency(b *testing.B) { benchExperiment(b, "fig12", 0.2) }

// BenchmarkSec82Failover regenerates the failover-timeline measurements.
func BenchmarkSec82Failover(b *testing.B) { benchExperiment(b, "sec82", 1) }

// BenchmarkSec85NullFAPI regenerates the secondary-PHY overhead table.
func BenchmarkSec85NullFAPI(b *testing.B) { benchExperiment(b, "sec85", 0.2) }

// BenchmarkSec86Switch regenerates the switch-resource/inter-packet-gap
// measurements.
func BenchmarkSec86Switch(b *testing.B) { benchExperiment(b, "sec86", 0.2) }

// BenchmarkDeploymentSecond measures simulating one second of a loaded
// Slingshot deployment (slot clocks, fronthaul, bit-level sampled PHY).
func BenchmarkDeploymentSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := New(Options{Seed: uint64(i + 1), UEs: []UE{{ID: 1, Name: "bench", SNRdB: 26}}})
		d.OnUplink(func(ue uint16, pkt []byte) {})
		d.Start()
		d.At(10*time.Millisecond, func() {
			for j := 0; j < 100; j++ {
				d.SendUplink(1, make([]byte, 1000))
				d.SendDownlink(1, make([]byte, 1000))
			}
		})
		d.RunFor(time.Second)
		d.Stop()
	}
}

// BenchmarkFailover measures kill→recovery of a full deployment.
func BenchmarkFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := New(Options{Seed: uint64(i + 1), UEs: []UE{{ID: 1, Name: "bench", SNRdB: 26}}})
		d.Start()
		d.At(50*time.Millisecond, d.KillActivePHY)
		d.RunFor(150 * time.Millisecond)
		if d.Migrations() != 1 {
			b.Fatal("failover did not complete")
		}
		d.Stop()
	}
}

// BenchmarkChaosSoak measures one seeded chaos schedule (fault injection
// plus the cross-layer invariant checker) end to end.
func BenchmarkChaosSoak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := Chaos(uint64(i+1), "light")
		if err != nil {
			b.Fatalf("invariant violation: %v\n%s", err, out)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablations (DESIGN.md §4).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations", 0.3) }

// BenchmarkExtL2Upgrade regenerates the §10 L2 checkpoint-restore extension.
func BenchmarkExtL2Upgrade(b *testing.B) { benchExperiment(b, "extl2", 0.6) }

// BenchmarkExtMIMO regenerates the §10 massive-MIMO state extension.
func BenchmarkExtMIMO(b *testing.B) { benchExperiment(b, "extmimo", 0.6) }
