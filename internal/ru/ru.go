// Package ru models the radio unit: the cell-site hardware that converts
// between over-the-air signals and O-RAN split-7.2x fronthaul packets. The
// RU is deliberately dumb (as commercial RUs are, §9): it beams whatever
// downlink IQ arrives, samples the uplink every UL slot, and addresses all
// fronthaul to a virtual PHY address that the in-switch middlebox resolves
// to the current primary PHY (§5.1).
package ru

import (
	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/mem"
	"slingshot/internal/netmodel"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
)

// AttachedUE is the over-the-air contract between the RU and a UE. The ue
// package's UE implements it.
type AttachedUE interface {
	ID() uint16
	// DeliverControl hands the slot's C-plane sections to the UE.
	DeliverControl(absSlot uint64, secs []fronthaul.Section)
	// DeliverDownlink hands a DL U-plane packet to the UE.
	DeliverDownlink(absSlot uint64, pkt *fronthaul.Packet)
	// PullUplink asks the UE for its granted uplink transmission.
	PullUplink(absSlot uint64) (iq []complex128, aux []byte, ok bool)
	// CollectUCI drains the UE's pending control reports.
	CollectUCI() []fapi.UCI
}

// Config parameterizes an RU.
type Config struct {
	Cell uint16
	// MantissaBits is the fronthaul BFP width.
	MantissaBits int
	// ULOffset is when within a slot uplink U-plane packets leave.
	ULOffset sim.Time
	// StatusOffset is when the per-slot UL C-plane status packet leaves.
	StatusOffset sim.Time
}

// DefaultConfig returns the standard RU configuration.
func DefaultConfig(cell uint16) Config {
	return Config{
		Cell:         cell,
		MantissaBits: 9,
		ULOffset:     60 * sim.Microsecond,
		StatusOffset: 200 * sim.Microsecond,
	}
}

// Stats counts RU activity.
type Stats struct {
	DLControlRx uint64
	DLDataRx    uint64
	ULDataTx    uint64
	StatusTx    uint64
	DecodeErr   uint64
}

// RU is one radio unit.
type RU struct {
	Cfg    Config
	Engine *sim.Engine
	Addr   netmodel.Addr
	Stats  Stats

	// SendFronthaul transmits towards the switch.
	SendFronthaul func(*netmodel.Frame)

	ues       []AttachedUE
	seq       uint8
	stopClock func()
	lastDL    sim.Time
	everDL    bool
	txFn      func(any) // long-lived transmit callback for pooled events
}

// New creates an RU.
func New(e *sim.Engine, cfg Config) *RU {
	if cfg.MantissaBits == 0 {
		cfg.MantissaBits = 9
	}
	return &RU{Cfg: cfg, Engine: e, Addr: netmodel.RUAddr(cfg.Cell)}
}

// AddUE registers a UE in the cell's radio range.
func (r *RU) AddUE(u AttachedUE) { r.ues = append(r.ues, u) }

// Start begins the RU's slot clock at the next slot boundary.
func (r *RU) Start() {
	if r.stopClock != nil {
		return
	}
	now := r.Engine.Now()
	next := (now + phy.TTI - 1) / phy.TTI * phy.TTI
	r.stopClock = r.Engine.Every(next-now, phy.TTI, "ru.slot", r.onSlot)
}

// Stop halts the RU (teardown).
func (r *RU) Stop() {
	if r.stopClock != nil {
		r.stopClock()
		r.stopClock = nil
	}
}

func (r *RU) onSlot() {
	slot := phy.SlotAt(r.Engine.Now())
	// Per-slot UL C-plane status packet: carries the UEs' UCI reports and
	// doubles as the RU-side packet stream the switch's migration-request
	// matching needs every slot (§5.1).
	r.sendStatus(slot)
	if phy.KindOf(slot) == phy.SlotUL {
		r.collectUplink(slot)
	}
}

func (r *RU) sendStatus(slot uint64) {
	var reports []fapi.UCI
	for _, u := range r.ues {
		reports = append(reports, u.CollectUCI()...)
	}
	pkt := fronthaul.NewControl(r.Cfg.Cell, r.seq, fronthaul.Uplink,
		fronthaul.SlotFromCounter(slot), 0)
	r.seq++
	pkt.Aux = fapi.EncodeUCIListPooled(reports)
	r.transmit(r.Cfg.StatusOffset, pkt, 0)
	// transmit serialized the packet onto the wire synchronously, so both
	// the leased Aux buffer and the packet struct are free again.
	mem.PutBytes(pkt.Aux)
	pkt.Recycle()
	r.Stats.StatusTx++
}

func (r *RU) collectUplink(slot uint64) {
	for _, u := range r.ues {
		iq, aux, ok := u.PullUplink(slot)
		if !ok {
			continue
		}
		iq = phy.PadSymbols(iq)
		pkt, err := fronthaul.NewUplinkIQ(r.Cfg.Cell, r.seq,
			fronthaul.SlotFromCounter(slot), 0, 0, iq, r.Cfg.MantissaBits)
		if err != nil {
			continue
		}
		r.seq++
		pkt.Section = u.ID()
		pkt.Aux = aux
		// Virtual size: a full-carrier UL slot's IQ share for this UE.
		virtual := len(iq) / 12 * fronthaul.BFPBlockBytes(r.Cfg.MantissaBits) * 4
		r.transmit(r.Cfg.ULOffset, pkt, virtual)
		// The wire copy is done; recycle the BFP payload and the packet
		// struct. Aux is the UE's HARQ buffer — not the RU's to free.
		mem.PutBytes(pkt.Payload)
		pkt.Recycle()
		r.Stats.ULDataTx++
	}
}

// transmit ships a fronthaul packet to the virtual PHY address after an
// intra-slot offset.
func (r *RU) transmit(offset sim.Time, pkt *fronthaul.Packet, virtual int) {
	frame := netmodel.GetFrame()
	frame.Src = r.Addr
	frame.Dst = netmodel.VirtualPHYAddr(r.Cfg.Cell)
	frame.Type = netmodel.EtherTypeECPRI
	frame.Payload = pkt.SerializePooled()
	frame.Virtual = virtual
	if r.txFn == nil {
		r.txFn = func(a any) {
			f := a.(*netmodel.Frame)
			if r.SendFronthaul != nil {
				r.SendFronthaul(f)
			} else {
				netmodel.ReleaseFrame(f)
			}
		}
	}
	r.Engine.AfterArgPooled(offset, "ru.fh-tx", r.txFn, frame)
}

// HandleFrame receives downlink fronthaul from the switch and beams it to
// the UEs. The RU is the frame's terminal consumer: sections and IQ are
// decoded (copied) into the UEs synchronously, so the frame and its wire
// buffer go back to the pool on return.
func (r *RU) HandleFrame(f *netmodel.Frame) {
	r.handleFrame(f)
	netmodel.ReleaseFrame(f)
}

func (r *RU) handleFrame(f *netmodel.Frame) {
	if f.Type != netmodel.EtherTypeECPRI {
		return
	}
	pkt, err := fronthaul.Decode(f.Payload)
	if err != nil {
		r.Stats.DecodeErr++
		return
	}
	if pkt.Dir != fronthaul.Downlink {
		return
	}
	r.lastDL = r.Engine.Now()
	r.everDL = true
	// Resolve the wrapped slot id against the current time: the RU is
	// PTP-synchronized, so the packet's slot is within a wrap period of
	// now.
	abs := resolveSlot(pkt.Slot, phy.SlotAt(r.Engine.Now()))
	switch pkt.Type {
	case fronthaul.MsgRTControl:
		r.Stats.DLControlRx++
		secs, err := fronthaul.DecodeSections(pkt.Payload)
		if err != nil {
			r.Stats.DecodeErr++
			return
		}
		for _, u := range r.ues {
			u.DeliverControl(abs, secs)
		}
	case fronthaul.MsgIQData:
		r.Stats.DLDataRx++
		for _, u := range r.ues {
			if u.ID() == pkt.Section {
				u.DeliverDownlink(abs, pkt)
			}
		}
	}
}

// Alive reports whether the cell received downlink fronthaul within the
// given window — the signal a searching UE locks onto.
func (r *RU) Alive(window sim.Time) bool {
	return r.everDL && r.Engine.Now()-r.lastDL <= window
}

// resolveSlot maps a wrapped SlotID to the absolute slot nearest to now.
// The candidate set lives in a fixed array: this runs once per received
// fronthaul packet and must not allocate.
func resolveSlot(sid fronthaul.SlotID, nowSlot uint64) uint64 {
	base := nowSlot - nowSlot%fronthaul.SlotWrap
	idx := sid.Index()
	var candidates [3]uint64
	n := 0
	candidates[n] = base + idx
	n++
	if base >= fronthaul.SlotWrap {
		candidates[n] = base - fronthaul.SlotWrap + idx
		n++
	}
	candidates[n] = base + fronthaul.SlotWrap + idx
	n++
	best := candidates[0]
	bestDist := dist(best, nowSlot)
	for _, c := range candidates[1:n] {
		if d := dist(c, nowSlot); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

func dist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
