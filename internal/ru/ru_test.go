package ru

import (
	"testing"

	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/netmodel"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
)

// fakeUE implements AttachedUE for RU tests.
type fakeUE struct {
	id       uint16
	ctrl     []uint64 // slots at which control arrived
	dl       []*fronthaul.Packet
	dlSlots  []uint64
	ulIQ     []complex128
	ulAux    []byte
	ulPulled []uint64
	uci      []fapi.UCI
}

func (f *fakeUE) ID() uint16 { return f.id }
func (f *fakeUE) DeliverControl(slot uint64, secs []fronthaul.Section) {
	f.ctrl = append(f.ctrl, slot)
}
func (f *fakeUE) DeliverDownlink(slot uint64, pkt *fronthaul.Packet) {
	f.dl = append(f.dl, pkt)
	f.dlSlots = append(f.dlSlots, slot)
}
func (f *fakeUE) PullUplink(slot uint64) ([]complex128, []byte, bool) {
	f.ulPulled = append(f.ulPulled, slot)
	if f.ulIQ == nil {
		return nil, nil, false
	}
	return f.ulIQ, f.ulAux, true
}
func (f *fakeUE) CollectUCI() []fapi.UCI {
	out := f.uci
	f.uci = nil
	return out
}

type capture struct {
	frames []*netmodel.Frame
	at     []sim.Time
}

func newRURig() (*sim.Engine, *RU, *fakeUE, *capture) {
	e := sim.NewEngine()
	r := New(e, DefaultConfig(0))
	cap := &capture{}
	r.SendFronthaul = func(f *netmodel.Frame) {
		cap.frames = append(cap.frames, f)
		cap.at = append(cap.at, e.Now())
	}
	u := &fakeUE{id: 7}
	r.AddUE(u)
	return e, r, u, cap
}

func TestRUStatusPacketEverySlot(t *testing.T) {
	e, r, _, cap := newRURig()
	r.Start()
	e.RunUntil(10 * phy.TTI)
	r.Stop()
	status := 0
	for _, f := range cap.frames {
		pkt, err := fronthaul.Decode(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Type == fronthaul.MsgRTControl && pkt.Dir == fronthaul.Uplink {
			status++
			if f.Dst != netmodel.VirtualPHYAddr(0) {
				t.Fatalf("status sent to %v, want virtual PHY address", f.Dst)
			}
		}
	}
	if status < 9 {
		t.Fatalf("status packets = %d over 10 slots", status)
	}
}

func TestRUCollectsUplinkOnULSlots(t *testing.T) {
	e, r, u, cap := newRURig()
	u.ulIQ = make([]complex128, 24)
	u.ulAux = []byte("tb bytes")
	r.Start()
	e.RunUntil(10 * phy.TTI)
	r.Stop()

	// PullUplink must only happen on UL slots (slot%5 == 4).
	for _, s := range u.ulPulled {
		if phy.KindOf(s) != phy.SlotUL {
			t.Fatalf("pulled uplink on slot %d (%v)", s, phy.KindOf(s))
		}
	}
	if len(u.ulPulled) != 2 {
		t.Fatalf("pulled %d times over 10 slots", len(u.ulPulled))
	}
	var data int
	for _, f := range cap.frames {
		pkt, _ := fronthaul.Decode(f.Payload)
		if pkt != nil && pkt.Type == fronthaul.MsgIQData {
			data++
			if pkt.Section != 7 || string(pkt.Aux) != "tb bytes" {
				t.Fatalf("UL packet: section=%d aux=%q", pkt.Section, pkt.Aux)
			}
			if f.Virtual <= len(f.Payload)/4 {
				t.Log("virtual size small; acceptable for tiny IQ")
			}
		}
	}
	if data != 2 {
		t.Fatalf("UL data packets = %d", data)
	}
}

func TestRUSilentUENotTransmitted(t *testing.T) {
	e, r, u, cap := newRURig()
	u.ulIQ = nil // no grant -> radio silence
	r.Start()
	e.RunUntil(10 * phy.TTI)
	r.Stop()
	for _, f := range cap.frames {
		pkt, _ := fronthaul.Decode(f.Payload)
		if pkt != nil && pkt.Type == fronthaul.MsgIQData {
			t.Fatal("U-plane packet for silent UE")
		}
	}
}

func TestRUStatusCarriesUCI(t *testing.T) {
	e, r, u, cap := newRURig()
	u.uci = []fapi.UCI{{UEID: 7, HARQID: 2, HasFeedback: true, ACK: true, CQIdB: 20}}
	r.Start()
	e.RunUntil(2 * phy.TTI)
	r.Stop()
	found := false
	for _, f := range cap.frames {
		pkt, _ := fronthaul.Decode(f.Payload)
		if pkt == nil || pkt.Type != fronthaul.MsgRTControl {
			continue
		}
		reports, err := fapi.DecodeUCIList(pkt.Aux)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range reports {
			if rep.UEID == 7 && rep.HARQID == 2 && rep.ACK {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("UCI never shipped in status packet")
	}
}

func TestRUDownlinkDelivery(t *testing.T) {
	e, r, u, _ := newRURig()
	r.Start()
	e.At(2*phy.TTI+100*sim.Microsecond, "dl", func() {
		// C-plane with a section, then a U-plane packet for UE 7.
		cp := fronthaul.NewControl(0, 0, fronthaul.Downlink, fronthaul.SlotFromCounter(2), 1)
		cp.Payload = fronthaul.EncodeSections([]fronthaul.Section{
			{UEID: 7, Dir: fronthaul.Downlink, GrantSlot: 2},
		})
		r.HandleFrame(&netmodel.Frame{Src: netmodel.PHYAddr(1), Dst: r.Addr,
			Type: netmodel.EtherTypeECPRI, Payload: cp.Serialize()})
		up, _ := fronthaul.NewDownlinkIQ(0, 1, fronthaul.SlotFromCounter(2), 0, 1,
			make([]complex128, 12), 9)
		up.Section = 7
		r.HandleFrame(&netmodel.Frame{Src: netmodel.PHYAddr(1), Dst: r.Addr,
			Type: netmodel.EtherTypeECPRI, Payload: up.Serialize()})
	})
	e.RunUntil(3 * phy.TTI)
	r.Stop()
	if len(u.ctrl) != 1 || u.ctrl[0] != 2 {
		t.Fatalf("control deliveries: %v", u.ctrl)
	}
	if len(u.dl) != 1 || u.dlSlots[0] != 2 {
		t.Fatalf("downlink deliveries: %v", u.dlSlots)
	}
	if !r.Alive(10 * sim.Millisecond) {
		t.Fatal("RU not alive after DL reception")
	}
}

func TestRUDownlinkFiltersByUE(t *testing.T) {
	e, r, u, _ := newRURig()
	other := &fakeUE{id: 9}
	r.AddUE(other)
	r.Start()
	e.At(phy.TTI, "dl", func() {
		up, _ := fronthaul.NewDownlinkIQ(0, 1, fronthaul.SlotFromCounter(1), 0, 1,
			make([]complex128, 12), 9)
		up.Section = 9
		r.HandleFrame(&netmodel.Frame{Src: netmodel.PHYAddr(1), Dst: r.Addr,
			Type: netmodel.EtherTypeECPRI, Payload: up.Serialize()})
	})
	e.RunUntil(2 * phy.TTI)
	r.Stop()
	if len(u.dl) != 0 {
		t.Fatal("UE 7 received UE 9's packet")
	}
	if len(other.dl) != 1 {
		t.Fatal("UE 9 missed its packet")
	}
}

func TestRUAliveWindow(t *testing.T) {
	e, r, _, _ := newRURig()
	if r.Alive(time10ms()) {
		t.Fatal("alive before any DL")
	}
	cp := fronthaul.NewControl(0, 0, fronthaul.Downlink, fronthaul.SlotFromCounter(0), 0)
	cp.Payload = fronthaul.EncodeSections(nil)
	r.HandleFrame(&netmodel.Frame{Src: netmodel.PHYAddr(1), Dst: r.Addr,
		Type: netmodel.EtherTypeECPRI, Payload: cp.Serialize()})
	if !r.Alive(time10ms()) {
		t.Fatal("not alive after DL")
	}
	e.RunUntil(100 * sim.Millisecond)
	if r.Alive(time10ms()) {
		t.Fatal("alive 100ms after last DL with 10ms window")
	}
}

func time10ms() sim.Time { return 10 * sim.Millisecond }

func TestResolveSlotNearWrap(t *testing.T) {
	// A packet stamped near the end of the wrap period, received just
	// after the wrap, must resolve backwards.
	nowSlot := uint64(fronthaul.SlotWrap + 2)
	sid := fronthaul.SlotFromCounter(fronthaul.SlotWrap - 1)
	if got := resolveSlot(sid, nowSlot); got != fronthaul.SlotWrap-1 {
		t.Fatalf("resolveSlot = %d, want %d", got, fronthaul.SlotWrap-1)
	}
	// And a fresh packet resolves forward.
	sid2 := fronthaul.SlotFromCounter(3)
	if got := resolveSlot(sid2, nowSlot); got != fronthaul.SlotWrap+3 {
		t.Fatalf("resolveSlot fresh = %d, want %d", got, fronthaul.SlotWrap+3)
	}
}

func TestRUBadFrameCounted(t *testing.T) {
	_, r, _, _ := newRURig()
	r.HandleFrame(&netmodel.Frame{Type: netmodel.EtherTypeECPRI, Payload: []byte{1, 2}})
	if r.Stats.DecodeErr != 1 {
		t.Fatalf("DecodeErr = %d", r.Stats.DecodeErr)
	}
	r.HandleFrame(&netmodel.Frame{Type: netmodel.EtherTypeUserData})
	// Non-fronthaul frames are ignored silently.
}
