package ru

import "slingshot/internal/ckpt/wire"

// SnapshotTo writes the RU's counters and fronthaul sequencing state.
func (r *RU) SnapshotTo(w *wire.W) {
	s := &r.Stats
	w.U64(s.DLControlRx)
	w.U64(s.DLDataRx)
	w.U64(s.ULDataTx)
	w.U64(s.StatusTx)
	w.U64(s.DecodeErr)
	w.U8(r.seq)
	w.I64(int64(r.lastDL))
	w.Bool(r.everDL)
	w.U32(uint32(len(r.ues)))
}
