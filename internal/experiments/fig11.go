package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/metrics"
	"slingshot/internal/sim"
	"slingshot/internal/traffic"
)

func init() {
	register("fig11", "Live PHY upgrade: per-UE uplink throughput before/after deploying a better-FEC PHY", runFig11)
}

// runFig11 reproduces Figure 11: three UEs send uplink UDP; the secondary
// PHY is an upgraded build whose FEC decoder runs more iterations. A
// planned migration mid-run deploys the upgrade with zero downtime. The
// marginal-SNR phones decode poorly on the old PHY and improve after the
// upgrade; the well-placed Raspberry Pi is unaffected, so the shares
// become more even.
func runFig11(scale float64) Result {
	seconds := int(10 * scale)
	if seconds < 6 {
		seconds = 6
	}
	upgradeAt := sim.Time(seconds/2) * sim.Second

	cfg := core.DefaultConfig()
	// Phone SNRs sit where the old 4-iteration decoder fails roughly half
	// its QPSK blocks (calibrated: BLER ~0.15-0.6 at 3.4-4 dB) while the
	// upgraded 12-iteration decoder is clean; the Raspberry Pi has margin
	// at 16QAM under either decoder.
	cfg.UEs = []core.UESpec{
		{ID: 1, Name: "OnePlus 10", MeanSNRdB: 3.0, FadeStd: 0.6, FadeCorr: 0.97},
		{ID: 2, Name: "Samsung A52", MeanSNRdB: 2.8, FadeStd: 0.6, FadeCorr: 0.97},
		{ID: 3, Name: "Raspberry Pi", MeanSNRdB: 16.5, FadeStd: 0.6, FadeCorr: 0.97},
	}
	// Old PHY build: 4 decoder iterations; upgraded build: 12.
	cfg.PHYIters = map[uint8]int{cfg.PrimaryServer: 4, cfg.SecondaryServer: 12}
	d := core.NewSlingshot(cfg)
	app := newAppServer(d)

	receivers := map[uint16]*traffic.UDPReceiver{}
	var senders []*traffic.UDPSender
	for _, spec := range cfg.UEs {
		id := spec.ID
		rx := &traffic.UDPReceiver{Engine: d.Engine, Flow: id,
			Bins: metrics.NewTimeSeries(0, sim.Second)}
		app.onUplink(id, rx.Handle)
		receivers[id] = rx
		tx := &traffic.UDPSender{Engine: d.Engine, Flow: id, RateBps: 12e6,
			PktSize: 1200, Send: ueUplink(d, id)}
		senders = append(senders, tx)
	}
	d.Start()
	d.Engine.At(100*sim.Millisecond, "start", func() {
		for _, tx := range senders {
			tx.Start()
		}
	})
	d.Engine.At(upgradeAt, "upgrade", func() { d.PlannedMigration() })
	d.Run(sim.Time(seconds) * sim.Second)
	for _, tx := range senders {
		tx.Stop()
	}
	d.Stop()

	var b strings.Builder
	fmt.Fprintf(&b, "Uplink UDP throughput (Mbps) per second; upgrade (planned migration to 12-iter FEC PHY) at t=%v:\n", upgradeAt)
	fmt.Fprintf(&b, "  t(s)")
	for _, spec := range cfg.UEs {
		fmt.Fprintf(&b, "  %-13s", spec.Name)
	}
	b.WriteString("\n")
	upgradeSec := int(upgradeAt / sim.Second)
	type phase struct{ sum, n float64 }
	before := map[uint16]*phase{}
	after := map[uint16]*phase{}
	for _, spec := range cfg.UEs {
		before[spec.ID] = &phase{}
		after[spec.ID] = &phase{}
	}
	for s := 0; s < seconds; s++ {
		fmt.Fprintf(&b, "  %3d ", s)
		for _, spec := range cfg.UEs {
			rx := receivers[spec.ID]
			mbps := 0.0
			if s < rx.Bins.NumBins() {
				mbps = rx.Bins.BinSum(s) * 8 / 1e6
			}
			fmt.Fprintf(&b, "  %-13.1f", mbps)
			if s >= 1 && s < upgradeSec {
				before[spec.ID].sum += mbps
				before[spec.ID].n++
			} else if s > upgradeSec {
				after[spec.ID].sum += mbps
				after[spec.ID].n++
			}
		}
		b.WriteString("\n")
	}

	var summary []string
	for _, spec := range cfg.UEs {
		pb, pa := before[spec.ID], after[spec.ID]
		summary = append(summary, fmt.Sprintf("%s: %.1f → %.1f Mbps",
			spec.Name, pb.sum/pb.n, pa.sum/pa.n))
	}
	return Result{
		ID: "fig11", Title: Title("fig11"), Output: b.String(),
		Summary: strings.Join(summary, "; ") +
			" (paper: phones improve and shares even out after the upgrade; no downtime)",
	}
}
