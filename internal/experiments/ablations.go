package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/dsp"
	"slingshot/internal/fronthaul"
	"slingshot/internal/metrics"
	"slingshot/internal/netmodel"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
	"slingshot/internal/switchsim"
	"slingshot/internal/traffic"
)

func init() {
	register("ablations", "Ablations of Slingshot's design choices (DESIGN.md §4)", runAblations)
}

// newBenchSwitch builds a minimal switch for the control-plane ablation.
func newBenchSwitch(e *sim.Engine) *switchsim.Switch {
	sw := switchsim.New(e, sim.NewRNG(5))
	sw.InstallRU(0, netmodel.RUAddr(0))
	sw.InstallPHY(0, netmodel.PHYAddr(0))
	sw.InstallPHY(1, netmodel.PHYAddr(1))
	sw.SetMapping(0, 0)
	return sw
}

// runAblations quantifies the design decisions DESIGN.md calls out:
//
//	A1  stateless migration  vs transferring PHY soft state
//	A2  null-FAPI standby    vs duplicate-work hot standby
//	A3  data-plane remap     vs control-plane rule update
//	A4  BFP mantissa width   9-bit vs 14-bit at marginal SNR
func runAblations(scale float64) Result {
	var b strings.Builder
	b.WriteString(ablateStateTransfer())
	b.WriteString("\n")
	b.WriteString(ablateDuplicateStandby(scale))
	b.WriteString("\n")
	b.WriteString(ablateControlPlane())
	b.WriteString("\n")
	b.WriteString(ablateBFPWidth())
	return Result{
		ID: "ablations", Title: Title("ablations"), Output: b.String(),
		Summary: "each Slingshot choice beats its alternative on the axis the paper optimizes",
	}
}

// ablateStateTransfer compares Slingshot's stateless migration against a
// hypothetical design that freezes the PHY and copies its soft state
// (HARQ LLR buffers + filters) before switchover.
func ablateStateTransfer() string {
	// Soft-state inventory for one loaded cell: active HARQ buffers hold
	// N coded-bit LLRs as float32 per in-flight process per UE; real
	// FlexRAN-scale cells also hold channel estimates per PRB.
	const (
		ues              = 16
		procsPerUE       = 8
		llrsPerProc      = 26112 // one real TB: 273 PRB * 96 LLR/PRB
		bytesPerLLR      = 4
		chanEstBytes     = 273 * 12 * 8 * ues
		linkBytesPerSec  = 100e9 / 8
		serializationHit = 2.0 // marshal+unmarshal on both ends
	)
	stateBytes := float64(ues*procsPerUE*llrsPerProc*bytesPerLLR + chanEstBytes)
	transfer := sim.Time(stateBytes * serializationHit / linkBytesPerSec * float64(sim.Second))
	// Consistency requires freezing the PHY for the copy: that blackout
	// alone spans multiple TTIs, and the state is stale on arrival (the
	// channel moved on).
	slotsLost := float64(transfer) / float64(phy.TTI)

	stateless := 3.0 // TTIs, measured in sec82
	return fmt.Sprintf(`A1: stateless migration vs state transfer
  soft state per loaded cell:   %.1f MB (HARQ LLR buffers + channel estimates)
  freeze-and-copy blackout:     %v (%.1f TTIs) + state is stale on arrival
  Slingshot (discard):          ~%.0f TTIs total disruption, no freeze
  -> discarding costs less than one HARQ round trip; copying costs more
     than the failure it protects against.
`, stateBytes/1e6, transfer, slotsLost, stateless)
}

// ablateDuplicateStandby runs the same loaded deployment twice: standby on
// null FAPIs (Slingshot) vs standby receiving duplicated real work.
func ablateDuplicateStandby(scale float64) string {
	duration := sim.Time(8*scale) * sim.Second
	if duration < 2*sim.Second {
		duration = 2 * sim.Second
	}
	// Downlink load: the duplicated DL_CONFIG/TX_DATA make the standby
	// encode every transport block the primary does. (Duplicating uplink
	// decode work would additionally need mirrored fronthaul, compounding
	// the cost in NIC bandwidth too.)
	run := func(duplicate bool) (primary, standby uint64) {
		cfg := core.DefaultConfig()
		cfg.UEs = []core.UESpec{{ID: 1, Name: "load", MeanSNRdB: 26, FadeStd: 1.0, FadeCorr: 0.97}}
		d := core.NewSlingshot(cfg)
		d.L2Orion.Cfg.DuplicateToStandby = duplicate
		app := newAppServer(d)
		rx := &traffic.UDPReceiver{Engine: d.Engine, Flow: 1}
		d.UEs[1].OnDownlink = rx.Handle
		tx := &traffic.UDPSender{Engine: d.Engine, Flow: 1, RateBps: 60e6, PktSize: 1200, Send: app.sendDownlink(1)}
		d.Start()
		d.Engine.At(100*sim.Millisecond, "start", tx.Start)
		d.Run(duration)
		tx.Stop()
		d.Stop()
		pp := d.PHYs[cfg.PrimaryServer].Stats
		ss := d.PHYs[cfg.SecondaryServer].Stats
		return pp.WorkUnits + pp.EncodedTBs, ss.WorkUnits + ss.EncodedTBs
	}
	p1, s1 := run(false)
	p2, s2 := run(true)
	return fmt.Sprintf(`A2: null-FAPI standby vs duplicate-work standby (%v of downlink load)
  null FAPIs (Slingshot):  primary %d work units, standby %d (%.0f%% overhead)
  duplicated work:         primary %d work units, standby %d (%.0f%% overhead)
  -> the naive hot standby doubles cluster PHY compute (and would double
     fronthaul NIC bandwidth for uplink) for zero extra protection; null
     slot requests keep it alive for free (§6.2).
`, duration, p1, s1, 100*float64(s1)/float64(p1+1),
		p2, s2, 100*float64(s2)/float64(p2+1))
}

// ablateControlPlane compares the in-dataplane migrate_on_slot remap with
// a conventional control-plane rule update.
func ablateControlPlane() string {
	e := sim.NewEngine()
	sw := newBenchSwitch(e)
	ctl := metrics.NewSample()
	for i := 0; i < 50; i++ {
		done := false
		sw.SetMappingViaControlPlane(0, 1, func(d sim.Time) {
			ctl.Add(d.Millis())
			done = true
		})
		e.Run()
		if !done {
			break
		}
	}
	// Data-plane remap executes on the first matching packet: one slot
	// boundary away at most, nanoseconds of pipeline work.
	return fmt.Sprintf(`A3: data-plane remap vs control-plane rule update
  control-plane update latency: median %.1f ms, p99 %.1f ms (paper: 29 ms p99.9)
  data-plane migrate_on_slot:   executes on the next matching packet at a
                                TTI boundary (<= 500 us away), ns-scale work
  -> a control-plane remap alone would eat the entire 10 ms downtime
     budget and cannot align to TTI boundaries (§5.1).
`, ctl.Median(), ctl.Percentile(99))
}

// ablateBFPWidth measures decode success at a marginal SNR under 9-bit
// and 14-bit fronthaul compression.
func ablateBFPWidth() string {
	success := func(width int, snr float64) float64 {
		codec := phy.NewCodec(0, 0, width, 0xB0F)
		rng := sim.NewRNG(77)
		ok := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			ch := dsp.NewChannel(snr, 0, 0, rng.Fork(uint64(i)))
			slot := uint64(100 + i)
			iq := phy.PadSymbols(codec.EncodeBlock([]byte("x"), slot, 1, dsp.QAM64))
			enc, _ := fronthaul.CompressBFP(ch.Transmit(iq), width)
			dec, _ := fronthaul.DecompressBFP(enc, width)
			if codec.DecodeBlock(dec, slot, 1, dsp.QAM64, nil, 0, true, 8).OK {
				ok++
			}
		}
		return float64(ok) / trials
	}
	const snr = 13.6
	s4 := success(4, snr)
	s9 := success(9, snr)
	s14 := success(14, snr)
	return fmt.Sprintf(`A4: fronthaul BFP width at marginal SNR (64QAM @ %.0f dB)
  4-bit mantissa:                 %.0f%% block success, 13 B/PRB (-54%% bandwidth)
  9-bit mantissa (O-RAN default): %.0f%% block success, 28 B/PRB
  14-bit mantissa:                %.0f%% block success, 43 B/PRB (+54%% bandwidth)
  -> 9-bit sits past the knee: its quantization noise is invisible next
     to the channel, while 4-bit quantization noise lands on the MCS
     cliff. The paper's 4.5 Gbps fronthaul assumes the 9-bit point.
`, snr, 100*s4, 100*s9, 100*s14)
}
