package experiments

import (
	"strings"
	"testing"
)

func TestRegistryListsAll(t *testing.T) {
	want := []string{"ablations", "chaos", "extl2", "extmimo", "fig10a", "fig10b", "fig11", "fig12",
		"fig3", "fig8", "fig9", "frontier", "sec82", "sec85", "sec86", "table2"}
	got := List()
	if len(got) != len(want) {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
		if Title(got[i]) == "" {
			t.Fatalf("no title for %s", got[i])
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nonexistent", 1); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "x", Title: "T", Output: "body\n", Summary: "sum"}
	s := r.String()
	for _, want := range []string{"== x: T ==", "body", "sum"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String missing %q:\n%s", want, s)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Run("fig3", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "RDMA") || !strings.Contains(r.Output, "TCP") {
		t.Fatal("fig3 missing transports")
	}
	if !strings.Contains(r.Summary, "crashed in 40/40") {
		t.Fatalf("FlexRAN did not crash in all runs: %s", r.Summary)
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Run("fig8", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline must show a multi-second outage; Slingshot must not.
	if !strings.Contains(r.Summary, "Slingshot degraded seconds: 0") {
		t.Fatalf("Slingshot video degraded: %s", r.Summary)
	}
	if strings.Contains(r.Summary, "outage ≈ 0 s") {
		t.Fatalf("baseline shows no outage: %s", r.Summary)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Run("fig9", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "OnePlus") {
		t.Fatal("fig9 missing UEs")
	}
	// The spike must stay within natural-fluctuation territory (<25 ms).
	if strings.Contains(r.Summary, "spike above median: -") {
		t.Fatal("negative spike")
	}
}

func TestFig10bShape(t *testing.T) {
	r, err := Run("fig10b", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Summary, "planned migration: pre") {
		t.Fatalf("summary: %s", r.Summary)
	}
	// Planned migrations must show zero blackout bins.
	for _, line := range strings.Split(r.Summary, "\n") {
		if strings.Contains(line, "planned migration") && !strings.Contains(line, "zero-bins 0") {
			t.Fatalf("planned migration dropped traffic: %s", line)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Run("fig12", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Summary, "PASS") {
		t.Fatalf("Orion latency bound violated: %s", r.Summary)
	}
}

func TestSec82Shape(t *testing.T) {
	r, err := Run("sec82", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Summary, "PASS") {
		t.Fatalf("failover timeline out of bounds: %s\n%s", r.Summary, r.Output)
	}
}

func TestSec85Shape(t *testing.T) {
	r, err := Run("sec85", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Summary, "secondary compute = 0.00%") {
		t.Fatalf("secondary not idle: %s", r.Summary)
	}
}

func TestSec86Shape(t *testing.T) {
	r, err := Run("sec86", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Summary, "PASS") {
		t.Fatalf("inter-packet gap check failed: %s", r.Summary)
	}
	for _, res := range []string{"5.2%", "10.4%", "14.1%", "9.5%"} {
		if !strings.Contains(r.Output, res) {
			t.Fatalf("resource table missing %s:\n%s", res, r.Output)
		}
	}
}

func TestChaosShape(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is slow")
	}
	r, err := Run("chaos", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "fingerprint") {
		t.Fatalf("chaos output:\n%s", r.Output)
	}
	if !strings.Contains(r.Summary, "upheld every invariant") {
		t.Fatalf("chaos found violations: %s\n%s", r.Summary, r.Output)
	}
}

func TestTable2SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 is slow")
	}
	r, err := Run("table2", 0.084) // ~5s per rate
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "Interrupted HARQ seqs") {
		t.Fatalf("table2 output:\n%s", r.Output)
	}
}

func TestFig11SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 is slow")
	}
	r, err := Run("fig11", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "Raspberry Pi") {
		t.Fatalf("fig11 output:\n%s", r.Output)
	}
}
