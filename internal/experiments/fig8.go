package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/par"
	"slingshot/internal/sim"
	"slingshot/internal/traffic"
)

func init() {
	register("fig8", "Downlink video bitrate across a PHY failure (no failure / baseline / Slingshot)", runFig8)
}

// videoScenario runs one 12-second video-conference session and returns
// the per-second received bitrate. mode: "none" (no failure), "baseline"
// (failure without Slingshot), "slingshot" (failure with Slingshot).
func videoScenario(mode string, seconds int) []float64 {
	cfg := core.DefaultConfig()
	cfg.UEs = []core.UESpec{{ID: 1, Name: "video-ue", MeanSNRdB: 24, FadeStd: 1.2, FadeCorr: 0.97}}

	var d *core.Deployment
	if mode == "baseline" {
		d = core.NewBaseline(cfg)
	} else {
		d = core.NewSlingshot(cfg)
	}
	app := newAppServer(d)
	sink := traffic.NewVideoSink(d.Engine, 1)
	d.UEs[1].OnDownlink = func(pkt []byte) { sink.Handle(pkt) }
	src := &traffic.VideoSource{
		Engine: d.Engine, Flow: 1, RateBps: 500e3, FPS: 25,
		Send: app.sendDownlink(1),
	}
	d.Start()
	src.Start()
	if mode != "none" {
		// Primary PHY fails within the third second (paper Fig 8).
		d.Engine.At(2600*sim.Millisecond, "kill", func() { d.KillActivePHY() })
	}
	d.Run(sim.Time(seconds) * sim.Second)
	src.Stop()
	d.Stop()

	out := make([]float64, seconds)
	for i := 0; i < seconds; i++ {
		out[i] = sink.BitrateKbps(i)
	}
	return out
}

func runFig8(scale float64) Result {
	seconds := int(12 * scale)
	if seconds < 5 {
		seconds = 5
	}
	// The three scenarios are independent simulations; shard them across
	// the worker pool and read the series back in a fixed order.
	modes := []string{"none", "baseline", "slingshot"}
	series := par.Map(len(modes), func(i int) []float64 {
		return videoScenario(modes[i], seconds)
	})
	none, baseline, sling := series[0], series[1], series[2]

	var b strings.Builder
	fmt.Fprintf(&b, "Avg received video bitrate (kbps) per second; PHY killed at t=2.6s:\n")
	fmt.Fprintf(&b, "  t(s)  no-failure  failure-no-slingshot  failure-slingshot\n")
	for i := 0; i < seconds; i++ {
		fmt.Fprintf(&b, "  %3d   %9.0f  %19.0f  %17.0f\n", i, none[i], baseline[i], sling[i])
	}

	// Outage length in the baseline: seconds with <10% of target bitrate
	// after the failure.
	outage := 0
	for i := 2; i < seconds; i++ {
		if baseline[i] < 50 {
			outage++
		}
	}
	slingDip := 0
	for i := 2; i < seconds; i++ {
		if sling[i] < 400 {
			slingDip++
		}
	}
	return Result{
		ID: "fig8", Title: Title("fig8"), Output: b.String(),
		Summary: fmt.Sprintf(
			"baseline outage ≈ %d s of zero bitrate (paper: 6.2 s reattach); Slingshot degraded seconds: %d (paper: none)",
			outage, slingDip),
	}
}
