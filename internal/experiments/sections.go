package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/metrics"
	"slingshot/internal/par"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
	"slingshot/internal/switchsim"
	"slingshot/internal/traffic"
)

func init() {
	register("sec82", "Failover timeline: detection latency and dropped TTIs (§8.2)", runSec82)
	register("sec85", "Overhead of the hot-standby secondary PHY (§8.5)", runSec85)
	register("sec86", "Switch ASIC resources, inter-packet gap, detector parameters (§8.6)", runSec86)
}

// runSec82 kills the primary PHY and measures the paper's §8.2 claims:
// failure detected within the 450 µs timeout (+9 µs precision), fronthaul
// remapped at a TTI boundary, and at most ~3 TTIs of downlink silence at
// the RU.
func runSec82(scale float64) Result {
	const runs = 10
	detection := metrics.NewSample() // ms after kill
	gap := metrics.NewSample()       // DL-silence TTIs at the UE
	boundarySlots := metrics.NewSample()

	// Each failover run is an independent simulation: shard them across the
	// worker pool and fold the per-run measurements into the samples in run
	// order, so the report is byte-identical at any worker count.
	type sec82Run struct {
		detection, boundary float64
		hasDet, hasBound    bool
		gapTTIs             float64
	}
	measured := par.Map(runs, func(run int) sec82Run {
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(run + 1)
		cfg.UEs = []core.UESpec{{ID: 1, Name: "probe-ue", MeanSNRdB: 25, FadeStd: 0.5, FadeCorr: 0.9}}
		d := core.NewSlingshot(cfg)
		d.Start()
		// Kill towards the end of a slot (worst case per §8.2).
		killAt := 200*sim.Millisecond + 450*sim.Microsecond
		killSlot := uint64(killAt / phy.TTI)
		d.Engine.At(killAt, "kill", func() { d.KillActivePHY() })

		// Track the longest UE sync gap around the failover.
		var maxGap sim.Time
		stop := d.Engine.Every(50*sim.Microsecond, 50*sim.Microsecond, "probe", func() {
			now := d.Engine.Now()
			if now > killAt-10*sim.Millisecond && now < killAt+50*sim.Millisecond {
				if g := now - d.UEs[1].LastSync(); g > maxGap {
					maxGap = g
				}
			}
		})
		d.Run(400 * sim.Millisecond)
		stop()
		d.Stop()

		var m sec82Run
		if len(d.Switch.DetectionLog) > 0 {
			m.detection = (d.Switch.DetectionLog[0] - killAt).Millis()
			m.hasDet = true
		}
		if len(d.Switch.MigrationLog) > 0 {
			m.boundary = float64(d.Switch.MigrationLog[0].At/phy.TTI) - float64(killSlot)
			m.hasBound = true
		}
		m.gapTTIs = float64(maxGap) / float64(phy.TTI)
		return m
	})
	for _, m := range measured {
		if m.hasDet {
			detection.Add(m.detection)
		}
		if m.hasBound {
			boundarySlots.Add(m.boundary)
		}
		gap.Add(m.gapTTIs)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Across %d failovers (kill near end of slot N):\n", runs)
	fmt.Fprintf(&b, "  detection latency after kill:  median %.3f ms, max %.3f ms\n",
		detection.Median(), detection.Max())
	fmt.Fprintf(&b, "  fronthaul remap executed:      median %.1f slots after kill (max %.1f)\n",
		boundarySlots.Median(), boundarySlots.Max())
	fmt.Fprintf(&b, "  UE downlink silence:           median %.1f TTIs, max %.1f TTIs\n",
		gap.Median(), gap.Max())
	ok := "PASS"
	if gap.Max() > 6 || detection.Max() > 1.0 {
		ok = "CHECK"
	}
	return Result{
		ID: "sec82", Title: Title("sec82"), Output: b.String(),
		Summary: fmt.Sprintf("%s — paper: detection ≈450 µs after last heartbeat, ≤3 dropped TTIs, orders of magnitude below VM migration's 100s of ms", ok),
	}
}

// runSec85 measures the marginal cost of the hot standby: decoder work,
// per-slot activity, and the null-FAPI network bandwidth.
func runSec85(scale float64) Result {
	duration := sim.Time(20*scale) * sim.Second
	if duration < 2*sim.Second {
		duration = 2 * sim.Second
	}
	cfg := core.DefaultConfig()
	cfg.UEs = []core.UESpec{{ID: 1, Name: "load-ue", MeanSNRdB: 26, FadeStd: 1.0, FadeCorr: 0.97}}
	d := core.NewSlingshot(cfg)
	app := newAppServer(d)
	// Moderate bidirectional load on the primary.
	rxUL := &traffic.UDPReceiver{Engine: d.Engine, Flow: 1}
	app.onUplink(1, rxUL.Handle)
	txUL := &traffic.UDPSender{Engine: d.Engine, Flow: 1, RateBps: 10e6, PktSize: 1200, Send: ueUplink(d, 1)}
	rxDL := &traffic.UDPReceiver{Engine: d.Engine, Flow: 2}
	d.UEs[1].OnDownlink = rxDL.Handle
	txDL := &traffic.UDPSender{Engine: d.Engine, Flow: 2, RateBps: 60e6, PktSize: 1200, Send: app.sendDownlink(1)}
	d.Start()
	d.Engine.At(100*sim.Millisecond, "start", func() { txUL.Start(); txDL.Start() })
	d.Run(duration)
	txUL.Stop()
	txDL.Stop()
	d.Stop()

	prim := d.PHYs[cfg.PrimaryServer].Stats
	sec := d.PHYs[cfg.SecondaryServer].Stats
	nullBps := float64(d.L2Orion.Stats.NullsSent) * 29 * 8 / duration.Seconds()

	var b strings.Builder
	tab := metrics.Table{Header: []string{"metric", "primary PHY", "secondary PHY"}}
	tab.AddRow("slots processed", fmt.Sprintf("%d", prim.SlotsProcessed), fmt.Sprintf("%d", sec.SlotsProcessed))
	tab.AddRow("null slots", fmt.Sprintf("%d", prim.NullSlots), fmt.Sprintf("%d", sec.NullSlots))
	tab.AddRow("decoder work units", fmt.Sprintf("%d", prim.WorkUnits), fmt.Sprintf("%d", sec.WorkUnits))
	tab.AddRow("TBs encoded", fmt.Sprintf("%d", prim.EncodedTBs), fmt.Sprintf("%d", sec.EncodedTBs))
	tab.AddRow("UL decodes", fmt.Sprintf("%d", prim.DecodeOK+prim.DecodeFail), fmt.Sprintf("%d", sec.DecodeOK+sec.DecodeFail))
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\nnull-FAPI network usage towards the standby: %.2f Mbps (paper: <1 MB/s on 100 GbE)\n", nullBps/1e6)

	overhead := 100 * float64(sec.WorkUnits) / float64(prim.WorkUnits+1)
	return Result{
		ID: "sec85", Title: Title("sec85"), Output: b.String(),
		Summary: fmt.Sprintf("secondary compute = %.2f%% of primary (paper: no significant CPU/FEC increase)", overhead),
	}
}

// runSec86 reports the switch resource model at the paper's 256-RU scale,
// the measured max downlink inter-packet gap, and the detector parameters
// derived from it.
func runSec86(scale float64) Result {
	duration := sim.Time(20*scale) * sim.Second
	if duration < 2*sim.Second {
		duration = 2 * sim.Second
	}
	// Busy deployment to measure the inter-packet gap under load.
	cfg := core.DefaultConfig()
	cfg.UEs = []core.UESpec{{ID: 1, Name: "gap-ue", MeanSNRdB: 26, FadeStd: 1.0, FadeCorr: 0.97}}
	d := core.NewSlingshot(cfg)
	app := newAppServer(d)
	rxDL := &traffic.UDPReceiver{Engine: d.Engine, Flow: 2}
	d.UEs[1].OnDownlink = rxDL.Handle
	txDL := &traffic.UDPSender{Engine: d.Engine, Flow: 2, RateBps: 80e6, PktSize: 1200, Send: app.sendDownlink(1)}
	d.Start()
	d.Engine.At(100*sim.Millisecond, "start", txDL.Start)
	d.Run(duration)
	txDL.Stop()
	maxGap := d.Switch.DLGapMax[cfg.PrimaryServer]
	d.Stop()

	var b strings.Builder
	res := resourcesTable()
	b.WriteString("Switch ASIC usage provisioned for 256 RUs / 256 PHYs:\n")
	b.WriteString(res)
	fmt.Fprintf(&b, "\nmax DL inter-packet gap (busy+idle): %v (paper: 393 us)\n", maxGap)
	fmt.Fprintf(&b, "detector timeout: %v, timer ticks n=%d, precision %v, pktgen load %.0f pps\n",
		d.Switch.Timeout, d.Switch.TimerTicks, d.Switch.DetectionPrecision(),
		d.Switch.PacketGeneratorLoad())

	ok := "PASS"
	if maxGap >= d.Switch.Timeout {
		ok = "FAIL: gap exceeds detector timeout"
	}
	return Result{
		ID: "sec86", Title: Title("sec86"), Output: b.String(),
		Summary: fmt.Sprintf("%s — measured gap %v stays under the 450 us timeout", ok, maxGap),
	}
}

func resourcesTable() string {
	usage := switchsim.Resources(256, 256)
	tab := metrics.Table{Header: []string{"resource", "usage"}}
	tab.AddRow("crossbar", fmt.Sprintf("%.1f%%", usage.CrossbarPct))
	tab.AddRow("ALU", fmt.Sprintf("%.1f%%", usage.ALUPct))
	tab.AddRow("gateway", fmt.Sprintf("%.1f%%", usage.GatewayPct))
	tab.AddRow("SRAM", fmt.Sprintf("%.1f%%", usage.SRAMPct))
	tab.AddRow("hash bits", fmt.Sprintf("%.1f%%", usage.HashBitsPct))
	return tab.String()
}
