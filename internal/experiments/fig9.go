package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/metrics"
	"slingshot/internal/sim"
	"slingshot/internal/traffic"
)

func init() {
	register("fig9", "Ping latency of three UEs across a Slingshot PHY failover", runFig9)
}

// runFig9 reproduces Figure 9: three commercial UEs ping the application
// server every 10 ms; the primary PHY is killed mid-run; the transient
// disruption should resemble natural wireless fluctuations (≤ ~15 ms
// spike on at most one UE, no losses beyond that).
func runFig9(scale float64) Result {
	total := sim.Time(4*scale) * sim.Second
	if total < 2*sim.Second {
		total = 2 * sim.Second
	}
	killAt := total / 2

	cfg := core.DefaultConfig() // three UEs: OnePlus, Samsung, RPi
	d := core.NewSlingshot(cfg)
	app := newAppServer(d)

	pingers := map[uint16]*traffic.Pinger{}
	for _, spec := range cfg.UEs {
		id := spec.ID
		p := &traffic.Pinger{
			Engine: d.Engine, Flow: id, Interval: 10 * sim.Millisecond,
			Send: ueUplink(d, id),
		}
		app.onUplink(id, traffic.Echo(app.sendDownlink(id)))
		d.UEs[id].OnDownlink = p.Handle
		pingers[id] = p
	}
	d.Start()
	d.Engine.At(200*sim.Millisecond, "start-pings", func() {
		for _, p := range pingers {
			p.Start()
		}
	})
	d.Engine.At(killAt, "kill", func() { d.KillActivePHY() })
	d.Run(total)
	for _, p := range pingers {
		p.Stop()
	}
	d.Stop()

	var b strings.Builder
	fmt.Fprintf(&b, "PHY killed at t=%v. Ping RTT (ms) summary per UE:\n", killAt)
	tab := metrics.Table{Header: []string{"UE", "median", "p95", "max", "max@failover±100ms", "lost"}}
	var worstSpike float64
	for _, spec := range cfg.UEs {
		p := pingers[spec.ID]
		s := metrics.NewSample()
		windowMax := 0.0
		for i, rtt := range p.RTTs {
			s.Add(rtt)
			at := p.Times[i]
			if at > killAt-100*sim.Millisecond && at < killAt+100*sim.Millisecond {
				if rtt > windowMax {
					windowMax = rtt
				}
			}
		}
		if windowMax-s.Median() > worstSpike {
			worstSpike = windowMax - s.Median()
		}
		tab.AddRow(spec.Name,
			fmt.Sprintf("%.1f", s.Median()),
			fmt.Sprintf("%.1f", s.Percentile(95)),
			fmt.Sprintf("%.1f", s.Max()),
			fmt.Sprintf("%.1f", windowMax),
			fmt.Sprintf("%d", p.LossCount()))
	}
	b.WriteString(tab.String())

	// Time series around the failover for the plot.
	fmt.Fprintf(&b, "\nRTT series ±200ms around failover (ms):\n  t(ms)  ")
	for _, spec := range cfg.UEs {
		fmt.Fprintf(&b, "%-14s", spec.Name)
	}
	b.WriteString("\n")
	for off := -200 * sim.Millisecond; off <= 200*sim.Millisecond; off += 20 * sim.Millisecond {
		at := killAt + off
		fmt.Fprintf(&b, "  %5.0f  ", off.Millis())
		for _, spec := range cfg.UEs {
			p := pingers[spec.ID]
			val := "-"
			for i, t := range p.Times {
				if t >= at-5*sim.Millisecond && t <= at+5*sim.Millisecond {
					val = fmt.Sprintf("%.1f", p.RTTs[i])
					break
				}
			}
			fmt.Fprintf(&b, "%-14s", val)
		}
		b.WriteString("\n")
	}
	return Result{
		ID: "fig9", Title: Title("fig9"), Output: b.String(),
		Summary: fmt.Sprintf("worst failover RTT spike above median: %.1f ms (paper: one UE spikes ~15 ms, others unaffected)", worstSpike),
	}
}
