package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/chaos"
	"slingshot/internal/par"
)

func init() {
	register("chaos", "Randomized fault schedules under the cross-layer invariant checker", runChaos)
}

// runChaos soaks the default chaos profile over several seeds and reports
// each run's fingerprint plus any invariant violations. `-run chaos` is
// the CLI entry point for the fault-injection harness; the package's
// -chaos.seeds soak test is the wide version.
func runChaos(scale float64) Result {
	profile := chaos.Default().Scale(scale)
	seeds := 3
	if scale < 0.5 {
		seeds = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "profile %s, horizon %v, %d seeds\n", profile.Name, profile.Horizon, seeds)
	// Seed-shard across the worker pool: each run is an independent
	// simulation, and the report text is assembled in ascending seed order
	// afterwards, so the output is byte-identical at any worker count.
	reports := par.Map(seeds, func(i int) *chaos.Report {
		return chaos.Run(uint64(i)+1, profile)
	})
	failures := 0
	var firstFailing *chaos.Report
	for _, rep := range reports {
		fmt.Fprintf(&b, "seed %d: %d fault events, %d migrations, %d detections, %d violations, fingerprint %016x\n",
			rep.Seed, len(rep.Events), rep.Migrations, rep.Detections, rep.TotalViolations, rep.Fingerprint)
		if rep.TotalViolations > 0 {
			failures++
			if firstFailing == nil {
				firstFailing = rep
			}
		}
	}
	summary := fmt.Sprintf("%d/%d seeds upheld every invariant (TTI monotonicity, §8.2 failover bound, HARQ conservation, RLC ordering, boundary-only migration, UE continuity)",
		seeds-failures, seeds)
	if firstFailing != nil {
		fmt.Fprintf(&b, "\nminimal failing seed %d:\n%s", firstFailing.Seed, firstFailing)
		summary = fmt.Sprintf("INVARIANT VIOLATIONS in %d/%d seeds; minimal failing seed %d", failures, seeds, firstFailing.Seed)
	}
	return Result{
		ID:      "chaos",
		Title:   Title("chaos"),
		Output:  b.String(),
		Summary: summary,
	}
}
