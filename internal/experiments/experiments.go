// Package experiments regenerates every table and figure of the paper's
// evaluation (§8). Each experiment is a self-contained harness: it builds
// the workload and deployment it needs, runs the simulation, and prints
// the same rows/series the paper reports. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's rendered outcome.
type Result struct {
	ID      string
	Title   string
	Output  string
	Summary string
}

func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Output)
	if r.Summary != "" {
		fmt.Fprintf(&b, "\n%s\n", r.Summary)
	}
	return b.String()
}

// Runner produces a Result. Scale in (0,1] shrinks long experiments for
// quick runs and benchmarks (1 = paper-duration).
type Runner func(scale float64) Result

var registry = map[string]struct {
	title string
	run   Runner
}{}

func register(id, title string, run Runner) {
	registry[id] = struct {
		title string
		run   Runner
	}{title, run}
}

// List returns the registered experiment ids, sorted.
func List() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Run executes one experiment at the given scale.
func Run(id string, scale float64) (Result, error) {
	ent, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, List())
	}
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return ent.run(scale), nil
}

// RunAll executes every experiment.
func RunAll(scale float64) []Result {
	out := make([]Result, 0, len(registry))
	for _, id := range List() {
		r, _ := Run(id, scale)
		out = append(out, r)
	}
	return out
}
