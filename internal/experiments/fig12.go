package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/fapi"
	"slingshot/internal/metrics"
	"slingshot/internal/netmodel"
	"slingshot/internal/orion"
	"slingshot/internal/sim"
)

func init() {
	register("fig12", "One-way L2→PHY latency added by Orion vs downlink load", runFig12)
}

// orionPathLatency measures the one-way latency of FAPI messages from the
// L2-side Orion's SHM ingress to the PHY-side Orion's SHM egress, across
// a 100 GbE link, at a given downlink user-data rate. This mirrors §8.7's
// microbenchmark: the two real-testbed points plus higher loads generated
// with a test-mode MAC.
func orionPathLatency(rateBps float64, duration sim.Time) *metrics.Sample {
	e := sim.NewEngine()
	l2o := orion.New(e, orion.DefaultConfig(10, orion.RoleL2Side))
	phyO := orion.New(e, orion.DefaultConfig(1, orion.RolePHYSide))
	phyO.SetL2Server(10)
	l2o.AddCell(0, 1, 2)

	// 100 GbE link between the Orions (switch transit folded into link
	// latency).
	link := netmodel.NewLink(e, phyO, 100e9, 2*sim.Microsecond)
	l2o.SendFrame = func(f *netmodel.Frame) {
		if f.Dst == phyO.Addr {
			link.Send(f)
		}
	}

	lat := metrics.NewSample()
	sent := map[uint64]sim.Time{}
	phyO.ToPHY = func(m fapi.Message) {
		if tx, ok := m.(*fapi.TxData); ok {
			if t0, found := sent[tx.Slot]; found {
				lat.Add(e.Now().Sub(t0).Micros())
				delete(sent, tx.Slot)
			}
		}
		// This hook stands in for the PHY, so delivery transfers ownership
		// here: every message arrived via fapi.Decode and is recycled
		// wholesale once measured.
		fapi.ReleaseDeep(m)
	}

	// Per-slot FAPI load: UL/DL configs plus a TxData sized to the DL
	// rate (3 of 5 slots are DL). Requests are pool-leased (the L2-side
	// Orion recycles them after encoding) and the TB payload buffer is
	// reused across slots — its zeros are copied onto the wire before the
	// next slot fires.
	const tti = 500 * sim.Microsecond
	bytesPerDLSlot := int(rateBps / 8 * tti.Seconds() * 5 / 3)
	payload := make([]byte, bytesPerDLSlot)
	slot := uint64(0)
	e.Every(0, tti, "gen", func() {
		slot++
		l2o.FromL2(fapi.GetULConfig(0, slot))
		dl := fapi.GetDLConfig(0, slot)
		dl.PDUs = append(dl.PDUs, fapi.PDU{UEID: 1})
		l2o.FromL2(dl)
		if slot%5 < 3 {
			tx := fapi.GetTxData(0, slot)
			tx.Payloads = append(tx.Payloads, fapi.TBPayload{UEID: 1, Data: payload})
			sent[slot] = e.Now()
			l2o.FromL2(tx)
		}
	})
	e.RunUntil(duration)
	return lat
}

func runFig12(scale float64) Result {
	duration := sim.Time(20*scale) * sim.Second
	if duration < 2*sim.Second {
		duration = 2 * sim.Second
	}
	loads := []struct {
		name string
		bps  float64
	}{
		{"idle", 1e6},
		{"100 Mbps", 100e6},
		{"1.1 Gbps", 1.1e9},
		{"2.8 Gbps", 2.8e9},
		{"3.4 Gbps", 3.4e9},
	}
	tab := metrics.Table{Header: []string{"DL load", "median(us)", "p99(us)", "p99.999(us)", "samples"}}
	var worst float64
	for _, l := range loads {
		s := orionPathLatency(l.bps, duration)
		tab.AddRow(l.name,
			fmt.Sprintf("%.1f", s.Median()),
			fmt.Sprintf("%.1f", s.Percentile(99)),
			fmt.Sprintf("%.1f", s.Percentile(99.999)),
			fmt.Sprintf("%d", s.Count()))
		if v := s.Percentile(99.999); v > worst {
			worst = v
		}
	}
	var b strings.Builder
	b.WriteString("One-way L2→PHY latency added by the Orion pair (SHM→UDP→SHM):\n")
	b.WriteString(tab.String())
	verdict := "PASS"
	if worst >= 200 {
		verdict = "FAIL"
	}
	return Result{
		ID: "fig12", Title: Title("fig12"), Output: b.String(),
		Summary: fmt.Sprintf("worst p99.999 = %.0f us — %s vs the paper's <200 us bound; well under the 500 us TTI FAPI budget", worst, verdict),
	}
}
