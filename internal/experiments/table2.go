package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/dsp"
	"slingshot/internal/l2"
	"slingshot/internal/metrics"
	"slingshot/internal/sim"
	"slingshot/internal/traffic"
)

func init() {
	register("table2", "Stress test for discarding PHY state: migration storms at 1/10/20/50 per second", runTable2)
}

// binLoss tracks per-10ms sent/received datagram counts so we can compute
// the paper's "max pkt loss rate per 10ms" row.
type binLoss struct {
	sent map[int]int
	recv map[int]int
	bw   sim.Time
}

func newBinLoss() *binLoss {
	return &binLoss{sent: map[int]int{}, recv: map[int]int{}, bw: 10 * sim.Millisecond}
}

func (b *binLoss) noteSent(at sim.Time)     { b.sent[int(at/b.bw)]++ }
func (b *binLoss) noteRecv(sentAt sim.Time) { b.recv[int(sentAt/b.bw)]++ }

// maxLossRate returns the worst per-bin loss fraction, ignoring the final
// bins that may still be in flight.
func (b *binLoss) maxLossRate(until sim.Time) float64 {
	worst := 0.0
	last := int(until/b.bw) - 5
	for bin, s := range b.sent {
		if bin > last || s == 0 {
			continue
		}
		loss := 1 - float64(b.recv[bin])/float64(s)
		if loss > worst {
			worst = loss
		}
	}
	return worst
}

type table2Row struct {
	rate        int
	blackouts   int
	minTput     float64
	maxTput     float64
	maxLoss     float64
	interrupted int
	avgLoss     float64
	migrations  int
}

func table2Run(ratePerSec int, duration sim.Time) table2Row {
	cfg := core.DefaultConfig()
	// Operate at a realistic ~10-30% first-transmission BLER (16QAM near
	// its decode threshold) so HARQ sequences are regularly in flight —
	// that is the state a migration strands (§8.4).
	cfg.UEs = []core.UESpec{{ID: 1, Name: "stress-ue", MeanSNRdB: 10.4, FadeStd: 1.3, FadeCorr: 0.9}}
	cfg.L2Tweak = func(l *l2.Config) { l.FixedULMod = dsp.QAM16 } // pinned near threshold: ~10-30% first-tx BLER
	d := core.NewSlingshot(cfg)
	app := newAppServer(d)

	bins := metrics.NewTimeSeries(0, 10*sim.Millisecond)
	loss := newBinLoss()
	rx := &traffic.UDPReceiver{Engine: d.Engine, Flow: 1, Bins: bins}
	app.onUplink(1, func(pkt []byte) {
		if h, _, err := traffic.Unmarshal(pkt); err == nil {
			loss.noteRecv(h.Ts)
		}
		rx.Handle(pkt)
	})
	sendUL := ueUplink(d, 1)
	tx := &traffic.UDPSender{Engine: d.Engine, Flow: 1, RateBps: 8e6, PktSize: 1200,
		Send: func(pkt []byte) bool {
			loss.noteSent(d.Engine.Now())
			return sendUL(pkt)
		}}

	// Count stranded HARQ sequences at each migration boundary.
	interrupted := 0
	migrations := 0
	d.Start()
	d.Engine.At(100*sim.Millisecond, "start", tx.Start)
	period := sim.Second / sim.Time(ratePerSec)
	warmup := 500 * sim.Millisecond
	stopMig := d.Engine.Every(warmup, period, "migrate", func() {
		old := d.ActivePHYServer()
		interrupted += d.PHYs[old].ActiveHARQ(cfg.Cell)
		migrations++
		d.PlannedMigration()
	})
	d.Run(warmup + duration)
	stopMig()
	tx.Stop()
	d.Stop()
	bins.ExtendTo(warmup + duration)

	row := table2Row{rate: ratePerSec, interrupted: interrupted,
		avgLoss: rx.LossRate(), migrations: migrations}
	row.minTput = 1e18
	startBin := int(warmup / bins.BinWidth)
	endBin := int((warmup + duration) / bins.BinWidth)
	for i := startBin; i < endBin && i < bins.NumBins(); i++ {
		m := bins.Mbps(i)
		if m == 0 {
			row.blackouts++
		}
		if m < row.minTput {
			row.minTput = m
		}
		if m > row.maxTput {
			row.maxTput = m
		}
	}
	row.maxLoss = loss.maxLossRate(warmup + duration)
	return row
}

func runTable2(scale float64) Result {
	duration := sim.Time(60*scale) * sim.Second
	if duration < 5*sim.Second {
		duration = 5 * sim.Second
	}
	rates := []int{1, 10, 20, 50}
	rows := make([]table2Row, len(rates))
	for i, r := range rates {
		rows[i] = table2Run(r, duration)
	}

	tab := metrics.Table{Header: []string{"Metric", "1/s", "10/s", "20/s", "50/s"}}
	cell := func(f func(table2Row) string) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = f(r)
		}
		return out
	}
	addRow := func(name string, f func(table2Row) string) {
		tab.AddRow(append([]string{name}, cell(f)...)...)
	}
	addRow("#10ms blackout intervals", func(r table2Row) string { return fmt.Sprintf("%d", r.blackouts) })
	addRow("Min tput (Mbps) per 10ms", func(r table2Row) string { return fmt.Sprintf("%.1f", r.minTput) })
	addRow("Max tput (Mbps) per 10ms", func(r table2Row) string { return fmt.Sprintf("%.1f", r.maxTput) })
	addRow("Max pkt loss rate per 10ms", func(r table2Row) string { return fmt.Sprintf("%.0f%%", r.maxLoss*100) })
	addRow("Interrupted HARQ seqs", func(r table2Row) string { return fmt.Sprintf("%d", r.interrupted) })
	addRow("Avg UDP pkt loss rate", func(r table2Row) string { return fmt.Sprintf("%.2f%%", r.avgLoss*100) })
	addRow("(migrations executed)", func(r table2Row) string { return fmt.Sprintf("%d", r.migrations) })

	var summary []string
	for _, r := range rows {
		if r.rate <= 20 && r.blackouts > 0 {
			summary = append(summary, fmt.Sprintf("NOTE: %d blackouts at %d/s", r.blackouts, r.rate))
		}
	}
	note := "sub-10ms downtime holds through 20 migr/s (paper: blackouts only at 50/s)"
	if len(summary) > 0 {
		note = strings.Join(summary, "; ")
	}
	return Result{
		ID: "table2", Title: Title("table2"),
		Output:  tab.String(),
		Summary: note + fmt.Sprintf(" [duration %v per rate]", duration),
	}
}
