package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/metrics"
	"slingshot/internal/sim"
	"slingshot/internal/vmm"
)

func init() {
	register("fig3", "VM pause time while live-migrating a running PHY (TCP vs RDMA)", runFig3)
}

// runFig3 reproduces Figure 3: the CDF of VM pause time across 80 pre-copy
// live migrations of a FlexRAN-like guest, over TCP and RDMA transports,
// plus the observation that the realtime PHY crashes in every run.
func runFig3(scale float64) Result {
	runs := int(80 * scale)
	if runs < 10 {
		runs = 10
	}
	var b strings.Builder
	var summary []string

	for _, link := range []vmm.LinkProfile{vmm.TCP, vmm.RDMA} {
		m := vmm.New(link, vmm.FlexRANWorkload(), sim.NewRNG(0xF13+uint64(len(link.Name))))
		results := m.RunN(runs)
		s := metrics.NewSample()
		crashes := 0
		for _, r := range results {
			s.Add(r.PauseTime.Millis())
			if r.Crashed {
				crashes++
			}
		}
		fmt.Fprintf(&b, "%s pause-time CDF (%d runs):\n", link.Name, runs)
		fmt.Fprintf(&b, "  pause_ms  cdf\n")
		for _, frac := range []float64{5, 10, 25, 50, 75, 90, 95, 100} {
			fmt.Fprintf(&b, "  %8.1f  %.2f\n", s.Percentile(frac), frac/100)
		}
		summary = append(summary, fmt.Sprintf(
			"%s: median pause %.0f ms, PHY crashed in %d/%d runs",
			link.Name, s.Median(), crashes, runs))
	}
	return Result{
		ID:     "fig3",
		Title:  Title("fig3"),
		Output: b.String(),
		Summary: strings.Join(summary, "; ") +
			" (paper: 244 ms median, crashes in all runs)",
	}
}
