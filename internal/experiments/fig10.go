package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/metrics"
	"slingshot/internal/sim"
	"slingshot/internal/traffic"
)

func init() {
	register("fig10a", "Downlink TCP/UDP throughput across a Slingshot failover (10 ms bins)", runFig10a)
	register("fig10b", "Uplink TCP/UDP throughput across failover and planned migration", runFig10b)
}

// throughputRun drives one iperf-style flow through a Slingshot
// deployment, disrupts the PHY mid-run, and returns 10 ms-binned Mbps.
type throughputRun struct {
	proto     string // "tcp" or "udp"
	uplink    bool
	planned   bool // planned migration instead of failover
	udpRate   float64
	duration  sim.Time
	disruptAt sim.Time
}

func (r throughputRun) run() (*metrics.TimeSeries, *core.Deployment) {
	cfg := core.DefaultConfig()
	cfg.UEs = []core.UESpec{{ID: 1, Name: "iperf-ue", MeanSNRdB: 26, FadeStd: 1.0, FadeCorr: 0.97}}
	d := core.NewSlingshot(cfg)
	app := newAppServer(d)
	bins := metrics.NewTimeSeries(0, 10*sim.Millisecond)

	var stopFns []func()
	switch {
	case r.proto == "udp" && r.uplink:
		rx := &traffic.UDPReceiver{Engine: d.Engine, Flow: 1, Bins: bins}
		app.onUplink(1, rx.Handle)
		tx := &traffic.UDPSender{Engine: d.Engine, Flow: 1, RateBps: r.udpRate,
			PktSize: 1200, Send: ueUplink(d, 1)}
		d.Engine.At(50*sim.Millisecond, "start", tx.Start)
		stopFns = append(stopFns, tx.Stop)
	case r.proto == "udp" && !r.uplink:
		rx := &traffic.UDPReceiver{Engine: d.Engine, Flow: 1, Bins: bins}
		d.UEs[1].OnDownlink = rx.Handle
		tx := &traffic.UDPSender{Engine: d.Engine, Flow: 1, RateBps: r.udpRate,
			PktSize: 1200, Send: app.sendDownlink(1)}
		d.Engine.At(50*sim.Millisecond, "start", tx.Start)
		stopFns = append(stopFns, tx.Stop)
	case r.proto == "tcp" && r.uplink:
		rcv := traffic.NewTCPReceiver(d.Engine, 1, app.sendDownlink(1), bins)
		app.onUplink(1, rcv.Handle)
		snd := traffic.NewTCPSender(d.Engine, traffic.DefaultTCPConfig(1), ueUplink(d, 1))
		d.UEs[1].OnDownlink = snd.HandleSegment
		d.Engine.At(50*sim.Millisecond, "start", snd.Start)
		stopFns = append(stopFns, snd.Stop)
	default: // tcp downlink
		var snd *traffic.TCPSender
		rcv := traffic.NewTCPReceiver(d.Engine, 1, ueUplink(d, 1), bins)
		d.UEs[1].OnDownlink = rcv.Handle
		snd = traffic.NewTCPSender(d.Engine, traffic.DefaultTCPConfig(1), app.sendDownlink(1))
		app.onUplink(1, snd.HandleSegment)
		d.Engine.At(50*sim.Millisecond, "start", snd.Start)
		stopFns = append(stopFns, snd.Stop)
	}

	d.Start()
	d.Engine.At(r.disruptAt, "disrupt", func() {
		if r.planned {
			d.PlannedMigration()
		} else {
			d.KillActivePHY()
		}
	})
	d.Run(r.duration)
	for _, f := range stopFns {
		f()
	}
	d.Stop()
	bins.ExtendTo(r.duration)
	return bins, d
}

// renderBins prints Mbps around the disruption.
func renderBins(b *strings.Builder, label string, bins *metrics.TimeSeries, from, to sim.Time) {
	fmt.Fprintf(b, "%s (Mbps per 10 ms bin):\n  t(ms)  mbps\n", label)
	for t := from; t < to; t += 10 * sim.Millisecond {
		i := int(t / (10 * sim.Millisecond))
		if i >= bins.NumBins() {
			break
		}
		fmt.Fprintf(b, "  %5.0f  %.1f\n", t.Millis(), bins.Mbps(i))
	}
}

// binStats summarizes throughput before and after a disruption.
func binStats(bins *metrics.TimeSeries, disruptAt, settle sim.Time) (before, after, minAfter float64, zeroBins int, recoverMS float64) {
	di := int(disruptAt / bins.BinWidth)
	pre := metrics.NewSample()
	for i := di - 20; i < di; i++ {
		if i >= 0 && i < bins.NumBins() {
			pre.Add(bins.Mbps(i))
		}
	}
	before = pre.Median()
	post := metrics.NewSample()
	minAfter = 1e18
	end := int((disruptAt + settle) / bins.BinWidth)
	dipped := -1
	recovered := -1
	streak := 0
	for i := di; i <= end && i < bins.NumBins(); i++ {
		v := bins.Mbps(i)
		post.Add(v)
		if v < minAfter {
			minAfter = v
		}
		if v < 0.05*before {
			zeroBins++
		}
		if dipped < 0 && v < 0.7*before {
			dipped = i
		}
		// Sustained recovery: three consecutive bins at >=90% of the
		// pre-disruption rate (a single catch-up spike doesn't count).
		if dipped >= 0 && recovered < 0 && i > dipped {
			if v >= 0.9*before {
				streak++
				if streak == 3 {
					recovered = i - 2
				}
			} else {
				streak = 0
			}
		}
	}
	after = post.Median()
	switch {
	case dipped < 0:
		recoverMS = 0 // never dipped
	case recovered >= 0:
		recoverMS = float64(recovered-di) * bins.BinWidth.Millis()
	default:
		recoverMS = -1
	}
	return
}

func runFig10a(scale float64) Result {
	dur := sim.Time(2*scale) * sim.Second
	if dur < sim.Second {
		dur = sim.Second
	}
	disrupt := dur / 2
	var b strings.Builder
	var summary []string
	for _, proto := range []string{"tcp", "udp"} {
		r := throughputRun{proto: proto, uplink: false, udpRate: 110e6,
			duration: dur, disruptAt: disrupt}
		bins, _ := r.run()
		renderBins(&b, "DL "+strings.ToUpper(proto), bins, disrupt-100*sim.Millisecond, disrupt+250*sim.Millisecond)
		before, _, minA, zero, _ := binStats(bins, disrupt, 300*sim.Millisecond)
		summary = append(summary, fmt.Sprintf("DL %s: pre %.0f Mbps, min-after %.0f Mbps, zero-bins %d",
			strings.ToUpper(proto), before, minA, zero))
	}
	return Result{
		ID: "fig10a", Title: Title("fig10a"), Output: b.String(),
		Summary: strings.Join(summary, "; ") + " (paper: no noticeable DL degradation)",
	}
}

func runFig10b(scale float64) Result {
	dur := sim.Time(2*scale) * sim.Second
	if dur < sim.Second {
		dur = sim.Second
	}
	disrupt := dur / 2
	var b strings.Builder
	var summary []string

	cases := []struct {
		label   string
		proto   string
		planned bool
	}{
		{"UL TCP failover", "tcp", false},
		{"UL UDP failover", "udp", false},
		{"UL UDP planned migration", "udp", true},
		{"UL TCP planned migration", "tcp", true},
	}
	for _, c := range cases {
		r := throughputRun{proto: c.proto, uplink: true, planned: c.planned,
			udpRate: 15.8e6, duration: dur, disruptAt: disrupt}
		bins, _ := r.run()
		renderBins(&b, c.label, bins, disrupt-50*sim.Millisecond, disrupt+250*sim.Millisecond)
		before, _, minA, zero, rec := binStats(bins, disrupt, 400*sim.Millisecond)
		summary = append(summary, fmt.Sprintf("%s: pre %.1f Mbps, min %.1f, zero-bins %d, recovered in %.0f ms",
			c.label, before, minA, zero, rec))
	}
	return Result{
		ID: "fig10b", Title: Title("fig10b"), Output: b.String(),
		Summary: strings.Join(summary, "\n") +
			"\n(paper: UDP dips 15.8→7.4 Mbps, recovers ≤20 ms; TCP zero ~80 ms, full at ~110 ms; planned: no drop)",
	}
}
