package experiments

import (
	"slingshot/internal/core"
	"slingshot/internal/sim"
)

// coreDelay is the fixed one-way delay between the edge datacenter and the
// application server (through the 5G core and metro network). Tuned so
// end-to-end UE ping lands near the paper's ~22.8 ms median (§8.7).
const coreDelay = 9 * sim.Millisecond

// appServer is the experiment-side application endpoint: it talks to UEs
// through the deployment with the core-network delay applied both ways.
type appServer struct {
	d *core.Deployment
	// handlers receive uplink packets per UE after the core delay.
	handlers map[uint16][]func([]byte)
}

func newAppServer(d *core.Deployment) *appServer {
	a := &appServer{d: d, handlers: make(map[uint16][]func([]byte))}
	d.OnUplink(func(ueID uint16, pkt []byte) {
		data := append([]byte(nil), pkt...)
		d.Engine.After(coreDelay, "core.ul", func() {
			for _, h := range a.handlers[ueID] {
				h(data)
			}
		})
	})
	return a
}

// onUplink registers a server-side handler for a UE's uplink packets.
func (a *appServer) onUplink(ue uint16, h func([]byte)) {
	a.handlers[ue] = append(a.handlers[ue], h)
}

// sendDownlink returns a SendFunc pushing packets towards a UE.
func (a *appServer) sendDownlink(ue uint16) func([]byte) bool {
	return func(pkt []byte) bool {
		data := append([]byte(nil), pkt...)
		a.d.Engine.After(coreDelay, "core.dl", func() {
			a.d.SendDownlink(ue, data)
		})
		return true
	}
}

// ueUplink returns a SendFunc transmitting from a UE.
func ueUplink(d *core.Deployment, ue uint16) func([]byte) bool {
	u := d.UEs[ue]
	return func(pkt []byte) bool {
		if !u.Connected() {
			return false
		}
		u.SendUplink(append([]byte(nil), pkt...))
		return true
	}
}
