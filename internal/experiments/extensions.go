package experiments

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/metrics"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
	"slingshot/internal/traffic"
)

func init() {
	register("extl2", "Extension (§10): L2 upgrade via checkpoint-restore vs cold restart", runExtL2)
	register("extmimo", "Extension (§10): massive-MIMO inter-slot state across failover", runExtMIMO)
}

// runExtL2 demonstrates the paper's future-work direction for the L2: it
// holds hard state (RLC sequence spaces, bearers, HARQ bookkeeping), so a
// migration must preserve it — combining Slingshot's switchover with a
// Zeus-style state handoff. We upgrade the L2 process mid-traffic twice:
// with checkpoint-restore, and cold.
func runExtL2(scale float64) Result {
	duration := sim.Time(3*scale) * sim.Second
	if duration < 1500*sim.Millisecond {
		duration = 1500 * sim.Millisecond
	}
	upgradeAt := duration / 2

	run := func(preserve bool) (delivered int, connected bool, attached bool) {
		cfg := core.DefaultConfig()
		cfg.UEs = []core.UESpec{{ID: 1, Name: "bearer-ue", MeanSNRdB: 25, FadeStd: 0.8, FadeCorr: 0.95}}
		d := core.NewSlingshot(cfg)
		app := newAppServer(d)
		rx := &traffic.UDPReceiver{Engine: d.Engine, Flow: 1}
		app.onUplink(1, rx.Handle)
		tx := &traffic.UDPSender{Engine: d.Engine, Flow: 1, RateBps: 4e6, PktSize: 1000, Send: ueUplink(d, 1)}
		d.Start()
		d.Engine.At(100*sim.Millisecond, "start", tx.Start)
		d.Engine.At(upgradeAt, "upgrade", func() { d.UpgradeL2(preserve) })
		d.Run(duration)
		tx.Stop()
		attached = d.ActiveL2().Attached(cfg.Cell, 1)
		connected = d.UEs[1].Connected()
		d.Stop()
		return int(rx.Received), connected, attached
	}
	withState, conn1, att1 := run(true)
	cold, conn2, att2 := run(false)

	var b strings.Builder
	fmt.Fprintf(&b, "L2 process upgraded at t=%v during a 4 Mbps uplink flow (%v total):\n", upgradeAt, duration)
	fmt.Fprintf(&b, "  checkpoint-restore: %d pkts delivered, UE connected=%v, bearer in new L2=%v\n",
		withState, conn1, att1)
	fmt.Fprintf(&b, "  cold restart:       %d pkts delivered, UE connected=%v, bearer in new L2=%v\n",
		cold, conn2, att2)
	verdict := "PASS"
	if !att1 || att2 || withState <= cold {
		verdict = "CHECK"
	}
	return Result{
		ID: "extl2", Title: Title("extl2"), Output: b.String(),
		Summary: verdict + " — hard state must move with the L2; discarding it (as Slingshot safely does for the PHY) severs every bearer",
	}
}

// runExtMIMO quantifies §10's massive-MIMO caveat: uplink combining
// matrices are inter-slot soft state spanning tens to hundreds of slots.
// Discarding them at failover is still safe, but recovery stretches from
// ~3 TTIs to the retraining horizon.
func runExtMIMO(scale float64) Result {
	duration := sim.Time(4*scale) * sim.Second
	if duration < 2*sim.Second {
		duration = 2 * sim.Second
	}
	killAt := duration / 2

	run := func(retrainSlots int) (recoverMS float64, pre float64) {
		cfg := core.DefaultConfig()
		cfg.UEs = []core.UESpec{{ID: 1, Name: "mimo-ue", MeanSNRdB: 26, FadeStd: 0.8, FadeCorr: 0.97}}
		cfg.PHYTweak = func(pc *phy.Config) {
			pc.MIMORetrainSlots = retrainSlots
			pc.MIMOUntrainedCapDB = 6
		}
		d := core.NewSlingshot(cfg)
		app := newAppServer(d)
		bins := metrics.NewTimeSeries(0, 10*sim.Millisecond)
		rx := &traffic.UDPReceiver{Engine: d.Engine, Flow: 1, Bins: bins}
		app.onUplink(1, rx.Handle)
		// Offered above full-band QPSK capacity (~16 Mbps) so the
		// degraded-SINR period is throughput-visible.
		tx := &traffic.UDPSender{Engine: d.Engine, Flow: 1, RateBps: 30e6, PktSize: 1200, Send: ueUplink(d, 1)}
		d.Start()
		d.Engine.At(100*sim.Millisecond, "start", tx.Start)
		d.Engine.At(killAt, "kill", func() { d.KillActivePHY() })
		d.Run(duration)
		tx.Stop()
		d.Stop()
		bins.ExtendTo(duration)
		before, _, _, _, rec := binStats(bins, killAt, duration-killAt-100*sim.Millisecond)
		return rec, before
	}

	var b strings.Builder
	b.WriteString("Uplink throughput recovery after failover vs MIMO retraining horizon:\n")
	b.WriteString("  retrain-slots  pre-kill(Mbps)  recovery(ms)\n")
	type row struct {
		slots int
		rec   float64
	}
	var rows []row
	for _, n := range []int{0, 128, 512} {
		rec, pre := run(n)
		fmt.Fprintf(&b, "  %13d  %14.1f  %12.0f\n", n, pre, rec)
		rows = append(rows, row{n, rec})
	}
	verdict := "PASS"
	if !(rows[0].rec <= rows[1].rec && rows[1].rec <= rows[2].rec) {
		verdict = "CHECK (recovery not monotone in retraining horizon)"
	}
	return Result{
		ID: "extmimo", Title: Title("extmimo"), Output: b.String(),
		Summary: verdict + " — the state is still discardable (connectivity holds), but the performance dip scales with the inter-slot state horizon, as §10 predicts",
	}
}
