package experiments

import (
	"fmt"

	"slingshot/internal/chaos"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

func init() {
	register("frontier",
		"Availability vs pooled-spare ratio under independent and correlated failures",
		runFrontier)
}

// runFrontier answers the capacity-planning question behind the paper's
// pooled-spare design: how many spares per N cells hold availability
// under rack loss, switch partitions and upgrade waves — not just the
// independent kills §8.2 evaluates. The grid is seed-sharded across the
// worker pool; the table is byte-identical at any shards × workers.
func runFrontier(scale float64) Result {
	cells, ues := 6, 36
	seeds := 2
	if scale < 0.5 {
		seeds = 1
	}
	horizon := sim.Time(float64(400*sim.Millisecond) * scale)
	if horizon < 280*sim.Millisecond {
		horizon = 280 * sim.Millisecond
	}
	spec := chaos.FrontierSpec{
		Scenarios: shard.FrontierScenarios,
		Ratios:    []float64{0, 0.25, 0.5, 1},
		Seeds:     seeds,
	}
	rep, err := chaos.Frontier(spec, func(scenario string, ratio float64, seed uint64) (chaos.FrontierSample, error) {
		return shard.FrontierSample(scenario, cells, ues, 0, horizon, ratio, seed)
	})
	if err != nil {
		return Result{ID: "frontier", Title: Title("frontier"),
			Output: err.Error() + "\n", Summary: "frontier sweep failed"}
	}

	// Summary: the cheapest ratio per scenario that re-spares every kill
	// with no denials — the knee of the frontier.
	knee := map[string]float64{}
	minAvail := 100.0
	for _, p := range rep.Points {
		if p.Availability < minAvail {
			minAvail = p.Availability
		}
		if _, ok := knee[p.Scenario]; !ok && p.Denied == 0 && p.Respared == p.Killed {
			knee[p.Scenario] = p.Ratio
		}
	}
	summary := fmt.Sprintf("min availability %.4f%% across %d points;", minAvail, len(rep.Points))
	for _, sc := range spec.Scenarios {
		if r, ok := knee[sc]; ok {
			summary += fmt.Sprintf(" %s full-recovery at ratio %.2f;", sc, r)
		} else {
			summary += fmt.Sprintf(" %s never fully recovered;", sc)
		}
	}
	return Result{
		ID:      "frontier",
		Title:   Title("frontier"),
		Output:  rep.String(),
		Summary: summary,
	}
}
