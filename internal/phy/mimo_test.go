package phy

import (
	"testing"

	"slingshot/internal/dsp"
	"slingshot/internal/fapi"
	"slingshot/internal/sim"
)

func TestMIMOUntrainedBlocksHighMCS(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MIMORetrainSlots = 512
	cfg.MIMOUntrainedCapDB = 6
	h := &harness{e: sim.NewEngine()}
	h.phy = New(h.e, cfg, sim.NewRNG(1))
	h.phy.SendFAPI = func(m fapi.Message) { h.fapiOut = append(h.fapiOut, m) }
	h.configureAndStart(0)
	h.feedNullConfigs(0, 12)
	codec := NewCodec(0, 0, 9, 99)
	tb := []byte("payload")
	pdu := fapi.PDU{
		UEID: 7, HARQID: 1, NewData: true,
		Alloc:   dsp.Allocation{UEID: 7, StartPRB: 0, NumPRB: 10, Mod: dsp.QAM64},
		TBBytes: uint32(len(tb)),
	}
	h.e.At(SlotStart(3)+100*sim.Microsecond, "ulcfg", func() {
		h.phy.HandleFAPI(&fapi.ULConfig{CellID: 0, Slot: 4, PDUs: []fapi.PDU{pdu}})
	})
	h.e.At(SlotStart(4)+200*sim.Microsecond, "ulpkt", func() {
		sendULPacket(t, h, codec, 0, 7, 4, tb, dsp.QAM64, 30)
	})
	h.e.RunUntil(12 * TTI)
	if h.phy.Stats.DecodeOK != 0 {
		t.Fatalf("untrained MIMO decoded 64QAM: ok=%d fail=%d", h.phy.Stats.DecodeOK, h.phy.Stats.DecodeFail)
	}
	if h.phy.Stats.DecodeFail != 1 {
		t.Fatalf("fail=%d", h.phy.Stats.DecodeFail)
	}
}
