package phy

import (
	"os"
	"sync"
)

// The int8 quantized-LLR lane is the opt-in half of the SoA kernel work
// (DESIGN.md §13): when enabled, PrepareBlock quantizes the post-combine
// LLRs to one byte each (fec.LLRI8Step) and the slot's FEC jobs carry int8
// soft values, halving the LLR bytes the decode stage streams. Default off:
// the float path stays byte-identical to the seed, and every report-
// determinism test runs against it. Enable with SLINGSHOT_LLR=i8 or, in
// tests, SetLLRLaneI8.

var (
	llrLaneMu sync.Mutex
	llrLaneI8 = os.Getenv("SLINGSHOT_LLR") == "i8"
)

// LLRLaneI8 reports whether the int8 quantized-LLR lane is enabled.
func LLRLaneI8() bool {
	llrLaneMu.Lock()
	defer llrLaneMu.Unlock()
	return llrLaneI8
}

// SetLLRLaneI8 toggles the int8 LLR lane and returns the previous setting.
// Intended for tests (lane determinism, BLER delta); safe to call between
// slots, like par.SetWorkers.
func SetLLRLaneI8(on bool) (prev bool) {
	llrLaneMu.Lock()
	defer llrLaneMu.Unlock()
	prev = llrLaneI8
	llrLaneI8 = on
	return prev
}
