package phy

import (
	"sync"

	"slingshot/internal/dsp"
	"slingshot/internal/fec"
	"slingshot/internal/sim"
)

// Codec is the sampled-fidelity transport-block codec shared by the PHY
// and the UE model. Per transport block it runs one real code block
// through the full physical chain — CRC-16 attach, IRA/LDPC encoding,
// scrambling, QAM modulation, pilots — and derives the block's decode
// outcome from real LLR arithmetic. The remainder of the transport block
// rides as sidecar bytes (see DESIGN.md §1): decode success of the sampled
// block gates delivery of the whole TB.
type Codec struct {
	Code     *fec.Code
	Mantissa int
	Seed     uint64
	// PilotLen is the number of pilot symbols prepended per block.
	PilotLen int
}

// Default code dimensions: K info bits per sampled block, rate 1/2.
const (
	DefaultCodeK   = 256
	DefaultCodeN   = 512
	DefaultPilots  = 32
	DefaultFECIter = 8
)

// NewCodec builds a codec for a cell.
func NewCodec(k, n, mantissa int, seed uint64) *Codec {
	if k == 0 {
		k = DefaultCodeK
	}
	if n == 0 {
		n = DefaultCodeN
	}
	if mantissa == 0 {
		mantissa = 9
	}
	return &Codec{
		Code:     fec.Get(k, n, seed),
		Mantissa: mantissa,
		Seed:     seed,
		PilotLen: DefaultPilots,
	}
}

// scrambleMask derives the cell/slot/UE-specific scrambling bits. Both
// ends derive the same mask; a receiver descrambling with the wrong
// parameters (or garbage IQ) sees random LLR signs and fails CRC.
func (c *Codec) scrambleMask(slot uint64, ue uint16) *sim.RNG {
	return sim.NewRNG(c.Seed ^ slot*0x9E3779B97F4A7C15 ^ uint64(ue)<<17 | 1)
}

// pilotSeed mixes the cell seed with slot and UE for the pilot sequence.
func (c *Codec) pilotSeed(slot uint64, ue uint16) uint64 {
	return c.Seed ^ slot*0xBF58476D1CE4E5B9 ^ uint64(ue)<<29
}

// encodeBuf holds the recycled per-block transmit-chain staging (CRC frame,
// info bits, coded bits, pilots). Pooled package-wide like blockBuf; the
// transmit chain is fully staged inside one AppendEncodeBlock call, so the
// buffer is returned before the function does.
type encodeBuf struct {
	sample []byte
	bits   []byte
	coded  []byte
	pilots []complex128
}

var encodeBufPool = sync.Pool{New: func() any { return new(encodeBuf) }}

// EncodeBlock produces the transmitted symbols for a transport block:
// PilotLen pilot symbols followed by the scrambled, modulated code block.
func (c *Codec) EncodeBlock(tb []byte, slot uint64, ue uint16, m dsp.Modulation) []complex128 {
	return c.AppendEncodeBlock(nil, tb, slot, ue, m)
}

// AppendEncodeBlock is EncodeBlock appending to dst, with all intermediate
// staging (CRC frame, bits, coded bits, pilots) in recycled buffers — the
// bit stream is identical to EncodeBlock's. Safe to call from parallel
// workers: it touches no codec state beyond the immutable code tables.
func (c *Codec) AppendEncodeBlock(dst []complex128, tb []byte, slot uint64, ue uint16, m dsp.Modulation) []complex128 {
	eb := encodeBufPool.Get().(*encodeBuf)

	// Sampled-block info bits: leading payload bytes + CRC-16, padded to K
	// bits. Deterministic in the TB so retransmissions produce the same
	// coded bits — that is what makes chase combining real.
	k := c.Code.K
	nBytes := k/8 - 2
	if nBytes < 1 {
		nBytes = 1
	}
	if cap(eb.sample) < nBytes+2 {
		eb.sample = make([]byte, 0, nBytes+2)
	}
	sample := eb.sample[:nBytes]
	for i := range sample {
		sample[i] = 0
	}
	copy(sample, tb)
	framed := fec.AppendCRC16(sample)
	eb.sample = framed[:0]
	if cap(eb.bits) < k {
		eb.bits = make([]byte, 0, k)
	}
	bits := eb.bits[:k]
	for i := range bits {
		bits[i] = 0
	}
	for i := 0; i < len(framed)*8 && i < k; i++ {
		bits[i] = framed[i/8] >> (7 - i%8) & 1
	}

	// Encode, scramble, pad to the modulation order (pad bits are zeros and
	// unscrambled, exactly as the append-based seed path produced).
	bps := m.BitsPerSymbol()
	padN := c.Code.N
	if rem := padN % bps; rem != 0 {
		padN += bps - rem
	}
	if cap(eb.coded) < padN {
		eb.coded = make([]byte, 0, padN)
	}
	coded := eb.coded[:padN]
	c.Code.EncodeInto(coded[:c.Code.N], bits)
	for i := c.Code.N; i < padN; i++ {
		coded[i] = 0
	}
	mask := c.scrambleMask(slot, ue)
	for i := 0; i < c.Code.N; i++ {
		coded[i] ^= byte(mask.Uint64() & 1)
	}

	eb.pilots = dsp.PilotsInto(eb.pilots, c.PilotLen, c.pilotSeed(slot, ue))
	dst = append(dst, eb.pilots...)
	dst = dsp.AppendModulate(dst, coded, m)
	encodeBufPool.Put(eb)
	return dst
}

// SymbolsPerBlock returns the symbol count EncodeBlock emits for m.
func (c *Codec) SymbolsPerBlock(m dsp.Modulation) int {
	bps := m.BitsPerSymbol()
	coded := (c.Code.N + bps - 1) / bps
	return c.PilotLen + coded
}

// DecodeOutcome is the result of DecodeBlock.
type DecodeOutcome struct {
	OK        bool
	SNRdB     float64 // post-equalization estimate from pilots
	TxCount   int     // HARQ transmissions combined
	WorkUnits int     // decoder edge-iterations spent (CPU model input)
}

// HARQCombiner abstracts the soft-buffer pool so the UE (downlink) and the
// PHY (uplink) share the decode path. A nil combiner decodes standalone.
type HARQCombiner interface {
	Combine(ue uint16, proc uint8, llr []float64, newData bool) []float64
	Ack(ue uint16, proc uint8)
	TxCount(ue uint16, proc uint8) int
}

// blockBuf holds the recycled per-block receive-chain buffers (pilots,
// equalized data, LLRs, decoded info bits, CRC staging). Pooled
// package-wide: any codec can reuse any buffer, and buffers checked out by
// in-flight PreparedBlocks are returned on FinishPrepared/Release.
type blockBuf struct {
	pilots []complex128
	iq     []complex128
	llr    []float64
	llri8  []int8 // quantized lane staging (SLINGSHOT_LLR=i8 only)
	info   []byte
	crc    []byte
}

var blockBufPool = sync.Pool{New: func() any { return new(blockBuf) }}

// PreparedBlock is the event-loop half of an uplink decode: everything up
// to and including HARQ combining, captured so the expensive FEC decode
// can run later (and on a worker goroutine) without touching shared state.
// The LLRs are detached copies — they do not alias HARQ soft buffers.
type PreparedBlock struct {
	LLR []float64
	// LLRI8 holds the block's soft values quantized for the int8 LLR lane;
	// non-nil only when the lane is enabled (llrlane.go), in which case the
	// FEC decode consumes it instead of LLR.
	LLRI8   []int8
	SNRdB   float64
	TxCount int
	// Valid reports the receive chain produced enough LLRs to attempt FEC
	// decode; a false Valid block decodes as a CRC failure, like the seed
	// DecodeBlock's early returns.
	Valid bool

	buf *blockBuf
}

// Release returns the block's recycled buffers to the pool. FinishPrepared
// calls it; use it directly only for blocks that are abandoned undecoded.
func (pb *PreparedBlock) Release() {
	if pb.buf != nil {
		blockBufPool.Put(pb.buf)
		pb.buf = nil
		pb.LLR = nil
		pb.LLRI8 = nil
	}
}

// PrepareBlock runs the stateful front half of the receive chain on the
// event-loop goroutine: channel estimation from pilots, equalization, soft
// demodulation, descrambling and HARQ combining. The returned block is
// self-contained; DecodePrepared may then run on any worker goroutine.
func (c *Codec) PrepareBlock(rx []complex128, slot uint64, ue uint16, m dsp.Modulation,
	pool HARQCombiner, proc uint8, newData bool) PreparedBlock {

	pb := PreparedBlock{TxCount: 1}
	if len(rx) < c.PilotLen+1 {
		pb.TxCount = 0
		return pb
	}
	buf := blockBufPool.Get().(*blockBuf)
	pb.buf = buf
	buf.pilots = dsp.PilotsInto(buf.pilots, c.PilotLen, c.pilotSeed(slot, ue))
	h, noiseVar := dsp.EstimateChannel(rx[:c.PilotLen], buf.pilots)
	pb.SNRdB = dsp.SNRFromNoiseVar(noiseVar)

	buf.iq = append(buf.iq[:0], rx[c.PilotLen:]...)
	dsp.Equalize(buf.iq, h)
	buf.llr = dsp.DemodulateInto(buf.llr, buf.iq, m, noiseVar)
	if len(buf.llr) < c.Code.N {
		return pb
	}
	llr := buf.llr[:c.Code.N]
	mask := c.scrambleMask(slot, ue)
	for i := range llr {
		if mask.Uint64()&1 == 1 {
			llr[i] = -llr[i]
		}
	}
	if pool != nil {
		// Copy the combined LLRs back into the recycled buffer so the
		// decoder never aliases the live HARQ soft buffer.
		combined := pool.Combine(ue, proc, llr, newData)
		copy(llr, combined)
		pb.TxCount = pool.TxCount(ue, proc)
	}
	pb.LLR = llr
	if LLRLaneI8() {
		buf.llri8 = fec.AppendQuantizeLLRI8(buf.llri8[:0], llr, fec.LLRI8Step)
		pb.LLRI8 = buf.llri8
	}
	pb.Valid = true
	return pb
}

// FECJob returns the block's FEC decode work as a fec.DecodeJob for
// fec.DecodeBatchInto. The job's Info buffer is the block's recycled info
// staging, so a slot's batch decodes with zero allocations, and runs of
// same-code jobs (the common case: one cell's slot) are advanced in
// lockstep by the SoA lane-group kernel. Only call for Valid blocks; pair
// each result with FinishFECJob.
func (c *Codec) FECJob(pb *PreparedBlock, iters int) fec.DecodeJob {
	if cap(pb.buf.info) < c.Code.K {
		pb.buf.info = make([]byte, c.Code.K)
	}
	job := fec.DecodeJob{Code: c.Code, MaxIters: iters, Info: pb.buf.info[:0]}
	if pb.LLRI8 != nil {
		job.LLRI8, job.LLRI8Step = pb.LLRI8, fec.LLRI8Step
	} else {
		job.LLR = pb.LLR
	}
	return job
}

// FinishFECJob converts a batch decode result for FECJob back into the
// block's outcome: decoder work accounting plus the sampled block's CRC-16
// — parity convergence alone can be a wrong codeword. Cheap (K bits); runs
// on the event-loop goroutine during the slot's ordered merge.
func (c *Codec) FinishFECJob(pb *PreparedBlock, res *fec.DecodeResult) DecodeOutcome {
	out := DecodeOutcome{TxCount: pb.TxCount, SNRdB: pb.SNRdB}
	out.WorkUnits = c.Code.Edges() * res.Iterations
	if res.OK {
		k := c.Code.K
		nBytes := k / 8
		buf := pb.buf.crc
		if cap(buf) < nBytes {
			buf = make([]byte, nBytes)
			pb.buf.crc = buf
		}
		buf = buf[:nBytes]
		for i := range buf {
			buf[i] = 0
		}
		for i := 0; i < k; i++ {
			buf[i/8] |= res.Info[i] << (7 - i%8)
		}
		_, out.OK = fec.CheckCRC16(buf)
	}
	return out
}

// DecodePrepared runs the compute half — min-sum FEC decode plus the
// sampled block's CRC-16 — with pooled decoder scratch. It is pure: no
// HARQ, RNG or codec state is touched, so prepared blocks can be decoded
// concurrently while virtual time stays frozen. The PHY's slot drain
// decodes whole batches through FECJob/fec.DecodeBatchInto/FinishFECJob
// instead; this single-block form remains for the UE model and standalone
// DecodeBlock. Follow with FinishPrepared on the event-loop goroutine.
func (c *Codec) DecodePrepared(pb *PreparedBlock, iters int) DecodeOutcome {
	if !pb.Valid {
		return DecodeOutcome{TxCount: pb.TxCount, SNRdB: pb.SNRdB}
	}
	s := c.Code.GetScratch()
	var res fec.DecodeResult
	if pb.LLRI8 != nil {
		res = c.Code.DecodeI8WithScratch(pb.LLRI8, fec.LLRI8Step, iters, s)
	} else {
		res = c.Code.DecodeWithScratch(pb.LLR, iters, s)
	}
	out := c.FinishFECJob(pb, &res)
	c.Code.PutScratch(s)
	return out
}

// FinishPrepared applies a decode outcome's HARQ effect (releasing the
// soft buffer on success) and recycles the block's buffers. Must run on
// the event-loop goroutine, after every worker of the batch has finished.
func (c *Codec) FinishPrepared(pb *PreparedBlock, out DecodeOutcome,
	pool HARQCombiner, ue uint16, proc uint8) {

	if out.OK && pool != nil {
		pool.Ack(ue, proc)
	}
	pb.Release()
}

// DecodeBlock runs the full receive chain on received symbols: channel
// estimation from pilots, equalization, soft demodulation, descrambling,
// HARQ combining, FEC decoding (iters iterations), CRC check. It is the
// sequential composition of PrepareBlock → DecodePrepared →
// FinishPrepared; the PHY's slot-batched uplink path drives the stages
// separately so a slot's blocks can decode in parallel.
func (c *Codec) DecodeBlock(rx []complex128, slot uint64, ue uint16, m dsp.Modulation,
	pool HARQCombiner, proc uint8, newData bool, iters int) DecodeOutcome {

	pb := c.PrepareBlock(rx, slot, ue, m, pool, proc, newData)
	if pb.TxCount == 0 {
		pb.TxCount = 1 // seed semantics: too-short rx still reports one tx
	}
	out := c.DecodePrepared(&pb, iters)
	c.FinishPrepared(&pb, out, pool, ue, proc)
	return out
}

// PadSymbols pads symbols with zeros to a multiple of 12 so they BFP-pack
// cleanly.
func PadSymbols(iq []complex128) []complex128 {
	if rem := len(iq) % 12; rem != 0 {
		iq = append(iq, make([]complex128, 12-rem)...)
	}
	return iq
}
