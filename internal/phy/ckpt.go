package phy

import (
	"sort"

	"slingshot/internal/ckpt/wire"
)

// SnapshotTo writes the PHY's full state at a TTI barrier: counters, the
// RNG point, and per-cell protocol state in sorted-cell order. Slot maps
// (configs, TX_DATA, pending uplink stages) are written as sorted slot
// keys plus per-slot digests — at a barrier these hold only the pipeline
// lookahead, and digesting immediately means no pooled FAPI/IQ buffer is
// retained by the snapshot.
func (p *PHY) SnapshotTo(w *wire.W) {
	s := &p.Stats
	w.U64(s.SlotsProcessed)
	w.U64(s.NullSlots)
	w.U64(s.WorkUnits)
	w.U64(s.EncodedTBs)
	w.U64(s.DecodeOK)
	w.U64(s.DecodeFail)
	w.U64(s.HeartbeatsSent)
	w.U64(s.MissedConfigs)
	w.U64(s.FronthaulRx)
	w.U64(s.FronthaulTx)
	w.Bool(p.crashed)
	for _, v := range p.rng.State() {
		w.U64(v)
	}
	w.U32(uint32(len(p.cellOrder)))
	for _, id := range p.cellOrder {
		c := p.cells[id]
		w.U16(id)
		w.Bool(c.started)
		w.U32(uint32(c.iters))
		w.U8(c.seq)
		w.U32(uint32(c.missedConfigs))
		c.pool.SnapshotTo(w)

		ues := make([]int, 0, len(c.snr))
		for ue := range c.snr {
			ues = append(ues, int(ue))
		}
		sort.Ints(ues)
		w.U32(uint32(len(ues)))
		for _, ue := range ues {
			w.U16(uint16(ue))
			c.snr[uint16(ue)].SnapshotTo(w)
		}

		trains := make([]int, 0, len(c.mimoTrain))
		for ue := range c.mimoTrain {
			trains = append(trains, int(ue))
		}
		sort.Ints(trains)
		w.U32(uint32(len(trains)))
		for _, ue := range trains {
			w.U16(uint16(ue))
			w.U32(uint32(c.mimoTrain[uint16(ue)]))
		}

		snapSlotSet(w, mapSlots(c.ulConfigs))
		snapSlotSet(w, mapSlots(c.dlConfigs))
		snapSlotSet(w, mapSlots(c.txData))
		snapPendingUL(w, c.ulPending)
		snapULSeen(w, c.ulSeen)
		w.U32(uint32(len(c.grantQueue)))
	}
}

func mapSlots[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for slot := range m {
		out = append(out, slot)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func snapSlotSet(w *wire.W, slots []uint64) {
	w.U32(uint32(len(slots)))
	for _, slot := range slots {
		w.U64(slot)
	}
}

func snapPendingUL(w *wire.W, m map[uint64][]pendingUL) {
	slots := mapSlots(m)
	w.U32(uint32(len(slots)))
	for _, slot := range slots {
		w.U64(slot)
		blocks := m[slot]
		w.U32(uint32(len(blocks)))
		for i := range blocks {
			b := &blocks[i]
			w.U16(b.ue)
			w.U8(b.harq)
			w.Bool(b.newData)
			w.Bool(b.hadIQ)
			w.U64(b.tbHash)
			w.F64(b.snrAvg)
		}
	}
}

func snapULSeen(w *wire.W, m map[uint64]map[uint16]bool) {
	slots := mapSlots(m)
	w.U32(uint32(len(slots)))
	for _, slot := range slots {
		w.U64(slot)
		seen := m[slot]
		ues := make([]int, 0, len(seen))
		for ue := range seen {
			if seen[ue] {
				ues = append(ues, int(ue))
			}
		}
		sort.Ints(ues)
		w.U32(uint32(len(ues)))
		for _, ue := range ues {
			w.U16(uint16(ue))
		}
	}
}
