package phy

import (
	"fmt"
	"math"
	"sort"

	"slingshot/internal/fapi"
	"slingshot/internal/fec"
	"slingshot/internal/fronthaul"
	"slingshot/internal/harq"
	"slingshot/internal/mem"
	"slingshot/internal/netmodel"
	"slingshot/internal/par"
	"slingshot/internal/sim"
	"slingshot/internal/trace"
)

// Config parameterizes a PHY process.
type Config struct {
	// ID is the logical PHY id assigned by the operator (switch directory
	// key, §5.1).
	ID uint8
	// FECIters is the decoder iteration budget used when a cell's
	// CONFIG.request does not override it. The live-upgrade experiment
	// deploys a secondary with a larger budget.
	FECIters int
	// CodeK/CodeN are the sampled code block dimensions.
	CodeK, CodeN int
	// PipelineSlots is the slot-processing pipeline depth (Fig 7); uplink
	// results for slot N are delivered at the end of slot N+PipelineSlots-1.
	PipelineSlots int
	// MissedConfigLimit is how many consecutive slots without any UL/DL
	// CONFIG request the PHY tolerates before crashing (FlexRAN crashes
	// when FAPI requests stop; §6.2).
	MissedConfigLimit int
	// HeartbeatOffset is when within a slot the DL C-plane packet leaves.
	HeartbeatOffset sim.Time
	// HeartbeatJitter is the max extra scheduling jitter on transmissions.
	HeartbeatJitter sim.Time
	// UPlaneOffset is when within a slot DL U-plane packets leave.
	UPlaneOffset sim.Time
	// MIMORetrainSlots, when non-zero, models a massive-MIMO PHY's
	// inter-slot uplink equalization state (§10 of the paper): the
	// combining matrices improve with every uplink reception and are
	// discarded on migration. Until a UE has been received this many
	// times, residual equalization error caps its effective SINR.
	MIMORetrainSlots int
	// MIMOUntrainedCapDB is the effective SINR cap of a completely
	// untrained equalizer.
	MIMOUntrainedCapDB float64
	// MidSlotOffset is when the second per-slot control packet (the
	// UL C-plane / sync packet) leaves. Real PHYs emit several downlink
	// packets per slot; the paper measures a 393 µs max gap between them
	// (§8.6), which is what keeps the 450 µs detector timeout safe even
	// on idle slots.
	MidSlotOffset sim.Time
}

// DefaultConfig returns the standard PHY configuration.
func DefaultConfig(id uint8) Config {
	return Config{
		ID:                id,
		FECIters:          DefaultFECIter,
		CodeK:             DefaultCodeK,
		CodeN:             DefaultCodeN,
		PipelineSlots:     3,
		MissedConfigLimit: 6,
		HeartbeatOffset:   30 * sim.Microsecond,
		HeartbeatJitter:   60 * sim.Microsecond,
		UPlaneOffset:      120 * sim.Microsecond,
		MidSlotOffset:     260 * sim.Microsecond,
	}
}

// Stats counts PHY work for the overhead experiments (§8.5).
type Stats struct {
	SlotsProcessed uint64
	NullSlots      uint64 // slots whose configs carried no UE work
	WorkUnits      uint64 // decoder edge-iterations (CPU model input)
	EncodedTBs     uint64
	DecodeOK       uint64
	DecodeFail     uint64
	HeartbeatsSent uint64
	MissedConfigs  uint64
	FronthaulRx    uint64
	FronthaulTx    uint64
}

// PHY is one PHY process (the paper's FlexRAN instance). It serves one or
// more cells (RUs), speaks FAPI towards its PHY-side Orion over SHM, and
// exchanges fronthaul packets with the switch.
type PHY struct {
	Cfg    Config
	Engine *sim.Engine
	Addr   netmodel.Addr

	// SendFAPI delivers FAPI messages to the PHY-side Orion (SHM path).
	SendFAPI func(fapi.Message)
	// SendFronthaul transmits a frame towards the switch.
	SendFronthaul func(*netmodel.Frame)
	// OnCrash, if set, observes the crash reason.
	OnCrash func(reason string)
	// OnULDecode observes every uplink decode attempt: which HARQ process
	// the block was combined into, whether the grant announced new data,
	// a hash of the transport block the packet claims to carry, and the
	// CRC outcome. Cross-layer invariant checkers use it to assert HARQ
	// soft-buffer conservation (no chase-combining across different TBs).
	OnULDecode func(cell, ue uint16, harq uint8, newData bool, tbHash uint64, ok bool)
	// OnSoftDiscard observes DiscardSoftState (migration landing).
	OnSoftDiscard func()
	// Trace, when non-nil, records typed observability events (TTI
	// boundaries, decode outcomes, fronthaul tx/rx, crashes). Emission
	// happens only on the event-loop goroutine — never inside a par
	// worker batch — so traces are invariant to SLINGSHOT_WORKERS.
	Trace *trace.Recorder
	// OwnsFAPIData marks that messages delivered to HandleFAPI are owned by
	// the PHY outright, payload Data included — true on the Orion path,
	// where every message came from fapi.Decode. The slot GC then recycles
	// TX_DATA payload buffers (ReleaseDeep). Baseline SHM wiring leaves it
	// false: there the L2's TX_DATA Data aliases its HARQ retransmission
	// copies, which the L2 still owns (DESIGN.md §10).
	OwnsFAPIData bool

	Stats Stats

	rng       *sim.RNG
	cells     map[uint16]*cell
	cellOrder []uint16 // sorted ids: deterministic slot-processing order
	crashed   bool
	stopClock func()
	// iqBuf is the recycled uplink IQ decompression buffer. receiveUL runs
	// only on the event-loop goroutine and PrepareBlock copies the samples
	// it needs, so one buffer serves every reception.
	iqBuf []complex128
	// ulJobs/ulResults/ulJobOf are the recycled drainUL FEC-batch staging:
	// the slot's valid blocks become one fec.DecodeBatchInto call (runs of
	// same-code jobs decode in SoA lockstep), ulJobOf maps each pending
	// block to its job index (-1 for blocks with nothing to decode).
	// drainUL is a single event and the batch blocks until done, so one
	// set of buffers serves every slot.
	ulJobs    []fec.DecodeJob
	ulResults []fec.DecodeResult
	ulJobOf   []int32
	// dlJobs / dlPayloads are transmitDL's recycled per-slot staging
	// (cleared after each use so no TB bytes are pinned across slots).
	dlJobs     []dlJob
	dlPayloads map[uint32][]byte
	// fhTxFn / drainFn are the long-lived callbacks behind the pooled
	// per-packet and per-slot events (see sim.AfterArgPooled): one closure
	// for the PHY's lifetime, a recycled arg struct per event.
	fhTxFn  func(any)
	drainFn func(any)
}

// fhTxArg carries one scheduled fronthaul transmission.
type fhTxArg struct {
	frame  *netmodel.Frame
	cellID uint16
	a, b   uint64 // packet trace args
}

// ulDrainArg carries one scheduled uplink pipeline drain.
type ulDrainArg struct {
	cell uint16
	slot uint64
}

var (
	fhTxArgPool    = mem.NewPool[fhTxArg](func(t *fhTxArg) { *t = fhTxArg{} })
	ulDrainArgPool = mem.NewPool[ulDrainArg](func(d *ulDrainArg) { *d = ulDrainArg{} })
)

// dlJob is one DL PDU's staged work item in transmitDL.
type dlJob struct {
	tb     []byte
	ue     uint16
	seq    uint8
	jitter sim.Time
	pkt    *fronthaul.Packet
}

// pendingUL is one uplink reception awaiting the slot's pipeline drain.
// The receive-chain front half (channel estimation through HARQ combining)
// already ran at packet arrival; the FEC decode is deferred so the whole
// slot's blocks can be dispatched across the worker pool at drain time.
type pendingUL struct {
	ue      uint16
	harq    uint8
	newData bool
	hadIQ   bool // payload decompressed; false decodes as CRC fail (DTX-like)
	tbHash  uint64
	aux     []byte
	snrAvg  float64
	pb      PreparedBlock
}

type cell struct {
	id      uint16
	cfg     fapi.ConfigRequest
	started bool
	codec   *Codec
	iters   int
	pool    *harq.Pool
	snr     map[uint16]*harq.SNRFilter
	seq     uint8

	// mimoTrain counts uplink receptions per UE since (re)start — the
	// massive-MIMO equalizer's training state (soft, discarded on
	// migration).
	mimoTrain map[uint16]int

	ulConfigs map[uint64]*fapi.ULConfig
	dlConfigs map[uint64]*fapi.DLConfig
	txData    map[uint64]*fapi.TxData
	// ulPending accumulates prepared (combined, not yet FEC-decoded) uplink
	// blocks per slot until the pipeline drains them to the L2.
	ulPending map[uint64][]pendingUL
	// ulSeen marks (slot,ue) receptions so missing fronthaul packets
	// become DTX (CRC fail) at pipeline completion.
	ulSeen map[uint64]map[uint16]bool
	// grantQueue holds UL grant sections awaiting announcement in the
	// next DL C-plane packet (the PDCCH path to the UE).
	grantQueue []fronthaul.Section
	// pendFree / seenFree recycle the per-slot uplink staging containers
	// between pipeline drains.
	pendFree [][]pendingUL
	seenFree []map[uint16]bool

	missedConfigs int
}

// New creates a PHY process.
func New(e *sim.Engine, cfg Config, rng *sim.RNG) *PHY {
	if cfg.PipelineSlots < 1 {
		cfg.PipelineSlots = 3
	}
	if cfg.MissedConfigLimit < 1 {
		cfg.MissedConfigLimit = 6
	}
	if cfg.FECIters < 1 {
		cfg.FECIters = DefaultFECIter
	}
	p := &PHY{
		Cfg:    cfg,
		Engine: e,
		Addr:   netmodel.PHYAddr(cfg.ID),
		rng:    rng,
		cells:  make(map[uint16]*cell),
	}
	p.fhTxFn = func(a any) {
		t := a.(*fhTxArg)
		frame, cellID, ta, tb := t.frame, t.cellID, t.a, t.b
		fhTxArgPool.Put(t)
		if p.crashed {
			return
		}
		if p.SendFronthaul != nil {
			p.SendFronthaul(frame)
			p.Stats.FronthaulTx++
			if p.Trace != nil {
				p.Trace.Emit(trace.KindFronthaulTx, p.Cfg.ID, cellID, 0, ta, tb)
			}
		}
	}
	p.drainFn = func(a any) {
		d := a.(*ulDrainArg)
		cell, slot := d.cell, d.slot
		ulDrainArgPool.Put(d)
		p.drainUL(cell, slot)
	}
	return p
}

// Start begins the PHY's slot clock at the next slot boundary.
func (p *PHY) Start() {
	if p.stopClock != nil {
		return
	}
	now := p.Engine.Now()
	next := (now + TTI - 1) / TTI * TTI
	p.stopClock = p.Engine.Every(next-now, TTI, "phy.slot", p.onSlot)
}

// Crashed reports whether the PHY has crashed or been killed.
func (p *PHY) Crashed() bool { return p.crashed }

// Kill terminates the PHY immediately (the experiments' SIGKILL).
func (p *PHY) Kill() { p.crash("SIGKILL") }

func (p *PHY) crash(reason string) {
	if p.crashed {
		return
	}
	p.crashed = true
	if p.stopClock != nil {
		p.stopClock()
		p.stopClock = nil
	}
	if p.Trace != nil {
		p.Trace.EmitLabeled(trace.KindCrash, reason, p.Cfg.ID, 0, 0, 0, 0)
	}
	if p.OnCrash != nil {
		p.OnCrash(reason)
	}
}

// HandleFAPI processes a FAPI message from the PHY-side Orion.
func (p *PHY) HandleFAPI(m fapi.Message) {
	if p.crashed {
		return
	}
	switch msg := m.(type) {
	case *fapi.ConfigRequest:
		p.configure(msg)
	case *fapi.StartRequest:
		if c := p.cells[msg.CellID]; c != nil {
			c.started = true
		}
	case *fapi.StopRequest:
		if c := p.cells[msg.CellID]; c != nil {
			c.started = false
		}
	case *fapi.ULConfig:
		p.acceptUL(msg)
	case *fapi.DLConfig:
		p.acceptDL(msg)
	case *fapi.TxData:
		if c := p.cells[msg.CellID]; c != nil {
			if old := c.txData[msg.Slot]; old != nil && old != msg {
				p.releaseFAPI(old)
			}
			c.txData[msg.Slot] = msg
		}
	}
}

// releaseFAPI recycles a retained FAPI message once the PHY is done with
// it, honouring payload ownership (see OwnsFAPIData).
func (p *PHY) releaseFAPI(m fapi.Message) {
	if p.OwnsFAPIData {
		fapi.ReleaseDeep(m)
	} else {
		fapi.ReleaseShallow(m)
	}
}

func (p *PHY) configure(req *fapi.ConfigRequest) {
	iters := int(req.FECIters)
	if iters == 0 {
		iters = p.Cfg.FECIters
	}
	pool := harq.NewPool()
	pool.Trace, pool.Server, pool.Cell = p.Trace, p.Cfg.ID, req.CellID
	c := &cell{
		id:        req.CellID,
		cfg:       *req,
		codec:     NewCodec(p.Cfg.CodeK, p.Cfg.CodeN, int(req.MantissaBits), req.Seed),
		iters:     iters,
		pool:      pool,
		snr:       make(map[uint16]*harq.SNRFilter),
		mimoTrain: make(map[uint16]int),
		ulConfigs: make(map[uint64]*fapi.ULConfig),
		dlConfigs: make(map[uint64]*fapi.DLConfig),
		txData:    make(map[uint64]*fapi.TxData),
		ulPending: make(map[uint64][]pendingUL),
		ulSeen:    make(map[uint64]map[uint16]bool),
	}
	if _, existed := p.cells[req.CellID]; !existed {
		i := sort.Search(len(p.cellOrder), func(i int) bool { return p.cellOrder[i] >= req.CellID })
		p.cellOrder = append(p.cellOrder, 0)
		copy(p.cellOrder[i+1:], p.cellOrder[i:])
		p.cellOrder[i] = req.CellID
	}
	p.cells[req.CellID] = c
	p.fapiOut(&fapi.ConfigResponse{CellID: req.CellID, OK: true})
}

func (p *PHY) acceptUL(msg *fapi.ULConfig) {
	c := p.cells[msg.CellID]
	if c == nil {
		return
	}
	if old := c.ulConfigs[msg.Slot]; old != nil && old != msg {
		p.releaseFAPI(old)
	}
	c.ulConfigs[msg.Slot] = msg
	// Queue grant announcements for the UEs (PDCCH equivalent) so the
	// next DL C-plane packet carries them over the air.
	for _, pdu := range msg.PDUs {
		c.grantQueue = append(c.grantQueue, fronthaul.Section{
			UEID:      pdu.UEID,
			Dir:       fronthaul.Uplink,
			StartPRB:  uint16(pdu.Alloc.StartPRB),
			NumPRB:    uint16(pdu.Alloc.NumPRB),
			ModBits:   uint8(pdu.Alloc.Mod),
			HARQID:    pdu.HARQID,
			Rv:        pdu.Rv,
			NewData:   pdu.NewData,
			TBBytes:   pdu.TBBytes,
			GrantSlot: msg.Slot,
		})
	}
}

func (p *PHY) acceptDL(msg *fapi.DLConfig) {
	if c := p.cells[msg.CellID]; c != nil {
		if old := c.dlConfigs[msg.Slot]; old != nil && old != msg {
			p.releaseFAPI(old)
		}
		c.dlConfigs[msg.Slot] = msg
	}
}

func (p *PHY) fapiOut(m fapi.Message) {
	if p.SendFAPI != nil {
		p.SendFAPI(m)
	}
}

// onSlot runs once per TTI.
func (p *PHY) onSlot() {
	if p.crashed {
		return
	}
	slot := SlotAt(p.Engine.Now())
	// Iterate in sorted cell order: map order would make the event schedule
	// (and thus the whole run) nondeterministic across processes.
	for _, id := range p.cellOrder {
		c := p.cells[id]
		if !c.started {
			continue
		}
		p.processSlot(c, slot)
	}
}

func (p *PHY) processSlot(c *cell, slot uint64) {
	p.Stats.SlotsProcessed++
	if p.Trace != nil {
		p.Trace.Emit(trace.KindTTI, p.Cfg.ID, c.id, 0, slot, 0)
	}
	p.fapiOut(fapi.GetSlotIndication(c.id, slot))

	ul := c.ulConfigs[slot]
	dl := c.dlConfigs[slot]
	if ul == nil && dl == nil {
		c.missedConfigs++
		p.Stats.MissedConfigs++
		if c.missedConfigs >= p.Cfg.MissedConfigLimit {
			p.fapiOut(&fapi.ErrorIndication{CellID: c.id, Slot: slot, Code: fapi.ErrCodeMissingConfig})
			p.crash(fmt.Sprintf("no FAPI configs for %d consecutive slots (cell %d)", c.missedConfigs, c.id))
			return
		}
	} else {
		c.missedConfigs = 0
		if (ul == nil || ul.Null()) && (dl == nil || dl.Null()) {
			p.Stats.NullSlots++
		}
	}

	// Downlink C-plane heartbeat: every slot, carrying any pending UL
	// grant sections plus this slot's DL data sections.
	sections := c.grantQueue
	if dl != nil {
		for _, pdu := range dl.PDUs {
			sections = append(sections, fronthaul.Section{
				UEID:      pdu.UEID,
				Dir:       fronthaul.Downlink,
				StartPRB:  uint16(pdu.Alloc.StartPRB),
				NumPRB:    uint16(pdu.Alloc.NumPRB),
				ModBits:   uint8(pdu.Alloc.Mod),
				HARQID:    pdu.HARQID,
				Rv:        pdu.Rv,
				NewData:   pdu.NewData,
				TBBytes:   pdu.TBBytes,
				GrantSlot: slot,
			})
		}
	}
	p.sendHeartbeat(c, slot, sections)
	// The heartbeat's payload copied the sections; reclaim the (possibly
	// grown) array for next slot's grant queue.
	c.grantQueue = sections[:0]

	// Downlink data (U-plane) for DL/S slots with scheduled PDUs.
	if dl != nil && !dl.Null() {
		p.transmitDL(c, slot, dl)
	}

	// Uplink: schedule the pipeline drain that reports results (including
	// DTX for grants whose fronthaul never arrived) to the L2.
	if ul != nil && !ul.Null() {
		drainAt := SlotStart(slot+uint64(p.Cfg.PipelineSlots)-1) + 450*sim.Microsecond
		d := ulDrainArgPool.Get()
		d.cell, d.slot = c.id, slot
		p.Engine.AtArgPooled(drainAt, "phy.ul-drain", p.drainFn, d)
	}

	// GC stale per-slot state, recycling the retained FAPI messages (the
	// last alias into a TX_DATA payload died when transmitDL serialized the
	// slot's packets, 20 slots ago). Pending blocks that never drained
	// (crash races) give their pooled buffers back before the slice is
	// recycled.
	if slot > 20 {
		old := slot - 20
		if m := c.ulConfigs[old]; m != nil {
			p.releaseFAPI(m)
			delete(c.ulConfigs, old)
		}
		if m := c.dlConfigs[old]; m != nil {
			p.releaseFAPI(m)
			delete(c.dlConfigs, old)
		}
		if m := c.txData[old]; m != nil {
			p.releaseFAPI(m)
			delete(c.txData, old)
		}
		if pend := c.ulPending[old]; pend != nil {
			for i := range pend {
				pend[i].pb.Release()
				pend[i] = pendingUL{}
			}
			c.pendFree = append(c.pendFree, pend[:0])
			delete(c.ulPending, old)
		}
		if seen := c.ulSeen[old]; seen != nil {
			clear(seen)
			c.seenFree = append(c.seenFree, seen)
			delete(c.ulSeen, old)
		}
	}
}

// sendHeartbeat emits the slot's DL C-plane packet. Healthy PHYs emit this
// every slot — it is the natural heartbeat the in-switch failure detector
// monitors (§5.2.1).
func (p *PHY) sendHeartbeat(c *cell, slot uint64, sections []fronthaul.Section) {
	pkt := fronthaul.NewControl(c.id, c.seq, fronthaul.Downlink,
		fronthaul.SlotFromCounter(slot), uint8(len(sections)))
	c.seq++
	pkt.Payload = fronthaul.AppendSections(
		mem.GetBytesCap(fronthaul.SectionsSize(len(sections))), sections)
	delay := p.Cfg.HeartbeatOffset + sim.Time(p.rng.Float64()*float64(p.Cfg.HeartbeatJitter))
	p.sendFronthaulAt(delay, pkt, c, 0)
	p.Stats.HeartbeatsSent++

	// Second per-slot control packet (UL C-plane / sync). Keeps the max
	// downlink inter-packet gap near the 393 µs the paper measures, well
	// under the in-switch detector's 450 µs timeout even on idle slots.
	if p.Cfg.MidSlotOffset > 0 {
		mid := fronthaul.NewControl(c.id, c.seq, fronthaul.Downlink,
			fronthaul.SlotFromCounter(slot), 0)
		mid.Payload = fronthaul.AppendSections(mem.GetBytesCap(fronthaul.SectionsSize(0)), nil)
		c.seq++
		midDelay := p.Cfg.MidSlotOffset + sim.Time(p.rng.Float64()*float64(p.Cfg.HeartbeatJitter))
		p.sendFronthaulAt(midDelay, mid, c, 0)
		p.Stats.HeartbeatsSent++
	}
}

func (p *PHY) sendFronthaulAt(delay sim.Time, pkt *fronthaul.Packet, c *cell, virtual int) {
	frame := netmodel.GetFrame()
	frame.Src = p.Addr
	frame.Dst = netmodel.RUAddr(c.id)
	frame.Type = netmodel.EtherTypeECPRI
	frame.Payload = pkt.SerializePooled()
	frame.Virtual = virtual
	traceA, traceB := pkt.TraceArgs()
	// Serialize copied the packet to the wire, so the staging is done: the
	// PHY owns pkt and its Payload (pooled by the builders) but never its
	// Aux (that aliases a TX_DATA transport block).
	mem.PutBytes(pkt.Payload)
	pkt.Recycle()
	t := fhTxArgPool.Get()
	t.frame, t.cellID, t.a, t.b = frame, c.id, traceA, traceB
	p.Engine.AfterArgPooled(delay, "phy.fh-tx", p.fhTxFn, t)
}

// transmitDL encodes each DL PDU's sampled block and ships U-plane packets
// to the RU. It runs in three phases so a slot's encodes can share the
// worker pool without perturbing the deterministic schedule: a sequential
// phase drains every p.rng draw (jitter) and seq assignment in PDU order,
// a parallel phase runs the pure encode + BFP compression, and a final
// sequential phase schedules the sends in PDU order.
func (p *PHY) transmitDL(c *cell, slot uint64, dl *fapi.DLConfig) {
	// BFP width is fixed per cell; an invalid width fails every packet
	// (the seed path dropped each one after encoding), so short-circuit
	// before assigning sequence numbers or drawing jitter.
	if c.codec.Mantissa < 2 || c.codec.Mantissa > 16 {
		return
	}
	tx := c.txData[slot]
	// Payloads key on (UE, HARQ process): one slot can carry both a
	// retransmission and new data for the same UE. The map is recycled
	// scratch — cleared before transmitDL returns.
	if p.dlPayloads == nil {
		p.dlPayloads = make(map[uint32][]byte, 8)
	}
	payloads := p.dlPayloads
	if tx != nil {
		for _, pl := range tx.Payloads {
			payloads[uint32(pl.UEID)<<8|uint32(pl.HARQID)] = pl.Data
		}
	}

	// Phase 1 (sequential): fix the per-PDU sequence numbers and jitter
	// draws in PDU order — the p.rng stream must advance exactly as the
	// sequential schedule would.
	if cap(p.dlJobs) < len(dl.PDUs) {
		p.dlJobs = make([]dlJob, len(dl.PDUs))
	}
	jobs := p.dlJobs[:len(dl.PDUs)]
	for i, pdu := range dl.PDUs {
		jobs[i] = dlJob{
			tb:     payloads[uint32(pdu.UEID)<<8|uint32(pdu.HARQID)],
			ue:     pdu.UEID,
			seq:    c.seq,
			jitter: sim.Time(p.rng.Float64() * float64(p.Cfg.HeartbeatJitter)),
		}
		c.seq++
	}

	// Phase 2 (parallel): pure compute — encode, pad, BFP-compress. The IQ
	// staging buffer is leased and returned inside each job (the packet
	// payload copied the compressed samples); results land by index, so the
	// merge order below is deterministic.
	par.ForEach(len(jobs), func(i int) {
		pdu := &dl.PDUs[i]
		n := c.codec.SymbolsPerBlock(pdu.Alloc.Mod)
		n += (12 - n%12) % 12
		iq := c.codec.AppendEncodeBlock(mem.GetComplexCap(n), jobs[i].tb, slot, pdu.UEID, pdu.Alloc.Mod)
		iq = PadSymbols(iq)
		pkt, err := fronthaul.NewDownlinkIQ(c.id, jobs[i].seq, fronthaul.SlotFromCounter(slot),
			uint16(pdu.Alloc.StartPRB), uint16(pdu.Alloc.NumPRB), iq, c.codec.Mantissa)
		mem.PutComplex(iq)
		if err != nil {
			return
		}
		jobs[i].pkt = pkt
	})

	// Phase 3 (sequential): schedule sends in PDU order.
	for i := range jobs {
		pkt := jobs[i].pkt
		if pkt == nil {
			continue
		}
		pdu := &dl.PDUs[i]
		pkt.Section = pdu.UEID
		pkt.Aux = jobs[i].tb
		// Virtual size: the full allocation's compressed IQ.
		virtual := pdu.Alloc.REs() / 12 * fronthaul.BFPBlockBytes(c.codec.Mantissa)
		p.sendFronthaulAt(p.Cfg.UPlaneOffset+jobs[i].jitter, pkt, c, virtual)
		p.Stats.EncodedTBs++
		p.Stats.WorkUnits += uint64(c.codec.Code.Edges()) // encode cost ~ one pass
	}
	for i := range jobs {
		jobs[i] = dlJob{}
	}
	clear(payloads)
}

// HandleFrame implements netmodel.Receiver for fronthaul traffic from the
// switch (uplink U-plane packets from the RU). The PHY is the frame's
// terminal consumer: everything that outlives the call (IQ staging, UCI
// reports, the TB sidecar held until drainUL) is copied out by the
// handlers, so the frame and its wire buffer go back to the pool on
// return.
func (p *PHY) HandleFrame(f *netmodel.Frame) {
	p.handleFrame(f)
	netmodel.ReleaseFrame(f)
}

func (p *PHY) handleFrame(f *netmodel.Frame) {
	if p.crashed || f.Type != netmodel.EtherTypeECPRI {
		return
	}
	pkt, err := fronthaul.Decode(f.Payload)
	if err != nil {
		if p.Trace != nil {
			p.Trace.Metrics().Counter("phy.fh.decode_errors").Inc()
		}
		return
	}
	p.Stats.FronthaulRx++
	if p.Trace != nil {
		a, b := pkt.TraceArgs()
		p.Trace.Emit(trace.KindFronthaulRx, p.Cfg.ID, pkt.EAxC, pkt.Section, a, b)
	}
	c := p.cells[pkt.EAxC]
	if c == nil || !c.started {
		return
	}
	if pkt.Dir != fronthaul.Uplink {
		return
	}
	if pkt.Type == fronthaul.MsgRTControl {
		// UL C-plane from the RU: carries the slot's UCI (PUCCH) reports.
		if len(pkt.Aux) > 0 {
			uci := fapi.GetUCIIndication(c.id, SlotAt(p.Engine.Now()))
			reports, err := fapi.AppendDecodeUCIList(uci.Reports, pkt.Aux)
			uci.Reports = reports
			if err == nil && len(reports) > 0 {
				p.fapiOut(uci)
			} else {
				fapi.ReleaseShallow(uci)
			}
		}
		return
	}
	if pkt.Type != fronthaul.MsgIQData {
		return
	}
	p.receiveUL(c, pkt)
}

// receiveUL runs the stateful front half of the uplink chain on one UE's
// sampled block at packet arrival: MIMO perturbation (p.rng draw order is
// part of the deterministic schedule), channel estimation, demodulation
// and HARQ combining. The FEC decode is deferred to drainUL so the whole
// slot's blocks run on the worker pool together.
func (p *PHY) receiveUL(c *cell, pkt *fronthaul.Packet) {
	// Identify the slot by matching against a pending UL config. The
	// wrapped SlotID is resolved against outstanding grants.
	slot, ulCfg := c.matchULSlot(pkt.Slot)
	if ulCfg == nil {
		return
	}
	ue := pkt.Section
	var pdu *fapi.PDU
	for i := range ulCfg.PDUs {
		if ulCfg.PDUs[i].UEID == ue {
			pdu = &ulCfg.PDUs[i]
			break
		}
	}
	if pdu == nil {
		return
	}
	if c.ulSeen[slot] == nil {
		if n := len(c.seenFree); n > 0 {
			c.ulSeen[slot] = c.seenFree[n-1]
			c.seenFree = c.seenFree[:n-1]
		} else {
			c.ulSeen[slot] = make(map[uint16]bool)
		}
	}
	if c.ulSeen[slot][ue] {
		return // duplicate
	}
	c.ulSeen[slot][ue] = true

	pend := pendingUL{ue: ue, harq: pdu.HARQID, newData: pdu.NewData}
	iq, err := pkt.AppendIQ(p.iqBuf[:0])
	var snrDB float64
	if err == nil {
		p.iqBuf = iq
		p.applyMIMOError(c, ue, iq)
		pend.pb = c.codec.PrepareBlock(iq, slot, ue, pdu.Alloc.Mod,
			c.pool, pdu.HARQID, pdu.NewData)
		pend.hadIQ = true
		pend.tbHash = hashTB(pkt.Aux)
		// Copy the TB sidecar out of the packet now: the frame's wire
		// buffer is released when HandleFrame returns, but this pending
		// entry lives until drainUL. The pending list owns the copy and
		// hands it to the RX_DATA (decode OK) or back to the pool.
		// Copy the TB sidecar out of the packet now: the frame's wire
		// buffer is released when HandleFrame returns, but this pending
		// entry lives until drainUL. The pending list owns the copy and
		// hands it to the RX_DATA (decode OK) or back to the pool.
		pend.aux = append(mem.GetBytesCap(len(pkt.Aux)), pkt.Aux...)
		snrDB = pend.pb.SNRdB
	}

	filter := c.snr[ue]
	if filter == nil {
		filter = &harq.SNRFilter{}
		c.snr[ue] = filter
	}
	pend.snrAvg = filter.Observe(snrDB)

	lst, ok := c.ulPending[slot]
	if !ok {
		if n := len(c.pendFree); n > 0 {
			lst = c.pendFree[n-1]
			c.pendFree = c.pendFree[:n-1]
		}
	}
	c.ulPending[slot] = append(lst, pend)
}

// matchULSlot resolves a wrapped SlotID against pending UL configs.
func (c *cell) matchULSlot(sid fronthaul.SlotID) (uint64, *fapi.ULConfig) {
	idx := sid.Index()
	for slot, cfg := range c.ulConfigs {
		if slot%fronthaul.SlotWrap == idx {
			return slot, cfg
		}
	}
	return 0, nil
}

// drainUL completes the slot's uplink pipeline: FEC-decodes the slot's
// prepared blocks across the worker pool, merges the outcomes in
// deterministic (UE, HARQ) order, then emits RX_DATA for decoded TBs and a
// CRC.indication covering every granted UE (DTX = CRC fail). Virtual time
// is frozen while the workers run — drainUL is one event, and the engine
// only resumes after every decode of the batch has landed.
func (p *PHY) drainUL(cellID uint16, slot uint64) {
	if p.crashed {
		return
	}
	c := p.cells[cellID]
	if c == nil {
		return
	}
	ulCfg := c.ulConfigs[slot]
	if ulCfg == nil {
		return
	}
	pending := c.ulPending[slot]
	seen := c.ulSeen[slot]

	// Ordered merge: sort by (UE, HARQ) so downstream effects (HARQ acks,
	// CRC list order, stats) are independent of fronthaul arrival order —
	// and trivially independent of worker scheduling.
	sort.SliceStable(pending, func(i, j int) bool {
		if pending[i].ue != pending[j].ue {
			return pending[i].ue < pending[j].ue
		}
		return pending[i].harq < pending[j].harq
	})

	// Parallel part: pure compute only. The slot's valid blocks are staged
	// as one FEC batch — consecutive jobs share the cell's code, so
	// DecodeBatchInto advances them four at a time through the SoA
	// lane-group kernel and spreads the lane groups across the worker
	// pool. Results land by job index; the merge below maps them back.
	iters := c.iters
	jobs, jobOf := p.ulJobs[:0], p.ulJobOf[:0]
	for i := range pending {
		pd := &pending[i]
		if pd.hadIQ && pd.pb.Valid {
			jobs = append(jobs, c.codec.FECJob(&pd.pb, iters))
			jobOf = append(jobOf, int32(len(jobs)-1))
		} else {
			jobOf = append(jobOf, -1)
		}
	}
	if cap(p.ulResults) < len(jobs) {
		p.ulResults = make([]fec.DecodeResult, len(jobs))
	}
	results := p.ulResults[:len(jobs)]
	fec.DecodeBatchInto(results, jobs)

	// Sequential merge, back on the event-loop goroutine. The outgoing
	// RX_DATA/CRC messages are leased; ownership passes downstream with
	// fapiOut (the PHY-side Orion releases them after forwarding).
	okBefore, failBefore := p.Stats.DecodeOK, p.Stats.DecodeFail
	rx := fapi.GetRxData(cellID, slot)
	crcInd := fapi.GetCRCIndication(cellID, slot)
	for i := range pending {
		pd := &pending[i]
		var out DecodeOutcome
		if pd.hadIQ {
			if j := jobOf[i]; j >= 0 {
				out = c.codec.FinishFECJob(&pd.pb, &results[j])
			} else {
				out = DecodeOutcome{TxCount: pd.pb.TxCount, SNRdB: pd.pb.SNRdB}
			}
		}
		if pd.hadIQ && p.Trace != nil {
			// Emitted here, in the deterministic (UE, HARQ)-ordered merge on
			// the event-loop goroutine — never from the parallel decode above
			// — so the trace is byte-identical at any worker count.
			flags := uint64(pd.harq)
			if pd.newData {
				flags |= 1 << 8
			}
			if out.OK {
				flags |= 1 << 9
			}
			p.Trace.Emit(trace.KindFECDecode, p.Cfg.ID, c.id, pd.ue, slot, flags)
		}
		if pd.hadIQ && p.OnULDecode != nil {
			p.OnULDecode(c.id, pd.ue, pd.harq, pd.newData, pd.tbHash, out.OK)
		}
		c.codec.FinishPrepared(&pd.pb, out, c.pool, pd.ue, pd.harq)
		p.Stats.WorkUnits += uint64(out.WorkUnits)
		crcInd.Results = append(crcInd.Results, fapi.CRCResult{
			UEID: pd.ue, HARQID: pd.harq, OK: out.OK, SNRdB: float32(pd.snrAvg),
		})
		if out.OK {
			p.Stats.DecodeOK++
			// The pending entry's owned sidecar copy (made at receiveUL)
			// transfers to the RX_DATA: the PHY-side Orion releases it
			// after forwarding.
			rx.Payloads = append(rx.Payloads, fapi.TBPayload{
				UEID: pd.ue, HARQID: pd.harq, Data: pd.aux,
			})
			pd.aux = nil
		} else {
			p.Stats.DecodeFail++
			mem.PutBytes(pd.aux)
			pd.aux = nil
		}
	}
	for _, pdu := range ulCfg.PDUs {
		if seen[pdu.UEID] {
			continue
		}
		// No fronthaul reception for this grant: report DTX as decode
		// failure so the L2 HARQ machinery retransmits.
		snr := float32(0)
		if f := c.snr[pdu.UEID]; f != nil {
			snr = float32(f.Value())
		}
		crcInd.Results = append(crcInd.Results, fapi.CRCResult{UEID: pdu.UEID, HARQID: pdu.HARQID, OK: false, SNRdB: snr})
		p.Stats.DecodeFail++
	}
	if p.Trace != nil {
		m := p.Trace.Metrics()
		m.Counter("phy.decode.ok").Add(p.Stats.DecodeOK - okBefore)
		m.Counter("phy.decode.fail").Add(p.Stats.DecodeFail - failBefore)
	}
	if len(rx.Payloads) > 0 {
		p.fapiOut(rx)
	} else {
		fapi.ReleaseShallow(rx)
	}
	if len(crcInd.Results) > 0 {
		p.fapiOut(crcInd)
	} else {
		fapi.ReleaseShallow(crcInd)
	}
	// Recycle the batch staging, dropping buffer references so released
	// blockBufs are not pinned until the next drain.
	for i := range jobs {
		jobs[i] = fec.DecodeJob{}
	}
	p.ulJobs, p.ulJobOf = jobs[:0], jobOf[:0]
	if pending != nil {
		for i := range pending {
			pending[i] = pendingUL{}
		}
		c.pendFree = append(c.pendFree, pending[:0])
	}
	delete(c.ulPending, slot)
	if seen != nil {
		clear(seen)
		c.seenFree = append(c.seenFree, seen)
	}
	delete(c.ulSeen, slot)
}

// applyMIMOError injects the residual equalization error of a partially
// trained massive-MIMO combiner: a multiplicative per-symbol perturbation
// capping the effective SINR until MIMORetrainSlots receptions have
// (re)trained the UE's matrices. No-op unless the PHY is configured as a
// massive-MIMO build.
func (p *PHY) applyMIMOError(c *cell, ue uint16, iq []complex128) {
	n := p.Cfg.MIMORetrainSlots
	if n <= 0 {
		return
	}
	t := c.mimoTrain[ue]
	if t < n {
		frac := float64(t) / float64(n)
		capDB := p.Cfg.MIMOUntrainedCapDB + (42-p.Cfg.MIMOUntrainedCapDB)*frac
		sigma := math.Pow(10, -capDB/20)
		for i := range iq {
			e := complex(p.rng.Norm()*sigma, p.rng.Norm()*sigma)
			iq[i] += iq[i] * e
		}
	}
	c.mimoTrain[ue] = t + 1
}

// DiscardSoftState drops every cell's HARQ buffers and SNR filters. This
// is what happens implicitly at migration: the destination PHY simply has
// no soft state. Exposed for the stress-test instrumentation (§8.4).
// It returns the number of interrupted HARQ sequences.
func (p *PHY) DiscardSoftState() int {
	interrupted := 0
	for _, c := range p.cells {
		interrupted += c.pool.Reset()
		for _, f := range c.snr {
			f.Reset()
		}
		c.mimoTrain = make(map[uint16]int)
	}
	if p.OnSoftDiscard != nil {
		p.OnSoftDiscard()
	}
	return interrupted
}

// hashTB is FNV-1a over the transport-block sidecar, identifying which TB
// a reception claims to carry (for the HARQ-conservation observer).
func hashTB(tb []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range tb {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

// ActiveHARQ returns the number of in-flight (un-acked) uplink HARQ
// sequences for a cell — the soft state a migration strands (§8.4).
func (p *PHY) ActiveHARQ(cell uint16) int {
	if c := p.cells[cell]; c != nil {
		return c.pool.ActiveSequences()
	}
	return 0
}

// HARQInterrupted returns the cumulative interrupted-sequence count.
func (p *PHY) HARQInterrupted() uint64 {
	var n uint64
	for _, c := range p.cells {
		n += c.pool.Interrupted
	}
	return n
}

// CellConfigured reports whether the PHY has a configured cell.
func (p *PHY) CellConfigured(id uint16) bool { return p.cells[id] != nil }

// CellStarted reports whether the cell is processing slots.
func (p *PHY) CellStarted(id uint16) bool {
	c := p.cells[id]
	return c != nil && c.started
}

// CellIters returns the FEC iteration budget of a configured cell (0 if
// absent) — used by upgrade tests.
func (p *PHY) CellIters(id uint16) int {
	if c := p.cells[id]; c != nil {
		return c.iters
	}
	return 0
}
