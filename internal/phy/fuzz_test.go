package phy

import (
	"testing"

	"slingshot/internal/dsp"
)

// FuzzCodecRoundTrip drives the sampled-fidelity transport-block codec:
// over a clean channel, encode→decode must succeed for any transport
// block, any slot/UE scrambling identity, any modulation and any BFP
// mantissa width; and the decoder must never panic on perturbed symbol
// vectors (truncation, wrong scrambling identity).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte("hello transport block"), uint64(7), uint16(3), uint8(1), uint8(9))
	f.Add([]byte{}, uint64(0), uint16(0), uint8(0), uint8(2))
	f.Add([]byte{0xFF, 0x00, 0xAA}, uint64(1<<40), uint16(65535), uint8(3), uint8(14))

	mods := []dsp.Modulation{dsp.QPSK, dsp.QAM16, dsp.QAM64, dsp.QAM256}
	f.Fuzz(func(t *testing.T, tb []byte, slot uint64, ue uint16, modSel, mant uint8) {
		if len(tb) > 4096 {
			tb = tb[:4096]
		}
		m := mods[int(modSel)%len(mods)]
		c := NewCodec(0, 0, int(mant%15)+2, 0x517E)

		tx := c.EncodeBlock(tb, slot, ue, m)
		if len(tx) != c.SymbolsPerBlock(m) {
			t.Fatalf("EncodeBlock emitted %d symbols, want %d", len(tx), c.SymbolsPerBlock(m))
		}
		out := c.DecodeBlock(tx, slot, ue, m, nil, 0, true, DefaultFECIter)
		if !out.OK {
			t.Fatalf("clean-channel decode failed (tb=%d bytes, slot=%d, ue=%d, mod=%v)",
				len(tb), slot, ue, m)
		}

		// Perturbed inputs must not panic (outcomes may legitimately fail).
		c.DecodeBlock(tx, slot+1, ue, m, nil, 0, true, DefaultFECIter) // wrong scrambling slot
		c.DecodeBlock(tx, slot, ue^1, m, nil, 0, true, DefaultFECIter) // wrong UE identity
		c.DecodeBlock(tx[:len(tx)/2], slot, ue, m, nil, 0, true, DefaultFECIter)
		c.DecodeBlock(nil, slot, ue, m, nil, 0, true, DefaultFECIter)
	})
}

// FuzzDecodeBlockGarbage hands the decoder arbitrary symbol vectors built
// from raw fuzz bytes: it must never panic and never report OK with a
// corrupt sampled-block CRC... statistically; the assertion here is only
// no-panic, since a 16-bit CRC can collide under adversarial search.
func FuzzDecodeBlockGarbage(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint64(3), uint16(1), uint8(0))
	f.Add(make([]byte, 600), uint64(0), uint16(0), uint8(2))

	mods := []dsp.Modulation{dsp.QPSK, dsp.QAM16, dsp.QAM64, dsp.QAM256}
	f.Fuzz(func(t *testing.T, raw []byte, slot uint64, ue uint16, modSel uint8) {
		if len(raw) > 8192 {
			raw = raw[:8192]
		}
		m := mods[int(modSel)%len(mods)]
		c := NewCodec(0, 0, 9, 0xBEEF)
		rx := make([]complex128, len(raw)/2)
		for i := range rx {
			rx[i] = complex((float64(raw[2*i])-128)/32, (float64(raw[2*i+1])-128)/32)
		}
		c.DecodeBlock(rx, slot, ue, m, nil, 0, true, DefaultFECIter)
	})
}
