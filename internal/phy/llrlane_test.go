package phy

import (
	"math"
	"testing"

	"slingshot/internal/dsp"
	"slingshot/internal/fec"
	"slingshot/internal/par"
	"slingshot/internal/sim"
)

// TestLLRLaneBLERDelta bounds the decode-quality cost of the int8 LLR
// lane. Each trial sends one block through a threshold-SNR channel and
// decodes the identical received symbols twice — float lane and i8 lane —
// so the two BLER estimates share every noise draw. The operating point is
// chosen so the float path fails a meaningful fraction of blocks (the
// waterfall region, where quantization damage would be most visible); the
// lane must stay within a few percentage points of it.
func TestLLRLaneBLERDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("BLER sweep is slow")
	}
	prevLane := SetLLRLaneI8(false)
	defer SetLLRLaneI8(prevLane)

	c := NewCodec(0, 0, 0, 42)
	ch := dsp.NewChannel(12.5, 0, 0, sim.NewRNG(5))
	rng := sim.NewRNG(7)
	tb := make([]byte, 24)
	const blocks = 400
	failF, failI, disagree := 0, 0, 0
	for i := 0; i < blocks; i++ {
		for j := range tb {
			tb[j] = byte(rng.Uint64())
		}
		slot := uint64(4 + 5*i) // uplink slots
		iq := c.EncodeBlock(tb, slot, 7, dsp.QAM64)
		rx := ch.Transmit(iq)
		SetLLRLaneI8(false)
		outF := c.DecodeBlock(rx, slot, 7, dsp.QAM64, nil, 0, true, 8)
		SetLLRLaneI8(true)
		outI := c.DecodeBlock(rx, slot, 7, dsp.QAM64, nil, 0, true, 8)
		if !outF.OK {
			failF++
		}
		if !outI.OK {
			failI++
		}
		if outF.OK != outI.OK {
			disagree++
		}
	}
	blerF := float64(failF) / blocks
	blerI := float64(failI) / blocks
	t.Logf("float BLER %.3f, i8 BLER %.3f, %d/%d blocks disagree",
		blerF, blerI, disagree, blocks)
	if blerF < 0.05 || blerF > 0.95 {
		t.Fatalf("operating point drifted out of the waterfall: float BLER %.3f", blerF)
	}
	if math.Abs(blerI-blerF) > 0.05 {
		t.Fatalf("i8 lane BLER %.3f vs float %.3f: delta exceeds 0.05", blerI, blerF)
	}
}

// TestLLRLaneWorkerDeterminism checks that with the i8 lane enabled, a
// slot-shaped batch decode (PrepareBlock → FECJob → fec.DecodeBatchInto →
// FinishFECJob, the PHY drain's exact staging) produces bit-identical
// outcomes at different worker counts. The lane dequantizes point-wise into
// per-job scratch before the float kernel runs, so the existing
// grouping/worker/pooling invariance must carry over untouched.
func TestLLRLaneWorkerDeterminism(t *testing.T) {
	prevLane := SetLLRLaneI8(true)
	defer SetLLRLaneI8(prevLane)

	run := func() []DecodeOutcome {
		c := NewCodec(0, 0, 0, 42)
		// Waterfall SNR: mixed OK/failed blocks and varied iteration
		// counts, so WorkUnits actually discriminates.
		ch := dsp.NewChannel(12.5, 0, 0, sim.NewRNG(3))
		rng := sim.NewRNG(9)
		tb := make([]byte, 24)
		const blocks = 16
		pbs := make([]PreparedBlock, blocks)
		jobs := make([]fec.DecodeJob, blocks)
		for i := 0; i < blocks; i++ {
			for j := range tb {
				tb[j] = byte(rng.Uint64())
			}
			slot := uint64(4 + 5*i)
			iq := c.EncodeBlock(tb, slot, uint16(i), dsp.QAM64)
			rx := ch.Transmit(iq)
			pbs[i] = c.PrepareBlock(rx, slot, uint16(i), dsp.QAM64, nil, 0, true)
			if !pbs[i].Valid {
				t.Fatalf("block %d failed prepare", i)
			}
			if pbs[i].LLRI8 == nil {
				t.Fatalf("block %d: lane enabled but no quantized LLRs staged", i)
			}
			jobs[i] = c.FECJob(&pbs[i], 8)
		}
		results := make([]fec.DecodeResult, blocks)
		fec.DecodeBatchInto(results, jobs)
		outs := make([]DecodeOutcome, blocks)
		for i := range outs {
			outs[i] = c.FinishFECJob(&pbs[i], &results[i])
			pbs[i].Release()
		}
		return outs
	}

	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	seq := run()
	par.SetWorkers(4)
	conc := run()
	for i := range seq {
		if seq[i].OK != conc[i].OK || seq[i].WorkUnits != conc[i].WorkUnits ||
			math.Float64bits(seq[i].SNRdB) != math.Float64bits(conc[i].SNRdB) ||
			seq[i].TxCount != conc[i].TxCount {
			t.Fatalf("block %d: outcome differs across worker counts:\n1 worker: %+v\n4 workers: %+v",
				i, seq[i], conc[i])
		}
	}
}
