package phy

import (
	"testing"
	"testing/quick"

	"slingshot/internal/dsp"
	"slingshot/internal/fronthaul"
	"slingshot/internal/harq"
	"slingshot/internal/sim"
)

func TestKindOfPattern(t *testing.T) {
	want := []SlotKind{SlotDL, SlotDL, SlotDL, SlotSpecial, SlotUL}
	for slot := uint64(0); slot < 20; slot++ {
		if got := KindOf(slot); got != want[slot%5] {
			t.Fatalf("KindOf(%d) = %v, want %v", slot, got, want[slot%5])
		}
	}
}

func TestNextSlotHelpers(t *testing.T) {
	if got := NextULSlot(0); got != 4 {
		t.Fatalf("NextULSlot(0) = %d", got)
	}
	if got := NextULSlot(4); got != 4 {
		t.Fatalf("NextULSlot(4) = %d", got)
	}
	if got := NextDLSlot(3); got != 5 {
		t.Fatalf("NextDLSlot(3) = %d", got)
	}
	if got := NextDLSlot(2); got != 2 {
		t.Fatalf("NextDLSlot(2) = %d", got)
	}
}

func TestSlotTimeConversions(t *testing.T) {
	if SlotStart(4) != 4*TTI {
		t.Fatal("SlotStart wrong")
	}
	if SlotAt(4*TTI) != 4 || SlotAt(4*TTI+TTI-1) != 4 || SlotAt(5*TTI) != 5 {
		t.Fatal("SlotAt wrong")
	}
	if SlotAt(-5) != 0 {
		t.Fatal("SlotAt negative wrong")
	}
	if SlotDL.String() != "D" || SlotSpecial.String() != "S" || SlotUL.String() != "U" {
		t.Fatal("SlotKind strings")
	}
}

func cleanChannel() *dsp.Channel {
	return dsp.NewChannel(40, 0, 0, sim.NewRNG(1))
}

func TestCodecRoundTripCleanChannel(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	tb := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	for _, m := range []dsp.Modulation{dsp.QPSK, dsp.QAM16, dsp.QAM64, dsp.QAM256} {
		iq := c.EncodeBlock(tb, 100, 7, m)
		if len(iq) != c.SymbolsPerBlock(m) {
			t.Fatalf("%v: %d symbols, want %d", m, len(iq), c.SymbolsPerBlock(m))
		}
		rx := cleanChannel().Transmit(iq)
		out := c.DecodeBlock(rx, 100, 7, m, nil, 0, true, 8)
		if !out.OK {
			t.Fatalf("%v: clean-channel decode failed (SNR est %.1f)", m, out.SNRdB)
		}
		if out.SNRdB < 25 {
			t.Fatalf("%v: SNR estimate %.1f too low for 40 dB channel", m, out.SNRdB)
		}
	}
}

func TestCodecWrongScramblingFails(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	tb := []byte("payload")
	iq := c.EncodeBlock(tb, 100, 7, dsp.QPSK)
	rx := cleanChannel().Transmit(iq)
	// Wrong slot, wrong UE, or wrong cell seed must all fail CRC.
	if out := c.DecodeBlock(rx, 101, 7, dsp.QPSK, nil, 0, true, 8); out.OK {
		t.Fatal("decode with wrong slot succeeded")
	}
	if out := c.DecodeBlock(rx, 100, 8, dsp.QPSK, nil, 0, true, 8); out.OK {
		t.Fatal("decode with wrong UE succeeded")
	}
	other := NewCodec(0, 0, 0, 43)
	if out := other.DecodeBlock(rx, 100, 7, dsp.QPSK, nil, 0, true, 8); out.OK {
		t.Fatal("decode with wrong cell seed succeeded")
	}
}

func TestCodecGarbageIQFails(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	rng := sim.NewRNG(5)
	garbage := make([]complex128, c.SymbolsPerBlock(dsp.QPSK))
	for i := range garbage {
		garbage[i] = complex(rng.Norm(), rng.Norm())
	}
	if out := c.DecodeBlock(garbage, 100, 7, dsp.QPSK, nil, 0, true, 8); out.OK {
		t.Fatal("garbage IQ decoded OK")
	}
}

func TestCodecShortInputFails(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	if out := c.DecodeBlock(nil, 0, 0, dsp.QPSK, nil, 0, true, 8); out.OK {
		t.Fatal("nil input decoded")
	}
	if out := c.DecodeBlock(make([]complex128, 5), 0, 0, dsp.QPSK, nil, 0, true, 8); out.OK {
		t.Fatal("short input decoded")
	}
}

// TestCodecHARQRetransmissionRecovers is the core §4.2 behaviour: a block
// that fails at low SNR decodes after chase-combining a retransmission.
func TestCodecHARQRetransmissionRecovers(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	tb := []byte("harq payload")
	rng := sim.NewRNG(7)
	recovered, firstTryOK := 0, 0
	const trials = 40
	for i := 0; i < trials; i++ {
		pool := harq.NewPool()
		ch := dsp.NewChannel(1.5, 0, 0, rng.Fork(uint64(i))) // marginal SNR for QPSK r=1/2
		slot := uint64(200 + i*10)
		iq := c.EncodeBlock(tb, slot, 3, dsp.QPSK)
		out1 := c.DecodeBlock(ch.Transmit(iq), slot, 3, dsp.QPSK, pool, 0, true, 8)
		if out1.OK {
			firstTryOK++
			continue
		}
		// Retransmission (same block bits, same slot-scrambling by
		// grant redundancy — we keep the same slot key so combining is
		// coherent).
		out2 := c.DecodeBlock(ch.Transmit(iq), slot, 3, dsp.QPSK, pool, 0, false, 8)
		if out2.OK {
			recovered++
			if out2.TxCount != 2 {
				t.Fatalf("TxCount = %d after combine", out2.TxCount)
			}
		}
	}
	if firstTryOK == trials {
		t.Skip("channel too good to exercise HARQ at this seed")
	}
	if recovered == 0 {
		t.Fatal("no failed block ever recovered via HARQ combining")
	}
}

func TestCodecDecodeAcksPool(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	pool := harq.NewPool()
	iq := c.EncodeBlock([]byte("x"), 50, 1, dsp.QPSK)
	out := c.DecodeBlock(cleanChannel().Transmit(iq), 50, 1, dsp.QPSK, pool, 2, true, 8)
	if !out.OK {
		t.Fatal("clean decode failed")
	}
	if pool.ActiveSequences() != 0 {
		t.Fatal("successful decode left HARQ sequence active")
	}
}

func TestCodecWorkUnitsAccounted(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	iq := c.EncodeBlock([]byte("x"), 50, 1, dsp.QPSK)
	out := c.DecodeBlock(cleanChannel().Transmit(iq), 50, 1, dsp.QPSK, nil, 0, true, 8)
	if out.WorkUnits <= 0 {
		t.Fatal("no work units recorded")
	}
	if out.WorkUnits > c.Code.Edges()*8 {
		t.Fatalf("work units %d exceed budget", out.WorkUnits)
	}
}

func TestPadSymbols(t *testing.T) {
	if got := len(PadSymbols(make([]complex128, 13))); got != 24 {
		t.Fatalf("PadSymbols(13) -> %d", got)
	}
	if got := len(PadSymbols(make([]complex128, 24))); got != 24 {
		t.Fatalf("PadSymbols(24) -> %d", got)
	}
}

func TestCodecSurvivesBFP(t *testing.T) {
	// Full path: encode -> channel -> BFP compress/decompress -> decode.
	c := NewCodec(0, 0, 9, 42)
	tb := []byte("bfp path")
	iq := PadSymbols(c.EncodeBlock(tb, 60, 2, dsp.QAM16))
	rx := dsp.NewChannel(25, 0, 0, sim.NewRNG(3)).Transmit(iq)
	enc, err := fronthaul.CompressBFP(rx, 9)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fronthaul.DecompressBFP(enc, 9)
	if err != nil {
		t.Fatal(err)
	}
	out := c.DecodeBlock(dec, 60, 2, dsp.QAM16, nil, 0, true, 8)
	if !out.OK {
		t.Fatalf("decode after BFP failed (SNR est %.1f)", out.SNRdB)
	}
}

// TestCodecRoundTripProperty: any transport block content, any supported
// modulation, any slot/UE pair round-trips over a clean channel, and the
// sampled block never aliases across TB contents (different prefixes give
// different blocks).
func TestCodecRoundTripProperty(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	mods := []dsp.Modulation{dsp.QPSK, dsp.QAM16, dsp.QAM64, dsp.QAM256}
	f := func(tb []byte, slot uint16, ue uint16, modIdx uint8) bool {
		m := mods[int(modIdx)%len(mods)]
		s := uint64(slot)
		iq := c.EncodeBlock(tb, s, ue, m)
		rx := dsp.NewChannel(40, 0, 0, sim.NewRNG(uint64(slot)^uint64(ue))).Transmit(iq)
		out := c.DecodeBlock(rx, s, ue, m, nil, 0, true, 8)
		return out.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCodecPrefixSensitivity: two TBs differing anywhere in the sampled
// prefix produce different block bits (the CRC-16 guards the prefix).
func TestCodecPrefixSensitivity(t *testing.T) {
	c := NewCodec(0, 0, 0, 42)
	a := c.EncodeBlock([]byte("prefix-A rest"), 5, 1, dsp.QPSK)
	b := c.EncodeBlock([]byte("prefix-B rest"), 5, 1, dsp.QPSK)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different TBs produced identical blocks")
	}
}
