// Package phy implements the software 5G PHY process the paper's testbed
// runs as Intel FlexRAN: the per-slot FAPI front-end, the uplink decode
// chain (channel estimation → equalization → demodulation → descrambling →
// HARQ soft-combining → FEC decoding → CRC check), the downlink encode
// chain, the 3-slot pipelined slot processing of Fig 7, and the realtime
// behaviours Slingshot leans on — the per-slot downlink C-plane heartbeat
// and the crash-on-missing-FAPI discipline (§6.2).
package phy

import "slingshot/internal/sim"

// TTI is the slot duration of the evaluated cell: 30 kHz subcarrier
// spacing gives 500 µs slots.
const TTI = 500 * sim.Microsecond

// SlotKind classifies a TTI in the TDD pattern.
type SlotKind uint8

// Slot kinds in the DDDSU pattern.
const (
	SlotDL SlotKind = iota
	SlotSpecial
	SlotUL
)

func (k SlotKind) String() string {
	switch k {
	case SlotDL:
		return "D"
	case SlotSpecial:
		return "S"
	default:
		return "U"
	}
}

// KindOf returns the slot kind under the cell's "DDDSU" TDD format: three
// downlink slots, one special (guard) slot, one uplink slot.
func KindOf(absSlot uint64) SlotKind {
	switch absSlot % 5 {
	case 3:
		return SlotSpecial
	case 4:
		return SlotUL
	default:
		return SlotDL
	}
}

// NextULSlot returns the first uplink slot >= from.
func NextULSlot(from uint64) uint64 {
	for KindOf(from) != SlotUL {
		from++
	}
	return from
}

// NextDLSlot returns the first downlink slot >= from.
func NextDLSlot(from uint64) uint64 {
	for KindOf(from) != SlotDL {
		from++
	}
	return from
}

// SlotStart returns the virtual time at which absSlot begins (slot 0
// starts at time 0 in every deployment).
func SlotStart(absSlot uint64) sim.Time {
	return sim.Time(absSlot) * TTI
}

// SlotAt returns the absolute slot containing time t.
func SlotAt(t sim.Time) uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t / TTI)
}
