package phy

import (
	"strings"
	"testing"

	"slingshot/internal/dsp"
	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/netmodel"
	"slingshot/internal/sim"
)

// harness wires a PHY to captured FAPI and fronthaul outputs and drives it
// like an L2 + RU would.
type harness struct {
	e        *sim.Engine
	phy      *PHY
	fapiOut  []fapi.Message
	frames   []*netmodel.Frame
	frameAt  []sim.Time
	crashMsg string
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{e: sim.NewEngine()}
	h.phy = New(h.e, cfg, sim.NewRNG(1))
	h.phy.SendFAPI = func(m fapi.Message) { h.fapiOut = append(h.fapiOut, m) }
	h.phy.SendFronthaul = func(f *netmodel.Frame) {
		h.frames = append(h.frames, f)
		h.frameAt = append(h.frameAt, h.e.Now())
	}
	h.phy.OnCrash = func(reason string) { h.crashMsg = reason }
	return h
}

func (h *harness) configureAndStart(cell uint16) {
	h.phy.HandleFAPI(&fapi.ConfigRequest{CellID: cell, NumPRB: 273, MantissaBits: 9, Seed: 99})
	h.phy.HandleFAPI(&fapi.StartRequest{CellID: cell})
	h.phy.Start()
}

// feedNullConfigs schedules null UL/DL configs for every slot in [0, n),
// sent one slot ahead like a real L2.
func (h *harness) feedNullConfigs(cell uint16, n uint64) {
	for s := uint64(0); s < n; s++ {
		slot := s
		at := sim.Time(0)
		if slot > 0 {
			at = SlotStart(slot-1) + 50*sim.Microsecond
		}
		h.e.At(at, "test.feed", func() {
			h.phy.HandleFAPI(fapi.NullUL(cell, slot))
			h.phy.HandleFAPI(fapi.NullDL(cell, slot))
		})
	}
}

func (h *harness) messagesOfKind(k fapi.Kind) []fapi.Message {
	var out []fapi.Message
	for _, m := range h.fapiOut {
		if m.Kind() == k {
			out = append(out, m)
		}
	}
	return out
}

func TestPHYConfigResponds(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.phy.HandleFAPI(&fapi.ConfigRequest{CellID: 5, Seed: 1})
	resp := h.messagesOfKind(fapi.KindConfigResponse)
	if len(resp) != 1 || !resp[0].(*fapi.ConfigResponse).OK {
		t.Fatalf("no positive CONFIG.response: %v", resp)
	}
	if !h.phy.CellConfigured(5) || h.phy.CellStarted(5) {
		t.Fatal("cell state wrong after configure")
	}
	h.phy.HandleFAPI(&fapi.StartRequest{CellID: 5})
	if !h.phy.CellStarted(5) {
		t.Fatal("cell not started")
	}
}

func TestPHYHeartbeatEverySlot(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 20)
	h.e.RunUntil(20 * TTI)

	var heartbeats int
	for _, f := range h.frames {
		pkt, err := fronthaul.Decode(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Type == fronthaul.MsgRTControl && pkt.Dir == fronthaul.Downlink {
			heartbeats++
			if f.Dst != netmodel.RUAddr(0) {
				t.Fatalf("heartbeat to %v", f.Dst)
			}
		}
	}
	if heartbeats < 19 {
		t.Fatalf("heartbeats = %d over 20 slots", heartbeats)
	}
	// Heartbeat inter-packet gap must stay under 500us + jitter window.
	maxGap := sim.Time(0)
	for i := 1; i < len(h.frameAt); i++ {
		if g := h.frameAt[i] - h.frameAt[i-1]; g > maxGap {
			maxGap = g
		}
	}
	limit := TTI + DefaultConfig(1).HeartbeatJitter
	if maxGap > limit {
		t.Fatalf("max heartbeat gap %v exceeds %v", maxGap, limit)
	}
}

func TestPHYSlotIndications(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 10)
	h.e.RunUntil(10 * TTI)
	inds := h.messagesOfKind(fapi.KindSlotIndication)
	if len(inds) < 9 {
		t.Fatalf("slot indications = %d", len(inds))
	}
}

func TestPHYCrashesWithoutFAPI(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MissedConfigLimit = 4
	h := newHarness(t, cfg)
	h.configureAndStart(0)
	// No configs fed at all.
	h.e.RunUntil(20 * TTI)
	if !h.phy.Crashed() {
		t.Fatal("PHY survived without FAPI configs")
	}
	if !strings.Contains(h.crashMsg, "no FAPI configs") {
		t.Fatalf("crash reason %q", h.crashMsg)
	}
	errs := h.messagesOfKind(fapi.KindErrorIndication)
	if len(errs) != 1 || errs[0].(*fapi.ErrorIndication).Code != fapi.ErrCodeMissingConfig {
		t.Fatalf("error indications: %v", errs)
	}
	// No heartbeats after the crash slot (two control packets per slot).
	if h.phy.Stats.HeartbeatsSent > 2*uint64(cfg.MissedConfigLimit) {
		t.Fatalf("heartbeats after crash: %d", h.phy.Stats.HeartbeatsSent)
	}
}

func TestPHYNullConfigsKeepAlive(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MissedConfigLimit = 4
	h := newHarness(t, cfg)
	h.configureAndStart(0)
	h.feedNullConfigs(0, 100)
	h.e.RunUntil(100 * TTI)
	if h.phy.Crashed() {
		t.Fatal("PHY crashed despite null configs")
	}
	if h.phy.Stats.NullSlots < 90 {
		t.Fatalf("NullSlots = %d", h.phy.Stats.NullSlots)
	}
	// Null slots must not cost decode work.
	if h.phy.Stats.WorkUnits != 0 {
		t.Fatalf("null slots consumed %d work units", h.phy.Stats.WorkUnits)
	}
}

func TestPHYKillStopsEverything(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 20)
	h.e.At(5*TTI+10, "kill", func() { h.phy.Kill() })
	h.e.RunUntil(20 * TTI)
	if !h.phy.Crashed() {
		t.Fatal("Kill did not crash")
	}
	for i, at := range h.frameAt {
		_ = i
		if at > 6*TTI {
			t.Fatalf("frame sent at %v after kill", at)
		}
	}
}

func TestPHYDownlinkTransmission(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 10)
	tb := []byte("downlink transport block")
	pdu := fapi.PDU{
		UEID: 3, HARQID: 0, NewData: true,
		Alloc:   dsp.Allocation{UEID: 3, StartPRB: 0, NumPRB: 10, Mod: dsp.QAM16},
		TBBytes: uint32(len(tb)),
	}
	h.e.At(SlotStart(1)+100*sim.Microsecond, "dl", func() {
		h.phy.HandleFAPI(&fapi.DLConfig{CellID: 0, Slot: 2, PDUs: []fapi.PDU{pdu}})
		h.phy.HandleFAPI(&fapi.TxData{CellID: 0, Slot: 2, Payloads: []fapi.TBPayload{{UEID: 3, Data: tb}}})
	})
	h.e.RunUntil(5 * TTI)

	var uplane *fronthaul.Packet
	for _, f := range h.frames {
		pkt, _ := fronthaul.Decode(f.Payload)
		if pkt != nil && pkt.Type == fronthaul.MsgIQData && pkt.Dir == fronthaul.Downlink {
			uplane = pkt
			if f.Virtual <= len(f.Payload) {
				t.Errorf("U-plane frame Virtual=%d not representing full allocation (payload %d)",
					f.Virtual, len(f.Payload))
			}
		}
	}
	if uplane == nil {
		t.Fatal("no DL U-plane packet emitted")
	}
	if uplane.Section != 3 || string(uplane.Aux) != string(tb) {
		t.Fatalf("U-plane packet: section=%d aux=%q", uplane.Section, uplane.Aux)
	}
	// The C-plane packet for slot 2 must carry the DL section.
	found := false
	for _, f := range h.frames {
		pkt, _ := fronthaul.Decode(f.Payload)
		if pkt == nil || pkt.Type != fronthaul.MsgRTControl {
			continue
		}
		secs, err := fronthaul.DecodeSections(pkt.Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range secs {
			if s.UEID == 3 && s.Dir == fronthaul.Downlink && s.GrantSlot == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("DL section not announced in C-plane")
	}
}

// sendULPacket emulates the RU delivering a UE's uplink block to the PHY.
func sendULPacket(t *testing.T, h *harness, codec *Codec, cell, ue uint16, slot uint64, tb []byte, m dsp.Modulation, snr float64) {
	t.Helper()
	iq := PadSymbols(codec.EncodeBlock(tb, slot, ue, m))
	rx := dsp.NewChannel(snr, 0, 0, sim.NewRNG(slot)).Transmit(iq)
	pkt, err := fronthaul.NewUplinkIQ(cell, 0, fronthaul.SlotFromCounter(slot), 0, 10, rx, 9)
	if err != nil {
		t.Fatal(err)
	}
	pkt.Section = ue
	pkt.Aux = tb
	h.phy.HandleFrame(&netmodel.Frame{
		Src: netmodel.RUAddr(cell), Dst: netmodel.PHYAddr(1),
		Type: netmodel.EtherTypeECPRI, Payload: pkt.Serialize(),
	})
}

func TestPHYUplinkDecodePipeline(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 12)
	codec := NewCodec(0, 0, 9, 99) // must match cell seed in configureAndStart

	tb := []byte("uplink payload bytes")
	ulSlot := uint64(4) // UL slot in DDDSU
	pdu := fapi.PDU{
		UEID: 7, HARQID: 1, NewData: true,
		Alloc:   dsp.Allocation{UEID: 7, StartPRB: 0, NumPRB: 10, Mod: dsp.QPSK},
		TBBytes: uint32(len(tb)),
	}
	h.e.At(SlotStart(3)+100*sim.Microsecond, "ulcfg", func() {
		h.phy.HandleFAPI(&fapi.ULConfig{CellID: 0, Slot: ulSlot, PDUs: []fapi.PDU{pdu}})
	})
	h.e.At(SlotStart(ulSlot)+200*sim.Microsecond, "ulpkt", func() {
		sendULPacket(t, h, codec, 0, 7, ulSlot, tb, dsp.QPSK, 30)
	})
	h.e.RunUntil(12 * TTI)

	rx := h.messagesOfKind(fapi.KindRxData)
	if len(rx) != 1 {
		t.Fatalf("RX_DATA count = %d", len(rx))
	}
	got := rx[0].(*fapi.RxData)
	if got.Slot != ulSlot || len(got.Payloads) != 1 || string(got.Payloads[0].Data) != string(tb) {
		t.Fatalf("RX_DATA = %+v", got)
	}
	crcs := h.messagesOfKind(fapi.KindCRCIndication)
	if len(crcs) != 1 {
		t.Fatalf("CRC indications = %d", len(crcs))
	}
	crc := crcs[0].(*fapi.CRCIndication)
	if len(crc.Results) != 1 || !crc.Results[0].OK || crc.Results[0].UEID != 7 {
		t.Fatalf("CRC = %+v", crc.Results)
	}
	// Pipeline: results must arrive during slot ulSlot+2 (3-slot pipeline).
	if h.phy.Stats.DecodeOK != 1 {
		t.Fatalf("DecodeOK = %d", h.phy.Stats.DecodeOK)
	}
}

func TestPHYUplinkDTXReportsCRCFail(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 12)
	pdu := fapi.PDU{
		UEID: 7, HARQID: 1, NewData: true,
		Alloc:   dsp.Allocation{UEID: 7, StartPRB: 0, NumPRB: 10, Mod: dsp.QPSK},
		TBBytes: 100,
	}
	h.e.At(SlotStart(3)+100*sim.Microsecond, "ulcfg", func() {
		h.phy.HandleFAPI(&fapi.ULConfig{CellID: 0, Slot: 4, PDUs: []fapi.PDU{pdu}})
	})
	// No UL packet ever arrives (fronthaul lost / rerouted).
	h.e.RunUntil(12 * TTI)
	crcs := h.messagesOfKind(fapi.KindCRCIndication)
	if len(crcs) != 1 {
		t.Fatalf("CRC indications = %d", len(crcs))
	}
	res := crcs[0].(*fapi.CRCIndication).Results
	if len(res) != 1 || res[0].OK {
		t.Fatalf("DTX not reported as CRC fail: %+v", res)
	}
	if len(h.messagesOfKind(fapi.KindRxData)) != 0 {
		t.Fatal("RX_DATA for DTX")
	}
}

func TestPHYGrantAnnouncedInCPlane(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 10)
	pdu := fapi.PDU{
		UEID: 2, HARQID: 0, NewData: true,
		Alloc:   dsp.Allocation{UEID: 2, StartPRB: 0, NumPRB: 5, Mod: dsp.QPSK},
		TBBytes: 64,
	}
	h.e.At(SlotStart(2)+100*sim.Microsecond, "ulcfg", func() {
		h.phy.HandleFAPI(&fapi.ULConfig{CellID: 0, Slot: 9, PDUs: []fapi.PDU{pdu}})
	})
	h.e.RunUntil(6 * TTI)
	for _, f := range h.frames {
		pkt, _ := fronthaul.Decode(f.Payload)
		if pkt == nil || pkt.Type != fronthaul.MsgRTControl {
			continue
		}
		secs, _ := fronthaul.DecodeSections(pkt.Payload)
		for _, s := range secs {
			if s.UEID == 2 && s.Dir == fronthaul.Uplink && s.GrantSlot == 9 {
				return // announced
			}
		}
	}
	t.Fatal("UL grant never announced in C-plane")
}

func TestPHYDiscardSoftState(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.feedNullConfigs(0, 12)
	codec := NewCodec(0, 0, 9, 99)
	tb := []byte("will fail at low snr")
	pdu := fapi.PDU{
		UEID: 7, HARQID: 1, NewData: true,
		Alloc:   dsp.Allocation{UEID: 7, StartPRB: 0, NumPRB: 10, Mod: dsp.QAM256},
		TBBytes: uint32(len(tb)),
	}
	h.e.At(SlotStart(3)+100*sim.Microsecond, "ulcfg", func() {
		h.phy.HandleFAPI(&fapi.ULConfig{CellID: 0, Slot: 4, PDUs: []fapi.PDU{pdu}})
	})
	h.e.At(SlotStart(4)+200*sim.Microsecond, "ulpkt", func() {
		// 256QAM at 5 dB will fail, leaving an active HARQ buffer.
		sendULPacket(t, h, codec, 0, 7, 4, tb, dsp.QAM256, 5)
	})
	h.e.RunUntil(12 * TTI)
	if h.phy.Stats.DecodeFail == 0 {
		t.Fatal("expected a decode failure")
	}
	if n := h.phy.DiscardSoftState(); n != 1 {
		t.Fatalf("DiscardSoftState interrupted %d, want 1", n)
	}
	if h.phy.HARQInterrupted() != 1 {
		t.Fatalf("HARQInterrupted = %d", h.phy.HARQInterrupted())
	}
}

func TestPHYCellItersFromConfig(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.phy.HandleFAPI(&fapi.ConfigRequest{CellID: 1, Seed: 5, FECIters: 16})
	if got := h.phy.CellIters(1); got != 16 {
		t.Fatalf("CellIters = %d", got)
	}
	h.phy.HandleFAPI(&fapi.ConfigRequest{CellID: 2, Seed: 5})
	if got := h.phy.CellIters(2); got != DefaultFECIter {
		t.Fatalf("default CellIters = %d", got)
	}
	if got := h.phy.CellIters(9); got != 0 {
		t.Fatalf("missing cell CellIters = %d", got)
	}
}

func TestPHYIgnoresTrafficWhenCrashed(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.configureAndStart(0)
	h.phy.Kill()
	h.phy.HandleFAPI(fapi.NullUL(0, 1))
	h.phy.HandleFrame(&netmodel.Frame{Type: netmodel.EtherTypeECPRI})
	if h.phy.Stats.FronthaulRx != 0 {
		t.Fatal("crashed PHY processed a frame")
	}
}
