package phy

import (
	"testing"

	"slingshot/internal/dsp"
	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/mem"
	"slingshot/internal/netmodel"
	"slingshot/internal/par"
	"slingshot/internal/sim"
)

// TestUplinkSlotSteadyStateAllocs drives a configured PHY through full
// DDDSU cycles — null configs every slot, a granted UL transmission with a
// real decoded transport block each uplink slot — and asserts the
// steady-state allocation bill per 5-slot cycle stays tiny. Everything the
// PHY leases per slot (FAPI messages, IQ/LLR staging, fronthaul packets and
// payloads, pending-UL containers) must come from pools; the residue is the
// handful of by-design allocations (Serialize wire buffers whose ownership
// leaves the PHY, decoded packet structs that alias the frame) plus
// engine-internal noise.
func TestUplinkSlotSteadyStateAllocs(t *testing.T) {
	if mem.DetectorArmed() {
		t.Skip("pool leak detector armed (-race or SLINGSHOT_POOL=debug); its bookkeeping allocates")
	}
	prevPool := mem.SetEnabled(true)
	defer mem.SetEnabled(prevPool)
	prevW := par.SetWorkers(1) // keep decode inline so the bill is stable
	defer par.SetWorkers(prevW)

	e := sim.NewEngine()
	p := New(e, DefaultConfig(1), sim.NewRNG(1))
	// The sink owns delivered messages outright, like the PHY-side Orion
	// (it encodes and releases); frames hand their wire buffer over.
	p.SendFAPI = func(m fapi.Message) { fapi.ReleaseDeep(m) }
	p.SendFronthaul = func(f *netmodel.Frame) { mem.PutBytes(f.Payload) }
	p.HandleFAPI(&fapi.ConfigRequest{CellID: 0, NumPRB: 273, MantissaBits: 9, Seed: 99})
	p.HandleFAPI(&fapi.StartRequest{CellID: 0})
	p.Start()

	codec := NewCodec(0, 0, 9, 99)
	tb := make([]byte, 32)
	for i := range tb {
		tb[i] = byte(3 * i)
	}

	const warmSlots = 30 // past the slot-20 GC threshold
	const cycles = 20
	totalSlots := uint64(warmSlots + (cycles+2)*5)

	// Pre-schedule every feed so the measured loop only executes events.
	for s := uint64(0); s < totalSlots; s++ {
		slot := s
		at := sim.Time(0)
		if slot > 0 {
			at = SlotStart(slot-1) + 50*sim.Microsecond
		}
		if KindOf(slot) == SlotUL {
			e.At(at, "test.ulcfg", func() {
				ul := fapi.GetULConfig(0, slot)
				ul.PDUs = append(ul.PDUs, fapi.PDU{
					UEID: 7, HARQID: 1, NewData: true,
					Alloc:   dsp.Allocation{UEID: 7, StartPRB: 0, NumPRB: 10, Mod: dsp.QPSK},
					TBBytes: uint32(len(tb)),
				})
				p.HandleFAPI(ul)
				p.HandleFAPI(fapi.GetDLConfig(0, slot))
			})
			// The UE's transmission, pre-built: IQ, channel, packet, frame.
			iq := PadSymbols(codec.EncodeBlock(tb, slot, 7, dsp.QPSK))
			rx := dsp.NewChannel(30, 0, 0, sim.NewRNG(slot)).Transmit(iq)
			pkt, err := fronthaul.NewUplinkIQ(0, 0, fronthaul.SlotFromCounter(slot), 0, 10, rx, 9)
			if err != nil {
				t.Fatal(err)
			}
			pkt.Section = 7
			pkt.Aux = tb
			frame := &netmodel.Frame{
				Src: netmodel.RUAddr(0), Dst: netmodel.PHYAddr(1),
				Type: netmodel.EtherTypeECPRI, Payload: pkt.Serialize(),
			}
			e.At(SlotStart(slot)+200*sim.Microsecond, "test.ulpkt", func() {
				p.HandleFrame(frame)
			})
		} else {
			e.At(at, "test.nullcfg", func() {
				p.HandleFAPI(fapi.GetULConfig(0, slot))
				p.HandleFAPI(fapi.GetDLConfig(0, slot))
			})
		}
	}

	mark := uint64(warmSlots)
	e.RunUntil(SlotStart(mark))
	avg := testing.AllocsPerRun(cycles, func() {
		mark += 5
		e.RunUntil(SlotStart(mark))
	})
	t.Logf("allocs per 5-slot cycle: %.1f", avg)
	// Per cycle by design (~23 measured): 5 Serialize wire buffers
	// (heartbeats) + 1 decoded UL packet struct + TX frame structs, engine
	// timer nodes, and change. The bound leaves slack for Go-version noise;
	// a pooled path regressing to per-slot IQ/LLR/payload allocation blows
	// well past it.
	if avg > 30 {
		t.Fatalf("steady-state uplink cycle allocates %.1f times, want <= 30", avg)
	}
}
