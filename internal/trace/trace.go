// Package trace is the deterministic observability layer of the simulated
// vRAN: a typed cross-layer event recorder, per-deployment monotonic
// counters, and the flight recorder the chaos invariant checker dumps when
// a soak seed fails.
//
// Design constraints (DESIGN.md §9):
//
//   - Zero overhead when disabled. Every emission site guards on a nil
//     *Recorder; the disabled path is one pointer compare and must stay
//     alloc-free (BenchmarkTraceDisabled pins <2 ns/op, 0 allocs/op).
//   - Deterministic when enabled. Events may only be emitted from
//     virtual-time (event-loop) code paths, never from inside an
//     internal/par worker batch, so a run's trace is byte-identical across
//     SLINGSHOT_WORKERS values and across repeated runs of the same seed.
//   - Bounded. Events land in a fixed-capacity ring buffer; the recorder
//     never grows after construction, so tracing a multi-second soak costs
//     the same memory as tracing a 100-TTI smoke run.
//
// One Recorder belongs to one deployment (one engine, one goroutine at a
// time); seed-sharded soaks build one recorder per run and never share.
package trace

import (
	"fmt"
	"strings"

	"slingshot/internal/sim"
)

// EventKind is the typed class of a trace event.
type EventKind uint8

// Event kinds, one per cross-layer seam the tracer observes.
const (
	KindNone EventKind = iota
	// KindTTI marks one PHY slot boundary (a=slot).
	KindTTI
	// KindFECDecode is one uplink FEC decode outcome at pipeline drain
	// (a=slot, b=harq | newData<<8 | ok<<9).
	KindFECDecode
	// KindHARQCombine is one soft-buffer chase-combine (a=proc, b=txCount).
	KindHARQCombine
	// KindHARQFlush is a soft-state discard — migration landing or UE drop
	// (a=interrupted sequences).
	KindHARQFlush
	// KindFronthaulTx is an eCPRI packet leaving a PHY (args via
	// fronthaul.Packet.TraceArgs).
	KindFronthaulTx
	// KindFronthaulRx is an eCPRI packet arriving at a PHY.
	KindFronthaulRx
	// KindFronthaulLoss is a chaos-injected fronthaul perturbation hitting
	// one frame (Label = loss|corrupt|reorder|delay, b=cumulative count).
	KindFronthaulLoss
	// KindSnapshotExport is an L2 hard-state checkpoint (a=cells, b=UEs).
	KindSnapshotExport
	// KindSnapshotImport is an L2 checkpoint restore (a=cells, b=UEs).
	KindSnapshotImport
	// KindFailover is an unplanned Orion migration (a=to server, b=slot).
	KindFailover
	// KindMigration is a planned TTI-boundary migration (a=to server,
	// b=slot).
	KindMigration
	// KindChaosFault is one chaos schedule action firing (Label names the
	// fault family).
	KindChaosFault
	// KindRLCDiscard is an RLC reassembly discard (b=cumulative discards).
	KindRLCDiscard
	// KindCrash is a PHY process crash (Label carries the reason).
	KindCrash
	// KindInvariant is an invariant violation observed by the chaos
	// checker (Label names the invariant).
	KindInvariant
	// KindTick is a generic per-tick probe event used by engine tests.
	KindTick
)

var kindNames = [...]string{
	KindNone:           "none",
	KindTTI:            "tti",
	KindFECDecode:      "fec-decode",
	KindHARQCombine:    "harq-combine",
	KindHARQFlush:      "harq-flush",
	KindFronthaulTx:    "fh-tx",
	KindFronthaulRx:    "fh-rx",
	KindFronthaulLoss:  "fh-perturb",
	KindSnapshotExport: "l2-export",
	KindSnapshotImport: "l2-import",
	KindFailover:       "failover",
	KindMigration:      "migration",
	KindChaosFault:     "chaos-fault",
	KindRLCDiscard:     "rlc-discard",
	KindCrash:          "crash",
	KindInvariant:      "invariant",
	KindTick:           "tick",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded observation. The payload is fixed-size scalars so
// emission never allocates; Label, when set, must be a static or
// pre-existing string (the emitter only copies the header).
type Event struct {
	// Seq is the event's global emission index (0-based, never wraps).
	Seq uint64
	// At is the virtual timestamp.
	At sim.Time
	// Kind classifies the event; Src/Cell/UE locate it (zero when not
	// applicable; Src is a server or PHY id).
	Kind EventKind
	Src  uint8
	Cell uint16
	UE   uint16
	// A and B are kind-specific arguments (see the kind docs).
	A, B uint64
	// Label is an optional static annotation (fault family, crash reason).
	Label string
}

// String renders one timeline line with the virtual timestamp.
func (e Event) String() string {
	return fmt.Sprintf("[%12.6fms] #%06d %-12s %s", e.At.Millis(), e.Seq, e.Kind, e.detail())
}

func (e Event) detail() string {
	switch e.Kind {
	case KindTTI:
		return fmt.Sprintf("phy=%d cell=%d slot=%d", e.Src, e.Cell, e.A)
	case KindFECDecode:
		return fmt.Sprintf("phy=%d cell=%d ue=%d slot=%d harq=%d new=%t ok=%t",
			e.Src, e.Cell, e.UE, e.A, e.B&0xFF, e.B&(1<<8) != 0, e.B&(1<<9) != 0)
	case KindHARQCombine:
		return fmt.Sprintf("phy=%d cell=%d ue=%d proc=%d tx=%d", e.Src, e.Cell, e.UE, e.A, e.B)
	case KindHARQFlush:
		return fmt.Sprintf("phy=%d cell=%d interrupted=%d", e.Src, e.Cell, e.A)
	case KindFronthaulTx, KindFronthaulRx:
		return fmt.Sprintf("phy=%d cell=%d slot=%d type=%d seq=%d bytes=%d",
			e.Src, e.Cell, e.A&0xFFFF, (e.A>>16)&0xF, (e.A>>24)&0xFF, e.B)
	case KindFronthaulLoss:
		return fmt.Sprintf("%s cell=%d dir=%d total=%d", e.Label, e.Cell, e.A, e.B)
	case KindSnapshotExport, KindSnapshotImport:
		return fmt.Sprintf("l2=%d cells=%d ues=%d", e.Src, e.A, e.B)
	case KindFailover, KindMigration:
		return fmt.Sprintf("cell=%d to-server=%d slot=%d", e.Cell, e.A, e.B)
	case KindChaosFault:
		return fmt.Sprintf("%s cell=%d a=%d b=%d", e.Label, e.Cell, e.A, e.B)
	case KindRLCDiscard:
		return fmt.Sprintf("cell=%d ue=%d discarded=%d", e.Cell, e.UE, e.B)
	case KindCrash:
		return fmt.Sprintf("phy=%d reason=%q", e.Src, e.Label)
	case KindInvariant:
		return fmt.Sprintf("%s cell=%d ue=%d", e.Label, e.Cell, e.UE)
	case KindTick:
		return fmt.Sprintf("%s n=%d", e.Label, e.A)
	default:
		return fmt.Sprintf("src=%d cell=%d ue=%d a=%d b=%d %s", e.Src, e.Cell, e.UE, e.A, e.B, e.Label)
	}
}

// DefaultCapacity is the ring size used when a caller passes 0.
const DefaultCapacity = 4096

// Recorder is a bounded, deterministic event ring plus a counter registry.
// A nil *Recorder is the disabled tracer: every method no-ops, and hot
// emission sites additionally guard with an inline nil check so disabled
// tracing costs one pointer compare.
//
// A Recorder is single-goroutine by contract: it must only be touched from
// the deployment's event-loop goroutine (or the seed-shard goroutine that
// owns the whole run) — the same contract the sim.Engine itself has.
type Recorder struct {
	eng *sim.Engine
	buf []Event
	// total counts every emission; the ring holds the last len(buf).
	total uint64
	reg   *Registry
}

// NewRecorder returns an enabled recorder with the given ring capacity
// (DefaultCapacity when ≤0). The recorder is unbound: timestamps read 0
// until Bind attaches an engine — core wiring binds it at deployment
// construction.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity), reg: NewRegistry()}
}

// Bind attaches the virtual clock. Called once by the deployment builder;
// events emitted before Bind carry timestamp 0.
func (r *Recorder) Bind(eng *sim.Engine) {
	if r != nil {
		r.eng = eng
	}
}

// Metrics returns the recorder's counter registry (nil when disabled —
// Registry methods are nil-safe too).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

func (r *Recorder) now() sim.Time {
	if r.eng == nil {
		return 0
	}
	return r.eng.Now()
}

// Emit records one event. Safe on a nil recorder (no-op); hot paths should
// still guard `if rec != nil` at the call site so the disabled cost is a
// single pointer compare with no call.
func (r *Recorder) Emit(kind EventKind, src uint8, cell, ue uint16, a, b uint64) {
	if r == nil {
		return
	}
	r.push(Event{Kind: kind, Src: src, Cell: cell, UE: ue, A: a, B: b})
}

// EmitLabeled records one event carrying a static string annotation.
func (r *Recorder) EmitLabeled(kind EventKind, label string, src uint8, cell, ue uint16, a, b uint64) {
	if r == nil {
		return
	}
	r.push(Event{Kind: kind, Src: src, Cell: cell, UE: ue, A: a, B: b, Label: label})
}

func (r *Recorder) push(e Event) {
	e.Seq = r.total
	e.At = r.now()
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
}

// Total returns how many events have been emitted (including evicted ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Len returns how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Capacity returns the ring size (0 when disabled).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Events returns the retained events oldest-first. The slice is a copy.
func (r *Recorder) Events() []Event {
	return r.Last(r.Len())
}

// Last returns up to n most recent events, oldest-first.
func (r *Recorder) Last(n int) []Event {
	if r == nil || n <= 0 {
		return nil
	}
	held := r.Len()
	if n > held {
		n = held
	}
	out := make([]Event, n)
	cap64 := uint64(len(r.buf))
	start := r.total - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+uint64(i))%cap64]
	}
	return out
}

// Timeline renders every retained event as one line per event, oldest
// first. Byte-identical across worker counts for the same seeded run.
func (r *Recorder) Timeline() string {
	return timeline(r.Events())
}

// TimelineLast renders the most recent n events.
func (r *Recorder) TimelineLast(n int) string {
	return timeline(r.Last(n))
}

func timeline(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Serialize renders the full deterministic trace: a header with totals,
// the timeline, and the counter exposition. Two recorders fed the same
// seeded run serialize identically (the determinism tests' contract).
func (r *Recorder) Serialize() string {
	if r == nil {
		return "trace: disabled\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events emitted, %d retained (capacity %d)\n",
		r.total, r.Len(), len(r.buf))
	b.WriteString(r.Timeline())
	b.WriteString(r.reg.Exposition())
	return b.String()
}

// FlightDump renders the flight-recorder view the chaos checker attaches
// to a failing report: the last n events before the violation, plus the
// counter deltas since base (a Snapshot taken when the checker attached).
func (r *Recorder) FlightDump(n int, base Snapshot) string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	events := r.Last(n)
	fmt.Fprintf(&b, "flight recorder: last %d of %d events at %.6fms\n",
		len(events), r.total, r.now().Millis())
	b.WriteString(timeline(events))
	b.WriteString(r.reg.Delta(base))
	return b.String()
}
