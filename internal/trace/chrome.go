package trace

import (
	"fmt"
	"io"
	"strings"
)

// WriteChrome serializes the retained events in the Chrome trace_event
// JSON array format (load via chrome://tracing or https://ui.perfetto.dev).
// Each event becomes an instant event: pid = source server/PHY id, tid =
// cell, ts = virtual microseconds. Deterministic: same run, same bytes.
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	events := r.Events()
	var b strings.Builder
	b.WriteString("[\n")
	for i, e := range events {
		name := e.Kind.String()
		if e.Label != "" {
			name = name + ":" + jsonEscape(e.Label)
		}
		fmt.Fprintf(&b,
			`  {"name":%q,"ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"seq":%d,"ue":%d,"a":%d,"b":%d}}`,
			name, float64(e.At)/1e3, e.Src, e.Cell, e.Seq, e.UE, e.A, e.B)
		if i < len(events)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonEscape strips characters that would break the hand-rolled JSON
// emission (labels are static identifiers; quotes never appear in
// practice, but a fuzzer-supplied crash reason could carry anything).
func jsonEscape(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	repl := strings.NewReplacer(`"`, `'`, `\`, `/`, "\n", " ", "\r", " ", "\t", " ")
	return repl.Replace(s)
}
