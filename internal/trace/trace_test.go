package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

// feed emits n synthetic events drawn from a seeded RNG, advancing the
// bound engine's clock between emissions.
func feed(r *Recorder, eng *sim.Engine, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if eng != nil {
			eng.At(eng.Now()+sim.Time(rng.Intn(1000)), "noop", func() {})
			eng.Run()
		}
		kind := EventKind(1 + rng.Intn(int(KindTick)))
		r.Emit(kind, uint8(rng.Intn(4)), uint16(rng.Intn(8)), uint16(rng.Intn(16)),
			uint64(rng.Intn(1000)), uint64(rng.Intn(1000)))
		if rng.Intn(4) == 0 {
			r.Metrics().Counter("test.fed").Inc()
		}
	}
}

// TestRingEvictionOrderProperty: for any capacity and emission count, the
// retained events are exactly the most recent min(n, cap) emissions, in
// emission order with contiguous ascending sequence numbers ending at the
// final emission. Checked via testing/quick over random shapes.
func TestRingEvictionOrderProperty(t *testing.T) {
	prop := func(capRaw uint8, nRaw uint16, seed int64) bool {
		capacity := int(capRaw)%64 + 1
		n := int(nRaw) % 300
		r := NewRecorder(capacity)
		feed(r, nil, seed, n)

		if r.Total() != uint64(n) {
			return false
		}
		events := r.Events()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(events) != want {
			return false
		}
		for i, e := range events {
			// Oldest retained event is emission n-want; order preserved.
			if e.Seq != uint64(n-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLastNeverDropsMostRecent: Last(k) always ends with the most recent
// emission and holds min(k, retained) events in order.
func TestLastNeverDropsMostRecent(t *testing.T) {
	prop := func(capRaw, kRaw uint8, nRaw uint16, seed int64) bool {
		capacity := int(capRaw)%32 + 1
		k := int(kRaw)%48 + 1
		n := int(nRaw)%200 + 1 // at least one emission
		r := NewRecorder(capacity)
		feed(r, nil, seed, n)

		last := r.Last(k)
		want := k
		if held := r.Len(); want > held {
			want = held
		}
		if len(last) != want {
			return false
		}
		if last[len(last)-1].Seq != uint64(n-1) {
			return false // most recent emission missing
		}
		for i := 1; i < len(last); i++ {
			if last[i].Seq != last[i-1].Seq+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestIdenticalFeedsSerializeIdentically: two recorders fed the same
// seeded event stream produce byte-identical Serialize output; a different
// seed diverges.
func TestIdenticalFeedsSerializeIdentically(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%500 + 10
		mk := func(s int64) string {
			eng := sim.NewEngine()
			r := NewRecorder(128)
			r.Bind(eng)
			feed(r, eng, s, n)
			return r.Serialize()
		}
		return mk(seed) == mk(seed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Different seeds must not collide (sanity against a constant Serialize).
	eng1, eng2 := sim.NewEngine(), sim.NewEngine()
	a, b := NewRecorder(128), NewRecorder(128)
	a.Bind(eng1)
	b.Bind(eng2)
	feed(a, eng1, 1, 100)
	feed(b, eng2, 2, 100)
	if a.Serialize() == b.Serialize() {
		t.Fatal("different feeds serialized identically")
	}
}

// TestNilRecorderIsInert: every method on a nil recorder (and nil
// registry/counter/gauge) is a safe no-op — the disabled-tracing contract
// all emission sites rely on.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(KindTTI, 1, 2, 3, 4, 5)
	r.EmitLabeled(KindCrash, "x", 1, 2, 3, 4, 5)
	r.Bind(sim.NewEngine())
	if r.Total() != 0 || r.Len() != 0 || r.Capacity() != 0 {
		t.Fatal("nil recorder reports nonzero sizes")
	}
	if r.Events() != nil || r.Last(5) != nil {
		t.Fatal("nil recorder returned events")
	}
	if r.Timeline() != "" || r.FlightDump(5, nil) != "" {
		t.Fatal("nil recorder rendered a timeline")
	}
	if got := r.Serialize(); got != "trace: disabled\n" {
		t.Fatalf("nil Serialize = %q", got)
	}
	reg := r.Metrics()
	if reg != nil {
		t.Fatal("nil recorder handed out a registry")
	}
	reg.Counter("a").Inc()
	reg.Counter("a").Add(3)
	reg.Gauge("b").Set(7)
	reg.Gauge("b").Add(-2)
	if reg.Counter("a").Value() != 0 || reg.Gauge("b").Value() != 0 {
		t.Fatal("nil metrics accumulated")
	}
	if reg.Snapshot() != nil || reg.Exposition() != "" || reg.Delta(nil) != "" {
		t.Fatal("nil registry rendered output")
	}
}

// TestEventRendering pins one formatted line per kind so the timeline
// format changes consciously (the golden test covers whole-run output).
func TestEventRendering(t *testing.T) {
	e := Event{Seq: 7, At: 1250 * sim.Microsecond, Kind: KindFECDecode,
		Src: 1, Cell: 0, UE: 3, A: 42, B: 5 | 1<<8 | 1<<9}
	line := e.String()
	for _, want := range []string{"[    1.250000ms]", "#000007", "fec-decode",
		"phy=1", "ue=3", "slot=42", "harq=5", "new=true", "ok=true"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	if got := EventKind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind renders %q", got)
	}
	// Every named kind must render without falling into the default arm's
	// raw dump (which would mean a missing detail case).
	for k := KindTTI; k <= KindTick; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

// TestCounterRegistry covers registration idempotence, sorted exposition
// and delta rendering.
func TestCounterRegistry(t *testing.T) {
	if reg := NewRegistry(); reg.Counter("x") != reg.Counter("x") {
		t.Fatal("same name yielded distinct counters")
	}
	reg := NewRegistry()
	reg.Counter("b.two").Add(2)
	reg.Counter("a.one").Inc()
	reg.Gauge("c.gauge").Set(-4)
	base := reg.Snapshot()

	exp := reg.Exposition()
	wantExp := "counters:\n  a.one   1\n  b.two   2\n  c.gauge -4\n"
	if exp != wantExp {
		t.Fatalf("exposition:\n%q\nwant:\n%q", exp, wantExp)
	}

	reg.Counter("b.two").Add(3)
	reg.Gauge("c.gauge").Add(1)
	delta := reg.Delta(base)
	wantDelta := "counter deltas:\n  b.two   +3 (now 5)\n  c.gauge +1 (now -3)\n"
	if delta != wantDelta {
		t.Fatalf("delta:\n%q\nwant:\n%q", delta, wantDelta)
	}
	if got := reg.Delta(reg.Snapshot()); got != "counter deltas: none\n" {
		t.Fatalf("no-change delta = %q", got)
	}
}

// TestChromeExport sanity-checks the trace_event JSON shape.
func TestChromeExport(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(16)
	r.Bind(eng)
	eng.At(2*sim.Millisecond, "x", func() {
		r.EmitLabeled(KindCrash, `bad "reason"`, 3, 1, 0, 0, 0)
	})
	eng.Run()
	var b strings.Builder
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"name":"crash:bad 'reason'"`, `"ph":"i"`,
		`"ts":2000.000`, `"pid":3`, `"tid":1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %q:\n%s", want, out)
		}
	}
	var nb strings.Builder
	var nilRec *Recorder
	if err := nilRec.WriteChrome(&nb); err != nil || nb.String() != "[]\n" {
		t.Fatalf("nil WriteChrome = %q, %v", nb.String(), err)
	}
}
