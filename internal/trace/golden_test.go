// Golden-trace regression test (external package: it builds a full core
// deployment, which internal trace tests cannot import without a cycle).
package trace_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"slingshot/internal/core"
	"slingshot/internal/par"
	"slingshot/internal/phy"
	"slingshot/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// goldenRun executes the canonical 100-TTI single-UE deployment with
// tracing enabled and returns the serialized trace.
func goldenRun() string {
	rec := trace.NewRecorder(0)
	cfg := core.DefaultConfig()
	cfg.UEs = []core.UESpec{{ID: 1, Name: "golden", MeanSNRdB: 24}}
	cfg.Trace = rec

	d := core.NewSlingshot(cfg)
	d.OnUplink(func(ue uint16, pkt []byte) {})
	d.Start()
	// A little app traffic mid-run so decode / RLC / HARQ events appear in
	// the window, not just slot clockwork.
	d.Engine.At(40*phy.TTI, "golden.traffic", func() {
		d.UEs[1].SendUplink(make([]byte, 600))
		d.SendDownlink(1, make([]byte, 600))
	})
	d.Run(100 * phy.TTI)
	d.Stop()
	return rec.Serialize()
}

// TestGoldenTrace compares the 100-TTI single-UE trace byte-for-byte with
// the committed golden file. Regenerate deliberately with:
//
//	go test ./internal/trace -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	path := filepath.Join("testdata", "golden_100tti.trace")
	got := goldenRun()

	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo, hi := i-120, i+120
		if lo < 0 {
			lo = 0
		}
		clip := func(s string) string {
			h := hi
			if h > len(s) {
				h = len(s)
			}
			if lo >= h {
				return ""
			}
			return s[lo:h]
		}
		t.Fatalf("trace diverged from golden file at byte %d\n--- got ---\n%s\n--- want ---\n%s\n"+
			"(intentional format changes: re-run with -update)", i, clip(got), clip(string(want)))
	}

	// The same run must serialize identically regardless of the worker-pool
	// width — emission happens only on the event-loop goroutine.
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	if again := goldenRun(); again != got {
		t.Fatal("trace differs with SLINGSHOT_WORKERS=4")
	}
}
