package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonic per-deployment event counter. A nil counter is
// the disabled form: Inc/Add no-op, Value reads 0 — so components can hold
// counters unconditionally and pay one pointer compare when tracing is off.
type Counter struct {
	name string
	v    uint64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add accumulates n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a per-deployment instantaneous value (queue depth, active HARQ
// sequences). Nil-safe like Counter.
type Gauge struct {
	name string
	v    int64
}

// Name returns the gauge's registry name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add shifts the value by d (negative allowed).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Registry holds one deployment's counters and gauges. Like the Recorder
// it is single-goroutine by contract (event-loop only), so reads mid-run
// are exact, not racy snapshots. A nil *Registry hands out nil counters
// and gauges, keeping every layer's wiring unconditional.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use. Idempotent:
// the same name always yields the same counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Snapshot is a point-in-time copy of every registered value, keyed by
// name. Gauges and counters share the namespace (registration enforces
// distinct names in practice; a collision keeps the counter).
type Snapshot map[string]int64

// Snapshot captures the current value of every counter and gauge.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	s := make(Snapshot, len(r.counters)+len(r.gauges))
	for name, g := range r.gauges {
		s[name] = g.v
	}
	for name, c := range r.counters {
		s[name] = int64(c.v)
	}
	return s
}

// names returns the registered names in sorted (stable exposition) order.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		if _, dup := r.counters[name]; !dup {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Exposition renders every metric as "name value" lines in sorted name
// order — the stable text form experiments print and tests compare.
func (r *Registry) Exposition() string {
	if r == nil {
		return ""
	}
	names := r.names()
	if len(names) == 0 {
		return ""
	}
	w := 0
	for _, name := range names {
		if len(name) > w {
			w = len(name)
		}
	}
	snap := r.Snapshot()
	var b strings.Builder
	b.WriteString("counters:\n")
	for _, name := range names {
		fmt.Fprintf(&b, "  %-*s %d\n", w, name, snap[name])
	}
	return b.String()
}

// Fingerprint hashes the exposition text (FNV-1a). Snapshot verification
// and the slingshotd /metrics endpoint use it as a compact identity for
// "these two metric sets are byte-identical".
func (r *Registry) Fingerprint() uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, c := range []byte(r.Exposition()) {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// MergeFrom folds another registry into this one: counters accumulate and
// gauges sum, keyed by name. Deterministic given deterministic inputs (the
// values merge, not any iteration order). Used by the shard fleet to
// aggregate per-cell registries into one exposition; merging nil or from
// nil is a no-op.
func (r *Registry) MergeFrom(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for name, c := range other.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range other.gauges {
		r.Gauge(name).Add(g.v)
	}
}

// Delta renders the per-metric change since base in sorted name order,
// omitting metrics that did not move. Metrics born after base diff against
// zero.
func (r *Registry) Delta(base Snapshot) string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	names := r.names()
	type row struct {
		name string
		d    int64
		now  int64
	}
	var rows []row
	w := 0
	for _, name := range names {
		d := snap[name] - base[name]
		if d == 0 {
			continue
		}
		rows = append(rows, row{name, d, snap[name]})
		if len(name) > w {
			w = len(name)
		}
	}
	if len(rows) == 0 {
		return "counter deltas: none\n"
	}
	var b strings.Builder
	b.WriteString("counter deltas:\n")
	for _, rw := range rows {
		fmt.Fprintf(&b, "  %-*s %+d (now %d)\n", w, rw.name, rw.d, rw.now)
	}
	return b.String()
}
