package trace

import (
	"testing"

	"slingshot/internal/sim"
)

// BenchmarkTraceDisabled measures the cost tracing adds to a hot path
// when disabled: the call-site nil-guard pattern every emission site uses
// (`if rec != nil { rec.Emit(...) }`). The acceptance bar is 0 allocs/op
// and under ~2 ns/op — one predictable branch.
func BenchmarkTraceDisabled(b *testing.B) {
	var rec *Recorder
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The guarded emission exactly as written in phy/harq/rlc hot paths.
		if rec != nil {
			rec.Emit(KindFECDecode, 1, 0, 3, uint64(i), 0x305)
		}
		sink += uint64(i)
	}
	_ = sink
}

// BenchmarkTraceDisabledNilCall measures the nil-receiver call itself
// (sites that skip the guard still must not allocate).
func BenchmarkTraceDisabledNilCall(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Emit(KindFECDecode, 1, 0, 3, uint64(i), 0x305)
	}
}

// BenchmarkTraceEnabled measures a live emission into the ring: all-scalar
// event payloads mean the steady state is 0 allocs/op.
func BenchmarkTraceEnabled(b *testing.B) {
	eng := sim.NewEngine()
	rec := NewRecorder(DefaultCapacity)
	rec.Bind(eng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Emit(KindFECDecode, 1, 0, 3, uint64(i), 0x305)
	}
}

// BenchmarkTraceEnabledLabeled is the labeled variant (static string
// label, still alloc-free).
func BenchmarkTraceEnabledLabeled(b *testing.B) {
	eng := sim.NewEngine()
	rec := NewRecorder(DefaultCapacity)
	rec.Bind(eng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.EmitLabeled(KindChaosFault, "loss", 0, 1, 0, uint64(i), 0)
	}
}

// BenchmarkCounterInc measures the counter hot path (enabled).
func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// TestDisabledPathAllocFree asserts the 0 allocs/op bar as a regular test
// so `go test` (not just benchmarks) catches a regression.
func TestDisabledPathAllocFree(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		if rec != nil {
			rec.Emit(KindTTI, 0, 0, 0, 0, 0)
		}
		rec.Emit(KindTTI, 0, 0, 0, 0, 0)
		rec.Metrics().Counter("x").Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

// TestEnabledPathAllocFree asserts live emission does not allocate once
// the ring exists.
func TestEnabledPathAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	rec := NewRecorder(256)
	rec.Bind(eng)
	ctr := rec.Metrics().Counter("x")
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(KindFECDecode, 1, 0, 3, 9, 0x305)
		rec.EmitLabeled(KindChaosFault, "loss", 0, 1, 0, 0, 0)
		ctr.Inc()
	})
	if allocs != 0 {
		t.Fatalf("enabled tracing allocates %.1f per op, want 0", allocs)
	}
}
