package traffic

import (
	"testing"

	"slingshot/internal/metrics"
	"slingshot/internal/sim"
)

// pipe is a one-way bearer with fixed delay, optional loss windows, and a
// receive handler — a stand-in for the RAN path in unit tests.
type pipe struct {
	e       *sim.Engine
	delay   sim.Time
	to      func([]byte)
	lossOn  func(sim.Time) bool
	dropped int
}

func (p *pipe) send(pkt []byte) bool {
	now := p.e.Now()
	if p.lossOn != nil && p.lossOn(now) {
		p.dropped++
		return true // accepted but lost in transit
	}
	data := append([]byte(nil), pkt...)
	p.e.After(p.delay, "pipe", func() { p.to(data) })
	return true
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: PktTCPData, Flow: 7, Seq: 123, Ack: 456, Ts: 789}
	pkt := Marshal(h, 100)
	got, plen, err := Unmarshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || plen != 100 {
		t.Fatalf("got %+v plen=%d", got, plen)
	}
	if _, _, err := Unmarshal(pkt[:10]); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := Unmarshal(pkt[:len(pkt)-5]); err != ErrShort {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestUDPFlowRateAndAccounting(t *testing.T) {
	e := sim.NewEngine()
	rx := &UDPReceiver{Engine: e, Flow: 1,
		Bins:    metrics.NewTimeSeries(0, 10*sim.Millisecond),
		Latency: metrics.NewSample(),
	}
	p := &pipe{e: e, delay: 5 * sim.Millisecond, to: rx.Handle}
	tx := &UDPSender{Engine: e, Flow: 1, RateBps: 8e6, PktSize: 1000, Send: p.send}
	tx.Start()
	e.RunUntil(1 * sim.Second)
	tx.Stop()
	e.RunUntil(2 * sim.Second)

	// 8 Mbps at 1000B packets = 1000 pkt/s.
	if tx.Sent < 990 || tx.Sent > 1010 {
		t.Fatalf("sent %d packets", tx.Sent)
	}
	if rx.Received != tx.Sent {
		t.Fatalf("received %d of %d", rx.Received, tx.Sent)
	}
	if rx.Lost() != 0 || rx.LossRate() != 0 {
		t.Fatalf("loss on lossless pipe: %d", rx.Lost())
	}
	if lat := rx.Latency.Median(); lat < 4.9 || lat > 5.1 {
		t.Fatalf("median latency %f ms", lat)
	}
	// Throughput bins ~ 10 kB per 10 ms.
	mid := rx.Bins.BinSum(50)
	if mid < 9000 || mid > 11000 {
		t.Fatalf("bin sum %f", mid)
	}
}

func TestUDPLossAccounting(t *testing.T) {
	e := sim.NewEngine()
	rx := &UDPReceiver{Engine: e, Flow: 1}
	p := &pipe{e: e, delay: sim.Millisecond, to: rx.Handle}
	p.lossOn = func(at sim.Time) bool {
		return at >= 400*sim.Millisecond && at < 500*sim.Millisecond
	}
	tx := &UDPSender{Engine: e, Flow: 1, RateBps: 8e6, PktSize: 1000, Send: p.send}
	tx.Start()
	e.RunUntil(1 * sim.Second)
	tx.Stop()
	e.Run()
	if p.dropped < 90 {
		t.Fatalf("pipe dropped %d", p.dropped)
	}
	if got := int(rx.Lost()); got != p.dropped {
		t.Fatalf("Lost() = %d, pipe dropped %d", got, p.dropped)
	}
}

// wireTCP builds a bidirectional TCP flow over two pipes.
func wireTCP(e *sim.Engine, delay sim.Time) (*TCPSender, *TCPReceiver, *pipe) {
	fwd := &pipe{e: e, delay: delay}
	rev := &pipe{e: e, delay: delay}
	var snd *TCPSender
	rcv := NewTCPReceiver(e, 1, rev.send, metrics.NewTimeSeries(0, 10*sim.Millisecond))
	snd = NewTCPSender(e, DefaultTCPConfig(1), fwd.send)
	fwd.to = rcv.Handle
	rev.to = snd.HandleSegment
	return snd, rcv, fwd
}

func TestTCPThroughputLossless(t *testing.T) {
	e := sim.NewEngine()
	snd, rcv, _ := wireTCP(e, 10*sim.Millisecond)
	e.At(0, "start", func() { snd.Start() })
	e.RunUntil(3 * sim.Second)
	snd.Stop()

	if snd.Retransmits != 0 || snd.Timeouts != 0 {
		t.Fatalf("spurious retransmits=%d timeouts=%d", snd.Retransmits, snd.Timeouts)
	}
	if rcv.Bytes == 0 {
		t.Fatal("no goodput")
	}
	// cwnd must have grown beyond the initial window.
	if snd.Cwnd() <= 10 {
		t.Fatalf("cwnd = %f never grew", snd.Cwnd())
	}
	// RTT estimate near 20 ms.
	if snd.SRTT() < 19*sim.Millisecond || snd.SRTT() > 25*sim.Millisecond {
		t.Fatalf("SRTT = %v", snd.SRTT())
	}
}

func TestTCPRecoversFromLossBurst(t *testing.T) {
	e := sim.NewEngine()
	snd, rcv, fwd := wireTCP(e, 10*sim.Millisecond)
	fwd.lossOn = func(at sim.Time) bool {
		return at >= 1*sim.Second && at < 1010*sim.Millisecond
	}
	e.At(0, "start", func() { snd.Start() })
	e.RunUntil(4 * sim.Second)
	snd.Stop()

	if snd.Retransmits == 0 {
		t.Fatal("no retransmissions despite loss burst")
	}
	// Goodput must resume after the burst: bytes in the last second.
	var last float64
	for i := 300; i < rcv.Bins.NumBins() && i < 400; i++ {
		last += rcv.Bins.BinSum(i)
	}
	if last == 0 {
		t.Fatal("connection never recovered after loss burst")
	}
	// And the receiver never delivered out-of-order bytes as goodput
	// beyond rcvNxt: Bytes must equal rcvNxt * segment size.
	if rcv.Bytes == 0 {
		t.Fatal("no bytes")
	}
}

func TestTCPTimeoutOnBlackout(t *testing.T) {
	e := sim.NewEngine()
	snd, _, fwd := wireTCP(e, 10*sim.Millisecond)
	// Long blackout: everything lost between 1s and 1.6s.
	fwd.lossOn = func(at sim.Time) bool {
		return at >= 1*sim.Second && at < 1600*sim.Millisecond
	}
	e.At(0, "start", func() { snd.Start() })
	e.RunUntil(4 * sim.Second)
	snd.Stop()
	if snd.Timeouts == 0 {
		t.Fatal("no RTO during a 600ms blackout")
	}
	if snd.Cwnd() <= 1 {
		t.Fatalf("cwnd = %f never recovered after RTO", snd.Cwnd())
	}
}

func TestPingEcho(t *testing.T) {
	e := sim.NewEngine()
	fwd := &pipe{e: e, delay: 11 * sim.Millisecond}
	rev := &pipe{e: e, delay: 11 * sim.Millisecond}
	p := &Pinger{Engine: e, Flow: 3, Interval: 10 * sim.Millisecond, Send: fwd.send}
	fwd.to = Echo(rev.send)
	rev.to = p.Handle
	p.Start()
	e.RunUntil(1 * sim.Second)
	p.Stop()
	e.Run()
	if len(p.RTTs) < 95 {
		t.Fatalf("answered %d pings", len(p.RTTs))
	}
	for _, rtt := range p.RTTs {
		if rtt < 21.9 || rtt > 22.1 {
			t.Fatalf("RTT %f ms, want ~22", rtt)
		}
	}
	if p.LossCount() > 3 {
		t.Fatalf("loss = %d", p.LossCount())
	}
}

func TestVideoStream(t *testing.T) {
	e := sim.NewEngine()
	sink := NewVideoSink(e, 9)
	fwd := &pipe{e: e, delay: 20 * sim.Millisecond, to: sink.Handle}
	src := &VideoSource{Engine: e, Flow: 9, RateBps: 500e3, FPS: 25, Send: fwd.send}
	src.Start()
	e.RunUntil(5 * sim.Second)
	src.Stop()
	e.Run()
	// Steady-state seconds should carry ~500 kbps.
	for i := 1; i <= 3; i++ {
		kbps := sink.BitrateKbps(i)
		if kbps < 450 || kbps > 550 {
			t.Fatalf("second %d: %f kbps", i, kbps)
		}
	}
}

func TestVideoOutageShowsZeroBitrate(t *testing.T) {
	e := sim.NewEngine()
	sink := NewVideoSink(e, 9)
	fwd := &pipe{e: e, delay: 20 * sim.Millisecond, to: sink.Handle}
	fwd.lossOn = func(at sim.Time) bool {
		return at >= 2*sim.Second && at < 3*sim.Second
	}
	src := &VideoSource{Engine: e, Flow: 9, RateBps: 500e3, FPS: 25, Send: fwd.send}
	src.Start()
	e.RunUntil(5 * sim.Second)
	src.Stop()
	e.Run()
	if sink.BitrateKbps(1) < 400 {
		t.Fatalf("pre-outage bitrate %f", sink.BitrateKbps(1))
	}
	if sink.BitrateKbps(2) > 100 {
		t.Fatalf("outage second bitrate %f", sink.BitrateKbps(2))
	}
	if sink.BitrateKbps(4) < 400 {
		t.Fatalf("post-outage bitrate %f", sink.BitrateKbps(4))
	}
}

// TestTCPFastRetransmitPath drops exactly one segment and verifies dupACKs
// drive SACK-style chunk recovery without an RTO.
func TestTCPFastRetransmitPath(t *testing.T) {
	e := sim.NewEngine()
	snd, rcv, fwd := wireTCP(e, 10*sim.Millisecond)
	dropped := false
	inner := fwd.lossOn
	_ = inner
	fwd.lossOn = func(at sim.Time) bool {
		// Drop exactly one data segment once the flow is warm.
		if !dropped && at > 500*sim.Millisecond {
			dropped = true
			return true
		}
		return false
	}
	e.At(0, "start", func() { snd.Start() })
	e.RunUntil(2 * sim.Second)
	snd.Stop()
	if !dropped {
		t.Fatal("no segment was dropped")
	}
	if snd.FastRecovers != 1 {
		t.Fatalf("FastRecovers = %d, want 1", snd.FastRecovers)
	}
	if snd.Timeouts != 0 {
		t.Fatalf("RTO fired (%d) for a single loss", snd.Timeouts)
	}
	if snd.Retransmits == 0 {
		t.Fatal("no retransmission")
	}
	if rcv.Bytes == 0 {
		t.Fatal("no goodput")
	}
}

func TestUDPLossRateFraction(t *testing.T) {
	e := sim.NewEngine()
	rx := &UDPReceiver{Engine: e, Flow: 1}
	// Simulate seqs 0..9 with 2 missing.
	for _, seq := range []uint64{0, 1, 3, 4, 5, 7, 8, 9} {
		rx.Handle(Marshal(Header{Type: PktUDP, Flow: 1, Seq: seq, Ts: e.Now()}, 10))
	}
	if got := rx.Lost(); got != 2 {
		t.Fatalf("Lost = %d", got)
	}
	if got := rx.LossRate(); got != 0.2 {
		t.Fatalf("LossRate = %f", got)
	}
	// Reordered arrival does not count as loss.
	rx.Handle(Marshal(Header{Type: PktUDP, Flow: 1, Seq: 2, Ts: e.Now()}, 10))
	if rx.Reordered != 1 {
		t.Fatalf("Reordered = %d", rx.Reordered)
	}
	if got := rx.Lost(); got != 1 {
		t.Fatalf("Lost after late arrival = %d", got)
	}
}

func TestVideoSinkOutOfRangeBin(t *testing.T) {
	e := sim.NewEngine()
	sink := NewVideoSink(e, 1)
	if got := sink.BitrateKbps(99); got != 0 {
		t.Fatalf("empty bin bitrate = %f", got)
	}
}
