package traffic

import (
	"slingshot/internal/metrics"
	"slingshot/internal/sim"
)

// Pinger sends periodic echo requests and records round-trip times — the
// probe behind Fig 9 (10 ms interval in the paper).
type Pinger struct {
	Engine   *sim.Engine
	Flow     uint16
	Interval sim.Time
	Send     SendFunc

	// RTTs holds (sendTime, rttMillis) points for plotting.
	Times []sim.Time
	RTTs  []float64
	// Lost counts probes never answered (judged at Stop).
	sent     uint64
	answered uint64
	stop     func()
}

// Start begins probing.
func (p *Pinger) Start() {
	if p.Interval == 0 {
		p.Interval = 10 * sim.Millisecond
	}
	p.stop = p.Engine.Every(0, p.Interval, "ping.send", func() {
		h := Header{Type: PktPing, Flow: p.Flow, Seq: p.sent, Ts: p.Engine.Now()}
		p.sent++
		p.Send(Marshal(h, 56))
	})
}

// Stop halts probing.
func (p *Pinger) Stop() {
	if p.stop != nil {
		p.stop()
		p.stop = nil
	}
}

// Handle processes an echo reply.
func (p *Pinger) Handle(pkt []byte) {
	h, _, err := Unmarshal(pkt)
	if err != nil || h.Type != PktPong || h.Flow != p.Flow {
		return
	}
	p.answered++
	now := p.Engine.Now()
	p.Times = append(p.Times, h.Ts)
	p.RTTs = append(p.RTTs, float64(now-h.Ts)/float64(sim.Millisecond))
}

// LossCount returns probes sent but never answered so far.
func (p *Pinger) LossCount() uint64 { return p.sent - p.answered }

// Echo answers ping requests; install it at the peer. reply transmits the
// response back towards the pinger.
func Echo(reply SendFunc) func(pkt []byte) {
	return func(pkt []byte) {
		h, _, err := Unmarshal(pkt)
		if err != nil || h.Type != PktPing {
			return
		}
		h.Type = PktPong
		reply(Marshal(h, 56))
	}
}

// VideoSource is the talking-head CBR video sender of Fig 8: a target
// bitrate chopped into fixed-interval frames.
type VideoSource struct {
	Engine  *sim.Engine
	Flow    uint16
	RateBps float64
	FPS     int
	Send    SendFunc

	seq  uint64
	stop func()
	Sent uint64
}

// Start begins streaming.
func (v *VideoSource) Start() {
	if v.FPS == 0 {
		v.FPS = 25
	}
	frameBytes := int(v.RateBps / 8 / float64(v.FPS))
	if frameBytes < headerLen+1 {
		frameBytes = headerLen + 1
	}
	interval := sim.Second / sim.Time(v.FPS)
	v.stop = v.Engine.Every(0, interval, "video.frame", func() {
		// A frame may span several packets (MTU-sized).
		remaining := frameBytes
		for remaining > 0 {
			n := remaining
			if n > 1250 {
				n = 1250
			}
			h := Header{Type: PktVideo, Flow: v.Flow, Seq: v.seq, Ts: v.Engine.Now()}
			v.seq++
			v.Send(Marshal(h, n))
			v.Sent++
			remaining -= n
		}
	})
}

// Stop halts the source.
func (v *VideoSource) Stop() {
	if v.stop != nil {
		v.stop()
		v.stop = nil
	}
}

// VideoSink measures received video bitrate per second — the Fig 8 y-axis.
type VideoSink struct {
	Engine *sim.Engine
	Flow   uint16
	// Bins accumulates received bytes per second.
	Bins *metrics.TimeSeries

	Received uint64
	Bytes    uint64
}

// NewVideoSink creates a sink with 1-second bins.
func NewVideoSink(e *sim.Engine, flow uint16) *VideoSink {
	return &VideoSink{
		Engine: e, Flow: flow,
		Bins: metrics.NewTimeSeries(0, sim.Second),
	}
}

// Handle processes a received video packet.
func (s *VideoSink) Handle(pkt []byte) {
	h, plen, err := Unmarshal(pkt)
	if err != nil || h.Type != PktVideo || h.Flow != s.Flow {
		return
	}
	s.Received++
	s.Bytes += uint64(plen + headerLen)
	s.Bins.Add(s.Engine.Now(), float64(plen+headerLen))
}

// BitrateKbps returns the received bitrate of 1-second bin i.
func (s *VideoSink) BitrateKbps(i int) float64 {
	if i >= s.Bins.NumBins() {
		return 0
	}
	return s.Bins.BinSum(i) * 8 / 1000
}
