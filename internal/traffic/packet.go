// Package traffic implements the application-layer workloads of the
// paper's evaluation: iperf-style UDP and TCP (Reno/NewReno) flows, the
// ping prober of Fig 9, and the CBR video-conferencing source of Fig 8.
// Flows attach to the simulated RAN through plain send/receive hooks, so
// the same implementations run uplink (UE→server) and downlink.
package traffic

import (
	"encoding/binary"
	"errors"

	"slingshot/internal/sim"
)

// PacketType discriminates application packets.
type PacketType uint8

// Application packet types.
const (
	PktUDP PacketType = iota + 1
	PktTCPData
	PktTCPAck
	PktPing
	PktPong
	PktVideo
)

// Header is the common application packet header:
// type(1) flow(2) seq(8) ack(8) ts(8) paylen(4).
type Header struct {
	Type PacketType
	Flow uint16
	Seq  uint64
	Ack  uint64
	Ts   sim.Time
}

const headerLen = 1 + 2 + 8 + 8 + 8 + 4

// ErrShort reports an undersized packet.
var ErrShort = errors.New("traffic: short packet")

// Marshal builds a packet with the given payload length (payload bytes are
// zero filler: only the length matters to the link).
func Marshal(h Header, payloadLen int) []byte {
	out := make([]byte, headerLen+payloadLen)
	out[0] = byte(h.Type)
	binary.BigEndian.PutUint16(out[1:3], h.Flow)
	binary.BigEndian.PutUint64(out[3:11], h.Seq)
	binary.BigEndian.PutUint64(out[11:19], h.Ack)
	binary.BigEndian.PutUint64(out[19:27], uint64(h.Ts))
	binary.BigEndian.PutUint32(out[27:31], uint32(payloadLen))
	return out
}

// Unmarshal parses a packet header and returns the payload length.
func Unmarshal(pkt []byte) (Header, int, error) {
	if len(pkt) < headerLen {
		return Header{}, 0, ErrShort
	}
	h := Header{
		Type: PacketType(pkt[0]),
		Flow: binary.BigEndian.Uint16(pkt[1:3]),
		Seq:  binary.BigEndian.Uint64(pkt[3:11]),
		Ack:  binary.BigEndian.Uint64(pkt[11:19]),
		Ts:   sim.Time(binary.BigEndian.Uint64(pkt[19:27])),
	}
	plen := int(binary.BigEndian.Uint32(pkt[27:31]))
	if len(pkt) < headerLen+plen {
		return Header{}, 0, ErrShort
	}
	return h, plen, nil
}

// SendFunc injects a packet towards the peer; it reports acceptance (a
// detached bearer rejects).
type SendFunc func(pkt []byte) bool
