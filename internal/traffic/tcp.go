package traffic

import (
	"slingshot/internal/metrics"
	"slingshot/internal/sim"
)

// TCP implements a NewReno-style sender and a cumulative-ACK receiver over
// the simulated bearer, enough to reproduce the paper's Fig 10 transport
// behaviour: dupACK fast retransmit, partial-ACK recovery, RTO with
// exponential backoff, slow start and congestion avoidance. Sequence
// numbers count segments (fixed MSS), not bytes.

// TCPConfig parameterizes a sender.
type TCPConfig struct {
	Flow     uint16
	MSS      int     // segment payload bytes
	InitCwnd float64 // segments
	MinRTO   sim.Time
	MaxCwnd  float64 // receiver-window equivalent, segments
}

// DefaultTCPConfig returns sane defaults for the cellular bearer.
func DefaultTCPConfig(flow uint16) TCPConfig {
	return TCPConfig{
		Flow:     flow,
		MSS:      1400 - headerLen,
		InitCwnd: 10,
		MinRTO:   200 * sim.Millisecond,
		MaxCwnd:  512,
	}
}

// TCPSender is the sending endpoint. It transmits continuously (iperf
// mode): the application always has data.
type TCPSender struct {
	Cfg    TCPConfig
	Engine *sim.Engine
	Send   SendFunc

	nextSeq    uint64 // next new segment to send
	sndUna     uint64 // oldest unacked
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool
	recover    uint64 // recovery point (highest seq sent at loss)
	retxHigh   uint64 // highest seq retransmitted this recovery

	srtt, rttvar sim.Time
	rto          sim.Time
	rtoBackoff   int
	timer        *sim.Event
	// tsSent maps in-flight segment -> first-send time (for RTT samples;
	// Karn's rule: only time un-retransmitted segments).
	tsSent   map[uint64]sim.Time
	retxMark map[uint64]bool

	// Stats.
	SegmentsSent uint64
	Retransmits  uint64
	Timeouts     uint64
	FastRecovers uint64
}

// NewTCPSender creates a sender.
func NewTCPSender(e *sim.Engine, cfg TCPConfig, send SendFunc) *TCPSender {
	if cfg.MSS <= 0 {
		cfg.MSS = 1400 - headerLen
	}
	if cfg.InitCwnd == 0 {
		cfg.InitCwnd = 10
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 200 * sim.Millisecond
	}
	if cfg.MaxCwnd == 0 {
		cfg.MaxCwnd = 512
	}
	return &TCPSender{
		Cfg:      cfg,
		Engine:   e,
		Send:     send,
		cwnd:     cfg.InitCwnd,
		ssthresh: cfg.MaxCwnd,
		rto:      cfg.MinRTO,
		tsSent:   make(map[uint64]sim.Time),
		retxMark: make(map[uint64]bool),
	}
}

// Start opens the flow (no handshake modeled; iperf's is negligible).
func (t *TCPSender) Start() {
	t.pump()
}

// Cwnd returns the current congestion window in segments.
func (t *TCPSender) Cwnd() float64 { return t.cwnd }

// InFlight returns the number of unacked segments.
func (t *TCPSender) InFlight() uint64 { return t.nextSeq - t.sndUna }

func (t *TCPSender) pump() {
	for float64(t.InFlight()) < t.cwnd {
		t.transmit(t.nextSeq, false)
		t.nextSeq++
	}
	t.armTimer()
}

func (t *TCPSender) transmit(seq uint64, isRetx bool) {
	h := Header{Type: PktTCPData, Flow: t.Cfg.Flow, Seq: seq, Ts: t.Engine.Now()}
	t.Send(Marshal(h, t.Cfg.MSS))
	t.SegmentsSent++
	if isRetx {
		t.Retransmits++
		t.retxMark[seq] = true
	} else if _, seen := t.tsSent[seq]; !seen {
		t.tsSent[seq] = t.Engine.Now()
	}
}

func (t *TCPSender) armTimer() {
	if t.timer != nil {
		t.timer.Cancel()
	}
	if t.InFlight() == 0 {
		return
	}
	backoff := t.rto << t.rtoBackoff
	if backoff > 60*sim.Second {
		backoff = 60 * sim.Second
	}
	t.timer = t.Engine.After(backoff, "tcp.rto", t.onTimeout)
}

func (t *TCPSender) onTimeout() {
	if t.InFlight() == 0 {
		return
	}
	t.Timeouts++
	t.ssthresh = t.cwnd / 2
	if t.ssthresh < 2 {
		t.ssthresh = 2
	}
	t.cwnd = 1
	t.dupAcks = 0
	t.inRecovery = false
	t.rtoBackoff++
	// Go-back-N from the hole.
	t.transmit(t.sndUna, true)
	t.armTimer()
}

// HandleSegment processes an incoming ACK.
func (t *TCPSender) HandleSegment(pkt []byte) {
	h, _, err := Unmarshal(pkt)
	if err != nil || h.Type != PktTCPAck || h.Flow != t.Cfg.Flow {
		return
	}
	ack := h.Ack // next expected segment at receiver
	switch {
	case ack > t.sndUna:
		t.onNewAck(ack)
	case ack == t.sndUna:
		t.onDupAck()
	}
	t.pump()
}

func (t *TCPSender) onNewAck(ack uint64) {
	// RTT sample from the newest cumulative segment if untouched by retx.
	if ts, ok := t.tsSent[ack-1]; ok && !t.retxMark[ack-1] {
		t.updateRTT(t.Engine.Now() - ts)
	}
	for s := t.sndUna; s < ack; s++ {
		delete(t.tsSent, s)
		delete(t.retxMark, s)
	}
	t.sndUna = ack
	t.rtoBackoff = 0

	if t.inRecovery {
		if ack > t.recover {
			// Full recovery.
			t.inRecovery = false
			t.cwnd = t.ssthresh
			t.dupAcks = 0
		} else {
			// Partial ACK: retransmit the next chunk of the hole
			// (SACK-style bulk recovery rather than one-per-RTT NewReno;
			// Linux senders with SACK recover a multi-segment burst in
			// about one RTT).
			t.retransmitChunk()
		}
	} else {
		t.dupAcks = 0
		if t.cwnd < t.ssthresh {
			t.cwnd++ // slow start
		} else {
			t.cwnd += 1 / t.cwnd // congestion avoidance
		}
		if t.cwnd > t.Cfg.MaxCwnd {
			t.cwnd = t.Cfg.MaxCwnd
		}
	}
	t.armTimer()
}

func (t *TCPSender) onDupAck() {
	if t.inRecovery {
		return
	}
	t.dupAcks++
	if t.dupAcks == 3 {
		t.FastRecovers++
		t.inRecovery = true
		t.recover = t.nextSeq
		t.retxHigh = t.sndUna
		t.ssthresh = t.cwnd / 2
		if t.ssthresh < 2 {
			t.ssthresh = 2
		}
		t.cwnd = t.ssthresh
		t.retransmitChunk()
		t.armTimer()
	}
}

// retxChunk bounds how many segments one recovery round resends.
const retxChunk = 64

// retransmitChunk resends the leading un-retransmitted part of the hole
// [sndUna, recover), at most retxChunk segments per call.
func (t *TCPSender) retransmitChunk() {
	start := t.sndUna
	if t.retxHigh > start {
		start = t.retxHigh
	}
	end := start + retxChunk
	if end > t.recover {
		end = t.recover
	}
	for s := start; s < end; s++ {
		t.transmit(s, true)
	}
	if end > t.retxHigh {
		t.retxHigh = end
	}
}

func (t *TCPSender) updateRTT(sample sim.Time) {
	if t.srtt == 0 {
		t.srtt = sample
		t.rttvar = sample / 2
	} else {
		diff := t.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		t.rttvar = (3*t.rttvar + diff) / 4
		t.srtt = (7*t.srtt + sample) / 8
	}
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < t.Cfg.MinRTO {
		t.rto = t.Cfg.MinRTO
	}
}

// SRTT returns the smoothed RTT estimate.
func (t *TCPSender) SRTT() sim.Time { return t.srtt }

// Stop cancels the retransmission timer.
func (t *TCPSender) Stop() {
	if t.timer != nil {
		t.timer.Cancel()
	}
}

// TCPReceiver is the receiving endpoint: cumulative ACKs, in-order
// delivery accounting, goodput bins.
type TCPReceiver struct {
	Engine *sim.Engine
	Flow   uint16
	// SendAck transmits ACKs back to the sender.
	SendAck SendFunc
	// Bins accumulates in-order goodput bytes per bin.
	Bins *metrics.TimeSeries

	rcvNxt   uint64
	ooo      map[uint64]int // out-of-order segment -> payload length
	Bytes    uint64
	AcksSent uint64
}

// NewTCPReceiver creates a receiver.
func NewTCPReceiver(e *sim.Engine, flow uint16, sendAck SendFunc, bins *metrics.TimeSeries) *TCPReceiver {
	return &TCPReceiver{Engine: e, Flow: flow, SendAck: sendAck, Bins: bins, ooo: make(map[uint64]int)}
}

// Handle processes an incoming data segment.
func (r *TCPReceiver) Handle(pkt []byte) {
	h, plen, err := Unmarshal(pkt)
	if err != nil || h.Type != PktTCPData || h.Flow != r.Flow {
		return
	}
	if h.Seq >= r.rcvNxt {
		r.ooo[h.Seq] = plen
	}
	// Advance over any contiguous prefix; goodput counts in-order bytes
	// at the time the hole fills (the paper's 157 Mbps catch-up spike).
	now := r.Engine.Now()
	for {
		n, ok := r.ooo[r.rcvNxt]
		if !ok {
			break
		}
		delete(r.ooo, r.rcvNxt)
		r.rcvNxt++
		r.Bytes += uint64(n + headerLen)
		if r.Bins != nil {
			r.Bins.Add(now, float64(n+headerLen))
		}
	}
	ack := Header{Type: PktTCPAck, Flow: r.Flow, Ack: r.rcvNxt, Ts: now}
	r.SendAck(Marshal(ack, 0))
	r.AcksSent++
}
