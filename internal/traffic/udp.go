package traffic

import (
	"slingshot/internal/metrics"
	"slingshot/internal/sim"
)

// UDPSender is an iperf-style constant-bitrate UDP source.
type UDPSender struct {
	Engine  *sim.Engine
	Flow    uint16
	RateBps float64
	PktSize int
	Send    SendFunc

	seq      uint64
	Sent     uint64
	Rejected uint64
	stop     func()
}

// Start begins sending at the configured rate.
func (s *UDPSender) Start() {
	if s.PktSize < headerLen+1 {
		s.PktSize = headerLen + 1
	}
	interval := sim.Time(float64(s.PktSize*8) / s.RateBps * float64(sim.Second))
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	s.stop = s.Engine.Every(0, interval, "udp.send", func() {
		h := Header{Type: PktUDP, Flow: s.Flow, Seq: s.seq, Ts: s.Engine.Now()}
		s.seq++
		if s.Send(Marshal(h, s.PktSize-headerLen)) {
			s.Sent++
		} else {
			s.Rejected++
		}
	})
}

// Stop halts the sender.
func (s *UDPSender) Stop() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// UDPReceiver accounts received datagrams into time bins and tracks loss
// and one-way latency.
type UDPReceiver struct {
	Engine *sim.Engine
	Flow   uint16
	// Bins accumulates received bytes per bin (10 ms for Fig 10/Table 2).
	Bins *metrics.TimeSeries
	// Latency records one-way delays.
	Latency *metrics.Sample

	Received uint64
	Bytes    uint64
	maxSeq   uint64
	gotAny   bool
	// Reordered counts out-of-order arrivals (not separate losses).
	Reordered uint64
}

// Handle processes one received packet (wire bytes).
func (r *UDPReceiver) Handle(pkt []byte) {
	h, plen, err := Unmarshal(pkt)
	if err != nil || h.Type != PktUDP || h.Flow != r.Flow {
		return
	}
	now := r.Engine.Now()
	r.Received++
	r.Bytes += uint64(headerLen + plen)
	if r.Bins != nil {
		r.Bins.Add(now, float64(headerLen+plen))
	}
	if r.Latency != nil {
		r.Latency.Add(float64(now-h.Ts) / float64(sim.Millisecond))
	}
	if !r.gotAny || h.Seq > r.maxSeq {
		r.maxSeq = h.Seq
		r.gotAny = true
	} else {
		r.Reordered++
	}
}

// Lost estimates datagrams lost so far (sent-range minus received).
func (r *UDPReceiver) Lost() uint64 {
	if !r.gotAny {
		return 0
	}
	span := r.maxSeq + 1
	if span < r.Received {
		return 0
	}
	return span - r.Received
}

// LossRate returns the flow's loss fraction over everything sent so far.
func (r *UDPReceiver) LossRate() float64 {
	if !r.gotAny || r.maxSeq+1 == 0 {
		return 0
	}
	return float64(r.Lost()) / float64(r.maxSeq+1)
}
