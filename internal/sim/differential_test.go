package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The differential harness drives the optimized two-tier engine and the
// retained ReferenceEngine (reference.go) through the same randomized
// operation sequence and asserts every observable agrees: pop order
// (including equal-time FIFO ties, forced by coarse time quantization),
// clock, Pending, NextSeq, Processed and QueueSnapshot. Operations cover
// everything the production code does to a queue: schedule near (calendar
// tier) and far (heap tier), equal-time bursts, Cancel, Remove (incl.
// double-Remove and remove-after-fire via stale handles), Every with
// mid-run cancel, Step, and RunUntil to barriers both between and exactly
// on event times.

// diffScript is a reproducible operation sequence.
type diffScript struct {
	seed int64
	ops  int
}

// Generate implements quick.Generator.
func (diffScript) Generate(r *rand.Rand, size int) reflect.Value {
	s := diffScript{seed: r.Int63(), ops: 40 + r.Intn(160)}
	return reflect.ValueOf(s)
}

func runDifferential(t *testing.T, s diffScript) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(s.seed))

	eng := NewEngine()
	ref := NewReferenceEngine()

	var engLog, refLog []string
	// Live handles for cancel/remove ops. Slots are kept after firing so
	// the script also exercises stale-handle Remove (must be a no-op on
	// both sides).
	var engEvs []*Event
	var refEvs []*RefEvent
	var engCancels, refCancels []func()

	fire := func(log *[]string, tag string, at func() Time) func() {
		return func() { *log = append(*log, fmt.Sprintf("%s@%d", tag, at())) }
	}

	for i := 0; i < s.ops; i++ {
		switch op := rng.Intn(10); op {
		case 0, 1, 2: // schedule near: inside the calendar window
			// Quantize to 10µs so equal-time FIFO ties are common.
			d := Time(rng.Intn(64)) * 10 * Microsecond
			tag := fmt.Sprintf("n%d", i)
			engEvs = append(engEvs, eng.After(d, tag, fire(&engLog, tag, eng.Now)))
			refEvs = append(refEvs, ref.After(d, tag, fire(&refLog, tag, ref.Now)))
		case 3: // schedule far: beyond the ~33ms window, lands in the heap
			d := Time(34+rng.Intn(200)) * Millisecond
			tag := fmt.Sprintf("f%d", i)
			engEvs = append(engEvs, eng.After(d, tag, fire(&engLog, tag, eng.Now)))
			refEvs = append(refEvs, ref.After(d, tag, fire(&refLog, tag, ref.Now)))
		case 4: // equal-time burst: FIFO tie-break must hold
			d := Time(rng.Intn(32)) * 10 * Microsecond
			for j := 0; j < 3; j++ {
				tag := fmt.Sprintf("b%d.%d", i, j)
				engEvs = append(engEvs, eng.After(d, tag, fire(&engLog, tag, eng.Now)))
				refEvs = append(refEvs, ref.After(d, tag, fire(&refLog, tag, ref.Now)))
			}
		case 5: // cancel a random handle (maybe already fired)
			if len(engEvs) > 0 {
				k := rng.Intn(len(engEvs))
				engEvs[k].Cancel()
				refEvs[k].Cancel()
			}
		case 6: // remove a random handle (maybe already fired or removed)
			if len(engEvs) > 0 {
				k := rng.Intn(len(engEvs))
				eng.Remove(engEvs[k])
				ref.Remove(refEvs[k])
			}
		case 7: // periodic tick, sometimes near-period, sometimes long
			period := Time(1+rng.Intn(8)) * 100 * Microsecond
			if rng.Intn(4) == 0 {
				period = Time(40+rng.Intn(40)) * Millisecond
			}
			delay := Time(rng.Intn(16)) * 10 * Microsecond
			tag := fmt.Sprintf("e%d", i)
			engCancels = append(engCancels, eng.Every(delay, period, tag, fire(&engLog, tag, eng.Now)))
			refCancels = append(refCancels, ref.Every(delay, period, tag, fire(&refLog, tag, ref.Now)))
		case 8: // cancel a periodic
			if len(engCancels) > 0 {
				k := rng.Intn(len(engCancels))
				engCancels[k]()
				refCancels[k]()
			}
		case 9: // advance: Step a few, or RunUntil a barrier
			if rng.Intn(2) == 0 {
				n := 1 + rng.Intn(4)
				for j := 0; j < n; j++ {
					if eng.Step() != ref.Step() {
						t.Errorf("seed %d: Step() result diverged at op %d", s.seed, i)
						return false
					}
				}
			} else {
				// Barrier sometimes exactly on an event time (quantized),
				// sometimes past the calendar window.
				var d Time
				if rng.Intn(4) == 0 {
					d = Time(30+rng.Intn(60)) * Millisecond
				} else {
					d = Time(rng.Intn(64)) * 10 * Microsecond
				}
				eng.RunUntil(eng.Now() + d)
				ref.RunUntil(ref.Now() + d)
			}
		}
		if eng.Now() != ref.Now() || eng.Pending() != ref.Pending() {
			t.Errorf("seed %d op %d: now %d vs %d, pending %d vs %d",
				s.seed, i, eng.Now(), ref.Now(), eng.Pending(), ref.Pending())
			return false
		}
	}

	// Stop every periodic so the final drain terminates, then drain both
	// queues completely and compare the full pop order.
	for k := range engCancels {
		engCancels[k]()
		refCancels[k]()
	}
	for eng.Step() {
	}
	for ref.Step() {
	}

	if eng.Now() != ref.Now() || eng.Pending() != ref.Pending() ||
		eng.NextSeq() != ref.NextSeq() || eng.Processed != ref.Processed {
		t.Errorf("seed %d: final state diverged: now %d/%d pending %d/%d nextSeq %d/%d processed %d/%d",
			s.seed, eng.Now(), ref.Now(), eng.Pending(), ref.Pending(),
			eng.NextSeq(), ref.NextSeq(), eng.Processed, ref.Processed)
		return false
	}
	if len(engLog) != len(refLog) {
		t.Errorf("seed %d: fired %d events, reference fired %d", s.seed, len(engLog), len(refLog))
		return false
	}
	for k := range engLog {
		if engLog[k] != refLog[k] {
			t.Errorf("seed %d: pop order diverged at %d: %q vs %q", s.seed, k, engLog[k], refLog[k])
			return false
		}
	}
	return true
}

// TestQueueDifferential is the main randomized differential property.
func TestQueueDifferential(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(func(s diffScript) bool {
		return runDifferential(t, s)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQueueDifferentialSnapshots interleaves QueueSnapshot comparisons:
// the serialized queue identity (what internal/ckpt captures) must match
// the reference at every point, proving checkpoint fingerprints survive
// the queue swap unchanged.
func TestQueueDifferentialSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	eng := NewEngine()
	ref := NewReferenceEngine()
	var engEvs []*Event
	var refEvs []*RefEvent
	for i := 0; i < 400; i++ {
		switch rng.Intn(6) {
		case 0, 1:
			d := Time(rng.Intn(48)) * 10 * Microsecond
			tag := fmt.Sprintf("s%d", i)
			engEvs = append(engEvs, eng.After(d, tag, func() {}))
			refEvs = append(refEvs, ref.After(d, tag, func() {}))
		case 2:
			d := Time(35+rng.Intn(100)) * Millisecond
			tag := fmt.Sprintf("sf%d", i)
			engEvs = append(engEvs, eng.After(d, tag, func() {}))
			refEvs = append(refEvs, ref.After(d, tag, func() {}))
		case 3:
			if len(engEvs) > 0 {
				k := rng.Intn(len(engEvs))
				engEvs[k].Cancel()
				refEvs[k].Cancel()
			}
		case 4:
			if len(engEvs) > 0 {
				k := rng.Intn(len(engEvs))
				eng.Remove(engEvs[k])
				ref.Remove(refEvs[k])
			}
		case 5:
			d := Time(rng.Intn(32)) * 10 * Microsecond
			eng.RunUntil(eng.Now() + d)
			ref.RunUntil(ref.Now() + d)
		}
		got, want := eng.QueueSnapshot(), ref.QueueSnapshot()
		if len(got) != len(want) {
			t.Fatalf("op %d: snapshot length %d, reference %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("op %d entry %d: %+v vs reference %+v", i, k, got[k], want[k])
			}
		}
	}
}
