// External test package: it drives the engine through the trace recorder
// (sim cannot import trace — trace imports sim).
package sim_test

import (
	"testing"

	"slingshot/internal/sim"
	"slingshot/internal/trace"
)

// TestEveryCancelStopsTickEvents pins the fix for the periodic-cancel
// leak: canceling an Every mid-run must (a) emit no further per-tick
// trace events, and (b) remove the pending tick from the event queue
// immediately rather than leaving a canceled tombstone until its fire
// time.
func TestEveryCancelStopsTickEvents(t *testing.T) {
	eng := sim.NewEngine()
	rec := trace.NewRecorder(64)
	rec.Bind(eng)

	n := uint64(0)
	cancel := eng.Every(0, sim.Millisecond, "probe", func() {
		n++
		rec.EmitLabeled(trace.KindTick, "probe", 0, 0, 0, n, 0)
	})

	eng.RunUntil(5 * sim.Millisecond) // fires at 0..5 ms inclusive
	if n != 6 {
		t.Fatalf("tick fired %d times before cancel, want 6", n)
	}
	if got := rec.Total(); got != 6 {
		t.Fatalf("recorder saw %d events, want 6", got)
	}

	cancel()
	if p := eng.Pending(); p != 0 {
		t.Fatalf("canceled periodic event still queued: Pending() = %d, want 0", p)
	}

	eng.RunUntil(50 * sim.Millisecond)
	if n != 6 || rec.Total() != 6 {
		t.Fatalf("events after cancel: ticks=%d traced=%d, want 6/6", n, rec.Total())
	}

	// Cancel is idempotent even after the fix.
	cancel()
	if p := eng.Pending(); p != 0 {
		t.Fatalf("double cancel re-queued something: Pending() = %d", p)
	}
}

// TestEveryCancelFromInsideTick cancels the clock from within its own
// callback — the event being canceled has already fired, so Remove must
// handle the not-queued case.
func TestEveryCancelFromInsideTick(t *testing.T) {
	eng := sim.NewEngine()
	n := 0
	var cancel func()
	cancel = eng.Every(0, sim.Millisecond, "self-stop", func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	eng.RunUntil(20 * sim.Millisecond)
	if n != 3 {
		t.Fatalf("tick fired %d times, want 3", n)
	}
	if p := eng.Pending(); p != 0 {
		t.Fatalf("self-canceled clock left %d queued events", p)
	}
}

// TestRemoveSafety exercises Remove on nil, fired, and doubly-removed
// events, and checks removal keeps the remaining schedule intact.
func TestRemoveSafety(t *testing.T) {
	eng := sim.NewEngine()
	eng.Remove(nil) // no-op

	fired := false
	a := eng.At(1*sim.Millisecond, "a", func() { fired = true })
	b := eng.At(2*sim.Millisecond, "b", func() { t.Fatal("removed event fired") })
	c := eng.At(3*sim.Millisecond, "c", func() {})

	eng.Remove(b)
	eng.Remove(b) // idempotent
	if p := eng.Pending(); p != 2 {
		t.Fatalf("Pending() = %d after removing 1 of 3, want 2", p)
	}

	eng.Run()
	if !fired {
		t.Fatal("surviving event a never fired")
	}
	eng.Remove(a) // already fired: no-op
	eng.Remove(c)
	if p := eng.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", p)
	}
}
