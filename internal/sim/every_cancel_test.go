// External test package: it drives the engine through the trace recorder
// (sim cannot import trace — trace imports sim).
package sim_test

import (
	"testing"

	"slingshot/internal/sim"
	"slingshot/internal/trace"
)

// TestEveryCancelStopsTickEvents pins the fix for the periodic-cancel
// leak: canceling an Every mid-run must (a) emit no further per-tick
// trace events, and (b) remove the pending tick from the event queue
// immediately rather than leaving a canceled tombstone until its fire
// time.
func TestEveryCancelStopsTickEvents(t *testing.T) {
	eng := sim.NewEngine()
	rec := trace.NewRecorder(64)
	rec.Bind(eng)

	n := uint64(0)
	cancel := eng.Every(0, sim.Millisecond, "probe", func() {
		n++
		rec.EmitLabeled(trace.KindTick, "probe", 0, 0, 0, n, 0)
	})

	eng.RunUntil(5 * sim.Millisecond) // fires at 0..5 ms inclusive
	if n != 6 {
		t.Fatalf("tick fired %d times before cancel, want 6", n)
	}
	if got := rec.Total(); got != 6 {
		t.Fatalf("recorder saw %d events, want 6", got)
	}

	cancel()
	if p := eng.Pending(); p != 0 {
		t.Fatalf("canceled periodic event still queued: Pending() = %d, want 0", p)
	}

	eng.RunUntil(50 * sim.Millisecond)
	if n != 6 || rec.Total() != 6 {
		t.Fatalf("events after cancel: ticks=%d traced=%d, want 6/6", n, rec.Total())
	}

	// Cancel is idempotent even after the fix.
	cancel()
	if p := eng.Pending(); p != 0 {
		t.Fatalf("double cancel re-queued something: Pending() = %d", p)
	}
}

// TestEveryCancelFromInsideTick cancels the clock from within its own
// callback — the event being canceled has already fired, so Remove must
// handle the not-queued case.
func TestEveryCancelFromInsideTick(t *testing.T) {
	eng := sim.NewEngine()
	n := 0
	var cancel func()
	cancel = eng.Every(0, sim.Millisecond, "self-stop", func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	eng.RunUntil(20 * sim.Millisecond)
	if n != 3 {
		t.Fatalf("tick fired %d times, want 3", n)
	}
	if p := eng.Pending(); p != 0 {
		t.Fatalf("self-canceled clock left %d queued events", p)
	}
}

// TestRemoveSafety exercises Remove on nil, fired, and doubly-removed
// events, and checks removal keeps the remaining schedule intact.
func TestRemoveSafety(t *testing.T) {
	eng := sim.NewEngine()
	eng.Remove(nil) // no-op

	fired := false
	a := eng.At(1*sim.Millisecond, "a", func() { fired = true })
	b := eng.At(2*sim.Millisecond, "b", func() { t.Fatal("removed event fired") })
	c := eng.At(3*sim.Millisecond, "c", func() {})

	eng.Remove(b)
	eng.Remove(b) // idempotent
	if p := eng.Pending(); p != 2 {
		t.Fatalf("Pending() = %d after removing 1 of 3, want 2", p)
	}

	eng.Run()
	if !fired {
		t.Fatal("surviving event a never fired")
	}
	eng.Remove(a) // already fired: no-op
	eng.Remove(c)
	if p := eng.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", p)
	}
}

// TestEveryCancelDoesNotStallBarrier drives an engine the way the shard
// fleet does — repeated RunUntil calls to successive lockstep barriers —
// and cancels a periodic "cross-shard tick" mid-run. The barrier loop
// must keep advancing the clock to every deadline: a canceled tick whose
// fire time coincides with the next barrier must neither fire nor stop
// RunUntil from landing exactly on the barrier.
func TestEveryCancelDoesNotStallBarrier(t *testing.T) {
	eng := sim.NewEngine()
	const step = 500 * sim.Microsecond

	ticks := 0
	cancel := eng.Every(step, 4*step, "xshard", func() { ticks++ })

	for barrier := step; barrier <= 40*step; barrier += step {
		eng.RunUntil(barrier)
		if eng.Now() != barrier {
			t.Fatalf("barrier stalled: Now()=%v, want %v", eng.Now(), barrier)
		}
		// Cancel just before the tick's next fire time lands exactly on
		// the upcoming barrier (ticks at 1, 5, 9 steps; cancel after 9).
		if barrier == 12*step {
			cancel()
		}
	}
	if ticks != 3 {
		t.Fatalf("cross-shard tick fired %d times, want 3 (canceled after 12 steps)", ticks)
	}
	if p := eng.Pending(); p != 0 {
		t.Fatalf("canceled tick left %d queued events behind the barrier loop", p)
	}
}

// TestRemoveOnlyEventStillAdvancesBarrier removes the sole queued event
// between two barriers: RunUntil on an empty queue must still advance the
// clock to the deadline (the fleet relies on this — an idle shard parks
// at the barrier rather than lagging the fleet clock).
func TestRemoveOnlyEventStillAdvancesBarrier(t *testing.T) {
	eng := sim.NewEngine()
	ev := eng.At(3*sim.Millisecond, "only", func() { t.Fatal("removed event fired") })
	eng.RunUntil(sim.Millisecond)
	eng.Remove(ev)
	eng.RunUntil(5 * sim.Millisecond)
	if eng.Now() != 5*sim.Millisecond {
		t.Fatalf("empty-queue barrier left Now()=%v, want 5ms", eng.Now())
	}
}
