package sim

import "container/heap"

// ReferenceEngine is the seed's single-binary-heap discrete-event core,
// retained verbatim (modulo the rename) as the behavioral reference for
// the two-tier calendar/4-ary queue in queue.go — the same pattern as
// fec/reference.go and fronthaul/bfp_reference.go: the slow, obviously
// correct implementation stays in the tree and randomized differential
// tests pin the fast path to it. It intentionally keeps the eager
// heap.Remove and interface-boxed container/heap machinery the optimized
// engine replaced.
//
// It is exported for tests only; production code uses Engine.
type ReferenceEngine struct {
	now     Time
	queue   refHeap
	nextSeq uint64
	stopped bool

	Processed uint64
}

type refEvent struct {
	At       Time
	Do       func()
	Name     string
	seq      uint64
	index    int
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// NewReferenceEngine creates a reference engine with the clock at zero.
func NewReferenceEngine() *ReferenceEngine {
	return &ReferenceEngine{}
}

// Now returns the current virtual time.
func (e *ReferenceEngine) Now() Time { return e.now }

// RefEvent is an opaque handle to a scheduled reference event.
type RefEvent = refEvent

// Cancel marks the event so it will not fire.
func (e *refEvent) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// At schedules fn at absolute time at (panics when at < Now, like Engine).
func (e *ReferenceEngine) At(at Time, name string, fn func()) *RefEvent {
	if at < e.now {
		panic("sim: reference scheduling before now")
	}
	ev := &refEvent{At: at, Do: fn, Name: name, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn d after the current time.
func (e *ReferenceEngine) After(d Time, name string, fn func()) *RefEvent {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// Remove cancels ev and eagerly deletes it from the heap (the seed
// semantics the optimized engine's lazy deletion must be indistinguishable
// from).
func (e *ReferenceEngine) Remove(ev *RefEvent) {
	if ev == nil {
		return
	}
	ev.canceled = true
	if ev.index >= 0 && ev.index < len(e.queue) && e.queue[ev.index] == ev {
		heap.Remove(&e.queue, ev.index)
	}
}

// Rearm re-queues an already-fired event at absolute time at, reusing the
// struct (the Every tick pattern).
func (e *ReferenceEngine) Rearm(ev *RefEvent, at Time) {
	if at < e.now {
		panic("sim: reference rearm before now")
	}
	ev.At = at
	ev.seq = e.nextSeq
	ev.canceled = false
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// Every mirrors Engine.Every: a self-rearming tick on a single event.
func (e *ReferenceEngine) Every(delay, period Time, name string, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	if delay < 0 {
		delay = 0
	}
	stopped := false
	var tick func()
	var pending *refEvent
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			e.Rearm(pending, e.now+period)
		}
	}
	pending = e.At(e.now+delay, name, tick)
	return func() {
		stopped = true
		e.Remove(pending)
	}
}

// Step executes the next pending event.
func (e *ReferenceEngine) Step() bool {
	for {
		if e.stopped || e.queue.Len() == 0 {
			return false
		}
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.At
		e.Processed++
		ev.Do()
		return true
	}
}

// RunUntil executes events until the clock would pass deadline.
func (e *ReferenceEngine) RunUntil(deadline Time) {
	for !e.stopped {
		if e.queue.Len() == 0 {
			break
		}
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.At > deadline {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.At
		e.Processed++
		next.Do()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the physical queue length (canceled-but-not-removed
// events count until their fire time).
func (e *ReferenceEngine) Pending() int { return e.queue.Len() }

// NextSeq returns the next sequence number to be assigned.
func (e *ReferenceEngine) NextSeq() uint64 { return e.nextSeq }

// QueueSnapshot returns pending events in canonical (At, Seq) order.
func (e *ReferenceEngine) QueueSnapshot() []QueuedEvent {
	out := make([]QueuedEvent, 0, len(e.queue))
	for _, ev := range e.queue {
		out = append(out, QueuedEvent{At: ev.At, Seq: ev.seq, Name: ev.Name, Canceled: ev.canceled})
	}
	sortQueued(out)
	return out
}

func sortQueued(out []QueuedEvent) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := &out[j], &out[j-1]
			if a.At > b.At || (a.At == b.At && a.Seq > b.Seq) {
				break
			}
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}
