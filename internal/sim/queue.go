package sim

import "math/bits"

// Two-tier event queue (DESIGN.md §15). The discrete-event workload is
// dominated by grid-aligned events — slot ticks every TTI, fronthaul
// offsets inside the slot, HARQ and RLF timers a few milliseconds out —
// so the fast path is a calendar queue: a ring of fixed-width time
// buckets covering a sliding ~33 ms window, each bucket a slice kept
// sorted by the engine's canonical (At, seq) key. Popping the head of
// the first occupied bucket is O(1); an occupancy bitmap makes "first
// occupied bucket" a handful of word tests. Events scheduled beyond the
// window (chaos at +2.6 s, TCP RTOs, upgrade holds) go to a backing
// 4-ary min-heap specialized to *Event — no container/heap interface
// boxing, no per-element method calls — and are merged by comparing the
// bucket head against the heap root on every pop.
//
// Ordering proof sketch: every pop takes the lexicographic (At, seq)
// minimum of {head of first occupied bucket, heap root}. Bucket slices
// are fully sorted by (At, seq) (binary-insert on push), live events in
// one bucket all share the same At>>bucketShift generation, and the
// circular scan from the clock's own bucket visits generations in
// increasing order, so the first occupied bucket's head is the minimum
// across all buckets. The heap root is the minimum of the heap tier by
// the sift invariant. Hence the queue pops the exact total order the
// seed's single binary heap produced, including equal-time FIFO ties —
// seq assignment in At/push is untouched.
//
// Cancel/Remove use lazy deletion: Remove marks the event and decrements
// the live count immediately (Pending and QueueSnapshot observe the
// removal at once, matching the old eager heap.Remove), while the struct
// stays in its tier until it surfaces at a head and is discarded.
const (
	// bucketShift gives 65.536 µs buckets — ~7.6 per 500 µs TTI, so one
	// slot's grid (tick, fronthaul offsets, drain) spreads over several
	// buckets instead of piling into one.
	bucketShift = 16
	// numBuckets fixes the calendar window at numBuckets<<bucketShift ≈
	// 33.6 ms — wide enough for every per-slot, HARQ, RLF and supervise
	// timer; only long chaos/upgrade/RTO timers fall through to the heap.
	numBuckets = 512
	bucketMask = numBuckets - 1
	occWords   = numBuckets / 64
	// bucketCap is each bucket's initial capacity, carved from one shared
	// slab on first use so touching a fresh ring position never allocates
	// (a warm engine is steady-state alloc-free even before the ring has
	// wrapped once). Buckets that outgrow it reallocate individually and
	// keep the larger capacity.
	bucketCap = 8
)

// before is the canonical scheduling order: fire time, then FIFO by
// sequence number. It is the single comparison both tiers use.
func before(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// calQueue is the two-tier pending-event store. The zero value is ready
// to use.
type calQueue struct {
	// cur is the global (non-wrapped) bucket index the sweep has
	// reached: no live event exists in any bucket generation below it.
	cur int64
	// live counts queued, non-removed events across both tiers —
	// exactly the old physical heap length (canceled events count until
	// they fire; removed events stop counting at Remove).
	live int
	// srcHeap marks the heap tier in min/take results.
	heap    []*Event
	pos     [numBuckets]int32
	occ     [occWords]uint64
	buckets [numBuckets][]*Event
	inited  bool
}

// init carves every bucket's initial storage from one contiguous slab
// (numBuckets × bucketCap pointers, ~32 KiB) — one allocation for the
// engine's whole lifetime instead of one per first-touched bucket.
func (q *calQueue) init() {
	q.inited = true
	slab := make([]*Event, numBuckets*bucketCap)
	for b := range q.buckets {
		q.buckets[b] = slab[b*bucketCap : b*bucketCap : (b+1)*bucketCap]
	}
}

// srcHeap is the tier marker min returns for heap-root candidates;
// non-negative sources are bucket ring positions.
const srcHeap = -1

// push queues ev, routing by distance from the calendar window's base.
// The caller has already (re)initialized At/seq/flags via Engine.push.
func (q *calQueue) push(ev *Event, now Time) {
	if !q.inited {
		q.init()
	}
	ev.queued, ev.removed = true, false
	q.live++
	k := int64(ev.At) >> bucketShift
	if nowK := int64(now) >> bucketShift; q.cur < nowK {
		// The clock may have advanced past cur without pops (RunUntil
		// to an idle barrier); live events never exist behind now.
		q.cur = nowK
	}
	if k-q.cur >= numBuckets {
		q.heapPush(ev)
		return
	}
	b := int(k & bucketMask)
	s := q.buckets[b]
	p := int(q.pos[b])
	if len(s) == p {
		// Bucket fully drained (or never used): restart it.
		q.buckets[b] = append(s[:0], ev)
		q.pos[b] = 0
		q.occ[b>>6] |= 1 << (b & 63)
		return
	}
	q.occ[b>>6] |= 1 << (b & 63)
	if !before(ev, s[len(s)-1]) {
		// Common case: monotone arrival within the bucket.
		q.buckets[b] = append(s, ev)
		return
	}
	// Binary upper-bound insert into the undrained tail [p:]: the new
	// event carries the largest seq, so it lands after every equal-At
	// entry, preserving FIFO ties.
	lo, hi := p, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if before(ev, s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s = append(s, nil)
	copy(s[lo+1:], s[lo:len(s)-1])
	s[lo] = ev
	q.buckets[b] = s
}

// min returns the next event in (At, seq) order without removing it,
// plus its tier (bucket ring position, or srcHeap). Removed events are
// included — peek/pop discard them. Returns nil when both tiers are
// empty.
func (q *calQueue) min(now Time) (*Event, int) {
	if nowK := int64(now) >> bucketShift; q.cur < nowK {
		q.cur = nowK
	}
	var bev *Event
	bpos := srcHeap
	// Scan the occupancy bitmap circularly from cur's ring position;
	// the first occupied bucket holds the calendar tier's minimum.
	start := int(q.cur & bucketMask)
	w := start >> 6
	word := q.occ[w] &^ ((1 << (start & 63)) - 1)
	for i := 0; i <= occWords; i++ {
		if word != 0 {
			b := w<<6 + bits.TrailingZeros64(word)
			bev = q.buckets[b][q.pos[b]]
			bpos = b
			break
		}
		w++
		if w == occWords {
			w = 0
		}
		word = q.occ[w]
	}
	if len(q.heap) > 0 {
		if h := q.heap[0]; bev == nil || before(h, bev) {
			return h, srcHeap
		}
	}
	return bev, bpos
}

// take physically removes the event min returned. src is min's tier
// result; the event must still be at that head.
func (q *calQueue) take(ev *Event, src int) {
	ev.queued = false
	if src == srcHeap {
		q.heapPop()
		return
	}
	s := q.buckets[src]
	p := int(q.pos[src])
	s[p] = nil // drop the pointer so fired events are collectable
	p++
	if p == len(s) {
		q.buckets[src] = s[:0]
		q.pos[src] = 0
		q.occ[src>>6] &^= 1 << (src & 63)
		return
	}
	q.pos[src] = int32(p)
}

// peek returns the next live-or-canceled event without removing it,
// discarding lazily-removed garbage it surfaces on the way. Returns nil
// when the queue is logically empty.
func (q *calQueue) peek(now Time) *Event {
	for {
		ev, src := q.min(now)
		if ev == nil {
			return nil
		}
		if !ev.removed {
			return ev
		}
		q.take(ev, src) // removed garbage: already uncounted by Remove
	}
}

// pop removes and returns what peek would return.
func (q *calQueue) pop(now Time) *Event {
	for {
		ev, src := q.min(now)
		if ev == nil {
			return nil
		}
		q.take(ev, src)
		if !ev.removed {
			q.live--
			return ev
		}
	}
}

// snapshot appends every queued non-removed event to out (unsorted).
func (q *calQueue) snapshot(out []QueuedEvent) []QueuedEvent {
	add := func(ev *Event) {
		if !ev.removed {
			out = append(out, QueuedEvent{At: ev.At, Seq: ev.seq, Name: ev.Name, Canceled: ev.canceled})
		}
	}
	for b := range q.buckets {
		s := q.buckets[b]
		for _, ev := range s[q.pos[b]:] {
			add(ev)
		}
	}
	for _, ev := range q.heap {
		add(ev)
	}
	return out
}

// 4-ary min-heap on (At, seq). Flatter than a binary heap — half the
// levels, so half the cache misses per sift — and every compare is a
// direct struct-field test on *Event, no interface dispatch.

func (q *calQueue) heapPush(ev *Event) {
	h := append(q.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	q.heap = h
}

func (q *calQueue) heapPop() {
	h := q.heap
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	q.heap = h
	if n == 0 {
		return
	}
	// Sift down with an inlined 4-way min-child scan.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(h[j], h[m]) {
				m = j
			}
		}
		if !before(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
