// Package sim provides a deterministic discrete-event simulation engine.
//
// All Slingshot components run on virtual time with nanosecond resolution.
// The engine replaces the wall-clock realtime environment of the paper's
// testbed: a hard 500 µs TTI cadence cannot be held by a garbage-collected
// runtime, but every Slingshot mechanism is defined in terms of slot
// numbers and packet inter-arrival gaps, which virtual time reproduces
// exactly and deterministically.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a virtual-time delta to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Add returns t shifted by d.
func (t Time) Add(d Time) Time { return t + d }

// Sub returns the delta t-u.
func (t Time) Sub(u Time) Time { return t - u }

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromDuration converts a time.Duration to virtual Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }
