package sim

import "testing"

// The engine microbenchmarks exercise the two-tier queue's three regimes:
//
//   - Grid: every event lands on the slot grid (500µs TTI), the fronthaul
//     workload's shape — near-future, heavily tied timestamps that stay in
//     the calendar tier's ring buckets.
//   - OffGrid: uniformly scattered sub-window offsets — still calendar
//     tier, but one event per bucket position, the worst case for the
//     sorted-bucket insert.
//   - Mixed: the metro engine's real blend — mostly near-future grid
//     events plus a tail of far-future timers that route through the
//     4-ary heap tier and migrate into the calendar as the clock advances.
//
// All three run the full schedule→fire cycle through the pooled (no
// handle) path and must not allocate: the event structs recycle through
// the engine free list and the calendar buckets were pre-carved at init.

// benchLoop schedules and drains nPer events per step using offs[i] as
// each event's delay, forever reusing one engine.
func benchLoop(b *testing.B, offs []Time) {
	e := NewEngine()
	fired := 0
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range offs {
			e.AfterPooled(d, "bench", fn)
		}
		for e.Step() {
		}
	}
	if fired != b.N*len(offs) {
		b.Fatalf("fired %d events, want %d", fired, b.N*len(offs))
	}
}

func BenchmarkEngineStepGrid(b *testing.B) {
	const tti = 500 * Microsecond
	offs := make([]Time, 64)
	for i := range offs {
		offs[i] = Time(i%8) * tti // 8 slots, 8 events tied per slot
	}
	benchLoop(b, offs)
}

func BenchmarkEngineStepOffGrid(b *testing.B) {
	offs := make([]Time, 64)
	r := NewRNG(1)
	for i := range offs {
		offs[i] = Time(r.Intn(4 * int(Millisecond))) // scattered, calendar tier
	}
	benchLoop(b, offs)
}

func BenchmarkEngineStepMixed(b *testing.B) {
	offs := make([]Time, 64)
	r := NewRNG(2)
	for i := range offs {
		if i%8 == 0 {
			// Far-future timer past the calendar window: heap tier.
			offs[i] = 40*Millisecond + Time(r.Intn(int(100*Millisecond)))
		} else {
			offs[i] = Time(r.Intn(2 * int(Millisecond)))
		}
	}
	benchLoop(b, offs)
}

// BenchmarkEngineScheduleCancel measures the handle-returning At path plus
// Remove-driven lazy deletion: half the scheduled events are removed
// before the drain, the shape of HARQ/timeout timers that almost always
// cancel. Handle events are not recycled (the free list would break the
// stale-handle safety contract), so the per-event struct allocation is
// expected and asserted at exactly 1.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	evs := make([]*Event, 64)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range evs {
			evs[j] = e.After(Time(j)*Microsecond, "bench", fn)
		}
		for j := 0; j < len(evs); j += 2 {
			e.Remove(evs[j])
		}
		for e.Step() {
		}
	}
}

// TestEngineStepBenchmarksDoNotAllocate pins the pooled schedule→fire
// cycle at zero allocations per event in all three queue regimes. This is
// the alloc gate the microbenchmarks report; asserting it in a test keeps
// `go test` (not just bench runs) guarding it.
func TestEngineStepBenchmarksDoNotAllocate(t *testing.T) {
	shapes := map[string][]Time{
		"grid":    {0, 0, 500 * Microsecond, 500 * Microsecond, Millisecond},
		"offgrid": {17 * Microsecond, 341 * Microsecond, 3 * Millisecond},
		"mixed":   {5 * Microsecond, 700 * Microsecond, 90 * Millisecond},
	}
	for name, offs := range shapes {
		e := NewEngine()
		fn := func() {}
		// Warm: populate the free list and touch the calendar buckets.
		for r := 0; r < 4; r++ {
			for _, d := range offs {
				e.AfterPooled(d, "warm", fn)
			}
			for e.Step() {
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			for _, d := range offs {
				e.AfterPooled(d, "t", fn)
			}
			for e.Step() {
			}
		})
		if avg > 0 {
			t.Errorf("%s: pooled schedule→fire cycle allocated %.2f/run, want 0", name, avg)
		}
	}
}
