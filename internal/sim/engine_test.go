package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{500 * Microsecond, "500.000us"},
		{6200 * Millisecond, "6.200000s"},
		{244 * Millisecond, "244.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromDuration(t *testing.T) {
	if got := FromDuration(500 * time.Microsecond); got != 500*Microsecond {
		t.Fatalf("FromDuration = %v", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, "c", func() { order = append(order, 3) })
	e.At(10, "a", func() { order = append(order, 1) })
	e.At(20, "b", func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, "tie", func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: got %d", i, v)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, "x", func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, "past", func() {})
	})
	e.Run()
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100, "setup", func() {
		e.After(-5, "neg", func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("After with negative delay never ran")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.At(10, "early", func() {})
	e.At(500, "late", func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(1000)
	if e.Now() != 1000 || e.Pending() != 0 {
		t.Fatalf("after second RunUntil: now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var at []Time
	cancel := e.Every(100, 50, "tick", func() { at = append(at, e.Now()) })
	e.At(260, "stop", func() { cancel() })
	e.RunUntil(1000)
	want := []Time{100, 150, 200, 250}
	if len(at) != len(want) {
		t.Fatalf("ticks = %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestEveryCancelFromWithin(t *testing.T) {
	e := NewEngine()
	n := 0
	var cancel func()
	cancel = e.Every(0, 10, "tick", func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	e.RunUntil(1000)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, "a", func() { n++; e.Stop() })
	e.At(2, "b", func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("events after Stop ran: n=%d", n)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Fork(uint64(i)).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look correlated: %d collisions", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("mean = %f, want ~0", mean)
	}
	if variance < 0.97 || variance > 1.03 {
		t.Errorf("variance = %f, want ~1", variance)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(13)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.28 || p < 0 || p > 0.32 {
		t.Errorf("Bool(0.3) rate = %f", p)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if mean < 4.8 || mean > 5.2 {
		t.Errorf("Exp(5) mean = %f", mean)
	}
}
