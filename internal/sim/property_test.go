package sim

// Randomized property tests (testing/quick) for the determinism
// substrate: the RNG's stream independence and Bool() calibration, and
// the event heap's stable (time, insertion-order) execution contract that
// every seed-reproducibility guarantee in the simulator rests on.

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickForkIndependence: streams forked with different ids from the
// same root never coincide, and a fork is not the parent's continuation.
func TestQuickForkIndependence(t *testing.T) {
	prop := func(seed, idA, idB uint64) bool {
		if idA == idB {
			return true
		}
		a := NewRNG(seed).Fork(idA)
		b := NewRNG(seed).Fork(idB)
		parent := NewRNG(seed)
		parent.Uint64() // what Fork consumed
		sameAB, sameAParent := true, true
		for i := 0; i < 64; i++ {
			av := a.Uint64()
			if av != b.Uint64() {
				sameAB = false
			}
			if av != parent.Uint64() {
				sameAParent = false
			}
		}
		return !sameAB && !sameAParent
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickForkReproducible: forking is a pure function of (root state,
// id) — the replay property chaos seeds depend on.
func TestQuickForkReproducible(t *testing.T) {
	prop := func(seed, id uint64) bool {
		a := NewRNG(seed).Fork(id)
		b := NewRNG(seed).Fork(id)
		for i := 0; i < 64; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoolFrequency: Bool(p) hits p within 6 sigma over 10k draws
// for arbitrary seeds and probabilities.
func TestQuickBoolFrequency(t *testing.T) {
	prop := func(seed uint64, pRaw uint16) bool {
		p := float64(pRaw) / 65535
		r := NewRNG(seed)
		const n = 10000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		diff := float64(hits)/n - p
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.03 // ≥6 sigma at n=10000
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEngineStableOrder: events fire sorted by timestamp, and events
// sharing a timestamp fire in insertion (FIFO) order — the tie-break that
// keeps identically seeded runs byte-identical.
func TestQuickEngineStableOrder(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := NewRNG(seed)
		e := NewEngine()
		type key struct {
			at  Time
			idx int
		}
		want := make([]key, 0, n)
		got := make([]key, 0, n)
		for i := 0; i < n; i++ {
			k := key{at: Time(r.Intn(4)+1) * Millisecond, idx: i}
			want = append(want, k)
			kk := k
			e.At(kk.at, "prop", func() { got = append(got, kk) })
		}
		// The contract: stable sort by time, insertion order preserved
		// within a timestamp.
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.RunUntil(Second)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEngineCancel: a canceled event never fires, cancellation never
// disturbs other events, and Cancel is idempotent.
func TestQuickEngineCancel(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := NewRNG(seed)
		e := NewEngine()
		fired := make([]bool, n)
		events := make([]*Event, n)
		canceled := make([]bool, n)
		for i := 0; i < n; i++ {
			idx := i
			events[i] = e.At(Time(r.Intn(4)+1)*Millisecond, "prop", func() { fired[idx] = true })
		}
		for i := 0; i < n; i++ {
			if r.Bool(0.5) {
				canceled[i] = true
				events[i].Cancel()
				events[i].Cancel() // idempotent
			}
		}
		e.RunUntil(Second)
		for i := 0; i < n; i++ {
			if fired[i] == canceled[i] {
				return false
			}
			if canceled[i] && !events[i].Canceled() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
