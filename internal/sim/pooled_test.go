package sim

import "testing"

// Pooled scheduling must interleave with At/After in exact FIFO order at
// equal timestamps, and must actually recycle event structs.
func TestPooledOrderingMatchesAt(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, "a", func() { got = append(got, 0) })
	e.AtPooled(10, "b", func() { got = append(got, 1) })
	e.AtArgPooled(10, "c", func(a any) { got = append(got, a.(int)) }, 2)
	e.After(10, "d", func() { got = append(got, 3) })
	e.AfterPooled(10, "e", func() { got = append(got, 4) })
	e.AfterArgPooled(10, "f", func(a any) { got = append(got, a.(int)) }, 5)
	e.Run()
	for i, v := range got {
		if i != v {
			t.Fatalf("fire order %v, want 0..5 in sequence", got)
		}
	}
	if len(got) != 6 {
		t.Fatalf("fired %d events, want 6", len(got))
	}
}

func TestPooledEventsAreRecycled(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.AfterPooled(1, "tick", func() {})
		if !e.Step() {
			t.Fatal("step failed")
		}
	}
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d events, want 1 (same struct reused)", len(e.free))
	}
}

func TestPooledRecycleClearsReferences(t *testing.T) {
	e := NewEngine()
	e.AtArgPooled(1, "x", func(any) {}, "payload")
	e.Run()
	ev := e.free[0]
	if ev.Do != nil || ev.doArg != nil || ev.arg != nil || ev.Name != "" {
		t.Fatalf("recycled event retains references: %+v", ev)
	}
}

// Every must reuse its tick event rather than allocating one per period.
func TestEveryReusesEvent(t *testing.T) {
	e := NewEngine()
	n := 0
	cancel := e.Every(0, 10, "tick", func() { n++ })
	start := testing.AllocsPerRun(1, func() {
		before := n
		e.RunUntil(e.Now() + 100)
		if n < before+9 {
			t.Fatalf("ticks did not fire: %d -> %d", before, n)
		}
	})
	if start > 1 {
		t.Fatalf("Every ticks allocate %v per 10 periods, want ≤1", start)
	}
	cancel()
	before := n
	e.RunUntil(e.Now() + 100)
	if n != before {
		t.Fatal("ticks fired after cancel")
	}
}
