package sim

import (
	"fmt"
	"sort"
)

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break by sequence number), which keeps runs
// fully deterministic.
type Event struct {
	At   Time
	Do   func()
	Name string // optional label for tracing

	// Argument-carrying form: doArg(arg) fires instead of Do when Do is
	// nil. Lets callers schedule with a long-lived closure and a per-event
	// payload, so the hot path allocates neither closure nor event.
	doArg func(any)
	arg   any

	seq      uint64
	canceled bool
	removed  bool // lazily deleted by Remove; discarded when it surfaces
	queued   bool // currently in the queue (either tier)
	pooled   bool // recycled onto the engine free list after firing
}

func (e *Event) fire() {
	if e.Do != nil {
		e.Do()
		return
	}
	e.doArg(e.arg)
}

// Cancel marks the event so it will not fire. Safe to call multiple times
// and after the event has fired (no-op).
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// Engine is the discrete-event simulation core. It is not safe for
// concurrent use: simulated entities are single-threaded by design, matching
// the determinism requirement.
//
// Pending events live in a two-tier calendar/4-ary-heap queue (queue.go):
// near-future events in ring buckets, far-future events in a specialized
// heap, popped in exact (At, seq) order either way.
type Engine struct {
	now     Time
	q       calQueue
	nextSeq uint64
	stopped bool

	// free holds fired pooled events for reuse. Only events scheduled via
	// the *Pooled variants land here: those return no handle, so no caller
	// can observe a recycled event through a stale pointer. Handle-returning
	// At/After events are never recycled — Cancel/Remove after fire must
	// stay a safe no-op.
	free []*Event

	// Processed counts events executed so far (observability).
	Processed uint64
}

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, name string, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", name, at, e.now))
	}
	ev := &Event{At: at, Do: fn, Name: name, seq: e.nextSeq}
	e.nextSeq++
	e.q.push(ev, e.now)
	return ev
}

// Rearm re-queues an already-fired event at absolute time at, reusing the
// struct. Intended for self-rescheduling periodic callbacks (Every) that
// hold their own handle; the event must not currently be queued.
func (e *Engine) rearm(ev *Event, at Time) {
	e.push(ev, at, ev.Name)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// getFree returns a recycled event or a fresh one.
func (e *Engine) getFree() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// push (re)initializes ev and queues it.
func (e *Engine) push(ev *Event, at Time, name string) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", name, at, e.now))
	}
	ev.At = at
	ev.Name = name
	ev.seq = e.nextSeq
	ev.canceled = false
	e.nextSeq++
	e.q.push(ev, e.now)
}

// AtPooled schedules fn at absolute time at, recycling the event struct
// after it fires. No handle is returned: pooled events cannot be canceled,
// which is exactly what makes recycling safe (no stale *Event can reach a
// reused event). Semantics (ordering, FIFO tie-break) match At.
func (e *Engine) AtPooled(at Time, name string, fn func()) {
	ev := e.getFree()
	ev.Do = fn
	ev.doArg = nil
	ev.arg = nil
	ev.pooled = true
	e.push(ev, at, name)
}

// AfterPooled schedules fn to run d after the current time on a recycled
// event. See AtPooled for the no-cancel contract.
func (e *Engine) AfterPooled(d Time, name string, fn func()) {
	if d < 0 {
		d = 0
	}
	e.AtPooled(e.now+d, name, fn)
}

// AtArgPooled schedules fn(arg) at absolute time at on a recycled event.
// With a long-lived fn (e.g. one per link) the schedule allocates nothing:
// no closure, no event. See AtPooled for the no-cancel contract.
func (e *Engine) AtArgPooled(at Time, name string, fn func(any), arg any) {
	ev := e.getFree()
	ev.Do = nil
	ev.doArg = fn
	ev.arg = arg
	ev.pooled = true
	e.push(ev, at, name)
}

// AfterArgPooled schedules fn(arg) to run d after the current time on a
// recycled event. See AtArgPooled.
func (e *Engine) AfterArgPooled(d Time, name string, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.AtArgPooled(e.now+d, name, fn, arg)
}

// recycle clears a fired pooled event and returns it to the free list.
// Clearing drops closure/arg references so the pool never pins payloads.
func (e *Engine) recycle(ev *Event) {
	ev.Do = nil
	ev.doArg = nil
	ev.arg = nil
	ev.Name = ""
	e.free = append(e.free, ev)
}

// Remove cancels ev and deletes it from the queue immediately: Pending
// drops at once and the event can never fire. Deletion is lazy — the
// struct stays in its tier until it surfaces at a pop and is discarded —
// but that is unobservable: Pending counts it out now, QueueSnapshot
// skips it, and the discard never advances the clock. Cancel alone leaves
// the event counted until its fire time — harmless for one-shots, but a
// canceled far-future or periodic event would otherwise linger as queue
// garbage (and keep Pending nonzero). Safe on nil and on events that
// already fired or were already removed.
func (e *Engine) Remove(ev *Event) {
	if ev == nil {
		return
	}
	ev.canceled = true
	if ev.queued && !ev.removed {
		ev.removed = true
		e.q.live--
	}
}

// Every schedules fn to run every period, with the first firing delay
// after the current time. It returns a cancel function that stops future
// firings. fn observes the engine clock.
func (e *Engine) Every(delay, period Time, name string, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	if delay < 0 {
		delay = 0
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped { // fn may have canceled us
			// Reuse the same event for every tick: it has already fired
			// (popped from the queue), and the only outstanding handle is
			// ours, so re-queueing it cannot confuse any caller.
			e.rearm(pending, e.now+period)
		}
	}
	pending = e.At(e.now+delay, name, tick)
	return func() {
		stopped = true
		e.Remove(pending)
	}
}

// Step executes the next pending event. It returns false when the queue is
// empty or the engine is stopped.
func (e *Engine) Step() bool {
	for {
		if e.stopped {
			return false
		}
		ev := e.q.pop(e.now)
		if ev == nil {
			return false
		}
		if ev.canceled {
			if ev.pooled {
				e.recycle(ev)
			}
			continue
		}
		e.now = ev.At
		e.Processed++
		ev.fire()
		if ev.pooled {
			e.recycle(ev)
		}
		return true
	}
}

// RunUntil executes events until the clock would pass deadline or the queue
// drains. The clock is left at deadline if it was reached with the queue
// still holding later events.
func (e *Engine) RunUntil(deadline Time) {
	for !e.stopped {
		next := e.q.peek(e.now)
		if next == nil {
			break
		}
		if next.canceled {
			e.q.pop(e.now)
			if next.pooled {
				e.recycle(next)
			}
			continue
		}
		if next.At > deadline {
			break
		}
		e.q.pop(e.now)
		e.now = next.At
		e.Processed++
		next.fire()
		if next.pooled {
			e.recycle(next)
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Stop halts the engine; Step and RunUntil return immediately afterwards.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of queued events (Canceled-but-not-Removed
// events still count until their fire time).
func (e *Engine) Pending() int { return e.q.live }

// NextSeq returns the sequence number the next scheduled event will get.
// Together with QueueSnapshot it pins the engine's scheduling state for
// deployment snapshots: two engines with equal clocks, equal next
// sequence numbers and equal queue snapshots will fire the same events in
// the same order.
func (e *Engine) NextSeq() uint64 { return e.nextSeq }

// QueuedEvent is one pending event's serializable identity: its fire
// time, FIFO tie-break sequence, label and cancel flag. The callback
// itself is a closure and deliberately not part of the identity — restore
// reconstructs closures by deterministic re-execution (internal/ckpt),
// and the (At, Seq, Name) triple is what proves the reconstruction
// reached the same schedule.
type QueuedEvent struct {
	At       Time
	Seq      uint64
	Name     string
	Canceled bool
}

// QueueSnapshot returns the pending events in canonical (At, Seq) order.
// The tiers are only partially ordered, so the snapshot sorts a copy; the
// engine's queue is not disturbed. Lazily-removed events are excluded —
// they are no longer part of the schedule's identity, exactly as they
// were absent from the seed's eagerly-deleted heap.
func (e *Engine) QueueSnapshot() []QueuedEvent {
	out := e.q.snapshot(make([]QueuedEvent, 0, e.q.live))
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
