package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break by sequence number), which keeps runs
// fully deterministic.
type Event struct {
	At   Time
	Do   func()
	Name string // optional label for tracing

	seq      uint64
	index    int // heap index; -1 when not queued
	canceled bool
}

// Cancel marks the event so it will not fire. Safe to call multiple times
// and after the event has fired (no-op).
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event simulation core. It is not safe for
// concurrent use: simulated entities are single-threaded by design, matching
// the determinism requirement.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool

	// Processed counts events executed so far (observability).
	Processed uint64
}

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, name string, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", name, at, e.now))
	}
	ev := &Event{At: at, Do: fn, Name: name, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// Remove cancels ev and deletes it from the queue immediately. Cancel
// alone leaves the event in the heap until its fire time — harmless for
// one-shots, but a canceled far-future or periodic event would otherwise
// linger as queue garbage (and keep Pending nonzero). Safe on nil and on
// events that already fired or were already removed.
func (e *Engine) Remove(ev *Event) {
	if ev == nil {
		return
	}
	ev.canceled = true
	if ev.index >= 0 && ev.index < len(e.queue) && e.queue[ev.index] == ev {
		heap.Remove(&e.queue, ev.index)
	}
}

// Every schedules fn to run every period, with the first firing delay
// after the current time. It returns a cancel function that stops future
// firings. fn observes the engine clock.
func (e *Engine) Every(delay, period Time, name string, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	if delay < 0 {
		delay = 0
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped { // fn may have canceled us
			pending = e.At(e.now+period, name, tick)
		}
	}
	pending = e.At(e.now+delay, name, tick)
	return func() {
		stopped = true
		e.Remove(pending)
	}
}

// Step executes the next pending event. It returns false when the queue is
// empty or the engine is stopped.
func (e *Engine) Step() bool {
	for {
		if e.stopped || e.queue.Len() == 0 {
			return false
		}
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.At
		e.Processed++
		ev.Do()
		return true
	}
}

// RunUntil executes events until the clock would pass deadline or the queue
// drains. The clock is left at deadline if it was reached with the queue
// still holding later events.
func (e *Engine) RunUntil(deadline Time) {
	for !e.stopped {
		if e.queue.Len() == 0 {
			break
		}
		// Peek.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.At > deadline {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.At
		e.Processed++
		next.Do()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Stop halts the engine; Step and RunUntil return immediately afterwards.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of queued events (Canceled-but-not-Removed
// events still count until their fire time).
func (e *Engine) Pending() int { return e.queue.Len() }
