package sim

import "math"

// RNG is a small deterministic pseudo-random generator (xoshiro256**).
// Each simulated entity owns its own stream so that adding or removing one
// entity does not perturb the randomness seen by others.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds a generator. Distinct seeds give independent-looking streams;
// seed 0 is remapped to a fixed nonzero constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r := &RNG{}
	// SplitMix64 to expand the seed into full state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent stream labeled by id.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0xd1342543de82ef95))
}

// State returns the generator's full 256-bit internal state. Snapshots
// serialize it to prove two RNG streams are at the same point; two RNGs
// with equal state produce identical output forever.
func (r *RNG) State() [4]uint64 { return r.s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormMeanStd returns a normal sample with the given mean and std deviation.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponential sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Jitter returns a uniform value in [-amp, +amp].
func (r *RNG) Jitter(amp float64) float64 {
	return (2*r.Float64() - 1) * amp
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
