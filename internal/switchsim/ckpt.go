package switchsim

import "slingshot/internal/ckpt/wire"

// SnapshotTo writes the switch's dataplane registers and detector state.
// Fixed-size register files (RU-to-PHY mapping, armed migrations, liveness
// detectors, gap observers) are written densely: MaxIDs is small and the
// dense form needs no sorting to be canonical.
func (s *Switch) SnapshotTo(w *wire.W) {
	st := &s.Stats
	w.U64(st.Forwarded)
	w.U64(st.UplinkForwarded)
	w.U64(st.DownlinkForwarded)
	w.U64(st.DroppedNoRoute)
	w.U64(st.DroppedStalePHY)
	w.U64(st.DroppedUnmappedRU)
	w.U64(st.CommandsReceived)
	w.U64(st.FailuresDetected)
	w.U64(st.MigrationsExecuted)
	w.U32(uint32(s.ctrlPending))
	w.Bool(s.timerOn)
	w.I64(int64(s.tickOrigin))
	w.I64(int64(s.tickPeriod))
	for i := 0; i < MaxIDs; i++ {
		w.U8(s.ruToPHY[i])
	}
	for i := 0; i < MaxIDs; i++ {
		m := &s.migrations[i]
		w.Bool(m.armed)
		if m.armed {
			w.U64(m.absSlot)
			w.U8(m.phy)
			w.I64(int64(m.armedAt))
		}
	}
	for i := 0; i < MaxIDs; i++ {
		d := &s.detectors[i]
		w.Bool(d.armed)
		if d.armed {
			w.I64(d.resetTick)
			w.Bool(d.seen)
			w.Bool(d.fired)
		}
	}
	for i := 0; i < MaxIDs; i++ {
		w.Bool(s.dlEverSeen[i])
		if s.dlEverSeen[i] {
			w.I64(int64(s.dlLastSeen[i]))
			w.I64(int64(s.DLGapMax[i]))
		}
	}
	w.U32(uint32(len(s.MigrationLog)))
	for _, m := range s.MigrationLog {
		w.U8(m.RU)
		w.U8(m.FromPHY)
		w.U8(m.ToPHY)
		w.I64(int64(m.At))
		w.U64(m.ReqAbsSlot)
	}
	w.U32(uint32(len(s.DetectionLog)))
	for _, t := range s.DetectionLog {
		w.I64(int64(t))
	}
}
