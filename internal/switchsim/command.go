// Package switchsim models the edge datacenter's programmable switch and
// Slingshot's in-switch fronthaul middlebox (§5 of the paper): the
// RU-to-PHY mapping pipeline built from match-action tables and register
// arrays, the migration-request store that remaps an RU at an exact TTI
// boundary, and the inter-packet-gap failure detector driven by the packet
// generator's timer packets (§5.2).
//
// The dataplane obeys P4-ish restrictions: per-packet work is bounded
// table lookups and register reads/writes keyed by small integer ids — no
// general hash tables, no timers (timer ticks are emulated with generated
// packets, as on Tofino). The control plane is a separate, slow path with
// a modeled rule-update latency.
package switchsim

import (
	"encoding/binary"
	"errors"

	"slingshot/internal/fronthaul"
)

// CommandType discriminates control packets handled in the dataplane.
type CommandType uint8

// Control packet types.
const (
	// CmdMigrateOnSlot asks the dataplane to remap an RU to a new PHY at
	// an exact future slot (§5.1, "Controlling fronthaul migration").
	CmdMigrateOnSlot CommandType = 1
	// CmdFailureNotify is sent by the switch to the L2-side Orion when
	// the failure detector fires (§5.2.2).
	CmdFailureNotify CommandType = 2
)

// Command is the payload of a control-plane packet traversing the
// dataplane (EtherTypeControl frames).
type Command struct {
	Type CommandType
	RU   uint8
	PHY  uint8
	// Slot is the wrapped slot id to migrate at (MigrateOnSlot).
	Slot fronthaul.SlotID
	// AbsSlot is the absolute slot counter (diagnostics only; the
	// dataplane matches on the wrapped Slot like real hardware would).
	AbsSlot uint64
}

// ErrBadCommand reports a malformed control payload.
var ErrBadCommand = errors.New("switchsim: malformed command packet")

const commandWire = 1 + 1 + 1 + 3 + 8

// Encode serializes the command.
func (c *Command) Encode() []byte {
	out := make([]byte, commandWire)
	out[0] = byte(c.Type)
	out[1] = c.RU
	out[2] = c.PHY
	out[3] = c.Slot.Frame
	out[4] = c.Slot.Subframe
	out[5] = c.Slot.Slot
	binary.BigEndian.PutUint64(out[6:14], c.AbsSlot)
	return out
}

// DecodeCommand parses a control payload.
func DecodeCommand(data []byte) (*Command, error) {
	if len(data) < commandWire {
		return nil, ErrBadCommand
	}
	c := &Command{
		Type:    CommandType(data[0]),
		RU:      data[1],
		PHY:     data[2],
		Slot:    fronthaul.SlotID{Frame: data[3], Subframe: data[4], Slot: data[5]},
		AbsSlot: binary.BigEndian.Uint64(data[6:14]),
	}
	if c.Type != CmdMigrateOnSlot && c.Type != CmdFailureNotify {
		return nil, ErrBadCommand
	}
	return c, nil
}

// slotGE reports whether wrapped slot a is at-or-after b, interpreting the
// shorter way around the wrap ring (the dataplane's comparison must
// tolerate a command armed slightly in the future).
func slotGE(a, b fronthaul.SlotID) bool {
	diff := (a.Index() + fronthaul.SlotWrap - b.Index()) % fronthaul.SlotWrap
	return diff < fronthaul.SlotWrap/2
}
