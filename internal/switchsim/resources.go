package switchsim

// ResourceUsage is the fraction (percent) of each switch ASIC resource the
// Slingshot dataplane program consumes, in the categories the paper
// reports (§8.6). The program-structure resources (crossbar, ALUs,
// gateways, hash bits) are fixed by the P4 program; SRAM scales with the
// directory and register entries provisioned.
type ResourceUsage struct {
	CrossbarPct float64
	ALUPct      float64
	GatewayPct  float64
	SRAMPct     float64
	HashBitsPct float64
}

// Tofino-class budget assumed by the model. Only the ratios matter: the
// constants are chosen so a 256-RU/256-PHY deployment reproduces the
// paper's measured usage (crossbar 5.2%, ALU 10.4%, gateway 14.1%, SRAM
// 5.3%, hash bits 9.5%).
const (
	sramBlocks       = 2048 // usable SRAM blocks
	sramBlockBytes   = 16 * 1024
	bytesPerDirEntry = 64  // MA-table overhead per directory entry
	bytesPerRegister = 16  // register-array entry (mapping + migration + counter)
	fixedSRAMBlocks  = 100 // parser, static tables, timer program state
)

// Resources returns the ASIC usage for a deployment provisioned for
// numRUs RUs and numPHYs PHY processes.
func Resources(numRUs, numPHYs int) ResourceUsage {
	// Directory entries: RU ID directory + PHY address directory (both
	// directions) + notification targets.
	dirBytes := (numRUs + 2*numPHYs) * bytesPerDirEntry
	// Register entries: RU-to-PHY mapping, migration request store (per
	// RU), timeout counters (per PHY).
	regBytes := (2*numRUs + numPHYs) * bytesPerRegister
	blocks := fixedSRAMBlocks + (dirBytes+regBytes+sramBlockBytes-1)/sramBlockBytes
	sramPct := float64(blocks) / sramBlocks * 100

	return ResourceUsage{
		CrossbarPct: 5.2,  // fixed: field extraction paths in the program
		ALUPct:      10.4, // fixed: register updates + comparisons per stage
		GatewayPct:  14.1, // fixed: branch conditions (direction, type, match)
		SRAMPct:     sramPct,
		HashBitsPct: 9.5, // fixed: exact-match table keys
	}
}

// PacketGeneratorLoad returns the timer packets per second the failure
// detector injects (50 K pps at the defaults, §5.2.2).
func (s *Switch) PacketGeneratorLoad() float64 {
	period := float64(s.Timeout) / float64(s.TimerTicks)
	return 1e9 / period
}
