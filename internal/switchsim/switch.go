package switchsim

import (
	"fmt"

	"slingshot/internal/fronthaul"
	"slingshot/internal/netmodel"
	"slingshot/internal/sim"
)

// MaxIDs is the id space of the indirection layer: vRAN operators assign
// logical 8-bit RU and PHY ids at installation time, so the dataplane maps
// are plain register arrays instead of general hash tables (§5.1).
const MaxIDs = 256

// NoPHY marks an unmapped RU.
const NoPHY = 0xFF

type migrationRequest struct {
	armed   bool
	slot    fronthaul.SlotID
	absSlot uint64
	phy     uint8
	armedAt sim.Time
}

type detectorState struct {
	armed  bool
	notify netmodel.Addr
	// resetTick is the index of the last timer tick at or before the
	// PHY's most recent downlink packet (the emulated counter reset);
	// the counter value at tick k is k - resetTick.
	resetTick int64
	// seen gates counting until the PHY's first downlink packet: a
	// liveness detector cannot time out a stream that never started.
	seen bool
	// fired latches until the PHY is re-armed, so a dead PHY produces one
	// notification, not one per tick.
	fired bool
	// pending guards the detector's single in-flight deadline event.
	pending bool
}

// MigrationRecord describes one executed fronthaul migration.
type MigrationRecord struct {
	RU       uint8
	FromPHY  uint8
	ToPHY    uint8
	At       sim.Time
	Slot     fronthaul.SlotID
	ArmDelay sim.Time // time between command arrival and execution
	// ReqAbsSlot is the absolute boundary slot the migrate_on_slot command
	// requested: execution must be at or after this TTI boundary.
	ReqAbsSlot uint64
}

// Stats counts dataplane activity.
type Stats struct {
	Forwarded          uint64
	UplinkForwarded    uint64
	DownlinkForwarded  uint64
	DroppedNoRoute     uint64
	DroppedStalePHY    uint64 // DL packets from a non-active PHY (§5.1)
	DroppedUnmappedRU  uint64
	CommandsReceived   uint64
	FailuresDetected   uint64
	MigrationsExecuted uint64
}

// Switch is the Tofino-style device. It implements netmodel.Receiver as
// its ingress pipeline; egress links are registered per endpoint address.
type Switch struct {
	Engine *sim.Engine
	Stats  Stats

	// Egress ports by endpoint MAC.
	ports map[netmodel.Addr]*netmodel.Link

	// Dataplane tables and registers.
	ruIDByMAC   map[netmodel.Addr]uint8 // ID directory (match-action)
	phyIDByMAC  map[netmodel.Addr]uint8 // reverse PHY directory
	phyMACByID  [MaxIDs]netmodel.Addr   // address directory
	ruMACByID   [MaxIDs]netmodel.Addr
	ruToPHY     [MaxIDs]uint8 // RU-to-PHY mapping register
	migrations  [MaxIDs]migrationRequest
	detectors   [MaxIDs]detectorState
	ctrlPending int

	// Detector configuration (§5.2.2): timeout T emulated by n timer
	// packets per period. The tick grid is virtual — ticksDone computes
	// tick indices from the clock instead of firing 1/period events — so
	// the packet generator costs one deadline event per timeout period
	// per armed PHY, not TimerTicks scans of the id space.
	Timeout    sim.Time
	TimerTicks int
	tickOrigin sim.Time // time of tick 1; grid fixed at first arm
	tickPeriod sim.Time
	timerOn    bool
	deadlineFn func(any) // bound onDetectorDeadline, allocated once

	// History of executed migrations and detections for the experiments.
	MigrationLog []MigrationRecord
	DetectionLog []sim.Time

	// OnMigration, if set, observes each executed migration as it happens.
	OnMigration func(MigrationRecord)
	// OnULForward, if set, observes every forwarded uplink fronthaul packet
	// after the RU-to-PHY mapping was resolved (invariant checkers use it
	// to assert migrations take effect exactly at TTI boundaries).
	OnULForward func(ru uint8, slot fronthaul.SlotID, phy uint8)

	// Inter-packet gap observation per PHY (the §8.6 measurement that
	// justifies the 450 µs timeout).
	dlLastSeen [MaxIDs]sim.Time
	dlEverSeen [MaxIDs]bool
	DLGapMax   [MaxIDs]sim.Time

	// ControlPlaneLatency models the slow path for rule updates; the
	// paper measures 29 ms p99.9 in their testbed. Used only by the
	// *ControlPlane methods; dataplane updates are per-packet.
	ControlPlaneLatency sim.Time

	rng *sim.RNG
}

// DefaultTimeout is the failure-detector timeout chosen in §8.6 from the
// measured 393 µs max inter-packet gap.
const DefaultTimeout = 450 * sim.Microsecond

// DefaultTimerTicks is n in §5.2.2: 50 ticks per timeout period gives 9 µs
// precision at negligible packet-generator load.
const DefaultTimerTicks = 50

// New creates a switch.
func New(e *sim.Engine, rng *sim.RNG) *Switch {
	s := &Switch{
		Engine:              e,
		ports:               make(map[netmodel.Addr]*netmodel.Link),
		ruIDByMAC:           make(map[netmodel.Addr]uint8),
		phyIDByMAC:          make(map[netmodel.Addr]uint8),
		Timeout:             DefaultTimeout,
		TimerTicks:          DefaultTimerTicks,
		ControlPlaneLatency: 10 * sim.Millisecond,
		rng:                 rng,
	}
	s.deadlineFn = s.onDetectorDeadline
	for i := range s.ruToPHY {
		s.ruToPHY[i] = NoPHY
	}
	return s
}

// Connect registers the egress link toward an endpoint address.
func (s *Switch) Connect(addr netmodel.Addr, link *netmodel.Link) {
	s.ports[addr] = link
}

// Port returns the egress link toward an endpoint address (nil if none).
// Fault-injection harnesses use it to perturb a specific cable.
func (s *Switch) Port(addr netmodel.Addr) *netmodel.Link {
	return s.ports[addr]
}

// InstallRU populates the ID and address directories for an RU. Installation
// is a deployment-time control-plane operation.
func (s *Switch) InstallRU(id uint8, mac netmodel.Addr) {
	s.ruIDByMAC[mac] = id
	s.ruMACByID[id] = mac
}

// InstallPHY populates the PHY address directory.
func (s *Switch) InstallPHY(id uint8, mac netmodel.Addr) {
	s.phyIDByMAC[mac] = id
	s.phyMACByID[id] = mac
}

// SetMapping sets the RU-to-PHY mapping register directly (deployment
// initialization; runtime changes go through migrate_on_slot commands).
func (s *Switch) SetMapping(ru, phy uint8) {
	s.ruToPHY[ru] = phy
}

// Mapping returns the current PHY id serving an RU.
func (s *Switch) Mapping(ru uint8) uint8 { return s.ruToPHY[ru] }

// SetMappingViaControlPlane models the slow path: the remap takes effect
// after the control-plane rule-update latency, with no TTI alignment.
// This is the baseline Slingshot's in-dataplane update avoids.
func (s *Switch) SetMappingViaControlPlane(ru, phy uint8, done func(sim.Time)) {
	issued := s.Engine.Now()
	// Rule updates exhibit a heavy tail; model lognormal-ish latency with
	// the paper's 29 ms p99.9.
	lat := s.ControlPlaneLatency + sim.Time(s.rng.Exp(float64(4*sim.Millisecond)))
	s.Engine.After(lat, "switch.ctrl-update", func() {
		s.ruToPHY[ru] = phy
		if done != nil {
			done(s.Engine.Now() - issued)
		}
	})
}

// ArmDetector enables failure detection for a PHY id, sending
// notifications to notify (the L2-side Orion). Also starts the timer
// packet generator on first use.
func (s *Switch) ArmDetector(phy uint8, notify netmodel.Addr) {
	// An already-scheduled deadline event survives re-arming; pending
	// must carry over so the detector never has two events in flight.
	pending := s.detectors[phy].pending
	s.detectors[phy] = detectorState{armed: true, notify: notify, pending: pending}
	s.startTimer()
}

// DisarmDetector stops monitoring a PHY (e.g. after it was migrated away
// from and is expected to be silent).
func (s *Switch) DisarmDetector(phy uint8) {
	s.detectors[phy].armed = false
}

func (s *Switch) startTimer() {
	if s.timerOn {
		return
	}
	period := s.Timeout / sim.Time(s.TimerTicks)
	if period < 1 {
		period = 1
	}
	s.tickPeriod = period
	s.tickOrigin = s.Engine.Now() + period // Every(period, period) grid
	s.timerOn = true
}

// ticksDone is the number of emulated timer-packet ticks whose grid time
// is at or before t. Tick k fires at tickOrigin + (k-1)*period; a tick
// coinciding exactly with a downlink packet counts as having fired before
// the packet's counter reset.
func (s *Switch) ticksDone(t sim.Time) int64 {
	if !s.timerOn || t < s.tickOrigin {
		return 0
	}
	return int64((t-s.tickOrigin)/s.tickPeriod) + 1
}

// detectionTime is the grid time of the tick that pushes the PHY's counter
// to TimerTicks: the TimerTicks-th tick after its last reset.
func (s *Switch) detectionTime(d *detectorState) sim.Time {
	k := d.resetTick + int64(s.TimerTicks)
	return s.tickOrigin + sim.Time(k-1)*s.tickPeriod
}

// armDeadline ensures a counting detector has one deadline event in
// flight. Downlink packets only move resetTick — the pending event
// re-projects the deadline when it fires, so the steady-state cost is one
// event per timeout period per armed PHY instead of a tick every T/n.
func (s *Switch) armDeadline(phy uint8) {
	d := &s.detectors[phy]
	if d.pending || !d.armed || !d.seen || d.fired || !s.timerOn {
		return
	}
	d.pending = true
	s.Engine.AtArgPooled(s.detectionTime(d), "switch.timer", s.deadlineFn, int(phy))
}

// onDetectorDeadline fires when a PHY's emulated counter would reach
// TimerTicks had no downlink packet arrived since the event was scheduled.
// If packets did arrive (resetTick advanced), it re-arms at the projected
// deadline; otherwise this tick is the detection.
func (s *Switch) onDetectorDeadline(arg any) {
	phy := uint8(arg.(int))
	d := &s.detectors[phy]
	d.pending = false
	if !d.armed || !d.seen || d.fired || !s.timerOn {
		return
	}
	if at := s.detectionTime(d); s.Engine.Now() < at {
		d.pending = true
		s.Engine.AtArgPooled(at, "switch.timer", s.deadlineFn, int(phy))
		return
	}
	d.fired = true
	s.Stats.FailuresDetected++
	s.DetectionLog = append(s.DetectionLog, s.Engine.Now())
	nf := netmodel.GetFrame()
	nf.Src = netmodel.ControllerAddr()
	nf.Dst = d.notify
	nf.Type = netmodel.EtherTypeControl
	nf.Payload = (&Command{Type: CmdFailureNotify, PHY: phy}).Encode()
	s.sendTo(d.notify, nf)
}

// HandleFrame is the ingress pipeline.
func (s *Switch) HandleFrame(f *netmodel.Frame) {
	switch f.Type {
	case netmodel.EtherTypeECPRI:
		s.handleFronthaul(f)
	case netmodel.EtherTypeControl:
		s.handleControl(f)
	default:
		// Non-fronthaul traffic (FAPI, user data) switches on plain L2
		// destination.
		s.forward(f.Dst, f)
	}
}

func (s *Switch) handleFronthaul(f *netmodel.Frame) {
	slot, dir, ok := fronthaul.PeekSlot(f.Payload)
	if !ok {
		s.Stats.DroppedNoRoute++
		netmodel.ReleaseFrame(f)
		return
	}
	if dir == fronthaul.Uplink {
		s.handleUplink(f, slot)
	} else {
		s.handleDownlink(f, slot)
	}
}

// handleUplink steers RU→PHY packets: ID directory → migration check →
// RU-to-PHY register → address directory (§5.1, Fig 5).
func (s *Switch) handleUplink(f *netmodel.Frame, slot fronthaul.SlotID) {
	ru, ok := s.ruIDByMAC[f.Src]
	if !ok {
		s.Stats.DroppedUnmappedRU++
		netmodel.ReleaseFrame(f)
		return
	}
	s.maybeMigrate(ru, slot)
	phy := s.ruToPHY[ru]
	if phy == NoPHY {
		s.Stats.DroppedNoRoute++
		netmodel.ReleaseFrame(f)
		return
	}
	dst := s.phyMACByID[phy]
	if dst == 0 {
		s.Stats.DroppedNoRoute++
		netmodel.ReleaseFrame(f)
		return
	}
	// Rewrite the virtual PHY address to the physical one.
	f.Dst = dst
	s.Stats.UplinkForwarded++
	if s.OnULForward != nil {
		s.OnULForward(ru, slot, phy)
	}
	s.forward(dst, f)
}

// handleDownlink steers PHY→RU packets, feeding the failure detector and
// dropping packets from PHYs that are not the RU's active PHY.
func (s *Switch) handleDownlink(f *netmodel.Frame, slot fronthaul.SlotID) {
	phy, ok := s.phyIDByMAC[f.Src]
	if !ok {
		s.Stats.DroppedNoRoute++
		return
	}
	// Natural heartbeat: any downlink packet from the PHY clears its gap
	// counter (§5.2.2).
	now := s.Engine.Now()
	if s.dlEverSeen[phy] {
		if gap := now - s.dlLastSeen[phy]; gap > s.DLGapMax[phy] {
			s.DLGapMax[phy] = gap
		}
	}
	s.dlLastSeen[phy] = now
	s.dlEverSeen[phy] = true
	d := &s.detectors[phy]
	d.resetTick = s.ticksDone(now)
	d.seen = true
	if d.fired {
		// The PHY is sending again (restart/recovery); re-arm.
		d.fired = false
	}
	s.armDeadline(phy)

	ru, ok := s.ruIDByMAC[f.Dst]
	if !ok {
		s.Stats.DroppedNoRoute++
		netmodel.ReleaseFrame(f)
		return
	}
	s.maybeMigrate(ru, slot)
	if s.ruToPHY[ru] != phy {
		// Blocks the hot-standby secondary's control-plane packets from
		// reaching the RU (§5, requirement 2).
		s.Stats.DroppedStalePHY++
		netmodel.ReleaseFrame(f)
		return
	}
	s.Stats.DownlinkForwarded++
	s.forward(f.Dst, f)
}

// maybeMigrate executes a pending migration request when a packet for the
// RU reaches the migration slot: a pure dataplane register update, so it
// happens at nanosecond scale and exactly at a TTI boundary.
func (s *Switch) maybeMigrate(ru uint8, slot fronthaul.SlotID) {
	req := &s.migrations[ru]
	if !req.armed || !slotGE(slot, req.slot) {
		return
	}
	from := s.ruToPHY[ru]
	s.ruToPHY[ru] = req.phy
	req.armed = false
	s.Stats.MigrationsExecuted++
	rec := MigrationRecord{
		RU: ru, FromPHY: from, ToPHY: req.phy,
		At: s.Engine.Now(), Slot: slot,
		ArmDelay:   s.Engine.Now() - req.armedAt,
		ReqAbsSlot: req.absSlot,
	}
	s.MigrationLog = append(s.MigrationLog, rec)
	if s.OnMigration != nil {
		s.OnMigration(rec)
	}
}

func (s *Switch) handleControl(f *netmodel.Frame) {
	// Frames not addressed to the switch's controller endpoint are plain
	// L2 traffic (e.g. Orion→Orion notifications relayed through us).
	if f.Dst != netmodel.ControllerAddr() {
		s.forward(f.Dst, f)
		return
	}
	cmd, err := DecodeCommand(f.Payload)
	netmodel.ReleaseFrame(f) // terminal: the command is decoded out
	if err != nil {
		s.Stats.DroppedNoRoute++
		return
	}
	s.Stats.CommandsReceived++
	if cmd.Type == CmdMigrateOnSlot {
		s.migrations[cmd.RU] = migrationRequest{
			armed: true, slot: cmd.Slot, absSlot: cmd.AbsSlot,
			phy: cmd.PHY, armedAt: s.Engine.Now(),
		}
	}
}

func (s *Switch) forward(dst netmodel.Addr, f *netmodel.Frame) {
	link := s.ports[dst]
	if link == nil {
		s.Stats.DroppedNoRoute++
		netmodel.ReleaseFrame(f)
		return
	}
	s.Stats.Forwarded++
	link.Send(f)
}

// sendTo emits a switch-originated frame (failure notifications).
func (s *Switch) sendTo(dst netmodel.Addr, f *netmodel.Frame) {
	s.forward(dst, f)
}

// PendingMigration reports whether RU ru has an armed migration request.
func (s *Switch) PendingMigration(ru uint8) bool { return s.migrations[ru].armed }

// Stop halts the timer packet generator: in-flight deadline events become
// no-ops and nothing further is scheduled.
func (s *Switch) Stop() {
	s.timerOn = false
}

// DetectionPrecision returns the worst-case extra latency of the emulated
// timer (T/n), 9 µs at the defaults.
func (s *Switch) DetectionPrecision() sim.Time {
	return s.Timeout / sim.Time(s.TimerTicks)
}

func (s *Switch) String() string {
	return fmt.Sprintf("switch(ports=%d, rus=%d, phys=%d)",
		len(s.ports), len(s.ruIDByMAC), len(s.phyIDByMAC))
}
