package switchsim

import (
	"testing"
	"testing/quick"

	"slingshot/internal/fronthaul"
	"slingshot/internal/netmodel"
	"slingshot/internal/sim"
)

type endpoint struct {
	e      *sim.Engine
	frames []*netmodel.Frame
	at     []sim.Time
}

func (ep *endpoint) HandleFrame(f *netmodel.Frame) {
	ep.frames = append(ep.frames, f)
	ep.at = append(ep.at, ep.e.Now())
}

// rig is a switch with one RU and two PHYs attached over zero-latency
// links.
type rig struct {
	e            *sim.Engine
	sw           *Switch
	ru           *endpoint
	phy0, phy1   *endpoint
	orion        *endpoint
	ruAddr       netmodel.Addr
	phy0A, phy1A netmodel.Addr
	orionA       netmodel.Addr
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{e: sim.NewEngine()}
	r.sw = New(r.e, sim.NewRNG(1))
	r.ru = &endpoint{e: r.e}
	r.phy0 = &endpoint{e: r.e}
	r.phy1 = &endpoint{e: r.e}
	r.orion = &endpoint{e: r.e}
	r.ruAddr = netmodel.RUAddr(0)
	r.phy0A = netmodel.PHYAddr(0)
	r.phy1A = netmodel.PHYAddr(1)
	r.orionA = netmodel.OrionAddr(9)

	r.sw.Connect(r.ruAddr, netmodel.NewLink(r.e, r.ru, 0, 0))
	r.sw.Connect(r.phy0A, netmodel.NewLink(r.e, r.phy0, 0, 0))
	r.sw.Connect(r.phy1A, netmodel.NewLink(r.e, r.phy1, 0, 0))
	r.sw.Connect(r.orionA, netmodel.NewLink(r.e, r.orion, 0, 0))

	r.sw.InstallRU(0, r.ruAddr)
	r.sw.InstallPHY(0, r.phy0A)
	r.sw.InstallPHY(1, r.phy1A)
	r.sw.SetMapping(0, 0)
	return r
}

func ulPacket(slot uint64) *netmodel.Frame {
	pkt := fronthaul.NewControl(0, 0, fronthaul.Uplink, fronthaul.SlotFromCounter(slot), 0)
	return &netmodel.Frame{
		Src: netmodel.RUAddr(0), Dst: netmodel.VirtualPHYAddr(0),
		Type: netmodel.EtherTypeECPRI, Payload: pkt.Serialize(),
	}
}

func dlPacket(srcPHY netmodel.Addr, slot uint64) *netmodel.Frame {
	pkt := fronthaul.NewControl(0, 0, fronthaul.Downlink, fronthaul.SlotFromCounter(slot), 0)
	return &netmodel.Frame{
		Src: srcPHY, Dst: netmodel.RUAddr(0),
		Type: netmodel.EtherTypeECPRI, Payload: pkt.Serialize(),
	}
}

func TestUplinkSteeredToPrimary(t *testing.T) {
	r := newRig(t)
	r.e.At(0, "send", func() { r.sw.HandleFrame(ulPacket(10)) })
	r.e.Run()
	if len(r.phy0.frames) != 1 || len(r.phy1.frames) != 0 {
		t.Fatalf("phy0=%d phy1=%d", len(r.phy0.frames), len(r.phy1.frames))
	}
	// Virtual address rewritten to physical.
	if r.phy0.frames[0].Dst != r.phy0A {
		t.Fatalf("dst = %v", r.phy0.frames[0].Dst)
	}
}

func TestDownlinkFromActivePHYForwarded(t *testing.T) {
	r := newRig(t)
	r.e.At(0, "send", func() { r.sw.HandleFrame(dlPacket(r.phy0A, 10)) })
	r.e.Run()
	if len(r.ru.frames) != 1 {
		t.Fatalf("ru got %d frames", len(r.ru.frames))
	}
}

func TestDownlinkFromSecondaryDropped(t *testing.T) {
	r := newRig(t)
	r.e.At(0, "send", func() { r.sw.HandleFrame(dlPacket(r.phy1A, 10)) })
	r.e.Run()
	if len(r.ru.frames) != 0 {
		t.Fatal("secondary's DL packet reached the RU")
	}
	if r.sw.Stats.DroppedStalePHY != 1 {
		t.Fatalf("DroppedStalePHY = %d", r.sw.Stats.DroppedStalePHY)
	}
}

func TestMigrateOnSlotExactBoundary(t *testing.T) {
	r := newRig(t)
	cmd := &Command{Type: CmdMigrateOnSlot, RU: 0, PHY: 1,
		Slot: fronthaul.SlotFromCounter(20), AbsSlot: 20}
	r.e.At(0, "cmd", func() {
		r.sw.HandleFrame(&netmodel.Frame{
			Src: r.orionA, Dst: netmodel.ControllerAddr(),
			Type: netmodel.EtherTypeControl, Payload: cmd.Encode(),
		})
	})
	// Packets for slots 18,19 go to PHY0; slot 20+ to PHY1.
	for i, slot := range []uint64{18, 19, 20, 21} {
		s := slot
		r.e.At(sim.Time(i+1)*1000, "ul", func() { r.sw.HandleFrame(ulPacket(s)) })
	}
	r.e.Run()
	if len(r.phy0.frames) != 2 {
		t.Fatalf("phy0 got %d frames, want 2 (slots 18,19)", len(r.phy0.frames))
	}
	if len(r.phy1.frames) != 2 {
		t.Fatalf("phy1 got %d frames, want 2 (slots 20,21)", len(r.phy1.frames))
	}
	if r.sw.Mapping(0) != 1 {
		t.Fatalf("mapping = %d", r.sw.Mapping(0))
	}
	if len(r.sw.MigrationLog) != 1 || r.sw.MigrationLog[0].FromPHY != 0 || r.sw.MigrationLog[0].ToPHY != 1 {
		t.Fatalf("migration log: %+v", r.sw.MigrationLog)
	}
	if r.sw.PendingMigration(0) {
		t.Fatal("migration still pending after execution")
	}
}

func TestMigrationBlocksOldPHYDownlink(t *testing.T) {
	r := newRig(t)
	cmd := &Command{Type: CmdMigrateOnSlot, RU: 0, PHY: 1, Slot: fronthaul.SlotFromCounter(20), AbsSlot: 20}
	r.e.At(0, "cmd", func() {
		r.sw.HandleFrame(&netmodel.Frame{Src: r.orionA, Dst: netmodel.ControllerAddr(),
			Type: netmodel.EtherTypeControl, Payload: cmd.Encode()})
	})
	// DL packet from PHY1 for slot 20 executes the migration and is
	// forwarded; afterwards PHY0's packets are dropped.
	r.e.At(1000, "dl1", func() { r.sw.HandleFrame(dlPacket(r.phy1A, 20)) })
	r.e.At(2000, "dl0", func() { r.sw.HandleFrame(dlPacket(r.phy0A, 20)) })
	r.e.Run()
	if len(r.ru.frames) != 1 {
		t.Fatalf("ru frames = %d", len(r.ru.frames))
	}
	if r.sw.Stats.DroppedStalePHY != 1 {
		t.Fatalf("DroppedStalePHY = %d", r.sw.Stats.DroppedStalePHY)
	}
}

func TestSlotGEWrapAround(t *testing.T) {
	f := func(a, b uint16) bool {
		sa := fronthaul.SlotFromCounter(uint64(a))
		sb := fronthaul.SlotFromCounter(uint64(b))
		diff := (sa.Index() + fronthaul.SlotWrap - sb.Index()) % fronthaul.SlotWrap
		return slotGE(sa, sb) == (diff < fronthaul.SlotWrap/2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Wrap case: slot 1 is "after" slot SlotWrap-1.
	if !slotGE(fronthaul.SlotFromCounter(1), fronthaul.SlotFromCounter(fronthaul.SlotWrap-1)) {
		t.Fatal("wrap-around comparison broken")
	}
}

func TestFailureDetectorFires(t *testing.T) {
	r := newRig(t)
	r.sw.ArmDetector(0, r.orionA)
	// PHY0 emits two control packets per 500us slot (30us and 260us
	// offsets, like the real PHY) until t=5ms, then goes silent.
	for i := 0; i < 10; i++ {
		slot := uint64(i)
		base := sim.Time(i) * 500 * sim.Microsecond
		r.e.At(base+30*sim.Microsecond, "hb", func() {
			r.sw.HandleFrame(dlPacket(r.phy0A, slot))
		})
		r.e.At(base+260*sim.Microsecond, "hb2", func() {
			r.sw.HandleFrame(dlPacket(r.phy0A, slot))
		})
	}
	r.e.RunUntil(20 * sim.Millisecond)
	r.sw.Stop()
	if len(r.orion.frames) != 1 {
		t.Fatalf("notifications = %d", len(r.orion.frames))
	}
	cmd, err := DecodeCommand(r.orion.frames[0].Payload)
	if err != nil || cmd.Type != CmdFailureNotify || cmd.PHY != 0 {
		t.Fatalf("notification: %+v err=%v", cmd, err)
	}
	// Detection must happen at last-heartbeat + timeout, to within the
	// emulated timer's precision T/n on either side (§5.2.2).
	last := 4760 * sim.Microsecond
	detected := r.sw.DetectionLog[0]
	lo := last + r.sw.Timeout - 2*r.sw.DetectionPrecision()
	hi := last + r.sw.Timeout + 2*r.sw.DetectionPrecision()
	if detected < lo || detected > hi {
		t.Fatalf("detected at %v, want within [%v, %v]", detected, lo, hi)
	}
}

func TestFailureDetectorNoFalsePositive(t *testing.T) {
	r := newRig(t)
	r.sw.ArmDetector(0, r.orionA)
	// Heartbeats every 400us (under the 450us timeout) for 50ms.
	for i := 0; i < 125; i++ {
		slot := uint64(i)
		r.e.At(sim.Time(i)*400*sim.Microsecond, "hb", func() {
			r.sw.HandleFrame(dlPacket(r.phy0A, slot))
		})
	}
	r.e.RunUntil(50 * sim.Millisecond)
	r.sw.Stop()
	if len(r.orion.frames) != 0 {
		t.Fatalf("false positive: %d notifications", len(r.orion.frames))
	}
}

func TestFailureDetectorFiresOnce(t *testing.T) {
	r := newRig(t)
	r.sw.ArmDetector(0, r.orionA)
	// One heartbeat starts the stream, then silence for many timeout
	// periods: exactly one (latched) notification.
	r.e.At(0, "hb", func() { r.sw.HandleFrame(dlPacket(r.phy0A, 0)) })
	r.e.RunUntil(100 * sim.Millisecond)
	r.sw.Stop()
	if len(r.orion.frames) != 1 {
		t.Fatalf("notifications = %d, want 1 (latched)", len(r.orion.frames))
	}
}

func TestFailureDetectorWaitsForFirstHeartbeat(t *testing.T) {
	r := newRig(t)
	r.sw.ArmDetector(0, r.orionA)
	// Never any packet from PHY0: a stream that never started cannot
	// time out.
	r.e.RunUntil(100 * sim.Millisecond)
	r.sw.Stop()
	if len(r.orion.frames) != 0 {
		t.Fatalf("notifications = %d for a PHY that never started", len(r.orion.frames))
	}
}

func TestFailureDetectorRearmsOnRecovery(t *testing.T) {
	r := newRig(t)
	r.sw.ArmDetector(0, r.orionA)
	// Heartbeat, silence -> detection; then PHY resumes; then silence again.
	r.e.At(0, "hb", func() { r.sw.HandleFrame(dlPacket(r.phy0A, 0)) })
	r.e.At(30*sim.Millisecond, "resume", func() { r.sw.HandleFrame(dlPacket(r.phy0A, 60)) })
	r.e.RunUntil(100 * sim.Millisecond)
	r.sw.Stop()
	if len(r.orion.frames) != 2 {
		t.Fatalf("notifications = %d, want 2", len(r.orion.frames))
	}
}

func TestDisarmDetector(t *testing.T) {
	r := newRig(t)
	r.sw.ArmDetector(0, r.orionA)
	r.sw.DisarmDetector(0)
	r.e.RunUntil(50 * sim.Millisecond)
	r.sw.Stop()
	if len(r.orion.frames) != 0 {
		t.Fatal("disarmed detector fired")
	}
}

func TestControlPlaneLatencyIsSlow(t *testing.T) {
	r := newRig(t)
	var took sim.Time
	r.e.At(0, "remap", func() {
		r.sw.SetMappingViaControlPlane(0, 1, func(d sim.Time) { took = d })
	})
	r.e.Run()
	if r.sw.Mapping(0) != 1 {
		t.Fatal("control-plane remap never applied")
	}
	if took < 5*sim.Millisecond {
		t.Fatalf("control-plane update took only %v; expected ms-scale", took)
	}
}

func TestNonFronthaulTrafficSwitchesNormally(t *testing.T) {
	r := newRig(t)
	r.e.At(0, "send", func() {
		r.sw.HandleFrame(&netmodel.Frame{
			Src: r.phy0A, Dst: r.orionA,
			Type: netmodel.EtherTypeFAPI, Payload: []byte("fapi"),
		})
	})
	r.e.Run()
	if len(r.orion.frames) != 1 {
		t.Fatal("FAPI frame not switched")
	}
}

func TestUnknownDestinationsDropped(t *testing.T) {
	r := newRig(t)
	r.e.At(0, "send", func() {
		r.sw.HandleFrame(&netmodel.Frame{Dst: 0xDEAD, Type: netmodel.EtherTypeUserData})
		r.sw.HandleFrame(&netmodel.Frame{Src: 0xDEAD, Dst: netmodel.VirtualPHYAddr(0),
			Type: netmodel.EtherTypeECPRI, Payload: ulPacket(0).Payload})
	})
	r.e.Run()
	if r.sw.Stats.DroppedNoRoute == 0 || r.sw.Stats.DroppedUnmappedRU == 0 {
		t.Fatalf("drops not counted: %+v", r.sw.Stats)
	}
}

func TestCommandCodec(t *testing.T) {
	c := &Command{Type: CmdMigrateOnSlot, RU: 3, PHY: 7,
		Slot: fronthaul.SlotID{Frame: 1, Subframe: 2, Slot: 1}, AbsSlot: 999}
	got, err := DecodeCommand(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *c {
		t.Fatalf("%+v vs %+v", got, c)
	}
	if _, err := DecodeCommand([]byte{1}); err == nil {
		t.Fatal("short command accepted")
	}
	if _, err := DecodeCommand(make([]byte, commandWire)); err == nil {
		t.Fatal("zero-type command accepted")
	}
}

func TestResourcesMatchPaperAt256(t *testing.T) {
	u := Resources(256, 256)
	if u.CrossbarPct != 5.2 || u.ALUPct != 10.4 || u.GatewayPct != 14.1 || u.HashBitsPct != 9.5 {
		t.Fatalf("fixed resources: %+v", u)
	}
	if u.SRAMPct < 4.5 || u.SRAMPct > 6.0 {
		t.Fatalf("SRAM at 256 RUs = %.2f%%, want ~5.3%%", u.SRAMPct)
	}
	// Only SRAM grows with scale (§8.6).
	big := Resources(1024, 1024)
	if big.SRAMPct <= u.SRAMPct {
		t.Fatal("SRAM does not scale with entries")
	}
	if big.CrossbarPct != u.CrossbarPct || big.ALUPct != u.ALUPct {
		t.Fatal("non-SRAM resources changed with scale")
	}
}

func TestPacketGeneratorLoad(t *testing.T) {
	r := newRig(t)
	load := r.sw.PacketGeneratorLoad()
	// 450us / 50 = 9us period -> ~111K pps.
	if load < 100e3 || load > 125e3 {
		t.Fatalf("pktgen load = %f pps", load)
	}
}

func TestSwitchString(t *testing.T) {
	r := newRig(t)
	if r.sw.String() == "" {
		t.Fatal("empty String()")
	}
}
