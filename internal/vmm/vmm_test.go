package vmm

import (
	"testing"

	"slingshot/internal/metrics"
	"slingshot/internal/sim"
)

func TestRDMAPauseDistributionMatchesPaper(t *testing.T) {
	m := New(RDMA, FlexRANWorkload(), sim.NewRNG(1))
	results := m.RunN(80)
	s := metrics.NewSample()
	for _, r := range results {
		s.Add(r.PauseTime.Millis())
	}
	med := s.Median()
	// Paper: 244 ms median VM pause with RDMA. Shape target: 150-350 ms.
	if med < 150 || med > 350 {
		t.Fatalf("RDMA median pause = %.1f ms, want 150-350 (paper: 244)", med)
	}
	if s.Min() < 50 {
		t.Fatalf("min pause %.1f ms implausibly small", s.Min())
	}
	if s.Max() > 600 {
		t.Fatalf("max pause %.1f ms implausibly large", s.Max())
	}
}

func TestTCPSlowerThanRDMA(t *testing.T) {
	rdma := New(RDMA, FlexRANWorkload(), sim.NewRNG(2))
	tcp := New(TCP, FlexRANWorkload(), sim.NewRNG(2))
	sR, sT := metrics.NewSample(), metrics.NewSample()
	for _, r := range rdma.RunN(80) {
		sR.Add(r.PauseTime.Millis())
	}
	for _, r := range tcp.RunN(80) {
		sT.Add(r.PauseTime.Millis())
	}
	if sT.Median() <= sR.Median() {
		t.Fatalf("TCP median %.1f ms not above RDMA %.1f ms", sT.Median(), sR.Median())
	}
}

func TestFlexRANAlwaysCrashes(t *testing.T) {
	m := New(RDMA, FlexRANWorkload(), sim.NewRNG(3))
	for i, r := range m.RunN(80) {
		if !r.Crashed {
			t.Fatalf("run %d survived a %.1f ms pause with a 10 us budget", i, r.PauseTime.Millis())
		}
	}
}

func TestGentleWorkloadConverges(t *testing.T) {
	// A non-realtime guest with a tiny hot set migrates with a short
	// pause — the contrast that makes the PHY case notable.
	w := Workload{
		MemBytes: 8e9, HotWSSBytes: 50e6, DirtyRateBps: 100e6,
		InterruptBudget: 5 * sim.Second,
	}
	m := New(RDMA, w, sim.NewRNG(4))
	r := m.Run()
	if r.PauseTime > 120*sim.Millisecond {
		t.Fatalf("gentle workload pause = %v", r.PauseTime)
	}
	if r.Crashed {
		t.Fatal("gentle workload crashed")
	}
	if r.Rounds < 1 {
		t.Fatalf("rounds = %d", r.Rounds)
	}
}

func TestPauseScalesWithHotSet(t *testing.T) {
	small := FlexRANWorkload()
	small.HotWSSBytes, small.HotWSSJitter = 1e9, 0
	big := FlexRANWorkload()
	big.HotWSSBytes, big.HotWSSJitter = 4e9, 0
	pSmall := New(RDMA, small, sim.NewRNG(5)).Run().PauseTime
	pBig := New(RDMA, big, sim.NewRNG(5)).Run().PauseTime
	if pBig <= pSmall {
		t.Fatalf("pause did not scale with hot set: %v vs %v", pSmall, pBig)
	}
}

func TestTotalTimeExceedsPause(t *testing.T) {
	m := New(RDMA, FlexRANWorkload(), sim.NewRNG(6))
	r := m.Run()
	if r.TotalTime <= r.PauseTime {
		t.Fatalf("total %v <= pause %v", r.TotalTime, r.PauseTime)
	}
	if r.FinalDirty <= 0 {
		t.Fatal("no final dirty accounting")
	}
}
