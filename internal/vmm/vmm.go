// Package vmm models pre-copy live VM migration of a running PHY workload
// — the Fig 3 baseline. QEMU/KVM pre-copy iteratively transfers dirty
// memory pages; a workload like FlexRAN re-dirties a large working set of
// IQ/scratch buffers every 500 µs TTI, so the dirty set never shrinks
// below that hot set and the hypervisor is forced into a long
// stop-and-copy pause. The paper measures a 244 ms median pause over 80
// runs (RDMA over 100 GbE) and observes FlexRAN crashing in every run —
// the realtime PHY tolerates only ~10 µs interruptions (§2.4).
package vmm

import (
	"slingshot/internal/sim"
)

// LinkProfile describes the migration transport.
type LinkProfile struct {
	Name string
	// BytesPerSec is the effective migration throughput.
	BytesPerSec float64
	// PerRoundOverhead is protocol overhead added to every round.
	PerRoundOverhead sim.Time
}

// Transport profiles for the Fig 3 comparison (100 GbE fabric).
var (
	// RDMA achieves near line rate with kernel bypass.
	RDMA = LinkProfile{Name: "RDMA", BytesPerSec: 11.0e9, PerRoundOverhead: 2 * sim.Millisecond}
	// TCP loses throughput to the kernel stack and copies.
	TCP = LinkProfile{Name: "TCP", BytesPerSec: 8.0e9, PerRoundOverhead: 5 * sim.Millisecond}
)

// Workload describes the guest being migrated.
type Workload struct {
	// MemBytes is total guest memory.
	MemBytes float64
	// HotWSSBytes is the working set re-dirtied every TTI (IQ buffers,
	// FEC scratch, DPDK rings): the floor of every pre-copy round.
	HotWSSBytes float64
	// HotWSSJitter randomizes the hot set per run (load-dependent).
	HotWSSJitter float64
	// DirtyRateBps is the additional background dirtying rate.
	DirtyRateBps float64
	// InterruptBudget is the longest pause the workload survives
	// (sub-10 µs for realtime PHYs, §2.4).
	InterruptBudget sim.Time
}

// FlexRANWorkload returns the paper's simplified FlexRAN guest (no PCIe
// devices, which under-represents real migration time — as the paper
// notes).
func FlexRANWorkload() Workload {
	return Workload{
		MemBytes:        8e9,
		HotWSSBytes:     2.7e9,
		HotWSSJitter:    0.9e9,
		DirtyRateBps:    1.5e9,
		InterruptBudget: 10 * sim.Microsecond,
	}
}

// Model runs pre-copy migrations.
type Model struct {
	Link LinkProfile
	Work Workload
	// MaxRounds caps pre-copy iterations before forced stop-and-copy.
	MaxRounds int
	// DowntimeTarget: the hypervisor stops copying rounds once the
	// estimated stop-and-copy time is below this.
	DowntimeTarget sim.Time
	// StopResumeOverhead is the fixed VM pause/unpause machinery cost.
	StopResumeOverhead sim.Time

	rng *sim.RNG
}

// New builds a model with QEMU-ish defaults.
func New(link LinkProfile, work Workload, rng *sim.RNG) *Model {
	return &Model{
		Link:               link,
		Work:               work,
		MaxRounds:          30,
		DowntimeTarget:     30 * sim.Millisecond,
		StopResumeOverhead: 25 * sim.Millisecond,
		rng:                rng,
	}
}

// Result is one migration run's outcome.
type Result struct {
	PauseTime  sim.Time
	TotalTime  sim.Time
	Rounds     int
	FinalDirty float64
	// Crashed reports whether the guest workload survived: a realtime
	// PHY crashes whenever the pause exceeds its interrupt budget.
	Crashed bool
}

// Run simulates one migration.
func (m *Model) Run() Result {
	hot := m.Work.HotWSSBytes + m.rng.Jitter(m.Work.HotWSSJitter)
	if hot < 0.2e9 {
		hot = 0.2e9
	}
	bw := m.Link.BytesPerSec * (1 + m.rng.Jitter(0.05))

	res := Result{}
	dirty := m.Work.MemBytes // round 1 copies everything
	var total sim.Time
	for round := 1; round <= m.MaxRounds; round++ {
		res.Rounds = round
		t := sim.Time(dirty/bw*float64(sim.Second)) + m.Link.PerRoundOverhead
		total += t
		// Pages dirtied during the round: the hot set (fully re-dirtied
		// many times over within any round ≥ 1 TTI) plus background rate.
		redirtied := hot + m.Work.DirtyRateBps*t.Seconds()
		if redirtied > m.Work.MemBytes {
			redirtied = m.Work.MemBytes
		}
		dirty = redirtied
		est := sim.Time(dirty / bw * float64(sim.Second))
		if est <= m.DowntimeTarget {
			break
		}
		// Convergence stalls at the hot set; QEMU gives up when rounds
		// stop shrinking (within 5%).
		if round > 2 && dirty >= 0.95*redirtied && redirtied >= 0.95*hot+m.Work.DirtyRateBps*t.Seconds()*0.95 {
			break
		}
	}
	res.FinalDirty = dirty
	res.PauseTime = sim.Time(dirty/bw*float64(sim.Second)) + m.StopResumeOverhead
	res.TotalTime = total + res.PauseTime
	res.Crashed = res.PauseTime > m.Work.InterruptBudget
	return res
}

// RunN performs n independent migrations.
func (m *Model) RunN(n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = m.Run()
	}
	return out
}
