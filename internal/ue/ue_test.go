package ue

import (
	"testing"

	"slingshot/internal/dsp"
	"slingshot/internal/fronthaul"
	"slingshot/internal/phy"
	"slingshot/internal/rlc"
	"slingshot/internal/sim"
)

const cellSeed = 0xCAFE

func newUE(e *sim.Engine, snr float64) *UE {
	cfg := DefaultConfig(1, 0, "test-ue", snr)
	cfg.FadeStd = 0
	u := New(e, cfg, sim.NewRNG(3))
	u.SetCellParams(cellSeed, 9)
	return u
}

func ulGrant(slot uint64, tbBytes uint32) fronthaul.Section {
	return fronthaul.Section{
		UEID: 1, Dir: fronthaul.Uplink, NumPRB: 10,
		ModBits: uint8(dsp.QPSK), HARQID: 3, NewData: true,
		TBBytes: tbBytes, GrantSlot: slot,
	}
}

func dlAssign(slot uint64) fronthaul.Section {
	return fronthaul.Section{
		UEID: 1, Dir: fronthaul.Downlink, StartPRB: 0, NumPRB: 10,
		ModBits: uint8(dsp.QAM16), HARQID: 2, NewData: true,
		TBBytes: 200, GrantSlot: slot,
	}
}

func TestAttachAndState(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 25)
	if u.State() != StateIdle || u.Connected() {
		t.Fatal("initial state wrong")
	}
	var transitions []State
	u.OnStateChange = func(s State) { transitions = append(transitions, s) }
	u.Attach()
	if !u.Connected() || u.Stats.Attaches != 1 {
		t.Fatal("attach failed")
	}
	if len(transitions) != 1 || transitions[0] != StateConnected {
		t.Fatalf("transitions = %v", transitions)
	}
	if StateIdle.String() != "idle" || StateConnected.String() != "connected" || StateDetached.String() != "detached" {
		t.Fatal("state strings")
	}
	u.Stop()
}

func TestUplinkTransmissionOnGrant(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 30)
	u.Attach()
	u.SendUplink([]byte("payload"))
	u.DeliverControl(10, []fronthaul.Section{ulGrant(14, 100)})

	iq, aux, ok := u.PullUplink(14)
	if !ok {
		t.Fatal("no transmission despite grant")
	}
	if len(aux) == 0 || len(iq) == 0 {
		t.Fatal("empty transmission")
	}
	if u.Stats.ULBlocksSent != 1 {
		t.Fatalf("ULBlocksSent = %d", u.Stats.ULBlocksSent)
	}
	// The grant is consumed.
	if _, _, again := u.PullUplink(14); again {
		t.Fatal("grant reusable")
	}
	// The transmitted block decodes at the PHY-side codec.
	codec := phy.NewCodec(0, 0, 9, cellSeed)
	out := codec.DecodeBlock(iq, 14, 1, dsp.QPSK, nil, 0, true, 8)
	if !out.OK {
		t.Fatalf("PHY failed to decode UE transmission (SNR est %.1f)", out.SNRdB)
	}
	u.Stop()
}

func TestUplinkRetransmissionUsesStoredTB(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 30)
	u.Attach()
	u.SendUplink([]byte("first"))
	u.DeliverControl(10, []fronthaul.Section{ulGrant(14, 100)})
	_, aux1, _ := u.PullUplink(14)

	retx := ulGrant(19, 100)
	retx.NewData = false
	retx.Rv = 1
	u.DeliverControl(15, []fronthaul.Section{retx})
	u.SendUplink([]byte("second")) // must NOT be consumed by the retx
	_, aux2, ok := u.PullUplink(19)
	if !ok {
		t.Fatal("no retransmission")
	}
	if string(aux1) != string(aux2) {
		t.Fatal("retransmission sent different TB bytes")
	}
	u.Stop()
}

func TestNoTransmissionWithoutGrantOrWhenDetached(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 30)
	u.Attach()
	if _, _, ok := u.PullUplink(4); ok {
		t.Fatal("transmitted without grant")
	}
	u.DeliverControl(2, []fronthaul.Section{ulGrant(4, 100)})
	u.ForceReattach() // detach
	if _, _, ok := u.PullUplink(4); ok {
		t.Fatal("transmitted while detached")
	}
	u.Stop()
}

// deliverDL pushes one downlink transport block through the UE's receive
// chain using a PHY-side codec, like the RU would.
func deliverDL(t *testing.T, u *UE, slot uint64, tb []byte) {
	t.Helper()
	sec := dlAssign(slot)
	u.DeliverControl(slot, []fronthaul.Section{sec})
	codec := phy.NewCodec(0, 0, 9, cellSeed)
	iq := phy.PadSymbols(codec.EncodeBlock(tb, slot, 1, dsp.QAM16))
	pkt, err := fronthaul.NewDownlinkIQ(0, 0, fronthaul.SlotFromCounter(slot), 0, 10, iq, 9)
	if err != nil {
		t.Fatal(err)
	}
	pkt.Section = 1
	pkt.Aux = tb
	u.DeliverDownlink(slot, pkt)
}

func TestDownlinkDecodeAndDelivery(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 30)
	u.Attach()
	var got [][]byte
	u.OnDownlink = func(p []byte) { got = append(got, p) }

	// Build an RLC PDU holding one packet, as the L2 would.
	l2tx := newSegmenter()
	l2tx.Enqueue([]byte("hello ue"))
	pdu := l2tx.BuildPDU(200)
	deliverDL(t, u, 5, pdu)

	if u.Stats.DLBlocksOK != 1 {
		t.Fatalf("DLBlocksOK = %d (fails %d)", u.Stats.DLBlocksOK, u.Stats.DLBlocksFail)
	}
	if len(got) != 1 || string(got[0]) != "hello ue" {
		t.Fatalf("delivered %q", got)
	}
	// ACK queued for the RU to collect.
	uci := u.CollectUCI()
	foundAck := false
	for _, r := range uci {
		if r.HasFeedback && r.ACK && r.HARQID == 2 {
			foundAck = true
		}
	}
	if !foundAck {
		t.Fatalf("no ACK in UCI: %+v", uci)
	}
	u.Stop()
}

func TestDownlinkLowSNRNacks(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, -3) // hopeless channel for 16QAM
	u.Attach()
	l2tx := newSegmenter()
	l2tx.Enqueue([]byte("zzz"))
	deliverDL(t, u, 5, l2tx.BuildPDU(200))
	if u.Stats.DLBlocksFail != 1 {
		t.Fatalf("DLBlocksFail = %d", u.Stats.DLBlocksFail)
	}
	nack := false
	for _, r := range u.CollectUCI() {
		if r.HasFeedback && !r.ACK {
			nack = true
		}
	}
	if !nack {
		t.Fatal("no NACK for failed decode")
	}
	u.Stop()
}

func TestRLFDeclaredAfterSyncLoss(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 25)
	u.Cfg.ReattachDelay = 500 * sim.Millisecond
	u.Cfg.ReattachJitter = 0
	attachCalls := 0
	u.TryAttach = func(x *UE) bool { attachCalls++; return true }
	u.Attach()
	// Sync except during a 100-200 ms outage window.
	stop := e.Every(0, 5*sim.Millisecond, "sync", func() {
		now := e.Now()
		if now < 100*sim.Millisecond || now > 200*sim.Millisecond {
			u.DeliverControl(phy.SlotAt(now), nil)
		}
	})
	e.RunUntil(170 * sim.Millisecond)
	if u.State() != StateDetached {
		t.Fatalf("state = %v 70ms after sync loss at RLF=50ms", u.State())
	}
	if u.Stats.RLFs != 1 {
		t.Fatalf("RLFs = %d", u.Stats.RLFs)
	}
	e.RunUntil(2 * sim.Second)
	stop()
	if !u.Connected() || attachCalls != 1 {
		t.Fatalf("reattach: connected=%v calls=%d", u.Connected(), attachCalls)
	}
	if u.Stats.Attaches != 2 {
		t.Fatalf("Attaches = %d", u.Stats.Attaches)
	}
	u.Stop()
}

func TestReattachRetriesUntilCellAlive(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 25)
	u.Cfg.ReattachDelay = 100 * sim.Millisecond
	u.Cfg.ReattachJitter = 0
	ready := false
	calls := 0
	u.TryAttach = func(x *UE) bool { calls++; return ready }
	u.Attach()
	e.RunUntil(60 * sim.Millisecond) // RLF at ~50ms (no sync ever delivered)
	if u.Connected() {
		t.Fatal("still connected without sync")
	}
	// The cell comes up at 500 ms and broadcasts sync from then on.
	e.At(500*sim.Millisecond, "cell-up", func() {
		ready = true
		e.Every(0, 5*sim.Millisecond, "sync", func() {
			u.DeliverControl(phy.SlotAt(e.Now()), nil)
		})
	})
	e.RunUntil(1 * sim.Second)
	if !u.Connected() {
		t.Fatal("never reattached once cell ready")
	}
	if calls < 2 {
		t.Fatalf("TryAttach calls = %d, want retries", calls)
	}
	u.Stop()
}

func TestForceReattachKeepsRLFCountClean(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 25)
	u.Cfg.ReattachDelay = 50 * sim.Millisecond
	u.Cfg.ReattachJitter = 0
	u.TryAttach = func(x *UE) bool { return true }
	u.Attach()
	u.ForceReattach()
	if u.State() != StateDetached {
		t.Fatal("ForceReattach did not detach")
	}
	if u.Stats.RLFs != 0 {
		t.Fatalf("RLFs = %d after ForceReattach (context loss, not radio failure)", u.Stats.RLFs)
	}
	e.RunUntil(1 * sim.Second)
	if !u.Connected() {
		t.Fatal("never reattached")
	}
	u.Stop()
}

func TestBearersResetOnDetach(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 25)
	u.Attach()
	u.SendUplink([]byte("stale"))
	u.DeliverControl(2, []fronthaul.Section{ulGrant(4, 100)})
	u.ForceReattach()
	if u.ULBacklog() != 0 {
		t.Fatal("UL backlog survived detach")
	}
	if _, _, ok := u.PullUplink(4); ok {
		t.Fatal("grant survived detach")
	}
	u.Stop()
}

func TestCQIReportingPeriodic(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 25)
	u.Cfg.CQIPeriodSlots = 5
	u.Attach()
	// Prime the CQI filter with one decode.
	l2tx := newSegmenter()
	l2tx.Enqueue([]byte("x"))
	deliverDL(t, u, 5, l2tx.BuildPDU(100))
	u.CollectUCI()
	// Control on a multiple of the period queues a CQI-only report.
	u.DeliverControl(10, nil)
	found := false
	for _, r := range u.CollectUCI() {
		if !r.HasFeedback && r.CQIdB > 15 {
			found = true
		}
	}
	if !found {
		t.Fatal("no periodic CQI report")
	}
	u.Stop()
}

func TestStaleGrantsGarbageCollected(t *testing.T) {
	e := sim.NewEngine()
	u := newUE(e, 25)
	u.Attach()
	u.DeliverControl(2, []fronthaul.Section{ulGrant(4, 100)})
	// 30 slots later the grant must be gone.
	u.DeliverControl(34, nil)
	if _, _, ok := u.PullUplink(4); ok {
		t.Fatal("stale grant survived GC")
	}
	u.Stop()
}

// newSegmenter builds RLC PDUs the way the L2 does for downlink.
func newSegmenter() *rlc.Tx { return rlc.NewTx() }
