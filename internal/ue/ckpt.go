package ue

import (
	"sort"

	"slingshot/internal/ckpt/wire"
	"slingshot/internal/fronthaul"
)

// SnapshotTo writes the UE's full state: RRC machine, radio channel, RNG
// point, RLC bearers, both HARQ directions, and the grant/assignment
// lookahead maps in sorted-slot order. Parked HARQ TX buffers fold in as
// digests so pool-leased memory is never retained.
func (u *UE) SnapshotTo(w *wire.W) {
	s := &u.Stats
	w.U64(s.ULBlocksSent)
	w.U64(s.DLBlocksOK)
	w.U64(s.DLBlocksFail)
	w.U64(s.RLFs)
	w.U64(s.Attaches)
	w.U64(s.PacketsUp)
	w.U64(s.PacketsDown)
	w.U64(s.BytesDelivered)
	w.U8(uint8(u.state))
	w.I64(int64(u.lastSync))
	w.Bool(u.everSynced)
	w.U64(u.lastAdvSlot)
	w.I64(int64(u.gapSince))
	for _, v := range u.rng.State() {
		w.U64(v)
	}
	u.Channel.SnapshotTo(w)
	u.cqi.SnapshotTo(w)
	u.ulTx.SnapshotTo(w)
	u.dlRx.SnapshotTo(w)
	u.harqDL.SnapshotTo(w)

	procs := make([]int, 0, len(u.harqTx))
	for p := range u.harqTx {
		procs = append(procs, int(p))
	}
	sort.Ints(procs)
	w.U32(uint32(len(procs)))
	for _, p := range procs {
		tb := u.harqTx[uint8(p)]
		w.U8(uint8(p))
		w.U32(uint32(len(tb)))
		w.U64(wire.Hash64(tb))
	}

	grantSlots := make([]uint64, 0, len(u.grants))
	for slot := range u.grants {
		grantSlots = append(grantSlots, slot)
	}
	sort.Slice(grantSlots, func(i, j int) bool { return grantSlots[i] < grantSlots[j] })
	w.U32(uint32(len(grantSlots)))
	for _, slot := range grantSlots {
		w.U64(slot)
		snapSection(w, u.grants[slot])
	}

	assigSlots := make([]uint64, 0, len(u.dlAssig))
	for slot := range u.dlAssig {
		assigSlots = append(assigSlots, slot)
	}
	sort.Slice(assigSlots, func(i, j int) bool { return assigSlots[i] < assigSlots[j] })
	w.U32(uint32(len(assigSlots)))
	for _, slot := range assigSlots {
		w.U64(slot)
		secs := u.dlAssig[slot]
		w.U32(uint32(len(secs)))
		for _, sec := range secs {
			snapSection(w, sec)
		}
	}

	w.U32(uint32(len(u.uciQ)))
	for _, uci := range u.uciQ {
		w.U16(uci.UEID)
		w.U8(uci.HARQID)
		w.Bool(uci.HasFeedback)
		w.Bool(uci.ACK)
		w.F64(float64(uci.CQIdB))
	}
}

func snapSection(w *wire.W, s fronthaul.Section) {
	w.U16(s.UEID)
	w.U8(uint8(s.Dir))
	w.U16(s.StartPRB)
	w.U16(s.NumPRB)
	w.U8(s.ModBits)
	w.U8(s.HARQID)
	w.U8(s.Rv)
	w.Bool(s.NewData)
	w.U32(s.TBBytes)
	w.U64(s.GrantSlot)
}
