// Package ue models user equipment: the device-side PHY/MAC (sampled-
// fidelity codec, downlink HARQ soft buffers, uplink grant handling, UCI
// feedback), the RRC connectivity state machine with the radio-link-
// failure timer, and the multi-second reattach procedure that dominates
// outage time in the paper's no-Slingshot baseline (§8.1: 6.2 s).
package ue

import (
	"slingshot/internal/dsp"
	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/harq"
	"slingshot/internal/mem"
	"slingshot/internal/phy"
	"slingshot/internal/rlc"
	"slingshot/internal/sim"
)

// State is the UE's RRC connectivity state.
type State uint8

// UE states.
const (
	StateIdle State = iota
	StateConnected
	StateDetached // radio link failure declared; reattach in progress
)

func (s State) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateDetached:
		return "detached"
	default:
		return "idle"
	}
}

// Config parameterizes a UE.
type Config struct {
	ID   uint16
	Cell uint16
	Name string

	// Channel statistics.
	MeanSNRdB float64
	FadeStd   float64
	FadeCorr  float64

	// RLFTimeout is how long without downlink sync before the UE declares
	// radio link failure (50 ms in the paper's setup, §2.4).
	RLFTimeout sim.Time
	// ReattachDelay is the mean full-reattach duration after RLF: cell
	// search, RRC connection, registration with the core (6.2 s measured
	// in §8.1).
	ReattachDelay sim.Time
	// ReattachJitter randomizes the reattach duration.
	ReattachJitter sim.Time
	// CQIPeriodSlots is how often a CQI-only UCI report is queued.
	CQIPeriodSlots uint64
}

// DefaultConfig returns a UE with the paper's timing constants.
func DefaultConfig(id, cell uint16, name string, snr float64) Config {
	return Config{
		ID: id, Cell: cell, Name: name,
		MeanSNRdB: snr, FadeStd: 1.5, FadeCorr: 0.97,
		RLFTimeout:     50 * sim.Millisecond,
		ReattachDelay:  6200 * sim.Millisecond,
		ReattachJitter: 400 * sim.Millisecond,
		CQIPeriodSlots: 10,
	}
}

// Stats counts UE-side events.
type Stats struct {
	ULBlocksSent   uint64
	DLBlocksOK     uint64
	DLBlocksFail   uint64
	RLFs           uint64
	Attaches       uint64
	PacketsUp      uint64
	PacketsDown    uint64
	BytesDelivered uint64
}

// UE is one device.
type UE struct {
	Cfg     Config
	Engine  *sim.Engine
	Channel *dsp.Channel
	Stats   Stats

	// OnDownlink receives in-order upper-layer packets.
	OnDownlink func(pkt []byte)
	// OnStateChange observes RRC transitions.
	OnStateChange func(State)
	// TryAttach is the deployment hook: it must register the UE with the
	// serving L2 and return success. Called during reattach attempts.
	TryAttach func(u *UE) bool

	state      State
	codec      *phy.Codec
	lastSync   sim.Time
	everSynced bool

	ulTx   *rlc.Tx
	dlRx   *rlc.Rx
	harqDL *harq.Pool
	harqTx map[uint8][]byte

	grants  map[uint64]fronthaul.Section
	dlAssig map[uint64][]fronthaul.Section
	uciQ    []fapi.UCI
	cqi     harq.SNRFilter

	lastAdvSlot uint64
	gapSince    sim.Time

	rng       *sim.RNG
	stopTimer func()
}

// New creates a UE with its own channel and RNG stream.
func New(e *sim.Engine, cfg Config, rng *sim.RNG) *UE {
	u := &UE{
		Cfg:    cfg,
		Engine: e,
		rng:    rng,
	}
	u.Channel = dsp.NewChannel(cfg.MeanSNRdB, cfg.FadeStd, cfg.FadeCorr, rng.Fork(uint64(cfg.ID)+1))
	u.resetBearers()
	return u
}

// SetCellParams configures the codec from the cell's broadcast parameters
// (seed and BFP width). The deployment calls this at onboarding.
func (u *UE) SetCellParams(seed uint64, mantissa int) {
	u.codec = phy.NewCodec(0, 0, mantissa, seed)
}

func (u *UE) resetBearers() {
	u.ulTx = rlc.NewTx()
	u.dlRx = rlc.NewRx()
	u.harqDL = harq.NewPool()
	// HARQ TX buffers are pool-leased in PullUplink; a bearer reset is the
	// other exit point for buffers still parked in the map.
	for _, tb := range u.harqTx {
		mem.PutBytes(tb)
	}
	u.harqTx = make(map[uint8][]byte)
	u.grants = make(map[uint64]fronthaul.Section)
	u.dlAssig = make(map[uint64][]fronthaul.Section)
	u.uciQ = nil
}

// Attach connects the UE immediately (initial deployment bring-up).
func (u *UE) Attach() {
	u.setState(StateConnected)
	u.Stats.Attaches++
	u.lastSync = u.Engine.Now()
	u.everSynced = true
	u.startSupervision()
}

// State returns the UE's RRC state.
func (u *UE) State() State { return u.state }

// Connected reports whether the UE is attached and in sync.
func (u *UE) Connected() bool { return u.state == StateConnected }

func (u *UE) setState(s State) {
	if u.state == s {
		return
	}
	u.state = s
	if u.OnStateChange != nil {
		u.OnStateChange(s)
	}
}

// startSupervision runs the RLF timer and the RLC reassembly timer.
func (u *UE) startSupervision() {
	if u.stopTimer != nil {
		return
	}
	u.stopTimer = u.Engine.Every(5*sim.Millisecond, 5*sim.Millisecond, "ue.supervise", u.supervise)
}

// Stop halts the UE's timers (simulation teardown).
func (u *UE) Stop() {
	if u.stopTimer != nil {
		u.stopTimer()
		u.stopTimer = nil
	}
}

func (u *UE) supervise() {
	now := u.Engine.Now()
	if u.state == StateConnected && now-u.lastSync > u.Cfg.RLFTimeout {
		u.declareRLF()
		return
	}
	// RLC reassembly timeout: a head-of-line gap older than 40 ms is
	// abandoned so later packets flow. The window exceeds the MAC's
	// HARQ feedback timeout plus a retransmission round, so a TB lost to
	// a dead PHY normally arrives via HARQ retx before the gap is
	// discarded.
	if u.dlRx.HasGap() {
		if u.gapSince == 0 {
			u.gapSince = now
		} else if now-u.gapSince > 40*sim.Millisecond {
			u.deliverPackets(u.dlRx.SkipGap())
			u.gapSince = 0
		}
	} else {
		u.gapSince = 0
	}
}

// declareRLF drops the connection and begins the reattach procedure.
func (u *UE) declareRLF() {
	u.Stats.RLFs++
	u.setState(StateDetached)
	u.resetBearers()
	delay := u.Cfg.ReattachDelay
	if u.Cfg.ReattachJitter > 0 {
		delay += sim.Time(u.rng.Jitter(float64(u.Cfg.ReattachJitter)))
	}
	u.Engine.After(delay, "ue.reattach", u.tryReattach)
}

func (u *UE) tryReattach() {
	if u.state != StateDetached {
		return
	}
	if u.TryAttach != nil && u.TryAttach(u) {
		u.Stats.Attaches++
		u.setState(StateConnected)
		u.lastSync = u.Engine.Now()
		return
	}
	// Cell not ready; retry shortly (cell-search cadence).
	u.Engine.After(200*sim.Millisecond, "ue.reattach-retry", u.tryReattach)
}

// advanceChannel evolves fading once per slot.
func (u *UE) advanceChannel(slot uint64) {
	for u.lastAdvSlot < slot {
		u.Channel.Advance()
		u.lastAdvSlot++
	}
}

// SendUplink enqueues an upper-layer packet for uplink transmission.
func (u *UE) SendUplink(pkt []byte) {
	if u.state != StateConnected {
		return // no radio bearer
	}
	u.Stats.PacketsUp++
	u.ulTx.Enqueue(pkt)
}

// ULBacklog returns queued uplink bytes.
func (u *UE) ULBacklog() int { return u.ulTx.Backlog() }

// ID returns the UE identifier (RU-facing interface).
func (u *UE) ID() uint16 { return u.Cfg.ID }

// DeliverControl receives the slot's C-plane sections over the air. Any
// downlink reception is a sync signal that feeds the RLF timer.
func (u *UE) DeliverControl(absSlot uint64, secs []fronthaul.Section) {
	u.lastSync = u.Engine.Now()
	u.everSynced = true
	if u.state != StateConnected {
		return
	}
	u.advanceChannel(absSlot)
	for _, s := range secs {
		if s.UEID != u.Cfg.ID {
			continue
		}
		if s.Dir == fronthaul.Uplink {
			u.grants[s.GrantSlot] = s
		} else {
			// A slot may carry several DL PDUs for one UE (e.g. a HARQ
			// retransmission plus new data); keep them all and match
			// U-plane packets by allocation start PRB.
			u.dlAssig[s.GrantSlot] = append(u.dlAssig[s.GrantSlot], s)
		}
	}
	// Periodic CQI report.
	if u.Cfg.CQIPeriodSlots > 0 && absSlot%u.Cfg.CQIPeriodSlots == 0 && u.cqi.Primed() {
		u.uciQ = append(u.uciQ, fapi.UCI{UEID: u.Cfg.ID, CQIdB: float32(u.cqi.Value())})
	}
	// GC stale grants.
	for s := range u.grants {
		if s+20 < absSlot {
			delete(u.grants, s)
		}
	}
	for s := range u.dlAssig {
		if s+20 < absSlot {
			delete(u.dlAssig, s)
		}
	}
}

// DeliverDownlink receives a DL U-plane packet over the air: the UE passes
// the clean IQ through its own channel, runs the receive chain with its DL
// HARQ soft buffers, and queues ACK/NACK feedback.
func (u *UE) DeliverDownlink(absSlot uint64, pkt *fronthaul.Packet) {
	u.lastSync = u.Engine.Now()
	if u.state != StateConnected || u.codec == nil {
		return
	}
	if pkt.Section != u.Cfg.ID {
		return
	}
	var sec fronthaul.Section
	found := false
	for _, s := range u.dlAssig[absSlot] {
		if s.StartPRB == pkt.StartPRB {
			sec = s
			found = true
			break
		}
	}
	if !found {
		return
	}
	u.advanceChannel(absSlot)
	iq, err := pkt.IQ()
	if err != nil {
		return
	}
	rx := u.Channel.Transmit(iq)
	out := u.codec.DecodeBlock(rx, absSlot, u.Cfg.ID, dsp.Modulation(sec.ModBits),
		u.harqDL, sec.HARQID, sec.NewData, phy.DefaultFECIter)
	u.cqi.Observe(out.SNRdB)
	u.uciQ = append(u.uciQ, fapi.UCI{
		UEID: u.Cfg.ID, HARQID: sec.HARQID, HasFeedback: true, ACK: out.OK,
		CQIdB: float32(u.cqi.Value()),
	})
	if out.OK {
		u.Stats.DLBlocksOK++
		pkts, _ := u.dlRx.Ingest(pkt.Aux)
		u.deliverPackets(pkts)
	} else {
		u.Stats.DLBlocksFail++
	}
}

func (u *UE) deliverPackets(pkts [][]byte) {
	for _, p := range pkts {
		u.Stats.PacketsDown++
		u.Stats.BytesDelivered += uint64(len(p))
		if u.OnDownlink != nil {
			u.OnDownlink(p)
		}
	}
}

// PullUplink produces the UE's uplink transmission for a granted slot:
// channel-distorted block symbols plus the sidecar transport-block bytes.
// ok is false when the UE has no grant (or is detached) — radio silence.
func (u *UE) PullUplink(absSlot uint64) (iq []complex128, aux []byte, ok bool) {
	if u.state != StateConnected || u.codec == nil {
		return nil, nil, false
	}
	sec, exists := u.grants[absSlot]
	if !exists {
		return nil, nil, false
	}
	delete(u.grants, absSlot)
	u.advanceChannel(absSlot)

	var tb []byte
	if sec.NewData {
		if old, held := u.harqTx[sec.HARQID]; held {
			// The process's previous transmission was serialized onto the
			// wire during its own PullUplink, so no alias outlives it.
			mem.PutBytes(old)
		}
		tb = u.ulTx.AppendPDU(mem.GetBytesCap(int(sec.TBBytes)), int(sec.TBBytes))
		u.harqTx[sec.HARQID] = tb
	} else if stored, found := u.harqTx[sec.HARQID]; found {
		tb = stored
	} else {
		// Retransmission grant for a process we no longer have (e.g.
		// bearer reset); send fresh data instead.
		tb = u.ulTx.AppendPDU(mem.GetBytesCap(int(sec.TBBytes)), int(sec.TBBytes))
		u.harqTx[sec.HARQID] = tb
	}
	// Scrambling keys on the transmission slot. Descrambling happens
	// before HARQ combining on the receive side, so retransmissions under
	// different slot keys still combine coherently over the codeword.
	clean := phy.PadSymbols(u.codec.EncodeBlock(tb, absSlot, u.Cfg.ID, dsp.Modulation(sec.ModBits)))
	u.Stats.ULBlocksSent++
	return u.Channel.Transmit(clean), tb, true
}

// CollectUCI drains the queued UCI reports (the RU ships them on the UL
// C-plane every slot).
func (u *UE) CollectUCI() []fapi.UCI {
	out := u.uciQ
	u.uciQ = nil
	return out
}

// LastSync returns the time of the last downlink reception.
func (u *UE) LastSync() sim.Time { return u.lastSync }

// ForceReattach models RRC re-establishment rejection: the network lost
// this UE's context (e.g. failover to a backup vRAN with no shared state),
// so the UE must run the full reattach procedure even though the cell is
// still broadcasting. This is what makes the paper's no-Slingshot baseline
// cost 6.2 s of downtime (§8.1).
func (u *UE) ForceReattach() {
	if u.state != StateConnected {
		return
	}
	u.declareRLF()
	// ForceReattach is a context loss, not a radio failure; the RLF
	// counter tracks radio-driven failures separately.
	u.Stats.RLFs--
}
