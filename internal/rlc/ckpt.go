package rlc

import (
	"sort"

	"slingshot/internal/ckpt/wire"
)

// SnapshotTo writes the transmitter's backlog state. Packet contents fold
// in as FNV digests (length + hash per packet), computed immediately so
// no pool-backed buffer is retained by the snapshot.
func (t *Tx) SnapshotTo(w *wire.W) {
	w.U16(t.nextSN)
	w.U32(uint32(t.offset))
	w.U32(uint32(t.Queued))
	w.U32(uint32(len(t.queue)))
	for _, pkt := range t.queue {
		w.U32(uint32(len(pkt)))
		w.U64(wire.Hash64(pkt))
	}
}

// SnapshotTo writes the receiver's reordering state: window position, the
// pending PDU map in sorted SN order (digested), and the in-flight
// reassembly fragment.
func (r *Rx) SnapshotTo(w *wire.W) {
	w.U16(r.WindowSize)
	w.U16(r.expected)
	w.U64(r.Delivered)
	w.U64(r.Discarded)
	w.Bool(r.inPkt)
	w.U32(uint32(len(r.partial)))
	w.U64(wire.Hash64(r.partial))
	sns := make([]int, 0, len(r.pending))
	for sn := range r.pending {
		sns = append(sns, int(sn))
	}
	sort.Ints(sns)
	w.U32(uint32(len(sns)))
	for _, sn := range sns {
		pdu := r.pending[uint16(sn)]
		w.U16(uint16(sn))
		w.U32(uint32(len(pdu)))
		w.U64(wire.Hash64(pdu))
	}
}
