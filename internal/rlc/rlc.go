// Package rlc implements the Radio Link Control sublayer used by the L2
// and the UE: segmentation of upper-layer packets into transport-block
// sized PDUs, and in-order reassembly with a reordering window tolerant of
// HARQ-induced out-of-order delivery.
//
// We implement RLC Unacknowledged Mode (UM): sequence-numbered PDUs,
// reordering, and a reassembly timeout that discards stuck gaps. End-to-end
// reliability in the experiments comes from MAC HARQ retransmissions plus
// the transport layer (TCP), mirroring how the paper's impairments surface
// to applications. (See DESIGN.md for this AM→UM substitution note.)
package rlc

import (
	"encoding/binary"
	"errors"

	"slingshot/internal/mem"
	"slingshot/internal/trace"
)

// PDU layout: sn(2) | nSegs(2) | segments...
// Segment: flags(1) | len(2) | bytes. Flags bit0 = first fragment of a
// packet, bit1 = last fragment.
const (
	pduHeader = 4
	segHeader = 3

	flagFirst = 0x1
	flagLast  = 0x2
)

// ErrMalformed reports an undecodable PDU.
var ErrMalformed = errors.New("rlc: malformed PDU")

// Tx segments enqueued packets into PDUs.
type Tx struct {
	queue  [][]byte
	offset int // bytes of queue[0] already sent
	nextSN uint16
	// Queued tracks the backlog in bytes for scheduler buffer status.
	Queued int
}

// NewTx returns an empty transmitter.
func NewTx() *Tx { return &Tx{} }

// Enqueue adds an upper-layer packet to the backlog.
func (t *Tx) Enqueue(pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	t.queue = append(t.queue, pkt)
	t.Queued += len(pkt)
}

// Backlog returns the queued byte count.
func (t *Tx) Backlog() int { return t.Queued }

// QueueLen returns the number of queued (possibly partially-sent) packets.
func (t *Tx) QueueLen() int { return len(t.queue) }

// BuildPDU emits the next PDU of at most maxBytes, consuming backlog.
// It returns a PDU even when the backlog is empty (a padding PDU with zero
// segments) so MAC grants are always fillable. maxBytes below the minimum
// header still yields a padding PDU.
func (t *Tx) BuildPDU(maxBytes int) []byte {
	return t.AppendPDU(make([]byte, 0, maxInt(maxBytes, pduHeader)), maxBytes)
}

// AppendPDU is BuildPDU appending into dst (pass a recycled buffer to build
// a PDU without allocating). maxBytes bounds the PDU itself, not dst's
// prior contents.
func (t *Tx) AppendPDU(dst []byte, maxBytes int) []byte {
	base := len(dst)
	var hdr4 [pduHeader]byte
	binary.BigEndian.PutUint16(hdr4[0:2], t.nextSN)
	dst = append(dst, hdr4[:]...)
	t.nextSN++
	nSegs := 0
	for len(t.queue) > 0 {
		room := maxBytes - (len(dst) - base) - segHeader
		if room <= 0 {
			break
		}
		pkt := t.queue[0]
		remaining := len(pkt) - t.offset
		take := remaining
		if take > room {
			take = room
		}
		flags := byte(0)
		if t.offset == 0 {
			flags |= flagFirst
		}
		if take == remaining {
			flags |= flagLast
		}
		var hdr [segHeader]byte
		hdr[0] = flags
		binary.BigEndian.PutUint16(hdr[1:3], uint16(take))
		dst = append(dst, hdr[:]...)
		dst = append(dst, pkt[t.offset:t.offset+take]...)
		t.Queued -= take
		nSegs++
		if take == remaining {
			t.queue = t.queue[1:]
			t.offset = 0
		} else {
			t.offset += take
			break // PDU is full
		}
	}
	binary.BigEndian.PutUint16(dst[base+2:base+4], uint16(nSegs))
	return dst
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Rx reassembles PDUs into upper-layer packets, reordering by sequence
// number within a window.
type Rx struct {
	// WindowSize bounds how far ahead of the earliest gap we buffer.
	WindowSize uint16

	// expected starts at 0: every Rx pairs with a fresh Tx whose first
	// PDU carries SN 0, so even an out-of-order start reorders correctly.
	expected uint16
	pending  map[uint16][]byte

	// partial accumulates fragments of the packet currently being
	// reassembled across in-order PDUs.
	partial []byte
	inPkt   bool

	// Delivered and Discarded count packets for loss accounting.
	Delivered uint64
	Discarded uint64

	// Trace, when non-nil, records each discard; Cell and UE locate this
	// receiver in the cross-layer timeline. The owning L2 sets all three at
	// UE attach. Ingest runs only on the event-loop goroutine.
	Trace    *trace.Recorder
	Cell, UE uint16
}

// discard counts one abandoned packet and records it.
func (r *Rx) discard() {
	r.Discarded++
	if r.Trace != nil {
		r.Trace.Emit(trace.KindRLCDiscard, 0, r.Cell, r.UE, 0, r.Discarded)
	}
}

// NewRx returns a receiver with the default 64-PDU reordering window.
func NewRx() *Rx {
	return &Rx{WindowSize: 64, pending: make(map[uint16][]byte)}
}

// Ingest processes one received PDU and returns any packets that complete
// in order. Duplicate and ancient PDUs are dropped.
func (r *Rx) Ingest(pdu []byte) ([][]byte, error) {
	if len(pdu) < pduHeader {
		return nil, ErrMalformed
	}
	sn := binary.BigEndian.Uint16(pdu[0:2])
	if diff := sn - r.expected; diff >= r.WindowSize {
		// Behind the window (duplicate/ancient) or absurdly far ahead.
		if int16(sn-r.expected) < 0 {
			return nil, nil // old duplicate; drop silently
		}
		// Far ahead: jump the window, discarding the gap.
		r.flushGapTo(sn)
	}
	// The buffered copy is pool-backed: every exit from the pending map
	// (drain, flushGapTo, duplicate overwrite below) recycles it.
	if old, dup := r.pending[sn]; dup {
		mem.PutBytes(old)
	}
	r.pending[sn] = append(mem.GetBytesCap(len(pdu)), pdu...)
	return r.drain()
}

// flushGapTo abandons all SNs before sn (reassembly timeout semantics).
func (r *Rx) flushGapTo(sn uint16) {
	for s := r.expected; s != sn; s++ {
		if pdu, ok := r.pending[s]; ok {
			mem.PutBytes(pdu)
			delete(r.pending, s)
		} else if r.inPkt {
			// A missing PDU kills any packet spanning it.
			r.discard()
			r.partial = nil
			r.inPkt = false
		}
	}
	r.expected = sn
}

// SkipGap abandons the current head-of-line gap, delivering what follows.
// Callers invoke this on a reassembly timer.
func (r *Rx) SkipGap() [][]byte {
	if _, ok := r.pending[r.expected]; ok {
		return nil
	}
	if len(r.pending) == 0 {
		return nil
	}
	// Find the nearest buffered SN after expected.
	best := r.expected
	bestDiff := uint16(0xFFFF)
	for s := range r.pending {
		if d := s - r.expected; d < bestDiff {
			bestDiff = d
			best = s
		}
	}
	r.flushGapTo(best)
	out, _ := r.drain()
	return out
}

// HasGap reports whether the receiver is stalled on a missing PDU.
func (r *Rx) HasGap() bool {
	_, ok := r.pending[r.expected]
	return !ok && len(r.pending) > 0
}

func (r *Rx) drain() ([][]byte, error) {
	var out [][]byte
	for {
		pdu, ok := r.pending[r.expected]
		if !ok {
			break
		}
		delete(r.pending, r.expected)
		r.expected++
		pkts, err := r.parse(pdu)
		// parse copied every segment it kept into r.partial, so the
		// buffered PDU is dead either way.
		mem.PutBytes(pdu)
		if err != nil {
			return out, err
		}
		out = append(out, pkts...)
	}
	return out, nil
}

func (r *Rx) parse(pdu []byte) ([][]byte, error) {
	nSegs := int(binary.BigEndian.Uint16(pdu[2:4]))
	body := pdu[pduHeader:]
	var out [][]byte
	for i := 0; i < nSegs; i++ {
		if len(body) < segHeader {
			return out, ErrMalformed
		}
		flags := body[0]
		n := int(binary.BigEndian.Uint16(body[1:3]))
		body = body[segHeader:]
		if len(body) < n {
			return out, ErrMalformed
		}
		seg := body[:n]
		body = body[n:]

		if flags&flagFirst != 0 {
			if r.inPkt {
				// Previous packet never completed (lost tail).
				r.discard()
			}
			r.partial = nil
			r.inPkt = true
		}
		if !r.inPkt {
			// Continuation of a packet whose head was lost; count the
			// packet once, at its final fragment.
			if flags&flagLast != 0 {
				r.discard()
			}
			continue
		}
		r.partial = append(r.partial, seg...)
		if flags&flagLast != 0 {
			pkt := r.partial
			r.partial = nil
			r.inPkt = false
			r.Delivered++
			out = append(out, pkt)
		}
	}
	return out, nil
}

// Clone deep-copies the transmitter, for L2 checkpoint-restore migration
// (the paper's §10 direction: L2 layers have hard state that must be
// preserved, unlike the PHY's discardable soft state).
func (t *Tx) Clone() *Tx {
	c := &Tx{offset: t.offset, nextSN: t.nextSN, Queued: t.Queued}
	c.queue = make([][]byte, len(t.queue))
	for i, pkt := range t.queue {
		c.queue[i] = append([]byte(nil), pkt...)
	}
	return c
}

// Clone deep-copies the receiver.
func (r *Rx) Clone() *Rx {
	c := &Rx{
		WindowSize: r.WindowSize,
		expected:   r.expected,
		pending:    make(map[uint16][]byte, len(r.pending)),
		partial:    append([]byte(nil), r.partial...),
		inPkt:      r.inPkt,
		Delivered:  r.Delivered,
		Discarded:  r.Discarded,
		Trace:      r.Trace,
		Cell:       r.Cell,
		UE:         r.UE,
	}
	for sn, pdu := range r.pending {
		c.pending[sn] = append([]byte(nil), pdu...)
	}
	return c
}
