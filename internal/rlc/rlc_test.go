package rlc

import (
	"bytes"
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

func TestSinglePacketRoundTrip(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	tx.Enqueue([]byte("hello"))
	pdu := tx.BuildPDU(100)
	pkts, err := rx.Ingest(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || string(pkts[0]) != "hello" {
		t.Fatalf("pkts = %q", pkts)
	}
	if rx.Delivered != 1 {
		t.Fatalf("Delivered = %d", rx.Delivered)
	}
}

func TestMultiplePacketsOnePDU(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	tx.Enqueue([]byte("aaa"))
	tx.Enqueue([]byte("bb"))
	tx.Enqueue([]byte("cccc"))
	pkts, err := rx.Ingest(tx.BuildPDU(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 {
		t.Fatalf("got %d packets", len(pkts))
	}
	if tx.Backlog() != 0 || tx.QueueLen() != 0 {
		t.Fatal("backlog not drained")
	}
}

func TestFragmentationAcrossPDUs(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	big := bytes.Repeat([]byte{0xAB}, 500)
	tx.Enqueue(big)
	var got [][]byte
	for i := 0; i < 10 && tx.Backlog() > 0; i++ {
		pkts, err := rx.Ingest(tx.BuildPDU(100))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pkts...)
	}
	if len(got) != 1 || !bytes.Equal(got[0], big) {
		t.Fatalf("reassembly failed: %d packets", len(got))
	}
}

func TestPaddingPDUWhenEmpty(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	pkts, err := rx.Ingest(tx.BuildPDU(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 0 {
		t.Fatal("padding PDU produced packets")
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	tx.Enqueue([]byte("one"))
	tx.Enqueue([]byte("two"))
	p1 := tx.BuildPDU(12) // only "one" fits (4+3+3+... header math)
	p2 := tx.BuildPDU(12)
	// Deliver out of order: p2 first must be buffered.
	pkts, err := rx.Ingest(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 0 {
		t.Fatal("out-of-order PDU delivered early")
	}
	if !rx.HasGap() {
		t.Fatal("gap not reported")
	}
	pkts, err = rx.Ingest(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 || string(pkts[0]) != "one" || string(pkts[1]) != "two" {
		t.Fatalf("in-order drain wrong: %q", pkts)
	}
}

func TestSkipGapDiscardsSpanningPacket(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	big := bytes.Repeat([]byte{1}, 200)
	tx.Enqueue(big)
	tx.Enqueue([]byte("after"))
	p1 := tx.BuildPDU(110) // first half of big
	_ = p1
	p2 := tx.BuildPDU(110) // second half of big
	p3 := tx.BuildPDU(110) // "after"
	// p1 lost.
	if _, err := rx.Ingest(p2); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Ingest(p3); err != nil {
		t.Fatal(err)
	}
	pkts := rx.SkipGap()
	if len(pkts) != 1 || string(pkts[0]) != "after" {
		t.Fatalf("SkipGap delivered %q", pkts)
	}
	if rx.Discarded != 1 {
		t.Fatalf("Discarded = %d", rx.Discarded)
	}
}

func TestDuplicateDropped(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	tx.Enqueue([]byte("x"))
	pdu := tx.BuildPDU(100)
	if _, err := rx.Ingest(pdu); err != nil {
		t.Fatal(err)
	}
	pkts, err := rx.Ingest(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 0 {
		t.Fatal("duplicate delivered")
	}
	if rx.Delivered != 1 {
		t.Fatalf("Delivered = %d", rx.Delivered)
	}
}

func TestMalformedPDUs(t *testing.T) {
	rx := NewRx()
	if _, err := rx.Ingest([]byte{1}); err != ErrMalformed {
		t.Fatalf("short PDU: %v", err)
	}
	// Claims 1 segment but no body.
	bad := []byte{0, 0, 0, 1}
	if _, err := rx.Ingest(bad); err != ErrMalformed {
		t.Fatalf("truncated segment: %v", err)
	}
}

func TestWindowJumpDiscards(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	rx.WindowSize = 8
	var pdus [][]byte
	for i := 0; i < 20; i++ {
		tx.Enqueue([]byte{byte(i)})
		pdus = append(pdus, tx.BuildPDU(100))
	}
	// Deliver PDU 0, then jump to PDU 15 (outside window).
	if _, err := rx.Ingest(pdus[0]); err != nil {
		t.Fatal(err)
	}
	pkts, err := rx.Ingest(pdus[15])
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || pkts[0][0] != 15 {
		t.Fatalf("window jump delivered %v", pkts)
	}
	// Continue in order from 16.
	pkts, _ = rx.Ingest(pdus[16])
	if len(pkts) != 1 || pkts[0][0] != 16 {
		t.Fatalf("post-jump delivery %v", pkts)
	}
}

// TestStreamProperty pushes random packets through a lossless but
// reordering-prone channel and verifies byte-exact in-order delivery.
func TestStreamProperty(t *testing.T) {
	rng := sim.NewRNG(42)
	f := func(sizes []uint16, grant uint8) bool {
		tx, rx := NewTx(), NewRx()
		var want [][]byte
		for i, s := range sizes {
			pkt := make([]byte, int(s)%1500+1)
			for j := range pkt {
				pkt[j] = byte(i + j)
			}
			tx.Enqueue(append([]byte(nil), pkt...))
			want = append(want, pkt)
		}
		grantSize := int(grant)%300 + 20
		var got [][]byte
		for tx.Backlog() > 0 {
			pkts, err := rx.Ingest(tx.BuildPDU(grantSize))
			if err != nil {
				return false
			}
			got = append(got, pkts...)
		}
		// Flush trailing padding PDU (no-op) and compare.
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLossProperty drops random PDUs and verifies every delivered packet
// is byte-exact (no corruption, only loss) after gaps are skipped.
func TestLossProperty(t *testing.T) {
	rng := sim.NewRNG(77)
	f := func(n uint8, lossSeed uint16) bool {
		tx, rx := NewTx(), NewRx()
		count := int(n)%30 + 5
		want := map[string]bool{}
		for i := 0; i < count; i++ {
			pkt := []byte{byte(i), byte(i * 3), byte(i * 7)}
			tx.Enqueue(append([]byte(nil), pkt...))
			want[string(pkt)] = true
		}
		loss := sim.NewRNG(uint64(lossSeed))
		var delivered [][]byte
		for tx.Backlog() > 0 {
			pdu := tx.BuildPDU(40)
			if loss.Bool(0.3) {
				continue
			}
			pkts, err := rx.Ingest(pdu)
			if err != nil {
				return false
			}
			delivered = append(delivered, pkts...)
		}
		delivered = append(delivered, rx.SkipGap()...)
		for _, pkt := range delivered {
			if !want[string(pkt)] {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	tx := NewTx()
	tx.Enqueue([]byte("aaaa"))
	tx.Enqueue([]byte("bbbb"))
	tx.BuildPDU(9) // partially send "aaaa"
	clone := tx.Clone()
	if clone.Backlog() != tx.Backlog() {
		t.Fatalf("clone backlog %d != %d", clone.Backlog(), tx.Backlog())
	}
	// Draining the original must not affect the clone.
	for tx.Backlog() > 0 {
		tx.BuildPDU(50)
	}
	if clone.Backlog() == 0 {
		t.Fatal("clone shares state with original")
	}
	// The clone continues the SN space correctly: a fresh Rx fed the
	// original's first PDU then the clone's next PDUs reassembles.
	rx := NewRx()
	tx2 := NewTx()
	tx2.Enqueue([]byte("aaaa"))
	tx2.Enqueue([]byte("bbbb"))
	first := tx2.BuildPDU(9)
	cl := tx2.Clone()
	var pkts [][]byte
	p, _ := rx.Ingest(first)
	pkts = append(pkts, p...)
	for cl.Backlog() > 0 {
		p, _ = rx.Ingest(cl.BuildPDU(50))
		pkts = append(pkts, p...)
	}
	if len(pkts) != 2 || string(pkts[0]) != "aaaa" || string(pkts[1]) != "bbbb" {
		t.Fatalf("handoff reassembly: %q", pkts)
	}
}

func TestRxCloneIndependence(t *testing.T) {
	tx, rx := NewTx(), NewRx()
	tx.Enqueue([]byte("one"))
	tx.Enqueue([]byte("two"))
	p1 := tx.BuildPDU(12)
	p2 := tx.BuildPDU(12)
	rx.Ingest(p2) // buffered out-of-order
	clone := rx.Clone()
	pkts, _ := rx.Ingest(p1)
	if len(pkts) != 2 {
		t.Fatalf("original drained %d", len(pkts))
	}
	// Clone still has the gap and can be completed independently.
	pkts, _ = clone.Ingest(p1)
	if len(pkts) != 2 {
		t.Fatalf("clone drained %d", len(pkts))
	}
}
