// Package ckpt implements versioned, fingerprinted whole-deployment
// snapshots for sharded fleets, and the verified-replay Restore path that
// makes them a time-travel primitive.
//
// A snapshot is taken at a lockstep TTI barrier — the only instant the
// fleet is globally consistent — and carries three things: the normalized
// fleet config, the barrier time, and a canonical section-framed image of
// every layer's live state (engine queues, RNG points, PHY/HARQ/RLC/L2/
// UE/RU/Orion/switch state, mailbox, spare-pool ledgers, chaos-checker
// cursors, trace counters). Event-queue closures cannot be serialized, so
// Restore reconstructs a fleet by deterministic re-execution from time
// zero to the barrier and then byte-compares the re-captured state image
// against the snapshot's. A mismatch is an error naming the diverging
// section — never a silent divergence. The determinism contract the rest
// of the repo defends (byte-identical runs at any shards × workers ×
// pooling) is exactly what makes this replay-anchored restore sound.
package ckpt

import (
	"bytes"
	"fmt"

	"slingshot/internal/ckpt/wire"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

// Magic heads every encoded snapshot.
const Magic = "SLNGCKPT"

// Version is the current snapshot codec version. Decode rejects any other
// value: snapshot layouts are pinned per-version and there are no
// cross-version migrations (a snapshot is a debugging artifact, not an
// archival format — see DESIGN.md §14 for the policy).
const Version uint16 = 1

// Snapshot is one captured barrier.
type Snapshot struct {
	// At is the barrier's virtual time; Steps is its index on the barrier
	// grid (At / Cfg.Step, with the final partial step counting as one).
	At    sim.Time
	Steps uint64

	// Cfg is the normalized fleet config the run was built from; Restore
	// rebuilds from it, so a snapshot is self-contained.
	Cfg shard.Config

	// State is the canonical section stream written by Fleet.SnapshotTo.
	State []byte

	// Fingerprint is FNV-1a over the encoded header+meta+config+state,
	// computed by Encode and verified by Decode.
	Fingerprint uint64
}

// Capture snapshots a fleet at its current barrier. Call only between
// Step calls (or before the first / after the last).
func Capture(f *shard.Fleet) *Snapshot {
	w := wire.NewW()
	f.SnapshotTo(w)
	cfg := f.Config()
	at := f.Now()
	steps := uint64(0)
	if cfg.Step > 0 {
		steps = uint64((at + cfg.Step - 1) / cfg.Step)
	}
	return &Snapshot{At: at, Steps: steps, Cfg: cfg, State: w.Bytes()}
}

// Encode renders the snapshot in its canonical byte form and stamps
// Fingerprint.
func (s *Snapshot) Encode() []byte {
	w := wire.NewW()
	w.Str(Magic)
	w.U16(Version)
	w.Section("meta", func(w *wire.W) {
		w.I64(int64(s.At))
		w.U64(s.Steps)
	})
	w.Section("config", func(w *wire.W) {
		encodeConfig(w, s.Cfg)
	})
	w.Section("state", func(w *wire.W) {
		w.Blob(s.State)
	})
	s.Fingerprint = wire.Hash64(w.Bytes())
	w.U64(s.Fingerprint)
	return w.Bytes()
}

// Decode parses and validates a canonical snapshot. It never panics on
// hostile input, and rejects truncation, bit flips (fingerprint), version
// skew, unknown sections, and trailing bytes. Accepted inputs re-encode
// byte-identically (the codec's canonicality fixed point).
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("ckpt: %w", wire.ErrTruncated)
	}
	body, tail := b[:len(b)-8], b[len(b)-8:]
	want := wire.NewR(tail).U64()
	if got := wire.Hash64(body); got != want {
		return nil, fmt.Errorf("ckpt: fingerprint mismatch (got %016x want %016x): corrupt snapshot", got, want)
	}
	r := wire.NewR(body)
	if r.Str() != Magic {
		return nil, fmt.Errorf("ckpt: bad magic: not a snapshot")
	}
	if v := r.U16(); v != Version {
		return nil, fmt.Errorf("ckpt: snapshot version %d, this build reads only version %d", v, Version)
	}
	s := &Snapshot{Fingerprint: want}
	for _, wantName := range []string{"meta", "config", "state"} {
		name, sec := r.Section()
		if r.Err() != nil {
			return nil, fmt.Errorf("ckpt: %w", r.Err())
		}
		if name != wantName {
			return nil, fmt.Errorf("ckpt: section %q where %q expected", name, wantName)
		}
		switch wantName {
		case "meta":
			s.At = sim.Time(sec.I64())
			s.Steps = sec.U64()
		case "config":
			cfg, err := decodeConfig(sec)
			if err != nil {
				return nil, err
			}
			s.Cfg = cfg
		case "state":
			s.State = sec.Blob()
		}
		if err := sec.Close(); err != nil {
			return nil, fmt.Errorf("ckpt: %s section: %w", wantName, err)
		}
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if s.At < 0 {
		return nil, fmt.Errorf("ckpt: negative barrier time %d", s.At)
	}
	return s, nil
}

// configVersion guards the config layout inside the snapshot; bumping the
// field set bumps this, and Decode rejects the skew explicitly instead of
// misparsing old bytes.
const configVersion uint16 = 1

func encodeConfig(w *wire.W, c shard.Config) {
	w.U16(configVersion)
	w.U32(uint32(c.Cells))
	w.U32(uint32(c.UEs))
	w.U32(uint32(c.Shards))
	w.U64(c.Seed)
	w.I64(int64(c.Horizon))
	w.I64(int64(c.Step))
	w.I64(int64(c.Settle))
	w.I64(int64(c.TrafficPeriod))
	w.U32(uint32(c.PacketBytes))
	w.I64(int64(c.BackhaulPeriod))
	w.I64(int64(c.BackhaulLatency))
	w.U32(uint32(c.Kills))
	w.U32(uint32(c.Spares))
	w.U32(uint32(c.Migrations))
	w.U32(uint32(c.Topo.Zones))
	w.U32(uint32(c.Topo.ZoneSpares))
	w.U32(uint32(c.Topo.OverflowSpares))
	w.I64(int64(c.Topo.CrossZonePenalty))
	w.U32(uint32(c.RackLosses))
	w.U32(uint32(c.Partitions))
	w.I64(int64(c.PartitionLen))
	w.U32(uint32(c.UpgradeWaves))
	w.I64(int64(c.WaveStride))
	w.I64(int64(c.UpgradeHold))
	w.I64(int64(c.RecoveryDeadline))
	w.U32(uint32(c.MaxRetries))
	w.Bool(c.Trace)
	w.I64(int64(c.RogueAt))
	w.U32(uint32(c.RogueCell))
}

func decodeConfig(r *wire.R) (shard.Config, error) {
	var c shard.Config
	if v := r.U16(); r.Err() == nil && v != configVersion {
		return c, fmt.Errorf("ckpt: config layout version %d, want %d", v, configVersion)
	}
	c.Cells = int(r.U32())
	c.UEs = int(r.U32())
	c.Shards = int(r.U32())
	c.Seed = r.U64()
	c.Horizon = sim.Time(r.I64())
	c.Step = sim.Time(r.I64())
	c.Settle = sim.Time(r.I64())
	c.TrafficPeriod = sim.Time(r.I64())
	c.PacketBytes = int(r.U32())
	c.BackhaulPeriod = sim.Time(r.I64())
	c.BackhaulLatency = sim.Time(r.I64())
	c.Kills = int(r.U32())
	c.Spares = int(r.U32())
	c.Migrations = int(r.U32())
	c.Topo.Zones = int(r.U32())
	c.Topo.ZoneSpares = int(r.U32())
	c.Topo.OverflowSpares = int(r.U32())
	c.Topo.CrossZonePenalty = sim.Time(r.I64())
	c.RackLosses = int(r.U32())
	c.Partitions = int(r.U32())
	c.PartitionLen = sim.Time(r.I64())
	c.UpgradeWaves = int(r.U32())
	c.WaveStride = sim.Time(r.I64())
	c.UpgradeHold = sim.Time(r.I64())
	c.RecoveryDeadline = sim.Time(r.I64())
	c.MaxRetries = int(r.U32())
	c.Trace = r.Bool()
	c.RogueAt = sim.Time(r.I64())
	c.RogueCell = int(r.U32())
	if err := r.Err(); err != nil {
		return c, fmt.Errorf("ckpt: config: %w", err)
	}
	return c, nil
}

// Restore rebuilds a live fleet from the snapshot: construct from the
// embedded config, deterministically re-execute to the snapshot barrier,
// then byte-verify the re-captured state image against the snapshot's.
// The returned fleet is parked at the barrier, ready to Step onward.
func Restore(s *Snapshot) (*shard.Fleet, error) {
	return RestoreExec(s, 0)
}

// RestoreExec is Restore with the execution-only shard-group knob
// overridden (0 keeps the embedded value). Shard count never changes
// state bytes — that is the repo's core invariant — so restoring a
// 1-shard snapshot on 4 shard groups must verify cleanly, and this is the
// hook tests use to prove it.
func RestoreExec(s *Snapshot, shards int) (*shard.Fleet, error) {
	cfg := s.Cfg
	if shards > 0 {
		cfg.Shards = shards
	}
	f, err := shard.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("ckpt: rebuilding fleet: %w", err)
	}
	f.Start()
	for f.Now() < s.At {
		done, err := f.Step()
		if err != nil {
			return nil, fmt.Errorf("ckpt: replaying to barrier %v: %w", s.At, err)
		}
		if done && f.Now() < s.At {
			return nil, fmt.Errorf("ckpt: snapshot barrier %v beyond horizon %v", s.At, f.Config().Horizon)
		}
	}
	if f.Now() != s.At {
		return nil, fmt.Errorf("ckpt: replay landed at %v, snapshot barrier is %v (step grid mismatch)", f.Now(), s.At)
	}
	w := wire.NewW()
	f.SnapshotTo(w)
	if !bytes.Equal(w.Bytes(), s.State) {
		return nil, fmt.Errorf("ckpt: restored state diverges from snapshot at section %s", wire.Diff(s.State, w.Bytes()))
	}
	return f, nil
}
