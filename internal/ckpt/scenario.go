package ckpt

import (
	"fmt"
	"sort"

	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

// Scenario builds a named fleet config sized to cells/ues — the shared
// vocabulary between slingshotd's -scenario flag, the restore-replay test
// matrix, and check.sh's checkpoint lane. Every scenario is a
// shard.Config, so one capture/restore path serves them all; "fig8" is
// the single-cell video deployment expressed as a 1-cell fleet.
func Scenario(name string, cells, ues int) (shard.Config, error) {
	switch name {
	case "fig8":
		cfg := shard.DefaultConfig(1, 4)
		cfg.Horizon = 200 * sim.Millisecond
		cfg.Kills = 1
		cfg.Spares = 1
		return cfg, nil
	case "metro":
		return shard.DefaultConfig(cells, ues), nil
	case "fleet-chaos":
		return shard.ChaosConfig(cells, ues), nil
	case "frontier-sample":
		cfg, err := shard.CorrelatedConfig("rack-loss", cells, ues)
		if err != nil {
			return shard.Config{}, err
		}
		shard.ApplySpareRatio(&cfg, 0.5)
		return cfg, nil
	default:
		return shard.Config{}, fmt.Errorf("ckpt: unknown scenario %q (have %v)", name, ScenarioNames())
	}
}

// ScenarioNames lists the registry in sorted order.
func ScenarioNames() []string {
	names := []string{"fig8", "metro", "fleet-chaos", "frontier-sample"}
	sort.Strings(names)
	return names
}
