package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"slingshot/internal/sim"
)

func TestManagerSaveLoadNearest(t *testing.T) {
	m := &Manager{Dir: t.TempDir()}
	f := tinyFleet(t, 9, 0)
	var saved []*Snapshot
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			if _, err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
		s := Capture(f)
		if _, err := m.Save(s); err != nil {
			t.Fatal(err)
		}
		saved = append(saved, s)
	}
	ats, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ats) != 3 {
		t.Fatalf("listed %d snapshots, want 3", len(ats))
	}
	// Nearest below the second barrier returns the first; "latest" (-1)
	// returns the third.
	got, err := m.Nearest(saved[1].At - sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.At != saved[0].At {
		t.Fatalf("nearest(%v) = %v, want %v", saved[1].At-sim.Microsecond, got.At, saved[0].At)
	}
	got, err = m.Nearest(-1)
	if err != nil {
		t.Fatal(err)
	}
	if got.At != saved[2].At || !bytes.Equal(got.State, saved[2].State) {
		t.Fatal("latest snapshot did not round-trip")
	}
	if _, err := m.Nearest(saved[0].At - sim.Microsecond); err == nil {
		t.Fatal("nearest before the first snapshot should fail")
	}
}

// TestPartialCheckpointNeverObservable is the crash-mid-TTI satellite: a
// writer dying mid-checkpoint must leave nothing a reader could mistake
// for a snapshot. The manager writes to a dot-temp name and renames, so
// (a) leftover temp files are invisible to List/Nearest, and (b) any file
// that does carry the final name is complete and fingerprint-valid —
// a torn final-name file (what a non-atomic writer would leave) is
// rejected by Decode rather than restored from.
func TestPartialCheckpointNeverObservable(t *testing.T) {
	m := &Manager{Dir: t.TempDir()}
	f := tinyFleet(t, 5, 15)
	good := Capture(f)
	if _, err := m.Save(good); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: a half-written temp file left behind.
	enc := good.Encode()
	tmpName := filepath.Join(m.Dir, tmpPrefix+"123456")
	if err := os.WriteFile(tmpName, enc[:len(enc)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	ats, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ats) != 1 {
		t.Fatalf("temp file leaked into the listing: %v", ats)
	}
	got, err := m.Nearest(-1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.State, good.State) {
		t.Fatal("nearest returned corrupted state")
	}

	// A torn file under a *final* name (non-atomic writer) must fail
	// decode — and therefore can never silently restore.
	torn := m.Path(good.At + sim.Millisecond)
	if err := os.WriteFile(torn, enc[:len(enc)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(torn); err == nil {
		t.Fatal("torn snapshot file loaded without error")
	}
	// Restore from the valid one still works end to end.
	if _, err := Restore(got); err != nil {
		t.Fatal(err)
	}
}
