// Package wire is the canonical byte codec underneath deployment
// snapshots (internal/ckpt). It is deliberately dependency-free so every
// layer package — sim, phy, l2, shard, chaos — can serialize its state
// into a snapshot section without import cycles.
//
// Canonicality is the load-bearing property: one logical state has
// exactly one encoding. All integers are fixed-width big-endian, strings
// and blobs are length-prefixed, maps are only ever written in sorted key
// order by callers, and the reader rejects anything the writer could not
// have produced (truncation, oversized lengths, trailing bytes). That is
// what lets the snapshot fixed-point property hold bytewise and lets the
// fuzzer assert decode(encode(x)) == x.
package wire

import (
	"errors"
	"fmt"
	"math"
)

// Hash64 is FNV-1a over a byte slice, the snapshot fingerprint primitive.
func Hash64(b []byte) uint64 {
	return HashMore(HashInit, b)
}

// HashInit is the FNV-1a offset basis.
const HashInit = uint64(0xcbf29ce484222325)

const hashPrime = uint64(0x100000001b3)

// HashMore folds more bytes into a running FNV-1a hash.
func HashMore(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= hashPrime
	}
	return h
}

// HashU64 folds a uint64 (big-endian) into a running FNV-1a hash.
func HashU64(h uint64, v uint64) uint64 {
	var b [8]byte
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	return HashMore(h, b[:])
}

// HashF64 folds a float64's IEEE-754 bit pattern into a running hash.
func HashF64(h uint64, v float64) uint64 {
	return HashU64(h, math.Float64bits(v))
}

// W is an append-only canonical writer.
type W struct {
	b []byte
}

// NewW returns an empty writer.
func NewW() *W { return &W{} }

// Bytes returns the encoded buffer (aliased, not copied).
func (w *W) Bytes() []byte { return w.b }

// Len returns the number of bytes written so far.
func (w *W) Len() int { return len(w.b) }

// U8 writes one byte.
func (w *W) U8(v uint8) { w.b = append(w.b, v) }

// Bool writes a boolean as one byte (0 or 1).
func (w *W) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 writes a big-endian uint16.
func (w *W) U16(v uint16) { w.b = append(w.b, byte(v>>8), byte(v)) }

// U32 writes a big-endian uint32.
func (w *W) U32(v uint32) {
	w.b = append(w.b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// U64 writes a big-endian uint64.
func (w *W) U64(v uint64) {
	w.b = append(w.b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// I64 writes a big-endian int64 (two's complement).
func (w *W) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern.
func (w *W) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (w *W) Str(s string) {
	w.U32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// Blob writes a length-prefixed byte slice. The bytes are copied into the
// writer's buffer immediately, so pooled buffers may be recycled by the
// caller right after the call — a snapshot never retains pooled memory.
func (w *W) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.b = append(w.b, b...)
}

// Section writes a named, length-prefixed subsection: fn's output becomes
// the section body. Sections give snapshots a diffable shape — see Diff.
func (w *W) Section(name string, fn func(*W)) {
	w.Str(name)
	lenAt := len(w.b)
	w.U32(0) // backpatched below
	start := len(w.b)
	fn(w)
	n := len(w.b) - start
	w.b[lenAt] = byte(n >> 24)
	w.b[lenAt+1] = byte(n >> 16)
	w.b[lenAt+2] = byte(n >> 8)
	w.b[lenAt+3] = byte(n)
}

// Reader errors. ErrTruncated covers every short read; ErrOversized
// covers length prefixes that overrun the remaining input.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrOversized = errors.New("wire: length prefix exceeds input")
)

// R is a bounds-checked canonical reader. The first failure latches into
// Err; all subsequent reads return zero values. R never panics on hostile
// input.
type R struct {
	b   []byte
	off int
	err error
}

// NewR returns a reader over b.
func NewR(b []byte) *R { return &R{b: b} }

// Err returns the first decoding error, or nil.
func (r *R) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *R) Remaining() int { return len(r.b) - r.off }

// More reports whether any unread bytes remain and no error has latched.
func (r *R) More() bool { return r.err == nil && r.off < len(r.b) }

// Close verifies the input was consumed exactly. Trailing bytes are a
// canonicality violation and latch an error.
func (r *R) Close() error {
	if r.err == nil && r.off != len(r.b) {
		r.err = fmt.Errorf("wire: %d trailing bytes", len(r.b)-r.off)
	}
	return r.err
}

func (r *R) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *R) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// U8 reads one byte.
func (r *R) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean, rejecting non-canonical encodings (not 0/1).
func (r *R) Bool() bool {
	v := r.U8()
	if r.err == nil && v > 1 {
		r.fail(fmt.Errorf("wire: non-canonical bool byte %d", v))
		return false
	}
	return v == 1
}

// U16 reads a big-endian uint16.
func (r *R) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

// U32 reads a big-endian uint32.
func (r *R) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// U64 reads a big-endian uint64.
func (r *R) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// I64 reads a big-endian int64.
func (r *R) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *R) F64() float64 { return math.Float64frombits(r.U64()) }

// lenPrefix reads a u32 length and validates it against the remaining
// input, so hostile prefixes cannot trigger huge allocations.
func (r *R) lenPrefix() int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n > r.Remaining() {
		r.fail(ErrOversized)
		return 0
	}
	return n
}

// Str reads a length-prefixed string.
func (r *R) Str() string {
	n := r.lenPrefix()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice (copied out of the input).
func (r *R) Blob() []byte {
	n := r.lenPrefix()
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Section reads one named section and returns its name and a sub-reader
// over the body. On error it returns an empty name and a drained reader.
func (r *R) Section() (string, *R) {
	name := r.Str()
	n := r.lenPrefix()
	body := r.take(n)
	if r.err != nil {
		return "", NewR(nil)
	}
	return name, NewR(body)
}

// Diff walks two section streams and describes the first difference as a
// /-separated path of section names — the time-travel debugger's "which
// layer diverged" answer. Empty string means the streams are identical.
func Diff(a, b []byte) string {
	return diffPath(NewR(a), NewR(b), "")
}

func diffPath(ra, rb *R, prefix string) string {
	for ra.More() || rb.More() {
		if !ra.More() || !rb.More() {
			return prefix + "/<section-count>"
		}
		na, ba := ra.Section()
		nb, bb := rb.Section()
		if ra.Err() != nil || rb.Err() != nil {
			// Not section-framed at this level: fall back to a byte compare.
			if string(ra.b[ra.off:]) != string(rb.b[rb.off:]) {
				return prefix + "/<bytes>"
			}
			return ""
		}
		if na != nb {
			return fmt.Sprintf("%s/<%s|%s>", prefix, na, nb)
		}
		if string(ba.b) != string(bb.b) {
			// Recurse: the bodies may themselves be section streams.
			if p := diffPath(ba, bb, prefix+"/"+na); p != "" {
				return p
			}
			return prefix + "/" + na
		}
	}
	return ""
}
