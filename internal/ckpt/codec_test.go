package ckpt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"slingshot/internal/ckpt/wire"
	"slingshot/internal/shard"
	"slingshot/internal/sim"
)

// tinyFleet builds and advances a minimal fleet for codec tests.
func tinyFleet(t testing.TB, seed uint64, steps int) *shard.Fleet {
	t.Helper()
	cfg := shard.DefaultConfig(2, 4)
	cfg.Seed = seed
	cfg.Horizon = 40 * sim.Millisecond
	cfg.Shards = 1
	f, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	for i := 0; i < steps; i++ {
		if done, err := f.Step(); err != nil {
			t.Fatal(err)
		} else if done {
			break
		}
	}
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := Capture(tinyFleet(t, 7, 20))
	enc := snap.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.At != snap.At || dec.Steps != snap.Steps {
		t.Fatalf("meta mismatch: got (%v,%d) want (%v,%d)", dec.At, dec.Steps, snap.At, snap.Steps)
	}
	if !reflect.DeepEqual(dec.Cfg, snap.Cfg) {
		t.Fatalf("config mismatch:\ngot  %+v\nwant %+v", dec.Cfg, snap.Cfg)
	}
	if !bytes.Equal(dec.State, snap.State) {
		t.Fatal("state mismatch")
	}
	if re := dec.Encode(); !bytes.Equal(re, enc) {
		t.Fatal("decode→encode is not the identity (codec not canonical)")
	}
}

// TestDecodeRejects is the reject table: every corruption class must
// produce an error — never a panic, never a silently-divergent snapshot.
func TestDecodeRejects(t *testing.T) {
	valid := Capture(tinyFleet(t, 3, 10)).Encode()
	if _, err := Decode(valid); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:6] }},
		{"truncated-mid", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bit-flip-early", func(b []byte) []byte { b[14] ^= 0x40; return b }},
		{"bit-flip-mid", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }},
		{"bit-flip-fingerprint", func(b []byte) []byte { b[len(b)-3] ^= 0x80; return b }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xAA) }},
		{"version-skew", func(b []byte) []byte {
			// Rewrite the u16 version after the length-prefixed magic, then
			// restamp the fingerprint so only the version is wrong.
			off := 4 + len(Magic)
			b[off], b[off+1] = 0xBE, 0xEF
			fp := wire.Hash64(b[:len(b)-8])
			for i := 0; i < 8; i++ {
				b[len(b)-8+i] = byte(fp >> (56 - 8*i))
			}
			return b
		}},
		{"bad-magic", func(b []byte) []byte {
			b[4] ^= 0xFF
			fp := wire.Hash64(b[:len(b)-8])
			for i := 0; i < 8; i++ {
				b[len(b)-8+i] = byte(fp >> (56 - 8*i))
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte(nil), valid...))
			s, err := Decode(b)
			if err == nil {
				t.Fatalf("corrupt snapshot accepted: %+v", s)
			}
		})
	}
}

// TestSnapshotRestoreFixedPoint is the satellite property test: snapshot →
// restore → snapshot must be a fixed point — the second capture is
// byte-identical to the first, at quick-generated (seed, barrier) points.
// This pins codec canonicality end to end: if any layer serialized
// nondeterministically (map order, retained pooled buffer, clock skew),
// the second image would move.
func TestSnapshotRestoreFixedPoint(t *testing.T) {
	prop := func(seedLo uint8, stepsLo uint8) bool {
		seed := uint64(seedLo)%5 + 1
		steps := int(stepsLo) % 50
		first := Capture(tinyFleet(t, seed, steps))
		f, err := Restore(first)
		if err != nil {
			t.Logf("restore: %v", err)
			return false
		}
		second := Capture(f)
		if !bytes.Equal(second.State, first.State) {
			t.Logf("seed=%d steps=%d: second state image differs at %s",
				seed, steps, wire.Diff(first.State, second.State))
			return false
		}
		return bytes.Equal(second.Encode(), first.Encode())
	}
	cfg := &quick.Config{
		MaxCount: 6,
		Rand:     rand.New(rand.NewSource(42)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeQuickConfigs round-trips quick-generated config field
// soups through the snapshot codec (no fleet needed): the config layer
// must be canonical independent of whether the values describe a runnable
// fleet.
func TestEncodeDecodeQuickConfigs(t *testing.T) {
	prop := func(cells, ues, kills uint16, seed uint64, horizonUS uint32, traceOn bool, state []byte) bool {
		s := &Snapshot{
			At:    sim.Time(horizonUS) * sim.Microsecond,
			Steps: uint64(horizonUS),
			Cfg: shard.Config{
				Cells:   int(cells),
				UEs:     int(ues),
				Seed:    seed,
				Horizon: sim.Time(horizonUS) * sim.Microsecond,
				Step:    sim.Millisecond,
				Kills:   int(kills),
				Trace:   traceOn,
			},
			State: state,
		}
		enc := s.Encode()
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec.Encode(), enc) && reflect.DeepEqual(dec.Cfg, s.Cfg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioRegistry(t *testing.T) {
	for _, name := range ScenarioNames() {
		cfg, err := Scenario(name, 8, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Cells < 1 {
			t.Fatalf("%s: empty fleet", name)
		}
	}
	if _, err := Scenario("no-such-scenario", 8, 16); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
