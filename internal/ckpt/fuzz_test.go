package ckpt

import (
	"bytes"
	"testing"

	"slingshot/internal/ckpt/wire"
)

// FuzzCheckpointDecode asserts the codec's two survival properties on
// arbitrary bytes: Decode never panics, and anything it accepts is
// canonical — re-encoding reproduces the input byte-for-byte, and the
// embedded state image re-diffs clean. Seeds cover the valid encoding
// plus each reject-table class so the fuzzer starts at the interesting
// boundaries.
func FuzzCheckpointDecode(f *testing.F) {
	valid := Capture(tinyFleet(f, 11, 12)).Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])         // truncation
	f.Add(valid[:8])                    // header only
	f.Add(append([]byte(nil), valid[4:]...)) // sheared magic
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip) // bit flip
	skew := append([]byte(nil), valid...)
	skew[4+len(Magic)] = 0x7F // version byte, fingerprint now stale too
	f.Add(skew)
	long := append(append([]byte(nil), valid...), 0, 1, 2, 3)
	f.Add(long) // trailing bytes

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return // rejection is always a valid outcome
		}
		re := s.Encode()
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted non-canonical input:\n in: %x\nout: %x", b, re)
		}
		if d := wire.Diff(s.State, s.State); d != "" {
			t.Fatalf("self-diff of accepted state image: %s", d)
		}
	})
}
