package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"slingshot/internal/sim"
)

// Manager persists snapshots in a directory, one file per barrier, named
// ckpt-<microseconds>.ss so lexical order is barrier order. Writes go to
// a temp file in the same directory followed by an atomic rename, so a
// crash mid-write can never leave a partial snapshot under a final name —
// readers observe either nothing or a complete, fingerprint-valid file.
type Manager struct {
	Dir string
}

const (
	filePrefix = "ckpt-"
	fileSuffix = ".ss"
	tmpPrefix  = ".tmp-ckpt-"
)

// Path returns the final file path for a barrier time.
func (m *Manager) Path(at sim.Time) string {
	return filepath.Join(m.Dir, fmt.Sprintf("%s%012d%s", filePrefix, int64(at/sim.Microsecond), fileSuffix))
}

// Save encodes and atomically persists the snapshot, returning its path.
func (m *Manager) Save(s *Snapshot) (string, error) {
	if err := os.MkdirAll(m.Dir, 0o755); err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	final := m.Path(s.At)
	tmp, err := os.CreateTemp(m.Dir, tmpPrefix)
	if err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(s.Encode()); err != nil {
		tmp.Close()
		return "", fmt.Errorf("ckpt: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("ckpt: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	return final, nil
}

// Load reads and validates one snapshot file.
func (m *Manager) Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// List returns the saved barrier times in ascending order. Temp files and
// foreign names are ignored.
func (m *Manager) List() ([]sim.Time, error) {
	entries, err := os.ReadDir(m.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []sim.Time
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		us, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix), 10, 64)
		if err != nil || us < 0 {
			continue
		}
		out = append(out, sim.Time(us)*sim.Microsecond)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Nearest loads the latest snapshot at or before the given barrier time —
// the auto-replay's rewind target. A negative bound means "latest".
func (m *Manager) Nearest(at sim.Time) (*Snapshot, error) {
	ats, err := m.List()
	if err != nil {
		return nil, err
	}
	best := sim.Time(-1)
	found := false
	for _, t := range ats {
		if at >= 0 && t > at {
			break
		}
		best, found = t, true
	}
	if !found {
		return nil, fmt.Errorf("ckpt: no snapshot at or before %v in %s", at, m.Dir)
	}
	return m.Load(m.Path(best))
}
