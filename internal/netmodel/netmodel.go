// Package netmodel models the edge-datacenter Ethernet fabric: MAC-style
// addressing, frames, and point-to-point links with bandwidth,
// store-and-forward serialization, propagation latency, jitter, and loss.
//
// Queueing is emergent: each link tracks the departure time of the last
// frame, so bursts above line rate accumulate real queueing delay. This is
// what gives the Orion latency-vs-load experiment (Fig 12) its tail.
package netmodel

import (
	"fmt"

	"slingshot/internal/mem"
	"slingshot/internal/sim"
)

// Addr is a 48-bit MAC-style address stored in the low bits of a uint64.
type Addr uint64

// Broadcast is the all-ones address.
const Broadcast Addr = (1 << 48) - 1

func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		byte(a>>40), byte(a>>32), byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// EtherType discriminates the payload protocol of a frame.
type EtherType uint16

// EtherTypes used by the simulated deployment. ECPRI matches the real
// registered value; the others are private-use values.
const (
	EtherTypeECPRI    EtherType = 0xAEFE // O-RAN fronthaul (eCPRI)
	EtherTypeFAPI     EtherType = 0x88B5 // inter-Orion FAPI transport
	EtherTypeControl  EtherType = 0x88B6 // switch control plane / notifications
	EtherTypeUserData EtherType = 0x0800 // user-plane IP-ish traffic
)

// Frame is an Ethernet-like frame. Payload bytes are owned by the frame
// after Send (senders must not reuse the slice).
type Frame struct {
	Src, Dst Addr
	Type     EtherType
	Payload  []byte

	// Virtual, when larger than len(Payload), is the payload size the
	// frame represents on the wire. The fronthaul simulation carries a
	// sampled code block per slot but models full-carrier IQ bandwidth;
	// Virtual lets link timing reflect the represented size without
	// allocating it.
	Virtual int

	// SentAt is stamped by the link on transmit; used for latency metrics.
	SentAt sim.Time
}

// WireSize returns the frame's size on the wire including an Ethernet
// header+FCS overhead of 18 bytes plus preamble/IPG of 20 bytes, floored at
// the 64-byte minimum frame size.
func (f *Frame) WireSize() int {
	n := len(f.Payload)
	if f.Virtual > n {
		n = f.Virtual
	}
	n += 18
	if n < 64 {
		n = 64
	}
	return n + 20
}

// framePool recycles Frame structs across the fabric's send paths. Every
// frame has exactly one owner at a time — a link delivers to one receiver,
// the switch forwards to one egress — so the terminal receiver (or the
// drop point) releases it.
var framePool = mem.NewPool(func(f *Frame) { *f = Frame{} })

// GetFrame leases a zeroed frame struct from the shared pool. Senders fill
// it and hand ownership to Send/HandleFrame like a heap-allocated frame.
func GetFrame() *Frame { return framePool.Get() }

// ReleaseFrame recycles f and its payload wire buffer. Only the frame's
// terminal consumer may call it, after copying out everything it retains;
// drop paths that skip the call merely lose the buffers to the GC, which
// the pooling contract allows. Safe on nil and on frames (or payloads)
// that were never pooled — the pools adopt them.
func ReleaseFrame(f *Frame) {
	if f == nil {
		return
	}
	mem.PutBytes(f.Payload)
	framePool.Put(f)
}

// Receiver consumes delivered frames. The receiver takes ownership of the
// frame: terminal consumers release it (ReleaseFrame) once done, while
// forwarding hops pass ownership on untouched.
type Receiver interface {
	HandleFrame(f *Frame)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(f *Frame)

// HandleFrame calls fn(f).
func (fn ReceiverFunc) HandleFrame(f *Frame) { fn(f) }

// Link is a unidirectional point-to-point link. Create two for a duplex
// cable. The zero bandwidth means "infinite" (no serialization delay).
type Link struct {
	Engine *sim.Engine
	// BitsPerSec is the line rate; 0 disables serialization delay.
	BitsPerSec float64
	// Latency is the fixed propagation + forwarding delay.
	Latency sim.Time
	// JitterAmp adds a uniform random jitter in [0, JitterAmp] per frame.
	JitterAmp sim.Time
	// LossProb drops frames with this probability.
	LossProb float64
	// RNG drives jitter and loss; required if either is nonzero.
	RNG *sim.RNG
	// To receives delivered frames.
	To Receiver

	lastDepart sim.Time

	// deliverFn is the one delivery closure shared by every frame on this
	// link; the frame rides as the event argument, so Send allocates
	// neither a closure nor (via the engine's event free list) an event.
	deliverFn func(any)

	// Delivered and Dropped count frames for observability.
	Delivered, Dropped uint64
}

// NewLink wires a link delivering to dst.
func NewLink(e *sim.Engine, dst Receiver, bitsPerSec float64, latency sim.Time) *Link {
	return &Link{Engine: e, To: dst, BitsPerSec: bitsPerSec, Latency: latency}
}

// QueueDelay reports how long a frame sent now would wait behind earlier
// frames before starting serialization.
func (l *Link) QueueDelay() sim.Time {
	now := l.Engine.Now()
	if l.lastDepart <= now {
		return 0
	}
	return l.lastDepart - now
}

// Send transmits f. The frame is delivered to the receiver after queueing,
// serialization, and propagation; or dropped per LossProb.
func (l *Link) Send(f *Frame) {
	now := l.Engine.Now()
	f.SentAt = now

	if l.LossProb > 0 && l.RNG != nil && l.RNG.Bool(l.LossProb) {
		l.Dropped++
		ReleaseFrame(f)
		return
	}

	start := now
	if l.lastDepart > start {
		start = l.lastDepart
	}
	var ser sim.Time
	if l.BitsPerSec > 0 {
		bits := float64(f.WireSize() * 8)
		ser = sim.Time(bits / l.BitsPerSec * float64(sim.Second))
		if ser < 1 {
			ser = 1
		}
	}
	depart := start + ser
	l.lastDepart = depart

	arrive := depart + l.Latency
	if l.JitterAmp > 0 && l.RNG != nil {
		arrive += sim.Time(l.RNG.Float64() * float64(l.JitterAmp))
	}
	l.Delivered++
	if l.deliverFn == nil {
		l.deliverFn = func(a any) { l.To.HandleFrame(a.(*Frame)) }
	}
	l.Engine.AtArgPooled(arrive, "link.deliver", l.deliverFn, f)
}

// Duplex is a bidirectional cable made of two symmetric links.
type Duplex struct {
	AB, BA *Link
}

// NewDuplex connects endpoints a and b with symmetric characteristics and
// returns the pair. Frames sent on AB arrive at b and vice versa.
func NewDuplex(e *sim.Engine, a, b Receiver, bitsPerSec float64, latency sim.Time) *Duplex {
	return &Duplex{
		AB: NewLink(e, b, bitsPerSec, latency),
		BA: NewLink(e, a, bitsPerSec, latency),
	}
}
