package netmodel

import (
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

type collector struct {
	frames []*Frame
	at     []sim.Time
	e      *sim.Engine
}

func (c *collector) HandleFrame(f *Frame) {
	c.frames = append(c.frames, f)
	c.at = append(c.at, c.e.Now())
}

func TestAddrFormat(t *testing.T) {
	a := Addr(0x001122334455)
	if got := a.String(); got != "00:11:22:33:44:55" {
		t.Fatalf("Addr.String() = %q", got)
	}
}

func TestFrameWireSize(t *testing.T) {
	small := &Frame{Payload: make([]byte, 10)}
	if got := small.WireSize(); got != 84 {
		t.Fatalf("small WireSize = %d, want 84 (64 min + 20 preamble)", got)
	}
	big := &Frame{Payload: make([]byte, 1500)}
	if got := big.WireSize(); got != 1500+18+20 {
		t.Fatalf("big WireSize = %d", got)
	}
}

func TestLinkLatencyOnly(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{e: e}
	l := NewLink(e, c, 0, 5*sim.Microsecond)
	e.At(0, "send", func() { l.Send(&Frame{Payload: []byte{1}}) })
	e.Run()
	if len(c.frames) != 1 {
		t.Fatalf("delivered %d frames", len(c.frames))
	}
	if c.at[0] != 5*sim.Microsecond {
		t.Fatalf("arrival at %v, want 5us", c.at[0])
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{e: e}
	// 1 Gbps; 1230-byte payload -> 1268B wire -> 10144 bits -> 10.144us.
	l := NewLink(e, c, 1e9, 0)
	e.At(0, "send", func() { l.Send(&Frame{Payload: make([]byte, 1230)}) })
	e.Run()
	want := sim.Time(10144)
	if c.at[0] != want {
		t.Fatalf("arrival at %v, want %v", c.at[0], want)
	}
}

func TestLinkQueueingBuildsUp(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{e: e}
	l := NewLink(e, c, 1e9, 0)
	e.At(0, "burst", func() {
		for i := 0; i < 3; i++ {
			l.Send(&Frame{Payload: make([]byte, 1230)})
		}
	})
	e.Run()
	if len(c.at) != 3 {
		t.Fatalf("delivered %d", len(c.at))
	}
	per := sim.Time(10144)
	for i, at := range c.at {
		want := per * sim.Time(i+1)
		if at != want {
			t.Fatalf("frame %d at %v, want %v", i, at, want)
		}
	}
}

func TestLinkQueueDelayObservation(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{e: e}
	l := NewLink(e, c, 1e9, 0)
	e.At(0, "send", func() {
		l.Send(&Frame{Payload: make([]byte, 1230)})
		if qd := l.QueueDelay(); qd != sim.Time(10144) {
			t.Errorf("QueueDelay = %v", qd)
		}
	})
	e.Run()
}

func TestLinkLoss(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{e: e}
	l := NewLink(e, c, 0, 0)
	l.LossProb = 1.0
	l.RNG = sim.NewRNG(1)
	e.At(0, "send", func() { l.Send(&Frame{}) })
	e.Run()
	if len(c.frames) != 0 || l.Dropped != 1 {
		t.Fatalf("lossy link delivered: frames=%d dropped=%d", len(c.frames), l.Dropped)
	}
}

func TestLinkJitterBounded(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{e: e}
	l := NewLink(e, c, 0, 10*sim.Microsecond)
	l.JitterAmp = 5 * sim.Microsecond
	l.RNG = sim.NewRNG(2)
	e.At(0, "send", func() {
		for i := 0; i < 100; i++ {
			l.Send(&Frame{})
		}
	})
	e.Run()
	for _, at := range c.at {
		if at < 10*sim.Microsecond || at > 15*sim.Microsecond {
			t.Fatalf("jittered arrival %v out of [10us,15us]", at)
		}
	}
}

func TestLinkPreservesOrderProperty(t *testing.T) {
	// Frames on one link must arrive in send order (FIFO), regardless of
	// sizes, because serialization is sequential and latency constant.
	f := func(sizes []uint16) bool {
		e := sim.NewEngine()
		c := &collector{e: e}
		l := NewLink(e, c, 1e8, 3*sim.Microsecond)
		e.At(0, "send", func() {
			for i, s := range sizes {
				p := make([]byte, int(s)%2000+1)
				p[0] = byte(i)
				l.Send(&Frame{Payload: p})
			}
		})
		e.Run()
		if len(c.frames) != len(sizes) {
			return false
		}
		for i, fr := range c.frames {
			if fr.Payload[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplex(t *testing.T) {
	e := sim.NewEngine()
	ca, cb := &collector{e: e}, &collector{e: e}
	d := NewDuplex(e, ca, cb, 1e9, sim.Microsecond)
	e.At(0, "send", func() {
		d.AB.Send(&Frame{Payload: []byte("to-b")})
		d.BA.Send(&Frame{Payload: []byte("to-a")})
	})
	e.Run()
	if len(cb.frames) != 1 || string(cb.frames[0].Payload) != "to-b" {
		t.Fatal("AB direction broken")
	}
	if len(ca.frames) != 1 || string(ca.frames[0].Payload) != "to-a" {
		t.Fatal("BA direction broken")
	}
}

func TestReceiverFunc(t *testing.T) {
	called := false
	ReceiverFunc(func(f *Frame) { called = true }).HandleFrame(&Frame{})
	if !called {
		t.Fatal("ReceiverFunc did not dispatch")
	}
}
