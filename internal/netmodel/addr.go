package netmodel

// Well-known address plan for the simulated edge datacenter. vRAN
// operators assign logical RU and PHY ids at installation time (§5.1 of
// the paper); the deployment derives MAC addresses from those ids so every
// component can compute its peers' addresses without discovery.
const (
	ruAddrBase     Addr = 0x02_00_00_00_00_00 // locally administered
	phyAddrBase    Addr = 0x02_00_00_01_00_00
	virtualPHYBase Addr = 0x02_00_00_02_00_00
	orionAddrBase  Addr = 0x02_00_00_03_00_00
	l2AddrBase     Addr = 0x02_00_00_04_00_00
	controllerAddr Addr = 0x02_00_00_05_00_00
)

// RUAddr returns the MAC address of RU (cell) id.
func RUAddr(cell uint16) Addr { return ruAddrBase + Addr(cell) }

// PHYAddr returns the physical MAC address of PHY server id.
func PHYAddr(id uint8) Addr { return phyAddrBase + Addr(id) }

// VirtualPHYAddr returns the virtual PHY address RUs send fronthaul to for
// cell id; the in-switch middlebox translates it to the current primary
// PHY's physical address (§5.1).
func VirtualPHYAddr(cell uint16) Addr { return virtualPHYBase + Addr(cell) }

// OrionAddr returns the MAC address of the Orion instance on server id.
func OrionAddr(id uint8) Addr { return orionAddrBase + Addr(id) }

// L2Addr returns the MAC address of L2 server id.
func L2Addr(id uint8) Addr { return l2AddrBase + Addr(id) }

// ControllerAddr is the switch-control endpoint address used for failure
// notifications and migrate_on_slot commands.
func ControllerAddr() Addr { return controllerAddr }

// IsVirtualPHY reports whether a is a virtual PHY address and returns the
// cell id it names.
func IsVirtualPHY(a Addr) (uint16, bool) {
	if a >= virtualPHYBase && a < virtualPHYBase+0x10000 {
		return uint16(a - virtualPHYBase), true
	}
	return 0, false
}
