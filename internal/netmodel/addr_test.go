package netmodel

import "testing"

func TestAddressPlanDisjoint(t *testing.T) {
	// Every address family must be disjoint from the others across the
	// full id space — collisions would cross-wire the switch ports.
	seen := map[Addr]string{}
	add := func(a Addr, kind string) {
		if prev, dup := seen[a]; dup {
			t.Fatalf("address %v assigned to both %s and %s", a, prev, kind)
		}
		seen[a] = kind
	}
	for i := 0; i < 256; i++ {
		add(RUAddr(uint16(i)), "ru")
		add(PHYAddr(uint8(i)), "phy")
		add(VirtualPHYAddr(uint16(i)), "vphy")
		add(OrionAddr(uint8(i)), "orion")
		add(L2Addr(uint8(i)), "l2")
	}
	add(ControllerAddr(), "controller")
}

func TestIsVirtualPHY(t *testing.T) {
	for _, cell := range []uint16{0, 1, 255, 65535} {
		got, ok := IsVirtualPHY(VirtualPHYAddr(cell))
		if !ok || got != cell {
			t.Fatalf("IsVirtualPHY(VirtualPHYAddr(%d)) = %d, %v", cell, got, ok)
		}
	}
	if _, ok := IsVirtualPHY(PHYAddr(3)); ok {
		t.Fatal("physical PHY address classified as virtual")
	}
	if _, ok := IsVirtualPHY(RUAddr(3)); ok {
		t.Fatal("RU address classified as virtual")
	}
}

func TestAddressesLocallyAdministered(t *testing.T) {
	// Bit 1 of the first octet marks locally administered MACs; our plan
	// must never collide with real vendor OUIs.
	for _, a := range []Addr{RUAddr(0), PHYAddr(0), VirtualPHYAddr(0), OrionAddr(0), L2Addr(0), ControllerAddr()} {
		first := byte(a >> 40)
		if first&0x02 == 0 {
			t.Fatalf("address %v not locally administered", a)
		}
	}
}
