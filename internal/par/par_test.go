package par

import (
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	got := Map(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestSequentialWhenOneWorker(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	// With one worker the loop must run inline in ascending order.
	var order []int
	ForEach(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order broken: %v", order)
		}
	}
}

func TestEveryIndexRunsExactlyOnce(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	const n = 1000
	var counts [n]atomic.Int32
	ForEach(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestNestedBatchesDoNotDeadlock runs batches inside batches; inner calls
// must fall back to inline execution when the token pool is drained.
func TestNestedBatchesDoNotDeadlock(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var total atomic.Int64
	ForEach(8, func(i int) {
		ForEach(8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("ran %d inner tasks, want 64", total.Load())
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) left %d workers, want clamp to 1", Workers())
	}
	SetWorkers(prev)
}
