// Package par is the deterministic parallel execution layer for the
// compute-heavy, virtual-time-free parts of the stack (FEC decode batches,
// DL encode batches, multi-seed experiment shards).
//
// The concurrency contract (DESIGN.md "Concurrency model"):
//
//   - Callers block until every task of a batch has finished, so simulated
//     virtual time NEVER advances while workers run. The discrete-event
//     engine stays single-threaded; workers only ever execute pure(ish)
//     compute whose inputs were captured on the event-loop goroutine.
//   - Results are merged by index: task i writes slot i, so the assembled
//     output is independent of worker scheduling.
//   - SLINGSHOT_WORKERS=1 (or a 1-core GOMAXPROCS) degrades every batch to
//     an inline sequential loop on the caller's goroutine — the exact
//     schedule the sequential simulator had, which CI's -race lane and the
//     workers=1-vs-N determinism tests rely on.
//
// Total in-flight workers across nested batches are bounded by a global
// token pool of Workers()-1 extra goroutines. Nested ForEach calls that
// find the pool drained simply run inline instead of blocking, which makes
// nesting (seed-shard outside, decode-batch inside) deadlock-free.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

var (
	mu       sync.Mutex
	maxExtra int // extra worker goroutines allowed beyond the callers
	inFlight int // extra workers currently running
	started  int // persistent worker goroutines spawned so far
)

// workCh feeds parked persistent workers. Each send hands one worker a
// batch to help with; workers park between batches instead of being
// respawned, so a steady-state batch spawns no goroutines and allocates
// nothing inside this package.
var workCh = make(chan *batchState, 64)

// batchState is the shared claim counter for one ForEach call, recycled
// across batches.
type batchState struct {
	fn   func(int)
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
}

var batchPool = sync.Pool{New: func() any { return new(batchState) }}

func worker() {
	for b := range workCh {
		b.run()
		b.wg.Done()
	}
}

func (b *batchState) run() {
	for {
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		b.fn(int(i))
	}
}

func init() {
	SetWorkers(defaultWorkers())
}

// defaultWorkers reads SLINGSHOT_WORKERS, falling back to GOMAXPROCS.
func defaultWorkers() int {
	if v := os.Getenv("SLINGSHOT_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the configured worker-pool width (≥1). 1 means fully
// sequential execution.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return maxExtra + 1
}

// SetWorkers overrides the pool width and returns the previous value.
// Intended for tests (workers=1 vs workers=N determinism) and the
// SLINGSHOT_WORKERS escape hatch; safe to call between batches.
func SetWorkers(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	prev = maxExtra + 1
	maxExtra = n - 1
	return prev
}

// tryAcquire grabs up to want extra-worker tokens without blocking, and
// guarantees a parked worker exists for each token: every in-flight token
// is either a pending workCh send or a worker mid-batch, so keeping
// started ≥ inFlight means every send finds an idle worker even when
// nested batches fan out.
func tryAcquire(want int) int {
	mu.Lock()
	defer mu.Unlock()
	free := maxExtra - inFlight
	if free <= 0 {
		return 0
	}
	if want > free {
		want = free
	}
	inFlight += want
	for started < inFlight {
		go worker()
		started++
	}
	return want
}

func release(n int) {
	mu.Lock()
	inFlight -= n
	mu.Unlock()
}

// ForEach runs fn(0..n-1) across the worker pool and returns once every
// call has completed. Tasks are claimed from a shared counter, so the
// execution interleaving is nondeterministic — fn must only communicate
// through its index (write slot i of a result slice, never append to a
// shared one). With a pool width of 1 (or when the token pool is drained
// by an enclosing batch) the loop runs inline on the caller's goroutine in
// ascending index order.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	want := n - 1 // the caller's goroutine is always one worker
	if w := Workers() - 1; want > w {
		want = w
	}
	extra := 0
	if want > 0 {
		extra = tryAcquire(want)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	b := batchPool.Get().(*batchState)
	b.fn = fn
	b.n = int64(n)
	b.next.Store(0)
	b.wg.Add(extra)
	for k := 0; k < extra; k++ {
		workCh <- b
	}
	b.run() // the caller's goroutine is a worker too
	b.wg.Wait()
	release(extra)
	b.fn = nil
	batchPool.Put(b)
}

// Map runs fn over 0..n-1 on the pool and returns the results in input
// order (slot i holds fn(i)), regardless of which worker computed what.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
