package core

import (
	"fmt"

	"slingshot/internal/ckpt/wire"
)

// SnapshotTo writes the whole deployment's state as named sections, one
// per component, in canonical (sorted-id) order. The engine section pins
// the clock, next event sequence and the pending-queue identities — event
// closures themselves are reconstructed by deterministic replay, and this
// section is what proves replay reached the same schedule (internal/ckpt).
func (d *Deployment) SnapshotTo(w *wire.W) {
	w.Section("engine", func(w *wire.W) {
		w.I64(int64(d.Engine.Now()))
		w.U64(d.Engine.NextSeq())
		w.U64(d.Engine.Processed)
		q := d.Engine.QueueSnapshot()
		w.U32(uint32(len(q)))
		for _, ev := range q {
			w.I64(int64(ev.At))
			w.U64(ev.Seq)
			w.Str(ev.Name)
			w.Bool(ev.Canceled)
		}
	})
	w.Section("rng", func(w *wire.W) {
		for _, v := range d.RNG.State() {
			w.U64(v)
		}
	})
	w.Section("switch", d.Switch.SnapshotTo)
	if d.L2 != nil {
		w.Section("l2", d.L2.SnapshotTo)
	}
	if d.backupL2 != nil {
		w.Section("l2.backup", d.backupL2.SnapshotTo)
	}
	if d.L2Orion != nil {
		w.Section("orion.l2", d.L2Orion.SnapshotTo)
	}
	for _, server := range d.phyOrder() {
		w.Section(fmt.Sprintf("phy.s%d", server), d.PHYs[server].SnapshotTo)
		if o := d.Orions[server]; o != nil {
			w.Section(fmt.Sprintf("orion.s%d", server), o.SnapshotTo)
		}
	}
	for _, cellID := range d.cellOrder() {
		w.Section(fmt.Sprintf("ru.c%d", cellID), d.RUs[cellID].SnapshotTo)
	}
	for _, id := range d.ueOrder() {
		w.Section(fmt.Sprintf("ue.%d", id), d.UEs[id].SnapshotTo)
	}
}
