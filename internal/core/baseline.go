package core

import (
	"slingshot/internal/fronthaul"
	"slingshot/internal/l2"
	"slingshot/internal/netmodel"
	"slingshot/internal/phy"
	"slingshot/internal/switchsim"
)

// baselineController is the minimal failover glue of the paper's baseline
// (§8.1): it receives the in-switch failure notification and reroutes the
// fronthaul to the backup vRAN's PHY. It cannot do more — the backup stack
// shares no UE state with the failed one, so every UE must run the full
// reattach procedure.
type baselineController struct {
	d    *Deployment
	addr netmodel.Addr
}

func (b *baselineController) HandleFrame(f *netmodel.Frame) {
	defer netmodel.ReleaseFrame(f) // terminal consumer; command is decoded out
	if f.Type != netmodel.EtherTypeControl {
		return
	}
	cmd, err := switchsim.DecodeCommand(f.Payload)
	if err != nil || cmd.Type != switchsim.CmdFailureNotify {
		return
	}
	if cmd.PHY != b.d.Switch.Mapping(uint8(b.d.Cfg.Cell)) {
		return // backup failed, not the active
	}
	b.failover()
}

func (b *baselineController) failover() {
	d := b.d
	cell := uint8(d.Cfg.Cell)
	target := d.Cfg.SecondaryServer
	// Reroute the fronthaul at the next slot boundary using the in-switch
	// middlebox (without it, even reconnecting the RU would need manual
	// rewiring).
	boundary := uint64(d.Engine.Now()/phy.TTI) + 2
	d.Switch.HandleFrame(&netmodel.Frame{
		Src: b.addr, Dst: netmodel.ControllerAddr(),
		Type: netmodel.EtherTypeControl,
		Payload: (&switchsim.Command{
			Type: switchsim.CmdMigrateOnSlot, RU: cell, PHY: target,
			Slot: fronthaul.SlotFromCounter(boundary), AbsSlot: boundary,
		}).Encode(),
	})
	// The backup vRAN has no RRC/bearer context for the UEs: each one
	// must fully reattach (6.2 s measured in §8.1).
	d.activeL2 = d.backupL2
	for _, u := range d.UEs {
		u.ForceReattach()
	}
}

// NewBaseline builds the paper's no-Slingshot baseline: two complete,
// independent vRAN stacks (tightly coupled L2+PHY on each server, no
// Orion), with the in-switch middlebox used only for failure detection
// and fronthaul rerouting.
func NewBaseline(cfg Config) *Deployment {
	d := newCommon(cfg)
	d.Slingshot = false

	buildStack := func(server uint8) *l2.L2 {
		d.addBaselinePHY(server)
		l2cfg := l2.DefaultConfig(server)
		if cfg.L2Tweak != nil {
			cfg.L2Tweak(&l2cfg)
		}
		stack := l2.New(d.Engine, l2cfg)
		p := d.PHYs[server]
		// Tightly coupled: FAPI over SHM, no middlebox.
		stack.SendFAPI = p.HandleFAPI
		p.SendFAPI = stack.HandleFAPI
		return stack
	}

	d.L2 = buildStack(cfg.PrimaryServer)
	d.backupL2 = buildStack(cfg.SecondaryServer)
	d.activeL2 = d.L2

	d.wireRadio(d.L2)

	d.baselineCtl = &baselineController{d: d, addr: netmodel.OrionAddr(cfg.L2Server)}
	ctlLink := d.endpointLink(d.baselineCtl.addr, d.baselineCtl)
	_ = ctlLink

	d.Switch.InstallRU(uint8(cfg.Cell), netmodel.RUAddr(cfg.Cell))
	d.Switch.SetMapping(uint8(cfg.Cell), cfg.PrimaryServer)
	d.Switch.ArmDetector(cfg.PrimaryServer, d.baselineCtl.addr)
	return d
}

// addBaselinePHY constructs a PHY without a PHY-side Orion (SHM-coupled).
func (d *Deployment) addBaselinePHY(server uint8) {
	pcfg := phy.DefaultConfig(server)
	if iters, ok := d.Cfg.PHYIters[server]; ok {
		pcfg.FECIters = iters
	}
	if d.Cfg.PHYTweak != nil {
		d.Cfg.PHYTweak(&pcfg)
	}
	p := phy.New(d.Engine, pcfg, d.RNG.Fork(uint64(server)))
	link := d.endpointLink(p.Addr, p)
	p.SendFronthaul = link.Send
	d.PHYs[server] = p
	d.Switch.InstallPHY(server, p.Addr)
}

// BaselineRecovered reports whether the baseline failover completed (the
// backup stack is active).
func (d *Deployment) BaselineRecovered() bool {
	return d.activeL2 == d.backupL2
}
