package core

import (
	"testing"

	"slingshot/internal/sim"
)

// TestInvariantSweep runs randomized failover scenarios (varying seed,
// channel quality, and kill time within the slot) and asserts the
// properties Slingshot promises regardless of timing:
//
//  1. the UE never declares radio link failure (downtime < 50 ms RLF);
//  2. exactly one detection and one fronthaul migration per kill;
//  3. the migration executes at a TTI boundary after the kill;
//  4. the surviving PHY is serving and not crashed.
func TestInvariantSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		rng := sim.NewRNG(uint64(1000 + trial))
		cfg := DefaultConfig()
		cfg.Seed = uint64(trial + 1)
		cfg.UEs = []UESpec{{
			ID: 1, Name: "sweep-ue",
			MeanSNRdB: 14 + rng.Float64()*14, // 14..28 dB
			FadeStd:   0.5 + rng.Float64(),
			FadeCorr:  0.9,
		}}
		d := NewSlingshot(cfg)
		var delivered int
		d.OnUplink(func(ue uint16, pkt []byte) { delivered++ })
		d.Start()
		stop := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
			d.UEs[1].SendUplink(make([]byte, 300))
		})
		// Kill at a random sub-slot offset to cover all boundary phases.
		killAt := 100*sim.Millisecond + sim.Time(rng.Intn(int(500*sim.Microsecond)))
		d.Engine.At(killAt, "kill", func() { d.KillActivePHY() })
		d.Run(600 * sim.Millisecond)
		stop()

		u := d.UEs[1]
		if u.Stats.RLFs != 0 {
			t.Errorf("trial %d: UE declared %d RLFs", trial, u.Stats.RLFs)
		}
		if !u.Connected() {
			t.Errorf("trial %d: UE disconnected", trial)
		}
		if len(d.Switch.DetectionLog) != 1 {
			t.Errorf("trial %d: detections = %d", trial, len(d.Switch.DetectionLog))
		}
		if len(d.Switch.MigrationLog) != 1 {
			t.Errorf("trial %d: migrations = %d", trial, len(d.Switch.MigrationLog))
		} else {
			rec := d.Switch.MigrationLog[0]
			if rec.At <= killAt {
				t.Errorf("trial %d: migration at %v before kill %v", trial, rec.At, killAt)
			}
			if rec.At-killAt > 5*sim.Millisecond {
				t.Errorf("trial %d: migration took %v after kill", trial, rec.At-killAt)
			}
		}
		if surv := d.PHYs[d.ActivePHYServer()]; surv.Crashed() {
			t.Errorf("trial %d: serving PHY crashed", trial)
		}
		if delivered == 0 {
			t.Errorf("trial %d: no uplink delivered at all", trial)
		}
		d.Stop()
	}
}

// TestPlannedMigrationSweep checks the hitless property across random
// migration phases: back-to-back planned migrations at random offsets
// never disconnect the UE and always execute exactly once each.
func TestPlannedMigrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for trial := 0; trial < 8; trial++ {
		rng := sim.NewRNG(uint64(2000 + trial))
		cfg := DefaultConfig()
		cfg.Seed = uint64(trial + 50)
		cfg.UEs = []UESpec{{ID: 1, Name: "mig-ue", MeanSNRdB: 22, FadeStd: 1, FadeCorr: 0.95}}
		d := NewSlingshot(cfg)
		d.Start()
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			at := sim.Time(100+80*i)*sim.Millisecond + sim.Time(rng.Intn(int(500*sim.Microsecond)))
			d.Engine.At(at, "migrate", func() {
				if _, err := d.PlannedMigration(); err != nil {
					t.Error(err)
				}
			})
		}
		d.Run(sim.Time(100+80*n+200) * sim.Millisecond)
		if got := len(d.Switch.MigrationLog); got != n {
			t.Errorf("trial %d: %d migrations executed, want %d", trial, got, n)
		}
		if !d.UEs[1].Connected() || d.UEs[1].Stats.RLFs != 0 {
			t.Errorf("trial %d: UE state broken after %d migrations", trial, n)
		}
		// Ping-pong must land on the right server.
		want := cfg.PrimaryServer
		if n%2 == 1 {
			want = cfg.SecondaryServer
		}
		if got := d.ActivePHYServer(); got != want {
			t.Errorf("trial %d: active = %d, want %d after %d migrations", trial, got, want, n)
		}
		d.Stop()
	}
}
