// Package core assembles complete simulated vRAN deployments and is the
// home of Slingshot's end-to-end orchestration: it wires the switch,
// PHYs, Orion middleboxes, L2, RUs and UEs together; arms the in-switch
// failure detector; and exposes the failover / planned-migration / live-
// upgrade operations the experiments exercise. It also builds the paper's
// no-Slingshot baseline: a hot-backup full vRAN stack that recovers only
// through fronthaul rerouting plus full UE reattach (§8.1).
package core

import (
	"fmt"
	"sort"

	"slingshot/internal/l2"
	"slingshot/internal/netmodel"
	"slingshot/internal/orion"
	"slingshot/internal/phy"
	"slingshot/internal/ru"
	"slingshot/internal/sim"
	"slingshot/internal/switchsim"
	"slingshot/internal/trace"
	"slingshot/internal/ue"
)

// UESpec describes one UE in the deployment.
type UESpec struct {
	ID   uint16
	Name string
	// MeanSNRdB sets the UE's average channel quality.
	MeanSNRdB float64
	// FadeStd/FadeCorr override the default fading model when non-zero.
	FadeStd  float64
	FadeCorr float64
}

// CellSpec describes one additional cell in a multi-cell deployment. The
// paper's design expects exactly this shape: each PHY process serves
// multiple RUs, and the primary/secondary roles for different cells are
// co-located within the same processes (§8) — no dedicated standby
// servers.
type CellSpec struct {
	Cell      uint16
	Seed      uint64
	Primary   uint8
	Secondary uint8
	UEs       []UESpec
}

// Config describes a deployment.
type Config struct {
	Seed uint64

	// Cell is the single cell id used by the standard experiments
	// (multi-cell deployments construct additional cells via AddCell).
	Cell uint16
	// CellSeed derives the cell's scrambling/pilot sequences.
	CellSeed uint64
	// MantissaBits is the fronthaul BFP width.
	MantissaBits uint8

	// PrimaryServer and SecondaryServer host the cell's PHYs.
	PrimaryServer   uint8
	SecondaryServer uint8
	// SpareServer, if non-zero, hosts a replacement secondary after a
	// failover.
	SpareServer uint8
	// L2Server hosts the L2 and the L2-side Orion.
	L2Server uint8

	// PHYIters overrides the FEC iteration budget per PHY server (the
	// live-upgrade experiment gives the secondary a larger budget).
	PHYIters map[uint8]int

	UEs []UESpec
	// ExtraCells adds more cells beyond the primary one, each with its
	// own RU, UEs and primary/secondary placement (Slingshot only).
	ExtraCells []CellSpec

	// LinkBandwidth is the server/switch link rate (100 GbE default).
	LinkBandwidth float64
	// LinkLatency is the one-way link latency.
	LinkLatency sim.Time

	// L2Tweak adjusts the L2 configuration before construction.
	L2Tweak func(*l2.Config)
	// PHYTweak adjusts each PHY's configuration before construction.
	PHYTweak func(*phy.Config)

	// Trace, when non-nil, is the deployment's observability recorder: the
	// builder binds it to the engine and threads it through every PHY, HARQ
	// pool, L2 and RLC receiver. Nil disables tracing at zero cost.
	Trace *trace.Recorder
}

// DefaultConfig returns the three-server testbed configuration the paper
// evaluates (two PHY servers plus an L2 server, §8).
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Cell:            0,
		CellSeed:        0x517E,
		MantissaBits:    9,
		PrimaryServer:   1,
		SecondaryServer: 2,
		L2Server:        10,
		LinkBandwidth:   100e9,
		LinkLatency:     2 * sim.Microsecond,
		UEs: []UESpec{
			{ID: 1, Name: "OnePlus 10", MeanSNRdB: 24},
			{ID: 2, Name: "Samsung A52", MeanSNRdB: 20},
			{ID: 3, Name: "Raspberry Pi", MeanSNRdB: 28},
		},
	}
}

// Deployment is a fully wired simulated vRAN.
type Deployment struct {
	Cfg    Config
	Engine *sim.Engine
	RNG    *sim.RNG

	Switch  *switchsim.Switch
	PHYs    map[uint8]*phy.PHY
	Orions  map[uint8]*orion.Orion // PHY-side, by server
	L2      *l2.L2
	L2Orion *orion.Orion
	// RU is the primary cell's radio unit; RUs holds every cell's.
	RU  *ru.RU
	RUs map[uint16]*ru.RU
	UEs map[uint16]*ue.UE
	// Links records each endpoint's uplink (endpoint→switch) cable by the
	// endpoint's address; the switch-side egress cable is reachable via
	// Switch.Port. Fault-injection harnesses perturb both.
	Links map[netmodel.Addr]*netmodel.Link
	// cellSeeds remembers each cell's scrambling seed for Start.
	cellSeeds map[uint16]uint64

	// Slingshot is false for the baseline deployment.
	Slingshot bool

	// Baseline-only: the backup stack and its controller.
	backupL2    *l2.L2
	activeL2    *l2.L2
	baselineCtl *baselineController

	// upFn is the registered uplink sink, re-wired across L2 upgrades.
	upFn func(cell, ue uint16, pkt []byte)
}

// endpointLink wires an endpoint into the switch: the returned link sends
// endpoint→switch; the switch's egress link toward the endpoint is also
// registered.
func (d *Deployment) endpointLink(addr netmodel.Addr, rx netmodel.Receiver) *netmodel.Link {
	toSwitch := netmodel.NewLink(d.Engine, d.Switch, d.Cfg.LinkBandwidth, d.Cfg.LinkLatency)
	fromSwitch := netmodel.NewLink(d.Engine, rx, d.Cfg.LinkBandwidth, d.Cfg.LinkLatency)
	d.Switch.Connect(addr, fromSwitch)
	d.Links[addr] = toSwitch
	return toSwitch
}

// NewSlingshot builds a Slingshot deployment: decoupled L2 and PHY with
// Orion middleboxes, a hot-standby secondary PHY, and the in-switch
// fronthaul middlebox + failure detector.
func NewSlingshot(cfg Config) *Deployment {
	d := newCommon(cfg)
	d.Slingshot = true

	// PHY servers: PHY + PHY-side Orion each.
	for _, server := range []uint8{cfg.PrimaryServer, cfg.SecondaryServer, cfg.SpareServer} {
		if server == 0 {
			continue
		}
		d.addPHYServer(server)
	}

	// L2 server: L2 + L2-side Orion.
	l2cfg := l2.DefaultConfig(cfg.L2Server)
	if cfg.L2Tweak != nil {
		cfg.L2Tweak(&l2cfg)
	}
	d.L2 = l2.New(d.Engine, l2cfg)
	d.L2.Recorder = cfg.Trace
	d.activeL2 = d.L2
	d.L2Orion = orion.New(d.Engine, orion.DefaultConfig(cfg.L2Server, orion.RoleL2Side))
	if rec := cfg.Trace; rec != nil {
		// Record failover / planned-migration transitions. Installed at
		// construction so later observers (chaos checker, experiment hooks)
		// chain on top of it.
		d.L2Orion.OnMigration = func(ev orion.MigrationEvent) {
			kind := trace.KindMigration
			if ev.Failover {
				kind = trace.KindFailover
			}
			rec.Emit(kind, cfg.L2Server, ev.Cell, 0, uint64(ev.ToServer), ev.AtSlot)
		}
	}
	d.L2Orion.AddCell(cfg.Cell, cfg.PrimaryServer, cfg.SecondaryServer)
	link := d.endpointLink(d.L2Orion.Addr, d.L2Orion)
	d.L2Orion.SendFrame = link.Send
	d.L2.SendFAPI = d.L2Orion.FromL2
	d.L2Orion.ToL2 = d.L2.HandleFAPI

	d.wireRadio(d.L2)

	// Switch dataplane state.
	d.Switch.InstallRU(uint8(cfg.Cell), netmodel.RUAddr(cfg.Cell))
	d.Switch.SetMapping(uint8(cfg.Cell), cfg.PrimaryServer)
	d.Switch.ArmDetector(cfg.PrimaryServer, d.L2Orion.Addr)
	d.Switch.ArmDetector(cfg.SecondaryServer, d.L2Orion.Addr)

	// Additional cells: primaries and secondaries co-locate within the
	// existing PHY processes (each process serves many RUs, §2.2/§8).
	for _, spec := range cfg.ExtraCells {
		for _, server := range []uint8{spec.Primary, spec.Secondary} {
			if _, ok := d.PHYs[server]; !ok && server != 0 {
				d.addPHYServer(server)
			}
		}
		d.L2Orion.AddCell(spec.Cell, spec.Primary, spec.Secondary)
		d.wireCell(spec.Cell, spec.Seed, spec.UEs)
		d.Switch.InstallRU(uint8(spec.Cell), netmodel.RUAddr(spec.Cell))
		d.Switch.SetMapping(uint8(spec.Cell), spec.Primary)
		d.Switch.ArmDetector(spec.Primary, d.L2Orion.Addr)
		d.Switch.ArmDetector(spec.Secondary, d.L2Orion.Addr)
	}

	return d
}

func newCommon(cfg Config) *Deployment {
	if cfg.LinkBandwidth == 0 {
		cfg.LinkBandwidth = 100e9
	}
	if cfg.MantissaBits == 0 {
		cfg.MantissaBits = 9
	}
	e := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	d := &Deployment{
		Cfg:       cfg,
		Engine:    e,
		RNG:       rng,
		Switch:    switchsim.New(e, rng.Fork(0xA0)),
		PHYs:      make(map[uint8]*phy.PHY),
		Orions:    make(map[uint8]*orion.Orion),
		RUs:       make(map[uint16]*ru.RU),
		UEs:       make(map[uint16]*ue.UE),
		Links:     make(map[netmodel.Addr]*netmodel.Link),
		cellSeeds: make(map[uint16]uint64),
	}
	cfg.Trace.Bind(e)
	return d
}

// addPHYServer constructs a PHY and its PHY-side Orion on a server.
func (d *Deployment) addPHYServer(server uint8) {
	pcfg := phy.DefaultConfig(server)
	if iters, ok := d.Cfg.PHYIters[server]; ok {
		pcfg.FECIters = iters
	}
	if d.Cfg.PHYTweak != nil {
		d.Cfg.PHYTweak(&pcfg)
	}
	p := phy.New(d.Engine, pcfg, d.RNG.Fork(uint64(server)))
	p.Trace = d.Cfg.Trace
	phyLink := d.endpointLink(p.Addr, p)
	p.SendFronthaul = phyLink.Send

	o := orion.New(d.Engine, orion.DefaultConfig(server, orion.RolePHYSide))
	o.SetL2Server(d.Cfg.L2Server)
	orionLink := d.endpointLink(o.Addr, o)
	o.SendFrame = orionLink.Send
	o.ToPHY = p.HandleFAPI
	p.SendFAPI = o.FromPHY
	// Messages arriving over the Orion path came from fapi.Decode: the PHY
	// owns them outright and may recycle payload buffers at its slot GC.
	p.OwnsFAPIData = true

	d.PHYs[server] = p
	d.Orions[server] = o
	d.Switch.InstallPHY(server, p.Addr)
}

// wireRadio builds the primary cell's RU and UEs.
func (d *Deployment) wireRadio(attachL2 *l2.L2) {
	d.RU = d.wireCell(d.Cfg.Cell, d.Cfg.CellSeed, d.Cfg.UEs)
}

// wireCell builds one cell's RU and UEs and connects them for attach.
func (d *Deployment) wireCell(cellID uint16, seed uint64, ues []UESpec) *ru.RU {
	rcfg := ru.DefaultConfig(cellID)
	rcfg.MantissaBits = int(d.Cfg.MantissaBits)
	r := ru.New(d.Engine, rcfg)
	ruLink := d.endpointLink(r.Addr, r)
	r.SendFronthaul = ruLink.Send
	d.RUs[cellID] = r
	d.cellSeeds[cellID] = seed

	for _, spec := range ues {
		ucfg := ue.DefaultConfig(spec.ID, cellID, spec.Name, spec.MeanSNRdB)
		if spec.FadeStd != 0 {
			ucfg.FadeStd = spec.FadeStd
		}
		if spec.FadeCorr != 0 {
			ucfg.FadeCorr = spec.FadeCorr
		}
		u := ue.New(d.Engine, ucfg, d.RNG.Fork(0x0E00+uint64(spec.ID)))
		u.SetCellParams(seed, int(d.Cfg.MantissaBits))
		u.TryAttach = func(x *ue.UE) bool {
			if !r.Alive(20 * sim.Millisecond) {
				return false
			}
			return d.activeL2.AttachUE(cellID, x.Cfg.ID)
		}
		r.AddUE(u)
		d.UEs[spec.ID] = u
	}
	return r
}

// Start brings the deployment up: configures every cell, starts every
// slot clock, and attaches the UEs.
func (d *Deployment) Start() {
	// Bring components up in sorted id order: map order would randomize
	// the event-queue tie-break sequence and break seed determinism.
	for _, server := range d.phyOrder() {
		d.PHYs[server].Start()
	}
	for _, cellID := range d.cellOrder() {
		d.L2.AddCell(cellID, d.cellSeeds[cellID], d.Cfg.MantissaBits)
		if d.backupL2 != nil {
			d.backupL2.AddCell(cellID, d.cellSeeds[cellID], d.Cfg.MantissaBits)
		}
	}
	d.L2.Start()
	if d.backupL2 != nil {
		d.backupL2.Start()
	}
	for _, cellID := range d.cellOrder() {
		d.RUs[cellID].Start()
	}
	for _, id := range d.ueOrder() {
		u := d.UEs[id]
		u.Attach()
		d.activeL2.AttachUE(u.Cfg.Cell, u.Cfg.ID)
	}
}

func (d *Deployment) phyOrder() []uint8 {
	out := make([]uint8, 0, len(d.PHYs))
	for s := range d.PHYs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Deployment) cellOrder() []uint16 {
	out := make([]uint16, 0, len(d.cellSeeds))
	for c := range d.cellSeeds {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Deployment) ueOrder() []uint16 {
	out := make([]uint16, 0, len(d.UEs))
	for id := range d.UEs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Run advances the simulation to the given time.
func (d *Deployment) Run(until sim.Time) {
	d.Engine.RunUntil(until)
}

// ActivePHYServer returns the server whose PHY currently serves the
// primary cell.
func (d *Deployment) ActivePHYServer() uint8 {
	return d.ActivePHYServerOf(d.Cfg.Cell)
}

// ActivePHYServerOf returns the server currently serving a cell.
func (d *Deployment) ActivePHYServerOf(cell uint16) uint8 {
	if d.Slingshot {
		return d.L2Orion.ActiveServer(cell)
	}
	return d.Switch.Mapping(uint8(cell))
}

// ActivePHY returns the active PHY process.
func (d *Deployment) ActivePHY() *phy.PHY {
	return d.PHYs[d.ActivePHYServer()]
}

// ActiveL2 returns the L2 currently serving the cell (differs from L2
// only in the baseline after failover).
func (d *Deployment) ActiveL2() *l2.L2 { return d.activeL2 }

// KillActivePHY crashes the PHY serving the primary cell (the
// experiments' SIGKILL). The in-switch detector notices the heartbeat gap
// and notifies Orion (or the baseline controller). Other cells whose
// primary ran in the same process fail over too, as in a real process
// crash.
func (d *Deployment) KillActivePHY() {
	d.PHYs[d.ActivePHYServer()].Kill()
}

// KillServer crashes the PHY process on a specific server.
func (d *Deployment) KillServer(server uint8) {
	if p, ok := d.PHYs[server]; ok {
		p.Kill()
	}
}

// PlannedMigration initiates a zero-downtime migration of the primary
// cell to its standby and returns the boundary slot. Slingshot only.
func (d *Deployment) PlannedMigration() (uint64, error) {
	return d.PlannedMigrationOf(d.Cfg.Cell)
}

// PlannedMigrationOf migrates one cell's PHY processing to its standby.
func (d *Deployment) PlannedMigrationOf(cell uint16) (uint64, error) {
	if !d.Slingshot {
		return 0, fmt.Errorf("core: planned migration requires Slingshot")
	}
	boundary := d.L2Orion.Migrate(cell)
	if boundary == 0 {
		return 0, fmt.Errorf("core: migration refused (standby unavailable)")
	}
	return boundary, nil
}

// ProvisionSpare points a cell's standby at the spare server after a
// failover, re-initializing it from Orion's stored CONFIG.request (§6.3).
func (d *Deployment) ProvisionSpare(cell uint16) error {
	if !d.Slingshot {
		return fmt.Errorf("core: spares require the Slingshot deployment")
	}
	if d.Cfg.SpareServer == 0 {
		return fmt.Errorf("core: no spare server configured")
	}
	d.L2Orion.ReplaceStandby(cell, d.Cfg.SpareServer)
	d.Switch.ArmDetector(d.Cfg.SpareServer, d.L2Orion.Addr)
	return nil
}

// SendDownlink delivers a packet from the application server towards a UE
// through the active L2 (the UE's serving cell is looked up).
func (d *Deployment) SendDownlink(ueID uint16, pkt []byte) bool {
	u, ok := d.UEs[ueID]
	if !ok {
		return false
	}
	return d.activeL2.SendDownlink(u.Cfg.Cell, ueID, pkt)
}

// OnUplink registers the application-server-side uplink packet sink on
// every L2 in the deployment.
func (d *Deployment) OnUplink(fn func(ue uint16, pkt []byte)) {
	wrap := func(cell, ueID uint16, pkt []byte) { fn(ueID, pkt) }
	d.upFn = wrap
	d.L2.OnUplinkPacket = wrap
	if d.backupL2 != nil {
		d.backupL2.OnUplinkPacket = wrap
	}
}

// UpgradeL2 replaces the running L2 process with a fresh instance (an L2
// software upgrade), the paper's §10 extension. With preserveState, the
// old L2's hard state — RLC sequence spaces, bearer queues, HARQ
// bookkeeping — is checkpointed and restored into the new instance, so
// bearers survive; without it, the new L2 starts cold and every UE must
// reattach, as in the failover baseline. Slingshot deployments only.
func (d *Deployment) UpgradeL2(preserveState bool) (*l2.L2, error) {
	if !d.Slingshot {
		return nil, fmt.Errorf("core: L2 upgrade requires the Slingshot deployment")
	}
	old := d.L2
	var state *l2.State
	if preserveState {
		state = old.ExportState()
	}
	old.Stop()

	l2cfg := l2.DefaultConfig(d.Cfg.L2Server)
	if d.Cfg.L2Tweak != nil {
		d.Cfg.L2Tweak(&l2cfg)
	}
	fresh := l2.New(d.Engine, l2cfg)
	fresh.Recorder = d.Cfg.Trace
	fresh.SendFAPI = d.L2Orion.FromL2
	fresh.OnUplinkPacket = d.upFn
	d.L2Orion.ToL2 = fresh.HandleFAPI
	if preserveState {
		fresh.ImportState(state)
	} else {
		// Cold start: the new build re-onboards the cell but knows no
		// UEs (their RRC contexts lived in the old process).
		fresh.AddCell(d.Cfg.Cell, d.Cfg.CellSeed, d.Cfg.MantissaBits)
	}
	d.L2 = fresh
	d.activeL2 = fresh
	fresh.Start()
	return fresh, nil
}

// Stop tears down periodic activity (switch pktgen, clocks) so benchmarks
// can drain the event queue.
func (d *Deployment) Stop() {
	d.Switch.Stop()
	d.L2.Stop()
	if d.backupL2 != nil {
		d.backupL2.Stop()
	}
	for _, cellID := range d.cellOrder() {
		d.RUs[cellID].Stop()
	}
	for _, id := range d.ueOrder() {
		d.UEs[id].Stop()
	}
	for _, server := range d.phyOrder() {
		if p := d.PHYs[server]; !p.Crashed() {
			p.Kill()
		}
	}
}
