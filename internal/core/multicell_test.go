package core

import (
	"testing"

	"slingshot/internal/sim"
)

// crossedConfig builds two cells with crossed placement: cell 0's primary
// is server 1 (standby 2); cell 1's primary is server 2 (standby 1) — the
// paper's intended deployment where no server is a dedicated standby.
func crossedConfig() Config {
	cfg := DefaultConfig()
	cfg.UEs = []UESpec{{ID: 1, Name: "cell0-ue", MeanSNRdB: 25, FadeStd: 0.5, FadeCorr: 0.9}}
	cfg.ExtraCells = []CellSpec{{
		Cell: 1, Seed: 0xBEEF, Primary: cfg.SecondaryServer, Secondary: cfg.PrimaryServer,
		UEs: []UESpec{{ID: 2, Name: "cell1-ue", MeanSNRdB: 25, FadeStd: 0.5, FadeCorr: 0.9}},
	}}
	return cfg
}

func TestMultiCellBringUp(t *testing.T) {
	d := NewSlingshot(crossedConfig())
	var perUE [3]int
	d.OnUplink(func(ueID uint16, pkt []byte) { perUE[ueID]++ })
	d.Start()
	stop := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
		d.UEs[1].SendUplink(make([]byte, 300))
		d.UEs[2].SendUplink(make([]byte, 300))
	})
	defer stop()
	d.Run(400 * sim.Millisecond)
	defer d.Stop()

	if perUE[1] < 50 || perUE[2] < 50 {
		t.Fatalf("uplink per cell: ue1=%d ue2=%d", perUE[1], perUE[2])
	}
	if d.ActivePHYServerOf(0) != d.Cfg.PrimaryServer {
		t.Fatal("cell 0 not on its primary")
	}
	if d.ActivePHYServerOf(1) != d.Cfg.SecondaryServer {
		t.Fatal("cell 1 not on its (crossed) primary")
	}
	// Both PHY processes do real work (each is primary for one cell) —
	// no dedicated standby server exists.
	for _, server := range []uint8{d.Cfg.PrimaryServer, d.Cfg.SecondaryServer} {
		if d.PHYs[server].Stats.WorkUnits == 0 {
			t.Fatalf("server %d idle despite being a primary", server)
		}
	}
}

func TestServerCrashMigratesOnlyItsCells(t *testing.T) {
	cfg := crossedConfig()
	d := NewSlingshot(cfg)
	d.Start()
	// Kill server 1: cell 0 (primary there) must fail over to server 2;
	// cell 1 (already on server 2) must be unaffected.
	d.Engine.At(100*sim.Millisecond, "kill", func() { d.KillServer(cfg.PrimaryServer) })
	d.Run(400 * sim.Millisecond)
	defer d.Stop()

	if got := d.ActivePHYServerOf(0); got != cfg.SecondaryServer {
		t.Fatalf("cell 0 active = %d, want %d", got, cfg.SecondaryServer)
	}
	if got := d.ActivePHYServerOf(1); got != cfg.SecondaryServer {
		t.Fatalf("cell 1 active = %d (must be untouched on %d)", got, cfg.SecondaryServer)
	}
	if migrations := len(d.Switch.MigrationLog); migrations != 1 {
		t.Fatalf("switch executed %d migrations, want 1 (cell 0 only)", migrations)
	}
	for _, id := range []uint16{1, 2} {
		if !d.UEs[id].Connected() {
			t.Fatalf("UE %d disconnected", id)
		}
	}
}

func TestDoubleFailureWithSpare(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UEs = []UESpec{{ID: 1, Name: "ue", MeanSNRdB: 25, FadeStd: 0.5, FadeCorr: 0.9}}
	cfg.SpareServer = 3
	d := NewSlingshot(cfg)
	var count int
	d.OnUplink(func(ueID uint16, pkt []byte) { count++ })
	d.Start()
	stop := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
		d.UEs[1].SendUplink(make([]byte, 300))
	})
	defer stop()

	// First failure: primary dies, standby (server 2) takes over.
	d.Engine.At(100*sim.Millisecond, "kill1", func() { d.KillActivePHY() })
	// Operator provisions the spare as the new standby from Orion's
	// stored init request (§6.3).
	d.Engine.At(200*sim.Millisecond, "spare", func() {
		if err := d.ProvisionSpare(cfg.Cell); err != nil {
			t.Error(err)
		}
	})
	// Second failure: the new active dies too; the spare must take over.
	d.Engine.At(400*sim.Millisecond, "kill2", func() { d.KillActivePHY() })
	d.Run(800 * sim.Millisecond)
	defer d.Stop()

	if got := d.ActivePHYServer(); got != cfg.SpareServer {
		t.Fatalf("after double failure active = %d, want spare %d", got, cfg.SpareServer)
	}
	if !d.UEs[1].Connected() {
		t.Fatal("UE disconnected across double failure")
	}
	if d.UEs[1].Stats.RLFs != 0 {
		t.Fatalf("RLFs = %d", d.UEs[1].Stats.RLFs)
	}
	if count < 100 {
		t.Fatalf("delivered %d packets across two failovers (~156 sent)", count)
	}
	if len(d.Switch.DetectionLog) < 2 {
		t.Fatalf("detections = %d, want 2", len(d.Switch.DetectionLog))
	}
}

func TestMigrationRefusedWithoutLiveStandby(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UEs = []UESpec{{ID: 1, Name: "ue", MeanSNRdB: 25, FadeStd: 0.5, FadeCorr: 0.9}}
	d := NewSlingshot(cfg)
	d.Start()
	d.Engine.At(100*sim.Millisecond, "kill", func() { d.KillActivePHY() })
	d.Run(300 * sim.Millisecond)
	defer d.Stop()
	// The old primary is dead and no spare exists: a planned migration
	// back must be refused rather than sending the cell to a corpse.
	if _, err := d.PlannedMigration(); err == nil {
		t.Fatal("migration to a dead standby was accepted")
	}
}

func TestMultiCellPlannedMigrationIndependent(t *testing.T) {
	d := NewSlingshot(crossedConfig())
	d.Start()
	d.Engine.At(100*sim.Millisecond, "migrate", func() {
		if _, err := d.PlannedMigrationOf(1); err != nil {
			t.Error(err)
		}
	})
	d.Run(300 * sim.Millisecond)
	defer d.Stop()
	if got := d.ActivePHYServerOf(1); got != d.Cfg.PrimaryServer {
		t.Fatalf("cell 1 active = %d after migration", got)
	}
	if got := d.ActivePHYServerOf(0); got != d.Cfg.PrimaryServer {
		t.Fatalf("cell 0 moved unexpectedly: %d", got)
	}
}
