package core

import (
	"fmt"
	"testing"

	"slingshot/internal/sim"
)

// smallConfig trims the deployment to one good-channel UE for fast tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.UEs = []UESpec{{ID: 1, Name: "test-ue", MeanSNRdB: 25, FadeStd: 0.5, FadeCorr: 0.9}}
	return cfg
}

func TestSlingshotBringUp(t *testing.T) {
	d := NewSlingshot(smallConfig())
	d.Start()
	d.Run(200 * sim.Millisecond)
	defer d.Stop()

	// Both PHYs alive: primary doing real work, secondary on nulls.
	prim := d.PHYs[d.Cfg.PrimaryServer]
	sec := d.PHYs[d.Cfg.SecondaryServer]
	if prim.Crashed() || sec.Crashed() {
		t.Fatalf("PHY crashed during bring-up: primary=%v secondary=%v",
			prim.Crashed(), sec.Crashed())
	}
	if prim.Stats.SlotsProcessed < 300 {
		t.Fatalf("primary processed %d slots", prim.Stats.SlotsProcessed)
	}
	if sec.Stats.NullSlots < 300 {
		t.Fatalf("secondary null slots = %d (of %d processed)",
			sec.Stats.NullSlots, sec.Stats.SlotsProcessed)
	}
	// The secondary must not be doing signal processing (§8.5).
	if sec.Stats.WorkUnits != 0 {
		t.Fatalf("secondary spent %d work units", sec.Stats.WorkUnits)
	}
	if !d.UEs[1].Connected() {
		t.Fatal("UE lost connection during normal operation")
	}
}

func TestUplinkDataFlows(t *testing.T) {
	d := NewSlingshot(smallConfig())
	var got [][]byte
	d.OnUplink(func(ueID uint16, pkt []byte) { got = append(got, pkt) })
	d.Start()
	// Enqueue uplink packets after bring-up.
	d.Engine.At(50*sim.Millisecond, "traffic", func() {
		for i := 0; i < 20; i++ {
			d.UEs[1].SendUplink([]byte(fmt.Sprintf("ul-packet-%02d", i)))
		}
	})
	d.Run(300 * sim.Millisecond)
	defer d.Stop()

	if len(got) < 20 {
		t.Fatalf("application server received %d/20 uplink packets", len(got))
	}
	seen := map[string]bool{}
	for _, p := range got {
		seen[string(p)] = true
	}
	for i := 0; i < 20; i++ {
		if !seen[fmt.Sprintf("ul-packet-%02d", i)] {
			t.Fatalf("packet %d missing", i)
		}
	}
}

func TestDownlinkDataFlows(t *testing.T) {
	d := NewSlingshot(smallConfig())
	d.Start()
	var got [][]byte
	d.UEs[1].OnDownlink = func(pkt []byte) { got = append(got, append([]byte(nil), pkt...)) }
	d.Engine.At(50*sim.Millisecond, "traffic", func() {
		for i := 0; i < 20; i++ {
			if !d.SendDownlink(1, []byte(fmt.Sprintf("dl-packet-%02d", i))) {
				t.Errorf("SendDownlink %d rejected", i)
			}
		}
	})
	d.Run(300 * sim.Millisecond)
	defer d.Stop()

	if len(got) < 20 {
		t.Fatalf("UE received %d/20 downlink packets", len(got))
	}
}

func TestFailoverKeepsUEConnected(t *testing.T) {
	d := NewSlingshot(smallConfig())
	d.Start()
	d.Engine.At(100*sim.Millisecond, "kill", func() { d.KillActivePHY() })
	d.Run(500 * sim.Millisecond)
	defer d.Stop()

	if d.ActivePHYServer() != d.Cfg.SecondaryServer {
		t.Fatalf("active server = %d, want secondary %d",
			d.ActivePHYServer(), d.Cfg.SecondaryServer)
	}
	if !d.UEs[1].Connected() {
		t.Fatal("UE disconnected during Slingshot failover")
	}
	if d.UEs[1].Stats.RLFs != 0 {
		t.Fatalf("UE declared %d RLFs", d.UEs[1].Stats.RLFs)
	}
	// Detection happened at sub-ms scale after the kill.
	if len(d.Switch.DetectionLog) == 0 {
		t.Fatal("switch never detected the failure")
	}
	det := d.Switch.DetectionLog[0]
	if det < 100*sim.Millisecond || det > 102*sim.Millisecond {
		t.Fatalf("detection at %v, want within ~1ms of the kill", det)
	}
	// The new active PHY is doing real (non-null) work now.
	sec := d.PHYs[d.Cfg.SecondaryServer]
	if sec.Stats.WorkUnits == 0 && sec.Stats.EncodedTBs == 0 {
		t.Log("note: no user traffic in flight; heartbeat-only check")
	}
	if sec.Crashed() {
		t.Fatal("secondary crashed after takeover")
	}
}

func TestFailoverUplinkContinues(t *testing.T) {
	d := NewSlingshot(smallConfig())
	var count int
	d.OnUplink(func(ueID uint16, pkt []byte) { count++ })
	d.Start()
	// Continuous uplink traffic: 1 packet per 5 ms.
	stop := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
		d.UEs[1].SendUplink(make([]byte, 400))
	})
	defer stop()
	d.Engine.At(250*sim.Millisecond, "kill", func() { d.KillActivePHY() })
	d.Run(1000 * sim.Millisecond)
	defer d.Stop()

	// ~196 packets generated; allow some in-flight loss at the failover
	// but require sustained delivery after it.
	if count < 150 {
		t.Fatalf("delivered %d uplink packets across failover", count)
	}
	if d.PHYs[d.Cfg.SecondaryServer].Stats.DecodeOK == 0 {
		t.Fatal("secondary PHY never decoded uplink after takeover")
	}
}

func TestPlannedMigrationNoLoss(t *testing.T) {
	d := NewSlingshot(smallConfig())
	var count int
	d.OnUplink(func(ueID uint16, pkt []byte) { count++ })
	d.Start()
	stop := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
		d.UEs[1].SendUplink(make([]byte, 400))
	})
	defer stop()
	d.Engine.At(250*sim.Millisecond, "migrate", func() {
		if _, err := d.PlannedMigration(); err != nil {
			t.Error(err)
		}
	})
	d.Run(1000 * sim.Millisecond)
	defer d.Stop()

	if d.ActivePHYServer() != d.Cfg.SecondaryServer {
		t.Fatal("planned migration did not move the PHY")
	}
	// Old primary must still be alive (it becomes the standby).
	if d.PHYs[d.Cfg.PrimaryServer].Crashed() {
		t.Fatal("old primary crashed after planned migration")
	}
	if count < 180 {
		t.Fatalf("delivered %d packets across planned migration (~196 sent)", count)
	}
	// Fronthaul migration executed exactly once at a slot boundary.
	if len(d.Switch.MigrationLog) != 1 {
		t.Fatalf("switch executed %d migrations", len(d.Switch.MigrationLog))
	}
}

func TestBaselineFailoverCausesLongOutage(t *testing.T) {
	cfg := smallConfig()
	d := NewBaseline(cfg)
	d.Start()
	d.Engine.At(100*sim.Millisecond, "kill", func() { d.KillActivePHY() })
	d.Run(3 * sim.Second)

	if !d.BaselineRecovered() {
		t.Fatal("baseline controller never failed over")
	}
	u := d.UEs[1]
	if u.Connected() {
		t.Fatal("UE should still be reattaching at t=3s (6.2s procedure)")
	}
	// Run past the reattach delay.
	d.Run(8 * sim.Second)
	defer d.Stop()
	if !u.Connected() {
		t.Fatal("UE never reattached to the backup vRAN")
	}
	if u.Stats.Attaches < 2 {
		t.Fatalf("attaches = %d", u.Stats.Attaches)
	}
}

func TestBaselineNormalOperationWorks(t *testing.T) {
	d := NewBaseline(smallConfig())
	var count int
	d.OnUplink(func(ueID uint16, pkt []byte) { count++ })
	d.Start()
	stop := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
		d.UEs[1].SendUplink(make([]byte, 400))
	})
	defer stop()
	d.Run(300 * sim.Millisecond)
	defer d.Stop()
	if count < 40 {
		t.Fatalf("baseline delivered only %d packets", count)
	}
}

func TestUpgradeDeploymentIterations(t *testing.T) {
	cfg := smallConfig()
	cfg.PHYIters = map[uint8]int{cfg.PrimaryServer: 4, cfg.SecondaryServer: 16}
	d := NewSlingshot(cfg)
	d.Start()
	d.Run(50 * sim.Millisecond)
	defer d.Stop()
	if got := d.PHYs[cfg.PrimaryServer].CellIters(cfg.Cell); got != 4 {
		t.Fatalf("primary iters = %d", got)
	}
	if got := d.PHYs[cfg.SecondaryServer].CellIters(cfg.Cell); got != 16 {
		t.Fatalf("secondary iters = %d", got)
	}
}

func TestL2UpgradeWithStatePreservesBearers(t *testing.T) {
	d := NewSlingshot(smallConfig())
	var count int
	d.OnUplink(func(ueID uint16, pkt []byte) { count++ })
	d.Start()
	stop := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
		d.UEs[1].SendUplink(make([]byte, 400))
	})
	defer stop()
	d.Engine.At(250*sim.Millisecond, "upgrade", func() {
		if _, err := d.UpgradeL2(true); err != nil {
			t.Error(err)
		}
	})
	d.Run(800 * sim.Millisecond)
	defer d.Stop()

	// ~156 packets generated; state transfer must keep the bearer alive
	// so nearly all are delivered.
	if count < 140 {
		t.Fatalf("delivered %d packets across L2 upgrade with state", count)
	}
	if !d.UEs[1].Connected() {
		t.Fatal("UE lost connection across stateful L2 upgrade")
	}
	if !d.ActiveL2().Attached(d.Cfg.Cell, 1) {
		t.Fatal("new L2 lost the UE context")
	}
}

func TestL2UpgradeColdLosesBearers(t *testing.T) {
	d := NewSlingshot(smallConfig())
	var count int
	d.OnUplink(func(ueID uint16, pkt []byte) { count++ })
	d.Start()
	d.Engine.At(250*sim.Millisecond, "upgrade", func() {
		if _, err := d.UpgradeL2(false); err != nil {
			t.Error(err)
		}
	})
	d.Run(500 * sim.Millisecond)
	defer d.Stop()
	if d.ActiveL2().Attached(d.Cfg.Cell, 1) {
		t.Fatal("cold L2 upgrade kept UE context it never had")
	}
}

func TestL2UpgradeRejectedOnBaseline(t *testing.T) {
	d := NewBaseline(smallConfig())
	d.Start()
	d.Run(10 * sim.Millisecond)
	defer d.Stop()
	if _, err := d.UpgradeL2(true); err == nil {
		t.Fatal("baseline accepted L2 upgrade")
	}
}
