package harq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCombineFirstTransmission(t *testing.T) {
	p := NewPool()
	llr := []float64{1, -2, 3}
	got := p.Combine(1, 0, llr, true)
	if len(got) != 3 || got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Fatalf("first combine = %v", got)
	}
	if p.TxCount(1, 0) != 1 {
		t.Fatalf("TxCount = %d", p.TxCount(1, 0))
	}
}

func TestCombineAccumulates(t *testing.T) {
	p := NewPool()
	p.Combine(1, 2, []float64{1, 1}, true)
	got := p.Combine(1, 2, []float64{0.5, -3}, false)
	if got[0] != 1.5 || got[1] != -2 {
		t.Fatalf("combined = %v", got)
	}
	if p.TxCount(1, 2) != 2 {
		t.Fatalf("TxCount = %d", p.TxCount(1, 2))
	}
	if p.Combined != 1 {
		t.Fatalf("Combined counter = %d", p.Combined)
	}
}

func TestCombineNewDataFlushes(t *testing.T) {
	p := NewPool()
	p.Combine(1, 0, []float64{10, 10}, true)
	got := p.Combine(1, 0, []float64{1, 1}, true)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("newData did not flush: %v", got)
	}
	if p.TxCount(1, 0) != 1 {
		t.Fatalf("TxCount after flush = %d", p.TxCount(1, 0))
	}
}

func TestCombineLengthMismatchRestarts(t *testing.T) {
	p := NewPool()
	p.Combine(1, 0, []float64{1, 1, 1}, true)
	got := p.Combine(1, 0, []float64{2, 2}, false)
	if len(got) != 2 || got[0] != 2 {
		t.Fatalf("length mismatch not handled: %v", got)
	}
}

func TestAckReleases(t *testing.T) {
	p := NewPool()
	p.Combine(3, 1, []float64{1}, true)
	p.Ack(3, 1)
	if p.TxCount(3, 1) != 0 {
		t.Fatal("Ack did not clear TxCount")
	}
	if p.ActiveSequences() != 0 {
		t.Fatal("Ack left sequence active")
	}
	// Combining after ack behaves like a fresh buffer even with
	// newData=false (receiver lost context).
	got := p.Combine(3, 1, []float64{5}, false)
	if got[0] != 5 || p.TxCount(3, 1) != 1 {
		t.Fatalf("post-ack combine: %v txcount=%d", got, p.TxCount(3, 1))
	}
}

func TestResetInterruptsInFlight(t *testing.T) {
	p := NewPool()
	p.Combine(1, 0, []float64{1}, true)
	p.Combine(1, 1, []float64{1}, true)
	p.Combine(2, 0, []float64{1}, true)
	p.Ack(1, 1)
	n := p.Reset()
	if n != 2 {
		t.Fatalf("Reset interrupted %d, want 2", n)
	}
	if p.Interrupted != 2 {
		t.Fatalf("Interrupted = %d", p.Interrupted)
	}
	if p.ActiveSequences() != 0 {
		t.Fatal("sequences survive Reset")
	}
	// Post-reset combine starts fresh.
	got := p.Combine(1, 0, []float64{7}, false)
	if got[0] != 7 {
		t.Fatalf("post-reset combine: %v", got)
	}
}

func TestDropUE(t *testing.T) {
	p := NewPool()
	p.Combine(1, 0, []float64{1}, true)
	p.Combine(2, 0, []float64{1}, true)
	p.DropUE(1)
	if p.TxCount(1, 0) != 0 {
		t.Fatal("DropUE left UE 1 state")
	}
	if p.TxCount(2, 0) != 1 {
		t.Fatal("DropUE removed UE 2 state")
	}
}

func TestCombineSumProperty(t *testing.T) {
	// Combining k equal-LLR receptions scales the buffer by k.
	f := func(vals []float64, k uint8) bool {
		n := int(k%4) + 2
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := NewPool()
		var got []float64
		for i := 0; i < n; i++ {
			got = p.Combine(9, 3, vals, i == 0)
		}
		for i, v := range vals {
			want := v * float64(n)
			if math.Abs(got[i]-want) > 1e-6*math.Max(1, math.Abs(want)) {
				return false
			}
		}
		return p.TxCount(9, 3) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSNRFilterConverges(t *testing.T) {
	var f SNRFilter
	if f.Primed() {
		t.Fatal("zero filter primed")
	}
	first := f.Observe(20)
	if first != 20 || !f.Primed() {
		t.Fatalf("first observation: %f", first)
	}
	// Step to 10 dB; after 50 samples the filter should be within 0.5 dB.
	var v float64
	for i := 0; i < 50; i++ {
		v = f.Observe(10)
	}
	if math.Abs(v-10) > 0.5 {
		t.Fatalf("filter at %f after 50 samples", v)
	}
}

func TestSNRFilterReset(t *testing.T) {
	var f SNRFilter
	f.Observe(15)
	f.Reset()
	if f.Primed() || f.Value() != 0 {
		t.Fatal("Reset incomplete")
	}
	if got := f.Observe(-3); got != -3 {
		t.Fatalf("post-reset observation: %f", got)
	}
}

func TestSNRFilterCustomAlpha(t *testing.T) {
	f := SNRFilter{Alpha: 0.5}
	f.Observe(0)
	if got := f.Observe(10); got != 5 {
		t.Fatalf("alpha 0.5 step: %f", got)
	}
}
