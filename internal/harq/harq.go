// Package harq implements the PHY-side Hybrid ARQ machinery: per-(UE,
// process) soft-combine buffers that accumulate demodulated LLRs across
// retransmissions (chase combining), and the bookkeeping Slingshot
// deliberately discards on migration (§4.2 of the paper).
package harq

import "slingshot/internal/trace"

// MaxProcesses is the number of HARQ processes per UE.
const MaxProcesses = 16

// MaxTransmissions is the 5G default: one initial transmission plus up to
// three retransmissions.
const MaxTransmissions = 4

type key struct {
	ue   uint16
	proc uint8
}

// Buffer is one HARQ process's soft buffer.
type Buffer struct {
	LLR     []float64 // accumulated soft values for the code block
	TxCount int       // transmissions combined so far
	Active  bool
}

// Pool holds the HARQ soft buffers for every UE a PHY serves. The zero
// value is not usable; call NewPool.
type Pool struct {
	buffers map[key]*Buffer

	// Combined counts receptions that soft-combined with a prior buffer.
	Combined uint64
	// Interrupted counts sequences broken by a Reset while mid-flight —
	// the paper's "interrupted HARQ seqs" metric in Table 2.
	Interrupted uint64

	// Trace, when non-nil, records combine/flush events; Server and Cell
	// locate this pool in the cross-layer timeline. The owning PHY sets
	// all three at cell configuration. Combine and Reset run only on the
	// event-loop goroutine (packet arrival / migration landing), so
	// emission keeps traces worker-count invariant.
	Trace  *trace.Recorder
	Server uint8
	Cell   uint16
}

// NewPool returns an empty HARQ pool.
func NewPool() *Pool {
	return &Pool{buffers: make(map[key]*Buffer)}
}

// Combine merges a new reception's LLRs into the process buffer and
// returns the combined LLRs (aliasing the stored buffer). newData true
// flushes any previous soft state first (new transport block).
func (p *Pool) Combine(ue uint16, proc uint8, llr []float64, newData bool) []float64 {
	k := key{ue, proc}
	b := p.buffers[k]
	if b == nil {
		b = &Buffer{}
		p.buffers[k] = b
	}
	if newData || !b.Active || len(b.LLR) != len(llr) {
		b.LLR = append(b.LLR[:0], llr...)
		b.TxCount = 1
		b.Active = true
		return b.LLR
	}
	for i := range llr {
		b.LLR[i] += llr[i]
	}
	b.TxCount++
	p.Combined++
	if p.Trace != nil {
		p.Trace.Emit(trace.KindHARQCombine, p.Server, p.Cell, ue, uint64(proc), uint64(b.TxCount))
	}
	return b.LLR
}

// Ack marks a process successfully decoded, releasing its buffer.
func (p *Pool) Ack(ue uint16, proc uint8) {
	if b := p.buffers[key{ue, proc}]; b != nil {
		b.Active = false
		b.LLR = b.LLR[:0]
		b.TxCount = 0
	}
}

// TxCount returns how many transmissions the process has combined.
func (p *Pool) TxCount(ue uint16, proc uint8) int {
	if b := p.buffers[key{ue, proc}]; b != nil {
		return b.TxCount
	}
	return 0
}

// ActiveSequences returns the number of in-flight (un-acked) processes.
func (p *Pool) ActiveSequences() int {
	n := 0
	for _, b := range p.buffers {
		if b.Active {
			n++
		}
	}
	return n
}

// Reset discards all soft state. This is what PHY migration does: the
// destination PHY starts with empty buffers and in-flight retransmissions
// fail CRC, falling back to higher-layer (RLC) retransmission — the
// behaviour §4.2 argues is indistinguishable from a noisy channel.
// It returns the number of interrupted in-flight sequences.
func (p *Pool) Reset() int {
	interrupted := 0
	for k, b := range p.buffers {
		if b.Active {
			interrupted++
		}
		delete(p.buffers, k)
	}
	p.Interrupted += uint64(interrupted)
	if p.Trace != nil {
		p.Trace.Emit(trace.KindHARQFlush, p.Server, p.Cell, 0, uint64(interrupted), p.Interrupted)
	}
	return interrupted
}

// DropUE discards the soft state of one UE (UE detach).
func (p *Pool) DropUE(ue uint16) {
	for k := range p.buffers {
		if k.ue == ue {
			delete(p.buffers, k)
		}
	}
}

// SNRFilter is the per-UE average-SNR moving filter the PHY maintains
// (§4.2): an exponential moving average that re-converges within ~25 ms
// after being discarded.
type SNRFilter struct {
	// Alpha is the EMA weight of a new sample.
	Alpha float64

	value  float64
	primed bool
}

// DefaultSNRAlpha converges to ~95% of a step in 50 UL samples; with a UL
// slot every 2.5 ms in DDDSU... we use ~0.12 so reconvergence takes ≈25 ms
// of UL slots, matching the paper's stated filter behaviour.
const DefaultSNRAlpha = 0.12

// Observe folds a new SNR sample (dB) into the filter and returns the
// average.
func (f *SNRFilter) Observe(snrdB float64) float64 {
	a := f.Alpha
	if a == 0 {
		a = DefaultSNRAlpha
	}
	if !f.primed {
		f.value = snrdB
		f.primed = true
		return f.value
	}
	f.value = (1-a)*f.value + a*snrdB
	return f.value
}

// Value returns the current average (0 if never primed).
func (f *SNRFilter) Value() float64 { return f.value }

// Primed reports whether the filter has seen any sample.
func (f *SNRFilter) Primed() bool { return f.primed }

// Reset discards the filter state (PHY migration).
func (f *SNRFilter) Reset() {
	f.value = 0
	f.primed = false
}
