package harq

import (
	"sort"

	"slingshot/internal/ckpt/wire"
)

// SnapshotTo writes the pool's full soft-buffer state in canonical order
// (sorted by (UE, process)). LLR contents are folded in as an FNV digest
// plus length rather than raw floats: divergence-sensitive but compact,
// and the digest is computed immediately so no pooled memory is retained.
func (p *Pool) SnapshotTo(w *wire.W) {
	keys := make([]key, 0, len(p.buffers))
	for k := range p.buffers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ue != keys[j].ue {
			return keys[i].ue < keys[j].ue
		}
		return keys[i].proc < keys[j].proc
	})
	w.U64(p.Combined)
	w.U64(p.Interrupted)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		b := p.buffers[k]
		w.U16(k.ue)
		w.U8(k.proc)
		w.Bool(b.Active)
		w.U32(uint32(b.TxCount))
		w.U32(uint32(len(b.LLR)))
		h := wire.HashInit
		for _, v := range b.LLR {
			h = wire.HashF64(h, v)
		}
		w.U64(h)
	}
}

// SnapshotTo writes the filter's EMA state.
func (f *SNRFilter) SnapshotTo(w *wire.W) {
	w.F64(f.Alpha)
	w.F64(f.value)
	w.Bool(f.primed)
}
