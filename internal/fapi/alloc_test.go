package fapi

import (
	"testing"

	"slingshot/internal/dsp"
	"slingshot/internal/mem"
)

// TestPDUAssemblyAllocs pins the pooled FAPI round trip: leasing a config,
// assembling PDUs, encoding to a pooled wire buffer, decoding it back and
// releasing everything must not allocate at steady state. A regression here
// means some stage stopped reusing pooled storage.
func TestPDUAssemblyAllocs(t *testing.T) {
	if mem.DetectorArmed() {
		t.Skip("pool leak detector armed (-race or SLINGSHOT_POOL=debug); its bookkeeping allocates")
	}
	prev := mem.SetEnabled(true)
	defer mem.SetEnabled(prev)
	cycle := func() {
		ul := GetULConfig(0, 5)
		ul.PDUs = append(ul.PDUs, PDU{
			UEID: 7, HARQID: 1, NewData: true,
			Alloc:   dsp.Allocation{UEID: 7, StartPRB: 0, NumPRB: 10, Mod: dsp.QPSK},
			TBBytes: 64,
		})
		wire := EncodePooled(ul)
		ReleaseShallow(ul)
		m, err := Decode(wire)
		mem.PutBytes(wire)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseDeep(m)
	}
	cycle() // prime the message and buffer pools
	if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
		t.Fatalf("pooled FAPI assembly allocates %.1f times per round trip, want 0", avg)
	}
}

// TestTxDataAssemblyAllocs does the same for the payload-bearing TX_DATA
// path, whose decode leases Data buffers that ReleaseDeep must return.
func TestTxDataAssemblyAllocs(t *testing.T) {
	if mem.DetectorArmed() {
		t.Skip("pool leak detector armed (-race or SLINGSHOT_POOL=debug); its bookkeeping allocates")
	}
	prev := mem.SetEnabled(true)
	defer mem.SetEnabled(prev)
	tb := make([]byte, 96)
	for i := range tb {
		tb[i] = byte(i)
	}
	cycle := func() {
		tx := GetTxData(0, 6)
		tx.Payloads = append(tx.Payloads, TBPayload{UEID: 7, HARQID: 1, Data: tb})
		wire := EncodePooled(tx)
		ReleaseShallow(tx)
		m, err := Decode(wire)
		mem.PutBytes(wire)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseDeep(m)
	}
	cycle()
	if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
		t.Fatalf("pooled TX_DATA assembly allocates %.1f times per round trip, want 0", avg)
	}
}
