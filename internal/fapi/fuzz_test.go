package fapi

import (
	"bytes"
	"testing"

	"slingshot/internal/dsp"
)

// FuzzDecodeFAPI feeds arbitrary bytes to the FAPI message decoder: it
// must never panic, and every message it accepts must re-encode to a
// canonical wire form that decodes back to itself
// (Encode(Decode(Encode(m))) == Encode(m)).
func FuzzDecodeFAPI(f *testing.F) {
	seedMsgs := []Message{
		&ConfigRequest{CellID: 1, NumPRB: 106, MantissaBits: 9, FECIters: 8},
		&SlotIndication{CellID: 0, Slot: 42},
		&ULConfig{CellID: 2, Slot: 10, PDUs: []PDU{{
			UEID: 7, HARQID: 3, Rv: 1, NewData: true,
			Alloc:   dsp.Allocation{UEID: 7, StartPRB: 4, NumPRB: 8, Mod: dsp.QAM16},
			TBBytes: 512,
		}}},
		&TxData{CellID: 1, Slot: 9, Payloads: []TBPayload{{UEID: 3, HARQID: 1, Data: []byte("tb-bytes")}}},
		&CRCIndication{CellID: 1, Slot: 11, Results: []CRCResult{{UEID: 3, HARQID: 1, OK: true, SNRdB: 21.5}}},
	}
	for _, m := range seedMsgs {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		wire := Encode(m)
		m2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode of encoded %s failed: %v", m.Kind(), err)
		}
		if m2.Kind() != m.Kind() || m2.Cell() != m.Cell() || m2.AbsSlot() != m.AbsSlot() {
			t.Fatalf("header changed: %s/%d/%d -> %s/%d/%d",
				m.Kind(), m.Cell(), m.AbsSlot(), m2.Kind(), m2.Cell(), m2.AbsSlot())
		}
		if !bytes.Equal(wire, Encode(m2)) {
			t.Fatalf("%s did not re-encode canonically", m.Kind())
		}
	})
}
