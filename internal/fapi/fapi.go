// Package fapi implements the L2–PHY Functional API (FAPI): the message
// vocabulary the MAC uses to drive per-slot PHY work, and the PHY uses to
// return decoded data and CRC results. It is the "narrow waist" interface
// that Slingshot's Orion middlebox interposes on (§6 of the paper).
//
// The package defines typed messages with a compact binary codec so the
// same message can cross an in-process SHM channel or the inter-Orion
// Ethernet transport unchanged. "Null" UL_CONFIG/DL_CONFIG requests —
// valid requests with zero UE PDUs — are first-class: they are how Orion
// keeps a hot-standby secondary PHY alive at negligible cost (§6.2).
package fapi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"slingshot/internal/dsp"
	"slingshot/internal/fronthaul"
	"slingshot/internal/mem"
)

// Kind discriminates FAPI message types.
type Kind uint8

// FAPI message kinds. The numbering is private to this implementation;
// the real specification's message ids differ but the vocabulary matches.
const (
	KindConfigRequest Kind = iota + 1
	KindConfigResponse
	KindStartRequest
	KindStopRequest
	KindSlotIndication
	KindDLConfig
	KindULConfig
	KindTxData
	KindRxData
	KindCRCIndication
	KindErrorIndication
)

func (k Kind) String() string {
	switch k {
	case KindConfigRequest:
		return "CONFIG.request"
	case KindConfigResponse:
		return "CONFIG.response"
	case KindStartRequest:
		return "START.request"
	case KindStopRequest:
		return "STOP.request"
	case KindSlotIndication:
		return "SLOT.indication"
	case KindDLConfig:
		return "DL_CONFIG.request"
	case KindULConfig:
		return "UL_CONFIG.request"
	case KindTxData:
		return "TX_DATA.request"
	case KindRxData:
		return "RX_DATA.indication"
	case KindCRCIndication:
		return "CRC.indication"
	case KindErrorIndication:
		return "ERROR.indication"
	case KindUCIIndication:
		return "UCI.indication"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is implemented by every FAPI message.
type Message interface {
	Kind() Kind
	// Cell returns the cell (== RU) the message belongs to.
	Cell() uint16
	// AbsSlot returns the absolute slot counter the message applies to
	// (0 for slot-less messages like CONFIG).
	AbsSlot() uint64
	encodeBody(b []byte) []byte
	decodeBody(b []byte) error
	// bodySize returns the exact encoded body length, so Encode can size
	// its output in one allocation (and Orion can price a message's
	// processing delay without encoding it twice).
	bodySize() int
}

// PDU describes one UE's work item in a UL_CONFIG or DL_CONFIG request:
// the resource allocation, modulation, HARQ identity, and transport-block
// size the PHY must encode or decode.
type PDU struct {
	UEID    uint16
	HARQID  uint8
	Rv      uint8 // redundancy version: 0 = initial transmission
	NewData bool  // true = flush HARQ buffer, initial transmission
	Alloc   dsp.Allocation
	TBBytes uint32
}

const pduWire = 2 + 1 + 1 + 1 + 2 + 2 + 2 + 1 + 4

func (p *PDU) encode(b []byte) []byte {
	var buf [pduWire]byte
	binary.BigEndian.PutUint16(buf[0:2], p.UEID)
	buf[2] = p.HARQID
	buf[3] = p.Rv
	if p.NewData {
		buf[4] = 1
	}
	binary.BigEndian.PutUint16(buf[5:7], p.Alloc.UEID)
	binary.BigEndian.PutUint16(buf[7:9], uint16(p.Alloc.StartPRB))
	binary.BigEndian.PutUint16(buf[9:11], uint16(p.Alloc.NumPRB))
	buf[11] = uint8(p.Alloc.Mod)
	binary.BigEndian.PutUint32(buf[12:16], p.TBBytes)
	return append(b, buf[:]...)
}

func (p *PDU) decode(b []byte) ([]byte, error) {
	if len(b) < pduWire {
		return nil, ErrTruncated
	}
	p.UEID = binary.BigEndian.Uint16(b[0:2])
	p.HARQID = b[2]
	p.Rv = b[3]
	p.NewData = b[4] == 1
	p.Alloc.UEID = binary.BigEndian.Uint16(b[5:7])
	p.Alloc.StartPRB = int(binary.BigEndian.Uint16(b[7:9]))
	p.Alloc.NumPRB = int(binary.BigEndian.Uint16(b[9:11]))
	p.Alloc.Mod = dsp.Modulation(b[11])
	p.TBBytes = binary.BigEndian.Uint32(b[12:16])
	return b[pduWire:], nil
}

// TBPayload carries one UE's transport-block bytes in TX_DATA/RX_DATA.
type TBPayload struct {
	UEID   uint16
	HARQID uint8
	Data   []byte
}

// CRCResult is one UE's decode outcome in a CRC.indication.
type CRCResult struct {
	UEID   uint16
	HARQID uint8
	OK     bool
	SNRdB  float32 // PHY's post-equalization SNR estimate
}

// Codec errors.
var (
	ErrTruncated   = errors.New("fapi: truncated message")
	ErrUnknownKind = errors.New("fapi: unknown message kind")
)

// header is shared by all messages on the wire:
// kind(1) cell(2) absSlot(8) bodyLen(4).
const headerWire = 1 + 2 + 8 + 4

// EncodedSize returns the exact wire size of m without encoding it.
func EncodedSize(m Message) int {
	return headerWire + m.bodySize()
}

// AppendEncode serializes m to wire format, appending to dst.
func AppendEncode(dst []byte, m Message) []byte {
	var h [headerWire]byte
	h[0] = byte(m.Kind())
	binary.BigEndian.PutUint16(h[1:3], m.Cell())
	binary.BigEndian.PutUint64(h[3:11], m.AbsSlot())
	binary.BigEndian.PutUint32(h[11:15], uint32(m.bodySize()))
	dst = append(dst, h[:]...)
	return m.encodeBody(dst)
}

// Encode serializes any message to wire format in a single allocation.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, EncodedSize(m)), m)
}

// EncodePooled serializes m into a leased mem buffer; recycle the result
// with mem.PutBytes once the wire bytes have been consumed.
func EncodePooled(m Message) []byte {
	return AppendEncode(mem.GetBytesCap(EncodedSize(m)), m)
}

// Decode parses one wire-format message.
func Decode(data []byte) (Message, error) {
	if len(data) < headerWire {
		return nil, ErrTruncated
	}
	kind := Kind(data[0])
	cell := binary.BigEndian.Uint16(data[1:3])
	abs := binary.BigEndian.Uint64(data[3:11])
	bodyLen := int(binary.BigEndian.Uint32(data[11:15]))
	if len(data) < headerWire+bodyLen {
		return nil, ErrTruncated
	}
	body := data[headerWire : headerWire+bodyLen]

	// The per-slot message kinds lease their structs (and, inside
	// decodeBody, their element slices' capacity) from typed free lists;
	// ReleaseShallow/ReleaseDeep recycle them. Control-plane kinds are rare
	// enough to allocate fresh.
	var m Message
	switch kind {
	case KindConfigRequest:
		m = &ConfigRequest{CellID: cell}
	case KindConfigResponse:
		m = &ConfigResponse{CellID: cell}
	case KindStartRequest:
		m = &StartRequest{CellID: cell}
	case KindStopRequest:
		m = &StopRequest{CellID: cell}
	case KindSlotIndication:
		m = GetSlotIndication(cell, abs)
	case KindDLConfig:
		m = GetDLConfig(cell, abs)
	case KindULConfig:
		m = GetULConfig(cell, abs)
	case KindTxData:
		m = GetTxData(cell, abs)
	case KindRxData:
		m = GetRxData(cell, abs)
	case KindCRCIndication:
		m = GetCRCIndication(cell, abs)
	case KindErrorIndication:
		m = &ErrorIndication{CellID: cell, Slot: abs}
	case KindUCIIndication:
		m = GetUCIIndication(cell, abs)
	default:
		return nil, ErrUnknownKind
	}
	if err := m.decodeBody(body); err != nil {
		return nil, err
	}
	return m, nil
}

// SlotID returns the wrapped on-air slot identifier for a message slot.
func SlotID(absSlot uint64) fronthaul.SlotID {
	return fronthaul.SlotFromCounter(absSlot)
}
