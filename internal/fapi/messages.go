package fapi

import (
	"encoding/binary"

	"slingshot/internal/mem"
)

// ConfigRequest initializes PHY processing for a cell (== RU). The L2
// sends it when onboarding a new RU; Orion duplicates it to provision both
// the primary and the secondary PHY (§6.3).
type ConfigRequest struct {
	CellID uint16
	// NumPRB is the carrier bandwidth in PRBs.
	NumPRB uint16
	// MantissaBits selects the fronthaul BFP width.
	MantissaBits uint8
	// FECIters is the PHY decoder's iteration budget. The live-upgrade
	// experiment (Fig 11) deploys a secondary PHY with a larger budget.
	FECIters uint8
	// Seed derives the cell's scrambling/pilot sequences.
	Seed uint64
}

func (m *ConfigRequest) Kind() Kind      { return KindConfigRequest }
func (m *ConfigRequest) Cell() uint16    { return m.CellID }
func (m *ConfigRequest) AbsSlot() uint64 { return 0 }

func (m *ConfigRequest) encodeBody(b []byte) []byte {
	var buf [14]byte
	binary.BigEndian.PutUint16(buf[0:2], m.NumPRB)
	buf[2] = m.MantissaBits
	buf[3] = m.FECIters
	binary.BigEndian.PutUint64(buf[4:12], m.Seed)
	return append(b, buf[:]...)
}

func (m *ConfigRequest) bodySize() int { return 14 }

func (m *ConfigRequest) decodeBody(b []byte) error {
	if len(b) < 14 {
		return ErrTruncated
	}
	m.NumPRB = binary.BigEndian.Uint16(b[0:2])
	m.MantissaBits = b[2]
	m.FECIters = b[3]
	m.Seed = binary.BigEndian.Uint64(b[4:12])
	return nil
}

// ConfigResponse acknowledges a ConfigRequest.
type ConfigResponse struct {
	CellID uint16
	OK     bool
}

func (m *ConfigResponse) Kind() Kind      { return KindConfigResponse }
func (m *ConfigResponse) Cell() uint16    { return m.CellID }
func (m *ConfigResponse) AbsSlot() uint64 { return 0 }

func (m *ConfigResponse) encodeBody(b []byte) []byte {
	v := byte(0)
	if m.OK {
		v = 1
	}
	return append(b, v)
}

func (m *ConfigResponse) bodySize() int { return 1 }

func (m *ConfigResponse) decodeBody(b []byte) error {
	if len(b) < 1 {
		return ErrTruncated
	}
	m.OK = b[0] == 1
	return nil
}

// StartRequest starts slot processing for a configured cell.
type StartRequest struct{ CellID uint16 }

func (m *StartRequest) Kind() Kind                 { return KindStartRequest }
func (m *StartRequest) Cell() uint16               { return m.CellID }
func (m *StartRequest) AbsSlot() uint64            { return 0 }
func (m *StartRequest) encodeBody(b []byte) []byte { return b }
func (m *StartRequest) decodeBody([]byte) error    { return nil }
func (m *StartRequest) bodySize() int              { return 0 }

// StopRequest stops slot processing for a cell.
type StopRequest struct{ CellID uint16 }

func (m *StopRequest) Kind() Kind                 { return KindStopRequest }
func (m *StopRequest) Cell() uint16               { return m.CellID }
func (m *StopRequest) AbsSlot() uint64            { return 0 }
func (m *StopRequest) encodeBody(b []byte) []byte { return b }
func (m *StopRequest) decodeBody([]byte) error    { return nil }
func (m *StopRequest) bodySize() int              { return 0 }

// SlotIndication is the PHY's per-slot tick to the L2.
type SlotIndication struct {
	CellID uint16
	Slot   uint64
}

func (m *SlotIndication) Kind() Kind                 { return KindSlotIndication }
func (m *SlotIndication) Cell() uint16               { return m.CellID }
func (m *SlotIndication) AbsSlot() uint64            { return m.Slot }
func (m *SlotIndication) encodeBody(b []byte) []byte { return b }
func (m *SlotIndication) decodeBody([]byte) error    { return nil }
func (m *SlotIndication) bodySize() int              { return 0 }

// DLConfig is the per-slot downlink work request. A request with zero PDUs
// is a valid "null" request: the PHY stays protocol-alive but does no
// signal processing for the slot.
type DLConfig struct {
	CellID uint16
	Slot   uint64
	PDUs   []PDU
}

func (m *DLConfig) Kind() Kind      { return KindDLConfig }
func (m *DLConfig) Cell() uint16    { return m.CellID }
func (m *DLConfig) AbsSlot() uint64 { return m.Slot }

// Null reports whether the request carries no work.
func (m *DLConfig) Null() bool { return len(m.PDUs) == 0 }

func (m *DLConfig) encodeBody(b []byte) []byte { return encodePDUs(b, m.PDUs) }
func (m *DLConfig) bodySize() int              { return 2 + len(m.PDUs)*pduWire }
func (m *DLConfig) decodeBody(b []byte) error {
	pdus, err := decodePDUsInto(m.PDUs[:0], b)
	m.PDUs = pdus
	return err
}

// ULConfig is the per-slot uplink work request; zero PDUs = null request.
type ULConfig struct {
	CellID uint16
	Slot   uint64
	PDUs   []PDU
}

func (m *ULConfig) Kind() Kind      { return KindULConfig }
func (m *ULConfig) Cell() uint16    { return m.CellID }
func (m *ULConfig) AbsSlot() uint64 { return m.Slot }

// Null reports whether the request carries no work.
func (m *ULConfig) Null() bool { return len(m.PDUs) == 0 }

func (m *ULConfig) encodeBody(b []byte) []byte { return encodePDUs(b, m.PDUs) }
func (m *ULConfig) bodySize() int              { return 2 + len(m.PDUs)*pduWire }
func (m *ULConfig) decodeBody(b []byte) error {
	pdus, err := decodePDUsInto(m.PDUs[:0], b)
	m.PDUs = pdus
	return err
}

func encodePDUs(b []byte, pdus []PDU) []byte {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(pdus)))
	b = append(b, n[:]...)
	for i := range pdus {
		b = pdus[i].encode(b)
	}
	return b
}

// decodePDUsInto appends the decoded PDUs to dst (reusing its capacity on
// recycled messages). A zero-PDU body returns dst unchanged, so a fresh
// message decodes a null config to a nil slice exactly as before.
func decodePDUsInto(dst []PDU, b []byte) ([]PDU, error) {
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	var err error
	for i := 0; i < n; i++ {
		var p PDU
		if b, err = p.decode(b); err != nil {
			return nil, err
		}
		dst = append(dst, p)
	}
	return dst, nil
}

// TxData carries downlink transport-block payloads matching a DLConfig.
type TxData struct {
	CellID   uint16
	Slot     uint64
	Payloads []TBPayload
}

func (m *TxData) Kind() Kind      { return KindTxData }
func (m *TxData) Cell() uint16    { return m.CellID }
func (m *TxData) AbsSlot() uint64 { return m.Slot }

func (m *TxData) encodeBody(b []byte) []byte { return encodePayloads(b, m.Payloads) }
func (m *TxData) bodySize() int              { return payloadsWire(m.Payloads) }
func (m *TxData) decodeBody(b []byte) error {
	ps, err := decodePayloadsInto(m.Payloads[:0], b)
	m.Payloads = ps
	return err
}

// RxData carries uplink transport blocks the PHY decoded successfully.
type RxData struct {
	CellID   uint16
	Slot     uint64
	Payloads []TBPayload
}

func (m *RxData) Kind() Kind      { return KindRxData }
func (m *RxData) Cell() uint16    { return m.CellID }
func (m *RxData) AbsSlot() uint64 { return m.Slot }

func (m *RxData) encodeBody(b []byte) []byte { return encodePayloads(b, m.Payloads) }
func (m *RxData) bodySize() int              { return payloadsWire(m.Payloads) }
func (m *RxData) decodeBody(b []byte) error {
	ps, err := decodePayloadsInto(m.Payloads[:0], b)
	m.Payloads = ps
	return err
}

func encodePayloads(b []byte, ps []TBPayload) []byte {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(ps)))
	b = append(b, n[:]...)
	for _, p := range ps {
		var h [7]byte
		binary.BigEndian.PutUint16(h[0:2], p.UEID)
		h[2] = p.HARQID
		binary.BigEndian.PutUint32(h[3:7], uint32(len(p.Data)))
		b = append(b, h[:]...)
		b = append(b, p.Data...)
	}
	return b
}

func payloadsWire(ps []TBPayload) int {
	n := 2
	for i := range ps {
		n += 7 + len(ps[i].Data)
	}
	return n
}

// decodePayloadsInto appends decoded payloads to dst. Data is copied out
// of the wire buffer into leased mem buffers, so the decoded message owns
// its payloads and a ReleaseDeep recycles them.
func decodePayloadsInto(dst []TBPayload, b []byte) ([]TBPayload, error) {
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	for i := 0; i < n; i++ {
		if len(b) < 7 {
			return nil, ErrTruncated
		}
		var p TBPayload
		p.UEID = binary.BigEndian.Uint16(b[0:2])
		p.HARQID = b[2]
		dlen := int(binary.BigEndian.Uint32(b[3:7]))
		b = b[7:]
		if len(b) < dlen {
			return nil, ErrTruncated
		}
		p.Data = append(mem.GetBytesCap(dlen), b[:dlen]...)
		b = b[dlen:]
		dst = append(dst, p)
	}
	return dst, nil
}

// CRCIndication reports per-UE uplink decode outcomes for a slot.
type CRCIndication struct {
	CellID  uint16
	Slot    uint64
	Results []CRCResult
}

func (m *CRCIndication) Kind() Kind      { return KindCRCIndication }
func (m *CRCIndication) Cell() uint16    { return m.CellID }
func (m *CRCIndication) AbsSlot() uint64 { return m.Slot }

func (m *CRCIndication) encodeBody(b []byte) []byte {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(m.Results)))
	b = append(b, n[:]...)
	for _, r := range m.Results {
		var buf [8]byte
		binary.BigEndian.PutUint16(buf[0:2], r.UEID)
		buf[2] = r.HARQID
		if r.OK {
			buf[3] = 1
		}
		binary.BigEndian.PutUint32(buf[4:8], uint32(int32(r.SNRdB*256)))
		b = append(b, buf[:]...)
	}
	return b
}

func (m *CRCIndication) bodySize() int { return 2 + len(m.Results)*8 }

func (m *CRCIndication) decodeBody(b []byte) error {
	if len(b) < 2 {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if n == 0 {
		return nil
	}
	dst := m.Results[:0]
	for i := 0; i < n; i++ {
		if len(b) < 8 {
			return ErrTruncated
		}
		dst = append(dst, CRCResult{
			UEID:   binary.BigEndian.Uint16(b[0:2]),
			HARQID: b[2],
			OK:     b[3] == 1,
			SNRdB:  float32(int32(binary.BigEndian.Uint32(b[4:8]))) / 256,
		})
		b = b[8:]
	}
	m.Results = dst
	return nil
}

// ErrorIndication reports a PHY-side protocol error (e.g. missing
// UL_CONFIG for a slot — the condition that crashes FlexRAN per §6.2).
type ErrorIndication struct {
	CellID uint16
	Slot   uint64
	Code   uint8
}

// Error codes.
const (
	ErrCodeMissingConfig uint8 = 1 // no UL/DL_CONFIG arrived for a slot
	ErrCodeBadRequest    uint8 = 2 // malformed or out-of-order request
)

func (m *ErrorIndication) Kind() Kind      { return KindErrorIndication }
func (m *ErrorIndication) Cell() uint16    { return m.CellID }
func (m *ErrorIndication) AbsSlot() uint64 { return m.Slot }

func (m *ErrorIndication) encodeBody(b []byte) []byte { return append(b, m.Code) }
func (m *ErrorIndication) bodySize() int              { return 1 }
func (m *ErrorIndication) decodeBody(b []byte) error {
	if len(b) < 1 {
		return ErrTruncated
	}
	m.Code = b[0]
	return nil
}

// NullUL returns a null UL_CONFIG for the slot.
func NullUL(cell uint16, slot uint64) *ULConfig {
	return &ULConfig{CellID: cell, Slot: slot}
}

// NullDL returns a null DL_CONFIG for the slot.
func NullDL(cell uint16, slot uint64) *DLConfig {
	return &DLConfig{CellID: cell, Slot: slot}
}
