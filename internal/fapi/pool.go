package fapi

import "slingshot/internal/mem"

// Typed free lists for the per-slot message kinds — every TTI creates a
// SLOT.indication, UL/DL_CONFIG, TX_DATA and (on the uplink return path)
// RX_DATA/CRC/UCI indications per cell, so these dominate steady-state
// message churn. Reset keeps element-slice capacity across reuse (decode
// and assembly append into it) while dropping Data pointers so the pool
// never pins payload buffers.
//
// Ownership contract (DESIGN.md §10):
//
//   - ReleaseShallow recycles the struct and its element slices but NOT
//     TBPayload.Data — for messages whose Data aliases storage the sender
//     still owns (L2's TX_DATA aliases the HARQ retransmission copy).
//   - ReleaseDeep additionally recycles each Data buffer — for messages
//     that own their payloads outright (anything built by Decode, and the
//     PHY's RX_DATA).
//   - Both are no-ops for message kinds that are not pooled, so callers
//     can release uniformly through the Message interface.
var (
	poolSlotInd = mem.NewPool[SlotIndication](func(m *SlotIndication) {
		*m = SlotIndication{}
	})
	poolULConfig = mem.NewPool[ULConfig](func(m *ULConfig) {
		*m = ULConfig{PDUs: m.PDUs[:0]}
	})
	poolDLConfig = mem.NewPool[DLConfig](func(m *DLConfig) {
		*m = DLConfig{PDUs: m.PDUs[:0]}
	})
	poolTxData = mem.NewPool[TxData](func(m *TxData) {
		*m = TxData{Payloads: resetPayloads(m.Payloads)}
	})
	poolRxData = mem.NewPool[RxData](func(m *RxData) {
		*m = RxData{Payloads: resetPayloads(m.Payloads)}
	})
	poolCRCInd = mem.NewPool[CRCIndication](func(m *CRCIndication) {
		*m = CRCIndication{Results: m.Results[:0]}
	})
	poolUCIInd = mem.NewPool[UCIIndication](func(m *UCIIndication) {
		*m = UCIIndication{Reports: m.Reports[:0]}
	})
)

func resetPayloads(ps []TBPayload) []TBPayload {
	for i := range ps {
		ps[i].Data = nil
	}
	return ps[:0]
}

// GetSlotIndication leases a SLOT.indication.
func GetSlotIndication(cell uint16, slot uint64) *SlotIndication {
	m := poolSlotInd.Get()
	m.CellID, m.Slot = cell, slot
	return m
}

// GetULConfig leases a UL_CONFIG with zero PDUs (append to m.PDUs).
func GetULConfig(cell uint16, slot uint64) *ULConfig {
	m := poolULConfig.Get()
	m.CellID, m.Slot = cell, slot
	return m
}

// GetDLConfig leases a DL_CONFIG with zero PDUs.
func GetDLConfig(cell uint16, slot uint64) *DLConfig {
	m := poolDLConfig.Get()
	m.CellID, m.Slot = cell, slot
	return m
}

// GetTxData leases a TX_DATA with zero payloads.
func GetTxData(cell uint16, slot uint64) *TxData {
	m := poolTxData.Get()
	m.CellID, m.Slot = cell, slot
	return m
}

// GetRxData leases an RX_DATA with zero payloads.
func GetRxData(cell uint16, slot uint64) *RxData {
	m := poolRxData.Get()
	m.CellID, m.Slot = cell, slot
	return m
}

// GetCRCIndication leases a CRC.indication with zero results.
func GetCRCIndication(cell uint16, slot uint64) *CRCIndication {
	m := poolCRCInd.Get()
	m.CellID, m.Slot = cell, slot
	return m
}

// GetUCIIndication leases a UCI.indication with zero reports.
func GetUCIIndication(cell uint16, slot uint64) *UCIIndication {
	m := poolUCIInd.Get()
	m.CellID, m.Slot = cell, slot
	return m
}

func release(m Message, deep bool) {
	switch v := m.(type) {
	case *SlotIndication:
		poolSlotInd.Put(v)
	case *ULConfig:
		poolULConfig.Put(v)
	case *DLConfig:
		poolDLConfig.Put(v)
	case *TxData:
		if deep {
			for i := range v.Payloads {
				mem.PutBytes(v.Payloads[i].Data)
				v.Payloads[i].Data = nil
			}
		}
		poolTxData.Put(v)
	case *RxData:
		if deep {
			for i := range v.Payloads {
				mem.PutBytes(v.Payloads[i].Data)
				v.Payloads[i].Data = nil
			}
		}
		poolRxData.Put(v)
	case *CRCIndication:
		poolCRCInd.Put(v)
	case *UCIIndication:
		poolUCIInd.Put(v)
	}
}

// ReleaseShallow recycles a message struct and its element slices; payload
// Data buffers are left alone (the sender may still own them).
func ReleaseShallow(m Message) { release(m, false) }

// ReleaseDeep recycles a message including its payload Data buffers. Only
// legal when the releaser owns the message outright (e.g. it came from
// Decode) and no Data slice has been retained elsewhere.
func ReleaseDeep(m Message) { release(m, true) }
