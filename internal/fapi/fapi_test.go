package fapi

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"slingshot/internal/dsp"
)

func TestKindStrings(t *testing.T) {
	for k := KindConfigRequest; k <= KindErrorIndication; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("decode %v: %v", m.Kind(), err)
	}
	if got.Kind() != m.Kind() || got.Cell() != m.Cell() || got.AbsSlot() != m.AbsSlot() {
		t.Fatalf("header mismatch: %v vs %v", got, m)
	}
	return got
}

func TestConfigRequestRoundTrip(t *testing.T) {
	m := &ConfigRequest{CellID: 3, NumPRB: 273, MantissaBits: 9, FECIters: 8, Seed: 0xDEADBEEF}
	got := roundTrip(t, m).(*ConfigRequest)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestConfigResponseRoundTrip(t *testing.T) {
	for _, ok := range []bool{true, false} {
		m := &ConfigResponse{CellID: 1, OK: ok}
		got := roundTrip(t, m).(*ConfigResponse)
		if got.OK != ok {
			t.Fatalf("OK = %v", got.OK)
		}
	}
}

func TestStartStopSlotIndication(t *testing.T) {
	roundTrip(t, &StartRequest{CellID: 2})
	roundTrip(t, &StopRequest{CellID: 2})
	m := roundTrip(t, &SlotIndication{CellID: 2, Slot: 12345}).(*SlotIndication)
	if m.Slot != 12345 {
		t.Fatalf("Slot = %d", m.Slot)
	}
}

func samplePDU(ue uint16) PDU {
	return PDU{
		UEID: ue, HARQID: 3, Rv: 1, NewData: true,
		Alloc: dsp.Allocation{
			UEID: ue, StartPRB: 10, NumPRB: 20, Mod: dsp.QAM64,
		},
		TBBytes: 1500,
	}
}

func TestULDLConfigRoundTrip(t *testing.T) {
	ul := &ULConfig{CellID: 4, Slot: 99, PDUs: []PDU{samplePDU(1), samplePDU(2)}}
	got := roundTrip(t, ul).(*ULConfig)
	if !reflect.DeepEqual(got.PDUs, ul.PDUs) {
		t.Fatalf("UL PDUs: %+v vs %+v", got.PDUs, ul.PDUs)
	}
	if got.Null() {
		t.Fatal("non-empty ULConfig reported Null")
	}
	dl := &DLConfig{CellID: 4, Slot: 100, PDUs: []PDU{samplePDU(7)}}
	gotDL := roundTrip(t, dl).(*DLConfig)
	if !reflect.DeepEqual(gotDL.PDUs, dl.PDUs) {
		t.Fatalf("DL PDUs mismatch")
	}
}

func TestNullConfigs(t *testing.T) {
	ul := NullUL(5, 77)
	if !ul.Null() || ul.CellID != 5 || ul.Slot != 77 {
		t.Fatalf("NullUL: %+v", ul)
	}
	got := roundTrip(t, ul).(*ULConfig)
	if !got.Null() {
		t.Fatal("null UL lost nullness over the wire")
	}
	dl := NullDL(5, 78)
	if !dl.Null() {
		t.Fatal("NullDL not null")
	}
	gotDL := roundTrip(t, dl).(*DLConfig)
	if !gotDL.Null() {
		t.Fatal("null DL lost nullness over the wire")
	}
}

func TestTxRxDataRoundTrip(t *testing.T) {
	tx := &TxData{CellID: 6, Slot: 10, Payloads: []TBPayload{
		{UEID: 1, HARQID: 2, Data: []byte("hello world")},
		{UEID: 2, HARQID: 0, Data: bytes.Repeat([]byte{0xAB}, 1000)},
	}}
	got := roundTrip(t, tx).(*TxData)
	if !reflect.DeepEqual(got.Payloads, tx.Payloads) {
		t.Fatal("TxData payloads mismatch")
	}
	rx := &RxData{CellID: 6, Slot: 11, Payloads: []TBPayload{{UEID: 9, Data: []byte{1}}}}
	gotRx := roundTrip(t, rx).(*RxData)
	if !reflect.DeepEqual(gotRx.Payloads, rx.Payloads) {
		t.Fatal("RxData payloads mismatch")
	}
}

func TestCRCIndicationRoundTrip(t *testing.T) {
	m := &CRCIndication{CellID: 7, Slot: 55, Results: []CRCResult{
		{UEID: 1, HARQID: 3, OK: true, SNRdB: 17.25},
		{UEID: 2, HARQID: 0, OK: false, SNRdB: -3.5},
	}}
	got := roundTrip(t, m).(*CRCIndication)
	for i, r := range got.Results {
		want := m.Results[i]
		if r.UEID != want.UEID || r.HARQID != want.HARQID || r.OK != want.OK {
			t.Fatalf("result %d: %+v vs %+v", i, r, want)
		}
		if math.Abs(float64(r.SNRdB-want.SNRdB)) > 1.0/256 {
			t.Fatalf("SNR %f vs %f", r.SNRdB, want.SNRdB)
		}
	}
}

func TestErrorIndicationRoundTrip(t *testing.T) {
	m := &ErrorIndication{CellID: 8, Slot: 1, Code: ErrCodeMissingConfig}
	got := roundTrip(t, m).(*ErrorIndication)
	if got.Code != ErrCodeMissingConfig {
		t.Fatalf("Code = %d", got.Code)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrTruncated {
		t.Fatalf("nil: %v", err)
	}
	wire := Encode(&StartRequest{CellID: 1})
	wire[0] = 200
	if _, err := Decode(wire); err != ErrUnknownKind {
		t.Fatalf("unknown kind: %v", err)
	}
	wire = Encode(&ConfigRequest{CellID: 1})
	if _, err := Decode(wire[:len(wire)-3]); err != ErrTruncated {
		t.Fatalf("truncated body: %v", err)
	}
	// Truncated PDU list.
	wire = Encode(&ULConfig{CellID: 1, Slot: 1, PDUs: []PDU{samplePDU(1)}})
	bad := wire[:len(wire)-1]
	// Fix header length to claim full body, then truncate: header claims
	// more than present -> truncated.
	if _, err := Decode(bad); err != ErrTruncated {
		t.Fatalf("truncated PDU: %v", err)
	}
}

func TestEncodeDecodePropertySlotHeader(t *testing.T) {
	f := func(cell uint16, slot uint64) bool {
		m := &SlotIndication{CellID: cell, Slot: slot}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return got.Cell() == cell && got.AbsSlot() == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPDUWireStability(t *testing.T) {
	// Wire size must not silently change: Orion and the PHY both parse it.
	p := samplePDU(1)
	enc := p.encode(nil)
	if len(enc) != pduWire {
		t.Fatalf("PDU wire size %d, want %d", len(enc), pduWire)
	}
}

func TestSlotIDHelper(t *testing.T) {
	s := SlotID(41)
	if s.Index() != 41 {
		t.Fatalf("SlotID(41).Index() = %d", s.Index())
	}
}

// TestDecodeFuzz: arbitrary bytes never panic the FAPI decoder.
func TestDecodeFuzz(t *testing.T) {
	f := func(data []byte) bool {
		m, err := Decode(data)
		return (m == nil) == (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestUCIListFuzz: arbitrary bytes never panic the UCI decoder.
func TestUCIListFuzz(t *testing.T) {
	f := func(data []byte) bool {
		DecodeUCIList(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestUCIRoundTrip(t *testing.T) {
	list := []UCI{
		{UEID: 1, HARQID: 3, HasFeedback: true, ACK: true, CQIdB: 21.5},
		{UEID: 2, CQIdB: -4.25},
	}
	got, err := DecodeUCIList(EncodeUCIList(list))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != list[0] || got[1] != list[1] {
		t.Fatalf("UCI round trip: %+v", got)
	}
	m := &UCIIndication{CellID: 4, Slot: 99, Reports: list}
	dec, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	ind := dec.(*UCIIndication)
	if len(ind.Reports) != 2 || ind.Reports[0].CQIdB != 21.5 {
		t.Fatalf("UCIIndication round trip: %+v", ind)
	}
}
