package fapi

import "encoding/binary"

// KindUCIIndication extends the message vocabulary with UCI.indication:
// uplink control information the UE sends on PUCCH — downlink HARQ
// ACK/NACK feedback and channel-quality reports. PHY migration can drop
// these (§8.4 of the paper), which is why they ride the fronthaul path
// instead of a side channel.
const KindUCIIndication Kind = 32

// UCI is one UE's uplink control report.
type UCI struct {
	UEID   uint16
	HARQID uint8
	// HasFeedback distinguishes an ACK/NACK report from a CQI-only UCI.
	HasFeedback bool
	ACK         bool
	// CQIdB is the UE's downlink SNR estimate.
	CQIdB float32
}

const uciWire = 2 + 1 + 1 + 1 + 4

// EncodeUCIList serializes UCI reports (used as fronthaul Aux payload and
// in UCIIndication bodies).
func EncodeUCIList(list []UCI) []byte {
	out := make([]byte, 2, 2+len(list)*uciWire)
	binary.BigEndian.PutUint16(out, uint16(len(list)))
	for _, u := range list {
		var buf [uciWire]byte
		binary.BigEndian.PutUint16(buf[0:2], u.UEID)
		buf[2] = u.HARQID
		if u.HasFeedback {
			buf[3] = 1
		}
		if u.ACK {
			buf[4] = 1
		}
		binary.BigEndian.PutUint32(buf[5:9], uint32(int32(u.CQIdB*256)))
		out = append(out, buf[:]...)
	}
	return out
}

// DecodeUCIList parses UCI reports.
func DecodeUCIList(data []byte) ([]UCI, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	data = data[2:]
	if len(data) < n*uciWire {
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]UCI, n)
	for i := range out {
		buf := data[i*uciWire:]
		out[i] = UCI{
			UEID:        binary.BigEndian.Uint16(buf[0:2]),
			HARQID:      buf[2],
			HasFeedback: buf[3] == 1,
			ACK:         buf[4] == 1,
			CQIdB:       float32(int32(binary.BigEndian.Uint32(buf[5:9]))) / 256,
		}
	}
	return out, nil
}

// UCIIndication reports the slot's uplink control information to the L2.
type UCIIndication struct {
	CellID  uint16
	Slot    uint64
	Reports []UCI
}

func (m *UCIIndication) Kind() Kind      { return KindUCIIndication }
func (m *UCIIndication) Cell() uint16    { return m.CellID }
func (m *UCIIndication) AbsSlot() uint64 { return m.Slot }

func (m *UCIIndication) encodeBody(b []byte) []byte {
	return append(b, EncodeUCIList(m.Reports)...)
}

func (m *UCIIndication) decodeBody(b []byte) error {
	list, err := DecodeUCIList(b)
	m.Reports = list
	return err
}
