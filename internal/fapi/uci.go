package fapi

import (
	"encoding/binary"

	"slingshot/internal/mem"
)

// KindUCIIndication extends the message vocabulary with UCI.indication:
// uplink control information the UE sends on PUCCH — downlink HARQ
// ACK/NACK feedback and channel-quality reports. PHY migration can drop
// these (§8.4 of the paper), which is why they ride the fronthaul path
// instead of a side channel.
const KindUCIIndication Kind = 32

// UCI is one UE's uplink control report.
type UCI struct {
	UEID   uint16
	HARQID uint8
	// HasFeedback distinguishes an ACK/NACK report from a CQI-only UCI.
	HasFeedback bool
	ACK         bool
	// CQIdB is the UE's downlink SNR estimate.
	CQIdB float32
}

const uciWire = 2 + 1 + 1 + 1 + 4

// EncodeUCIList serializes UCI reports (used as fronthaul Aux payload and
// in UCIIndication bodies).
func EncodeUCIList(list []UCI) []byte {
	return AppendUCIList(make([]byte, 0, 2+len(list)*uciWire), list)
}

// EncodeUCIListPooled is EncodeUCIList into a pool-leased buffer. The
// caller owns the result and returns it with mem.PutBytes once it has been
// copied to the wire.
func EncodeUCIListPooled(list []UCI) []byte {
	return AppendUCIList(mem.GetBytesCap(2+len(list)*uciWire), list)
}

// AppendUCIList serializes UCI reports, appending to dst.
func AppendUCIList(dst []byte, list []UCI) []byte {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(list)))
	dst = append(dst, n[:]...)
	for _, u := range list {
		var buf [uciWire]byte
		binary.BigEndian.PutUint16(buf[0:2], u.UEID)
		buf[2] = u.HARQID
		if u.HasFeedback {
			buf[3] = 1
		}
		if u.ACK {
			buf[4] = 1
		}
		binary.BigEndian.PutUint32(buf[5:9], uint32(int32(u.CQIdB*256)))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// AppendDecodeUCIList parses UCI reports appending to dst, reusing its
// capacity (pass a pooled message's Reports[:0]).
func AppendDecodeUCIList(dst []UCI, data []byte) ([]UCI, error) {
	return decodeUCIListInto(dst, data)
}

// DecodeUCIList parses UCI reports.
func DecodeUCIList(data []byte) ([]UCI, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	data = data[2:]
	if len(data) < n*uciWire {
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]UCI, n)
	for i := range out {
		buf := data[i*uciWire:]
		out[i] = UCI{
			UEID:        binary.BigEndian.Uint16(buf[0:2]),
			HARQID:      buf[2],
			HasFeedback: buf[3] == 1,
			ACK:         buf[4] == 1,
			CQIdB:       float32(int32(binary.BigEndian.Uint32(buf[5:9]))) / 256,
		}
	}
	return out, nil
}

// UCIIndication reports the slot's uplink control information to the L2.
type UCIIndication struct {
	CellID  uint16
	Slot    uint64
	Reports []UCI
}

func (m *UCIIndication) Kind() Kind      { return KindUCIIndication }
func (m *UCIIndication) Cell() uint16    { return m.CellID }
func (m *UCIIndication) AbsSlot() uint64 { return m.Slot }

func (m *UCIIndication) encodeBody(b []byte) []byte {
	return AppendUCIList(b, m.Reports)
}

func (m *UCIIndication) bodySize() int { return 2 + len(m.Reports)*uciWire }

func (m *UCIIndication) decodeBody(b []byte) error {
	list, err := decodeUCIListInto(m.Reports[:0], b)
	m.Reports = list
	return err
}

// decodeUCIListInto appends parsed UCI reports to dst, reusing capacity.
func decodeUCIListInto(dst []UCI, data []byte) ([]UCI, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	data = data[2:]
	if len(data) < n*uciWire {
		return nil, ErrTruncated
	}
	for i := 0; i < n; i++ {
		buf := data[i*uciWire:]
		dst = append(dst, UCI{
			UEID:        binary.BigEndian.Uint16(buf[0:2]),
			HARQID:      buf[2],
			HasFeedback: buf[3] == 1,
			ACK:         buf[4] == 1,
			CQIdB:       float32(int32(binary.BigEndian.Uint32(buf[5:9]))) / 256,
		})
	}
	return dst, nil
}
