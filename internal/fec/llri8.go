package fec

import "math"

// The int8 quantized-LLR lane (opt-in via SLINGSHOT_LLR=i8 in internal/phy)
// carries a block's soft values from demodulation to FEC decode as one byte
// per bit instead of eight, halving-and-then-some the LLR traffic a slot
// drags through the cache hierarchy. The decoder itself stays float: each
// decode dequantizes into pooled scratch (DecodeScratch.llrTmp) and runs the
// unchanged min-sum kernels, so an i8 decode is bit-identical to a float
// decode of the dequantized values — dequantization is pointwise, which
// keeps results independent of batch grouping, worker count and pooling.
// The only accuracy cost is the quantization itself, bounded by
// TestLLRLaneBLERDelta in internal/phy.

// LLRI8Step is the lane's default dequantization step: one LSB is 0.25 LLR,
// spanning ±31.75 — comfortably past the magnitudes where min-sum decisions
// saturate at the SNRs the simulator sweeps, while keeping sub-LSB noise an
// order of magnitude below the channel noise at the BLER waterfall.
const LLRI8Step = 0.25

// AppendQuantizeLLRI8 appends round-to-nearest quantizations of llr at the
// given step (0 means LLRI8Step), clamped to ±127 so dequantization is
// symmetric. The appended values dequantize as float64(q)*step.
func AppendQuantizeLLRI8(dst []int8, llr []float64, step float64) []int8 {
	if step <= 0 {
		step = LLRI8Step
	}
	inv := 1 / step
	for _, v := range llr {
		q := math.Round(v * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst = append(dst, int8(q))
	}
	return dst
}

// dequantLLRI8 expands quantized LLRs into s.llrTmp and returns the float
// slice the min-sum kernels consume. With the default power-of-two step the
// expansion is exact; any step still rounds once per value, identically
// wherever it runs.
func (s *DecodeScratch) dequantLLRI8(llri8 []int8, step float64) []float64 {
	if step <= 0 {
		step = LLRI8Step
	}
	if cap(s.llrTmp) < len(llri8) {
		s.llrTmp = make([]float64, len(llri8))
	}
	tmp := s.llrTmp[:len(llri8)]
	for i, q := range llri8 {
		tmp[i] = float64(q) * step
	}
	return tmp
}

// DecodeI8WithScratch is DecodeWithScratch for the int8 LLR lane: it
// dequantizes llri8 by step (0 means LLRI8Step) into the scratch's staging
// buffer and decodes the result. Bit-identical to calling DecodeWithScratch
// on the dequantized floats.
func (c *Code) DecodeI8WithScratch(llri8 []int8, step float64, maxIters int, s *DecodeScratch) DecodeResult {
	return c.DecodeWithScratch(s.dequantLLRI8(llri8, step), maxIters, s)
}
