// Package fec implements the forward-error-correction substrate of the
// simulated PHY: CRC attachment (transport-block CRC-24, code-block CRC-16
// as in 5G NR), and a systematic irregular repeat-accumulate (IRA) code —
// a linear-time-encodable member of the LDPC family, decoded with
// normalized min-sum belief propagation. The decoder's iteration count is
// a first-class parameter because the paper's live-upgrade experiment
// (Fig 11) upgrades the PHY to "more FEC iterations".
package fec

// CRC24 computes the 5G NR CRC24A checksum (polynomial 0x864CFB) over data.
func CRC24(data []byte) uint32 {
	var crc uint32
	for _, b := range data {
		crc ^= uint32(b) << 16
		for i := 0; i < 8; i++ {
			crc <<= 1
			if crc&0x1000000 != 0 {
				crc ^= 0x864CFB
			}
		}
	}
	return crc & 0xFFFFFF
}

// CRC16 computes CRC-16/CCITT (polynomial 0x1021), used for per-code-block
// checks.
func CRC16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// AppendCRC24 returns data with its CRC24 appended as 3 big-endian bytes.
func AppendCRC24(data []byte) []byte {
	crc := CRC24(data)
	return append(data, byte(crc>>16), byte(crc>>8), byte(crc))
}

// CheckCRC24 verifies and strips a trailing CRC24. It returns the payload
// and whether the check passed.
func CheckCRC24(data []byte) ([]byte, bool) {
	if len(data) < 3 {
		return nil, false
	}
	payload := data[:len(data)-3]
	want := uint32(data[len(data)-3])<<16 | uint32(data[len(data)-2])<<8 | uint32(data[len(data)-1])
	return payload, CRC24(payload) == want
}

// AppendCRC16 returns data with its CRC16 appended as 2 big-endian bytes.
func AppendCRC16(data []byte) []byte {
	crc := CRC16(data)
	return append(data, byte(crc>>8), byte(crc))
}

// CheckCRC16 verifies and strips a trailing CRC16.
func CheckCRC16(data []byte) ([]byte, bool) {
	if len(data) < 2 {
		return nil, false
	}
	payload := data[:len(data)-2]
	want := uint16(data[len(data)-2])<<8 | uint16(data[len(data)-1])
	return payload, CRC16(payload) == want
}
