package fec

import (
	"bytes"
	"sync"
	"testing"

	"slingshot/internal/par"
	"slingshot/internal/sim"
)

// noisyLLR derives a decodable LLR vector for c from seed.
func noisyLLR(c *Code, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	info := make([]byte, c.K)
	for i := range info {
		info[i] = byte(rng.Uint64() & 1)
	}
	coded := c.Encode(info)
	llr := make([]float64, c.N)
	for i, bit := range coded {
		s := 1.0
		if bit == 1 {
			s = -1
		}
		llr[i] = s*2.0 + rng.Norm()
	}
	return llr
}

// TestDecodeSharedCodeConcurrently decodes through ONE shared *Code from 8
// goroutines under -race. Before the DecodeScratch split, Code carried its
// min-sum working state (c2v/posterior/hard) in shared fields, so every
// decoder aliasing the cached code — e.g. the PHY and a UE holding the
// same fec.Get result — would corrupt each other the moment decodes ran
// concurrently. This test pins the fix: identical results to a sequential
// reference, no races.
func TestDecodeSharedCodeConcurrently(t *testing.T) {
	c := NewCode(256, 512, 99)
	const goroutines = 8
	const decodesPer = 20

	// Sequential reference outcomes, one stream per goroutine id.
	ref := make([][]DecodeResult, goroutines)
	for g := 0; g < goroutines; g++ {
		ref[g] = make([]DecodeResult, decodesPer)
		for i := 0; i < decodesPer; i++ {
			ref[g][i] = c.Decode(noisyLLR(c, uint64(g*1000+i+1)), 8)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < decodesPer; i++ {
				got := c.Decode(noisyLLR(c, uint64(g*1000+i+1)), 8)
				want := ref[g][i]
				if got.OK != want.OK || got.Iterations != want.Iterations ||
					!bytes.Equal(got.Info, want.Info) {
					errs <- "concurrent decode diverged from sequential reference"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestDecodeBatchMatchesSequential checks the ordered-merge contract:
// DecodeBatch over any pool width returns exactly the results a sequential
// job-order loop produces, in input order.
func TestDecodeBatchMatchesSequential(t *testing.T) {
	c := Get(256, 512, 7)
	const n = 32
	jobs := make([]DecodeJob, n)
	for i := range jobs {
		jobs[i] = DecodeJob{Code: c, LLR: noisyLLR(c, uint64(i+1)), MaxIters: 8}
	}
	want := make([]DecodeResult, n)
	for i, j := range jobs {
		want[i] = j.Code.Decode(j.LLR, j.MaxIters)
	}
	for _, workers := range []int{1, 4, 16} {
		prev := par.SetWorkers(workers)
		got := DecodeBatch(jobs)
		par.SetWorkers(prev)
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i := range got {
			if got[i].OK != want[i].OK || got[i].Iterations != want[i].Iterations ||
				!bytes.Equal(got[i].Info, want[i].Info) {
				t.Fatalf("workers=%d: result %d diverged from sequential decode", workers, i)
			}
		}
	}
}

// TestScratchDecodeMatchesWrapper pins the wrapper contract: Decode is a
// thin copy-out over DecodeWithScratch.
func TestScratchDecodeMatchesWrapper(t *testing.T) {
	c := NewCode(128, 256, 5)
	llr := noisyLLR(c, 3)
	want := c.Decode(llr, 8)
	s := c.NewScratch()
	got := c.DecodeWithScratch(llr, 8, s)
	if got.OK != want.OK || got.Iterations != want.Iterations || !bytes.Equal(got.Info, want.Info) {
		t.Fatal("DecodeWithScratch diverged from Decode")
	}
	// The scratch result aliases s.info; the wrapper's copy must not.
	got.Info[0] ^= 1
	if want.Info[0] == got.Info[0] && &want.Info[0] == &got.Info[0] {
		t.Fatal("Decode returned scratch-aliased Info")
	}
}

// TestGetConcurrent hammers the memoizing code cache from many goroutines.
func TestGetConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	codes := make([]*Code, 16)
	for g := range codes {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			codes[g] = Get(64, 128, uint64(400+g%2))
		}(g)
	}
	wg.Wait()
	for g := range codes {
		if codes[g] != codes[g%2] {
			t.Fatal("Get returned distinct codes for identical parameters")
		}
	}
}
