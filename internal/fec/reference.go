package fec

import (
	"fmt"
	"math"
)

// This file retains the pre-SIMD-shaped min-sum decoder verbatim: the
// textbook formulation over the per-row rowVars slices, with float sign
// flips and an explicit argmin index. It is the differential-test oracle
// for the flat CSR kernel (ira.go) and the SoA lane-group kernel (soa.go)
// — TestDecodeMatchesReference and friends assert the production paths are
// bit-exact against it — and the plainest statement of the algorithm for
// readers. It is not called from any hot path.

// referenceScratch is the reference decoder's working state, laid out the
// way the original decoder kept it: per-row message slices over one flat
// backing array.
type referenceScratch struct {
	c2v       [][]float64
	c2vFlat   []float64
	posterior []float64
	hard      []byte
	info      []byte
}

// NewReferenceScratch allocates reference-decoder scratch for the code.
func (c *Code) NewReferenceScratch() *referenceScratch {
	s := &referenceScratch{
		c2v:       make([][]float64, c.M),
		c2vFlat:   make([]float64, c.edges),
		posterior: make([]float64, c.N),
		hard:      make([]byte, c.N),
		info:      make([]byte, c.K),
	}
	off := 0
	for i, rv := range c.rowVars {
		s.c2v[i] = s.c2vFlat[off : off+len(rv)]
		off += len(rv)
	}
	return s
}

// DecodeReference runs the retained reference min-sum decoder. Semantics
// (inputs, outputs, iteration accounting, early stop) match Decode; the
// returned Info is a fresh copy.
func (c *Code) DecodeReference(llr []float64, maxIters int) DecodeResult {
	s := c.NewReferenceScratch()
	res := c.decodeReferenceWithScratch(llr, maxIters, s)
	res.Info = append([]byte(nil), res.Info...)
	return res
}

func (c *Code) decodeReferenceWithScratch(llr []float64, maxIters int, s *referenceScratch) DecodeResult {
	if len(llr) != c.N {
		panic(fmt.Sprintf("fec: Decode got %d LLRs, code N=%d", len(llr), c.N))
	}
	if maxIters < 1 {
		maxIters = 1
	}
	const alpha = msAlpha

	rowVars := c.rowVars
	c2v := s.c2v
	for i := range s.c2vFlat {
		s.c2vFlat[i] = 0
	}
	posterior := s.posterior
	hard := s.hard

	result := DecodeResult{}
	for iter := 1; iter <= maxIters; iter++ {
		result.Iterations = iter
		// Variable-to-check messages are computed on the fly:
		// v2c(v->i) = llr[v] + sum of c2v from other rows of v.
		// First accumulate posteriors.
		copy(posterior, llr)
		for i, rv := range rowVars {
			for j, v := range rv {
				posterior[v] += c2v[i][j]
			}
		}
		// Check node update (min-sum with normalization).
		for i, rv := range rowVars {
			// Extrinsic v2c = posterior - own c2v.
			sign := 1.0
			min1, min2 := math.Inf(1), math.Inf(1)
			minIdx := -1
			for j, v := range rv {
				m := posterior[v] - c2v[i][j]
				if m < 0 {
					sign = -sign
					m = -m
				}
				if m < min1 {
					min2 = min1
					min1 = m
					minIdx = j
				} else if m < min2 {
					min2 = m
				}
			}
			for j, v := range rv {
				m := posterior[v] - c2v[i][j]
				s := sign
				if m < 0 {
					s = -s
					m = -m
				}
				mag := min1
				if j == minIdx {
					mag = min2
				}
				c2v[i][j] = alpha * s * mag
			}
		}
		// Posterior and hard decision with updated messages.
		copy(posterior, llr)
		for i, rv := range rowVars {
			for j, v := range rv {
				posterior[v] += c2v[i][j]
			}
		}
		for v := range hard {
			if posterior[v] < 0 {
				hard[v] = 1
			} else {
				hard[v] = 0
			}
		}
		if c.checkParity(hard) {
			result.OK = true
			break
		}
	}
	copy(s.info, hard[:c.K])
	result.Info = s.info
	return result
}
