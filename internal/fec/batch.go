package fec

import "slingshot/internal/par"

// DecodeJob is one transport block's decode work for DecodeBatch.
type DecodeJob struct {
	Code     *Code
	LLR      []float64
	MaxIters int
}

// DecodeBatch fans a slot's transport-block decodes across the bounded
// worker pool (internal/par) and returns results in input order: result i
// always belongs to jobs[i], regardless of which worker ran it, so callers
// observe a schedule-independent merge. Jobs may freely share one cached
// *Code — each decode borrows pooled per-call scratch — and the returned
// Info slices are copies that stay valid indefinitely.
//
// The call blocks until every job has finished; in the simulator this is
// what keeps virtual time frozen while workers run. With SLINGSHOT_WORKERS=1
// the batch degrades to an inline sequential loop in job order.
func DecodeBatch(jobs []DecodeJob) []DecodeResult {
	return par.Map(len(jobs), func(i int) DecodeResult {
		return jobs[i].Code.Decode(jobs[i].LLR, jobs[i].MaxIters)
	})
}

// GetScratch borrows pooled decoder scratch; pair with PutScratch. Hot
// paths use it with DecodeWithScratch to decode with zero allocations.
func (c *Code) GetScratch() *DecodeScratch { return c.getScratch() }

// PutScratch returns borrowed scratch to the pool. The scratch (and any
// DecodeResult.Info aliasing it) must not be used afterwards.
func (c *Code) PutScratch(s *DecodeScratch) { c.putScratch(s) }
