package fec

import (
	"sync"

	"slingshot/internal/par"
)

// DecodeJob is one transport block's decode work for DecodeBatch.
type DecodeJob struct {
	Code     *Code
	LLR      []float64
	MaxIters int
	// Info, when its capacity is at least Code.K, receives the decoded
	// info bits and the result's Info aliases it — no per-job allocation.
	// Leave nil to have the batch allocate a fresh copy.
	Info []byte
}

// DecodeBatch fans a slot's transport-block decodes across the bounded
// worker pool (internal/par) and returns results in input order: result i
// always belongs to jobs[i], regardless of which worker ran it, so callers
// observe a schedule-independent merge. Jobs may freely share one cached
// *Code — each decode borrows pooled per-call scratch — and the returned
// Info slices are copies that stay valid indefinitely.
//
// The call blocks until every job has finished; in the simulator this is
// what keeps virtual time frozen while workers run. With SLINGSHOT_WORKERS=1
// the batch degrades to an inline sequential loop in job order.
func DecodeBatch(jobs []DecodeJob) []DecodeResult {
	out := make([]DecodeResult, len(jobs))
	DecodeBatchInto(out, jobs)
	return out
}

// batchCtx carries one DecodeBatchInto call's slices plus a long-lived
// closure over itself, so handing work to par.ForEach does not allocate a
// fresh escaping closure per batch.
type batchCtx struct {
	results []DecodeResult
	jobs    []DecodeJob
	fn      func(int)
}

var batchCtxPool = sync.Pool{New: func() any {
	b := &batchCtx{}
	b.fn = b.decode
	return b
}}

func (b *batchCtx) decode(i int) {
	j := &b.jobs[i]
	s := j.Code.getScratch()
	res := j.Code.DecodeWithScratch(j.LLR, j.MaxIters, s)
	if cap(j.Info) >= j.Code.K {
		j.Info = j.Info[:j.Code.K]
		copy(j.Info, res.Info)
		res.Info = j.Info
	} else {
		res.Info = append([]byte(nil), res.Info...)
	}
	j.Code.putScratch(s)
	b.results[i] = res
}

// DecodeBatchInto is DecodeBatch writing into a caller-provided results
// slice (len must equal len(jobs)). Paired with per-job Info buffers it
// decodes a slot's blocks with zero allocations at steady state: scratch
// is pooled, results land in results[i], and info bits land in jobs[i].Info.
func DecodeBatchInto(results []DecodeResult, jobs []DecodeJob) {
	if len(results) != len(jobs) {
		panic("fec: DecodeBatchInto results/jobs length mismatch")
	}
	b := batchCtxPool.Get().(*batchCtx)
	b.results, b.jobs = results, jobs
	par.ForEach(len(jobs), b.fn)
	b.results, b.jobs = nil, nil
	batchCtxPool.Put(b)
}

// GetScratch borrows pooled decoder scratch; pair with PutScratch. Hot
// paths use it with DecodeWithScratch to decode with zero allocations.
func (c *Code) GetScratch() *DecodeScratch { return c.getScratch() }

// PutScratch returns borrowed scratch to the pool. The scratch (and any
// DecodeResult.Info aliasing it) must not be used afterwards.
func (c *Code) PutScratch(s *DecodeScratch) { c.putScratch(s) }
