package fec

import (
	"sync"

	"slingshot/internal/par"
)

// DecodeJob is one transport block's decode work for DecodeBatch.
type DecodeJob struct {
	Code     *Code
	LLR      []float64
	MaxIters int
	// Info, when its capacity is at least Code.K, receives the decoded
	// info bits and the result's Info aliases it — no per-job allocation.
	// Leave nil to have the batch allocate a fresh copy.
	Info []byte
	// LLRI8, when non-nil, supplies the block's soft values through the
	// int8 quantized-LLR lane instead of LLR (which is then ignored): the
	// batch dequantizes into pooled scratch and decodes the floats, so the
	// result is bit-identical to decoding the dequantized values and the
	// lane preserves grouping/worker/pooling invariance (llri8.go).
	LLRI8 []int8
	// LLRI8Step is the lane's dequantization step; 0 means LLRI8Step.
	LLRI8Step float64
}

// DecodeBatch fans a slot's transport-block decodes across the bounded
// worker pool (internal/par) and returns results in input order: result i
// always belongs to jobs[i], regardless of which worker ran it, so callers
// observe a schedule-independent merge. Jobs may freely share one cached
// *Code — each decode borrows pooled per-call scratch — and the returned
// Info slices are copies that stay valid indefinitely.
//
// The call blocks until every job has finished; in the simulator this is
// what keeps virtual time frozen while workers run. With SLINGSHOT_WORKERS=1
// the batch degrades to an inline sequential loop in job order.
func DecodeBatch(jobs []DecodeJob) []DecodeResult {
	out := make([]DecodeResult, len(jobs))
	DecodeBatchInto(out, jobs)
	return out
}

// batchCtx carries one DecodeBatchInto call's slices plus long-lived
// closures over itself, so handing work to par.ForEach does not allocate a
// fresh escaping closure per batch. units holds the batch's lane grouping:
// {start, count} runs of jobs, where count == SoALanes marks a group the
// SoA kernel decodes in lockstep and anything smaller decodes through the
// single-block kernel.
type batchCtx struct {
	results []DecodeResult
	jobs    []DecodeJob
	units   [][2]int32
	fn      func(int)
	unitFn  func(int)
}

var batchCtxPool = sync.Pool{New: func() any {
	b := &batchCtx{}
	b.fn = b.decode
	b.unitFn = b.runUnit
	return b
}}

// runUnit decodes one grouped unit: a full lane group through the SoA
// kernel, or a leftover run job-by-job.
func (b *batchCtx) runUnit(u int) {
	start, n := int(b.units[u][0]), int(b.units[u][1])
	if n == SoALanes {
		c := b.jobs[start].Code
		jobs := b.jobs[start : start+n]
		// i8-lane jobs dequantize into borrowed scalar scratch before the
		// SoA kernel loads lanes; the kernel itself only ever sees floats.
		var tmp [SoALanes]*DecodeScratch
		for l := range jobs {
			if jobs[l].LLRI8 != nil {
				s := c.getScratch()
				tmp[l] = s
				jobs[l].LLR = s.dequantLLRI8(jobs[l].LLRI8, jobs[l].LLRI8Step)
			}
		}
		c.decodeSoA(b.results[start:start+n], jobs)
		for l, s := range &tmp {
			if s != nil {
				jobs[l].LLR = nil
				c.putScratch(s)
			}
		}
		return
	}
	for i := start; i < start+n; i++ {
		b.decode(i)
	}
}

func (b *batchCtx) decode(i int) {
	j := &b.jobs[i]
	s := j.Code.getScratch()
	llr := j.LLR
	if j.LLRI8 != nil {
		llr = s.dequantLLRI8(j.LLRI8, j.LLRI8Step)
	}
	res := j.Code.DecodeWithScratch(llr, j.MaxIters, s)
	if cap(j.Info) >= j.Code.K {
		j.Info = j.Info[:j.Code.K]
		copy(j.Info, res.Info)
		res.Info = j.Info
	} else {
		res.Info = append([]byte(nil), res.Info...)
	}
	j.Code.putScratch(s)
	b.results[i] = res
}

// DecodeBatchInto is DecodeBatch writing into a caller-provided results
// slice (len must equal len(jobs)). Paired with per-job Info buffers it
// decodes a slot's blocks with zero allocations at steady state: scratch
// is pooled, results land in results[i], and info bits land in jobs[i].Info.
//
// Runs of SoALanes consecutive jobs sharing one (Code, MaxIters) are
// decoded in lockstep by the SoA lane-group kernel (soa.go); leftovers and
// heterogeneous jobs take the single-block kernel. Both paths are
// bit-exact with the reference decoder, so results are independent of the
// grouping — and therefore of batch boundaries, worker count, and pooling.
func DecodeBatchInto(results []DecodeResult, jobs []DecodeJob) {
	if len(results) != len(jobs) {
		panic("fec: DecodeBatchInto results/jobs length mismatch")
	}
	b := batchCtxPool.Get().(*batchCtx)
	b.results, b.jobs = results, jobs
	units := b.units[:0]
	for i := 0; i < len(jobs); {
		n := 1
		if i+SoALanes <= len(jobs) {
			c, it := jobs[i].Code, jobs[i].MaxIters
			same := true
			for k := 1; k < SoALanes; k++ {
				if jobs[i+k].Code != c || jobs[i+k].MaxIters != it {
					same = false
					break
				}
			}
			if same {
				n = SoALanes
			}
		}
		units = append(units, [2]int32{int32(i), int32(n)})
		i += n
	}
	b.units = units
	par.ForEach(len(units), b.unitFn)
	b.results, b.jobs = nil, nil
	batchCtxPool.Put(b)
}

// GetScratch borrows pooled decoder scratch; pair with PutScratch. Hot
// paths use it with DecodeWithScratch to decode with zero allocations.
func (c *Code) GetScratch() *DecodeScratch { return c.getScratch() }

// PutScratch returns borrowed scratch to the pool. The scratch (and any
// DecodeResult.Info aliasing it) must not be used afterwards.
func (c *Code) PutScratch(s *DecodeScratch) { c.putScratch(s) }
