package fec

import (
	"bytes"
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

func TestCRC24KnownVector(t *testing.T) {
	// CRC of empty data is 0 by construction of the shift register.
	if CRC24(nil) != 0 {
		t.Fatal("CRC24(nil) != 0")
	}
	// Changing one bit must change the CRC.
	a := CRC24([]byte{0x01})
	b := CRC24([]byte{0x00})
	if a == b {
		t.Fatal("CRC24 did not discriminate single-bit difference")
	}
}

func TestCRC24RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		framed := AppendCRC24(append([]byte(nil), data...))
		payload, ok := CheckCRC24(framed)
		return ok && bytes.Equal(payload, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC24DetectsCorruption(t *testing.T) {
	f := func(data []byte, pos uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		framed := AppendCRC24(append([]byte(nil), data...))
		framed[int(pos)%len(framed)] ^= 1 << (bit % 8)
		_, ok := CheckCRC24(framed)
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC16RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		framed := AppendCRC16(append([]byte(nil), data...))
		payload, ok := CheckCRC16(framed)
		return ok && bytes.Equal(payload, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCRCShortInput(t *testing.T) {
	if _, ok := CheckCRC24([]byte{1, 2}); ok {
		t.Fatal("short CRC24 input accepted")
	}
	if _, ok := CheckCRC16([]byte{1}); ok {
		t.Fatal("short CRC16 input accepted")
	}
}

func randomBits(rng *sim.RNG, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Uint64() & 1)
	}
	return bits
}

// bitsToLLR maps coded bits to perfect-channel LLRs with optional AWGN at
// the given noise std (BPSK model: bit 0 -> +1, bit 1 -> -1).
func bitsToLLR(bits []byte, noiseStd float64, rng *sim.RNG) []float64 {
	llr := make([]float64, len(bits))
	for i, b := range bits {
		x := 1.0
		if b == 1 {
			x = -1.0
		}
		y := x
		if noiseStd > 0 {
			y += rng.Norm() * noiseStd
		}
		// LLR = 2y/sigma^2; scale constant is irrelevant to min-sum.
		llr[i] = 2 * y
		if noiseStd > 0 {
			llr[i] = 2 * y / (noiseStd * noiseStd)
		}
	}
	return llr
}

func TestEncodeSystematic(t *testing.T) {
	c := NewCode(64, 128, 1)
	rng := sim.NewRNG(5)
	info := randomBits(rng, 64)
	coded := c.Encode(info)
	if len(coded) != 128 {
		t.Fatalf("coded length %d", len(coded))
	}
	if !bytes.Equal(coded[:64], info) {
		t.Fatal("code is not systematic")
	}
	if !c.checkParity(coded) {
		t.Fatal("encoder output fails its own parity checks")
	}
}

func TestEncodeParityProperty(t *testing.T) {
	c := NewCode(32, 64, 7)
	rng := sim.NewRNG(11)
	f := func(seed uint32) bool {
		_ = seed
		info := randomBits(rng, 32)
		return c.checkParity(c.Encode(info))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNoiseless(t *testing.T) {
	c := NewCode(128, 256, 3)
	rng := sim.NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		info := randomBits(rng, 128)
		llr := bitsToLLR(c.Encode(info), 0, rng)
		res := c.Decode(llr, 8)
		if !res.OK {
			t.Fatalf("noiseless decode failed at trial %d", trial)
		}
		if !bytes.Equal(res.Info, info) {
			t.Fatalf("noiseless decode wrong bits at trial %d", trial)
		}
		if res.Iterations != 1 {
			t.Fatalf("noiseless decode took %d iterations", res.Iterations)
		}
	}
}

func TestDecodeCorrectsModerateNoise(t *testing.T) {
	c := NewCode(128, 256, 3)
	rng := sim.NewRNG(21)
	ok := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		info := randomBits(rng, 128)
		llr := bitsToLLR(c.Encode(info), 0.7, rng)
		res := c.Decode(llr, 12)
		if res.OK && bytes.Equal(res.Info, info) {
			ok++
		}
	}
	if ok < trials*8/10 {
		t.Fatalf("decoded only %d/%d at sigma=0.7", ok, trials)
	}
}

func TestDecodeFailsAtHighNoise(t *testing.T) {
	c := NewCode(128, 256, 3)
	rng := sim.NewRNG(23)
	ok := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		info := randomBits(rng, 128)
		llr := bitsToLLR(c.Encode(info), 2.5, rng)
		res := c.Decode(llr, 8)
		if res.OK && bytes.Equal(res.Info, info) {
			ok++
		}
	}
	if ok > trials/2 {
		t.Fatalf("decoder implausibly good at sigma=2.5: %d/%d", ok, trials)
	}
}

// TestMoreIterationsHelp is the property behind the Fig 11 upgrade
// experiment: at a marginal SNR, a decoder budgeted more iterations
// succeeds at least as often.
func TestMoreIterationsHelp(t *testing.T) {
	c := NewCode(128, 256, 3)
	const trials = 120
	okLow, okHigh := 0, 0
	for _, iters := range []int{2, 16} {
		rng := sim.NewRNG(31) // identical noise for both budgets
		ok := 0
		for trial := 0; trial < trials; trial++ {
			info := randomBits(rng, 128)
			llr := bitsToLLR(c.Encode(info), 0.85, rng)
			res := c.Decode(llr, iters)
			if res.OK && bytes.Equal(res.Info, info) {
				ok++
			}
		}
		if iters == 2 {
			okLow = ok
		} else {
			okHigh = ok
		}
	}
	if okHigh <= okLow {
		t.Fatalf("16 iterations (%d/%d) not better than 2 (%d/%d)",
			okHigh, trials, okLow, trials)
	}
}

// TestSoftCombiningHelps validates the HARQ premise: summing LLRs from two
// independent noisy receptions of the same codeword decodes more reliably
// than either alone.
func TestSoftCombiningHelps(t *testing.T) {
	c := NewCode(128, 256, 3)
	rng := sim.NewRNG(41)
	const trials = 80
	singleOK, combinedOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		info := randomBits(rng, 128)
		coded := c.Encode(info)
		llr1 := bitsToLLR(coded, 1.1, rng)
		llr2 := bitsToLLR(coded, 1.1, rng)
		if res := c.Decode(llr1, 8); res.OK && bytes.Equal(res.Info, info) {
			singleOK++
		}
		sum := make([]float64, len(llr1))
		for i := range sum {
			sum[i] = llr1[i] + llr2[i]
		}
		if res := c.Decode(sum, 8); res.OK && bytes.Equal(res.Info, info) {
			combinedOK++
		}
	}
	if combinedOK <= singleOK {
		t.Fatalf("combined %d/%d not better than single %d/%d",
			combinedOK, trials, singleOK, trials)
	}
}

func TestGetCaches(t *testing.T) {
	a := Get(64, 128, 99)
	b := Get(64, 128, 99)
	if a != b {
		t.Fatal("Get did not cache")
	}
	if cdiff := Get(64, 128, 100); cdiff == a {
		t.Fatal("different seeds share a code")
	}
}

func TestCodeRate(t *testing.T) {
	if r := NewCode(100, 200, 1).Rate(); r != 0.5 {
		t.Fatalf("Rate = %f", r)
	}
}

func TestNewCodePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 10}, {10, 10}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCode(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewCode(dims[0], dims[1], 1)
		}()
	}
}

func TestEveryInfoBitProtected(t *testing.T) {
	// Flipping any single info bit must violate at least one parity check:
	// guaranteed because the shuffled-deck construction references every
	// info column at least once when M*InfoWeight >= K.
	c := NewCode(64, 128, 13)
	rng := sim.NewRNG(50)
	info := randomBits(rng, 64)
	coded := c.Encode(info)
	for i := 0; i < 64; i++ {
		coded[i] ^= 1
		if c.checkParity(coded) {
			t.Fatalf("flipping info bit %d left parity satisfied", i)
		}
		coded[i] ^= 1
	}
}

func BenchmarkEncode(b *testing.B) {
	c := Get(512, 1024, 1)
	rng := sim.NewRNG(1)
	info := randomBits(rng, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(info)
	}
}

func BenchmarkDecode8Iters(b *testing.B) {
	c := Get(512, 1024, 1)
	rng := sim.NewRNG(1)
	info := randomBits(rng, 512)
	llr := bitsToLLR(c.Encode(info), 0.8, rng)
	s := c.NewScratch()
	c.DecodeWithScratch(llr, 8, s) // size scratch buffers before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeWithScratch(llr, 8, s)
	}
}
