package fec

import (
	"math"
	"testing"

	"slingshot/internal/sim"
)

// These tests pin the flat and SoA kernels to the retained reference
// decoder (reference.go): same info bits, same OK verdict, same iteration
// count, for convergent and non-convergent inputs alike. They are the
// contract that lets the hot paths restructure freely — any reordering that
// changes a floating-point result or a tie-break shows up here.

// TestDecodeMatchesReference drives the scalar kernel and the reference
// with identical hostile LLRs (pure noise, so many trials never converge
// and exercise the full-iteration paths).
func TestDecodeMatchesReference(t *testing.T) {
	c := NewCode(256, 512, 42)
	rng := sim.NewRNG(99)
	for trial := 0; trial < 800; trial++ {
		llr := make([]float64, c.N)
		for i := range llr {
			llr[i] = rng.Norm() * 3
		}
		want := c.DecodeReference(llr, 8)
		got := c.Decode(llr, 8)
		if got.OK != want.OK || got.Iterations != want.Iterations {
			t.Fatalf("trial %d: got (%v,%d) want (%v,%d)",
				trial, got.OK, got.Iterations, want.OK, want.Iterations)
		}
		for i := range want.Info {
			if got.Info[i] != want.Info[i] {
				t.Fatalf("trial %d: info bit %d differs", trial, i)
			}
		}
	}
}

// TestDecodeBatchMatchesReference drives DecodeBatch with ragged batches —
// SoA lane groups plus leftovers, mixed per-job iteration limits, noisy
// codewords spanning convergent and non-convergent SNRs — and checks every
// job against the reference.
func TestDecodeBatchMatchesReference(t *testing.T) {
	code := Get(64, 128, 3)
	rng := sim.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		njobs := 1 + rng.Intn(11)
		jobs := make([]DecodeJob, njobs)
		want := make([]DecodeResult, njobs)
		for j := range jobs {
			info := make([]byte, code.K)
			for i := range info {
				info[i] = byte(rng.Intn(2))
			}
			coded := code.Encode(info)
			snr := 0.5 + 3*rng.Float64()
			llr := make([]float64, code.N)
			for i, bit := range coded {
				s := 1.0
				if bit == 1 {
					s = -1.0
				}
				llr[i] = 2*snr*s + rng.Norm()*math.Sqrt(2*snr)
			}
			iters := 1 + rng.Intn(8)
			jobs[j] = DecodeJob{Code: code, LLR: llr, MaxIters: iters}
			want[j] = code.DecodeReference(llr, iters)
		}
		got := DecodeBatch(jobs)
		for j := range jobs {
			if got[j].OK != want[j].OK || got[j].Iterations != want[j].Iterations {
				t.Fatalf("trial %d job %d: got (ok=%v it=%d) want (ok=%v it=%d)",
					trial, j, got[j].OK, got[j].Iterations, want[j].OK, want[j].Iterations)
			}
			for i := range got[j].Info {
				if got[j].Info[i] != want[j].Info[i] {
					t.Fatalf("trial %d job %d: info bit %d differs", trial, j, i)
				}
			}
		}
	}
}

// TestDecodeI8MatchesDequantizedFloat pins the int8 LLR lane's defining
// property: decoding quantized LLRs is bit-identical to decoding their
// dequantized float values — through the scalar path, and through
// DecodeBatch with i8 and float jobs mixed in the same lane groups.
func TestDecodeI8MatchesDequantizedFloat(t *testing.T) {
	code := Get(64, 128, 3)
	rng := sim.NewRNG(101)
	for trial := 0; trial < 200; trial++ {
		njobs := 1 + rng.Intn(9)
		jobsI8 := make([]DecodeJob, njobs)
		jobsF := make([]DecodeJob, njobs)
		for j := range jobsI8 {
			llr := make([]float64, code.N)
			for i := range llr {
				llr[i] = rng.Norm() * 8
			}
			q := AppendQuantizeLLRI8(nil, llr, LLRI8Step)
			deq := make([]float64, code.N)
			for i, v := range q {
				deq[i] = float64(v) * LLRI8Step
			}
			iters := 1 + rng.Intn(8)
			if rng.Bool(0.5) {
				jobsI8[j] = DecodeJob{Code: code, LLRI8: q, MaxIters: iters}
			} else {
				// Mixed lanes: a float job whose values happen to be
				// quantized must decode identically either way.
				jobsI8[j] = DecodeJob{Code: code, LLR: deq, MaxIters: iters}
			}
			jobsF[j] = DecodeJob{Code: code, LLR: deq, MaxIters: iters}
		}
		gotI8 := DecodeBatch(jobsI8)
		gotF := DecodeBatch(jobsF)
		for j := range gotI8 {
			if gotI8[j].OK != gotF[j].OK || gotI8[j].Iterations != gotF[j].Iterations {
				t.Fatalf("trial %d job %d: i8 (ok=%v it=%d) float (ok=%v it=%d)",
					trial, j, gotI8[j].OK, gotI8[j].Iterations, gotF[j].OK, gotF[j].Iterations)
			}
			for i := range gotI8[j].Info {
				if gotI8[j].Info[i] != gotF[j].Info[i] {
					t.Fatalf("trial %d job %d: info bit %d differs", trial, j, i)
				}
			}
		}
	}

	// Scalar entry point: DecodeI8WithScratch against DecodeWithScratch.
	s := code.NewScratch()
	s2 := code.NewScratch()
	for trial := 0; trial < 50; trial++ {
		llr := make([]float64, code.N)
		for i := range llr {
			llr[i] = rng.Norm() * 8
		}
		q := AppendQuantizeLLRI8(nil, llr, LLRI8Step)
		deq := make([]float64, code.N)
		for i, v := range q {
			deq[i] = float64(v) * LLRI8Step
		}
		got := code.DecodeI8WithScratch(q, LLRI8Step, 8, s)
		want := code.DecodeWithScratch(deq, 8, s2)
		if got.OK != want.OK || got.Iterations != want.Iterations {
			t.Fatalf("trial %d: i8 (ok=%v it=%d) float (ok=%v it=%d)",
				trial, got.OK, got.Iterations, want.OK, want.Iterations)
		}
		for i := range want.Info {
			if got.Info[i] != want.Info[i] {
				t.Fatalf("trial %d: info bit %d differs", trial, i)
			}
		}
	}
}

// TestQuantizeLLRI8 pins the lane's quantizer: round-to-nearest at the
// step, symmetric ±127 clamp, zero maps to zero.
func TestQuantizeLLRI8(t *testing.T) {
	in := []float64{0, 0.124, 0.126, -0.126, 31.74, 31.8, 1000, -1000, -31.8}
	want := []int8{0, 0, 1, -1, 127, 127, 127, -127, -127}
	got := AppendQuantizeLLRI8(nil, in, LLRI8Step)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantize(%v) = %d, want %d", in[i], got[i], want[i])
		}
	}
	if len(got) != len(in) {
		t.Fatalf("quantized %d values from %d inputs", len(got), len(in))
	}
}
