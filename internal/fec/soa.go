package fec

import (
	"fmt"
	"math"
)

// SoALanes is the lane width of the structure-of-arrays batch decoder:
// decodeSoA advances this many same-code transport blocks in lockstep per
// pass over the Tanner graph. Four lanes keep the hand-unrolled kernels
// inside the amd64 register budget while amortizing every index load,
// bounds check, and loop-control instruction across four blocks; the
// lane-major layout puts one edge's four messages in a single cache line,
// and the four independent min/sum dependency chains fill the latency
// slots that serialize the single-block kernel.
const SoALanes = 4

// rowSumStride is the per-row summary footprint of the first-iteration
// path: raw min1 bits, alpha*min1 bits and alpha*min2 bits (both with the
// row's sign product packed into bit 63), each per lane, interleaved in
// one array so a single subslice bounds check covers all twelve words.
const rowSumStride = 3 * SoALanes

// soaScratch is the lane-major working state of the SoA decoder. Every
// per-edge and per-variable array interleaves the four lanes: edge e,
// lane l lives at index e*SoALanes+l.
type soaScratch struct {
	mbits  []uint64  // staged v2c message bits
	c2v    []float64 // check-to-variable messages
	post   []float64 // posteriors
	lbits  []uint64  // bits(llr+0) per variable (iteration-1 v2c)
	rowSum []uint64  // first-iteration row summaries, rowSumStride per row
	hardw  []uint32  // per-variable hard decisions, one byte per lane
}

func (c *Code) newSoAScratch() *soaScratch {
	return &soaScratch{
		mbits:  make([]uint64, c.edges*SoALanes),
		c2v:    make([]float64, c.edges*SoALanes),
		post:   make([]float64, c.N*SoALanes),
		lbits:  make([]uint64, c.N*SoALanes),
		rowSum: make([]uint64, c.M*rowSumStride),
		hardw:  make([]uint32, c.N),
	}
}

func (c *Code) getSoAScratch() *soaScratch {
	if s, ok := c.soaPool.Get().(*soaScratch); ok {
		return s
	}
	return c.newSoAScratch()
}

func (c *Code) putSoAScratch(s *soaScratch) { c.soaPool.Put(s) }

// allBad is the packed parity accumulator value meaning "every lane has a
// violated check": hard bits are 0/1 bytes, so a violated lane accumulates
// exactly 1 in its byte.
const allBad = 0x01010101

// soaRow5 reduces one lane of a five-tap row to its sign product and two
// smallest magnitudes — the straight-line body behind the unrolled check
// pass. min1/min2/sign are order-independent reductions, so starting the
// chain from the first two taps instead of infBits is bit-exact with the
// generic loop. Small enough to inline, so the five message words stay in
// registers at the call sites.
func soaRow5(m0, m1, m2, m3, m4 uint64) (sign, min1, min2 uint64) {
	sign = m0 ^ m1 ^ m2 ^ m3 ^ m4
	ab0 := m0 &^ signMask
	ab1 := m1 &^ signMask
	ab2 := m2 &^ signMask
	ab3 := m3 &^ signMask
	ab4 := m4 &^ signMask
	a1, a2 := min(ab0, ab1), max(ab0, ab1)
	a2 = min(a2, max(a1, ab2))
	a1 = min(a1, ab2)
	a2 = min(a2, max(a1, ab3))
	a1 = min(a1, ab3)
	a2 = min(a2, max(a1, ab4))
	a1 = min(a1, ab4)
	return sign, a1, a2
}

// soaPost1 is one lane's iteration-1 posterior contribution from one row:
// the row's alpha-scaled min1 (or min2, when this variable is the row's
// min1) with the row sign and the variable's own sign applied, read from
// the packed summaries. Inlined with constant l at the unrolled call sites.
func soaPost1(rs *[rowSumStride]uint64, l int, ab, ms uint64) float64 {
	pk := rs[SoALanes+l]
	if ab == rs[l] {
		pk = rs[2*SoALanes+l]
	}
	return math.Float64frombits(pk ^ ms)
}

// decodeSoA decodes exactly SoALanes jobs — which must share one Code and
// MaxIters — in lockstep, writing results[l] for jobs[l]. Each lane's
// arithmetic is bit-identical to DecodeWithScratch (and therefore to the
// retained reference decoder): the lanes never interact, they only share
// the graph-index streams. A lane that converges is recorded and frozen at
// that iteration (its info bits are extracted immediately); the remaining
// lanes keep iterating until all are resolved or MaxIters is reached.
// Info handling matches DecodeBatch: results[l].Info lands in jobs[l].Info
// when its capacity allows, else in a fresh copy.
func (c *Code) decodeSoA(results []DecodeResult, jobs []DecodeJob) {
	maxIters := jobs[0].MaxIters
	if maxIters < 1 {
		maxIters = 1
	}
	n := c.N
	for l := range jobs {
		if len(jobs[l].LLR) != n {
			panic(fmt.Sprintf("fec: Decode got %d LLRs, code N=%d", len(jobs[l].LLR), n))
		}
	}
	s := c.getSoAScratch()
	// Reslicing to the checked length lets the compiler drop the bounds
	// checks on the linear per-variable streams below.
	l0 := jobs[0].LLR[:n]
	l1 := jobs[1].LLR[:n]
	l2 := jobs[2].LLR[:n]
	l3 := jobs[3].LLR[:n]

	edgeVar, rowStart := c.edgeVar, c.rowStart
	varStart, varEdge, varEdgeRow := c.varStart, c.varEdge, c.varEdgeRow
	mbits, c2v, post, lbits := s.mbits, s.c2v, s.post, s.lbits
	rowSum, hardw := s.rowSum, s.hardw

	// Stage the lane-major channel LLR bits once. The explicit +0 matches
	// the reference's first accumulation pass (it maps -0.0 to +0.0).
	for v := 0; v < n; v++ {
		lb := lbits[v*SoALanes : v*SoALanes+SoALanes : v*SoALanes+SoALanes]
		lb[0] = math.Float64bits(l0[v] + 0)
		lb[1] = math.Float64bits(l1[v] + 0)
		lb[2] = math.Float64bits(l2[v] + 0)
		lb[3] = math.Float64bits(l3[v] + 0)
	}

	// Iteration 1, check pass: with all-zero c2v the v2c messages are the
	// channel LLRs, so each row's outgoing messages reduce to three
	// summary words per lane (see DecodeWithScratch). Every IRA row but the
	// first is exactly InfoWeight info taps plus two parity taps (NewCode),
	// so the five-tap body is fully unrolled: the five lane-group gathers
	// issue together and there is no per-edge loop control. min1/min2/sign
	// are order-independent reductions, so the unrolled form is bit-exact
	// with the generic loop.
	rEnd := int(rowStart[0])
	for i := 0; i < c.M; i++ {
		start := rEnd
		rEnd = int(rowStart[i+1])
		var s0, s1, s2, s3 uint64
		a10, a11, a12, a13 := infBits, infBits, infBits, infBits
		a20, a21, a22, a23 := infBits, infBits, infBits, infBits
		if rEnd-start == 5 {
			ev := edgeVar[start : start+5 : start+5]
			t0 := (*[SoALanes]uint64)(lbits[int(ev[0])*SoALanes:])
			t1 := (*[SoALanes]uint64)(lbits[int(ev[1])*SoALanes:])
			t2 := (*[SoALanes]uint64)(lbits[int(ev[2])*SoALanes:])
			t3 := (*[SoALanes]uint64)(lbits[int(ev[3])*SoALanes:])
			t4 := (*[SoALanes]uint64)(lbits[int(ev[4])*SoALanes:])
			s0, a10, a20 = soaRow5(t0[0], t1[0], t2[0], t3[0], t4[0])
			s1, a11, a21 = soaRow5(t0[1], t1[1], t2[1], t3[1], t4[1])
			s2, a12, a22 = soaRow5(t0[2], t1[2], t2[2], t3[2], t4[2])
			s3, a13, a23 = soaRow5(t0[3], t1[3], t2[3], t3[3], t4[3])
		} else {
			for _, vi := range edgeVar[start:rEnd] {
				b := int(vi) * SoALanes
				lb := lbits[b : b+SoALanes : b+SoALanes]
				m0 := lb[0]
				m1 := lb[1]
				m2 := lb[2]
				m3 := lb[3]
				s0 ^= m0
				s1 ^= m1
				s2 ^= m2
				s3 ^= m3
				ab0 := m0 &^ signMask
				ab1 := m1 &^ signMask
				ab2 := m2 &^ signMask
				ab3 := m3 &^ signMask
				a20 = min(a20, max(a10, ab0))
				a10 = min(a10, ab0)
				a21 = min(a21, max(a11, ab1))
				a11 = min(a11, ab1)
				a22 = min(a22, max(a12, ab2))
				a12 = min(a12, ab2)
				a23 = min(a23, max(a13, ab3))
				a13 = min(a13, ab3)
			}
		}
		s0 &= signMask
		s1 &= signMask
		s2 &= signMask
		s3 &= signMask
		r := i * rowSumStride
		rs := rowSum[r : r+rowSumStride : r+rowSumStride]
		rs[0] = a10
		rs[1] = a11
		rs[2] = a12
		rs[3] = a13
		rs[4] = math.Float64bits(msAlpha*math.Float64frombits(a10)) | s0
		rs[5] = math.Float64bits(msAlpha*math.Float64frombits(a11)) | s1
		rs[6] = math.Float64bits(msAlpha*math.Float64frombits(a12)) | s2
		rs[7] = math.Float64bits(msAlpha*math.Float64frombits(a13)) | s3
		rs[8] = math.Float64bits(msAlpha*math.Float64frombits(a20)) | s0
		rs[9] = math.Float64bits(msAlpha*math.Float64frombits(a21)) | s1
		rs[10] = math.Float64bits(msAlpha*math.Float64frombits(a22)) | s2
		rs[11] = math.Float64bits(msAlpha*math.Float64frombits(a23)) | s3
	}

	// Iteration 1, variable pass: posteriors in the reference's row order,
	// hard decisions (strict < 0), packed one byte per lane.
	vEnd := int(varStart[0])
	for v := 0; v < n; v++ {
		b := v * SoALanes
		lb := lbits[b : b+SoALanes : b+SoALanes]
		m0 := lb[0]
		m1 := lb[1]
		m2 := lb[2]
		m3 := lb[3]
		ms0, ab0 := m0&signMask, m0&^signMask
		ms1, ab1 := m1&signMask, m1&^signMask
		ms2, ab2 := m2&signMask, m2&^signMask
		ms3, ab3 := m3&signMask, m3&^signMask
		p0, p1, p2, p3 := l0[v], l1[v], l2[v], l3[v]
		ks := vEnd
		vEnd = int(varStart[v+1])
		// Info variables carry ≈InfoWeight rows and parity variables two
		// (NewCode), so degree-3 and degree-2 bodies cover nearly every
		// variable; both keep the reference's row-order additions.
		switch vr := varEdgeRow[ks:vEnd]; len(vr) {
		case 3:
			rs0 := (*[rowSumStride]uint64)(rowSum[int(vr[0])*rowSumStride:])
			rs1 := (*[rowSumStride]uint64)(rowSum[int(vr[1])*rowSumStride:])
			rs2 := (*[rowSumStride]uint64)(rowSum[int(vr[2])*rowSumStride:])
			p0 += soaPost1(rs0, 0, ab0, ms0)
			p1 += soaPost1(rs0, 1, ab1, ms1)
			p2 += soaPost1(rs0, 2, ab2, ms2)
			p3 += soaPost1(rs0, 3, ab3, ms3)
			p0 += soaPost1(rs1, 0, ab0, ms0)
			p1 += soaPost1(rs1, 1, ab1, ms1)
			p2 += soaPost1(rs1, 2, ab2, ms2)
			p3 += soaPost1(rs1, 3, ab3, ms3)
			p0 += soaPost1(rs2, 0, ab0, ms0)
			p1 += soaPost1(rs2, 1, ab1, ms1)
			p2 += soaPost1(rs2, 2, ab2, ms2)
			p3 += soaPost1(rs2, 3, ab3, ms3)
		case 2:
			rs0 := (*[rowSumStride]uint64)(rowSum[int(vr[0])*rowSumStride:])
			rs1 := (*[rowSumStride]uint64)(rowSum[int(vr[1])*rowSumStride:])
			p0 += soaPost1(rs0, 0, ab0, ms0)
			p1 += soaPost1(rs0, 1, ab1, ms1)
			p2 += soaPost1(rs0, 2, ab2, ms2)
			p3 += soaPost1(rs0, 3, ab3, ms3)
			p0 += soaPost1(rs1, 0, ab0, ms0)
			p1 += soaPost1(rs1, 1, ab1, ms1)
			p2 += soaPost1(rs1, 2, ab2, ms2)
			p3 += soaPost1(rs1, 3, ab3, ms3)
		default:
			for _, ri := range vr {
				rs := (*[rowSumStride]uint64)(rowSum[int(ri)*rowSumStride:])
				p0 += soaPost1(rs, 0, ab0, ms0)
				p1 += soaPost1(rs, 1, ab1, ms1)
				p2 += soaPost1(rs, 2, ab2, ms2)
				p3 += soaPost1(rs, 3, ab3, ms3)
			}
		}
		ps := post[b : b+SoALanes : b+SoALanes]
		ps[0] = p0
		ps[1] = p1
		ps[2] = p2
		ps[3] = p3
		// Branch-free hard decision: the +0 maps -0.0 to +0.0, so the sign
		// bit of p+0 is exactly the reference's strict p < 0 for finite
		// posteriors — the data-dependent branch (the decision IS the block's
		// entropy) becomes four shifts.
		hardw[v] = uint32(math.Float64bits(p0+0)>>63) |
			uint32(math.Float64bits(p1+0)>>63)<<8 |
			uint32(math.Float64bits(p2+0)>>63)<<16 |
			uint32(math.Float64bits(p3+0)>>63)<<24
	}

	var done uint32 // 0xff in a lane's byte once its result is recorded
	iter := 1
	done = c.soaRecord(results, jobs, hardw, done, iter, maxIters)
	if done == 0xffffffff {
		c.putSoAScratch(s)
		return
	}

	// Materialize iteration 1's c2v from the row summaries and stage
	// iteration 2's v2c bits: v2c = posterior - own c2v. Frozen lanes keep
	// computing (their results are already extracted); masking them would
	// cost more than the wasted arithmetic.
	for v := 0; v < n; v++ {
		b := v * SoALanes
		lb := lbits[b : b+SoALanes : b+SoALanes]
		m0 := lb[0]
		m1 := lb[1]
		m2 := lb[2]
		m3 := lb[3]
		ms0, ab0 := m0&signMask, m0&^signMask
		ms1, ab1 := m1&signMask, m1&^signMask
		ms2, ab2 := m2&signMask, m2&^signMask
		ms3, ab3 := m3&signMask, m3&^signMask
		ps := post[b : b+SoALanes : b+SoALanes]
		p0, p1, p2, p3 := ps[0], ps[1], ps[2], ps[3]
		ks, ke := int(varStart[v]), int(varStart[v+1])
		for k := ks; k < ke; k++ {
			r := int(varEdgeRow[k]) * rowSumStride
			rs := rowSum[r : r+rowSumStride : r+rowSumStride]
			pk0 := rs[4]
			if ab0 == rs[0] {
				pk0 = rs[8]
			}
			pk1 := rs[5]
			if ab1 == rs[1] {
				pk1 = rs[9]
			}
			pk2 := rs[6]
			if ab2 == rs[2] {
				pk2 = rs[10]
			}
			pk3 := rs[7]
			if ab3 == rs[3] {
				pk3 = rs[11]
			}
			cv0 := math.Float64frombits(pk0 ^ ms0)
			cv1 := math.Float64frombits(pk1 ^ ms1)
			cv2 := math.Float64frombits(pk2 ^ ms2)
			cv3 := math.Float64frombits(pk3 ^ ms3)
			e := int(varEdge[k]) * SoALanes
			cs := c2v[e : e+SoALanes : e+SoALanes]
			cs[0] = cv0
			cs[1] = cv1
			cs[2] = cv2
			cs[3] = cv3
			mb := mbits[e : e+SoALanes : e+SoALanes]
			mb[0] = math.Float64bits(p0 - cv0)
			mb[1] = math.Float64bits(p1 - cv1)
			mb[2] = math.Float64bits(p2 - cv2)
			mb[3] = math.Float64bits(p3 - cv3)
		}
	}

	for iter = 2; iter <= maxIters; iter++ {
		// Check-node update from the staged v2c bits: a purely linear
		// lane-major stream, no gathers.
		for i := 0; i < c.M; i++ {
			start, end := int(rowStart[i])*SoALanes, int(rowStart[i+1])*SoALanes
			var s0, s1, s2, s3 uint64
			a10, a11, a12, a13 := infBits, infBits, infBits, infBits
			a20, a21, a22, a23 := infBits, infBits, infBits, infBits
			for e := start; e < end; e += SoALanes {
				mb := mbits[e : e+SoALanes : e+SoALanes]
				m0 := mb[0]
				m1 := mb[1]
				m2 := mb[2]
				m3 := mb[3]
				s0 ^= m0
				s1 ^= m1
				s2 ^= m2
				s3 ^= m3
				ab0 := m0 &^ signMask
				ab1 := m1 &^ signMask
				ab2 := m2 &^ signMask
				ab3 := m3 &^ signMask
				a20 = min(a20, max(a10, ab0))
				a10 = min(a10, ab0)
				a21 = min(a21, max(a11, ab1))
				a11 = min(a11, ab1)
				a22 = min(a22, max(a12, ab2))
				a12 = min(a12, ab2)
				a23 = min(a23, max(a13, ab3))
				a13 = min(a13, ab3)
			}
			s0 &= signMask
			s1 &= signMask
			s2 &= signMask
			s3 &= signMask
			g10 := math.Float64bits(msAlpha * math.Float64frombits(a10))
			g11 := math.Float64bits(msAlpha * math.Float64frombits(a11))
			g12 := math.Float64bits(msAlpha * math.Float64frombits(a12))
			g13 := math.Float64bits(msAlpha * math.Float64frombits(a13))
			g20 := math.Float64bits(msAlpha * math.Float64frombits(a20))
			g21 := math.Float64bits(msAlpha * math.Float64frombits(a21))
			g22 := math.Float64bits(msAlpha * math.Float64frombits(a22))
			g23 := math.Float64bits(msAlpha * math.Float64frombits(a23))
			for e := start; e < end; e += SoALanes {
				mb := mbits[e : e+SoALanes : e+SoALanes]
				m0 := mb[0]
				m1 := mb[1]
				m2 := mb[2]
				m3 := mb[3]
				mg0 := g10
				if m0&^signMask == a10 {
					mg0 = g20
				}
				mg1 := g11
				if m1&^signMask == a11 {
					mg1 = g21
				}
				mg2 := g12
				if m2&^signMask == a12 {
					mg2 = g22
				}
				mg3 := g13
				if m3&^signMask == a13 {
					mg3 = g23
				}
				cs := c2v[e : e+SoALanes : e+SoALanes]
				cs[0] = math.Float64frombits(mg0 | (m0^s0)&signMask)
				cs[1] = math.Float64frombits(mg1 | (m1^s1)&signMask)
				cs[2] = math.Float64frombits(mg2 | (m2^s2)&signMask)
				cs[3] = math.Float64frombits(mg3 | (m3^s3)&signMask)
			}
		}
		// Posterior and hard decision: one gather of varEdge serves four
		// lanes (32 contiguous bytes of c2v per edge).
		for v := 0; v < n; v++ {
			p0, p1, p2, p3 := l0[v], l1[v], l2[v], l3[v]
			ks, ke := int(varStart[v]), int(varStart[v+1])
			for _, ei := range varEdge[ks:ke] {
				e := int(ei) * SoALanes
				cs := c2v[e : e+SoALanes : e+SoALanes]
				p0 += cs[0]
				p1 += cs[1]
				p2 += cs[2]
				p3 += cs[3]
			}
			b := v * SoALanes
			ps := post[b : b+SoALanes : b+SoALanes]
			ps[0] = p0
			ps[1] = p1
			ps[2] = p2
			ps[3] = p3
			// Branch-free hard decision; see the iteration-1 pass.
			hardw[v] = uint32(math.Float64bits(p0+0)>>63) |
				uint32(math.Float64bits(p1+0)>>63)<<8 |
				uint32(math.Float64bits(p2+0)>>63)<<16 |
				uint32(math.Float64bits(p3+0)>>63)<<24
		}
		done = c.soaRecord(results, jobs, hardw, done, iter, maxIters)
		if done == 0xffffffff {
			break
		}
		// Stage the next iteration's v2c bits (only reached when some lane
		// still needs another iteration).
		for v := 0; v < n; v++ {
			b := v * SoALanes
			ps := post[b : b+SoALanes : b+SoALanes]
			p0, p1, p2, p3 := ps[0], ps[1], ps[2], ps[3]
			ks, ke := int(varStart[v]), int(varStart[v+1])
			for _, ei := range varEdge[ks:ke] {
				e := int(ei) * SoALanes
				cs := c2v[e : e+SoALanes : e+SoALanes]
				mb := mbits[e : e+SoALanes : e+SoALanes]
				mb[0] = math.Float64bits(p0 - cs[0])
				mb[1] = math.Float64bits(p1 - cs[1])
				mb[2] = math.Float64bits(p2 - cs[2])
				mb[3] = math.Float64bits(p3 - cs[3])
			}
		}
	}
	c.putSoAScratch(s)
}

// soaRecord runs the packed parity check and finalizes every lane that
// either converged this iteration or just exhausted MaxIters. It returns
// the updated done mask (0xff per finalized lane). One linear pass over
// the graph serves all four lanes: each variable's four hard bits live in
// one uint32, so the per-row XOR accumulates four parities at once.
func (c *Code) soaRecord(results []DecodeResult, jobs []DecodeJob, hardw []uint32, done uint32, iter, maxIters int) uint32 {
	edgeVar, rowStart := c.edgeVar, c.rowStart
	var bad uint32
	for i := 0; i < c.M; i++ {
		start, end := int(rowStart[i]), int(rowStart[i+1])
		var x uint32
		if end-start == 5 {
			// Five-tap fast path matching the unrolled check pass.
			ev := edgeVar[start : start+5 : start+5]
			x = hardw[ev[0]] ^ hardw[ev[1]] ^ hardw[ev[2]] ^
				hardw[ev[3]] ^ hardw[ev[4]]
		} else {
			for _, vi := range edgeVar[start:end] {
				x ^= hardw[vi]
			}
		}
		bad |= x
		if bad == allBad {
			break
		}
	}
	last := iter == maxIters
	for l := 0; l < SoALanes; l++ {
		if done&(0xff<<(8*l)) != 0 {
			continue
		}
		ok := bad&(0xff<<(8*l)) == 0
		if !ok && !last {
			continue
		}
		j := &jobs[l]
		var info []byte
		if cap(j.Info) >= c.K {
			j.Info = j.Info[:c.K]
			info = j.Info
		} else {
			info = make([]byte, c.K)
		}
		shift := 8 * l
		for i := range info {
			info[i] = byte(hardw[i] >> shift)
		}
		results[l] = DecodeResult{Info: info, OK: ok, Iterations: iter}
		done |= 0xff << (8 * l)
	}
	return done
}
