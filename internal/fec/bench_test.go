package fec

import (
	"testing"

	"slingshot/internal/sim"
)

// benchCodeAndLLR builds the default-sized code plus a noisy-but-decodable
// LLR vector (≈6 dB), so the benchmark exercises a realistic number of
// min-sum iterations rather than converging instantly.
func benchCodeAndLLR() (*Code, []float64) {
	c := NewCode(256, 512, 42)
	rng := sim.NewRNG(7)
	info := make([]byte, c.K)
	for i := range info {
		info[i] = byte(rng.Uint64() & 1)
	}
	coded := c.Encode(info)
	llr := make([]float64, c.N)
	for i, bit := range coded {
		s := 1.0
		if bit == 1 {
			s = -1
		}
		llr[i] = s*2.0 + rng.Norm()
	}
	return c, llr
}

// BenchmarkFECDecode tracks the min-sum decode kernel as the PHY hot path
// runs it: pooled scratch, zero allocations per block. (The seed decoder
// cost one Info copy per call; see BENCH_2026-08-06_baseline.json.)
func BenchmarkFECDecode(b *testing.B) {
	c, llr := benchCodeAndLLR()
	s := c.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	ok := 0
	for i := 0; i < b.N; i++ {
		if c.DecodeWithScratch(llr, 8, s).OK {
			ok++
		}
	}
	if ok == 0 {
		b.Fatal("benchmark LLRs never decoded; noise model broken")
	}
}

// BenchmarkFECDecodeParallel tracks DecodeBatch fanning one slot's worth
// of transport blocks (16) across the worker pool — the shape the PHY's
// pipeline drain dispatches. On a multi-core host this is the kernel that
// should scale with GOMAXPROCS; allocs/op stay bounded by the per-job Info
// copy regardless of pool width.
func BenchmarkFECDecodeParallel(b *testing.B) {
	c, _ := benchCodeAndLLR()
	const blocks = 16
	jobs := make([]DecodeJob, blocks)
	for i := range jobs {
		rng := sim.NewRNG(uint64(100 + i))
		info := make([]byte, c.K)
		for j := range info {
			info[j] = byte(rng.Uint64() & 1)
		}
		coded := c.Encode(info)
		llr := make([]float64, c.N)
		for j, bit := range coded {
			s := 1.0
			if bit == 1 {
				s = -1
			}
			llr[j] = s*2.0 + rng.Norm()
		}
		jobs[i] = DecodeJob{Code: c, LLR: llr, MaxIters: 8}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := DecodeBatch(jobs)
		if len(res) != blocks {
			b.Fatal("short batch")
		}
	}
}
