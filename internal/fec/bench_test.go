package fec

import (
	"testing"

	"slingshot/internal/sim"
)

// benchLLR builds a noisy LLR vector (≈6 dB) for a random codeword, so a
// benchmark exercises a realistic number of min-sum iterations rather than
// converging instantly.
func benchLLR(c *Code, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	info := make([]byte, c.K)
	for i := range info {
		info[i] = byte(rng.Uint64() & 1)
	}
	coded := c.Encode(info)
	llr := make([]float64, c.N)
	for i, bit := range coded {
		s := 1.0
		if bit == 1 {
			s = -1
		}
		llr[i] = s*2.0 + rng.Norm()
	}
	return llr
}

func benchCodeAndLLR() (*Code, []float64) {
	c := NewCode(256, 512, 42)
	return c, benchLLR(c, 7)
}

// BenchmarkFECDecode tracks the min-sum decode kernel as the PHY hot path
// runs it since the SoA rework: DecodeBatchInto advancing a lane group of
// SoALanes same-code blocks in lockstep, pooled scratch, zero allocations,
// one op = one block. Every lane decodes the same LLR vector the scalar
// baseline decoded (BENCH_2026-08-06_baseline.json), so the ns/op delta
// against the baseline is the per-block kernel speedup, workload held
// fixed. BenchmarkFECDecodeSingle tracks the scalar path the batch falls
// back to for leftover jobs.
func BenchmarkFECDecode(b *testing.B) {
	c, llr := benchCodeAndLLR()
	jobs := make([]DecodeJob, SoALanes)
	for i := range jobs {
		jobs[i] = DecodeJob{Code: c, LLR: llr, MaxIters: 8,
			Info: make([]byte, 0, c.K)}
	}
	results := make([]DecodeResult, SoALanes)
	DecodeBatchInto(results, jobs) // warm worker + scratch pools
	b.ReportAllocs()
	b.ResetTimer()
	calls := 0
	for i := 0; i < b.N; i += SoALanes {
		DecodeBatchInto(results, jobs)
		calls++
	}
	b.StopTimer()
	// One op is one block. With b.N below SoALanes (-benchtime=1x) the
	// framework's elapsed/b.N would charge a whole lane-group call to a
	// single op; report the true per-block time instead.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(calls*SoALanes), "ns/op")
	if !results[0].OK {
		b.Fatal("benchmark LLRs never decoded; noise model broken")
	}
}

// BenchmarkFECDecodeSingle is the scalar single-block kernel under the same
// workload (the shape the batch uses for leftover and heterogeneous jobs).
func BenchmarkFECDecodeSingle(b *testing.B) {
	c, llr := benchCodeAndLLR()
	s := c.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	ok := 0
	for i := 0; i < b.N; i++ {
		if c.DecodeWithScratch(llr, 8, s).OK {
			ok++
		}
	}
	if ok == 0 {
		b.Fatal("benchmark LLRs never decoded; noise model broken")
	}
}

// BenchmarkFECDecodeParallel tracks DecodeBatchInto fanning one slot's
// worth of transport blocks (16) across the worker pool — the shape the
// PHY's pipeline drain dispatches. Blocks are convergence-verified and
// iteration-matched to BenchmarkFECDecode's block (the old setup's noise
// draws happened to never converge, so every op paid 16 full 8-iteration
// decodes), results and info bits land in reused buffers, and a warm-up
// batch spins up the worker and scratch pools before timing: steady state
// is allocation-free. Compare the ns/block metric against sequential
// ns/op, remembering that decoding one hot block forever lets branch
// predictor and cache flatter the sequential number (~3× on this kernel:
// rotating the same 16 blocks through the sequential path costs more per
// block than the batch does).
func BenchmarkFECDecodeParallel(b *testing.B) {
	c, refLLR := benchCodeAndLLR()
	refIters := c.Decode(refLLR, 8).Iterations
	const blocks = 16
	jobs := make([]DecodeJob, blocks)
	for i := range jobs {
		seed := uint64(100 + i)
		for {
			llr := benchLLR(c, seed)
			// Only accept blocks that converge as fast as the sequential
			// benchmark's block, so ns/block here is comparable to
			// BenchmarkFECDecode's ns/op.
			if res := c.Decode(llr, 8); res.OK && res.Iterations <= refIters {
				jobs[i] = DecodeJob{Code: c, LLR: llr, MaxIters: 8,
					Info: make([]byte, 0, c.K)}
				break
			}
			seed += 1000 // slow or non-convergent draw; try another
		}
	}
	results := make([]DecodeResult, blocks)
	DecodeBatchInto(results, jobs) // warm worker + scratch pools
	for i := range results {
		if !results[i].OK {
			b.Fatalf("block %d failed to decode after verification", i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeBatchInto(results, jobs)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blocks), "ns/block")
	if !results[0].OK {
		b.Fatal("steady-state decode regressed")
	}
}
