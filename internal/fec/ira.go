package fec

import (
	"fmt"
	"math"
	"sync"

	"slingshot/internal/sim"
)

// Code is a systematic irregular repeat-accumulate code: K information bits
// followed by M = N-K parity bits produced by an accumulator over random
// sparse combinations of the information bits. Its parity-check matrix is
// H = [A | T] with A sparse-random (row weight InfoWeight) and T the
// dual-diagonal accumulator, which gives linear-time encoding and a sparse
// Tanner graph for belief-propagation decoding.
type Code struct {
	K, N int // info bits, total coded bits
	M    int // parity bits = N - K

	// rows[i] holds the info-bit column indices checked by parity row i.
	rows [][]int
	// rowVars[i] holds all variable indices of parity row i, including the
	// accumulator parity columns. Retained for the reference decoder (see
	// reference.go); the production kernel walks the CSR arrays below.
	rowVars [][]int
	// varRows[v] holds, for each variable (coded bit) v, the parity rows
	// that reference it.
	varRows [][]int
	edges   int

	// CSR edge layout of the Tanner graph, row-major: edge e of row i sits
	// at edgeVar[rowStart[i]:rowStart[i+1]] and names the variable column it
	// touches. One flat int32 array replaces the per-row []int pointer
	// chase, so the min-sum inner loops stream contiguous memory and the
	// same index pass can serve a whole SoA lane group (soa.go).
	edgeVar  []int32
	rowStart []int32
	// Variable-major mirror: varEdge[varStart[v]:varStart[v+1]] lists the
	// edge ids touching variable v in row order (the reference decoder's
	// accumulation order, so posteriors sum bit-identically), and
	// varEdgeRow holds each entry's parity row for the fused parity
	// scatter.
	varStart   []int32
	varEdge    []int32
	varEdgeRow []int32
	// encTaps flattens rows for the encoder: InfoWeight info columns per
	// parity row, contiguous, so EncodeInto streams one int32 array.
	encTaps []int32

	// scratch pools per-decode working state. Decoder scratch used to live
	// directly on Code (c2v/posterior/hard fields), which silently aliased
	// state between every decoder sharing the cached *Code — fine while the
	// whole simulator was single-threaded, but a data race (and a wrong-
	// answer generator: interleaved decodes corrupting each other's
	// messages) the moment two goroutines decode through one Code. Pooled
	// DecodeScratch makes the shared, immutable Tanner graph safe to decode
	// concurrently; see TestDecodeSharedCodeConcurrently.
	scratch sync.Pool
	// soaPool pools lane-major scratch for the SoA batch decoder (soa.go).
	soaPool sync.Pool
}

// DecodeScratch is the per-call working state of the min-sum decoder:
// check-to-variable messages (flat, CSR edge-indexed), posteriors and hard
// decisions. One scratch serves one in-flight Decode; obtain it from
// Code.NewScratch (or let Decode/DecodeBatch pool them) and never share it
// across goroutines.
type DecodeScratch struct {
	c2v    []float64 // per-edge messages, indexed like Code.edgeVar
	mbuf   []uint64  // per-edge v2c message bits, staged between passes
	post   []float64 // per-variable posteriors, kept for v2c staging
	rowSum []uint64  // 3 summary words per row for the first-iteration path
	rowAcc []byte    // per-row parity accumulator
	hard   []byte
	info   []byte    // result staging for DecodeWithScratch
	llrTmp []float64 // dequantized-LLR staging for DecodeI8WithScratch
}

// NewScratch allocates decoder scratch sized for the code.
func (c *Code) NewScratch() *DecodeScratch {
	return &DecodeScratch{
		c2v:    make([]float64, c.edges),
		mbuf:   make([]uint64, c.edges),
		post:   make([]float64, c.N),
		rowSum: make([]uint64, 3*c.M),
		rowAcc: make([]byte, c.M),
		hard:   make([]byte, c.N),
		info:   make([]byte, c.K),
	}
}

// getScratch fetches pooled scratch (allocating on first use).
func (c *Code) getScratch() *DecodeScratch {
	if s, ok := c.scratch.Get().(*DecodeScratch); ok {
		return s
	}
	return c.NewScratch()
}

// putScratch returns scratch to the pool.
func (c *Code) putScratch(s *DecodeScratch) { c.scratch.Put(s) }

// InfoWeight is the number of information bits combined per parity row.
const InfoWeight = 3

// NewCode constructs a code with K info bits and N total bits (N > K),
// using seed to derive the sparse connections. The same (K, N, seed) always
// yields the same code, so encoder and decoder agree without sharing state.
func NewCode(k, n int, seed uint64) *Code {
	if k <= 0 || n <= k {
		panic(fmt.Sprintf("fec: invalid code dimensions K=%d N=%d", k, n))
	}
	m := n - k
	c := &Code{K: k, N: n, M: m}
	rng := sim.NewRNG(seed ^ uint64(k)<<20 ^ uint64(n))

	c.rows = make([][]int, m)
	// Ensure every info bit is referenced at least once by dealing the
	// first ceil(m*InfoWeight / k) passes as shuffled permutations.
	deck := make([]int, k)
	for i := range deck {
		deck[i] = i
	}
	pos := k // force reshuffle on first draw
	draw := func() int {
		if pos >= k {
			for i := k - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				deck[i], deck[j] = deck[j], deck[i]
			}
			pos = 0
		}
		v := deck[pos]
		pos++
		return v
	}
	for i := 0; i < m; i++ {
		row := make([]int, 0, InfoWeight)
		for len(row) < InfoWeight {
			v := draw()
			dup := false
			for _, r := range row {
				if r == v {
					dup = true
					break
				}
			}
			if !dup {
				row = append(row, v)
			}
		}
		c.rows[i] = row
	}

	c.encTaps = make([]int32, 0, m*InfoWeight)
	for _, row := range c.rows {
		for _, v := range row {
			c.encTaps = append(c.encTaps, int32(v))
		}
	}

	// Build variable -> rows adjacency including parity columns.
	c.varRows = make([][]int, n)
	for i, row := range c.rows {
		for _, v := range row {
			c.varRows[v] = append(c.varRows[v], i)
		}
		c.varRows[k+i] = append(c.varRows[k+i], i)
		if i+1 < m {
			// Parity bit i also appears in row i+1 (accumulator chain).
			c.varRows[k+i] = append(c.varRows[k+i], i+1)
		}
	}
	for _, rs := range c.varRows {
		c.edges += len(rs)
	}

	// Flattened per-row adjacency for the decoder: info columns, own
	// parity column K+i, and the previous parity column K+i-1 (i > 0).
	c.rowVars = make([][]int, m)
	for i := range c.rows {
		rv := make([]int, 0, InfoWeight+2)
		rv = append(rv, c.rows[i]...)
		rv = append(rv, k+i)
		if i > 0 {
			rv = append(rv, k+i-1)
		}
		c.rowVars[i] = rv
	}

	// CSR mirror of rowVars for the flat decode kernels.
	c.rowStart = make([]int32, m+1)
	c.edgeVar = make([]int32, 0, c.edges)
	for i, rv := range c.rowVars {
		c.rowStart[i] = int32(len(c.edgeVar))
		for _, v := range rv {
			c.edgeVar = append(c.edgeVar, int32(v))
		}
	}
	c.rowStart[m] = int32(len(c.edgeVar))

	// Variable-major mirror, filled in row order per variable so the
	// kernels' posterior sums run in the reference accumulation order.
	c.varStart = make([]int32, n+1)
	for _, v := range c.edgeVar {
		c.varStart[v+1]++
	}
	for v := 0; v < n; v++ {
		c.varStart[v+1] += c.varStart[v]
	}
	c.varEdge = make([]int32, c.edges)
	c.varEdgeRow = make([]int32, c.edges)
	cursor := append([]int32(nil), c.varStart[:n]...)
	for i := 0; i < m; i++ {
		for e := c.rowStart[i]; e < c.rowStart[i+1]; e++ {
			v := c.edgeVar[e]
			c.varEdge[cursor[v]] = e
			c.varEdgeRow[cursor[v]] = int32(i)
			cursor[v]++
		}
	}
	return c
}

// Rate returns the code rate K/N.
func (c *Code) Rate() float64 { return float64(c.K) / float64(c.N) }

// Encode maps K info bits (one bit per byte, values 0/1) to N coded bits.
// The output is systematic: out[:K] equals info.
func (c *Code) Encode(info []byte) []byte {
	out := make([]byte, c.N)
	c.EncodeInto(out, info)
	return out
}

// EncodeInto is Encode writing into out (len must be N), so per-block hot
// paths can reuse one coded-bit buffer instead of allocating per call.
func (c *Code) EncodeInto(out, info []byte) {
	if len(info) != c.K {
		panic(fmt.Sprintf("fec: Encode got %d bits, code K=%d", len(info), c.K))
	}
	if len(out) != c.N {
		panic(fmt.Sprintf("fec: EncodeInto got %d-bit output, code N=%d", len(out), c.N))
	}
	copy(out, info)
	var acc byte
	par := out[c.K:]
	taps := c.encTaps
	for i := range par {
		if InfoWeight == 3 {
			t := taps[i*3 : i*3+3 : i*3+3]
			acc ^= info[t[0]] ^ info[t[1]] ^ info[t[2]]
		} else {
			for _, v := range taps[i*InfoWeight : (i+1)*InfoWeight] {
				acc ^= info[v]
			}
		}
		par[i] = acc
	}
}

// DecodeResult reports the outcome of an iterative decode.
type DecodeResult struct {
	Info       []byte // K hard-decision info bits
	OK         bool   // parity checks all satisfied
	Iterations int    // iterations actually used
}

// Decode runs normalized min-sum belief propagation over channel LLRs
// (positive = bit 0 more likely, the standard convention) for at most
// maxIters iterations, stopping early once all parity checks pass.
//
// More iterations strictly improve (or preserve) decode success at a given
// SNR; this is the lever the Fig 11 live-upgrade experiment pulls.
//
// Decode is a thin wrapper over the scratch-based path: it borrows pooled
// scratch and copies the info bits out, so it is safe to call from many
// goroutines on one shared Code. Hot paths that decode in batches should
// use DecodeWithScratch/DecodeBatch to skip the result copy.
func (c *Code) Decode(llr []float64, maxIters int) DecodeResult {
	s := c.getScratch()
	res := c.DecodeWithScratch(llr, maxIters, s)
	res.Info = append([]byte(nil), res.Info...)
	c.putScratch(s)
	return res
}

// Min-sum constants shared by the flat kernels (ira.go, soa.go).
const (
	msAlpha  = 0.8                        // normalization factor for min-sum
	signMask = 1 << 63                    // IEEE-754 double sign bit
	infBits  = uint64(0x7FF0000000000000) // math.Float64bits(+Inf)
)

// post1 is one iteration-1 posterior contribution from one row's summary
// {min1 raw, alpha*min1|sign, alpha*min2|sign}: the self-excluded minimum —
// the argmin edge sees min2; ties are safe because duplicated minima force
// min2 == min1 — with the row sign and the variable's own sign applied.
func post1(rs *[3]uint64, ab, ms uint64) float64 {
	pk := rs[1]
	if ab == rs[0] {
		pk = rs[2]
	}
	return math.Float64frombits(pk ^ ms)
}

// DecodeWithScratch is Decode with caller-owned scratch. The returned
// Info aliases s.info: it is valid until the next decode with (or pooled
// reuse of) the same scratch — copy it out before releasing s.
//
// The kernel is the flat, branch-free restatement of the textbook min-sum
// loop retained in reference.go, bit-exact with it for finite LLR inputs
// (TestDecodeMatchesReference). Three structural changes carry the speedup:
//
//   - Messages live in the bit domain: sign products XOR sign bits and the
//     min1/min2 magnitudes use uint64 min/max (the IEEE ordering of
//     non-negative doubles is their integer ordering), which compile to
//     CMOVs — the reference's `m < 0` branch, unpredictable by construction
//     (the signs are the message entropy), disappears.
//
//   - Iteration 1 is specialized: with all-zero c2v the v2c messages are
//     the channel LLRs, so every outgoing message of a check row is fully
//     described by three summary words (raw min |llr| bits, and the two
//     alpha-scaled magnitudes with the row's sign product packed into their
//     otherwise-zero sign bit). The posterior pass reads c2v straight from
//     those summaries, and on the common path — high-SNR blocks that
//     converge immediately — no per-edge message is ever materialized.
//
//   - Later iterations run a flat two-phase schedule over the CSR arrays
//     (check pass over staged v2c bits, then a variable-major posterior/
//     hard-decision pass), and stage the next iteration's v2c only after
//     the parity check fails, so the final iteration never pays for
//     messages it will not use.
func (c *Code) DecodeWithScratch(llr []float64, maxIters int, s *DecodeScratch) DecodeResult {
	if len(llr) != c.N {
		panic(fmt.Sprintf("fec: Decode got %d LLRs, code N=%d", len(llr), c.N))
	}
	if maxIters < 1 {
		maxIters = 1
	}
	edgeVar, rowStart := c.edgeVar, c.rowStart
	varStart, varEdge, varEdgeRow := c.varStart, c.varEdge, c.varEdgeRow
	c2v, mbuf, hard := s.c2v, s.mbuf, s.hard
	post, rowSum := s.post, s.rowSum

	result := DecodeResult{Iterations: 1}

	// Iteration 1, check pass: row summaries only. The explicit +0 matches
	// the reference's first accumulation pass exactly (it maps any -0.0
	// LLR to +0.0, as x + 0.0 does). Five-tap rows — all of them but the
	// first (NewCode) — run the straight-line soaRow5 body: the gathers
	// issue together and the loop control disappears.
	for i := 0; i < c.M; i++ {
		start, end := int(rowStart[i]), int(rowStart[i+1])
		var signAcc uint64
		min1, min2 := infBits, infBits
		if end-start == 5 {
			ev := edgeVar[start : start+5 : start+5]
			signAcc, min1, min2 = soaRow5(
				math.Float64bits(llr[ev[0]]+0),
				math.Float64bits(llr[ev[1]]+0),
				math.Float64bits(llr[ev[2]]+0),
				math.Float64bits(llr[ev[3]]+0),
				math.Float64bits(llr[ev[4]]+0))
		} else {
			for e := start; e < end; e++ {
				m := math.Float64bits(llr[edgeVar[e]] + 0)
				signAcc ^= m
				ab := m &^ signMask
				// Two-smallest tracking without branches; keeps the
				// invariant min1 <= min2.
				m2 := min(min2, max(min1, ab))
				min1 = min(min1, ab)
				min2 = m2
			}
		}
		signAcc &= signMask
		// alpha*mag hoisted out of the edge loop (the reference multiplies
		// per edge, but the product is identical). Packing the row sign
		// into the magnitude's sign bit lets the posterior pass recover a
		// full c2v message with one XOR: mag | ((sign ^ m) & signMask).
		rowSum[3*i] = min1
		rowSum[3*i+1] = math.Float64bits(msAlpha*math.Float64frombits(min1)) | signAcc
		rowSum[3*i+2] = math.Float64bits(msAlpha*math.Float64frombits(min2)) | signAcc
	}
	// Iteration 1, variable pass: posterior (summed in the reference's row
	// order per variable, which is varEdgeRow's order) and hard decision
	// (the strict `< 0` of the reference: -0.0 posteriors decide 0, which
	// is why the branch-free form takes the sign bit of p+0). Degree-3 and
	// degree-2 bodies cover nearly every variable (info bits carry
	// ≈InfoWeight rows, parity bits two).
	for v := 0; v < c.N; v++ {
		ks, ke := int(varStart[v]), int(varStart[v+1])
		m := math.Float64bits(llr[v] + 0)
		ms := m & signMask
		ab := m &^ signMask
		p := llr[v]
		switch vr := varEdgeRow[ks:ke]; len(vr) {
		case 3:
			rs0 := (*[3]uint64)(rowSum[3*int(vr[0]):])
			rs1 := (*[3]uint64)(rowSum[3*int(vr[1]):])
			rs2 := (*[3]uint64)(rowSum[3*int(vr[2]):])
			p += post1(rs0, ab, ms)
			p += post1(rs1, ab, ms)
			p += post1(rs2, ab, ms)
		case 2:
			rs0 := (*[3]uint64)(rowSum[3*int(vr[0]):])
			rs1 := (*[3]uint64)(rowSum[3*int(vr[1]):])
			p += post1(rs0, ab, ms)
			p += post1(rs1, ab, ms)
		default:
			for _, ri := range vr {
				p += post1((*[3]uint64)(rowSum[3*int(ri):]), ab, ms)
			}
		}
		post[v] = p
		hard[v] = byte(math.Float64bits(p+0) >> 63)
	}
	if c.parityOKFlat(hard) {
		result.OK = true
		copy(s.info, hard[:c.K])
		result.Info = s.info
		return result
	}
	if maxIters > 1 {
		// Materialize iteration 1's c2v (from the row summaries, exactly
		// the values the posterior pass consumed) and stage iteration 2's
		// v2c bits: v2c = posterior - own c2v.
		for v := 0; v < c.N; v++ {
			ks, ke := int(varStart[v]), int(varStart[v+1])
			m := math.Float64bits(llr[v] + 0)
			ms := m & signMask
			ab := m &^ signMask
			p := post[v]
			for k := ks; k < ke; k++ {
				r := 3 * int(varEdgeRow[k])
				pk := rowSum[r+1]
				if ab == rowSum[r] {
					pk = rowSum[r+2]
				}
				cv := math.Float64frombits(pk ^ ms)
				e := varEdge[k]
				c2v[e] = cv
				mbuf[e] = math.Float64bits(p - cv)
			}
		}
	}

	for iter := 2; iter <= maxIters; iter++ {
		result.Iterations = iter
		// Check-node update (normalized min-sum) from the staged v2c bits:
		// scans and writes contiguous memory with no index gathers at all.
		for i := 0; i < c.M; i++ {
			start, end := int(rowStart[i]), int(rowStart[i+1])
			var signAcc uint64
			min1, min2 := infBits, infBits
			for e := start; e < end; e++ {
				m := mbuf[e]
				signAcc ^= m
				ab := m &^ signMask
				m2 := min(min2, max(min1, ab))
				min1 = min(min1, ab)
				min2 = m2
			}
			signAcc &= signMask
			mag1 := math.Float64bits(msAlpha * math.Float64frombits(min1))
			mag2 := math.Float64bits(msAlpha * math.Float64frombits(min2))
			for e := start; e < end; e++ {
				m := mbuf[e]
				ab := m &^ signMask
				mag := mag1
				if ab == min1 {
					mag = mag2
				}
				c2v[e] = math.Float64frombits(mag | (m^signAcc)&signMask)
			}
		}
		// Posterior and hard decision (branch-free; see iteration 1).
		for v := 0; v < c.N; v++ {
			ks, ke := int(varStart[v]), int(varStart[v+1])
			p := llr[v]
			switch ve := varEdge[ks:ke]; len(ve) {
			case 3:
				p += c2v[ve[0]]
				p += c2v[ve[1]]
				p += c2v[ve[2]]
			case 2:
				p += c2v[ve[0]]
				p += c2v[ve[1]]
			default:
				for _, e := range ve {
					p += c2v[e]
				}
			}
			post[v] = p
			hard[v] = byte(math.Float64bits(p+0) >> 63)
		}
		if c.parityOKFlat(hard) {
			result.OK = true
			break
		}
		if iter == maxIters {
			break
		}
		// Stage the next iteration's v2c bits (only on parity failure —
		// the final iteration never pays for this pass).
		for v := 0; v < c.N; v++ {
			ks, ke := int(varStart[v]), int(varStart[v+1])
			p := post[v]
			for k := ks; k < ke; k++ {
				e := varEdge[k]
				mbuf[e] = math.Float64bits(p - c2v[e])
			}
		}
	}
	copy(s.info, hard[:c.K])
	result.Info = s.info
	return result
}

// parityOKFlat is checkParity over the CSR layout: per-row XOR of hard
// bits with an early exit on the first violated check.
func (c *Code) parityOKFlat(hard []byte) bool {
	edgeVar, rowStart := c.edgeVar, c.rowStart
	for i := 0; i < c.M; i++ {
		start, end := int(rowStart[i]), int(rowStart[i+1])
		var x byte
		if end-start == 5 {
			// Five-tap fast path matching the unrolled check pass.
			ev := edgeVar[start : start+5 : start+5]
			x = hard[ev[0]] ^ hard[ev[1]] ^ hard[ev[2]] ^
				hard[ev[3]] ^ hard[ev[4]]
		} else {
			for e := start; e < end; e++ {
				x ^= hard[edgeVar[e]]
			}
		}
		if x != 0 {
			return false
		}
	}
	return true
}

// checkParity reports whether all M parity checks are satisfied by the
// hard-decision bits.
func (c *Code) checkParity(bits []byte) bool {
	var prev byte
	for i, row := range c.rows {
		var s byte
		for _, v := range row {
			s ^= bits[v]
		}
		s ^= bits[c.K+i] ^ prev
		if s != 0 {
			return false
		}
		prev = bits[c.K+i]
	}
	return true
}

// Edges returns the Tanner-graph edge count (decoder cost estimate).
func (c *Code) Edges() int { return c.edges }

// codeCache memoizes constructed codes; construction is deterministic so
// sharing is safe across encoders and decoders. The mutex makes Get safe
// from concurrently sharded experiment runs (internal/par seed shards).
var (
	codeCacheMu sync.Mutex
	codeCache   = map[[3]uint64]*Code{}
)

// Get returns a cached code for (k, n, seed), constructing it on first
// use. Safe for concurrent use; the returned *Code may be decoded from
// many goroutines (per-call scratch is pooled, the graph is immutable).
func Get(k, n int, seed uint64) *Code {
	key := [3]uint64{uint64(k), uint64(n), seed}
	codeCacheMu.Lock()
	defer codeCacheMu.Unlock()
	if c, ok := codeCache[key]; ok {
		return c
	}
	c := NewCode(k, n, seed)
	codeCache[key] = c
	return c
}
