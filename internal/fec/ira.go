package fec

import (
	"fmt"
	"math"
	"sync"

	"slingshot/internal/sim"
)

// Code is a systematic irregular repeat-accumulate code: K information bits
// followed by M = N-K parity bits produced by an accumulator over random
// sparse combinations of the information bits. Its parity-check matrix is
// H = [A | T] with A sparse-random (row weight InfoWeight) and T the
// dual-diagonal accumulator, which gives linear-time encoding and a sparse
// Tanner graph for belief-propagation decoding.
type Code struct {
	K, N int // info bits, total coded bits
	M    int // parity bits = N - K

	// rows[i] holds the info-bit column indices checked by parity row i.
	rows [][]int
	// rowVars[i] holds all variable indices of parity row i, including the
	// accumulator parity columns. Built once for the decoder.
	rowVars [][]int
	// varRows[v] holds, for each variable (coded bit) v, the parity rows
	// that reference it.
	varRows [][]int
	edges   int

	// scratch pools per-decode working state. Decoder scratch used to live
	// directly on Code (c2v/posterior/hard fields), which silently aliased
	// state between every decoder sharing the cached *Code — fine while the
	// whole simulator was single-threaded, but a data race (and a wrong-
	// answer generator: interleaved decodes corrupting each other's
	// messages) the moment two goroutines decode through one Code. Pooled
	// DecodeScratch makes the shared, immutable Tanner graph safe to decode
	// concurrently; see TestDecodeSharedCodeConcurrently.
	scratch sync.Pool
}

// DecodeScratch is the per-call working state of the min-sum decoder:
// check-to-variable messages, posteriors and hard decisions. One scratch
// serves one in-flight Decode; obtain it from Code.NewScratch (or let
// Decode/DecodeBatch pool them) and never share it across goroutines.
type DecodeScratch struct {
	c2v       [][]float64 // per-row messages, one backing array (c2vFlat)
	c2vFlat   []float64
	posterior []float64
	hard      []byte
	info      []byte // result staging for DecodeWithScratch
}

// NewScratch allocates decoder scratch sized for the code.
func (c *Code) NewScratch() *DecodeScratch {
	s := &DecodeScratch{
		c2v:       make([][]float64, c.M),
		c2vFlat:   make([]float64, c.edges),
		posterior: make([]float64, c.N),
		hard:      make([]byte, c.N),
		info:      make([]byte, c.K),
	}
	off := 0
	for i, rv := range c.rowVars {
		s.c2v[i] = s.c2vFlat[off : off+len(rv)]
		off += len(rv)
	}
	return s
}

// getScratch fetches pooled scratch (allocating on first use).
func (c *Code) getScratch() *DecodeScratch {
	if s, ok := c.scratch.Get().(*DecodeScratch); ok {
		return s
	}
	return c.NewScratch()
}

// putScratch returns scratch to the pool.
func (c *Code) putScratch(s *DecodeScratch) { c.scratch.Put(s) }

// InfoWeight is the number of information bits combined per parity row.
const InfoWeight = 3

// NewCode constructs a code with K info bits and N total bits (N > K),
// using seed to derive the sparse connections. The same (K, N, seed) always
// yields the same code, so encoder and decoder agree without sharing state.
func NewCode(k, n int, seed uint64) *Code {
	if k <= 0 || n <= k {
		panic(fmt.Sprintf("fec: invalid code dimensions K=%d N=%d", k, n))
	}
	m := n - k
	c := &Code{K: k, N: n, M: m}
	rng := sim.NewRNG(seed ^ uint64(k)<<20 ^ uint64(n))

	c.rows = make([][]int, m)
	// Ensure every info bit is referenced at least once by dealing the
	// first ceil(m*InfoWeight / k) passes as shuffled permutations.
	deck := make([]int, k)
	for i := range deck {
		deck[i] = i
	}
	pos := k // force reshuffle on first draw
	draw := func() int {
		if pos >= k {
			for i := k - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				deck[i], deck[j] = deck[j], deck[i]
			}
			pos = 0
		}
		v := deck[pos]
		pos++
		return v
	}
	for i := 0; i < m; i++ {
		row := make([]int, 0, InfoWeight)
		for len(row) < InfoWeight {
			v := draw()
			dup := false
			for _, r := range row {
				if r == v {
					dup = true
					break
				}
			}
			if !dup {
				row = append(row, v)
			}
		}
		c.rows[i] = row
	}

	// Build variable -> rows adjacency including parity columns.
	c.varRows = make([][]int, n)
	for i, row := range c.rows {
		for _, v := range row {
			c.varRows[v] = append(c.varRows[v], i)
		}
		c.varRows[k+i] = append(c.varRows[k+i], i)
		if i+1 < m {
			// Parity bit i also appears in row i+1 (accumulator chain).
			c.varRows[k+i] = append(c.varRows[k+i], i+1)
		}
	}
	for _, rs := range c.varRows {
		c.edges += len(rs)
	}

	// Flattened per-row adjacency for the decoder: info columns, own
	// parity column K+i, and the previous parity column K+i-1 (i > 0).
	c.rowVars = make([][]int, m)
	for i := range c.rows {
		rv := make([]int, 0, InfoWeight+2)
		rv = append(rv, c.rows[i]...)
		rv = append(rv, k+i)
		if i > 0 {
			rv = append(rv, k+i-1)
		}
		c.rowVars[i] = rv
	}
	return c
}

// Rate returns the code rate K/N.
func (c *Code) Rate() float64 { return float64(c.K) / float64(c.N) }

// Encode maps K info bits (one bit per byte, values 0/1) to N coded bits.
// The output is systematic: out[:K] equals info.
func (c *Code) Encode(info []byte) []byte {
	out := make([]byte, c.N)
	c.EncodeInto(out, info)
	return out
}

// EncodeInto is Encode writing into out (len must be N), so per-block hot
// paths can reuse one coded-bit buffer instead of allocating per call.
func (c *Code) EncodeInto(out, info []byte) {
	if len(info) != c.K {
		panic(fmt.Sprintf("fec: Encode got %d bits, code K=%d", len(info), c.K))
	}
	if len(out) != c.N {
		panic(fmt.Sprintf("fec: EncodeInto got %d-bit output, code N=%d", len(out), c.N))
	}
	copy(out, info)
	var acc byte
	for i, row := range c.rows {
		var s byte
		for _, v := range row {
			s ^= info[v]
		}
		acc ^= s
		out[c.K+i] = acc
	}
}

// DecodeResult reports the outcome of an iterative decode.
type DecodeResult struct {
	Info       []byte // K hard-decision info bits
	OK         bool   // parity checks all satisfied
	Iterations int    // iterations actually used
}

// Decode runs normalized min-sum belief propagation over channel LLRs
// (positive = bit 0 more likely, the standard convention) for at most
// maxIters iterations, stopping early once all parity checks pass.
//
// More iterations strictly improve (or preserve) decode success at a given
// SNR; this is the lever the Fig 11 live-upgrade experiment pulls.
//
// Decode is a thin wrapper over the scratch-based path: it borrows pooled
// scratch and copies the info bits out, so it is safe to call from many
// goroutines on one shared Code. Hot paths that decode in batches should
// use DecodeWithScratch/DecodeBatch to skip the result copy.
func (c *Code) Decode(llr []float64, maxIters int) DecodeResult {
	s := c.getScratch()
	res := c.DecodeWithScratch(llr, maxIters, s)
	res.Info = append([]byte(nil), res.Info...)
	c.putScratch(s)
	return res
}

// DecodeWithScratch is Decode with caller-owned scratch. The returned
// Info aliases s.info: it is valid until the next decode with (or pooled
// reuse of) the same scratch — copy it out before releasing s.
func (c *Code) DecodeWithScratch(llr []float64, maxIters int, s *DecodeScratch) DecodeResult {
	if len(llr) != c.N {
		panic(fmt.Sprintf("fec: Decode got %d LLRs, code N=%d", len(llr), c.N))
	}
	if maxIters < 1 {
		maxIters = 1
	}
	const alpha = 0.8 // normalization factor for min-sum

	rowVars := c.rowVars
	c2v := s.c2v
	for i := range s.c2vFlat {
		s.c2vFlat[i] = 0
	}
	posterior := s.posterior
	hard := s.hard

	result := DecodeResult{}
	for iter := 1; iter <= maxIters; iter++ {
		result.Iterations = iter
		// Variable-to-check messages are computed on the fly:
		// v2c(v->i) = llr[v] + sum of c2v from other rows of v.
		// First accumulate posteriors.
		copy(posterior, llr)
		for i, rv := range rowVars {
			for j, v := range rv {
				posterior[v] += c2v[i][j]
			}
		}
		// Check node update (min-sum with normalization).
		for i, rv := range rowVars {
			// Extrinsic v2c = posterior - own c2v.
			sign := 1.0
			min1, min2 := math.Inf(1), math.Inf(1)
			minIdx := -1
			for j, v := range rv {
				m := posterior[v] - c2v[i][j]
				if m < 0 {
					sign = -sign
					m = -m
				}
				if m < min1 {
					min2 = min1
					min1 = m
					minIdx = j
				} else if m < min2 {
					min2 = m
				}
			}
			for j, v := range rv {
				m := posterior[v] - c2v[i][j]
				s := sign
				if m < 0 {
					s = -s
					m = -m
				}
				mag := min1
				if j == minIdx {
					mag = min2
				}
				c2v[i][j] = alpha * s * mag
			}
		}
		// Posterior and hard decision with updated messages.
		copy(posterior, llr)
		for i, rv := range rowVars {
			for j, v := range rv {
				posterior[v] += c2v[i][j]
			}
		}
		for v := range hard {
			if posterior[v] < 0 {
				hard[v] = 1
			} else {
				hard[v] = 0
			}
		}
		if c.checkParity(hard) {
			result.OK = true
			break
		}
	}
	copy(s.info, hard[:c.K])
	result.Info = s.info
	return result
}

// checkParity reports whether all M parity checks are satisfied by the
// hard-decision bits.
func (c *Code) checkParity(bits []byte) bool {
	var prev byte
	for i, row := range c.rows {
		var s byte
		for _, v := range row {
			s ^= bits[v]
		}
		s ^= bits[c.K+i] ^ prev
		if s != 0 {
			return false
		}
		prev = bits[c.K+i]
	}
	return true
}

// Edges returns the Tanner-graph edge count (decoder cost estimate).
func (c *Code) Edges() int { return c.edges }

// codeCache memoizes constructed codes; construction is deterministic so
// sharing is safe across encoders and decoders. The mutex makes Get safe
// from concurrently sharded experiment runs (internal/par seed shards).
var (
	codeCacheMu sync.Mutex
	codeCache   = map[[3]uint64]*Code{}
)

// Get returns a cached code for (k, n, seed), constructing it on first
// use. Safe for concurrent use; the returned *Code may be decoded from
// many goroutines (per-call scratch is pooled, the graph is immutable).
func Get(k, n int, seed uint64) *Code {
	key := [3]uint64{uint64(k), uint64(n), seed}
	codeCacheMu.Lock()
	defer codeCacheMu.Unlock()
	if c, ok := codeCache[key]; ok {
		return c
	}
	c := NewCode(k, n, seed)
	codeCache[key] = c
	return c
}
