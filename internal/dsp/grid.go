package dsp

import "fmt"

// OFDM numerology for the cell configuration the paper evaluates:
// 100 MHz bandwidth at 30 kHz subcarrier spacing (5G numerology µ=1),
// giving 500 µs slots of 14 OFDM symbols and 273 physical resource blocks.
const (
	SubcarriersPerPRB = 12
	SymbolsPerSlot    = 14
	// MaxPRB is the PRB count of a 100 MHz / 30 kHz carrier.
	MaxPRB = 273
	// PilotSpacing places one pilot every PilotSpacing resource elements
	// of an allocation (DM-RS-like density).
	PilotSpacing = 8
)

// Allocation describes one UE's resource assignment in a slot.
type Allocation struct {
	UEID     uint16
	StartPRB int
	NumPRB   int
	Mod      Modulation
}

// REs returns the total resource elements of the allocation.
func (a Allocation) REs() int {
	return a.NumPRB * SubcarriersPerPRB * SymbolsPerSlot
}

// PilotREs returns how many REs carry pilots.
func (a Allocation) PilotREs() int {
	return a.REs() / PilotSpacing
}

// DataREs returns how many REs carry data symbols.
func (a Allocation) DataREs() int {
	return a.REs() - a.PilotREs()
}

// DataBits returns the number of coded bits the allocation can carry.
func (a Allocation) DataBits() int {
	return a.DataREs() * a.Mod.BitsPerSymbol()
}

// Validate checks the allocation against grid bounds.
func (a Allocation) Validate() error {
	if a.NumPRB <= 0 {
		return fmt.Errorf("dsp: allocation with %d PRBs", a.NumPRB)
	}
	if a.StartPRB < 0 || a.StartPRB+a.NumPRB > MaxPRB {
		return fmt.Errorf("dsp: allocation [%d, %d) outside grid of %d PRBs",
			a.StartPRB, a.StartPRB+a.NumPRB, MaxPRB)
	}
	if !a.Mod.Valid() {
		return fmt.Errorf("dsp: invalid modulation %d", a.Mod)
	}
	return nil
}

// Grid tracks PRB occupancy for one slot, rejecting overlapping
// allocations — the scheduler-side invariant the L2 must maintain.
type Grid struct {
	used   [MaxPRB]bool
	allocs []Allocation
}

// NewGrid returns an empty slot grid.
func NewGrid() *Grid { return &Grid{} }

// Place adds an allocation, failing on overlap or bounds violations.
func (g *Grid) Place(a Allocation) error {
	if err := a.Validate(); err != nil {
		return err
	}
	for i := a.StartPRB; i < a.StartPRB+a.NumPRB; i++ {
		if g.used[i] {
			return fmt.Errorf("dsp: PRB %d already allocated", i)
		}
	}
	for i := a.StartPRB; i < a.StartPRB+a.NumPRB; i++ {
		g.used[i] = true
	}
	g.allocs = append(g.allocs, a)
	return nil
}

// Allocations returns the placed allocations in placement order.
func (g *Grid) Allocations() []Allocation { return g.allocs }

// FreePRBs returns the number of unallocated PRBs.
func (g *Grid) FreePRBs() int {
	n := 0
	for _, u := range g.used {
		if !u {
			n++
		}
	}
	return n
}

// PRBsForBits returns the minimum PRB count able to carry codedBits at the
// given modulation.
func PRBsForBits(codedBits int, m Modulation) int {
	perPRB := Allocation{NumPRB: 1, Mod: m}.DataBits()
	n := (codedBits + perPRB - 1) / perPRB
	if n < 1 {
		n = 1
	}
	return n
}
