package dsp

import (
	"math"
	"testing"

	"slingshot/internal/sim"
)

// TestDemodulateMatchesReference pins the closed-form max-log demodulator
// to the retained full-scan oracle (demod_reference.go): bit-exact LLRs for
// every constellation over in-range, saturated, near-zero, and exactly-on-
// level symbols (the bracket boundaries where a wrong nearest-candidate
// choice would first show), including the noiseVar clamp path.
func TestDemodulateMatchesReference(t *testing.T) {
	rng := sim.NewRNG(99)
	mods := []Modulation{QPSK, QAM16, QAM64, QAM256}
	for trial := 0; trial < 4000; trial++ {
		m := mods[trial%4]
		n := 1 + rng.Intn(40)
		syms := make([]complex128, n)
		for i := range syms {
			// Mix of in-constellation, far-out, and near-level points.
			sc := 1.0
			switch rng.Intn(4) {
			case 1:
				sc = 5.0
			case 2:
				sc = 0.1
			case 3:
				half := int(m) / 2
				lv := pamTables[half].scaled
				a := lv[rng.Intn(len(lv))] + rng.Norm()*1e-15
				b := lv[rng.Intn(len(lv))] + rng.Norm()*1e-15
				syms[i] = complex(a, b)
				continue
			}
			syms[i] = complex(rng.Norm()*sc, rng.Norm()*sc)
		}
		nv := math.Abs(rng.Norm()) + 1e-3
		if trial%17 == 0 {
			nv = 0 // clamp path
		}
		got := Demodulate(syms, m, nv)
		want := DemodulateReference(syms, m, nv)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d %v sym %d: got %g want %g",
					trial, m, i, got[i], want[i])
			}
		}
	}
}
