package dsp

import (
	"math"
	"math/cmplx"

	"slingshot/internal/sim"
)

// Channel models a block-fading wireless channel between a UE and the RU:
// a complex gain h (constant within a slot, evolving slowly across slots by
// a Gauss-Markov process) plus AWGN set by the link's average SNR.
type Channel struct {
	// MeanSNRdB is the long-term average SNR of the link.
	MeanSNRdB float64
	// FadeStd controls slot-to-slot gain variation (dB-scale std of the
	// log-amplitude component); 0 disables fading.
	FadeStd float64
	// Corr is the Gauss-Markov correlation of the fading state across
	// consecutive slots (0..1). Higher = slower fading.
	Corr float64

	rng   *sim.RNG
	state float64 // fading log-amplitude state, dB
	phase float64
}

// NewChannel builds a channel with the given mean SNR and a dedicated RNG
// stream.
func NewChannel(meanSNRdB, fadeStd, corr float64, rng *sim.RNG) *Channel {
	return &Channel{MeanSNRdB: meanSNRdB, FadeStd: fadeStd, Corr: corr, rng: rng}
}

// Advance evolves the fading state by one slot and returns the slot's
// effective SNR in dB.
func (c *Channel) Advance() float64 {
	if c.FadeStd > 0 {
		innov := math.Sqrt(1-c.Corr*c.Corr) * c.FadeStd
		c.state = c.Corr*c.state + c.rng.NormMeanStd(0, innov)
		c.phase += c.rng.Jitter(0.2)
	}
	return c.MeanSNRdB + c.state
}

// SNRdB returns the current slot's effective SNR without advancing.
func (c *Channel) SNRdB() float64 { return c.MeanSNRdB + c.state }

// Gain returns the current complex channel gain (unit mean power scaled by
// the fading state; phase rotates slowly).
func (c *Channel) Gain() complex128 {
	amp := math.Pow(10, c.state/20)
	return cmplx.Rect(amp, c.phase)
}

// NoiseVar returns the complex noise variance for unit-power transmit
// symbols at the channel's current SNR.
func (c *Channel) NoiseVar() float64 {
	return math.Pow(10, -c.SNRdB()/10)
}

// Transmit passes unit-power symbols through the channel: applies the
// complex gain and adds complex AWGN at the current SNR. The input is not
// modified.
func (c *Channel) Transmit(symbols []complex128) []complex128 {
	h := c.Gain()
	sigma := math.Sqrt(c.NoiseVar() / 2)
	out := make([]complex128, len(symbols))
	for i, s := range symbols {
		n := complex(c.rng.Norm()*sigma, c.rng.Norm()*sigma)
		out[i] = s*h + n
	}
	return out
}

// EstimateChannel performs least-squares channel estimation from received
// pilot symbols given the known transmitted pilots. It returns the gain
// estimate and the residual noise-variance estimate.
func EstimateChannel(rxPilots, txPilots []complex128) (h complex128, noiseVar float64) {
	if len(rxPilots) == 0 || len(rxPilots) != len(txPilots) {
		return 1, 1
	}
	var num, den complex128
	for i := range rxPilots {
		num += rxPilots[i] * cmplx.Conj(txPilots[i])
		den += txPilots[i] * cmplx.Conj(txPilots[i])
	}
	if den == 0 {
		return 1, 1
	}
	h = num / den
	var resid float64
	for i := range rxPilots {
		d := rxPilots[i] - h*txPilots[i]
		resid += real(d)*real(d) + imag(d)*imag(d)
	}
	noiseVar = resid / float64(len(rxPilots))
	if noiseVar < 1e-12 {
		noiseVar = 1e-12
	}
	return h, noiseVar
}

// Equalize divides received symbols by the channel estimate (zero-forcing).
// The input is modified in place and returned.
func Equalize(symbols []complex128, h complex128) []complex128 {
	if h == 0 {
		h = 1
	}
	inv := 1 / h
	for i := range symbols {
		symbols[i] *= inv
	}
	return symbols
}

// Pilots returns n known QPSK pilot symbols derived from seed; transmitter
// and receiver derive the same sequence independently.
func Pilots(n int, seed uint64) []complex128 {
	return PilotsInto(nil, n, seed)
}

// PilotsInto is Pilots writing into dst (grown as needed), so per-block
// hot paths can reuse one pilot buffer instead of allocating per call.
func PilotsInto(dst []complex128, n int, seed uint64) []complex128 {
	rng := sim.NewRNG(seed | 1)
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	inv := 1 / math.Sqrt2
	for i := range dst {
		bits := rng.Uint64()
		re, im := inv, inv
		if bits&1 != 0 {
			re = -inv
		}
		if bits&2 != 0 {
			im = -inv
		}
		dst[i] = complex(re, im)
	}
	return dst
}

// SNRFromNoiseVar converts a unit-signal-power noise variance to dB SNR.
func SNRFromNoiseVar(noiseVar float64) float64 {
	if noiseVar <= 0 {
		return 60
	}
	return -10 * math.Log10(noiseVar)
}
