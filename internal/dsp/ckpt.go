package dsp

import "slingshot/internal/ckpt/wire"

// SnapshotTo writes the channel's fading state and RNG point, pinning the
// radio randomness a restored run will draw.
func (c *Channel) SnapshotTo(w *wire.W) {
	w.F64(c.MeanSNRdB)
	w.F64(c.FadeStd)
	w.F64(c.Corr)
	w.F64(c.state)
	w.F64(c.phase)
	for _, v := range c.rng.State() {
		w.U64(v)
	}
}
