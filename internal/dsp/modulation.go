// Package dsp implements the signal-processing substrate of the simulated
// PHY: Gray-mapped QAM modulation with max-log soft demodulation, AWGN and
// block-fading channel models, pilot-based channel estimation, and the
// OFDM resource-grid bookkeeping used to size fronthaul payloads.
package dsp

import (
	"fmt"
	"math"
	"sync"
)

// Modulation identifies a QAM constellation.
type Modulation uint8

// Supported constellations (bits per symbol in parentheses).
const (
	QPSK   Modulation = 2 // 4-QAM (2)
	QAM16  Modulation = 4 // (4)
	QAM64  Modulation = 6 // (6)
	QAM256 Modulation = 8 // (8)
)

// BitsPerSymbol returns the number of bits carried by one symbol.
func (m Modulation) BitsPerSymbol() int { return int(m) }

func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	case QAM256:
		return "256QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", uint8(m))
	}
}

// Valid reports whether m is a supported constellation.
func (m Modulation) Valid() bool {
	switch m {
	case QPSK, QAM16, QAM64, QAM256:
		return true
	}
	return false
}

// pamLevels returns the Gray-mapped PAM amplitude table for bitsPerAxis
// bits: index = bit pattern (MSB first), value = amplitude before
// normalization. Levels are the odd integers -L+1..L-1.
func pamLevels(bitsPerAxis int) []float64 {
	n := 1 << bitsPerAxis
	levels := make([]float64, n)
	for pattern := 0; pattern < n; pattern++ {
		// Gray decode: position = gray^-1(pattern).
		g := pattern
		b := 0
		for g != 0 {
			b ^= g
			g >>= 1
		}
		levels[pattern] = float64(2*b - n + 1)
	}
	return levels
}

// normFactor returns the scale making the constellation unit average power.
func normFactor(bitsPerAxis int) float64 {
	n := 1 << bitsPerAxis
	// Mean of squares of odd integers -n+1..n-1 is (n^2-1)/3 per axis;
	// two axes double it.
	return math.Sqrt(2 * float64(n*n-1) / 3)
}

// pamTables caches the four constellation tables (half ∈ 1..4) so the
// modulate/demodulate hot paths never rebuild or allocate them. Built once
// at init, read-only afterwards — safe from worker goroutines.
//
// Beyond the raw Gray level map, each entry carries the closed-form
// demodulator's precomputed state (DESIGN.md §13): the already-scaled
// amplitude per bit pattern (hoisting the per-use lv*scale multiply — the
// product is rounded once here, so every downstream float is bit-identical
// to computing it inline), and the per-bracket nearest-level candidate
// table described at demodTable.
var pamTables [5]struct {
	levels []float64
	scale  float64   // 1/normFactor
	scaled []float64 // levels[pattern] * scale, rounded once
	// Closed-form demod state: y is bracketed between adjacent levels by
	// one multiply, then cand holds the candidate scaled levels per
	// (bracket, bit, class). base = scaled level at position 0, invStep =
	// 1 / (2*scale) (the level spacing is 2*scale).
	base    float64
	invStep float64
	cand    []float64
}

// demodTable builds the candidate table for the closed-form max-log
// demodulator. Positions 0..n-1 are the levels in ascending amplitude
// (position p has amplitude 2p-n+1 and Gray bit pattern p^(p>>1)). For a
// received y bracketed between positions j and j+1 (rows are indexed j+1 ∈
// 0..n, covering j = -1 and j = n-1 for y outside the constellation), the
// max-log minimum over a bit class is achieved by one of exactly two
// levels: the nearest class member at position ≤ j and the nearest at
// position ≥ j+1 — every other member is farther from y on the same side,
// so its squared distance can never win the (monotone) float min. Rows
// hold 4 candidates per bit — {lo,hi} × {class 0, class 1} — as scaled
// floats; a missing candidate (no class member on that side) is +Inf,
// whose squared distance is +Inf and never selected over a finite one.
func demodTable(half int, scaled []float64) []float64 {
	n := 1 << half
	// slv[p] = scaled level at ascending position p.
	slv := make([]float64, n)
	for p := 0; p < n; p++ {
		slv[p] = scaled[p^(p>>1)] // pattern p^(p>>1) has amplitude 2p-n+1
	}
	bit := func(p, b int) int { g := p ^ (p >> 1); return g >> (half - 1 - b) & 1 }
	tab := make([]float64, (n+1)*half*4)
	for j := -1; j < n; j++ {
		row := tab[(j+1)*half*4:]
		for b := 0; b < half; b++ {
			for class := 0; class < 2; class++ {
				lo, hi := math.Inf(1), math.Inf(1)
				for p := j; p >= 0; p-- {
					if bit(p, b) == class {
						lo = slv[p]
						break
					}
				}
				for p := j + 1; p < n; p++ {
					if bit(p, b) == class {
						hi = slv[p]
						break
					}
				}
				row[b*4+class*2] = lo
				row[b*4+class*2+1] = hi
			}
		}
	}
	return tab
}

func init() {
	for half := 1; half <= 4; half++ {
		t := &pamTables[half]
		t.levels = pamLevels(half)
		t.scale = 1 / normFactor(half)
		t.scaled = make([]float64, len(t.levels))
		for i, lv := range t.levels {
			t.scaled[i] = lv * t.scale
		}
		t.cand = demodTable(half, t.scaled)
		n := 1 << half
		t.base = float64(1-n) * t.scale // scaled level at position 0
		t.invStep = 1 / (2 * t.scale)
	}
}

// Modulate maps bits (one bit per byte, 0/1, MSB-first per symbol) onto
// unit-average-power QAM symbols. len(bits) must be a multiple of
// m.BitsPerSymbol().
func Modulate(bits []byte, m Modulation) []complex128 {
	return AppendModulate(make([]complex128, 0, len(bits)/m.BitsPerSymbol()), bits, m)
}

// AppendModulate is Modulate appending to dst, so per-block hot paths can
// reuse one symbol buffer instead of allocating per call.
func AppendModulate(dst []complex128, bits []byte, m Modulation) []complex128 {
	bps := m.BitsPerSymbol()
	if len(bits)%bps != 0 {
		panic(fmt.Sprintf("dsp: %d bits not a multiple of %d", len(bits), bps))
	}
	half := bps / 2
	scaled := pamTables[half].scaled
	n := len(bits) / bps
	for s := 0; s < n; s++ {
		var iBits, qBits int
		for b := 0; b < half; b++ {
			iBits = iBits<<1 | int(bits[s*bps+b])
			qBits = qBits<<1 | int(bits[s*bps+half+b])
		}
		dst = append(dst, complex(scaled[iBits], scaled[qBits]))
	}
	return dst
}

// Demodulate computes per-bit LLRs (positive = bit 0 likely) from received
// symbols using the exact max-log metric over each PAM axis. noiseVar is
// the complex noise variance per symbol (total, both axes).
func Demodulate(symbols []complex128, m Modulation, noiseVar float64) []float64 {
	return DemodulateInto(nil, symbols, m, noiseVar)
}

// DemodulateInto is Demodulate writing into dst (grown as needed), so hot
// paths can reuse one LLR buffer per block instead of allocating per call.
// It returns dst resized to len(symbols)*BitsPerSymbol.
//
// The metric is evaluated in closed form (DESIGN.md §13) instead of
// scanning the constellation: one multiply brackets the axis value between
// adjacent levels, and per bit the two precomputed candidate levels from
// pamTables decide both class minima. Arithmetic order and rounding match
// the retained scan (DemodulateReference) exactly, so the output is
// bit-identical for all finite inputs; the mins are taken on the float
// bit patterns (non-negative doubles order as their bits), which compiles
// to branch-free compare/select.
func DemodulateInto(dst []float64, symbols []complex128, m Modulation, noiseVar float64) []float64 {
	bps := m.BitsPerSymbol()
	half := bps / 2
	t := &pamTables[half]
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	// Per-axis noise variance; the reference divides by 2*sigma2 per bit,
	// so hoist that exact product.
	sigma2 := noiseVar / 2
	den := 2 * sigma2

	need := len(symbols) * bps
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	if half == 1 {
		// QPSK: one bit per axis, levels ±scale. min0/min1 are singleton
		// scans — inline them (y - (-a) == y + a exactly).
		a := t.scale
		for s, sym := range symbols {
			o := dst[s*2 : s*2+2 : s*2+2]
			yi, yq := real(sym), imag(sym)
			d0 := yi + a
			d1 := yi - a
			o[0] = (d1*d1 - d0*d0) / den
			d0 = yq + a
			d1 = yq - a
			o[1] = (d1*d1 - d0*d0) / den
		}
		return dst
	}
	n := 1 << half
	base, invStep, cand := t.base, t.invStep, t.cand
	rowLen := half * 4
	for s, sym := range symbols {
		out := dst[s*bps : s*bps+bps : s*bps+bps]
		yi, yq := real(sym), imag(sym)
		axisLLRClosed(yi, base, invStep, den, cand, n, half, rowLen, out[:half])
		axisLLRClosed(yq, base, invStep, den, cand, n, half, rowLen, out[half:])
	}
	return dst
}

// axisLLRClosed fills out[:half] with one axis's max-log LLRs from the
// precomputed candidate table. The bracket index j (y between levels j and
// j+1) tolerates the truncation being off by one near a level: the
// candidate that bracket misses is dominated by the level it keeps, so the
// float min is unchanged (see demodTable).
func axisLLRClosed(y, base, invStep, den float64, cand []float64, n, half, rowLen int, out []float64) {
	j := int((y - base) * invStep)
	if y < base {
		j = -1
	}
	if j > n-1 {
		j = n - 1
	}
	row := cand[(j+1)*rowLen : (j+2)*rowLen]
	for b := range out {
		r := row[b*4 : b*4+4 : b*4+4]
		dl0 := y - r[0]
		dh0 := y - r[1]
		dl1 := y - r[2]
		dh1 := y - r[3]
		u0 := math.Float64bits(dl0 * dl0)
		if h := math.Float64bits(dh0 * dh0); h < u0 {
			u0 = h
		}
		u1 := math.Float64bits(dl1 * dl1)
		if h := math.Float64bits(dh1 * dh1); h < u1 {
			u1 = h
		}
		out[b] = (math.Float64frombits(u1) - math.Float64frombits(u0)) / den
	}
}

// llrPool recycles the scratch LLR buffers behind HardDemodulate so hard
// decisions allocate nothing beyond the caller-visible bit slice.
var llrPool = sync.Pool{New: func() any { return new([]float64) }}

// HardDemodulate returns hard bit decisions (0/1 per byte) for symbols.
// The soft scratch is pooled; only the returned slice is allocated. Use
// HardDemodulateInto to reuse the output buffer too.
func HardDemodulate(symbols []complex128, m Modulation) []byte {
	return HardDemodulateInto(nil, symbols, m)
}

// HardDemodulateInto is HardDemodulate appending into bits (grown as
// needed, returned resized), with pooled internal LLR scratch — zero
// allocations at steady state when bits has capacity.
func HardDemodulateInto(bits []byte, symbols []complex128, m Modulation) []byte {
	sp := llrPool.Get().(*[]float64)
	llr := DemodulateInto(*sp, symbols, m, 1)
	*sp = llr[:0]
	if cap(bits) < len(llr) {
		bits = make([]byte, len(llr))
	}
	bits = bits[:len(llr)]
	for i, v := range llr {
		if v < 0 {
			bits[i] = 1
		} else {
			bits[i] = 0
		}
	}
	llrPool.Put(sp)
	return bits
}
