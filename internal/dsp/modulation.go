// Package dsp implements the signal-processing substrate of the simulated
// PHY: Gray-mapped QAM modulation with max-log soft demodulation, AWGN and
// block-fading channel models, pilot-based channel estimation, and the
// OFDM resource-grid bookkeeping used to size fronthaul payloads.
package dsp

import (
	"fmt"
	"math"
)

// Modulation identifies a QAM constellation.
type Modulation uint8

// Supported constellations (bits per symbol in parentheses).
const (
	QPSK   Modulation = 2 // 4-QAM (2)
	QAM16  Modulation = 4 // (4)
	QAM64  Modulation = 6 // (6)
	QAM256 Modulation = 8 // (8)
)

// BitsPerSymbol returns the number of bits carried by one symbol.
func (m Modulation) BitsPerSymbol() int { return int(m) }

func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	case QAM256:
		return "256QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", uint8(m))
	}
}

// Valid reports whether m is a supported constellation.
func (m Modulation) Valid() bool {
	switch m {
	case QPSK, QAM16, QAM64, QAM256:
		return true
	}
	return false
}

// pamLevels returns the Gray-mapped PAM amplitude table for bitsPerAxis
// bits: index = bit pattern (MSB first), value = amplitude before
// normalization. Levels are the odd integers -L+1..L-1.
func pamLevels(bitsPerAxis int) []float64 {
	n := 1 << bitsPerAxis
	levels := make([]float64, n)
	for pattern := 0; pattern < n; pattern++ {
		// Gray decode: position = gray^-1(pattern).
		g := pattern
		b := 0
		for g != 0 {
			b ^= g
			g >>= 1
		}
		levels[pattern] = float64(2*b - n + 1)
	}
	return levels
}

// normFactor returns the scale making the constellation unit average power.
func normFactor(bitsPerAxis int) float64 {
	n := 1 << bitsPerAxis
	// Mean of squares of odd integers -n+1..n-1 is (n^2-1)/3 per axis;
	// two axes double it.
	return math.Sqrt(2 * float64(n*n-1) / 3)
}

// pamTables caches the four constellation tables (half ∈ 1..4) so the
// modulate/demodulate hot paths never rebuild or allocate them. Built once
// at init, read-only afterwards — safe from worker goroutines.
var pamTables [5]struct {
	levels []float64
	scale  float64 // 1/normFactor
}

func init() {
	for half := 1; half <= 4; half++ {
		pamTables[half].levels = pamLevels(half)
		pamTables[half].scale = 1 / normFactor(half)
	}
}

// Modulate maps bits (one bit per byte, 0/1, MSB-first per symbol) onto
// unit-average-power QAM symbols. len(bits) must be a multiple of
// m.BitsPerSymbol().
func Modulate(bits []byte, m Modulation) []complex128 {
	return AppendModulate(make([]complex128, 0, len(bits)/m.BitsPerSymbol()), bits, m)
}

// AppendModulate is Modulate appending to dst, so per-block hot paths can
// reuse one symbol buffer instead of allocating per call.
func AppendModulate(dst []complex128, bits []byte, m Modulation) []complex128 {
	bps := m.BitsPerSymbol()
	if len(bits)%bps != 0 {
		panic(fmt.Sprintf("dsp: %d bits not a multiple of %d", len(bits), bps))
	}
	half := bps / 2
	levels := pamTables[half].levels
	scale := pamTables[half].scale
	n := len(bits) / bps
	for s := 0; s < n; s++ {
		var iBits, qBits int
		for b := 0; b < half; b++ {
			iBits = iBits<<1 | int(bits[s*bps+b])
			qBits = qBits<<1 | int(bits[s*bps+half+b])
		}
		dst = append(dst, complex(levels[iBits]*scale, levels[qBits]*scale))
	}
	return dst
}

// Demodulate computes per-bit LLRs (positive = bit 0 likely) from received
// symbols using the exact max-log metric over each PAM axis. noiseVar is
// the complex noise variance per symbol (total, both axes).
func Demodulate(symbols []complex128, m Modulation, noiseVar float64) []float64 {
	return DemodulateInto(nil, symbols, m, noiseVar)
}

// DemodulateInto is Demodulate writing into dst (grown as needed), so hot
// paths can reuse one LLR buffer per block instead of allocating per call.
// It returns dst resized to len(symbols)*BitsPerSymbol.
func DemodulateInto(dst []float64, symbols []complex128, m Modulation, noiseVar float64) []float64 {
	bps := m.BitsPerSymbol()
	half := bps / 2
	levels := pamTables[half].levels
	scale := pamTables[half].scale
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	// Per-axis noise variance.
	sigma2 := noiseVar / 2

	need := len(symbols) * bps
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	for s, sym := range symbols {
		axisLLR(real(sym), levels, scale, sigma2, half, dst[s*bps:])
		axisLLR(imag(sym), levels, scale, sigma2, half, dst[s*bps+half:])
	}
	return dst
}

// axisLLR fills out[:half] with the max-log LLRs of one PAM axis:
// (min_{x: bit=1} (y-x)^2 - min_{x: bit=0} (y-x)^2) / (2 sigma2).
func axisLLR(y float64, levels []float64, scale, sigma2 float64, half int, out []float64) {
	for b := 0; b < half; b++ {
		min0, min1 := math.Inf(1), math.Inf(1)
		for pattern, lv := range levels {
			d := y - lv*scale
			d2 := d * d
			if pattern&(1<<(half-1-b)) == 0 {
				if d2 < min0 {
					min0 = d2
				}
			} else if d2 < min1 {
				min1 = d2
			}
		}
		out[b] = (min1 - min0) / (2 * sigma2)
	}
}

// HardDemodulate returns hard bit decisions (0/1 per byte) for symbols.
func HardDemodulate(symbols []complex128, m Modulation) []byte {
	llr := Demodulate(symbols, m, 1)
	bits := make([]byte, len(llr))
	for i, v := range llr {
		if v < 0 {
			bits[i] = 1
		}
	}
	return bits
}
