package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

func randomBits(rng *sim.RNG, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Uint64() & 1)
	}
	return bits
}

func TestModulationStrings(t *testing.T) {
	cases := map[Modulation]string{QPSK: "QPSK", QAM16: "16QAM", QAM64: "64QAM", QAM256: "256QAM"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
		if !m.Valid() {
			t.Errorf("%v not Valid", m)
		}
	}
	if Modulation(3).Valid() {
		t.Error("Modulation(3) reported valid")
	}
}

func TestUnitAveragePower(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
		bits := randomBits(rng, 6000*m.BitsPerSymbol()/2*2)
		syms := Modulate(bits[:len(bits)/m.BitsPerSymbol()*m.BitsPerSymbol()], m)
		var p float64
		for _, s := range syms {
			p += real(s)*real(s) + imag(s)*imag(s)
		}
		p /= float64(len(syms))
		if math.Abs(p-1) > 0.05 {
			t.Errorf("%v average power = %f, want 1", m, p)
		}
	}
}

func TestModulateDemodulateRoundTripNoiseless(t *testing.T) {
	rng := sim.NewRNG(2)
	for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
		n := 240 * m.BitsPerSymbol()
		bits := randomBits(rng, n)
		syms := Modulate(bits, m)
		got := HardDemodulate(syms, m)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%v: bit %d mismatch", m, i)
			}
		}
	}
}

func TestDemodulateLLRSignProperty(t *testing.T) {
	// Property: noiseless LLR sign must encode the transmitted bit
	// (positive for 0, negative for 1) for random payloads and all
	// constellations.
	rng := sim.NewRNG(3)
	f := func(seed uint32) bool {
		for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
			bits := randomBits(rng, 24*m.BitsPerSymbol())
			llr := Demodulate(Modulate(bits, m), m, 0.01)
			for i, b := range bits {
				if (llr[i] < 0) != (b == 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestModulatePanicsOnRaggedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ragged bit count")
		}
	}()
	Modulate(make([]byte, 5), QAM16)
}

func TestGrayNeighborsDifferByOneBit(t *testing.T) {
	// Adjacent PAM levels must differ in exactly one bit (Gray property) —
	// this is what makes near-threshold errors single-bit.
	for _, half := range []int{1, 2, 3, 4} {
		levels := pamLevels(half)
		// Build level->pattern inverse.
		inv := map[float64]int{}
		for pat, lv := range levels {
			inv[lv] = pat
		}
		n := 1 << half
		for l := -n + 1; l < n-1; l += 2 {
			a, b := inv[float64(l)], inv[float64(l+2)]
			x := a ^ b
			if x == 0 || x&(x-1) != 0 {
				t.Fatalf("half=%d: levels %d,%d patterns %b,%b differ in >1 bit",
					half, l, l+2, a, b)
			}
		}
	}
}

func TestChannelTransmitSNR(t *testing.T) {
	rng := sim.NewRNG(4)
	ch := NewChannel(10, 0, 0, rng)
	bits := randomBits(rng, 4000)
	tx := Modulate(bits, QPSK)
	rx := ch.Transmit(tx)
	// Measure empirical noise power after removing the (unit) gain.
	var noise float64
	for i := range rx {
		d := rx[i] - tx[i]
		noise += real(d)*real(d) + imag(d)*imag(d)
	}
	noise /= float64(len(rx))
	snr := -10 * math.Log10(noise)
	if math.Abs(snr-10) > 0.5 {
		t.Fatalf("empirical SNR = %f dB, want ~10", snr)
	}
}

func TestChannelFadingVaries(t *testing.T) {
	rng := sim.NewRNG(5)
	ch := NewChannel(15, 3, 0.9, rng)
	seen := map[float64]bool{}
	minSNR, maxSNR := math.Inf(1), math.Inf(-1)
	for i := 0; i < 500; i++ {
		s := ch.Advance()
		seen[s] = true
		minSNR = math.Min(minSNR, s)
		maxSNR = math.Max(maxSNR, s)
	}
	if len(seen) < 100 {
		t.Fatal("fading state not evolving")
	}
	if maxSNR-minSNR < 4 {
		t.Fatalf("fading range only %f dB", maxSNR-minSNR)
	}
}

func TestChannelNoFadingIsConstant(t *testing.T) {
	ch := NewChannel(20, 0, 0, sim.NewRNG(6))
	for i := 0; i < 10; i++ {
		if ch.Advance() != 20 {
			t.Fatal("SNR moved without fading")
		}
	}
	if ch.Gain() != complex(1, 0) {
		t.Fatalf("gain = %v, want 1", ch.Gain())
	}
}

func TestEstimateChannelRecoverGain(t *testing.T) {
	rng := sim.NewRNG(7)
	ch := NewChannel(25, 2, 0.9, rng)
	for i := 0; i < 5; i++ {
		ch.Advance()
	}
	pilots := Pilots(64, 99)
	rx := ch.Transmit(pilots)
	h, nv := EstimateChannel(rx, pilots)
	hTrue := ch.Gain()
	if d := h - hTrue; real(d)*real(d)+imag(d)*imag(d) > 0.05 {
		t.Fatalf("estimate %v far from true %v", h, hTrue)
	}
	if nv <= 0 {
		t.Fatalf("noiseVar = %f", nv)
	}
}

func TestEqualizeInvertsGain(t *testing.T) {
	rng := sim.NewRNG(8)
	ch := NewChannel(60, 4, 0.5, rng) // high SNR, strong fading
	ch.Advance()
	bits := randomBits(rng, 512)
	tx := Modulate(bits, QAM16)
	rx := ch.Transmit(tx)
	Equalize(rx, ch.Gain())
	got := HardDemodulate(rx, QAM16)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d mismatch after equalization", i)
		}
	}
}

func TestEstimateChannelDegenerateInputs(t *testing.T) {
	h, nv := EstimateChannel(nil, nil)
	if h != 1 || nv != 1 {
		t.Fatal("nil pilots should return defaults")
	}
	h, nv = EstimateChannel(make([]complex128, 3), make([]complex128, 3))
	if h != 1 || nv != 1 {
		t.Fatal("zero pilots should return defaults")
	}
}

func TestPilotsDeterministic(t *testing.T) {
	a, b := Pilots(32, 5), Pilots(32, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pilot sequences diverge for same seed")
		}
	}
	c := Pilots(32, 6)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff < 8 {
		t.Fatal("pilot sequences for different seeds too similar")
	}
}

func TestSNRFromNoiseVar(t *testing.T) {
	if got := SNRFromNoiseVar(0.1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("SNRFromNoiseVar(0.1) = %f", got)
	}
	if got := SNRFromNoiseVar(0); got != 60 {
		t.Fatalf("SNRFromNoiseVar(0) = %f", got)
	}
}

func TestAllocationAccounting(t *testing.T) {
	a := Allocation{UEID: 1, StartPRB: 0, NumPRB: 2, Mod: QAM16}
	if got := a.REs(); got != 2*12*14 {
		t.Fatalf("REs = %d", got)
	}
	if got := a.PilotREs(); got != a.REs()/PilotSpacing {
		t.Fatalf("PilotREs = %d", got)
	}
	if got := a.DataBits(); got != a.DataREs()*4 {
		t.Fatalf("DataBits = %d", got)
	}
}

func TestGridOverlapRejected(t *testing.T) {
	g := NewGrid()
	if err := g.Place(Allocation{UEID: 1, StartPRB: 0, NumPRB: 10, Mod: QPSK}); err != nil {
		t.Fatal(err)
	}
	if err := g.Place(Allocation{UEID: 2, StartPRB: 5, NumPRB: 10, Mod: QPSK}); err == nil {
		t.Fatal("overlap accepted")
	}
	if err := g.Place(Allocation{UEID: 2, StartPRB: 10, NumPRB: 10, Mod: QPSK}); err != nil {
		t.Fatal(err)
	}
	if got := g.FreePRBs(); got != MaxPRB-20 {
		t.Fatalf("FreePRBs = %d", got)
	}
	if len(g.Allocations()) != 2 {
		t.Fatal("allocation list wrong")
	}
}

func TestGridBounds(t *testing.T) {
	g := NewGrid()
	if err := g.Place(Allocation{StartPRB: MaxPRB - 1, NumPRB: 2, Mod: QPSK}); err == nil {
		t.Fatal("out-of-bounds allocation accepted")
	}
	if err := g.Place(Allocation{StartPRB: 0, NumPRB: 0, Mod: QPSK}); err == nil {
		t.Fatal("empty allocation accepted")
	}
	if err := g.Place(Allocation{StartPRB: 0, NumPRB: 1, Mod: Modulation(5)}); err == nil {
		t.Fatal("bad modulation accepted")
	}
}

func TestPRBsForBits(t *testing.T) {
	perPRB := Allocation{NumPRB: 1, Mod: QPSK}.DataBits()
	if got := PRBsForBits(perPRB, QPSK); got != 1 {
		t.Fatalf("PRBsForBits(one PRB) = %d", got)
	}
	if got := PRBsForBits(perPRB+1, QPSK); got != 2 {
		t.Fatalf("PRBsForBits(one PRB + 1) = %d", got)
	}
	if got := PRBsForBits(0, QPSK); got != 1 {
		t.Fatalf("PRBsForBits(0) = %d", got)
	}
}

// TestEndToEndBERImprovesWithSNR chains modulation, channel, estimation,
// equalization and demodulation and checks BER decreases with SNR.
func TestEndToEndBERImprovesWithSNR(t *testing.T) {
	ber := func(snr float64) float64 {
		rng := sim.NewRNG(77)
		ch := NewChannel(snr, 0, 0, rng)
		bits := randomBits(rng, 24000)
		tx := Modulate(bits, QAM16)
		rx := ch.Transmit(tx)
		pilots := Pilots(64, 1)
		rxp := ch.Transmit(pilots)
		h, nv := EstimateChannel(rxp, pilots)
		Equalize(rx, h)
		llr := Demodulate(rx, QAM16, nv)
		errs := 0
		for i, b := range bits {
			if (llr[i] < 0) != (b == 1) {
				errs++
			}
		}
		return float64(errs) / float64(len(bits))
	}
	low, high := ber(5), ber(20)
	if high >= low {
		t.Fatalf("BER at 20dB (%f) not below BER at 5dB (%f)", high, low)
	}
	if low < 0.01 {
		t.Fatalf("BER at 5dB 16QAM suspiciously low: %f", low)
	}
	if high > 0.01 {
		t.Fatalf("BER at 20dB 16QAM suspiciously high: %f", high)
	}
}
