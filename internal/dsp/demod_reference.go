package dsp

import "math"

// This file retains the pre-closed-form soft demodulator verbatim: the
// textbook max-log metric evaluated by scanning every constellation level
// per bit, O(half·2^half) per axis. It is the differential-test oracle for
// the closed-form piecewise-linear demodulator in modulation.go —
// TestDemodulateMatchesReference asserts the production path is bit-exact
// against it for every constellation — and the plainest statement of the
// metric for readers. It is not called from any hot path.

// DemodulateReference computes per-bit LLRs exactly like Demodulate but via
// the retained full-scan reference implementation.
func DemodulateReference(symbols []complex128, m Modulation, noiseVar float64) []float64 {
	bps := m.BitsPerSymbol()
	half := bps / 2
	levels := pamTables[half].levels
	scale := pamTables[half].scale
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	sigma2 := noiseVar / 2

	dst := make([]float64, len(symbols)*bps)
	for s, sym := range symbols {
		axisLLRReference(real(sym), levels, scale, sigma2, half, dst[s*bps:])
		axisLLRReference(imag(sym), levels, scale, sigma2, half, dst[s*bps+half:])
	}
	return dst
}

// axisLLRReference fills out[:half] with the max-log LLRs of one PAM axis:
// (min_{x: bit=1} (y-x)^2 - min_{x: bit=0} (y-x)^2) / (2 sigma2), by
// scanning every level of the constellation per bit.
func axisLLRReference(y float64, levels []float64, scale, sigma2 float64, half int, out []float64) {
	for b := 0; b < half; b++ {
		min0, min1 := math.Inf(1), math.Inf(1)
		for pattern, lv := range levels {
			d := y - lv*scale
			d2 := d * d
			if pattern&(1<<(half-1-b)) == 0 {
				if d2 < min0 {
					min0 = d2
				}
			} else if d2 < min1 {
				min1 = d2
			}
		}
		out[b] = (min1 - min0) / (2 * sigma2)
	}
}
