package dsp

import (
	"testing"

	"slingshot/internal/sim"
)

// benchSymbols returns deterministic noisy symbols for m: modulated random
// bits plus AWGN at roughly 10 dB, the regime the closed-form demodulator
// sees in the simulator.
func benchSymbols(m Modulation, n int) []complex128 {
	rng := sim.NewRNG(31)
	bits := make([]byte, n*m.BitsPerSymbol())
	for i := range bits {
		if rng.Bool(0.5) {
			bits[i] = 1
		}
	}
	syms := Modulate(bits, m)
	for i := range syms {
		syms[i] += complex(rng.Norm()*0.05, rng.Norm()*0.05)
	}
	return syms
}

// benchMods names the per-constellation sub-benchmarks tracked by
// scripts/bench.sh (Demodulate/QPSK ... Modulate/256QAM).
var benchMods = []Modulation{QPSK, QAM16, QAM64, QAM256}

func BenchmarkDemodulate(b *testing.B) {
	const nSym = 512
	for _, m := range benchMods {
		b.Run(m.String(), func(b *testing.B) {
			syms := benchSymbols(m, nSym)
			dst := make([]float64, nSym*m.BitsPerSymbol())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = DemodulateInto(dst, syms, m, 0.02)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nSym), "ns/sym")
		})
	}
}

func BenchmarkModulate(b *testing.B) {
	const nSym = 512
	for _, m := range benchMods {
		b.Run(m.String(), func(b *testing.B) {
			rng := sim.NewRNG(32)
			bits := make([]byte, nSym*m.BitsPerSymbol())
			for i := range bits {
				if rng.Bool(0.5) {
					bits[i] = 1
				}
			}
			dst := make([]complex128, 0, nSym)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = AppendModulate(dst[:0], bits, m)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nSym), "ns/sym")
		})
	}
}

// BenchmarkDemodulateReference tracks the retained full-scan oracle so the
// closed-form speedup stays visible in the bench history.
func BenchmarkDemodulateReference(b *testing.B) {
	const nSym = 512
	for _, m := range benchMods {
		b.Run(m.String(), func(b *testing.B) {
			syms := benchSymbols(m, nSym)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = DemodulateReference(syms, m, 0.02)
			}
		})
	}
}
