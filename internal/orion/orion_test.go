package orion

import (
	"testing"

	"slingshot/internal/fapi"
	"slingshot/internal/netmodel"
	"slingshot/internal/sim"
	"slingshot/internal/switchsim"
)

// l2Rig is an L2-side Orion with captured network output.
type l2Rig struct {
	e      *sim.Engine
	o      *Orion
	frames []*netmodel.Frame
	toL2   []fapi.Message
}

func newL2Rig() *l2Rig {
	r := &l2Rig{e: sim.NewEngine()}
	r.o = New(r.e, DefaultConfig(10, RoleL2Side))
	r.o.SendFrame = func(f *netmodel.Frame) { r.frames = append(r.frames, f) }
	r.o.ToL2 = func(m fapi.Message) { r.toL2 = append(r.toL2, m) }
	r.o.AddCell(0, 1, 2) // cell 0: primary on server 1, secondary on server 2
	return r
}

// fapiFramesTo returns decoded FAPI messages sent to a given Orion server.
func (r *l2Rig) fapiFramesTo(server uint8) []fapi.Message {
	var out []fapi.Message
	for _, f := range r.frames {
		if f.Type != netmodel.EtherTypeFAPI || f.Dst != netmodel.OrionAddr(server) {
			continue
		}
		m, err := fapi.Decode(f.Payload)
		if err == nil {
			out = append(out, m)
		}
	}
	return out
}

func (r *l2Rig) controlFrames() []*switchsim.Command {
	var out []*switchsim.Command
	for _, f := range r.frames {
		if f.Type != netmodel.EtherTypeControl {
			continue
		}
		c, err := switchsim.DecodeCommand(f.Payload)
		if err == nil {
			out = append(out, c)
		}
	}
	return out
}

func TestConfigRequestDuplicatedToBothPHYs(t *testing.T) {
	r := newL2Rig()
	req := &fapi.ConfigRequest{CellID: 0, NumPRB: 273, Seed: 7}
	r.e.At(0, "cfg", func() { r.o.FromL2(req) })
	r.e.Run()
	for _, server := range []uint8{1, 2} {
		ms := r.fapiFramesTo(server)
		if len(ms) != 1 || ms[0].Kind() != fapi.KindConfigRequest {
			t.Fatalf("server %d got %v", server, ms)
		}
	}
	if r.o.StoredInit(0) == nil || r.o.StoredInit(0).Seed != 7 {
		t.Fatal("init request not stored")
	}
}

func TestRealToActiveNullToStandby(t *testing.T) {
	r := newL2Rig()
	ul := &fapi.ULConfig{CellID: 0, Slot: 5, PDUs: []fapi.PDU{{UEID: 1}}}
	dl := &fapi.DLConfig{CellID: 0, Slot: 5, PDUs: []fapi.PDU{{UEID: 1}}}
	tx := &fapi.TxData{CellID: 0, Slot: 5, Payloads: []fapi.TBPayload{{UEID: 1, Data: []byte("x")}}}
	r.e.At(0, "send", func() { r.o.FromL2(ul); r.o.FromL2(dl); r.o.FromL2(tx) })
	r.e.Run()

	prim := r.fapiFramesTo(1)
	if len(prim) != 3 {
		t.Fatalf("primary got %d messages", len(prim))
	}
	if prim[0].(*fapi.ULConfig).Null() || prim[1].(*fapi.DLConfig).Null() {
		t.Fatal("primary got null configs")
	}
	sec := r.fapiFramesTo(2)
	if len(sec) != 2 {
		t.Fatalf("secondary got %d messages, want 2 nulls", len(sec))
	}
	if !sec[0].(*fapi.ULConfig).Null() || !sec[1].(*fapi.DLConfig).Null() {
		t.Fatal("secondary got real work")
	}
	if r.o.Stats.NullsSent != 2 {
		t.Fatalf("NullsSent = %d", r.o.Stats.NullsSent)
	}
}

func TestStandbyResponsesDropped(t *testing.T) {
	r := newL2Rig()
	crc := &fapi.CRCIndication{CellID: 0, Slot: 3,
		Results: []fapi.CRCResult{{UEID: 1, OK: true}}}
	fromServer := func(server uint8) *netmodel.Frame {
		return &netmodel.Frame{
			Src: netmodel.OrionAddr(server), Dst: r.o.Addr,
			Type: netmodel.EtherTypeFAPI, Payload: fapi.Encode(crc),
		}
	}
	r.e.At(0, "resp", func() {
		r.o.HandleFrame(fromServer(1)) // active
		r.o.HandleFrame(fromServer(2)) // standby
	})
	r.e.Run()
	if len(r.toL2) != 1 {
		t.Fatalf("L2 received %d messages, want 1", len(r.toL2))
	}
	if r.o.Stats.RespDropped != 1 {
		t.Fatalf("RespDropped = %d", r.o.Stats.RespDropped)
	}
}

func TestPlannedMigrationSwitchesRoles(t *testing.T) {
	r := newL2Rig()
	var boundary uint64
	r.e.At(10*sim.Millisecond, "migrate", func() { boundary = r.o.Migrate(0) })
	r.e.Run()

	if got := r.o.ActiveServer(0); got != 2 {
		t.Fatalf("active = %d after migration", got)
	}
	if got := r.o.StandbyServer(0); got != 1 {
		t.Fatalf("standby = %d", got)
	}
	// Boundary must be in the future at the decision time (slot 20).
	if boundary != 22 {
		t.Fatalf("boundary slot = %d, want 22", boundary)
	}
	cmds := r.controlFrames()
	if len(cmds) != 1 || cmds[0].Type != switchsim.CmdMigrateOnSlot {
		t.Fatalf("commands: %+v", cmds)
	}
	if cmds[0].RU != 0 || cmds[0].PHY != 2 || cmds[0].AbsSlot != boundary {
		t.Fatalf("migrate_on_slot: %+v", cmds[0])
	}
	if len(r.o.MigrationLog) != 1 || r.o.MigrationLog[0].Failover {
		t.Fatalf("migration log: %+v", r.o.MigrationLog)
	}
}

func TestMigrationSlotRouting(t *testing.T) {
	r := newL2Rig()
	r.e.At(10*sim.Millisecond, "migrate", func() { r.o.Migrate(0) }) // boundary slot 22
	// Requests for slot 21 (pre-boundary) go to old active (server 1);
	// slot 22+ to new active (server 2).
	r.e.At(10*sim.Millisecond+sim.Millisecond, "send", func() {
		r.o.FromL2(&fapi.ULConfig{CellID: 0, Slot: 21, PDUs: []fapi.PDU{{UEID: 1}}})
		r.o.FromL2(&fapi.ULConfig{CellID: 0, Slot: 22, PDUs: []fapi.PDU{{UEID: 1}}})
	})
	r.e.Run()
	var to1, to2 []uint64
	for _, m := range r.fapiFramesTo(1) {
		if ul, ok := m.(*fapi.ULConfig); ok && !ul.Null() {
			to1 = append(to1, ul.Slot)
		}
	}
	for _, m := range r.fapiFramesTo(2) {
		if ul, ok := m.(*fapi.ULConfig); ok && !ul.Null() {
			to2 = append(to2, ul.Slot)
		}
	}
	if len(to1) != 1 || to1[0] != 21 {
		t.Fatalf("old active got real slots %v, want [21]", to1)
	}
	if len(to2) != 1 || to2[0] != 22 {
		t.Fatalf("new active got real slots %v, want [22]", to2)
	}
}

func TestPipelinedResponsesFromOldPHYAccepted(t *testing.T) {
	r := newL2Rig()
	r.e.At(10*sim.Millisecond, "migrate", func() { r.o.Migrate(0) }) // boundary 22
	// Old PHY (server 1) still reports results for slot 21 after the
	// boundary; they must reach the L2 (Fig 7).
	crcOld := &fapi.CRCIndication{CellID: 0, Slot: 21, Results: []fapi.CRCResult{{UEID: 1, OK: true}}}
	crcNew := &fapi.CRCIndication{CellID: 0, Slot: 23, Results: []fapi.CRCResult{{UEID: 1, OK: true}}}
	r.e.At(12*sim.Millisecond, "resp", func() {
		r.o.HandleFrame(&netmodel.Frame{Src: netmodel.OrionAddr(1), Dst: r.o.Addr,
			Type: netmodel.EtherTypeFAPI, Payload: fapi.Encode(crcOld)})
		r.o.HandleFrame(&netmodel.Frame{Src: netmodel.OrionAddr(2), Dst: r.o.Addr,
			Type: netmodel.EtherTypeFAPI, Payload: fapi.Encode(crcNew)})
		// And the old PHY reporting for a post-boundary slot is dropped.
		r.o.HandleFrame(&netmodel.Frame{Src: netmodel.OrionAddr(1), Dst: r.o.Addr,
			Type: netmodel.EtherTypeFAPI, Payload: fapi.Encode(crcNew)})
	})
	r.e.Run()
	if len(r.toL2) != 2 {
		t.Fatalf("L2 received %d messages, want 2", len(r.toL2))
	}
	if r.o.Stats.RespDropped != 1 {
		t.Fatalf("RespDropped = %d", r.o.Stats.RespDropped)
	}
}

func TestFailureNotificationTriggersFailover(t *testing.T) {
	r := newL2Rig()
	notify := &switchsim.Command{Type: switchsim.CmdFailureNotify, PHY: 1}
	r.e.At(5*sim.Millisecond, "notify", func() {
		r.o.HandleFrame(&netmodel.Frame{
			Src: netmodel.ControllerAddr(), Dst: r.o.Addr,
			Type: netmodel.EtherTypeControl, Payload: notify.Encode(),
		})
	})
	r.e.Run()
	if r.o.ActiveServer(0) != 2 {
		t.Fatalf("active = %d after failover", r.o.ActiveServer(0))
	}
	if r.o.Stats.Failovers != 1 || r.o.Stats.NotifyRecv != 1 {
		t.Fatalf("stats: %+v", r.o.Stats)
	}
	cmds := r.controlFrames()
	if len(cmds) != 1 || cmds[0].PHY != 2 {
		t.Fatalf("fronthaul migration command: %+v", cmds)
	}
	if len(r.o.MigrationLog) != 1 || !r.o.MigrationLog[0].Failover {
		t.Fatal("failover not logged")
	}
}

func TestFailureOfStandbyDoesNotMigrate(t *testing.T) {
	r := newL2Rig()
	notify := &switchsim.Command{Type: switchsim.CmdFailureNotify, PHY: 2}
	r.e.At(5*sim.Millisecond, "notify", func() {
		r.o.HandleFrame(&netmodel.Frame{
			Src: netmodel.ControllerAddr(), Dst: r.o.Addr,
			Type: netmodel.EtherTypeControl, Payload: notify.Encode(),
		})
	})
	r.e.Run()
	if r.o.ActiveServer(0) != 1 {
		t.Fatal("standby failure migrated the active PHY")
	}
	if r.o.Stats.Migrations != 0 {
		t.Fatal("unexpected migration")
	}
}

func TestReplaceStandby(t *testing.T) {
	r := newL2Rig()
	r.e.At(0, "setup", func() {
		r.o.FromL2(&fapi.ConfigRequest{CellID: 0, Seed: 9})
		r.o.FromL2(&fapi.StartRequest{CellID: 0})
	})
	r.e.At(sim.Millisecond, "replace", func() { r.o.ReplaceStandby(0, 3) })
	r.e.Run()
	if r.o.StandbyServer(0) != 3 {
		t.Fatalf("standby = %d", r.o.StandbyServer(0))
	}
	ms := r.fapiFramesTo(3)
	if len(ms) != 2 || ms[0].Kind() != fapi.KindConfigRequest || ms[1].Kind() != fapi.KindStartRequest {
		t.Fatalf("spare got %v", ms)
	}
}

func TestPHYSideDeliveryAndGapFill(t *testing.T) {
	e := sim.NewEngine()
	o := New(e, DefaultConfig(1, RolePHYSide))
	o.SetL2Server(10)
	var toPHY []fapi.Message
	o.ToPHY = func(m fapi.Message) { toPHY = append(toPHY, m) }

	send := func(slot uint64) {
		ul := &fapi.ULConfig{CellID: 0, Slot: slot, PDUs: []fapi.PDU{{UEID: 1}}}
		o.HandleFrame(&netmodel.Frame{Src: netmodel.OrionAddr(10), Dst: o.Addr,
			Type: netmodel.EtherTypeFAPI, Payload: fapi.Encode(ul)})
	}
	e.At(0, "s1", func() { send(1) })
	// Slot 2's message is "lost"; slot 3 arrives and must trigger a null
	// injection for slot 2.
	e.At(sim.Millisecond, "s3", func() { send(3) })
	e.Run()

	if len(toPHY) != 3 {
		t.Fatalf("PHY received %d messages, want 3 (1, null-2, 3)", len(toPHY))
	}
	if toPHY[1].AbsSlot() != 2 || !toPHY[1].(*fapi.ULConfig).Null() {
		t.Fatalf("gap fill wrong: %+v", toPHY[1])
	}
	if o.Stats.GapFilled != 1 {
		t.Fatalf("GapFilled = %d", o.Stats.GapFilled)
	}
}

func TestPHYSideForwardsResponsesToL2Server(t *testing.T) {
	e := sim.NewEngine()
	o := New(e, DefaultConfig(1, RolePHYSide))
	o.SetL2Server(10)
	var frames []*netmodel.Frame
	o.SendFrame = func(f *netmodel.Frame) { frames = append(frames, f) }
	e.At(0, "resp", func() {
		o.FromPHY(&fapi.SlotIndication{CellID: 0, Slot: 4})
	})
	e.Run()
	if len(frames) != 1 || frames[0].Dst != netmodel.OrionAddr(10) {
		t.Fatalf("frames: %+v", frames)
	}
}

func TestProcessingQueueBuildsUp(t *testing.T) {
	e := sim.NewEngine()
	o := New(e, DefaultConfig(1, RolePHYSide))
	var deliveredAt []sim.Time
	o.ToPHY = func(m fapi.Message) { deliveredAt = append(deliveredAt, e.Now()) }
	ul := &fapi.ULConfig{CellID: 0, Slot: 1, PDUs: []fapi.PDU{{UEID: 1}}}
	wire := fapi.Encode(ul)
	e.At(0, "burst", func() {
		for i := 0; i < 5; i++ {
			o.HandleFrame(&netmodel.Frame{Src: netmodel.OrionAddr(10), Dst: o.Addr,
				Type: netmodel.EtherTypeFAPI, Payload: wire})
		}
	})
	e.Run()
	if len(deliveredAt) != 5 {
		t.Fatalf("delivered %d", len(deliveredAt))
	}
	for i := 1; i < 5; i++ {
		if deliveredAt[i] <= deliveredAt[i-1] {
			t.Fatal("queueing did not serialize deliveries")
		}
	}
	// Last delivery ~5 * BaseProc after the burst.
	if deliveredAt[4] < 5*o.Cfg.BaseProc {
		t.Fatalf("no queueing delay: last at %v", deliveredAt[4])
	}
}

func TestUnknownCellIgnored(t *testing.T) {
	r := newL2Rig()
	r.e.At(0, "send", func() {
		r.o.FromL2(&fapi.ULConfig{CellID: 99, Slot: 1})
	})
	r.e.Run()
	if len(r.frames) != 0 {
		t.Fatal("message for unknown cell forwarded")
	}
	if r.o.Migrate(99) != 0 {
		t.Fatal("Migrate of unknown cell returned a boundary")
	}
}

func TestCellsList(t *testing.T) {
	r := newL2Rig()
	if got := r.o.Cells(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Cells = %v", got)
	}
}

func TestMigrationRefusedToFailedStandby(t *testing.T) {
	r := newL2Rig()
	// The active PHY (server 1) fails; failover moves the cell to 2.
	notify := &switchsim.Command{Type: switchsim.CmdFailureNotify, PHY: 1}
	r.e.At(5*sim.Millisecond, "notify", func() {
		r.o.HandleFrame(&netmodel.Frame{
			Src: netmodel.ControllerAddr(), Dst: r.o.Addr,
			Type: netmodel.EtherTypeControl, Payload: notify.Encode(),
		})
	})
	r.e.Run()
	if r.o.ActiveServer(0) != 2 {
		t.Fatal("failover did not happen")
	}
	// Migrating back would target the dead server 1: refused.
	if got := r.o.Migrate(0); got != 0 {
		t.Fatalf("Migrate to dead standby returned boundary %d", got)
	}
	if r.o.ActiveServer(0) != 2 {
		t.Fatal("refused migration still flipped roles")
	}
	// After provisioning a spare, migration works again.
	r.o.FromL2(&fapi.ConfigRequest{CellID: 0, Seed: 9})
	r.e.Run()
	r.o.ReplaceStandby(0, 3)
	if got := r.o.Migrate(0); got == 0 {
		t.Fatal("migration refused despite fresh standby")
	}
	if r.o.ActiveServer(0) != 3 {
		t.Fatalf("active = %d after migrating to spare", r.o.ActiveServer(0))
	}
}

func TestDuplicateToStandbyAblation(t *testing.T) {
	r := newL2Rig()
	r.o.Cfg.DuplicateToStandby = true
	ul := &fapi.ULConfig{CellID: 0, Slot: 5, PDUs: []fapi.PDU{{UEID: 1}}}
	tx := &fapi.TxData{CellID: 0, Slot: 5, Payloads: []fapi.TBPayload{{UEID: 1, Data: []byte("x")}}}
	r.e.At(0, "send", func() { r.o.FromL2(ul); r.o.FromL2(tx) })
	r.e.Run()
	sec := r.fapiFramesTo(2)
	if len(sec) != 2 {
		t.Fatalf("standby got %d messages, want duplicated UL+TxData", len(sec))
	}
	if got := sec[0].(*fapi.ULConfig); got.Null() {
		t.Fatal("standby got a null instead of duplicated work")
	}
	if r.o.Stats.NullsSent != 0 {
		t.Fatal("nulls sent in duplicate mode")
	}
}
