// Package orion implements Orion, Slingshot's software middlebox between
// the L2 and the PHY (§6 of the paper). Orion interposes on the FAPI
// narrow waist: it transparently decouples an SHM-coupled L2 and PHY over
// the datacenter network, keeps a hot-standby secondary PHY alive with
// null FAPI requests, and executes PHY migration — switching which PHY
// receives real work and commanding the in-switch fronthaul middlebox to
// remap the RU at the same TTI boundary.
//
// An Orion process is either "L2-side" (paired with an L2 over SHM) or
// "PHY-side" (paired with a PHY). The inter-Orion transport is a lean
// stateless UDP-style exchange of encoded FAPI messages (§6.1): no
// connection state, no retransmission; a lost message for a slot is
// replaced with a null request at the receiver.
package orion

import (
	"sort"

	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/mem"
	"slingshot/internal/netmodel"
	"slingshot/internal/sim"
	"slingshot/internal/switchsim"
)

// Role distinguishes the two Orion pairings.
type Role uint8

// Orion roles.
const (
	RoleL2Side Role = iota
	RolePHYSide
)

// Config parameterizes an Orion process.
type Config struct {
	// ServerID is the server this Orion runs on; its address is
	// netmodel.OrionAddr(ServerID).
	ServerID uint8
	Role     Role
	// BaseProc is the fixed per-message processing cost (parse, FAPI
	// transform, enqueue) of the busy-polling DPDK loop.
	BaseProc sim.Time
	// PerKB is the additional copy cost per kilobyte of message body.
	PerKB sim.Time
	// MigrationLead is how many slots in the future migrations are
	// scheduled when triggered (must outrun the in-flight command).
	MigrationLead uint64
	// JitterProb/JitterMax model rare scheduling hiccups of the busy-poll
	// core (Orion is a plain userspace process, §8.7): with probability
	// JitterProb a message takes up to JitterMax extra service time.
	JitterProb float64
	JitterMax  sim.Time
	// DuplicateToStandby sends the standby real work instead of null
	// requests — the naïve hot-standby design §6.2 argues against.
	// Exists for the ablation experiment; responses from the standby are
	// still filtered, so correctness is unaffected, only cost.
	DuplicateToStandby bool
}

// DefaultConfig returns an Orion configuration matching the paper's
// unoptimized implementation (§8.7).
func DefaultConfig(server uint8, role Role) Config {
	return Config{
		ServerID:      server,
		Role:          role,
		BaseProc:      3 * sim.Microsecond,
		PerKB:         60 * sim.Nanosecond,
		MigrationLead: 2,
		JitterProb:    0.0005,
		JitterMax:     100 * sim.Microsecond,
	}
}

// cellState is the L2-side Orion's per-cell migration state.
type cellState struct {
	id        uint16
	primary   uint8 // server id running the primary PHY
	secondary uint8
	// activePrimary: real FAPI goes to primary; else to secondary.
	activePrimary bool
	// switchFromSlot: messages for slots >= switchFromSlot route to the
	// new active after a migration. The previously-active PHY's
	// in-pipeline responses for earlier slots are still accepted (Fig 7).
	switchFromSlot uint64
	storedInit     *fapi.ConfigRequest
	started        bool
	migrations     int
}

// MigrationEvent records one completed migration initiation for metrics.
type MigrationEvent struct {
	Cell     uint16
	At       sim.Time
	AtSlot   uint64
	ToServer uint8
	Failover bool
}

// Stats counts Orion activity.
type Stats struct {
	FromL2      uint64
	FromPHY     uint64
	NetIn       uint64
	NetOut      uint64
	NullsSent   uint64
	RespDropped uint64 // standby responses filtered (§6.2, Fig 6)
	GapFilled   uint64 // null configs injected for lost messages
	Migrations  uint64
	Failovers   uint64
	NotifyRecv  uint64
	BytesNetOut uint64
}

// Orion is one middlebox process.
type Orion struct {
	Cfg    Config
	Engine *sim.Engine
	Addr   netmodel.Addr
	Stats  Stats

	// SendFrame transmits towards the switch.
	SendFrame func(*netmodel.Frame)

	// SHM peers. L2-side: ToL2 delivers PHY responses to the local L2.
	// PHY-side: ToPHY delivers L2 requests to the local PHY.
	ToL2  func(fapi.Message)
	ToPHY func(fapi.Message)

	// OnMigration observes migrations (L2-side only).
	OnMigration func(MigrationEvent)

	// L2-side state.
	cells map[uint16]*cellState
	// l2Server is where the L2-side Orion lives, so PHY-side Orions know
	// where to send responses; set via SetL2Server on PHY-side instances.
	l2Server uint8
	// failedServers remembers servers the switch reported dead, so a
	// planned migration never targets a known-failed standby.
	failedServers map[uint8]bool

	// Processing queue model: messages are handled sequentially by the
	// busy-polling core.
	busyUntil sim.Time
	rng       *sim.RNG

	// CurrentSlot tracks the slot clock implicitly from traffic.
	lastSeenSlot uint64
	// PHY-side gap-fill state: last slot for which configs were delivered.
	lastDeliveredUL map[uint16]uint64
	lastDeliveredDL map[uint16]uint64

	// Long-lived event callbacks for the pooled scheduler: the hot per-
	// message paths ride the engine's event free list with these closures,
	// so deferring a message costs no allocation.
	routeFromL2Fn func(any)
	sendToL2Fn    func(any)
	netInFn       func(any)

	MigrationLog []MigrationEvent
}

// netIn carries one decoded inter-Orion message through the processing-
// queue delay; pooled because every networked FAPI message passes here.
type netIn struct {
	m   fapi.Message
	src netmodel.Addr
}

var netInPool = mem.NewPool[netIn](func(n *netIn) { *n = netIn{} })

// New creates an Orion process.
func New(e *sim.Engine, cfg Config) *Orion {
	if cfg.BaseProc == 0 {
		cfg.BaseProc = 3 * sim.Microsecond
	}
	if cfg.MigrationLead == 0 {
		cfg.MigrationLead = 2
	}
	o := &Orion{
		Cfg:             cfg,
		Engine:          e,
		Addr:            netmodel.OrionAddr(cfg.ServerID),
		cells:           make(map[uint16]*cellState),
		lastDeliveredUL: make(map[uint16]uint64),
		lastDeliveredDL: make(map[uint16]uint64),
		failedServers:   make(map[uint8]bool),
		rng:             sim.NewRNG(0x0910 + uint64(cfg.ServerID)),
	}
	o.routeFromL2Fn = func(a any) { o.routeFromL2(a.(fapi.Message)) }
	o.sendToL2Fn = func(a any) {
		m := a.(fapi.Message)
		o.netSend(o.l2Server, m)
		// FromPHY messages transfer ownership: the PHY builds them fresh
		// per slot and never touches them again, so once encoded they are
		// recycled wholesale.
		fapi.ReleaseDeep(m)
	}
	o.netInFn = func(a any) {
		n := a.(*netIn)
		m, src := n.m, n.src
		netInPool.Put(n)
		o.routeFromNet(m, src)
	}
	return o
}

// SetL2Server tells a PHY-side Orion which server hosts the L2-side Orion.
func (o *Orion) SetL2Server(server uint8) { o.l2Server = server }

// AddCell registers a cell with its primary and secondary PHY servers
// (cluster configuration from Orion's management thread, §6.3).
func (o *Orion) AddCell(cell uint16, primaryServer, secondaryServer uint8) {
	o.cells[cell] = &cellState{
		id: cell, primary: primaryServer, secondary: secondaryServer,
		activePrimary: true,
	}
}

// ActiveServer returns the server currently receiving real FAPI for cell.
func (o *Orion) ActiveServer(cell uint16) uint8 {
	c := o.cells[cell]
	if c == nil {
		return 0
	}
	if c.activePrimary {
		return c.primary
	}
	return c.secondary
}

// StandbyServer returns the hot-standby server for cell.
func (o *Orion) StandbyServer(cell uint16) uint8 {
	c := o.cells[cell]
	if c == nil {
		return 0
	}
	if c.activePrimary {
		return c.secondary
	}
	return c.primary
}

// procDelay models the sequential busy-polling core: queueing plus
// per-message service time.
func (o *Orion) procDelay(bytes int) sim.Time {
	now := o.Engine.Now()
	service := o.Cfg.BaseProc + o.Cfg.PerKB*sim.Time(bytes/1024)
	if o.Cfg.JitterProb > 0 && o.rng != nil && o.rng.Bool(o.Cfg.JitterProb) {
		service += sim.Time(o.rng.Float64() * float64(o.Cfg.JitterMax))
	}
	start := now
	if o.busyUntil > start {
		start = o.busyUntil
	}
	o.busyUntil = start + service
	return o.busyUntil - now
}

// after schedules fn after the processing-queue delay for a message of the
// given size.
func (o *Orion) after(bytes int, name string, fn func()) {
	o.Engine.After(o.procDelay(bytes), name, fn)
}

// netSend ships an encoded FAPI message to another Orion. The wire buffer
// is leased; the receiving Orion recycles it after decoding (the switch
// forwards each FAPI frame to exactly one egress, so the payload has one
// consumer).
func (o *Orion) netSend(dstServer uint8, m fapi.Message) {
	if o.SendFrame == nil {
		return
	}
	payload := fapi.EncodePooled(m)
	o.Stats.NetOut++
	o.Stats.BytesNetOut += uint64(len(payload))
	f := netmodel.GetFrame()
	f.Src = o.Addr
	f.Dst = netmodel.OrionAddr(dstServer)
	f.Type = netmodel.EtherTypeFAPI
	f.Payload = payload
	o.SendFrame(f)
}

// FromL2 is the SHM entry point: the co-located L2 "connects to the PHY"
// but actually talks to us (§6.1). The message's wire size prices the
// processing delay without encoding it (encoding happens once, in
// netSend).
func (o *Orion) FromL2(m fapi.Message) {
	o.Stats.FromL2++
	size := fapi.EncodedSize(m)
	o.Engine.AfterArgPooled(o.procDelay(size), "orion.from-l2", o.routeFromL2Fn, m)
}

func (o *Orion) routeFromL2(m fapi.Message) {
	c := o.cells[m.Cell()]
	if c == nil {
		return
	}
	if s := m.AbsSlot(); s > o.lastSeenSlot {
		o.lastSeenSlot = s
	}
	switch msg := m.(type) {
	case *fapi.ConfigRequest:
		// Intercept and duplicate: provision both the primary and the
		// secondary PHY (§6.3).
		stored := *msg
		c.storedInit = &stored
		o.netSend(c.primary, msg)
		o.netSend(c.secondary, msg)
	case *fapi.StartRequest:
		c.started = true
		o.netSend(c.primary, msg)
		o.netSend(c.secondary, msg)
	case *fapi.StopRequest:
		c.started = false
		o.netSend(c.primary, msg)
		o.netSend(c.secondary, msg)
	case *fapi.ULConfig:
		o.netSend(o.serverForSlot(c, msg.Slot), msg)
		if o.Cfg.DuplicateToStandby {
			o.netSend(o.standbyForSlot(c, msg.Slot), msg)
		} else {
			o.sendNull(c, msg.Slot, true)
		}
	case *fapi.DLConfig:
		o.netSend(o.serverForSlot(c, msg.Slot), msg)
		if o.Cfg.DuplicateToStandby {
			o.netSend(o.standbyForSlot(c, msg.Slot), msg)
		} else {
			o.sendNull(c, msg.Slot, false)
		}
	case *fapi.TxData:
		// Payload goes only to the active PHY; the standby does no work
		// (unless the duplicate-work ablation is enabled).
		o.netSend(o.serverForSlot(c, msg.Slot), msg)
		if o.Cfg.DuplicateToStandby {
			o.netSend(o.standbyForSlot(c, msg.Slot), msg)
		}
	default:
		o.netSend(o.activeServer(c), m)
	}
	// The message is fully encoded onto the wire now. Recycle the struct
	// and its element slices — but not TBPayload.Data, which may alias
	// storage the L2 still owns (the HARQ retransmission copy).
	fapi.ReleaseShallow(m)
}

// serverForSlot routes a slot-bearing request: slots before the migration
// boundary still belong to the previously active PHY.
func (o *Orion) serverForSlot(c *cellState, slot uint64) uint8 {
	if slot >= c.switchFromSlot {
		return o.activeServer(c)
	}
	return o.standbyServer(c)
}

func (o *Orion) activeServer(c *cellState) uint8 {
	if c.activePrimary {
		return c.primary
	}
	return c.secondary
}

// standbyForSlot mirrors serverForSlot for the non-serving PHY.
func (o *Orion) standbyForSlot(c *cellState, slot uint64) uint8 {
	if slot >= c.switchFromSlot {
		return o.standbyServer(c)
	}
	return o.activeServer(c)
}

func (o *Orion) standbyServer(c *cellState) uint8 {
	if c.activePrimary {
		return c.secondary
	}
	return c.primary
}

// sendNull ships the standby's null request for the slot (§6.2).
func (o *Orion) sendNull(c *cellState, slot uint64, uplink bool) {
	standby := c.secondary
	if !c.activePrimary {
		standby = c.primary
	}
	if slot < c.switchFromSlot {
		// Mid-swap: the "standby" for old slots is the new active; don't
		// confuse it with nulls for slots it will process for real.
		return
	}
	var m fapi.Message
	if uplink {
		m = fapi.GetULConfig(c.id, slot)
	} else {
		m = fapi.GetDLConfig(c.id, slot)
	}
	o.Stats.NullsSent++
	o.netSend(standby, m)
	fapi.ReleaseShallow(m)
}

// FromPHY is the SHM entry point on the PHY side: the co-located PHY's
// FAPI output. The message is encoded once (in netSend) and then
// recycled — the PHY hands over ownership.
func (o *Orion) FromPHY(m fapi.Message) {
	o.Stats.FromPHY++
	size := fapi.EncodedSize(m)
	o.Engine.AfterArgPooled(o.procDelay(size), "orion.from-phy", o.sendToL2Fn, m)
}

// HandleFrame receives network traffic: inter-Orion FAPI and switch
// control notifications. Orion is the frame's terminal consumer — decode
// copies everything out, so the frame (and, for control traffic, its
// payload; the FAPI path recycles its own) is released on return.
func (o *Orion) HandleFrame(f *netmodel.Frame) {
	o.handleFrame(f)
	netmodel.ReleaseFrame(f)
}

func (o *Orion) handleFrame(f *netmodel.Frame) {
	switch f.Type {
	case netmodel.EtherTypeFAPI:
		m, err := fapi.Decode(f.Payload)
		size := len(f.Payload)
		// Decode copied everything out of the wire bytes; the switch
		// forwarded this frame to us alone, so the payload is ours to
		// recycle.
		mem.PutBytes(f.Payload)
		f.Payload = nil
		if err != nil {
			return
		}
		o.Stats.NetIn++
		n := netInPool.Get()
		n.m, n.src = m, f.Src
		o.Engine.AfterArgPooled(o.procDelay(size), "orion.net-in", o.netInFn, n)
	case netmodel.EtherTypeControl:
		cmd, err := switchsim.DecodeCommand(f.Payload)
		if err != nil || cmd.Type != switchsim.CmdFailureNotify {
			return
		}
		o.Stats.NotifyRecv++
		o.after(64, "orion.notify", func() { o.handleFailure(cmd.PHY) })
	}
}

func (o *Orion) routeFromNet(m fapi.Message, src netmodel.Addr) {
	if o.Cfg.Role == RolePHYSide {
		o.deliverToPHY(m)
		return
	}
	o.deliverToL2(m, src)
}

// deliverToPHY hands an L2 request to the co-located PHY, gap-filling
// missing slots with nulls so a lost message cannot starve the PHY (§6.1).
func (o *Orion) deliverToPHY(m fapi.Message) {
	if o.ToPHY == nil {
		return
	}
	switch msg := m.(type) {
	case *fapi.ULConfig:
		o.fillGap(msg.CellID, msg.Slot, o.lastDeliveredUL, true)
		o.lastDeliveredUL[msg.CellID] = msg.Slot
	case *fapi.DLConfig:
		o.fillGap(msg.CellID, msg.Slot, o.lastDeliveredDL, false)
		o.lastDeliveredDL[msg.CellID] = msg.Slot
	}
	o.ToPHY(m)
}

func (o *Orion) fillGap(cell uint16, slot uint64, last map[uint16]uint64, uplink bool) {
	prev, seen := last[cell]
	if !seen || slot <= prev+1 {
		return
	}
	for s := prev + 1; s < slot && s < prev+8; s++ {
		// Ownership of the null config transfers to the PHY with the
		// delivery (it retains configs until its slot GC), so no release
		// here.
		var m fapi.Message
		if uplink {
			m = fapi.GetULConfig(cell, s)
		} else {
			m = fapi.GetDLConfig(cell, s)
		}
		o.Stats.GapFilled++
		o.ToPHY(m)
	}
}

// deliverToL2 forwards PHY responses from the currently relevant PHY and
// drops the standby's (Fig 6). Responses from the old active for
// pre-migration slots are still accepted (pipelined slot processing,
// Fig 7).
func (o *Orion) deliverToL2(m fapi.Message, src netmodel.Addr) {
	// Every message here came from Decode and is owned by this Orion. The
	// L2's handlers copy whatever they keep (RLC ingest copies SDU bytes),
	// so the message is recycled wholesale once delivery — or the standby
	// filter — is done with it.
	defer fapi.ReleaseDeep(m)
	c := o.cells[m.Cell()]
	if c == nil || o.ToL2 == nil {
		return
	}
	srcServer, ok := serverOfOrionAddr(src)
	if !ok {
		return
	}
	expected := o.serverForSlot(c, m.AbsSlot())
	if _, isSlotless := m.(*fapi.ConfigResponse); isSlotless {
		// Config responses: accept the active PHY's only.
		expected = o.activeServer(c)
	}
	if srcServer != expected {
		o.Stats.RespDropped++
		return
	}
	o.ToL2(m)
}

// serverOfOrionAddr inverts netmodel.OrionAddr.
func serverOfOrionAddr(a netmodel.Addr) (uint8, bool) {
	base := netmodel.OrionAddr(0)
	if a >= base && a < base+256 {
		return uint8(a - base), true
	}
	return 0, false
}

// Migrate performs a planned migration of cell's PHY processing to the
// current standby at a TTI boundary MigrationLead slots in the future
// (§6.3). It returns the boundary slot.
func (o *Orion) Migrate(cell uint16) uint64 {
	return o.migrate(cell, false)
}

func (o *Orion) migrate(cell uint16, failover bool) uint64 {
	c := o.cells[cell]
	if c == nil {
		return 0
	}
	if o.failedServers[o.standbyServer(c)] {
		// The standby is known-dead: migrating would lose the cell. A
		// spare must be provisioned first (ReplaceStandby).
		return 0
	}
	boundary := o.currentSlot() + o.Cfg.MigrationLead
	target := o.standbyServer(c)
	c.activePrimary = !c.activePrimary
	c.switchFromSlot = boundary
	c.migrations++
	o.Stats.Migrations++
	if failover {
		o.Stats.Failovers++
	}

	// Trigger fronthaul migration: migrate_on_slot to the switch (§5.1).
	// RU id and PHY id are the operator-assigned logical ids.
	cmd := &switchsim.Command{
		Type:    switchsim.CmdMigrateOnSlot,
		RU:      uint8(cell),
		PHY:     target,
		Slot:    fronthaul.SlotFromCounter(boundary),
		AbsSlot: boundary,
	}
	if o.SendFrame != nil {
		f := netmodel.GetFrame()
		f.Src = o.Addr
		f.Dst = netmodel.ControllerAddr()
		f.Type = netmodel.EtherTypeControl
		f.Payload = cmd.Encode()
		o.SendFrame(f)
	}
	ev := MigrationEvent{
		Cell: cell, At: o.Engine.Now(), AtSlot: boundary,
		ToServer: target, Failover: failover,
	}
	o.MigrationLog = append(o.MigrationLog, ev)
	if o.OnMigration != nil {
		o.OnMigration(ev)
	}
	return boundary
}

// handleFailure reacts to an in-switch failure notification: migrate every
// cell whose active PHY ran on the failed server. Cells are visited in id
// order so multi-cell failovers replay identically for a given seed.
func (o *Orion) handleFailure(phyServer uint8) {
	o.failedServers[phyServer] = true
	for _, id := range o.Cells() {
		c := o.cells[id]
		if o.activeServer(c) == phyServer {
			o.migrate(c.id, true)
		}
	}
}

// currentSlot estimates the current absolute slot from the engine clock.
func (o *Orion) currentSlot() uint64 {
	const tti = 500 * sim.Microsecond
	return uint64(o.Engine.Now() / tti)
}

// StoredInit returns the duplicated CONFIG.request for a cell, used to
// provision replacement secondaries after a failover (§6.3).
func (o *Orion) StoredInit(cell uint16) *fapi.ConfigRequest {
	c := o.cells[cell]
	if c == nil {
		return nil
	}
	return c.storedInit
}

// ReplaceStandby points the cell's standby at a new server and provisions
// it from the stored init request (used after failover when a spare server
// is available).
func (o *Orion) ReplaceStandby(cell uint16, server uint8) {
	c := o.cells[cell]
	if c == nil {
		return
	}
	if c.activePrimary {
		c.secondary = server
	} else {
		c.primary = server
	}
	delete(o.failedServers, server)
	if c.storedInit != nil {
		o.netSend(server, c.storedInit)
		if c.started {
			o.netSend(server, &fapi.StartRequest{CellID: cell})
		}
	}
}

// Cells returns the ids of registered cells in sorted order.
func (o *Orion) Cells() []uint16 {
	out := make([]uint16, 0, len(o.cells))
	for id := range o.cells {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
