package orion

import (
	"sort"

	"slingshot/internal/ckpt/wire"
)

// SnapshotTo writes the Orion's full routing state: counters, the busy-
// polling queue horizon, RNG point, per-cell primary/secondary routing in
// sorted order, known-failed servers, and the PHY-side gap-fill cursors.
func (o *Orion) SnapshotTo(w *wire.W) {
	s := &o.Stats
	w.U64(s.FromL2)
	w.U64(s.FromPHY)
	w.U64(s.NetIn)
	w.U64(s.NetOut)
	w.U64(s.NullsSent)
	w.U64(s.RespDropped)
	w.U64(s.GapFilled)
	w.U64(s.Migrations)
	w.U64(s.Failovers)
	w.U64(s.NotifyRecv)
	w.U64(s.BytesNetOut)
	w.I64(int64(o.busyUntil))
	w.U64(o.lastSeenSlot)
	w.U8(o.l2Server)
	for _, v := range o.rng.State() {
		w.U64(v)
	}

	cells := make([]int, 0, len(o.cells))
	for id := range o.cells {
		cells = append(cells, int(id))
	}
	sort.Ints(cells)
	w.U32(uint32(len(cells)))
	for _, id := range cells {
		c := o.cells[uint16(id)]
		w.U16(uint16(id))
		w.U8(c.primary)
		w.U8(c.secondary)
		w.Bool(c.activePrimary)
		w.U64(c.switchFromSlot)
		w.Bool(c.storedInit != nil)
		w.Bool(c.started)
		w.U32(uint32(c.migrations))
	}

	failed := make([]int, 0, len(o.failedServers))
	for id, dead := range o.failedServers {
		if dead {
			failed = append(failed, int(id))
		}
	}
	sort.Ints(failed)
	w.U32(uint32(len(failed)))
	for _, id := range failed {
		w.U8(uint8(id))
	}

	snapCursor(w, o.lastDeliveredUL)
	snapCursor(w, o.lastDeliveredDL)
	w.U32(uint32(len(o.MigrationLog)))
	for _, m := range o.MigrationLog {
		w.U16(m.Cell)
		w.I64(int64(m.At))
		w.U64(m.AtSlot)
		w.U8(m.ToServer)
		w.Bool(m.Failover)
	}
}

func snapCursor(w *wire.W, m map[uint16]uint64) {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U16(uint16(id))
		w.U64(m[uint16(id)])
	}
}
