package mem

import "testing"

func TestClassRoundTrip(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 1024, 4096, 354_000, 1 << 22} {
		c := classFor(n)
		if c < 0 {
			t.Fatalf("classFor(%d) out of range", n)
		}
		size := 1 << (minClassShift + c)
		if size < n {
			t.Fatalf("classFor(%d)=%d → capacity %d too small", n, c, size)
		}
		if classUnder(size) != c {
			t.Fatalf("classUnder(%d)=%d, want %d", size, classUnder(size), c)
		}
	}
	if classFor(1<<22+1) != -1 {
		t.Fatal("oversized request must not be pooled")
	}
	if classUnder(63) != -1 {
		t.Fatal("undersized buffer must be dropped, not pooled")
	}
}

func TestBytesRecycle(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	b := GetBytes(100)
	if len(b) != 100 || cap(b) < 100 {
		t.Fatalf("GetBytes(100): len=%d cap=%d", len(b), cap(b))
	}
	PutBytes(b)
	c := GetBytes(80)
	if cap(c) != 128 {
		t.Fatalf("expected recycled 128-cap buffer, got cap=%d", cap(c))
	}
}

func TestDisabledIsPlainAlloc(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	b := GetBytes(100)
	PutBytes(b) // must be a no-op, not a recycle
	c := GetBytesCap(100)
	if len(c) != 0 || cap(c) < 100 {
		t.Fatalf("GetBytesCap off-mode: len=%d cap=%d", len(c), cap(c))
	}
}

func TestTypedPool(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	type thing struct{ n int }
	p := NewPool[thing](func(v *thing) { v.n = 0 })
	v := p.Get()
	v.n = 7
	p.Put(v)
	w := p.Get()
	if w.n != 0 {
		t.Fatalf("Reset not applied: n=%d", w.n)
	}
}

func TestArenaReleaseAll(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	var a Arena
	a.Bytes(100)
	a.Complex(10)
	a.Floats(10)
	if a.Outstanding() != 3 {
		t.Fatalf("Outstanding=%d want 3", a.Outstanding())
	}
	a.ReleaseAll()
	if a.Outstanding() != 0 {
		t.Fatalf("Outstanding after release=%d want 0", a.Outstanding())
	}
}

func TestDoubleFreePanicsUnderDetector(t *testing.T) {
	if !detectorOn() {
		t.Skip("detector not armed (needs -race or SLINGSHOT_POOL=debug)")
	}
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	b := GetBytes(256)
	PutBytes(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	PutBytes(b)
}

func TestAllocsSteadyState(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	if detectorOn() {
		t.Skip("detector maps allocate")
	}
	n := testing.AllocsPerRun(100, func() {
		b := GetBytes(512)
		PutBytes(b)
	})
	if n > 0 {
		t.Fatalf("Get/Put cycle allocates %v/op, want 0", n)
	}
}
