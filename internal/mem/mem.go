// Package mem is the slot-scoped buffer-pooling layer under the TTI
// pipeline's hot paths. The end-to-end experiments churn hundreds of
// megabytes per simulated second through short-lived staging buffers —
// fronthaul payloads, FAPI wire encodings, LLR vectors, IQ grids, SDU
// staging — whose lifetimes all end at a well-defined pipeline point
// (packet serialized, message encoded, slot drained). This package gives
// those paths size-classed free lists for []byte / []complex128 /
// []float64, typed free lists for structs, and a slot-scoped Arena whose
// leases are recycled in one call at pipeline drain.
//
// Lifetime rules (see DESIGN.md §10 "Memory model"):
//
//   - A leased buffer is owned by exactly one component at a time; Put
//     transfers it back to the pool and the contents become invalid.
//   - Recycling happens only on the event-loop goroutine or at an
//     existing parallel-phase barrier, so pooling can never reorder the
//     deterministic schedule. Workers may Get/Put worker-local staging
//     (the pools are concurrency-safe) but must never recycle a buffer
//     another goroutine still reads.
//   - Losing a buffer (crash paths, dropped frames) is always safe: the
//     GC reclaims it; pools are an optimization, never a correctness
//     requirement.
//
// The SLINGSHOT_POOL=off environment variable (or SetEnabled(false))
// disables recycling entirely: Get* degrade to plain make and Put* to
// no-ops, which is the reference behavior determinism tests compare
// against. SLINGSHOT_POOL=debug (or any -race build) arms a
// double-free/leak detector.
package mem

import (
	"os"
	"sync"
	"sync/atomic"
)

var enabled atomic.Bool

func init() {
	on := true
	switch os.Getenv("SLINGSHOT_POOL") {
	case "off", "0", "false":
		on = false
	case "debug":
		debugDetector = true
	}
	enabled.Store(on)
}

// Enabled reports whether pooling is active.
func Enabled() bool { return enabled.Load() }

// SetEnabled toggles pooling at runtime (determinism tests compare a
// pooled run against a pooling-off run in one process) and returns the
// previous setting. Buffers already leased remain valid either way.
func SetEnabled(on bool) (prev bool) {
	return enabled.Swap(on)
}

// Size classes are powers of two; larger requests fall through to plain
// allocation (they are rare and pooling them would pin large memory).
const (
	minClassShift = 6  // 64
	maxClassShift = 22 // 4 MiB — covers the largest FAPI payload at 3.4 Gbps
	numClasses    = maxClassShift - minClassShift + 1
)

// classFor returns the smallest class index whose capacity holds n, or -1
// when n is out of pooling range.
func classFor(n int) int {
	if n > 1<<maxClassShift {
		return -1
	}
	c := 0
	for s := minClassShift; s < maxClassShift && 1<<s < n; s++ {
		c++
	}
	return c
}

// classUnder returns the largest class index whose capacity is ≤ c, or -1
// when c is below the smallest class (the buffer is not worth keeping).
func classUnder(c int) int {
	if c < 1<<minClassShift {
		return -1
	}
	k := numClasses - 1
	for s := maxClassShift; s > minClassShift && 1<<s > c; s-- {
		k--
	}
	return k
}

// bufStack is one size class's free list. A mutex-guarded stack (rather
// than sync.Pool) keeps the slice header by value, so a Get/Put cycle is
// zero-alloc at steady state — sync.Pool would box the header on every
// Put. Contention is negligible: recycling happens on the event-loop
// goroutine or at phase barriers.
type bufStack[T any] struct {
	mu   sync.Mutex
	free [][]T
}

func (s *bufStack[T]) get() []T {
	s.mu.Lock()
	n := len(s.free)
	if n == 0 {
		s.mu.Unlock()
		return nil
	}
	b := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	s.mu.Unlock()
	return b
}

func (s *bufStack[T]) put(b []T) {
	s.mu.Lock()
	s.free = append(s.free, b)
	s.mu.Unlock()
}

var (
	bytePools    [numClasses]bufStack[byte]
	complexPools [numClasses]bufStack[complex128]
	floatPools   [numClasses]bufStack[float64]
)

// GetBytes leases a []byte of length n (arbitrary contents — the caller
// must fully overwrite the bytes it reads back).
func GetBytes(n int) []byte {
	return GetBytesCap(n)[:n]
}

// GetBytesCap leases a zero-length []byte with capacity ≥ n, for
// append-style fills.
func GetBytesCap(n int) []byte {
	if Enabled() {
		if c := classFor(n); c >= 0 {
			if v := bytePools[c].get(); v != nil {
				detectorLease(v)
				return v[:0]
			}
			b := make([]byte, 0, 1<<(minClassShift+c))
			detectorLease(b)
			return b
		}
	}
	return make([]byte, 0, n)
}

// PutBytes recycles a leased buffer. Safe on nil and on buffers that were
// never pooled (they are filed by capacity class, or dropped when too
// small). The caller must not touch b afterwards.
func PutBytes(b []byte) {
	if !Enabled() || b == nil {
		return
	}
	c := classUnder(cap(b))
	if c < 0 {
		return
	}
	b = b[:0]
	detectorPut(b)
	bytePools[c].put(b)
}

// GetComplex leases a []complex128 of length n (arbitrary contents).
func GetComplex(n int) []complex128 { return GetComplexCap(n)[:n] }

// GetComplexCap leases a zero-length []complex128 with capacity ≥ n.
func GetComplexCap(n int) []complex128 {
	if Enabled() {
		if c := classFor(n); c >= 0 {
			if v := complexPools[c].get(); v != nil {
				return v[:0]
			}
			return make([]complex128, 0, 1<<(minClassShift+c))
		}
	}
	return make([]complex128, 0, n)
}

// PutComplex recycles a leased IQ buffer.
func PutComplex(b []complex128) {
	if !Enabled() || b == nil {
		return
	}
	c := classUnder(cap(b))
	if c < 0 {
		return
	}
	complexPools[c].put(b[:0])
}

// GetFloats leases a []float64 of length n (arbitrary contents).
func GetFloats(n int) []float64 { return GetFloatsCap(n)[:n] }

// GetFloatsCap leases a zero-length []float64 with capacity ≥ n.
func GetFloatsCap(n int) []float64 {
	if Enabled() {
		if c := classFor(n); c >= 0 {
			if v := floatPools[c].get(); v != nil {
				return v[:0]
			}
			return make([]float64, 0, 1<<(minClassShift+c))
		}
	}
	return make([]float64, 0, n)
}

// PutFloats recycles a leased LLR/sample buffer.
func PutFloats(b []float64) {
	if !Enabled() || b == nil {
		return
	}
	c := classUnder(cap(b))
	if c < 0 {
		return
	}
	floatPools[c].put(b[:0])
}

// Pool is a typed free list for struct staging (fronthaul packets, FAPI
// messages, prepared-block staging). When pooling is disabled it degrades
// to plain allocation.
type Pool[T any] struct {
	p sync.Pool
	// Reset, when set, clears a recycled value before reuse (Put calls it,
	// so secrets/slices never linger in the pool).
	Reset func(*T)
}

// NewPool creates a typed pool. reset may be nil.
func NewPool[T any](reset func(*T)) *Pool[T] {
	return &Pool[T]{Reset: reset}
}

// Get leases a value (zero value on a pool miss or with pooling off).
func (p *Pool[T]) Get() *T {
	if Enabled() {
		if v, ok := p.p.Get().(*T); ok {
			return v
		}
	}
	return new(T)
}

// Put recycles a value. No-op with pooling off.
func (p *Pool[T]) Put(v *T) {
	if v == nil || !Enabled() {
		return
	}
	if p.Reset != nil {
		p.Reset(v)
	}
	p.p.Put(v)
}

// Arena is a slot-scoped lease ledger: buffers leased through it during
// one slot's processing are recycled together by a single ReleaseAll at
// pipeline drain. Not safe for concurrent use — an Arena belongs to the
// event-loop goroutine (or one worker's private staging).
type Arena struct {
	bytes   [][]byte
	complex [][]complex128
	floats  [][]float64
}

// Bytes leases a []byte of length n, tracked for ReleaseAll.
func (a *Arena) Bytes(n int) []byte {
	b := GetBytes(n)
	a.bytes = append(a.bytes, b)
	return b
}

// AppendTrack records an externally leased buffer (e.g. one grown by
// append past its original capacity) so ReleaseAll recycles the final
// backing array instead of the stale original.
func (a *Arena) AppendTrack(b []byte) {
	a.bytes = append(a.bytes, b)
}

// Complex leases a []complex128 of length n, tracked for ReleaseAll.
func (a *Arena) Complex(n int) []complex128 {
	b := GetComplex(n)
	a.complex = append(a.complex, b)
	return b
}

// Floats leases a []float64 of length n, tracked for ReleaseAll.
func (a *Arena) Floats(n int) []float64 {
	b := GetFloats(n)
	a.floats = append(a.floats, b)
	return b
}

// ReleaseAll recycles every outstanding lease and empties the ledger. The
// Arena itself is reusable for the next slot.
func (a *Arena) ReleaseAll() {
	for i, b := range a.bytes {
		PutBytes(b)
		a.bytes[i] = nil
	}
	a.bytes = a.bytes[:0]
	for i, b := range a.complex {
		PutComplex(b)
		a.complex[i] = nil
	}
	a.complex = a.complex[:0]
	for i, b := range a.floats {
		PutFloats(b)
		a.floats[i] = nil
	}
	a.floats = a.floats[:0]
}

// Outstanding reports the number of tracked leases (test hook).
func (a *Arena) Outstanding() int {
	return len(a.bytes) + len(a.complex) + len(a.floats)
}
