//go:build race

package mem

func init() { raceEnabled = true }
