package mem

import (
	"fmt"
	"sync"
	"unsafe"
)

// Double-free / leak detector for the []byte pools (the pools every wire
// path leases from). Armed automatically in -race builds and by
// SLINGSHOT_POOL=debug; off otherwise so the hot path stays two atomic
// loads. It tracks backing-array pointers:
//
//   - pooled: buffers currently resting in a pool. PutBytes on a pointer
//     already here is a double free → panic with both call sites' sizes.
//   - leased (debug mode only): buffers currently leased out. LeakedLeases
//     reports the count so tests can assert a slot drained fully. Not
//     maintained in plain -race builds — intentional lose-to-GC paths
//     (dropped frames) would grow it without bound across a full test run.
var (
	raceEnabled   bool // set by detector_race.go in -race builds
	debugDetector bool // set from SLINGSHOT_POOL=debug

	detMu     sync.Mutex
	detPooled map[*byte]struct{}
	detLeased map[*byte]struct{}
)

func detectorOn() bool { return raceEnabled || debugDetector }

// DetectorArmed reports whether lease tracking is active (-race build or
// SLINGSHOT_POOL=debug). Allocation-count tests skip when it is: the
// detector's bookkeeping allocates, which is the point of debug mode and
// the ruin of testing.AllocsPerRun.
func DetectorArmed() bool { return detectorOn() }

func detectorLease(b []byte) {
	if !detectorOn() || cap(b) == 0 {
		return
	}
	p := unsafe.SliceData(b[:cap(b)])
	detMu.Lock()
	if detPooled != nil {
		delete(detPooled, p)
	}
	if debugDetector {
		if detLeased == nil {
			detLeased = make(map[*byte]struct{})
		}
		detLeased[p] = struct{}{}
	}
	detMu.Unlock()
}

func detectorPut(b []byte) {
	if !detectorOn() || cap(b) == 0 {
		return
	}
	p := unsafe.SliceData(b[:cap(b)])
	detMu.Lock()
	if detPooled == nil {
		detPooled = make(map[*byte]struct{})
	}
	if _, dup := detPooled[p]; dup {
		detMu.Unlock()
		panic(fmt.Sprintf("mem: double free of %d-byte buffer %p", cap(b), p))
	}
	detPooled[p] = struct{}{}
	if detLeased != nil {
		delete(detLeased, p)
	}
	detMu.Unlock()
}

// LeakedLeases reports the number of leased-but-never-recycled buffers in
// SLINGSHOT_POOL=debug mode, or -1 when leak tracking is not armed.
func LeakedLeases() int {
	if !debugDetector {
		return -1
	}
	detMu.Lock()
	defer detMu.Unlock()
	return len(detLeased)
}
