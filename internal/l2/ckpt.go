package l2

import (
	"slingshot/internal/ckpt/wire"
	"slingshot/internal/dsp"
)

// SnapshotTo writes the L2's full MAC/RLC state at a TTI barrier:
// scheduler counters, then every cell in sorted order with its per-UE
// contexts (link adaptation, both HARQ entity arrays, RLC tx/rx).
// Retransmission PDU payloads fold in as digests so the snapshot never
// retains the L2's recycled HARQ buffers.
func (l *L2) SnapshotTo(w *wire.W) {
	s := &l.Stats
	w.U64(s.ULGrants)
	w.U64(s.ULRetx)
	w.U64(s.ULCrcOK)
	w.U64(s.ULCrcFail)
	w.U64(s.ULGiveUps)
	w.U64(s.DLTBs)
	w.U64(s.DLRetx)
	w.U64(s.DLAcks)
	w.U64(s.DLNacks)
	w.U64(s.DLGiveUps)
	w.U64(s.PacketsUp)
	w.U64(s.PacketsDown)
	w.U64(s.FeedbackTO)
	w.U64(s.SlotsDriven)
	w.U32(uint32(len(l.cellOrder)))
	for _, id := range l.cellOrder {
		c := l.cells[id]
		w.U16(id)
		w.U64(c.seed)
		w.Bool(c.configured)
		w.Bool(c.started)
		w.U32(uint32(len(c.ueOrder)))
		for _, ueID := range c.ueOrder {
			u := c.ues[ueID]
			w.U16(ueID)
			w.F64(u.ulSNR)
			w.F64(u.dlCQI)
			w.Bool(u.ulKnown)
			w.Bool(u.dlKnown)
			w.I64(int64(u.ulGapSince))
			for i := range u.ulHARQ {
				p := &u.ulHARQ[i]
				w.U8(uint8(p.state))
				w.U32(uint32(p.txCount))
				w.U64(p.grantSlot)
				snapAlloc(w, p.alloc)
				w.U32(p.tbBytes)
			}
			for i := range u.dlHARQ {
				p := &u.dlHARQ[i]
				w.U8(uint8(p.state))
				w.U32(uint32(p.txCount))
				w.U64(p.sentSlot)
				snapAlloc(w, p.alloc)
				w.U32(p.tbBytes)
				w.U32(uint32(len(p.pdu)))
				w.U64(wire.Hash64(p.pdu))
			}
			u.dlTx.SnapshotTo(w)
			u.ulRx.SnapshotTo(w)
		}
	}
}

func snapAlloc(w *wire.W, a dsp.Allocation) {
	w.U16(a.UEID)
	w.U32(uint32(a.StartPRB))
	w.U32(uint32(a.NumPRB))
	w.U8(uint8(a.Mod))
}
