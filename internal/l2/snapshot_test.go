package l2

import (
	"testing"

	"slingshot/internal/fapi"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
)

func TestExportImportState(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.AttachUE(0, 2)
	r.l2.SendDownlink(0, 1, []byte("queued downlink"))
	r.l2.HandleFAPI(&fapi.CRCIndication{CellID: 0, Slot: 4,
		Results: []fapi.CRCResult{{UEID: 1, HARQID: 0, OK: true, SNRdB: 21}}})

	state := r.l2.ExportState()
	if got := state.Cells(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Cells = %v", got)
	}
	if state.UECount() != 2 {
		t.Fatalf("UECount = %d", state.UECount())
	}

	// Import into a fresh instance: bearers, queues and link state move.
	fresh := New(sim.NewEngine(), DefaultConfig(10))
	fresh.ImportState(state)
	if !fresh.Attached(0, 1) || !fresh.Attached(0, 2) {
		t.Fatal("imported L2 lost UE contexts")
	}
	if got := fresh.DLBacklog(0, 1); got != len("queued downlink") {
		t.Fatalf("DL backlog = %d after import", got)
	}
	snap, ok := fresh.Snapshot(0, 1)
	if !ok || snap.ULSNRdB != 21 {
		t.Fatalf("link state lost: %+v ok=%v", snap, ok)
	}
}

func TestExportIsDeepCopy(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.SendDownlink(0, 1, []byte("before"))
	state := r.l2.ExportState()
	// Mutating the live L2 after export must not affect the checkpoint.
	r.l2.SendDownlink(0, 1, []byte("after"))
	r.l2.DetachUE(0, 1)

	fresh := New(sim.NewEngine(), DefaultConfig(10))
	fresh.ImportState(state)
	if got := fresh.DLBacklog(0, 1); got != len("before") {
		t.Fatalf("checkpoint shares state with live L2: backlog %d", got)
	}
}

func TestSuperviseRLCSkipsStuckGap(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.Start()

	// Build two PDUs; deliver only the second so reassembly stalls.
	tx := newTestSegmenter()
	tx.Enqueue([]byte("lost"))
	tx.Enqueue([]byte("held"))
	_ = tx.BuildPDU(11) // "lost" PDU, never delivered
	p2 := tx.BuildPDU(11)
	r.e.At(10*phy.TTI, "rx", func() {
		r.l2.HandleFAPI(&fapi.RxData{CellID: 0, Slot: 9,
			Payloads: []fapi.TBPayload{{UEID: 1, Data: p2}}})
	})
	// The reassembly timer (20 ms) must give up the gap and deliver
	// "held".
	r.e.RunUntil(100 * sim.Millisecond)
	r.l2.Stop()
	if len(r.up) != 1 || string(r.up[0]) != "held" {
		t.Fatalf("stuck gap not skipped: delivered %q", r.up)
	}
}

func TestPrbShareClamps(t *testing.T) {
	r := newRig(t, func(c *Config) { c.PerUEPRBCap = 50 })
	if got := r.l2.prbShare(1); got != 50 {
		t.Fatalf("capped share = %d", got)
	}
	if got := r.l2.prbShare(500); got != 1 {
		t.Fatalf("floor share = %d", got)
	}
}
