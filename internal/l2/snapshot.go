package l2

// Checkpoint-restore support for L2 migration — the paper's §10 direction:
// unlike the PHY's discardable soft state, the L2 holds hard state (RLC
// sequence spaces, queued bearers, HARQ process bookkeeping) that must be
// preserved across a migration or upgrade. ExportState/ImportState move
// that state between L2 instances the way a Zeus-style state-preservation
// layer would, letting a replacement L2 take over mid-stream without
// breaking bearers.

import "slingshot/internal/trace"

// State is an opaque checkpoint of an L2's per-cell hard state.
type State struct {
	cells map[uint16]*cellCtx
}

// Cells returns the checkpointed cell ids (diagnostics).
func (s *State) Cells() []uint16 {
	out := make([]uint16, 0, len(s.cells))
	for id := range s.cells {
		out = append(out, id)
	}
	return out
}

// UECount returns how many UE contexts the checkpoint holds.
func (s *State) UECount() int {
	n := 0
	for _, c := range s.cells {
		n += len(c.ues)
	}
	return n
}

// ExportState deep-copies the L2's hard state. The L2 keeps running; the
// caller decides when to quiesce (a consistent handoff stops the old
// scheduler before importing on the new one).
func (l *L2) ExportState() *State {
	s := &State{cells: make(map[uint16]*cellCtx, len(l.cells))}
	for id, c := range l.cells {
		nc := &cellCtx{
			id: c.id, seed: c.seed, configured: c.configured, started: c.started,
			ues:     make(map[uint16]*ueCtx, len(c.ues)),
			ueOrder: append([]uint16(nil), c.ueOrder...),
		}
		for uid, u := range c.ues {
			nu := &ueCtx{
				id:      u.id,
				dlTx:    u.dlTx.Clone(),
				ulRx:    u.ulRx.Clone(),
				ulSNR:   u.ulSNR,
				dlCQI:   u.dlCQI,
				ulKnown: u.ulKnown,
				dlKnown: u.dlKnown,
			}
			nu.ulHARQ = u.ulHARQ
			nu.dlHARQ = u.dlHARQ
			for p := range nu.dlHARQ {
				nu.dlHARQ[p].pdu = append([]byte(nil), u.dlHARQ[p].pdu...)
			}
			nc.ues[uid] = nu
		}
		s.cells[id] = nc
	}
	if l.Recorder != nil {
		l.Recorder.Emit(trace.KindSnapshotExport, l.Cfg.ServerID, 0, 0,
			uint64(len(s.cells)), uint64(s.UECount()))
	}
	return s
}

// ImportState installs a checkpoint into this L2, replacing any existing
// cell state. The importing L2 must be configured with the same FAPI
// plumbing (SendFAPI towards the same Orion) before Start.
func (l *L2) ImportState(s *State) {
	l.cells = make(map[uint16]*cellCtx, len(s.cells))
	l.cellOrder = nil
	for id, c := range s.cells {
		l.cells[id] = c
		l.cellOrder = insertSorted(l.cellOrder, id)
		// Re-point the cloned RLC receivers at the importing L2's recorder
		// (the exporter may have had none, or a different one).
		for _, u := range c.ues {
			u.ulRx.Trace = l.Recorder
		}
	}
	if l.Recorder != nil {
		l.Recorder.Emit(trace.KindSnapshotImport, l.Cfg.ServerID, 0, 0,
			uint64(len(s.cells)), uint64(s.UECount()))
	}
}
