package l2

import (
	"testing"

	"slingshot/internal/dsp"
	"slingshot/internal/fapi"
	"slingshot/internal/phy"
	"slingshot/internal/rlc"
	"slingshot/internal/sim"
)

// newTestSegmenter builds PDUs the way a UE's RLC transmitter does.
func newTestSegmenter() *rlc.Tx { return rlc.NewTx() }

// rig drives an L2 with captured FAPI output.
type rig struct {
	e    *sim.Engine
	l2   *L2
	out  []fapi.Message
	up   [][]byte
	upUE []uint16
}

func newRig(t *testing.T, tweak func(*Config)) *rig {
	t.Helper()
	r := &rig{e: sim.NewEngine()}
	cfg := DefaultConfig(10)
	if tweak != nil {
		tweak(&cfg)
	}
	r.l2 = New(r.e, cfg)
	r.l2.SendFAPI = func(m fapi.Message) { r.out = append(r.out, m) }
	r.l2.OnUplinkPacket = func(cell, ue uint16, pkt []byte) {
		r.up = append(r.up, pkt)
		r.upUE = append(r.upUE, ue)
	}
	return r
}

func (r *rig) ulConfigs() []*fapi.ULConfig {
	var out []*fapi.ULConfig
	for _, m := range r.out {
		if ul, ok := m.(*fapi.ULConfig); ok {
			out = append(out, ul)
		}
	}
	return out
}

func (r *rig) dlConfigs() []*fapi.DLConfig {
	var out []*fapi.DLConfig
	for _, m := range r.out {
		if dl, ok := m.(*fapi.DLConfig); ok {
			out = append(out, dl)
		}
	}
	return out
}

func TestAddCellSendsConfigAndStart(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	if len(r.out) != 2 {
		t.Fatalf("messages = %d", len(r.out))
	}
	cfg, ok := r.out[0].(*fapi.ConfigRequest)
	if !ok || cfg.Seed != 7 || cfg.MantissaBits != 9 || cfg.NumPRB != dsp.MaxPRB {
		t.Fatalf("config = %+v", r.out[0])
	}
	if _, ok := r.out[1].(*fapi.StartRequest); !ok {
		t.Fatalf("second message = %v", r.out[1].Kind())
	}
}

func TestConfigsEverySlotEvenWithoutUEs(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.Start()
	r.e.RunUntil(10 * phy.TTI)
	r.l2.Stop()
	uls, dls := r.ulConfigs(), r.dlConfigs()
	if len(uls) < 9 || len(dls) < 9 {
		t.Fatalf("configs: %d UL, %d DL over 10 slots", len(uls), len(dls))
	}
	for _, ul := range uls {
		if !ul.Null() {
			t.Fatal("non-null UL config with no UEs")
		}
	}
	// Slots must be scheduled ahead with the configured lead.
	if uls[0].Slot != r.l2.Cfg.ScheduleLead {
		t.Fatalf("first scheduled slot = %d", uls[0].Slot)
	}
}

func TestUplinkGrantsOnULSlotsOnly(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.Start()
	r.e.RunUntil(25 * phy.TTI)
	r.l2.Stop()
	for _, ul := range r.ulConfigs() {
		if ul.Null() {
			if phy.KindOf(ul.Slot) == phy.SlotUL {
				t.Fatalf("UL slot %d got no grant", ul.Slot)
			}
			continue
		}
		if phy.KindOf(ul.Slot) != phy.SlotUL {
			t.Fatalf("grant on non-UL slot %d", ul.Slot)
		}
		if len(ul.PDUs) != 1 || ul.PDUs[0].UEID != 1 || !ul.PDUs[0].NewData {
			t.Fatalf("grant = %+v", ul.PDUs)
		}
		if ul.PDUs[0].Alloc.Mod != dsp.QPSK {
			t.Fatalf("initial MCS = %v, want QPSK before SNR reports", ul.PDUs[0].Alloc.Mod)
		}
	}
}

func TestUplinkHARQRetransmission(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.Start()
	// Run until the first grant exists, then report CRC failure.
	r.e.RunUntil(5 * phy.TTI)
	grants := r.ulConfigs()
	var first *fapi.ULConfig
	for _, ul := range grants {
		if !ul.Null() {
			first = ul
			break
		}
	}
	if first == nil {
		t.Fatal("no grant issued")
	}
	r.l2.HandleFAPI(&fapi.CRCIndication{CellID: 0, Slot: first.Slot,
		Results: []fapi.CRCResult{{UEID: 1, HARQID: first.PDUs[0].HARQID, OK: false, SNRdB: 10}}})
	r.e.RunUntil(12 * phy.TTI)
	r.l2.Stop()

	found := false
	for _, ul := range r.ulConfigs() {
		for _, pdu := range ul.PDUs {
			if !pdu.NewData && pdu.HARQID == first.PDUs[0].HARQID {
				found = true
				if pdu.Rv != 1 {
					t.Fatalf("retx Rv = %d", pdu.Rv)
				}
				if pdu.TBBytes != first.PDUs[0].TBBytes {
					t.Fatal("retx TB size changed")
				}
			}
		}
	}
	if !found {
		t.Fatal("no retransmission grant after CRC failure")
	}
	if r.l2.Stats.ULRetx != 1 {
		t.Fatalf("ULRetx = %d", r.l2.Stats.ULRetx)
	}
}

func TestUplinkHARQGiveUpAfterMaxTx(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.Start()
	// Fail every CRC; after MaxHARQTx the process must be released.
	stop := r.e.Every(0, phy.TTI, "nack", func() {
		for _, m := range r.out {
			ul, ok := m.(*fapi.ULConfig)
			if !ok || ul.Null() {
				continue
			}
			r.l2.HandleFAPI(&fapi.CRCIndication{CellID: 0, Slot: ul.Slot,
				Results: []fapi.CRCResult{{UEID: 1, HARQID: ul.PDUs[0].HARQID, OK: false, SNRdB: 5}}})
		}
		r.out = nil
	})
	r.e.RunUntil(60 * phy.TTI)
	stop()
	r.l2.Stop()
	if r.l2.Stats.ULGiveUps == 0 {
		t.Fatal("no HARQ give-up despite persistent failures")
	}
}

func TestDownlinkSchedulingAndPayloads(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.SendDownlink(0, 1, []byte("downlink data"))
	r.l2.Start()
	r.e.RunUntil(10 * phy.TTI)
	r.l2.Stop()
	var dl *fapi.DLConfig
	var tx *fapi.TxData
	for _, m := range r.out {
		if d, ok := m.(*fapi.DLConfig); ok && !d.Null() {
			dl = d
		}
		if x, ok := m.(*fapi.TxData); ok {
			tx = x
		}
	}
	if dl == nil || tx == nil {
		t.Fatal("no DL schedule for backlogged UE")
	}
	if phy.KindOf(dl.Slot) != phy.SlotDL {
		t.Fatalf("DL PDU on slot kind %v", phy.KindOf(dl.Slot))
	}
	if tx.Slot != dl.Slot || len(tx.Payloads) != 1 {
		t.Fatalf("TxData mismatched: %+v", tx)
	}
}

func TestDownlinkNackRetransmitsSamePDU(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.SendDownlink(0, 1, []byte("retransmit me"))
	r.l2.Start()
	r.e.RunUntil(10 * phy.TTI)
	var orig *fapi.TxData
	for _, m := range r.out {
		if x, ok := m.(*fapi.TxData); ok {
			orig = x
			break
		}
	}
	if orig == nil {
		t.Fatal("no initial DL TB")
	}
	r.l2.HandleFAPI(&fapi.UCIIndication{CellID: 0, Slot: orig.Slot + 4,
		Reports: []fapi.UCI{{UEID: 1, HARQID: orig.Payloads[0].HARQID, HasFeedback: true, ACK: false, CQIdB: 20}}})
	r.out = nil
	r.e.RunUntil(20 * phy.TTI)
	r.l2.Stop()
	for _, m := range r.out {
		if x, ok := m.(*fapi.TxData); ok {
			if string(x.Payloads[0].Data) == string(orig.Payloads[0].Data) {
				return // same PDU retransmitted
			}
		}
	}
	t.Fatal("NACKed PDU never retransmitted")
}

func TestRxDataDeliversPackets(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	// Craft a PDU via the UE-side segmenter.
	tx := newTestSegmenter()
	tx.Enqueue([]byte("uplink packet"))
	pdu := tx.BuildPDU(100)
	r.l2.HandleFAPI(&fapi.RxData{CellID: 0, Slot: 4,
		Payloads: []fapi.TBPayload{{UEID: 1, Data: pdu}}})
	if len(r.up) != 1 || string(r.up[0]) != "uplink packet" {
		t.Fatalf("uplink delivery = %q", r.up)
	}
	if r.upUE[0] != 1 {
		t.Fatalf("wrong UE id %d", r.upUE[0])
	}
}

func TestMCSAdaptsToSNR(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.HandleFAPI(&fapi.CRCIndication{CellID: 0, Slot: 4,
		Results: []fapi.CRCResult{{UEID: 1, HARQID: 0, OK: true, SNRdB: 30}}})
	snap, ok := r.l2.Snapshot(0, 1)
	if !ok {
		t.Fatal("no snapshot")
	}
	if snap.ULMod != dsp.QAM256 {
		t.Fatalf("ULMod at 30 dB = %v", snap.ULMod)
	}
	r.l2.HandleFAPI(&fapi.CRCIndication{CellID: 0, Slot: 9,
		Results: []fapi.CRCResult{{UEID: 1, HARQID: 1, OK: true, SNRdB: 8}}})
	snap, _ = r.l2.Snapshot(0, 1)
	if snap.ULMod != dsp.QPSK {
		t.Fatalf("ULMod at 8 dB = %v", snap.ULMod)
	}
	// CQI drives the DL side.
	r.l2.HandleFAPI(&fapi.UCIIndication{CellID: 0, Slot: 9,
		Reports: []fapi.UCI{{UEID: 1, CQIdB: 23}}})
	snap, _ = r.l2.Snapshot(0, 1)
	if snap.DLMod != dsp.QAM64 {
		t.Fatalf("DLMod at 23 dB = %v", snap.DLMod)
	}
}

func TestFixedModOverrides(t *testing.T) {
	r := newRig(t, func(c *Config) { c.FixedULMod = dsp.QAM64 })
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	snap, _ := r.l2.Snapshot(0, 1)
	if snap.ULMod != dsp.QAM64 {
		t.Fatalf("fixed ULMod = %v", snap.ULMod)
	}
}

func TestFeedbackTimeoutTriggersRetx(t *testing.T) {
	r := newRig(t, func(c *Config) { c.FeedbackTimeoutSlots = 10 })
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	r.l2.Start()
	r.e.RunUntil(40 * phy.TTI) // grants never acknowledged
	r.l2.Stop()
	if r.l2.Stats.FeedbackTO == 0 {
		t.Fatal("no feedback timeouts despite silent PHY")
	}
	if r.l2.Stats.ULRetx == 0 {
		t.Fatal("timeout did not trigger retransmission")
	}
}

func TestDetachStopsScheduling(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	r.l2.AttachUE(0, 1)
	if !r.l2.Attached(0, 1) {
		t.Fatal("not attached")
	}
	r.l2.DetachUE(0, 1)
	if r.l2.Attached(0, 1) {
		t.Fatal("still attached")
	}
	r.l2.Start()
	r.e.RunUntil(10 * phy.TTI)
	r.l2.Stop()
	for _, ul := range r.ulConfigs() {
		if !ul.Null() {
			t.Fatal("grant for detached UE")
		}
	}
	if r.l2.SendDownlink(0, 1, []byte("x")) {
		t.Fatal("SendDownlink accepted for detached UE")
	}
}

func TestMultiUEFairShare(t *testing.T) {
	r := newRig(t, nil)
	r.l2.AddCell(0, 7, 9)
	for ue := uint16(1); ue <= 3; ue++ {
		r.l2.AttachUE(0, ue)
	}
	r.l2.Start()
	r.e.RunUntil(10 * phy.TTI)
	r.l2.Stop()
	for _, ul := range r.ulConfigs() {
		if ul.Null() {
			continue
		}
		if len(ul.PDUs) != 3 {
			t.Fatalf("UL slot %d grants %d UEs", ul.Slot, len(ul.PDUs))
		}
		share := dsp.MaxPRB / 3
		used := map[int]bool{}
		for _, pdu := range ul.PDUs {
			if pdu.Alloc.NumPRB != share {
				t.Fatalf("share = %d, want %d", pdu.Alloc.NumPRB, share)
			}
			for i := pdu.Alloc.StartPRB; i < pdu.Alloc.StartPRB+pdu.Alloc.NumPRB; i++ {
				if used[i] {
					t.Fatal("overlapping allocations")
				}
				used[i] = true
			}
		}
	}
}

func TestUnknownCellIgnored(t *testing.T) {
	r := newRig(t, nil)
	r.l2.HandleFAPI(&fapi.CRCIndication{CellID: 5})
	if !r.l2.AttachUE(0, 1) == false {
		t.Fatal("attach to unknown cell succeeded")
	}
	if r.l2.DLBacklog(5, 1) != 0 {
		t.Fatal("backlog for unknown cell")
	}
}
