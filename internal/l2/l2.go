// Package l2 implements the vRAN's layer-2: a per-TTI MAC scheduler (grant
// allocation, link adaptation, HARQ management) and RLC termination for
// uplink and downlink bearers. It is the component the paper's testbed
// runs as the CapGemini 5G stack: it drives the PHY through per-slot FAPI
// requests issued a fixed number of slots ahead, and reacts to CRC and UCI
// indications.
package l2

import (
	"sort"

	"slingshot/internal/dsp"
	"slingshot/internal/fapi"
	"slingshot/internal/mem"
	"slingshot/internal/phy"
	"slingshot/internal/rlc"
	"slingshot/internal/sim"
	"slingshot/internal/trace"
)

// Config parameterizes the L2.
type Config struct {
	ServerID uint8
	// ScheduleLead is how many slots ahead configs are issued (FlexRAN
	// budgets one TTI for FAPI transfer; we use 2 for network transit).
	ScheduleLead uint64
	// MaxHARQTx is the transmission budget per transport block (1
	// original + 3 retransmissions, §4.2).
	MaxHARQTx int
	// FeedbackTimeoutSlots releases a HARQ process whose CRC/ACK never
	// arrived (PHY died mid-pipeline).
	FeedbackTimeoutSlots uint64
	// PerUEPRBCap bounds one UE's allocation.
	PerUEPRBCap int
	// FixedULMod / FixedDLMod pin the modulation (0 = adaptive).
	FixedULMod dsp.Modulation
	FixedDLMod dsp.Modulation
	// MCSMarginDB backs off the link-adaptation thresholds.
	MCSMarginDB float64
}

// DefaultConfig returns the standard L2 configuration.
func DefaultConfig(server uint8) Config {
	return Config{
		ServerID:             server,
		ScheduleLead:         2,
		MaxHARQTx:            4,
		FeedbackTimeoutSlots: 30,
		PerUEPRBCap:          dsp.MaxPRB,
		MCSMarginDB:          2,
	}
}

// Stats counts L2 activity.
type Stats struct {
	ULGrants    uint64
	ULRetx      uint64
	ULCrcOK     uint64
	ULCrcFail   uint64
	ULGiveUps   uint64
	DLTBs       uint64
	DLRetx      uint64
	DLAcks      uint64
	DLNacks     uint64
	DLGiveUps   uint64
	PacketsUp   uint64
	PacketsDown uint64
	FeedbackTO  uint64
	SlotsDriven uint64
}

const numHARQ = 16

type procState uint8

const (
	procFree procState = iota
	procWaiting
	procNeedRetx
)

type ulProc struct {
	state     procState
	txCount   int
	grantSlot uint64
	alloc     dsp.Allocation
	tbBytes   uint32
}

type dlProc struct {
	state    procState
	txCount  int
	sentSlot uint64
	pdu      []byte
	alloc    dsp.Allocation
	tbBytes  uint32
}

type ueCtx struct {
	id    uint16
	dlTx  *rlc.Tx
	ulRx  *rlc.Rx
	ulSNR float64
	dlCQI float64
	// snrKnown gates link adaptation until the first report.
	ulKnown, dlKnown bool

	ulHARQ [numHARQ]ulProc
	dlHARQ [numHARQ]dlProc

	ulGapSince sim.Time
}

type cellCtx struct {
	id         uint16
	seed       uint64
	configured bool
	started    bool
	ues        map[uint16]*ueCtx
	ueOrder    []uint16 // deterministic scheduling order
}

// L2 is the MAC/RLC process.
type L2 struct {
	Cfg    Config
	Engine *sim.Engine
	Stats  Stats

	// SendFAPI delivers requests to the L2-side Orion over SHM.
	SendFAPI func(fapi.Message)
	// OnUplinkPacket receives in-order uplink packets (towards the core
	// network / application server).
	OnUplinkPacket func(cell, ue uint16, pkt []byte)
	// Trace, when set, observes scheduler decisions (debugging aid).
	Trace func(format string, args ...any)
	// Recorder, when non-nil, records typed observability events (state
	// snapshot export/import, RLC discards via the per-UE rlc.Rx hookup).
	Recorder *trace.Recorder

	cells     map[uint16]*cellCtx
	cellOrder []uint16 // sorted ids: deterministic scheduling order
	stopClock func()

	// dlWork is scheduleDownlink's per-slot scratch; onSlot runs on the
	// event-loop goroutine only, so one slice serves every cell.
	dlWork []dlWorkItem
}

// dlWorkItem is one scheduleDownlink decision: (re)transmit HARQ process
// proc of UE u.
type dlWorkItem struct {
	u    *ueCtx
	proc int
	retx bool
}

// New creates an L2.
func New(e *sim.Engine, cfg Config) *L2 {
	if cfg.ScheduleLead == 0 {
		cfg.ScheduleLead = 2
	}
	if cfg.MaxHARQTx == 0 {
		cfg.MaxHARQTx = 4
	}
	if cfg.FeedbackTimeoutSlots == 0 {
		cfg.FeedbackTimeoutSlots = 30
	}
	if cfg.PerUEPRBCap == 0 {
		cfg.PerUEPRBCap = dsp.MaxPRB
	}
	return &L2{Cfg: cfg, Engine: e, cells: make(map[uint16]*cellCtx)}
}

// AddCell onboards an RU: sends the CONFIG/START requests that Orion
// intercepts and duplicates to the primary and secondary PHYs.
func (l *L2) AddCell(cell uint16, seed uint64, mantissa uint8) {
	if _, dup := l.cells[cell]; !dup {
		l.cellOrder = insertSorted(l.cellOrder, cell)
	}
	l.cells[cell] = &cellCtx{id: cell, seed: seed, ues: make(map[uint16]*ueCtx)}
	l.fapiOut(&fapi.ConfigRequest{
		CellID: cell, NumPRB: dsp.MaxPRB, MantissaBits: mantissa, Seed: seed,
	})
	l.fapiOut(&fapi.StartRequest{CellID: cell})
}

// Start begins the scheduler clock at the next slot boundary.
func (l *L2) Start() {
	if l.stopClock != nil {
		return
	}
	now := l.Engine.Now()
	next := (now + phy.TTI - 1) / phy.TTI * phy.TTI
	l.stopClock = l.Engine.Every(next-now, phy.TTI, "l2.slot", l.onSlot)
}

// Stop halts the scheduler (teardown or crash emulation).
func (l *L2) Stop() {
	if l.stopClock != nil {
		l.stopClock()
		l.stopClock = nil
	}
}

// AttachUE creates MAC/RLC context for a UE (RRC connection complete).
func (l *L2) AttachUE(cell, ue uint16) bool {
	c := l.cells[cell]
	if c == nil {
		return false
	}
	if _, dup := c.ues[ue]; dup {
		return true
	}
	u := &ueCtx{id: ue, dlTx: rlc.NewTx(), ulRx: rlc.NewRx()}
	u.ulRx.Trace, u.ulRx.Cell, u.ulRx.UE = l.Recorder, cell, ue
	c.ues[ue] = u
	c.ueOrder = append(c.ueOrder, ue)
	return true
}

// DetachUE tears down a UE's context.
func (l *L2) DetachUE(cell, ue uint16) {
	c := l.cells[cell]
	if c == nil {
		return
	}
	delete(c.ues, ue)
	for i, id := range c.ueOrder {
		if id == ue {
			c.ueOrder = append(c.ueOrder[:i], c.ueOrder[i+1:]...)
			break
		}
	}
}

// Attached reports whether the UE has L2 context.
func (l *L2) Attached(cell, ue uint16) bool {
	c := l.cells[cell]
	if c == nil {
		return false
	}
	_, ok := c.ues[ue]
	return ok
}

// SendDownlink enqueues a downlink packet for a UE. It reports whether the
// UE had a bearer (otherwise the packet is dropped, as the core would).
func (l *L2) SendDownlink(cell, ue uint16, pkt []byte) bool {
	c := l.cells[cell]
	if c == nil {
		return false
	}
	u := c.ues[ue]
	if u == nil {
		return false
	}
	l.Stats.PacketsDown++
	u.dlTx.Enqueue(pkt)
	return true
}

// DLBacklog returns a UE's queued downlink bytes.
func (l *L2) DLBacklog(cell, ue uint16) int {
	if c := l.cells[cell]; c != nil {
		if u := c.ues[ue]; u != nil {
			return u.dlTx.Backlog()
		}
	}
	return 0
}

func (l *L2) fapiOut(m fapi.Message) {
	if l.SendFAPI != nil {
		l.SendFAPI(m)
	}
}

// onSlot runs the scheduler: at slot N it issues the configs for slot
// N+ScheduleLead.
func (l *L2) onSlot() {
	now := phy.SlotAt(l.Engine.Now())
	target := now + l.Cfg.ScheduleLead
	// Sorted cell order keeps the FAPI emission sequence (and therefore the
	// whole event schedule) deterministic for a given seed.
	for _, id := range l.cellOrder {
		c := l.cells[id]
		l.Stats.SlotsDriven++
		l.expireFeedback(c, now)
		l.scheduleSlot(c, target)
		l.superviseRLC(c)
	}
}

func (l *L2) scheduleSlot(c *cellCtx, slot uint64) {
	// Requests are pool-leased; the consumer recycles them (the PHY at its
	// slot GC on the direct-SHM path, Orion after encoding on the wire
	// path).
	ul := fapi.GetULConfig(c.id, slot)
	dl := fapi.GetDLConfig(c.id, slot)
	tx := fapi.GetTxData(c.id, slot)

	switch phy.KindOf(slot) {
	case phy.SlotUL:
		l.scheduleUplink(c, slot, ul)
	case phy.SlotDL:
		l.scheduleDownlink(c, slot, dl, tx)
	}
	// Both configs go every slot: a PHY must receive valid (possibly
	// null) requests each TTI (§6.2).
	l.fapiOut(ul)
	l.fapiOut(dl)
	if len(tx.Payloads) > 0 {
		l.fapiOut(tx)
	} else {
		fapi.ReleaseShallow(tx)
	}
}

// scheduleUplink grants the UL slot's resources: HARQ retransmissions
// first, then new data, with an equal PRB share per UE.
func (l *L2) scheduleUplink(c *cellCtx, slot uint64, ul *fapi.ULConfig) {
	if len(c.ueOrder) == 0 {
		return
	}
	share := l.prbShare(len(c.ueOrder))
	startPRB := 0
	for _, id := range c.ueOrder {
		u := c.ues[id]
		mod := l.ulMod(u)
		alloc := dsp.Allocation{
			UEID: id, StartPRB: startPRB, NumPRB: share, Mod: mod,
		}
		startPRB += share
		tbBytes := tbSizeBytes(alloc)

		// Retransmission needed?
		retx := -1
		for p := range u.ulHARQ {
			if u.ulHARQ[p].state == procNeedRetx {
				retx = p
				break
			}
		}
		if retx >= 0 {
			proc := &u.ulHARQ[retx]
			// Reuse the original TB size so the UE resends the stored TB.
			proc.state = procWaiting
			proc.txCount++
			proc.grantSlot = slot
			alloc.Mod = proc.alloc.Mod
			ul.PDUs = append(ul.PDUs, fapi.PDU{
				UEID: id, HARQID: uint8(retx), Rv: uint8(proc.txCount - 1),
				NewData: false, Alloc: alloc, TBBytes: proc.tbBytes,
			})
			l.Stats.ULRetx++
			l.Stats.ULGrants++
			continue
		}
		// New data on a free process.
		free := -1
		for p := range u.ulHARQ {
			if u.ulHARQ[p].state == procFree {
				free = p
				break
			}
		}
		if free < 0 {
			continue // all processes in flight; skip this slot
		}
		proc := &u.ulHARQ[free]
		*proc = ulProc{state: procWaiting, txCount: 1, grantSlot: slot, alloc: alloc, tbBytes: uint32(tbBytes)}
		ul.PDUs = append(ul.PDUs, fapi.PDU{
			UEID: id, HARQID: uint8(free), Rv: 0, NewData: true,
			Alloc: alloc, TBBytes: uint32(tbBytes),
		})
		l.Stats.ULGrants++
	}
}

// scheduleDownlink fills the DL slot for backlogged UEs.
func (l *L2) scheduleDownlink(c *cellCtx, slot uint64, dl *fapi.DLConfig, tx *fapi.TxData) {
	// Retransmissions first, then new data for backlogged UEs.
	items := l.dlWork[:0]
	for _, id := range c.ueOrder {
		u := c.ues[id]
		for p := range u.dlHARQ {
			if u.dlHARQ[p].state == procNeedRetx {
				items = append(items, dlWorkItem{u, p, true})
				break
			}
		}
	}
	for _, id := range c.ueOrder {
		u := c.ues[id]
		if u.dlTx.Backlog() == 0 {
			continue
		}
		free := -1
		for p := range u.dlHARQ {
			if u.dlHARQ[p].state == procFree {
				free = p
				break
			}
		}
		if free >= 0 {
			items = append(items, dlWorkItem{u, free, false})
		}
	}
	l.dlWork = items
	if len(items) == 0 {
		return
	}
	defer func() {
		// Drop the *ueCtx references so a detached UE can be collected.
		for i := range items {
			items[i] = dlWorkItem{}
		}
	}()
	share := l.prbShare(len(items))
	startPRB := 0
	for _, it := range items {
		u := it.u
		proc := &u.dlHARQ[it.proc]
		if it.retx {
			alloc := proc.alloc
			alloc.StartPRB = startPRB
			startPRB += alloc.NumPRB
			proc.state = procWaiting
			proc.txCount++
			proc.sentSlot = slot
			if l.Trace != nil {
				l.Trace("slot=%d DL retx ue=%d harq=%d tx=%d", slot, u.id, it.proc, proc.txCount)
			}
			dl.PDUs = append(dl.PDUs, fapi.PDU{
				UEID: u.id, HARQID: uint8(it.proc), Rv: uint8(proc.txCount - 1),
				NewData: false, Alloc: alloc, TBBytes: proc.tbBytes,
			})
			tx.Payloads = append(tx.Payloads, fapi.TBPayload{
				UEID: u.id, HARQID: uint8(it.proc), Data: proc.pdu,
			})
			l.Stats.DLRetx++
			l.Stats.DLTBs++
			continue
		}
		mod := l.dlMod(u)
		alloc := dsp.Allocation{UEID: u.id, StartPRB: startPRB, NumPRB: share, Mod: mod}
		startPRB += share
		tbBytes := tbSizeBytes(alloc)
		pdu := u.dlTx.AppendPDU(mem.GetBytesCap(tbBytes), tbBytes)
		*proc = dlProc{
			state: procWaiting, txCount: 1, sentSlot: slot,
			pdu: pdu, alloc: alloc, tbBytes: uint32(tbBytes),
		}
		dl.PDUs = append(dl.PDUs, fapi.PDU{
			UEID: u.id, HARQID: uint8(it.proc), Rv: 0, NewData: true,
			Alloc: alloc, TBBytes: uint32(tbBytes),
		})
		tx.Payloads = append(tx.Payloads, fapi.TBPayload{
			UEID: u.id, HARQID: uint8(it.proc), Data: pdu,
		})
		l.Stats.DLTBs++
	}
}

// prbShare splits the carrier among n users.
func (l *L2) prbShare(n int) int {
	share := dsp.MaxPRB / n
	if share > l.Cfg.PerUEPRBCap {
		share = l.Cfg.PerUEPRBCap
	}
	if share < 1 {
		share = 1
	}
	return share
}

// tbSizeBytes returns the transport-block size an allocation carries at
// the sampled code rate (1/2).
func tbSizeBytes(a dsp.Allocation) int {
	bits := a.DataBits() / 2
	bytes := bits / 8
	if bytes < 8 {
		bytes = 8
	}
	return bytes
}

// Link adaptation thresholds (dB) for the sampled rate-1/2 code,
// calibrated against internal/phy's codec (see TestMCSThresholds).
var mcsThresholds = []struct {
	mod dsp.Modulation
	snr float64
}{
	{dsp.QAM256, 26},
	{dsp.QAM64, 20},
	{dsp.QAM16, 13.5},
	{dsp.QPSK, -100},
}

func modForSNR(snr, margin float64) dsp.Modulation {
	for _, t := range mcsThresholds {
		if snr-margin >= t.snr {
			return t.mod
		}
	}
	return dsp.QPSK
}

func (l *L2) ulMod(u *ueCtx) dsp.Modulation {
	if l.Cfg.FixedULMod != 0 {
		return l.Cfg.FixedULMod
	}
	if !u.ulKnown {
		return dsp.QPSK
	}
	return modForSNR(u.ulSNR, l.Cfg.MCSMarginDB)
}

func (l *L2) dlMod(u *ueCtx) dsp.Modulation {
	if l.Cfg.FixedDLMod != 0 {
		return l.Cfg.FixedDLMod
	}
	if !u.dlKnown {
		return dsp.QPSK
	}
	return modForSNR(u.dlCQI, l.Cfg.MCSMarginDB)
}

// HandleFAPI processes PHY responses delivered by the L2-side Orion.
func (l *L2) HandleFAPI(m fapi.Message) {
	c := l.cells[m.Cell()]
	if c == nil {
		return
	}
	switch msg := m.(type) {
	case *fapi.ConfigResponse:
		c.configured = c.configured || msg.OK
	case *fapi.CRCIndication:
		l.handleCRC(c, msg)
	case *fapi.RxData:
		l.handleRxData(c, msg)
	case *fapi.UCIIndication:
		l.handleUCI(c, msg)
	}
}

func (l *L2) handleCRC(c *cellCtx, msg *fapi.CRCIndication) {
	for _, res := range msg.Results {
		u := c.ues[res.UEID]
		if u == nil {
			continue
		}
		u.ulSNR = float64(res.SNRdB)
		u.ulKnown = true
		proc := &u.ulHARQ[res.HARQID%numHARQ]
		if proc.state != procWaiting {
			continue
		}
		if res.OK {
			l.Stats.ULCrcOK++
			proc.state = procFree
		} else {
			l.Stats.ULCrcFail++
			if proc.txCount >= l.Cfg.MaxHARQTx {
				l.Stats.ULGiveUps++
				proc.state = procFree
			} else {
				proc.state = procNeedRetx
			}
		}
	}
}

func (l *L2) handleRxData(c *cellCtx, msg *fapi.RxData) {
	for _, pl := range msg.Payloads {
		u := c.ues[pl.UEID]
		if u == nil {
			continue
		}
		pkts, err := u.ulRx.Ingest(pl.Data)
		if err != nil {
			continue
		}
		for _, pkt := range pkts {
			l.Stats.PacketsUp++
			if l.OnUplinkPacket != nil {
				l.OnUplinkPacket(c.id, pl.UEID, pkt)
			}
		}
	}
}

// recyclePDU releases a freed DL HARQ process's PDU buffer. A stale
// duplicate ACK (chaos can replay UCI frames) may free a process whose
// latest grant is still in flight to the PHY — sentSlot in the future —
// and the TB bytes must survive until the PHY consumes them at sentSlot.
// Such buffers are left to the garbage collector; the common case (feedback
// after transmission) recycles.
func (l *L2) recyclePDU(proc *dlProc, nowSlot uint64) {
	if proc.pdu != nil && nowSlot > proc.sentSlot {
		mem.PutBytes(proc.pdu)
	}
	proc.pdu = nil
}

func (l *L2) handleUCI(c *cellCtx, msg *fapi.UCIIndication) {
	nowSlot := phy.SlotAt(l.Engine.Now())
	for _, r := range msg.Reports {
		u := c.ues[r.UEID]
		if u == nil {
			continue
		}
		if r.CQIdB != 0 {
			u.dlCQI = float64(r.CQIdB)
			u.dlKnown = true
		}
		if !r.HasFeedback {
			continue
		}
		proc := &u.dlHARQ[r.HARQID%numHARQ]
		if proc.state != procWaiting {
			continue
		}
		if r.ACK {
			l.Stats.DLAcks++
			proc.state = procFree
			l.recyclePDU(proc, nowSlot)
		} else {
			l.Stats.DLNacks++
			if proc.txCount >= l.Cfg.MaxHARQTx {
				l.Stats.DLGiveUps++
				proc.state = procFree
				l.recyclePDU(proc, nowSlot)
			} else {
				proc.state = procNeedRetx
			}
		}
	}
}

// insertSorted adds id to a sorted id slice, keeping it sorted.
func insertSorted(ids []uint16, id uint16) []uint16 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// expireFeedback frees HARQ processes whose feedback never arrived.
func (l *L2) expireFeedback(c *cellCtx, now uint64) {
	for _, u := range c.ues {
		for p := range u.ulHARQ {
			proc := &u.ulHARQ[p]
			if proc.state == procWaiting && proc.grantSlot+l.Cfg.FeedbackTimeoutSlots < now {
				l.Stats.FeedbackTO++
				if proc.txCount < l.Cfg.MaxHARQTx {
					proc.state = procNeedRetx
				} else {
					proc.state = procFree
				}
			}
		}
		for p := range u.dlHARQ {
			proc := &u.dlHARQ[p]
			if proc.state == procWaiting && proc.sentSlot+l.Cfg.FeedbackTimeoutSlots < now {
				l.Stats.FeedbackTO++
				if l.Trace != nil {
					l.Trace("slot=%d DL feedback timeout ue=%d harq=%d tx=%d", now, u.id, p, proc.txCount)
				}
				// Feedback lost: retransmit once more if budget remains,
				// otherwise release (TCP/RLC recovers).
				if proc.txCount < l.Cfg.MaxHARQTx {
					proc.state = procNeedRetx
				} else {
					proc.state = procFree
					// now > sentSlot+FeedbackTimeoutSlots, so no grant
					// referencing the buffer can still be in flight.
					l.recyclePDU(proc, now)
				}
			}
		}
	}
}

// superviseRLC skips stuck uplink reassembly gaps.
func (l *L2) superviseRLC(c *cellCtx) {
	now := l.Engine.Now()
	for _, id := range c.ueOrder {
		u := c.ues[id]
		if !u.ulRx.HasGap() {
			u.ulGapSince = 0
			continue
		}
		if u.ulGapSince == 0 {
			u.ulGapSince = now
			continue
		}
		if now-u.ulGapSince > 20*sim.Millisecond {
			pkts := u.ulRx.SkipGap()
			u.ulGapSince = 0
			for _, pkt := range pkts {
				l.Stats.PacketsUp++
				if l.OnUplinkPacket != nil {
					l.OnUplinkPacket(c.id, u.id, pkt)
				}
			}
		}
	}
}

// UESnapshot reports a UE's link-adaptation state (for experiments).
type UESnapshot struct {
	ULSNRdB float64
	DLCQIdB float64
	ULMod   dsp.Modulation
	DLMod   dsp.Modulation
}

// Snapshot returns the link state of a UE.
func (l *L2) Snapshot(cell, ue uint16) (UESnapshot, bool) {
	c := l.cells[cell]
	if c == nil {
		return UESnapshot{}, false
	}
	u := c.ues[ue]
	if u == nil {
		return UESnapshot{}, false
	}
	return UESnapshot{
		ULSNRdB: u.ulSNR, DLCQIdB: u.dlCQI,
		ULMod: l.ulMod(u), DLMod: l.dlMod(u),
	}, true
}
