package metrics

import (
	"math"
	"testing"

	"slingshot/internal/sim"
)

// TestPercentileEdgeCases drives Percentile through the degenerate sample
// shapes the experiment harnesses can produce (no observations, a single
// observation, out-of-range p).
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		p      float64
		want   float64 // NaN means "expect NaN"
	}{
		{"empty-p50", nil, 50, math.NaN()},
		{"empty-p0", nil, 0, math.NaN()},
		{"empty-p100", nil, 100, math.NaN()},
		{"single-p0", []float64{7}, 0, 7},
		{"single-p50", []float64{7}, 50, 7},
		{"single-p100", []float64{7}, 100, 7},
		{"single-below-range", []float64{7}, -5, 7},
		{"single-above-range", []float64{7}, 250, 7},
		{"pair-p25", []float64{0, 10}, 25, 2.5},
		{"pair-below-range", []float64{0, 10}, -1, 0},
		{"pair-above-range", []float64{0, 10}, 101, 10},
		{"all-equal-p90", []float64{3, 3, 3, 3}, 90, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSample()
			for _, v := range tc.values {
				s.Add(v)
			}
			got := s.Percentile(tc.p)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Percentile(%v) = %v, want NaN", tc.p, got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

// TestMeanStdDevEdgeCases covers empty samples (NaN), single samples
// (zero spread) and NaN propagation through Mean and StdDev.
func TestMeanStdDevEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		values   []float64
		mean     float64
		std      float64
		wantNaNs bool
	}{
		{"empty", nil, 0, 0, true},
		{"single", []float64{4}, 4, 0, false},
		{"pair", []float64{2, 4}, 3, 1, false},
		{"nan-observation", []float64{1, math.NaN(), 3}, 0, 0, true},
		{"inf-observation", []float64{math.Inf(1), 1}, math.Inf(1), 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSample()
			for _, v := range tc.values {
				s.Add(v)
			}
			mean, std := s.Mean(), s.StdDev()
			if tc.wantNaNs {
				// A poisoned or empty sample must surface as NaN (or the
				// propagated Inf for the mean), never as a plausible number.
				if !math.IsNaN(mean) && !math.IsInf(mean, 0) {
					t.Fatalf("Mean = %v, want NaN/Inf", mean)
				}
				if !math.IsNaN(std) {
					t.Fatalf("StdDev = %v, want NaN", std)
				}
				return
			}
			if mean != tc.mean {
				t.Fatalf("Mean = %v, want %v", mean, tc.mean)
			}
			if std != tc.std {
				t.Fatalf("StdDev = %v, want %v", std, tc.std)
			}
		})
	}
}

// TestCDFDuplicates pins the CDF shape when observations repeat: one
// point per observation, duplicate values ascending in fraction, final
// fraction exactly 1.
func TestCDFDuplicates(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{5, 1, 5, 5, 2} {
		s.Add(v)
	}
	pts := s.CDF()
	if len(pts) != 5 {
		t.Fatalf("CDF has %d points, want one per observation (5)", len(pts))
	}
	wantVals := []float64{1, 2, 5, 5, 5}
	for i, p := range pts {
		if p.Value != wantVals[i] {
			t.Fatalf("point %d value = %v, want %v", i, p.Value, wantVals[i])
		}
		if i > 0 && p.Fraction <= pts[i-1].Fraction {
			t.Fatalf("fractions not strictly increasing at %d: %v then %v",
				i, pts[i-1].Fraction, p.Fraction)
		}
	}
	if last := pts[len(pts)-1].Fraction; last != 1 {
		t.Fatalf("final fraction = %v, want 1", last)
	}
	// The duplicate run means P(v <= 5) = 1 but P(v <= 4.9) = 0.4: check
	// the fraction at the first and last duplicate.
	if pts[2].Fraction != 0.6 || pts[4].Fraction != 1 {
		t.Fatalf("duplicate fractions = %v, %v; want 0.6, 1", pts[2].Fraction, pts[4].Fraction)
	}
	if empty := NewSample().CDF(); len(empty) != 0 {
		t.Fatalf("empty CDF has %d points", len(empty))
	}
}

// TestValuesReturnsSortedCopy checks Values sorts and does not alias the
// internal slice.
func TestValuesReturnsSortedCopy(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	vals := s.Values()
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("Values not sorted: %v", vals)
	}
	vals[0] = 99
	if s.Min() != 1 {
		t.Fatal("mutating Values() result corrupted the sample")
	}
	if got := NewSample().Values(); len(got) != 0 {
		t.Fatalf("empty Values = %v", got)
	}
}

// TestNewTimeSeriesPanicsOnBadWidth pins the constructor contract.
func TestNewTimeSeriesPanicsOnBadWidth(t *testing.T) {
	for _, w := range []sim.Time{0, -sim.Millisecond} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTimeSeries(0, %v) did not panic", w)
				}
			}()
			NewTimeSeries(0, w)
		}()
	}
}

// TestExtendToBeforeStart checks ExtendTo ignores times before the origin.
func TestExtendToBeforeStart(t *testing.T) {
	ts := NewTimeSeries(10*sim.Millisecond, sim.Millisecond)
	ts.ExtendTo(5 * sim.Millisecond)
	if ts.NumBins() != 0 {
		t.Fatalf("ExtendTo before Start materialized %d bins", ts.NumBins())
	}
	ts.ExtendTo(10 * sim.Millisecond)
	if ts.NumBins() != 1 {
		t.Fatalf("ExtendTo(Start) materialized %d bins, want 1", ts.NumBins())
	}
}
