// Package metrics provides the measurement primitives used by the
// experiment harnesses: exact-percentile samples, CDFs, time-binned series,
// and counters. Experiments are offline and deterministic, so we keep every
// sample and compute exact order statistics instead of approximating.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"slingshot/internal/sim"
)

// Sample accumulates float64 observations and reports order statistics.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns an empty sample set.
func NewSample() *Sample { return &Sample{} }

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.values) }

func (s *Sample) sortValues() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank interpolation. It returns NaN on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.sortValues()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Min returns the smallest observation (NaN if empty).
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation (NaN if empty).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Mean returns the arithmetic mean (NaN if empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the population standard deviation (NaN if empty).
func (s *Sample) StdDev() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	var sum float64
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.values)))
}

// Values returns a sorted copy of all observations.
func (s *Sample) Values() []float64 {
	s.sortValues()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// CDF returns (value, cumulative-fraction) points suitable for plotting,
// one point per observation.
func (s *Sample) CDF() []CDFPoint {
	s.sortValues()
	pts := make([]CDFPoint, len(s.values))
	n := float64(len(s.values))
	for i, v := range s.values {
		pts[i] = CDFPoint{Value: v, Fraction: float64(i+1) / n}
	}
	return pts
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// TimeSeries bins observations into fixed-width virtual-time buckets,
// summing within each bucket. It backs the per-10ms throughput plots.
type TimeSeries struct {
	BinWidth sim.Time
	Start    sim.Time
	bins     []float64
	counts   []int
}

// NewTimeSeries creates a series with the given origin and bin width.
func NewTimeSeries(start sim.Time, binWidth sim.Time) *TimeSeries {
	if binWidth <= 0 {
		panic("metrics: non-positive bin width")
	}
	return &TimeSeries{BinWidth: binWidth, Start: start}
}

// Add accumulates v into the bin containing time at. Times before Start are
// ignored.
func (ts *TimeSeries) Add(at sim.Time, v float64) {
	if at < ts.Start {
		return
	}
	idx := int((at - ts.Start) / ts.BinWidth)
	for idx >= len(ts.bins) {
		ts.bins = append(ts.bins, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.bins[idx] += v
	ts.counts[idx]++
}

// ExtendTo ensures bins exist through time t (so trailing zero bins are
// reported even when no observation landed in them).
func (ts *TimeSeries) ExtendTo(t sim.Time) {
	if t < ts.Start {
		return
	}
	idx := int((t - ts.Start) / ts.BinWidth)
	for idx >= len(ts.bins) {
		ts.bins = append(ts.bins, 0)
		ts.counts = append(ts.counts, 0)
	}
}

// NumBins returns the number of materialized bins.
func (ts *TimeSeries) NumBins() int { return len(ts.bins) }

// BinSum returns the accumulated value of bin i.
func (ts *TimeSeries) BinSum(i int) float64 { return ts.bins[i] }

// BinCount returns the number of observations in bin i.
func (ts *TimeSeries) BinCount(i int) int { return ts.counts[i] }

// BinStart returns the start time of bin i.
func (ts *TimeSeries) BinStart(i int) sim.Time {
	return ts.Start + sim.Time(i)*ts.BinWidth
}

// RatePerSecond returns bin i's sum normalized to a per-second rate. For
// byte counts this yields bytes/sec.
func (ts *TimeSeries) RatePerSecond(i int) float64 {
	return ts.bins[i] * float64(sim.Second) / float64(ts.BinWidth)
}

// Mbps interprets bin sums as byte counts and returns megabits/second for
// bin i.
func (ts *TimeSeries) Mbps(i int) float64 {
	return ts.RatePerSecond(i) * 8 / 1e6
}

// Counter is a labeled monotonic event counter.
type Counter struct {
	Name  string
	Value int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Value++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.Value += n }

// Table renders simple aligned text tables for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
