package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

func TestSampleEmpty(t *testing.T) {
	s := NewSample()
	if !math.IsNaN(s.Median()) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.StdDev()) {
		t.Fatal("empty sample should report NaN")
	}
	if s.Count() != 0 {
		t.Fatal("empty sample count != 0")
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %f", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %f", got)
	}
	if got := s.Median(); got != 50.5 {
		t.Errorf("Median = %f, want 50.5", got)
	}
	if got := s.Percentile(99); math.Abs(got-99.01) > 0.02 {
		t.Errorf("P99 = %f", got)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("Mean = %f", got)
	}
}

func TestSamplePercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		s := NewSample()
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCDF(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	pts := s.CDF()
	if len(pts) != 3 {
		t.Fatalf("CDF length %d", len(pts))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Fatal("CDF values not sorted")
	}
	if pts[2].Fraction != 1 {
		t.Fatalf("last CDF fraction = %f", pts[2].Fraction)
	}
	if math.Abs(pts[0].Fraction-1.0/3) > 1e-12 {
		t.Fatalf("first CDF fraction = %f", pts[0].Fraction)
	}
}

func TestSampleStdDev(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %f, want 2", got)
	}
}

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(0, 10*sim.Millisecond)
	ts.Add(1*sim.Millisecond, 100)
	ts.Add(9*sim.Millisecond, 50)
	ts.Add(10*sim.Millisecond, 7)
	ts.Add(25*sim.Millisecond, 3)
	if ts.NumBins() != 3 {
		t.Fatalf("NumBins = %d", ts.NumBins())
	}
	if ts.BinSum(0) != 150 || ts.BinSum(1) != 7 || ts.BinSum(2) != 3 {
		t.Fatalf("bins = %f %f %f", ts.BinSum(0), ts.BinSum(1), ts.BinSum(2))
	}
	if ts.BinCount(0) != 2 {
		t.Fatalf("BinCount(0) = %d", ts.BinCount(0))
	}
	if ts.BinStart(2) != 20*sim.Millisecond {
		t.Fatalf("BinStart(2) = %v", ts.BinStart(2))
	}
}

func TestTimeSeriesIgnoresBeforeStart(t *testing.T) {
	ts := NewTimeSeries(100*sim.Millisecond, 10*sim.Millisecond)
	ts.Add(50*sim.Millisecond, 1)
	if ts.NumBins() != 0 {
		t.Fatal("observation before start created a bin")
	}
}

func TestTimeSeriesRates(t *testing.T) {
	ts := NewTimeSeries(0, 10*sim.Millisecond)
	// 12500 bytes in 10ms = 1.25 MB/s = 10 Mbps.
	ts.Add(5*sim.Millisecond, 12500)
	if got := ts.RatePerSecond(0); math.Abs(got-1.25e6) > 1 {
		t.Fatalf("RatePerSecond = %f", got)
	}
	if got := ts.Mbps(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Mbps = %f", got)
	}
}

func TestTimeSeriesExtendTo(t *testing.T) {
	ts := NewTimeSeries(0, sim.Second)
	ts.ExtendTo(5 * sim.Second)
	if ts.NumBins() != 6 {
		t.Fatalf("NumBins = %d, want 6", ts.NumBins())
	}
	for i := 0; i < 6; i++ {
		if ts.BinSum(i) != 0 {
			t.Fatalf("bin %d not zero", i)
		}
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "drops"}
	c.Inc()
	c.Addn(4)
	if c.Value != 5 {
		t.Fatalf("Counter = %d", c.Value)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"Metric", "1/s"}}
	tab.AddRow("blackouts", "0")
	out := tab.String()
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"Metric", "blackouts", "---"} {
		if !containsStr(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
