package shard

import (
	"fmt"

	"slingshot/internal/chaos"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
)

// Frontier scenarios: the failure profiles the availability-vs-spare
// sweep compares. "independent" is the PR-5 uncorrelated-kill baseline;
// the rest are the correlated families the reliability literature says
// dominate at fleet scale.
var FrontierScenarios = []string{"independent", "rack-loss", "partition", "upgrade-wave"}

// zonesFor picks a rack layout for a fleet: roughly four cells per rack,
// clamped to [2, 8] zones (and never more zones than cells).
func zonesFor(cells int) int {
	z := cells / 4
	if z < 2 {
		z = 2
	}
	if z > 8 {
		z = 8
	}
	if z > cells {
		z = cells
	}
	return z
}

// CorrelatedConfig returns the fleet config for one named failure
// scenario over a zoned topology. The spare budget is left at the
// topology defaults; ApplySpareRatio overrides it for frontier points.
func CorrelatedConfig(scenario string, cells, ues int) (Config, error) {
	cfg := DefaultConfig(cells, ues)
	cfg.Horizon = 400 * sim.Millisecond
	cfg.Settle = 60 * sim.Millisecond
	cfg.Topo = Topology{
		Zones:            zonesFor(cells),
		ZoneSpares:       1,
		OverflowSpares:   2,
		CrossZonePenalty: 4 * phy.TTI,
	}
	cfg.RecoveryDeadline = 40 * sim.Millisecond
	cfg.MaxRetries = 3
	switch scenario {
	case "independent":
		cfg.Kills = (cells + 3) / 4
	case "rack-loss":
		cfg.RackLosses = 1
	case "partition":
		cfg.Partitions = 2
		cfg.PartitionLen = 12 * sim.Millisecond
		cfg.Kills = (cells + 7) / 8
	case "upgrade-wave":
		cfg.UpgradeWaves = 1
		cfg.WaveStride = 25 * sim.Millisecond
		cfg.UpgradeHold = 30 * sim.Millisecond
	default:
		return Config{}, fmt.Errorf("shard: unknown frontier scenario %q", scenario)
	}
	return cfg, nil
}

// ApplySpareRatio replaces the config's spare budget with
// round(ratio·cells) pooled spares, split across zone pools with the
// remainder in the fleet-global overflow pool.
func ApplySpareRatio(cfg *Config, ratio float64) {
	zones := cfg.Topo.zonesIn(cfg.Cells)
	perZone, overflow := SpareBudget(ratio, cfg.Cells, zones)
	cfg.Spares = 0
	cfg.Topo.ZoneSpares = perZone
	cfg.Topo.OverflowSpares = overflow
}

// FrontierSample runs one frontier grid point — scenario × spare ratio ×
// seed — and folds the fleet report into the sweep's sample form.
// horizon ≤ 0 keeps the scenario default; shards ≤ 0 reads
// SLINGSHOT_SHARDS as usual.
func FrontierSample(scenario string, cells, ues, shards int, horizon sim.Time, ratio float64, seed uint64) (chaos.FrontierSample, error) {
	cfg, err := CorrelatedConfig(scenario, cells, ues)
	if err != nil {
		return chaos.FrontierSample{}, err
	}
	cfg.Seed = seed
	cfg.Shards = shards
	if horizon > 0 {
		cfg.Horizon = horizon
	}
	ApplySpareRatio(&cfg, ratio)
	zones := cfg.Topo.zonesIn(cfg.Cells)
	budget := cfg.Topo.ZoneSpares*zones + cfg.Topo.OverflowSpares

	rep, err := Run(cfg)
	if err != nil {
		return chaos.FrontierSample{}, err
	}
	s := chaos.FrontierSample{
		Cells:       cfg.Cells,
		Slots:       uint64(cfg.Horizon / cfg.Step),
		SpareBudget: budget,
		GrantsLocal: rep.GrantsLocal,
		GrantsCross: rep.GrantsCross,
		Denied:      rep.Denials,
		Violations:  rep.Violations,
		Fingerprint: rep.Fingerprint,
	}
	for _, cs := range rep.Cells {
		s.Dropped = append(s.Dropped, cs.Dropped)
		s.Retries += cs.Retries
		if cs.Killed {
			s.Killed++
		}
		if cs.SpareOK {
			s.Respared++
		}
	}
	return s, nil
}
