package shard

import (
	"math"

	"slingshot/internal/sim"
)

// Topology groups the fleet's cells into failure zones (racks behind a
// shared switch). Zones are the blast radius of correlated faults — a
// rack loss kills every active PHY in one zone at once, a switch
// partition defers the zone's mailbox traffic for a window — and the
// home of pooled spare capacity: each zone owns ZoneSpares spares, with
// an optional fleet-global overflow pool granted cross-zone at an extra
// backhaul-latency penalty (the grant has to traverse the aggregation
// switch, as in "Designing Reliable Virtualized RANs").
type Topology struct {
	// Zones is the rack count; cells map to zones contiguously and
	// balanced within one (cell c → zone c*Zones/Cells, mirroring the
	// runner-group partition). 0 or 1 means a flat fleet.
	Zones int

	// ZoneSpares is the spare-PHY budget homed in each zone, granted
	// zone-locally first. OverflowSpares is the fleet-global pool used
	// once a requester's zone is exhausted; overflow grants arrive with
	// CrossZonePenalty extra latency.
	ZoneSpares     int
	OverflowSpares int

	// CrossZonePenalty is added to the grant's delivery latency when the
	// spare comes from the overflow pool instead of the zone pool.
	CrossZonePenalty sim.Time
}

// zonesIn clamps the configured zone count to [1, cells].
func (t Topology) zonesIn(cells int) int {
	z := t.Zones
	if z < 1 {
		z = 1
	}
	if z > cells {
		z = cells
	}
	return z
}

// ZoneOf maps a cell index to its zone under the contiguous balanced
// partition (same arithmetic as the runner-group split, so a zone is
// always a contiguous cell range).
func ZoneOf(cell, cells, zones int) int {
	if cells <= 0 || zones <= 0 {
		return 0
	}
	return cell * zones / cells
}

// ZoneCells returns how many cells land in zone z of a cells/zones fleet.
func ZoneCells(z, cells, zones int) int {
	n := 0
	for c := 0; c < cells; c++ {
		if ZoneOf(c, cells, zones) == z {
			n++
		}
	}
	return n
}

// SpareBudget splits a fleet-wide spare budget of round(ratio·cells)
// into a per-zone share plus a fleet-global overflow remainder. This is
// the knob the frontier sweep turns: ratio 0 means no redundancy at
// all, ratio 1 means one pooled spare per cell.
func SpareBudget(ratio float64, cells, zones int) (perZone, overflow int) {
	if ratio < 0 || cells <= 0 {
		return 0, 0
	}
	if zones < 1 {
		zones = 1
	}
	budget := int(math.Round(ratio * float64(cells)))
	return budget / zones, budget % zones
}

// partWindow is one scheduled switch partition: messages whose source or
// destination cell is in the zone, with delivery time inside [start,
// end), are deferred to end (dropped, for best-effort backhaul load
// reports). Deferral preserves the canonical (At, Src, Seq) drain order
// because Src/Seq are untouched and every shard observes the same
// windows at the same barriers.
type partWindow struct {
	zone       int
	start, end sim.Time
}
