package shard

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"slingshot/internal/chaos"
	"slingshot/internal/core"
	"slingshot/internal/mem"
	"slingshot/internal/par"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
	"slingshot/internal/trace"
)

// Config describes a fleet run. Everything that can change the report is
// here; the shard-group count and worker-pool width are deliberately NOT
// rendered into the report, because the determinism contract says they
// must not matter.
type Config struct {
	// Cells is the fleet size; UEs is the total device count, spread
	// evenly across cells (per-cell count capped at 104 by the carrier's
	// PRB budget).
	Cells int
	UEs   int

	// Shards is the runner-group count: cells are partitioned into this
	// many groups, each advanced by one internal/par worker per lockstep
	// step. 0 reads SLINGSHOT_SHARDS, falling back to GOMAXPROCS. Purely
	// an execution knob — reports are byte-identical for any value.
	Shards int

	// Seed drives every per-cell deployment seed and the fault schedule.
	Seed uint64

	// Horizon is the virtual run length; Step is the lockstep barrier
	// interval (default one TTI). Settle is the fault-free warmup.
	Horizon sim.Time
	Step    sim.Time
	Settle  sim.Time

	// TrafficPeriod/PacketBytes shape the per-UE background load
	// (sequence-stamped packets, checked for in-order delivery).
	TrafficPeriod sim.Time
	PacketBytes   int

	// BackhaulPeriod is the X2 load-report interval per cell;
	// BackhaulLatency is the inter-shard delivery latency (floored at
	// Step — the conservative-synchronization lookahead).
	BackhaulPeriod  sim.Time
	BackhaulLatency sim.Time

	// Fault plan: Kills crashes the active PHY of that many distinct
	// cells (drawn from the seed); each killed cell asks the controller
	// for one of Spares pooled spare PHYs. Migrations is a fleet-wide
	// storm of controller-ordered planned migrations. With a zoned
	// Topology, Spares folds into the pools: zone 0's pool for a flat
	// fleet, the overflow pool otherwise.
	Kills      int
	Spares     int
	Migrations int

	// Topo groups cells into failure zones and homes spare capacity; the
	// zero value is a flat single-zone fleet (PR-5 behavior).
	Topo Topology

	// Correlated fault families, all drawn from the fleet seed's RNG
	// tree at build time so schedules are shard/worker invariant:
	// RackLosses kills every active PHY in that many distinct zones
	// simultaneously; Partitions cuts a zone off the inter-shard fabric
	// for PartitionLen (messages deferred to the window's end, backhaul
	// load reports dropped); UpgradeWaves rolls a maintenance kill
	// across zones with WaveStride between zones, each upgraded server
	// rejoining its zone's spare pool after UpgradeHold.
	RackLosses   int
	Partitions   int
	PartitionLen sim.Time
	UpgradeWaves int
	WaveStride   sim.Time
	UpgradeHold  sim.Time

	// RecoveryDeadline arms per-cell retry/backoff on the spare
	// protocol: a killed cell that is not re-spared within the deadline
	// re-requests, doubling the deadline each attempt, up to MaxRetries
	// extra attempts. 0 disables retries (PR-5 behavior).
	RecoveryDeadline sim.Time
	MaxRetries       int

	// Trace arms a per-cell trace recorder and aggregates every cell's
	// counters into the report (shard-tagged via the fleet registry).
	Trace bool

	// RogueAt, when positive, injects a deliberately out-of-order stamped
	// packet into RogueCell's invariant checker at that virtual time — a
	// deterministic forced violation for exercising the flight recorder
	// and slingshotd's checkpoint auto-replay. Zero (the default) leaves
	// the run untouched: reports are byte-identical to earlier PRs.
	RogueAt   sim.Time
	RogueCell int
}

// maxUEsPerCell keeps every UE at ≥1 PRB under the L2's equal-share
// allocator (dsp.MaxPRB = 106, minus headroom for allocation rounding).
const maxUEsPerCell = 104

// DefaultConfig returns a metro scenario: cells/ues as given, no faults,
// ring backhaul reporting, light per-UE traffic.
func DefaultConfig(cells, ues int) Config {
	return Config{
		Cells:           cells,
		UEs:             ues,
		Seed:            1,
		Horizon:         150 * sim.Millisecond,
		Step:            phy.TTI,
		Settle:          40 * sim.Millisecond,
		TrafficPeriod:   10 * sim.Millisecond,
		PacketBytes:     96,
		BackhaulPeriod:  20 * sim.Millisecond,
		BackhaulLatency: 2 * phy.TTI,
	}
}

// ChaosConfig returns the fleet-chaos scenario: kills across a quarter of
// the fleet contending for a half-sized spare pool, plus a migration
// storm — the §8.2 bound must hold per cell throughout.
func ChaosConfig(cells, ues int) Config {
	cfg := DefaultConfig(cells, ues)
	cfg.Horizon = 300 * sim.Millisecond
	cfg.Kills = (cells + 3) / 4
	cfg.Spares = (cfg.Kills + 1) / 2
	cfg.Migrations = cells / 2
	return cfg
}

// CellStat is one cell's aggregated outcome.
type CellStat struct {
	Cell       int
	Zone       int
	UEs        int
	UL, DL     uint64 // delivered in-order application packets
	BackhaulRx uint64
	HandoverRx uint64
	Digest     uint64 // order-sensitive hash of received messages
	Dropped    uint64 // total dropped TTIs (§8.2 gap sum)
	Active     uint8  // serving PHY server at end of run
	Violations int
	Retries    int // spare re-requests after a missed recovery deadline
	UpgSkipped int // upgrade-kill steps refused for lack of redundancy
	Killed     bool
	SpareOK    bool // granted a pooled spare after its kill
	CrossSpare bool // the grant came from the overflow pool
	Upgraded   bool // took a rolling-upgrade maintenance kill
}

// ZoneStat aggregates one failure zone's outcome, including its
// availability: the fraction of cell·TTI slots not lost to failover
// gaps, the quantity the frontier sweep trades against spare budget.
type ZoneStat struct {
	Zone         int
	Cells        int
	Killed       int
	Respared     int
	GrantsLocal  int
	GrantsCross  int
	Denied       int
	Retries      int
	Dropped      uint64
	Availability float64 // percent of cell·TTI slots served
}

// Report is the deterministic outcome of one fleet run.
type Report struct {
	Cfg          Config
	Cells        []CellStat
	Zones        []ZoneStat
	Faults       []string // build-time correlated fault plan, draw order
	Grants       int      // GrantsLocal + GrantsCross
	GrantsLocal  int
	GrantsCross  int
	Denials      int
	DupReqs      int // retries that raced an in-flight grant
	Released     int // spare units returned to zone pools
	MigrateCmds  int
	UpgradeCmds  int
	PartDeferred uint64 // messages deferred past a partition window
	PartDropped  uint64 // backhaul reports dropped inside a window
	Exchanged    uint64 // inter-shard messages delivered
	Violations   int
	violations   []string
	counters     string // aggregated exposition (Trace only)
	Fingerprint  uint64
}

func (r *Report) body() string {
	var b strings.Builder
	c := r.Cfg
	fmt.Fprintf(&b, "fleet run: cells=%d ues=%d seed=%d horizon=%.3fs step=%dus\n",
		c.Cells, c.UEs, c.Seed, float64(c.Horizon)/float64(sim.Second), int64(c.Step/sim.Microsecond))
	fmt.Fprintf(&b, "fault plan: kills=%d spares=%d migrations=%d settle=%.3fs\n",
		c.Kills, c.Spares, c.Migrations, float64(c.Settle)/float64(sim.Second))
	zones := c.Topo.zonesIn(c.Cells)
	if zones > 1 || c.RackLosses > 0 || c.Partitions > 0 || c.UpgradeWaves > 0 || c.RecoveryDeadline > 0 {
		fmt.Fprintf(&b, "topology: zones=%d zone-spares=%d overflow=%d cross-penalty=%dus\n",
			zones, c.Topo.ZoneSpares, c.Topo.OverflowSpares,
			int64(c.Topo.CrossZonePenalty/sim.Microsecond))
		fmt.Fprintf(&b, "correlated: rack-losses=%d partitions=%d(len=%dus) upgrade-waves=%d(stride=%dus hold=%dus) deadline=%dus retries=%d\n",
			c.RackLosses, c.Partitions, int64(c.PartitionLen/sim.Microsecond),
			c.UpgradeWaves, int64(c.WaveStride/sim.Microsecond), int64(c.UpgradeHold/sim.Microsecond),
			int64(c.RecoveryDeadline/sim.Microsecond), c.MaxRetries)
	}
	for _, fl := range r.Faults {
		fmt.Fprintf(&b, "  fault: %s\n", fl)
	}
	for _, cs := range r.Cells {
		flags := ""
		if cs.Killed {
			flags = " killed"
			if cs.SpareOK {
				flags += "+respared"
				if cs.CrossSpare {
					flags += "-cross"
				}
			}
		}
		if cs.Upgraded {
			flags += " upgraded"
		}
		if cs.UpgSkipped > 0 {
			flags += fmt.Sprintf(" upg-skipped=%d", cs.UpgSkipped)
		}
		if cs.Retries > 0 {
			flags += fmt.Sprintf(" retries=%d", cs.Retries)
		}
		zone := ""
		if zones > 1 {
			zone = fmt.Sprintf("z=%d ", cs.Zone)
		}
		fmt.Fprintf(&b, "cell %4d: %sues=%d ul=%d dl=%d bh=%d ho=%d digest=%016x dropped=%d active=%d viol=%d%s\n",
			cs.Cell, zone, cs.UEs, cs.UL, cs.DL, cs.BackhaulRx, cs.HandoverRx,
			cs.Digest, cs.Dropped, cs.Active, cs.Violations, flags)
	}
	for _, z := range r.Zones {
		fmt.Fprintf(&b, "zone %2d: cells=%d killed=%d respared=%d grants=%d+%d denied=%d retries=%d dropped=%d avail=%.4f%%\n",
			z.Zone, z.Cells, z.Killed, z.Respared, z.GrantsLocal, z.GrantsCross,
			z.Denied, z.Retries, z.Dropped, z.Availability)
	}
	fmt.Fprintf(&b, "controller: grants=%d denials=%d migrate-cmds=%d exchanged=%d\n",
		r.Grants, r.Denials, r.MigrateCmds, r.Exchanged)
	if r.GrantsCross > 0 || r.Released > 0 || r.DupReqs > 0 || r.UpgradeCmds > 0 ||
		r.PartDeferred > 0 || r.PartDropped > 0 {
		fmt.Fprintf(&b, "degradation: grants-local=%d grants-cross=%d released=%d dup-reqs=%d upgrade-cmds=%d deferred=%d dropped-msgs=%d\n",
			r.GrantsLocal, r.GrantsCross, r.Released, r.DupReqs, r.UpgradeCmds,
			r.PartDeferred, r.PartDropped)
	}
	fmt.Fprintf(&b, "violations: %d\n", r.Violations)
	for _, v := range r.violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	b.WriteString(r.counters)
	return b.String()
}

// String renders the report with its fingerprint line. Byte-identical for
// equal configs at any shard-group count and worker-pool width.
func (r *Report) String() string {
	return r.body() + fmt.Sprintf("fingerprint: %016x\n", r.Fingerprint)
}

// Err is non-nil when any cell violated a cross-layer invariant.
func (r *Report) Err() error {
	if r.Violations == 0 {
		return nil
	}
	first := ""
	if len(r.violations) > 0 {
		first = ": " + r.violations[0]
	}
	return fmt.Errorf("shard: fleet seed %d violated %d invariant(s)%s", r.Cfg.Seed, r.Violations, first)
}

const (
	fnvOffset = uint64(0xcbf29ce484222325)
	fnvPrime  = uint64(0x100000001b3)
)

func fnvMix(h uint64, vs ...uint64) uint64 {
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= fnvPrime
		}
	}
	return h
}

func fnvString(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// cellSim is one logical shard: a full single-cell deployment on its own
// engine, plus its outbox and fleet-visible stats. All fields are touched
// only by the goroutine currently stepping the shard (between barriers)
// or by the coordinator (at barriers) — never both at once.
type cellSim struct {
	idx int
	d   *core.Deployment
	eng *sim.Engine
	chk *chaos.Checker
	rec *trace.Recorder

	msgSeq uint64
	out    [][]byte // encoded wire frames accumulated this step

	stat     CellStat
	attempts int      // spare requests sent so far (retry/backoff)
	ulSeq    []uint64 // per-UE stamp sequences (index = UE id - 1)
	dlSeq    []uint64
	cancel   []func()
}

// send encodes one message into the shard's outbox. Runs on the cell's
// engine (any runner goroutine); only this shard touches its outbox.
func (cs *cellSim) send(dst uint16, kind Kind, latency sim.Time, a, b uint64, payload []byte) {
	cs.msgSeq++
	m := Message{
		At:      cs.eng.Now() + latency,
		Src:     uint16(cs.idx),
		Dst:     dst,
		Seq:     cs.msgSeq,
		Kind:    kind,
		A:       a,
		B:       b,
		Payload: payload,
	}
	buf := m.AppendEncode(mem.GetBytesCap(m.EncodedLen()))
	cs.out = append(cs.out, buf)
}

// onMessage handles one delivered inter-shard message on the cell's own
// engine at the message's virtual delivery time.
func (cs *cellSim) onMessage(f *Fleet, m Message) {
	cs.stat.Digest = fnvMix(cs.stat.Digest, uint64(m.Src), m.Seq, uint64(m.Kind), m.A, m.B)
	for _, by := range m.Payload {
		cs.stat.Digest = fnvMix(cs.stat.Digest, uint64(by))
	}
	switch m.Kind {
	case KindBackhaul:
		cs.stat.BackhaulRx++
	case KindHandover:
		cs.stat.HandoverRx++
	case KindSpareGrant:
		cs.onSpareGrant(f, m)
	case KindSpareDeny:
		// Pool exhausted: run unprotected and offload load units to the
		// ring neighbor so the fleet rebalances.
		cs.send(uint16((cs.idx+1)%f.cfg.Cells), KindHandover, f.latency, m.A, 0, nil)
	case KindMigrateCmd:
		// Controller-ordered switch-rule update: plan a zero-downtime
		// migration to the standby. Refusals (dead standby) are fine.
		cs.d.PlannedMigrationOf(cs.d.Cfg.Cell)
	case KindUpgradeKill:
		cs.onUpgradeKill(f)
	}
}

// spareUsable reports whether the cell's local spare slot can still
// absorb a grant: the spare server exists, has not crashed, and is not
// already serving the cell.
func (cs *cellSim) spareUsable() bool {
	spare := cs.d.Cfg.SpareServer
	if spare == 0 {
		return false
	}
	p := cs.d.PHYs[spare]
	if p == nil || p.Crashed() {
		return false
	}
	return cs.d.ActivePHYServerOf(cs.d.Cfg.Cell) != spare
}

// onSpareGrant consumes a pooled-spare grant: reprovision the standby
// from Orion's stored CONFIG (§6.3). A grant the cell cannot use — a
// retry raced an earlier grant, or the spare slot died meanwhile — is
// returned to the pool so capacity is conserved.
func (cs *cellSim) onSpareGrant(f *Fleet, m Message) {
	if !cs.stat.SpareOK && cs.spareUsable() {
		if err := cs.d.ProvisionSpare(cs.d.Cfg.Cell); err == nil {
			cs.stat.SpareOK = true
			cs.stat.CrossSpare = m.B == 1
			return
		}
	}
	cs.send(ControllerID, KindSpareRelease, f.latency, m.A, 0, nil)
}

// onUpgradeKill executes one rolling-upgrade step: only a fully
// redundant cell (healthy active + healthy standby) takes the
// maintenance kill, failing over to the standby within the §8.2 bound;
// the upgraded server rejoins its zone's spare pool after the hold.
// Cells without redundancy skip the step rather than strand their UEs.
func (cs *cellSim) onUpgradeKill(f *Fleet) {
	cell := cs.d.Cfg.Cell
	active := cs.d.ActivePHYServerOf(cell)
	standby := cs.d.L2Orion.StandbyServer(cell)
	ap, sp := cs.d.PHYs[active], cs.d.PHYs[standby]
	if ap == nil || ap.Crashed() || standby == 0 || sp == nil || sp.Crashed() {
		cs.stat.UpgSkipped++
		return
	}
	cs.d.KillServer(active)
	cs.stat.Killed = true
	cs.stat.Upgraded = true
	// The drained server finishes its upgrade after the hold and rejoins
	// the fleet as zone spare capacity.
	cs.send(ControllerID, KindSpareRelease, f.cfg.UpgradeHold, 0, 0, nil)
	cs.requestSpare(f)
}

// requestSpare asks the controller for a pooled spare and, when a
// recovery deadline is configured, arms a backoff timer that re-requests
// (doubling the deadline each attempt) until the cell is re-spared or
// MaxRetries extra attempts are exhausted.
func (cs *cellSim) requestSpare(f *Fleet) {
	if cs.stat.SpareOK || !cs.spareUsable() {
		return
	}
	cs.attempts++
	attempt := cs.attempts
	cs.send(ControllerID, KindSpareRequest, f.latency, uint64(attempt), 0, nil)
	if f.cfg.RecoveryDeadline <= 0 || attempt > f.cfg.MaxRetries {
		return
	}
	wait := f.cfg.RecoveryDeadline << uint(attempt-1)
	cs.eng.After(wait, "fleet.spare-retry", func() {
		if cs.stat.SpareOK {
			return
		}
		cs.stat.Retries++
		cs.requestSpare(f)
	})
}

// Fleet is the sharded multi-cell engine.
type Fleet struct {
	cfg     Config
	latency sim.Time
	cells   []*cellSim
	groups  [][]int
	mbox    Mailbox

	// Zone topology (zones ≥ 1; zoneOf maps cell → zone).
	zones  int
	zoneOf []int
	parts  []partWindow
	faults []string

	// Controller state, touched only at barriers on the coordinator.
	ctlSeq      uint64
	zoneSpares  []int
	overflow    int
	granted     map[uint16]bool
	grantsLocal int
	grantsCross int
	denials     int
	dupReqs     int
	released    int
	zGrantL     []int
	zGrantX     []int
	zDeny       []int
	migPlan     []migCmd
	migPosted   int
	upgPlan     []migCmd
	upgPosted   int
	partDefer   uint64
	partDrop    uint64
	exchanged   uint64
	reg         *trace.Registry

	// Lifecycle for incremental stepping (Start/Step/Finish): now is the
	// last completed barrier, so it is the only virtual time at which the
	// fleet's state is globally consistent and snapshot-safe.
	started  bool
	now      sim.Time
	finished *Report
}

// zoned reports whether this run renders topology/zone lines: any
// multi-zone layout or correlated-fault/deadline knob. Flat PR-5 configs
// keep their exact report shape.
func (c Config) zoned() bool {
	return c.Topo.zonesIn(c.Cells) > 1 || c.RackLosses > 0 || c.Partitions > 0 ||
		c.UpgradeWaves > 0 || c.RecoveryDeadline > 0
}

// faulty reports whether any fault family can kill a PHY, which decides
// whether cells are built with a provisionable spare slot.
func (c Config) faulty() bool {
	return c.Kills > 0 || c.RackLosses > 0 || c.UpgradeWaves > 0
}

type migCmd struct {
	at   sim.Time
	cell int
}

// shardGroups reads SLINGSHOT_SHARDS (the execution knob mirroring
// SLINGSHOT_WORKERS), falling back to GOMAXPROCS.
func shardGroups() int {
	if v := os.Getenv("SLINGSHOT_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// New validates the config and builds the fleet: one deployment per cell,
// faults scheduled, tickers armed. Call Run to execute.
func New(cfg Config) (*Fleet, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("shard: need at least one cell (got %d)", cfg.Cells)
	}
	if cfg.Cells > int(ControllerID) {
		return nil, fmt.Errorf("shard: cell count %d overflows shard id space", cfg.Cells)
	}
	perCell := cfg.UEs / cfg.Cells
	if perCell < 1 {
		return nil, fmt.Errorf("shard: %d UEs over %d cells leaves empty cells", cfg.UEs, cfg.Cells)
	}
	if perCell > maxUEsPerCell {
		return nil, fmt.Errorf("shard: %d UEs/cell exceeds the %d-UE carrier budget", perCell, maxUEsPerCell)
	}
	if cfg.Step <= 0 {
		cfg.Step = phy.TTI
	}
	if cfg.Horizon < cfg.Step {
		return nil, fmt.Errorf("shard: horizon %v shorter than one step %v", cfg.Horizon, cfg.Step)
	}
	if cfg.Settle >= cfg.Horizon {
		// Short metro-smoke horizons: warm up for a quarter of the run.
		cfg.Settle = cfg.Horizon / 4
	}
	if cfg.BackhaulLatency < cfg.Step {
		// The conservative-synchronization lookahead: a message sent
		// during step (T-Δ, T] must not be deliverable before T.
		cfg.BackhaulLatency = cfg.Step
	}
	if cfg.Kills > cfg.Cells {
		cfg.Kills = cfg.Cells
	}
	zones := cfg.Topo.zonesIn(cfg.Cells)
	if cfg.RackLosses > zones {
		cfg.RackLosses = zones
	}
	if cfg.Partitions > 0 && cfg.PartitionLen <= 0 {
		cfg.PartitionLen = 10 * sim.Millisecond
	}
	if cfg.UpgradeWaves > 0 {
		if cfg.WaveStride <= 0 {
			cfg.WaveStride = 20 * sim.Millisecond
		}
		if cfg.UpgradeHold <= 0 {
			cfg.UpgradeHold = 30 * sim.Millisecond
		}
		if cfg.UpgradeHold < cfg.Step {
			// Releases ride the mailbox, so the hold must respect the
			// conservative-synchronization lookahead.
			cfg.UpgradeHold = cfg.Step
		}
	}
	if cfg.RecoveryDeadline > 0 {
		if cfg.RecoveryDeadline < 2*cfg.BackhaulLatency {
			// A deadline shorter than one request/grant round trip would
			// always fire a spurious retry.
			cfg.RecoveryDeadline = 2 * cfg.BackhaulLatency
		}
		if cfg.MaxRetries <= 0 {
			cfg.MaxRetries = 3
		}
	} else {
		cfg.MaxRetries = 0
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = shardGroups()
	}
	if shards > cfg.Cells {
		shards = cfg.Cells
	}

	f := &Fleet{cfg: cfg, latency: cfg.BackhaulLatency, zones: zones}
	if cfg.Trace {
		f.reg = trace.NewRegistry()
	}

	// Zone layout and spare pools. The legacy flat Spares budget folds
	// into zone 0 for a single-zone fleet (those grants stay "local") and
	// into the cross-zone overflow pool otherwise.
	f.zoneOf = make([]int, cfg.Cells)
	for i := range f.zoneOf {
		f.zoneOf[i] = ZoneOf(i, cfg.Cells, zones)
	}
	f.zoneSpares = make([]int, zones)
	for z := range f.zoneSpares {
		f.zoneSpares[z] = cfg.Topo.ZoneSpares
	}
	f.overflow = cfg.Topo.OverflowSpares
	if zones == 1 {
		f.zoneSpares[0] += cfg.Spares
	} else {
		f.overflow += cfg.Spares
	}
	f.granted = make(map[uint16]bool)
	f.zGrantL = make([]int, zones)
	f.zGrantX = make([]int, zones)
	f.zDeny = make([]int, zones)

	// Partition cells into contiguous runner groups (balanced within 1).
	f.groups = make([][]int, shards)
	for i := 0; i < cfg.Cells; i++ {
		g := i * shards / cfg.Cells
		f.groups[g] = append(f.groups[g], i)
	}

	root := sim.NewRNG(cfg.Seed ^ 0x5417AD0F1EE7C311)
	killRNG := root.Fork(1)
	migRNG := root.Fork(2)
	rackRNG := root.Fork(3)
	waveRNG := root.Fork(4)
	partRNG := root.Fork(5)

	for i := 0; i < cfg.Cells; i++ {
		f.cells = append(f.cells, f.buildCell(i, perCell))
	}

	// Kills hit distinct cells at seed-drawn times inside the fault
	// window; each killed cell asks the controller for a pooled spare.
	if cfg.Kills > 0 {
		lo, hi := cfg.Settle, cfg.Horizon-60*sim.Millisecond
		if hi <= lo {
			hi = lo + 10*sim.Millisecond
		}
		perm := killRNG.Perm(cfg.Cells)
		for k := 0; k < cfg.Kills; k++ {
			cs := f.cells[perm[k]]
			t := lo + sim.Time(killRNG.Float64()*float64(hi-lo))
			cs.eng.At(t, "fleet.kill", func() { f.execKill(cs) })
		}
	}

	// Migration storm: controller-ordered planned migrations, posted
	// through the mailbox at their due barrier.
	if cfg.Migrations > 0 {
		lo, hi := cfg.Settle, cfg.Horizon-40*sim.Millisecond
		if hi <= lo {
			hi = lo + 10*sim.Millisecond
		}
		for k := 0; k < cfg.Migrations; k++ {
			f.migPlan = append(f.migPlan, migCmd{
				at:   lo + sim.Time(migRNG.Float64()*float64(hi-lo)),
				cell: migRNG.Intn(cfg.Cells),
			})
		}
		sort.Slice(f.migPlan, func(a, b int) bool {
			if f.migPlan[a].at != f.migPlan[b].at {
				return f.migPlan[a].at < f.migPlan[b].at
			}
			return f.migPlan[a].cell < f.migPlan[b].cell
		})
	}

	// Rack losses: each hits one distinct zone, killing every active PHY
	// in the zone at the same instant — the correlated case pooled
	// spares exist for.
	if cfg.RackLosses > 0 {
		lo, hi := cfg.Settle, cfg.Horizon-80*sim.Millisecond
		if hi <= lo {
			hi = lo + 10*sim.Millisecond
		}
		perm := rackRNG.Perm(zones)
		for k := 0; k < cfg.RackLosses; k++ {
			z := perm[k]
			t := lo + sim.Time(rackRNG.Float64()*float64(hi-lo))
			f.faults = append(f.faults, fmt.Sprintf("rack-loss zone=%d at=%dus", z, int64(t/sim.Microsecond)))
			for _, cs := range f.cells {
				if f.zoneOf[cs.idx] != z {
					continue
				}
				cs := cs
				cs.eng.At(t, "fleet.rack-loss", func() { f.execKill(cs) })
			}
		}
	}

	// Switch partitions: a zone falls off the inter-shard fabric for a
	// window. Deferral happens at drain time (see exchange), so the
	// schedule only needs the windows.
	if cfg.Partitions > 0 {
		lo, hi := cfg.Settle, cfg.Horizon-cfg.PartitionLen-40*sim.Millisecond
		if hi <= lo {
			hi = lo + 10*sim.Millisecond
		}
		for k := 0; k < cfg.Partitions; k++ {
			z := partRNG.Intn(zones)
			t := lo + sim.Time(partRNG.Float64()*float64(hi-lo))
			f.parts = append(f.parts, partWindow{zone: z, start: t, end: t + cfg.PartitionLen})
			f.faults = append(f.faults, fmt.Sprintf("partition zone=%d window=[%dus,%dus)",
				z, int64(t/sim.Microsecond), int64((t+cfg.PartitionLen)/sim.Microsecond)))
		}
	}

	// Rolling upgrade waves: zone z's cells take their maintenance kill
	// at start + z·stride, posted through the mailbox like migration
	// commands (so a partitioned zone's upgrade defers to the heal).
	if cfg.UpgradeWaves > 0 {
		span := sim.Time(zones) * cfg.WaveStride
		lo, hi := cfg.Settle, cfg.Horizon-span-120*sim.Millisecond
		if hi <= lo {
			hi = lo + 10*sim.Millisecond
		}
		for w := 0; w < cfg.UpgradeWaves; w++ {
			start := lo + sim.Time(waveRNG.Float64()*float64(hi-lo))
			f.faults = append(f.faults, fmt.Sprintf("upgrade-wave start=%dus stride=%dus",
				int64(start/sim.Microsecond), int64(cfg.WaveStride/sim.Microsecond)))
			for ci := 0; ci < cfg.Cells; ci++ {
				f.upgPlan = append(f.upgPlan, migCmd{at: start + sim.Time(f.zoneOf[ci])*cfg.WaveStride, cell: ci})
			}
		}
		sort.Slice(f.upgPlan, func(a, b int) bool {
			if f.upgPlan[a].at != f.upgPlan[b].at {
				return f.upgPlan[a].at < f.upgPlan[b].at
			}
			return f.upgPlan[a].cell < f.upgPlan[b].cell
		})
	}

	// Forced violation: feed the checker a stamped packet pair whose
	// sequence runs backwards on a flow id no real UE uses, so exactly one
	// deterministic rlc-order violation latches (arming the flight
	// recorder) without perturbing any real traffic stream.
	if cfg.RogueAt > 0 {
		if cfg.RogueCell < 0 || cfg.RogueCell >= cfg.Cells {
			return nil, fmt.Errorf("shard: rogue cell %d outside fleet of %d", cfg.RogueCell, cfg.Cells)
		}
		cs := f.cells[cfg.RogueCell]
		f.faults = append(f.faults, fmt.Sprintf("rogue cell=%d at=%dus", cfg.RogueCell, int64(cfg.RogueAt/sim.Microsecond)))
		cs.eng.At(cfg.RogueAt, "fleet.rogue", func() {
			const rogueFlow = uint16(0xFFFE)
			cs.chk.ObserveUplink(rogueFlow, chaos.TrafficPacket(false, rogueFlow, 2, 32))
			cs.chk.ObserveUplink(rogueFlow, chaos.TrafficPacket(false, rogueFlow, 1, 32))
		})
	}
	return f, nil
}

// buildCell constructs one logical shard: a single-cell deployment whose
// seed tree, cell scrambling seed and UE population derive only from the
// fleet seed and the cell index.
func (f *Fleet) buildCell(idx, perCell int) *cellSim {
	ccfg := core.DefaultConfig()
	ccfg.Seed = f.cfg.Seed*0x9E3779B97F4A7C15 + uint64(idx+1)
	ccfg.Cell = 0
	ccfg.CellSeed = 0x517E ^ uint64(idx)*0x1001
	if f.cfg.faulty() {
		ccfg.SpareServer = 3
	}
	ccfg.UEs = nil
	for j := 0; j < perCell; j++ {
		ccfg.UEs = append(ccfg.UEs, core.UESpec{
			ID:        uint16(j + 1),
			Name:      fmt.Sprintf("c%d-u%d", idx, j+1),
			MeanSNRdB: 16 + float64((7*idx+13*j)%12),
		})
	}
	if f.cfg.Trace {
		ccfg.Trace = trace.NewRecorder(512)
	}

	d := core.NewSlingshot(ccfg)
	cs := &cellSim{
		idx:   idx,
		d:     d,
		eng:   d.Engine,
		rec:   ccfg.Trace,
		ulSeq: make([]uint64, perCell),
		dlSeq: make([]uint64, perCell),
		stat:  CellStat{Cell: idx, Zone: f.zoneOf[idx], UEs: perCell},
	}
	cs.chk = chaos.Attach(d)

	// Delivered-traffic sinks feed the invariant checker and the stats.
	d.OnUplink(func(ueID uint16, pkt []byte) {
		cs.chk.ObserveUplink(ueID, pkt)
		cs.stat.UL++
	})
	for j := 0; j < perCell; j++ {
		u := d.UEs[uint16(j+1)]
		uid := uint16(j + 1)
		inner := u.OnDownlink
		u.OnDownlink = func(pkt []byte) {
			cs.chk.ObserveDownlink(uid, pkt)
			cs.stat.DL++
			if inner != nil {
				inner(pkt)
			}
		}
	}

	// Background traffic: one stamped UL+DL packet per UE per period,
	// stopping early so tails drain before the horizon.
	if f.cfg.TrafficPeriod > 0 {
		// Stop traffic before the horizon so in-flight tails drain; short
		// metro-smoke horizons scale the margin down.
		drain := f.cfg.Horizon / 5
		if drain > 30*sim.Millisecond {
			drain = 30 * sim.Millisecond
		}
		stopAt := f.cfg.Horizon - drain
		var tick func()
		tick = func() {
			for j := 0; j < perCell; j++ {
				id := uint16(j + 1)
				cs.ulSeq[j]++
				d.UEs[id].SendUplink(chaos.TrafficPacket(false, id, cs.ulSeq[j], f.cfg.PacketBytes))
				cs.dlSeq[j]++
				d.SendDownlink(id, chaos.TrafficPacket(true, id, cs.dlSeq[j], f.cfg.PacketBytes))
			}
			if cs.eng.Now()+f.cfg.TrafficPeriod < stopAt {
				cs.eng.After(f.cfg.TrafficPeriod, "fleet.traffic", tick)
			}
		}
		cs.eng.At(f.cfg.Settle, "fleet.traffic", tick)
	}

	// Ring backhaul: periodic load reports to the next cell. The phase
	// offset staggers cells so a barrier never sees a thundering herd.
	if f.cfg.BackhaulPeriod > 0 && f.cfg.Cells > 1 {
		dst := uint16((idx + 1) % f.cfg.Cells)
		phase := sim.Time(idx%16) * 31 * sim.Microsecond
		cancel := cs.eng.Every(f.cfg.Settle+phase, f.cfg.BackhaulPeriod, "fleet.backhaul", func() {
			var load [8]byte
			putU64(load[:], cs.stat.UL+cs.stat.DL)
			cs.send(dst, KindBackhaul, f.latency, cs.stat.UL, cs.stat.DL, load[:])
		})
		cs.cancel = append(cs.cancel, cancel)
	}
	return cs
}

// execKill crashes the cell's active PHY (in-switch detection fails the
// cell over to its standby) and asks the controller for a pooled spare to
// restore redundancy.
func (f *Fleet) execKill(cs *cellSim) {
	active := cs.d.ActivePHYServerOf(cs.d.Cfg.Cell)
	p := cs.d.PHYs[active]
	if p == nil || p.Crashed() {
		return
	}
	cs.d.KillServer(active)
	cs.stat.Killed = true
	cs.requestSpare(f)
}

// post enqueues one controller-originated message.
func (f *Fleet) post(dst uint16, kind Kind, at sim.Time, a, b uint64) {
	f.ctlSeq++
	f.mbox.Post(Message{At: at, Src: ControllerID, Dst: dst, Seq: f.ctlSeq, Kind: kind, A: a, B: b})
}

// exchange is the barrier step: collect every shard's outbox in cell
// order, decode the wire frames into the mailbox, post due controller
// commands, then drain everything due before `next` in (At, Src, Seq)
// order — scheduling deliveries on the destination engines. Runs only on
// the coordinator goroutine, with every shard parked at time `now`.
func (f *Fleet) exchange(now, next sim.Time) error {
	for _, cs := range f.cells {
		for _, frame := range cs.out {
			m, err := DecodePooled(frame)
			mem.PutBytes(frame)
			if err != nil {
				return fmt.Errorf("shard: cell %d produced an undecodable frame: %w", cs.idx, err)
			}
			if m.At <= now {
				return fmt.Errorf("shard: message %v violates the lookahead (barrier at %v)", m, now)
			}
			f.mbox.Post(m)
		}
		cs.out = cs.out[:0]
	}

	// Controller: migration-storm and upgrade-wave commands fall due on
	// the barrier grid.
	for f.migPosted < len(f.migPlan) && f.migPlan[f.migPosted].at <= now {
		cmd := f.migPlan[f.migPosted]
		f.migPosted++
		f.post(uint16(cmd.cell), KindMigrateCmd, now+f.latency, 0, 0)
	}
	for f.upgPosted < len(f.upgPlan) && f.upgPlan[f.upgPosted].at <= now {
		cmd := f.upgPlan[f.upgPosted]
		f.upgPosted++
		f.post(uint16(cmd.cell), KindUpgradeKill, now+f.latency, 0, 0)
	}

	f.mbox.DrainUpTo(next, func(m Message) {
		// Switch partition: a message touching a partitioned zone inside
		// its window is deferred to the heal (best-effort backhaul load
		// reports are dropped outright). Re-posting with only At changed
		// keeps the canonical (At, Src, Seq) order shard-invariant, and
		// the window end is strictly after `now`, so conservative
		// synchronization still holds.
		if w := f.partitionAt(m); w != nil {
			if m.Kind == KindBackhaul {
				f.partDrop++
				mem.PutBytes(m.Payload)
				return
			}
			f.partDefer++
			held := m
			held.At = w.end
			f.mbox.Post(held)
			return
		}
		f.exchanged++
		if m.Dst == ControllerID {
			f.handleControl(m)
			mem.PutBytes(m.Payload)
			return
		}
		if int(m.Dst) >= len(f.cells) {
			mem.PutBytes(m.Payload)
			return // fuzz-grade safety; the fleet never addresses outside itself
		}
		dst := f.cells[m.Dst]
		held := m
		dst.eng.At(m.At, "fleet.deliver", func() {
			dst.onMessage(f, held)
			// The handlers digest the payload but never retain it; the
			// pooled copy DecodePooled leased goes back at delivery.
			mem.PutBytes(held.Payload)
		})
	})
	return nil
}

// partitionAt returns the partition window blocking m at its delivery
// time, or nil. The controller sits outside every zone, so only the
// cell-side endpoint decides; the window is half-open, so a deferred
// message delivers at the heal instant without re-deferring.
func (f *Fleet) partitionAt(m Message) *partWindow {
	for i := range f.parts {
		w := &f.parts[i]
		if m.At < w.start || m.At >= w.end {
			continue
		}
		if f.cellZone(m.Src) == w.zone || f.cellZone(m.Dst) == w.zone {
			return w
		}
	}
	return nil
}

// cellZone maps a shard id to its zone, or -1 for the controller and
// out-of-range ids.
func (f *Fleet) cellZone(id uint16) int {
	if int(id) >= len(f.zoneOf) {
		return -1
	}
	return f.zoneOf[id]
}

// handleControl processes one controller-bound message at the barrier.
// Requests drain in canonical (At, Src, Seq) order, so pool allocation —
// including two zones racing for the last overflow spare — is
// deterministic. Graceful degradation: zone-local grant first, overflow
// grant with the cross-zone penalty, deny last (the cell then offloads
// via ring handover).
func (f *Fleet) handleControl(m Message) {
	switch m.Kind {
	case KindSpareRequest:
		z := f.cellZone(m.Src)
		if z < 0 {
			return
		}
		if f.granted[m.Src] {
			// A backoff retry raced the in-flight (or consumed) grant;
			// granting again would leak pool capacity.
			f.dupReqs++
			return
		}
		switch {
		case f.zoneSpares[z] > 0:
			f.zoneSpares[z]--
			f.grantsLocal++
			f.zGrantL[z]++
			f.granted[m.Src] = true
			f.post(m.Src, KindSpareGrant, m.At+f.latency, m.A, 0)
		case f.overflow > 0:
			f.overflow--
			f.grantsCross++
			f.zGrantX[z]++
			f.granted[m.Src] = true
			f.post(m.Src, KindSpareGrant, m.At+f.latency+f.cfg.Topo.CrossZonePenalty, m.A, 1)
		default:
			f.denials++
			f.zDeny[z]++
			f.post(m.Src, KindSpareDeny, m.At+f.latency, m.A, 0)
		}
	case KindSpareRelease:
		z := f.cellZone(m.Src)
		if z < 0 {
			return
		}
		f.released++
		f.zoneSpares[z]++
		// An upgraded (or returned) server is fresh capacity: the source
		// may legitimately need a spare again later.
		delete(f.granted, m.Src)
	}
}

// Start boots every cell's deployment. Idempotent; Step calls it lazily,
// so existing Run callers see no change.
func (f *Fleet) Start() {
	if f.started {
		return
	}
	f.started = true
	for _, cs := range f.cells {
		cs.d.Start()
	}
}

// Step advances the fleet one lockstep barrier: every shard runs to the
// next barrier time (one internal/par task per runner group), then the
// coordinator exchanges messages. Workers never outlive the barrier, so
// virtual time is globally consistent — and the fleet snapshot-safe —
// exactly when Step returns. done reports the horizon was reached.
func (f *Fleet) Step() (done bool, err error) {
	f.Start()
	if f.now >= f.cfg.Horizon {
		return true, nil
	}
	t := f.now + f.cfg.Step
	if t > f.cfg.Horizon {
		t = f.cfg.Horizon
	}
	par.ForEach(len(f.groups), func(g int) {
		for _, ci := range f.groups[g] {
			f.cells[ci].eng.RunUntil(t)
		}
	})
	if err := f.exchange(t, t+f.cfg.Step); err != nil {
		return false, err
	}
	f.now = t
	return t == f.cfg.Horizon, nil
}

// Finish stops every cell, runs the end-of-schedule invariant checks, and
// finalizes the report. Idempotent: the first call's report is cached.
func (f *Fleet) Finish() *Report {
	if f.finished != nil {
		return f.finished
	}
	for _, cs := range f.cells {
		cs.d.Stop()
		cs.chk.Finish()
	}
	f.finished = f.report()
	return f.finished
}

// Now returns the last completed barrier time.
func (f *Fleet) Now() sim.Time { return f.now }

// Config returns the (normalized) fleet configuration.
func (f *Fleet) Config() Config { return f.cfg }

// ViolationsLive sums every cell's invariant-violation count so far,
// without finalizing the run — the resident server's watch signal.
func (f *Fleet) ViolationsLive() int {
	n := 0
	for _, cs := range f.cells {
		n += cs.chk.Total
	}
	return n
}

// FlightDumps returns each cell's flight-recorder dump (empty string for
// cells that never violated), indexed by cell.
func (f *Fleet) FlightDumps() []string {
	out := make([]string, len(f.cells))
	for i, cs := range f.cells {
		out[i] = cs.chk.Flight()
	}
	return out
}

// Faults returns a copy of the build-time fault plan (draw order), so a
// resident server can report it before the run finishes.
func (f *Fleet) Faults() []string {
	return append([]string(nil), f.faults...)
}

// MergedMetrics folds every cell's counter registry into a fresh one
// (shard-tagged like the report's exposition). Nil when Trace is off.
func (f *Fleet) MergedMetrics() *trace.Registry {
	if !f.cfg.Trace {
		return nil
	}
	reg := trace.NewRegistry()
	for _, cs := range f.cells {
		reg.MergeFrom(cs.rec.Metrics())
		reg.Counter(fmt.Sprintf("fleet.shard%04d.events", cs.idx)).Add(cs.rec.Total())
	}
	return reg
}

// Run executes the whole fleet to the horizon and returns its report.
func (f *Fleet) Run() (*Report, error) {
	for {
		done, err := f.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return f.Finish(), nil
		}
	}
}

// report finalizes per-cell stats into the deterministic fleet report.
func (f *Fleet) report() *Report {
	r := &Report{
		Cfg:          f.cfg,
		Faults:       f.faults,
		Grants:       f.grantsLocal + f.grantsCross,
		GrantsLocal:  f.grantsLocal,
		GrantsCross:  f.grantsCross,
		Denials:      f.denials,
		DupReqs:      f.dupReqs,
		Released:     f.released,
		MigrateCmds:  f.migPosted,
		UpgradeCmds:  f.upgPosted,
		PartDeferred: f.partDefer,
		PartDropped:  f.partDrop,
		Exchanged:    f.exchanged,
	}
	for _, cs := range f.cells {
		st := cs.stat
		st.Dropped = cs.chk.DroppedTTIs(cs.d.Cfg.Cell)
		st.Active = cs.d.ActivePHYServerOf(cs.d.Cfg.Cell)
		st.Violations = cs.chk.Total
		r.Violations += cs.chk.Total
		for _, v := range cs.chk.Violations() {
			if len(r.violations) < 64 {
				r.violations = append(r.violations, fmt.Sprintf("cell %d: %s", cs.idx, v))
			}
		}
		r.Cells = append(r.Cells, st)
		if f.reg != nil {
			// Shard-tagged aggregation: per-cell counters fold into the
			// fleet registry (summed by name), and each shard's emission
			// volume lands under a per-shard tag.
			f.reg.MergeFrom(cs.rec.Metrics())
			f.reg.Counter(fmt.Sprintf("fleet.shard%04d.events", cs.idx)).Add(cs.rec.Total())
		}
	}
	if f.reg != nil {
		r.counters = f.reg.Exposition()
	}
	if f.cfg.zoned() {
		r.Zones = f.zoneStats(r)
	}
	r.Fingerprint = fnvString(r.body())
	return r
}

// zoneStats folds per-cell outcomes into per-zone aggregates. Zone
// availability is the served fraction of the zone's cell·TTI budget —
// dropped TTIs are the §8.2 failover-gap sums the checker measured.
func (f *Fleet) zoneStats(r *Report) []ZoneStat {
	slots := uint64(f.cfg.Horizon / f.cfg.Step)
	zs := make([]ZoneStat, f.zones)
	for z := range zs {
		zs[z] = ZoneStat{Zone: z, GrantsLocal: f.zGrantL[z], GrantsCross: f.zGrantX[z], Denied: f.zDeny[z]}
	}
	for _, st := range r.Cells {
		z := &zs[st.Zone]
		z.Cells++
		z.Dropped += st.Dropped
		z.Retries += st.Retries
		if st.Killed {
			z.Killed++
		}
		if st.SpareOK {
			z.Respared++
		}
	}
	for z := range zs {
		total := uint64(zs[z].Cells) * slots
		if total > 0 {
			zs[z].Availability = 100 * (1 - float64(zs[z].Dropped)/float64(total))
		}
	}
	return zs
}

// CellReports renders each cell's outcome as a chaos.Report so fleet
// soaks plug into chaos.SoakReports and report per-cell fingerprints.
func (f *Fleet) CellReports(rep *Report) []*chaos.Report {
	out := make([]*chaos.Report, 0, len(f.cells))
	for i, cs := range f.cells {
		// Zone-tagged profiles give SoakReports a per-zone breakdown when
		// the fleet has a real topology; flat fleets keep the PR-5 names.
		profile := fmt.Sprintf("fleet-cell%d", i)
		if f.zones > 1 {
			profile = fmt.Sprintf("fleet-z%d-cell%d", f.zoneOf[i], i)
		}
		cr := &chaos.Report{
			Seed:            f.cfg.Seed,
			Profile:         profile,
			Horizon:         f.cfg.Horizon,
			Violations:      cs.chk.Violations(),
			TotalViolations: cs.chk.Total,
			Dropped:         []chaos.CellDrop{{Cell: uint16(i), Dropped: rep.Cells[i].Dropped}},
		}
		for j := 0; j < rep.Cells[i].UEs; j++ {
			ul, dl := cs.chk.Delivered(uint16(j + 1))
			cr.Flows = append(cr.Flows, chaos.FlowStat{UE: uint16(j + 1), UL: ul, DL: dl})
		}
		cr.Finalize()
		out = append(out, cr)
	}
	return out
}

// Run builds and executes a fleet in one call.
func Run(cfg Config) (*Report, error) {
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return f.Run()
}
