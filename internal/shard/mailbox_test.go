package shard

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

// keyLess is the canonical (At, Src, Seq) order the mailbox promises.
func keyLess(a, b Message) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// TestMailboxDrainOrderProperty: ANY interleaving of posts across shards
// drains in (At, Src, Seq) order — the quick generator draws random
// batches with deliberately colliding times and sources.
func TestMailboxDrainOrderProperty(t *testing.T) {
	prop := func(raw []uint32, order int64) bool {
		var mb Mailbox
		want := make([]Message, 0, len(raw))
		for i, v := range raw {
			m := Message{
				// Narrow ranges force At/Src collisions so the tiebreaks
				// actually engage.
				At:   sim.Time(v % 7),
				Src:  uint16(v / 7 % 5),
				Seq:  uint64(i), // unique → total order is strict
				Kind: KindBackhaul,
				A:    uint64(v),
			}
			want = append(want, m)
		}
		// Post in an order unrelated to the key order.
		perm := rand.New(rand.NewSource(order)).Perm(len(want))
		for _, i := range perm {
			mb.Post(want[i])
		}
		sort.SliceStable(want, func(i, j int) bool { return keyLess(want[i], want[j]) })

		var got []Message
		n := mb.DrainUpTo(sim.Time(1<<62), func(m Message) { got = append(got, m) })
		if n != len(want) || mb.Pending() != 0 {
			return false
		}
		for i := range want {
			if got[i].At != want[i].At || got[i].Src != want[i].Src || got[i].Seq != want[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMailboxDeadlineProperty: DrainUpTo delivers exactly the messages
// with At ≤ deadline and leaves the rest queued, still in order.
func TestMailboxDeadlineProperty(t *testing.T) {
	prop := func(raw []uint16, deadline uint8) bool {
		var mb Mailbox
		due, later := 0, 0
		for i, v := range raw {
			at := sim.Time(v % 50)
			if at <= sim.Time(deadline) {
				due++
			} else {
				later++
			}
			mb.Post(Message{At: at, Src: uint16(v % 3), Seq: uint64(i), Kind: KindHandover})
		}
		var maxAt sim.Time = -1 << 62
		n := mb.DrainUpTo(sim.Time(deadline), func(m Message) {
			if m.At > sim.Time(deadline) || m.At < maxAt {
				t.Errorf("drained %v past deadline %d or out of order", m, deadline)
			}
			if m.At > maxAt {
				maxAt = m.At
			}
		})
		if n != due || mb.Pending() != later {
			return false
		}
		// The remainder drains too, in order.
		rest := mb.DrainUpTo(sim.Time(1<<62), func(Message) {})
		return rest == later && mb.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxEmptyDrain(t *testing.T) {
	var mb Mailbox
	if n := mb.DrainUpTo(1<<40, func(Message) { t.Fatal("delivered from empty mailbox") }); n != 0 {
		t.Fatalf("empty drain returned %d", n)
	}
	if mb.Pending() != 0 {
		t.Fatalf("empty mailbox pending %d", mb.Pending())
	}
}

// TestMailboxDuplicateTick: duplicate (At, Src, Seq) keys — only a buggy
// or fuzzing producer makes them — are all delivered, adjacently.
func TestMailboxDuplicateTick(t *testing.T) {
	var mb Mailbox
	dup := Message{At: 5, Src: 2, Seq: 9, Kind: KindBackhaul}
	mb.Post(Message{At: 5, Src: 3, Seq: 1, Kind: KindBackhaul})
	mb.Post(dup)
	mb.Post(dup)
	mb.Post(Message{At: 4, Src: 9, Seq: 7, Kind: KindBackhaul})

	var got []Message
	if n := mb.DrainUpTo(5, func(m Message) { got = append(got, m) }); n != 4 {
		t.Fatalf("drained %d of 4", n)
	}
	wantSrc := []uint16{9, 2, 2, 3}
	for i, m := range got {
		if m.Src != wantSrc[i] {
			t.Fatalf("position %d: src %d, want %d (order %v)", i, m.Src, wantSrc[i], got)
		}
	}
}

// TestMailboxPostDuringDrain: a message posted from inside the drain
// callback participates immediately when due, stays queued when not —
// the controller-reply path.
func TestMailboxPostDuringDrain(t *testing.T) {
	var mb Mailbox
	mb.Post(Message{At: 1, Src: 0, Seq: 1, Kind: KindSpareRequest})
	var seen []Kind
	n := mb.DrainUpTo(10, func(m Message) {
		seen = append(seen, m.Kind)
		if m.Kind == KindSpareRequest {
			// A due reply and a future one.
			mb.Post(Message{At: 3, Src: ControllerID, Seq: 1, Kind: KindSpareGrant})
			mb.Post(Message{At: 99, Src: ControllerID, Seq: 2, Kind: KindSpareDeny})
		}
	})
	if n != 2 || len(seen) != 2 || seen[0] != KindSpareRequest || seen[1] != KindSpareGrant {
		t.Fatalf("drain saw %v (n=%d)", seen, n)
	}
	if mb.Pending() != 1 {
		t.Fatalf("future reply not retained (pending %d)", mb.Pending())
	}
}
