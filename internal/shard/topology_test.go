package shard

import (
	"strings"
	"testing"

	"slingshot/internal/sim"
)

func TestZoneMappingContiguousBalanced(t *testing.T) {
	for _, tc := range []struct{ cells, zones int }{
		{8, 2}, {8, 4}, {10, 3}, {100, 8}, {5, 5}, {7, 1},
	} {
		last := 0
		counts := make([]int, tc.zones)
		for c := 0; c < tc.cells; c++ {
			z := ZoneOf(c, tc.cells, tc.zones)
			if z < last {
				t.Fatalf("cells=%d zones=%d: zone not monotone at cell %d", tc.cells, tc.zones, c)
			}
			if z < 0 || z >= tc.zones {
				t.Fatalf("cells=%d zones=%d: cell %d → zone %d out of range", tc.cells, tc.zones, c, z)
			}
			last = z
			counts[z]++
		}
		min, max := tc.cells, 0
		for z, n := range counts {
			if n != ZoneCells(z, tc.cells, tc.zones) {
				t.Fatalf("ZoneCells(%d,%d,%d) = %d, counted %d", z, tc.cells, tc.zones, ZoneCells(z, tc.cells, tc.zones), n)
			}
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("cells=%d zones=%d: unbalanced zones %v", tc.cells, tc.zones, counts)
		}
	}
}

func TestSpareBudgetSplit(t *testing.T) {
	for _, tc := range []struct {
		ratio             float64
		cells, zones      int
		perZone, overflow int
	}{
		{0, 8, 2, 0, 0},
		{0.25, 8, 2, 1, 0},
		{0.5, 8, 2, 2, 0},
		{1, 8, 2, 4, 0},
		{0.5, 10, 4, 1, 1},
		{1, 7, 3, 2, 1},
		{-1, 8, 2, 0, 0},
	} {
		pz, of := SpareBudget(tc.ratio, tc.cells, tc.zones)
		if pz != tc.perZone || of != tc.overflow {
			t.Fatalf("SpareBudget(%v,%d,%d) = %d,%d want %d,%d",
				tc.ratio, tc.cells, tc.zones, pz, of, tc.perZone, tc.overflow)
		}
	}
}

// rackLossConfig is the acceptance scenario: one full-zone rack loss
// over a 2-zone fleet, spare budget set by ratio.
func rackLossConfig(t *testing.T, ratio float64) Config {
	t.Helper()
	cfg, err := CorrelatedConfig("rack-loss", 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 11
	ApplySpareRatio(&cfg, ratio)
	return cfg
}

// TestRackLossRecovery: with zone spares ≥ zone cells, every cell in the
// lost rack recovers within the §8.2 bound (≤3 dropped TTIs each,
// chaos.Checker-enforced) from its own zone's pool.
func TestRackLossRecovery(t *testing.T) {
	cfg := rackLossConfig(t, 1) // 8 spares over 2 zones: 4 ≥ zone cells
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("invariant violations under rack loss:\n%s", rep.String())
	}
	killed, zone := 0, -1
	for _, cs := range rep.Cells {
		if !cs.Killed {
			if cs.Dropped != 0 {
				t.Fatalf("unkilled cell %d dropped %d TTIs", cs.Cell, cs.Dropped)
			}
			continue
		}
		killed++
		if zone == -1 {
			zone = cs.Zone
		}
		if cs.Zone != zone {
			t.Fatalf("rack loss spread over zones %d and %d", zone, cs.Zone)
		}
		if !cs.SpareOK {
			t.Fatalf("killed cell %d not re-spared with full budget:\n%s", cs.Cell, rep.String())
		}
		if cs.CrossSpare {
			t.Fatalf("cell %d took a cross-zone grant with a full local pool", cs.Cell)
		}
		if cs.Dropped > 3 {
			t.Fatalf("cell %d dropped %d TTIs (> §8.2 bound 3)", cs.Cell, cs.Dropped)
		}
	}
	if want := ZoneCells(zone, cfg.Cells, 2); killed != want {
		t.Fatalf("rack loss killed %d cells, zone holds %d", killed, want)
	}
	if rep.GrantsCross != 0 || rep.GrantsLocal != killed {
		t.Fatalf("grants local=%d cross=%d, want %d local", rep.GrantsLocal, rep.GrantsCross, killed)
	}
}

// TestRackLossZeroSpares: with no pool anywhere, the lost rack degrades
// gracefully — denials, ring handover, recorded availability loss — and
// still no invariant violations (in-cell standby failover holds §8.2).
func TestRackLossZeroSpares(t *testing.T) {
	cfg := rackLossConfig(t, 0)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("zero-spare rack loss must degrade, not violate:\n%s", rep.String())
	}
	killed, droppedSum := 0, uint64(0)
	var handovers uint64
	for _, cs := range rep.Cells {
		handovers += cs.HandoverRx
		if cs.Killed {
			killed++
			droppedSum += cs.Dropped
			if cs.SpareOK {
				t.Fatalf("cell %d re-spared from an empty pool", cs.Cell)
			}
		}
	}
	if killed == 0 {
		t.Fatal("rack loss killed nothing")
	}
	if rep.Grants != 0 || rep.Denials < killed {
		t.Fatalf("grants=%d denials=%d for %d kills", rep.Grants, rep.Denials, killed)
	}
	if handovers == 0 {
		t.Fatal("denied cells never offloaded via ring handover")
	}
	if droppedSum == 0 {
		t.Fatal("availability loss not recorded (no dropped TTIs)")
	}
	hit := rep.Zones[rep.Cells[idxOfFirstKilled(rep)].Zone]
	if hit.Availability >= 100 {
		t.Fatalf("lost zone reports %.4f%% availability", hit.Availability)
	}
}

func idxOfFirstKilled(rep *Report) int {
	for i, cs := range rep.Cells {
		if cs.Killed {
			return i
		}
	}
	return 0
}

// TestZoneExhaustedOverflowGrant: an empty zone pool with overflow
// capacity degrades to cross-zone grants (flagged, penalized) instead of
// denials.
func TestZoneExhaustedOverflowGrant(t *testing.T) {
	cfg, err := CorrelatedConfig("rack-loss", 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 11
	cfg.Topo.ZoneSpares = 0
	cfg.Topo.OverflowSpares = cfg.Cells
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("violations:\n%s", rep.String())
	}
	killed := 0
	for _, cs := range rep.Cells {
		if !cs.Killed {
			continue
		}
		killed++
		if !cs.SpareOK || !cs.CrossSpare {
			t.Fatalf("killed cell %d: SpareOK=%v CrossSpare=%v, want overflow grant",
				cs.Cell, cs.SpareOK, cs.CrossSpare)
		}
	}
	if rep.GrantsLocal != 0 || rep.GrantsCross != killed || rep.Denials != 0 {
		t.Fatalf("grants local=%d cross=%d denials=%d for %d kills",
			rep.GrantsLocal, rep.GrantsCross, rep.Denials, killed)
	}
}

// TestUpgradeWaveDenyRetryGrant: a rolling upgrade against an
// undersized pool converges through the deny → backoff retry → grant
// path, fed by upgraded servers releasing back into their zone pools.
func TestUpgradeWaveDenyRetryGrant(t *testing.T) {
	cfg, err := CorrelatedConfig("upgrade-wave", 6, 36)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 5
	ApplySpareRatio(&cfg, 0.25) // 2 spares for 6 cells: denials guaranteed
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("violations:\n%s", rep.String())
	}
	if rep.UpgradeCmds != cfg.Cells {
		t.Fatalf("posted %d upgrade cmds, want %d", rep.UpgradeCmds, cfg.Cells)
	}
	killed, respared, retries := 0, 0, 0
	for _, cs := range rep.Cells {
		if cs.Killed {
			killed++
		}
		if cs.SpareOK {
			respared++
		}
		retries += cs.Retries
	}
	if killed != cfg.Cells {
		t.Fatalf("upgrade wave killed %d of %d cells", killed, cfg.Cells)
	}
	if rep.Denials == 0 {
		t.Fatal("undersized pool never denied — retry path untested")
	}
	if retries == 0 {
		t.Fatal("no backoff retries recorded")
	}
	if respared != killed {
		t.Fatalf("only %d of %d upgraded cells converged to a spare:\n%s",
			respared, killed, rep.String())
	}
	if rep.Released < cfg.Cells {
		t.Fatalf("released %d servers, want ≥ %d (one per upgraded cell)", rep.Released, cfg.Cells)
	}
}

// TestPartitionDefersConservatively: a switch partition drops best-effort
// backhaul and defers everything else to the heal without breaking any
// invariant or the lookahead contract.
func TestPartitionDefersConservatively(t *testing.T) {
	cfg, err := CorrelatedConfig("partition", 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("violations:\n%s", rep.String())
	}
	if rep.PartDeferred+rep.PartDropped == 0 {
		t.Fatalf("partition windows never touched a message:\n%s", rep.String())
	}
	if len(rep.Faults) == 0 || !strings.Contains(rep.String(), "partition zone=") {
		t.Fatalf("fault plan missing partition entries:\n%s", rep.String())
	}
}

// TestOverflowRaceCanonicalOrder: two zones racing for the last
// fleet-global spare resolve in canonical (At, Src, Seq) order — the
// lower Src wins, deterministically.
func TestOverflowRaceCanonicalOrder(t *testing.T) {
	cfg := DefaultConfig(4, 16)
	cfg.Topo = Topology{Zones: 2, ZoneSpares: 0, OverflowSpares: 1}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := 100 * sim.Millisecond
	// Post in "wrong" arrival order; the mailbox drains by (At, Src, Seq).
	f.mbox.Post(Message{At: at, Src: 3, Dst: ControllerID, Seq: 1, Kind: KindSpareRequest})
	f.mbox.Post(Message{At: at, Src: 1, Dst: ControllerID, Seq: 1, Kind: KindSpareRequest})
	f.mbox.DrainUpTo(at, func(m Message) {
		if m.Dst == ControllerID {
			f.handleControl(m)
		}
	})
	if !f.granted[1] {
		t.Fatal("Src 1 (canonically first) was not granted the last spare")
	}
	if f.granted[3] {
		t.Fatal("Src 3 also granted — overflow pool oversubscribed")
	}
	if f.grantsCross != 1 || f.denials != 1 {
		t.Fatalf("grantsCross=%d denials=%d, want 1/1", f.grantsCross, f.denials)
	}
	// The duplicate-request guard must hold on a retry racing its grant.
	f.handleControl(Message{At: at + sim.Millisecond, Src: 1, Dst: ControllerID, Seq: 2, Kind: KindSpareRequest})
	if f.dupReqs != 1 || f.grantsCross != 1 {
		t.Fatalf("retry after grant: dupReqs=%d grantsCross=%d, want 1/1", f.dupReqs, f.grantsCross)
	}
	// A release refills the requester's zone pool and re-arms eligibility.
	f.handleControl(Message{At: at + 2*sim.Millisecond, Src: 3, Dst: ControllerID, Seq: 2, Kind: KindSpareRelease})
	if f.released != 1 || f.zoneSpares[1] != 1 {
		t.Fatalf("release not pooled: released=%d zone1=%d", f.released, f.zoneSpares[1])
	}
}

// TestCorrelatedDeterminismAcrossShards: the rack-loss and upgrade-wave
// reports are byte-identical at shard counts 1 and 4 (the in-package
// half of the contract; the facade-level cases live in the root
// determinism test).
func TestCorrelatedDeterminismAcrossShards(t *testing.T) {
	for _, scenario := range []string{"rack-loss", "upgrade-wave"} {
		var want string
		for _, shards := range []int{1, 4} {
			cfg, err := CorrelatedConfig(scenario, 8, 48)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = 7
			cfg.Shards = shards
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want == "" {
				want = rep.String()
			} else if rep.String() != want {
				t.Fatalf("%s report differs at shards=%d", scenario, shards)
			}
		}
	}
}

func TestCorrelatedConfigUnknownScenario(t *testing.T) {
	if _, err := CorrelatedConfig("nope", 4, 16); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := FrontierSample("nope", 4, 16, 1, 0, 0.5, 1); err == nil {
		t.Fatal("FrontierSample accepted unknown scenario")
	}
}

func TestNewKindStrings(t *testing.T) {
	if KindUpgradeKill.String() != "upgrade-kill" || KindSpareRelease.String() != "spare-release" {
		t.Fatalf("kind names: %s, %s", KindUpgradeKill, KindSpareRelease)
	}
}
