package shard

import (
	"testing"

	"slingshot/internal/sim"
)

// BenchmarkMetroScale is the committed fleet-scale number
// (BENCH_*_metro.json): a 12-cell / 240-UE metro with ring backhaul
// advancing in lockstep for 100 ms of virtual time — per-op cost is the
// whole fleet run including bring-up, exchange barriers and teardown.
func BenchmarkMetroScale(b *testing.B) {
	cfg := DefaultConfig(12, 240)
	cfg.Horizon = 100 * sim.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Err() != nil {
			b.Fatal(rep.Err())
		}
	}
}

// BenchmarkMailboxExchange isolates the inter-shard plumbing: encode,
// post, drain and decode 1k messages in canonical order.
func BenchmarkMailboxExchange(b *testing.B) {
	frames := make([][]byte, 1000)
	for i := range frames {
		m := Message{
			At:   sim.Time(i % 97),
			Src:  uint16(i % 31),
			Seq:  uint64(i),
			Dst:  uint16((i + 1) % 31),
			Kind: KindBackhaul,
			A:    uint64(i),
		}
		frames[i] = Encode(&m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var mb Mailbox
		for _, f := range frames {
			m, err := Decode(f)
			if err != nil {
				b.Fatal(err)
			}
			mb.Post(m)
		}
		n := mb.DrainUpTo(1<<40, func(Message) {})
		if n != len(frames) {
			b.Fatalf("drained %d of %d", n, len(frames))
		}
	}
}
