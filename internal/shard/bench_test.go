package shard

import (
	"testing"

	"slingshot/internal/chaos"
	"slingshot/internal/mem"
	"slingshot/internal/sim"
)

// BenchmarkMetroScale is the committed fleet-scale number
// (BENCH_*_metro.json): a 12-cell / 240-UE metro with ring backhaul
// advancing in lockstep for 100 ms of virtual time — per-op cost is the
// whole fleet run including bring-up, exchange barriers and teardown.
func BenchmarkMetroScale(b *testing.B) {
	cfg := DefaultConfig(12, 240)
	cfg.Horizon = 100 * sim.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Err() != nil {
			b.Fatal(rep.Err())
		}
	}
}

// BenchmarkZoneFailover is the correlated-failure cost number: a fully
// provisioned 8-cell rack-loss run over a zoned topology — one rack of
// cells killed in the same window, zone-local spare grants, §8.2 bound
// checked per cell. Per-op cost is the whole fleet run.
func BenchmarkZoneFailover(b *testing.B) {
	cfg, err := CorrelatedConfig("rack-loss", 8, 48)
	if err != nil {
		b.Fatal(err)
	}
	ApplySpareRatio(&cfg, 1)
	cfg.Seed = 11
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Err() != nil {
			b.Fatal(rep.Err())
		}
	}
}

// BenchmarkFrontierSweep prices one availability-vs-spare-ratio grid:
// 2 scenarios × 2 ratios × 1 seed of 4-cell fleets swept through
// chaos.Frontier on the worker pool. This is what `-run frontier` costs
// per grid cell group, so sweep-shape regressions show up here.
func BenchmarkFrontierSweep(b *testing.B) {
	spec := chaos.FrontierSpec{
		Scenarios: []string{"rack-loss", "upgrade-wave"},
		Ratios:    []float64{0, 0.5},
		Seeds:     1,
	}
	horizon := 280 * sim.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := chaos.Frontier(spec, func(sc string, ratio float64, seed uint64) (chaos.FrontierSample, error) {
			return FrontierSample(sc, 4, 16, 1, horizon, ratio, seed)
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Err() != nil {
			b.Fatal(rep.Err())
		}
	}
}

// BenchmarkMailboxExchange isolates the inter-shard plumbing: decode,
// post, drain and release 1k messages (8-byte payloads) in canonical
// order through the pooled wire path the fleet barrier uses. The mailbox
// is reused across iterations exactly as the fleet reuses its own, so
// the per-op number is the steady-state barrier cost — asserted
// alloc-free below (the concrete heap plus pooled payload copies replace
// ~2k boxing/copy allocs per exchange).
func BenchmarkMailboxExchange(b *testing.B) {
	frames := make([][]byte, 1000)
	for i := range frames {
		m := Message{
			At:      sim.Time(i % 97),
			Src:     uint16(i % 31),
			Seq:     uint64(i),
			Dst:     uint16((i + 1) % 31),
			Kind:    KindBackhaul,
			A:       uint64(i),
			Payload: []byte{byte(i), byte(i >> 8), 3, 4, 5, 6, 7, 8},
		}
		frames[i] = Encode(&m)
	}
	exchange := func(mb *Mailbox) {
		for _, f := range frames {
			m, err := DecodePooled(f)
			if err != nil {
				b.Fatal(err)
			}
			mb.Post(m)
		}
		n := mb.DrainUpTo(1<<40, func(m Message) { mem.PutBytes(m.Payload) })
		if n != len(frames) {
			b.Fatalf("drained %d of %d", n, len(frames))
		}
	}
	var mb Mailbox
	exchange(&mb) // warm the heap's backing array and the payload pool
	if !mem.DetectorArmed() {
		if avg := testing.AllocsPerRun(10, func() { exchange(&mb) }); avg > 0 {
			b.Fatalf("steady-state exchange allocates %.1f times per 1k messages, want 0", avg)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exchange(&mb)
	}
}
