// Package shard scales the simulated vRAN from one cell on one event loop
// to a metro-sized fleet: N per-cell sim.Engine shards — each owning a
// full core.Deployment — advance in lockstep at TTI boundaries and
// exchange cross-cell traffic (backhaul load reports, Orion migrations to
// pooled spares, controller switch-rule updates, handover offloads)
// through a deterministic inter-shard mailbox.
//
// The determinism contract (DESIGN.md §11) extends the worker-count
// invariance of internal/par to shard count: mailbox messages drain in
// (deliveryTime, srcShard, seq) order, where srcShard is the *logical*
// per-cell shard index — never the runner-group index — so fleet reports
// are byte-identical at any shard-group count (SLINGSHOT_SHARDS) and any
// worker-pool width (SLINGSHOT_WORKERS).
package shard

import (
	"fmt"

	"slingshot/internal/mem"
	"slingshot/internal/sim"
)

// Kind classifies an inter-shard message.
type Kind uint8

// Message kinds, one per cross-cell interaction the fleet models.
const (
	// KindBackhaul is a periodic X2-style load report to the ring
	// neighbor (A/B = delivered UL/DL packet counts; payload carries the
	// sender's running backhaul digest).
	KindBackhaul Kind = iota + 1
	// KindSpareRequest asks the fleet controller for a pooled spare PHY
	// after a kill left the cell without a standby (A = dead server id).
	KindSpareRequest
	// KindSpareGrant assigns a pooled spare to the requesting cell; the
	// cell reprovisions its standby from Orion's stored CONFIG (§6.3).
	KindSpareGrant
	// KindSpareDeny reports pool exhaustion; the cell runs unprotected
	// and offloads via KindHandover.
	KindSpareDeny
	// KindMigrateCmd is a controller-ordered planned migration (the
	// switch-rule-update path of a fleet-wide upgrade wave).
	KindMigrateCmd
	// KindHandover carries load a spare-denied cell offloads to its ring
	// neighbor (A = offloaded units).
	KindHandover
	// KindUpgradeKill is one step of a rolling upgrade wave: the cell
	// takes its active PHY down for maintenance (failing over to the hot
	// standby), asks for a pooled spare, and returns the upgraded server
	// to its zone's pool via KindSpareRelease after the hold elapses.
	KindUpgradeKill
	// KindSpareRelease returns one unit of spare capacity to the source
	// cell's zone pool: an upgraded server rejoining after its hold, or a
	// grant the cell could not use (spare already serving / crashed).
	KindSpareRelease

	kindEnd // one past the last valid kind
)

var kindNames = [...]string{
	KindBackhaul:     "backhaul",
	KindSpareRequest: "spare-request",
	KindSpareGrant:   "spare-grant",
	KindSpareDeny:    "spare-deny",
	KindMigrateCmd:   "migrate-cmd",
	KindHandover:     "handover",
	KindUpgradeKill:  "upgrade-kill",
	KindSpareRelease: "spare-release",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ControllerID is the logical shard id of the fleet controller in Src/Dst
// fields; cell shards use their fleet-wide cell index (0-based).
const ControllerID = 0xFFFF

// Message is one inter-shard exchange. At is the *delivery* virtual time
// — assigned by the sender as sendTime + the fleet's backhaul latency —
// and (At, Src, Seq) is the canonical drain key: Seq increases per source
// shard, so the triple totally orders every message in a run regardless
// of how cells are grouped onto runner goroutines.
type Message struct {
	At      sim.Time
	Src     uint16 // logical source shard (cell index, or ControllerID)
	Dst     uint16
	Seq     uint64 // per-source sequence number
	Kind    Kind
	A, B    uint64
	Payload []byte
}

// Wire form: a fixed 43-byte header followed by the payload.
//
//	0:2   magic "SH"
//	2     kind
//	3:5   src  (big-endian uint16)
//	5:7   dst
//	7:15  seq  (big-endian uint64)
//	15:23 at   (big-endian uint64, two's-complement sim.Time)
//	23:31 a
//	31:39 b
//	39:41 reserved (zero)
//	41:43 payload length (big-endian uint16)
//	43:.. payload
const (
	headerLen  = 43
	magic0     = 'S'
	magic1     = 'H'
	maxPayload = 0xFFFF
)

func putU16(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}
func getU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// EncodedLen returns the wire size of m.
func (m *Message) EncodedLen() int { return headerLen + len(m.Payload) }

// AppendEncode appends m's canonical wire form to dst and returns the
// extended slice. Payloads longer than maxPayload are truncated (no
// fleet message approaches the cap; the codec stays total).
func (m *Message) AppendEncode(dst []byte) []byte {
	p := m.Payload
	if len(p) > maxPayload {
		p = p[:maxPayload]
	}
	n := len(dst)
	for cap(dst) < n+headerLen+len(p) {
		dst = append(dst[:cap(dst)], 0)
	}
	dst = dst[:n+headerLen+len(p)]
	h := dst[n:]
	h[0], h[1], h[2] = magic0, magic1, byte(m.Kind)
	putU16(h[3:], m.Src)
	putU16(h[5:], m.Dst)
	putU64(h[7:], m.Seq)
	putU64(h[15:], uint64(m.At))
	putU64(h[23:], m.A)
	putU64(h[31:], m.B)
	h[39], h[40] = 0, 0
	putU16(h[41:], uint16(len(p)))
	copy(h[headerLen:], p)
	return dst
}

// Encode returns m's canonical wire form in a fresh buffer.
func Encode(m *Message) []byte {
	return m.AppendEncode(make([]byte, 0, m.EncodedLen()))
}

// Decode parses one wire message. The buffer must hold exactly one
// message (trailing bytes are an error: frames are length-delimited by
// the transport). The payload is copied out, so the caller may recycle
// data immediately.
func Decode(data []byte) (Message, error) {
	return decode(data, false)
}

// DecodePooled is Decode with the payload copy leased from internal/mem
// instead of freshly allocated: the caller owns it and must
// mem.PutBytes(m.Payload) once the message is fully consumed (losing it
// on a drop path is safe — the GC reclaims it). With pooling disabled
// (SLINGSHOT_POOL=off) it degrades to exactly Decode.
func DecodePooled(data []byte) (Message, error) {
	return decode(data, true)
}

func decode(data []byte, pooled bool) (Message, error) {
	var m Message
	if len(data) < headerLen {
		return m, fmt.Errorf("shard: message truncated (%d bytes)", len(data))
	}
	if data[0] != magic0 || data[1] != magic1 {
		return m, fmt.Errorf("shard: bad magic %#x%x", data[0], data[1])
	}
	k := Kind(data[2])
	if k == 0 || k >= kindEnd {
		return m, fmt.Errorf("shard: unknown message kind %d", data[2])
	}
	if data[39] != 0 || data[40] != 0 {
		return m, fmt.Errorf("shard: nonzero reserved bytes")
	}
	plen := int(getU16(data[41:]))
	if len(data) != headerLen+plen {
		return m, fmt.Errorf("shard: length mismatch (%d bytes, payload claims %d)", len(data), plen)
	}
	m.Kind = k
	m.Src = getU16(data[3:])
	m.Dst = getU16(data[5:])
	m.Seq = getU64(data[7:])
	m.At = sim.Time(getU64(data[15:]))
	m.A = getU64(data[23:])
	m.B = getU64(data[31:])
	if plen > 0 {
		if pooled {
			m.Payload = append(mem.GetBytesCap(plen), data[headerLen:headerLen+plen]...)
		} else {
			m.Payload = make([]byte, plen)
			copy(m.Payload, data[headerLen:])
		}
	}
	return m, nil
}

func (m Message) String() string {
	return fmt.Sprintf("%s %d→%d seq=%d at=%v a=%d b=%d len=%d",
		m.Kind, m.Src, m.Dst, m.Seq, m.At, m.A, m.B, len(m.Payload))
}
