package shard

import (
	"strings"
	"testing"

	"slingshot/internal/par"
	"slingshot/internal/sim"
)

// runWith executes one fleet with explicit shard-group and worker counts.
func runWith(t *testing.T, cfg Config, shards, workers int) *Report {
	t.Helper()
	cfg.Shards = shards
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("fleet run (shards=%d workers=%d): %v", shards, workers, err)
	}
	return rep
}

// TestFleetDeterminism: the full chaos scenario renders byte-identically
// at every shard-group × worker-pool combination.
func TestFleetDeterminism(t *testing.T) {
	cfg := ChaosConfig(6, 36)
	cfg.Seed = 7
	base := runWith(t, cfg, 1, 1).String()
	for _, c := range [][2]int{{2, 3}, {3, 1}, {6, 3}} {
		if got := runWith(t, cfg, c[0], c[1]).String(); got != base {
			t.Fatalf("report diverged at shards=%d workers=%d", c[0], c[1])
		}
	}
}

// TestFleetChaosFailoverBound: every killed cell stays within the paper's
// §8.2 ≤3-dropped-TTI budget, the spare pool accounting matches the kill
// count, and granted cells end up serving from the reprovisioned side.
func TestFleetChaosFailoverBound(t *testing.T) {
	cfg := ChaosConfig(8, 64)
	cfg.Seed = 3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if rep.Err() != nil {
		t.Fatalf("invariants: %v\n%s", rep.Err(), rep.String())
	}
	killed, respared := 0, 0
	for _, cs := range rep.Cells {
		if cs.Killed {
			killed++
			if cs.Dropped > 3 {
				t.Errorf("cell %d dropped %d TTIs on failover, §8.2 allows ≤3", cs.Cell, cs.Dropped)
			}
			if cs.SpareOK {
				respared++
			}
		} else if cs.Dropped != 0 {
			t.Errorf("unkilled cell %d dropped %d TTIs", cs.Cell, cs.Dropped)
		}
		if cs.UL == 0 || cs.DL == 0 {
			t.Errorf("cell %d delivered no traffic (ul=%d dl=%d)", cs.Cell, cs.UL, cs.DL)
		}
	}
	if killed != cfg.Kills {
		t.Errorf("%d cells killed, plan said %d", killed, cfg.Kills)
	}
	if rep.Grants+rep.Denials != killed {
		t.Errorf("controller handled %d+%d spare requests for %d kills",
			rep.Grants, rep.Denials, killed)
	}
	if rep.Grants != respared || rep.Grants != cfg.Spares {
		t.Errorf("grants=%d respared=%d pool=%d: exhausted pool should grant exactly its size",
			rep.Grants, respared, cfg.Spares)
	}
	if rep.Exchanged == 0 {
		t.Error("no inter-shard messages exchanged")
	}
}

// TestFleetBackhaulCancelMidRun cancels one cell's periodic cross-shard
// ticker mid-run (satellite: Every-cancel × lockstep barrier). The fleet
// must run to the horizon — a canceled tick never stalls the TTI barrier
// — and the outcome must stay shard-count invariant.
func TestFleetBackhaulCancelMidRun(t *testing.T) {
	build := func(shards, workers int) string {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		cfg := DefaultConfig(4, 16)
		cfg.Shards = shards
		f, err := New(cfg)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		// Kill cell 2's backhaul clock mid-run, on its own engine like
		// any in-shard event would.
		victim := f.cells[2]
		victim.eng.At(70*sim.Millisecond, "test.cancel", func() {
			for _, c := range victim.cancel {
				c()
			}
		})
		rep, err := f.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rep.String()
	}
	base := build(1, 1)
	if got := build(4, 4); got != base {
		t.Fatal("cancel mid-run broke shard-count invariance")
	}
	// The canceled cell's neighbor receives fewer load reports than in an
	// uncanceled run — the cancel really took effect.
	full, err := Run(DefaultConfig(4, 16))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if base == full.String() {
		t.Fatal("canceling cell 2's backhaul changed nothing")
	}
	if !strings.Contains(base, "cell    3") {
		t.Fatalf("report lost its per-cell lines:\n%s", base)
	}
}

// TestFleetLookaheadGuard: a shard emitting a message due at or before
// the current barrier violates conservative synchronization and must
// fail the run loudly rather than deliver nondeterministically.
func TestFleetLookaheadGuard(t *testing.T) {
	f, err := New(DefaultConfig(2, 4))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	m := Message{At: 0, Src: 0, Dst: 1, Seq: 1, Kind: KindBackhaul}
	f.cells[0].out = append(f.cells[0].out, Encode(&m))
	if err := f.exchange(phy0TTI(), 2*phy0TTI()); err == nil {
		t.Fatal("exchange accepted a message due before the barrier")
	}
}

func phy0TTI() sim.Time { return 500 * sim.Microsecond }

// TestFleetUndecodableFrame: corrupt outbox bytes fail the exchange.
func TestFleetUndecodableFrame(t *testing.T) {
	f, err := New(DefaultConfig(2, 4))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	f.cells[0].out = append(f.cells[0].out, []byte{0xDE, 0xAD})
	if err := f.exchange(phy0TTI(), 2*phy0TTI()); err == nil {
		t.Fatal("exchange accepted an undecodable frame")
	}
}

// TestFleetConfigValidation pins the constructor's rejection surface.
func TestFleetConfigValidation(t *testing.T) {
	cases := map[string]Config{
		"zero cells":    {Cells: 0, UEs: 10, Horizon: sim.Second},
		"empty cells":   {Cells: 10, UEs: 5, Horizon: sim.Second},
		"over budget":   {Cells: 1, UEs: 500, Horizon: sim.Second},
		"short horizon": {Cells: 2, UEs: 4, Horizon: sim.Microsecond, Step: sim.Millisecond},
		"id space":      {Cells: 0x10000, UEs: 0x10000, Horizon: sim.Second},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted: %+v", name, cfg)
		}
	}
	if _, err := New(DefaultConfig(2, 8)); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// TestFleetCellReports: the per-cell chaos.Report view used by fleet
// soaks carries one report per cell with distinct profiles, populated
// flows and stable fingerprints.
func TestFleetCellReports(t *testing.T) {
	cfg := DefaultConfig(3, 9)
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	crs := f.CellReports(rep)
	if len(crs) != cfg.Cells {
		t.Fatalf("%d cell reports for %d cells", len(crs), cfg.Cells)
	}
	seen := map[string]bool{}
	for i, cr := range crs {
		if seen[cr.Profile] {
			t.Errorf("duplicate profile %q", cr.Profile)
		}
		seen[cr.Profile] = true
		if len(cr.Flows) != rep.Cells[i].UEs {
			t.Errorf("cell %d: %d flows for %d UEs", i, len(cr.Flows), rep.Cells[i].UEs)
		}
		if cr.Fingerprint == 0 {
			t.Errorf("cell %d: zero fingerprint", i)
		}
		if cr.Err() != nil {
			t.Errorf("cell %d: %v", i, cr.Err())
		}
	}
}

// TestFleetTraceAggregation: with tracing on, the report carries the
// merged counter exposition including per-shard event volumes, and
// tracing does not perturb the untraced fingerprint inputs.
func TestFleetTraceAggregation(t *testing.T) {
	cfg := DefaultConfig(2, 6)
	cfg.Trace = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := rep.String()
	for _, want := range []string{"counters:", "fleet.shard0000.events", "fleet.shard0001.events"} {
		if !strings.Contains(s, want) {
			t.Errorf("traced report missing %q", want)
		}
	}
}
