package shard

import (
	"container/heap"

	"slingshot/internal/sim"
)

// Mailbox is the deterministic inter-shard message exchange. Messages
// posted in ANY order drain in (At, Src, Seq) order — the conservative-
// synchronization total order that makes fleet runs byte-identical at any
// shard-group count: the key uses only logical shard ids and virtual
// time, never goroutine identity or post order.
//
// The mailbox itself is not goroutine-safe: cells accumulate wire frames
// in per-shard outboxes during a lockstep step, and only the coordinator
// posts and drains, strictly between barriers.
type Mailbox struct {
	h msgHeap
}

type msgHeap []Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	if h[i].Src != h[j].Src {
		return h[i].Src < h[j].Src
	}
	return h[i].Seq < h[j].Seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = Message{}
	*h = old[:n-1]
	return m
}

// Post enqueues one message. Duplicate (At, Src, Seq) keys are tolerated
// (they drain adjacently in post order — the heap is not stable, but equal
// keys only arise from a buggy or fuzzing producer, never from the fleet,
// whose per-source Seq strictly increases).
func (mb *Mailbox) Post(m Message) {
	heap.Push(&mb.h, m)
}

// Pending returns how many messages are queued.
func (mb *Mailbox) Pending() int { return len(mb.h) }

// DrainUpTo delivers every queued message with At ≤ deadline to fn, in
// (At, Src, Seq) order. Messages posted *during* the drain (controller
// replies) participate immediately if due, otherwise stay queued — the
// fleet's latency floor guarantees replies are never due in the same
// window, but the mailbox itself handles either. Returns the number
// delivered.
func (mb *Mailbox) DrainUpTo(deadline sim.Time, fn func(Message)) int {
	n := 0
	for len(mb.h) > 0 && mb.h[0].At <= deadline {
		m := heap.Pop(&mb.h).(Message)
		n++
		fn(m)
	}
	return n
}
