package shard

import (
	"slingshot/internal/sim"
)

// Mailbox is the deterministic inter-shard message exchange. Messages
// posted in ANY order drain in (At, Src, Seq) order — the conservative-
// synchronization total order that makes fleet runs byte-identical at any
// shard-group count: the key uses only logical shard ids and virtual
// time, never goroutine identity or post order.
//
// The heap is a concrete 4-ary min-heap on []Message with inlined sifts —
// the container/heap version boxed every Push/Pop through `any`, which
// alone cost ~2k allocs per 1k-message exchange. A drained mailbox keeps
// its backing array, so the steady-state barrier loop does not allocate.
//
// The mailbox itself is not goroutine-safe: cells accumulate wire frames
// in per-shard outboxes during a lockstep step, and only the coordinator
// posts and drains, strictly between barriers.
type Mailbox struct {
	h []Message
}

// msgBefore is the canonical (At, Src, Seq) drain order.
func msgBefore(a, b *Message) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// Post enqueues one message. Duplicate (At, Src, Seq) keys are tolerated
// (they drain adjacently in post order — the heap is not stable, but equal
// keys only arise from a buggy or fuzzing producer, never from the fleet,
// whose per-source Seq strictly increases).
func (mb *Mailbox) Post(m Message) {
	h := append(mb.h, m)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !msgBefore(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	mb.h = h
}

// Pending returns how many messages are queued.
func (mb *Mailbox) Pending() int { return len(mb.h) }

// pop removes and returns the (At, Src, Seq) minimum. The caller has
// checked the mailbox is non-empty.
func (mb *Mailbox) pop() Message {
	h := mb.h
	m := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = Message{} // drop payload reference
	h = h[:n]
	mb.h = h
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if msgBefore(&h[j], &h[min]) {
				min = j
			}
		}
		if !msgBefore(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return m
}

// DrainUpTo delivers every queued message with At ≤ deadline to fn, in
// (At, Src, Seq) order. Messages posted *during* the drain (controller
// replies) participate immediately if due, otherwise stay queued — the
// fleet's latency floor guarantees replies are never due in the same
// window, but the mailbox itself handles either. Returns the number
// delivered.
func (mb *Mailbox) DrainUpTo(deadline sim.Time, fn func(Message)) int {
	n := 0
	for len(mb.h) > 0 && mb.h[0].At <= deadline {
		m := mb.pop()
		n++
		fn(m)
	}
	return n
}
