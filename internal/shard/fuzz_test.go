package shard

import (
	"bytes"
	"testing"

	"slingshot/internal/sim"
)

// corpusMessages is the seed corpus: one of each kind, plus edge shapes
// (zero fields, max ids, payload boundaries).
func corpusMessages() []Message {
	return []Message{
		{At: 0, Src: 0, Dst: 0, Seq: 0, Kind: KindBackhaul},
		{At: 500_000, Src: 1, Dst: 2, Seq: 1, Kind: KindBackhaul, A: 7, B: 9, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{At: 1_000_000, Src: 17, Dst: ControllerID, Seq: 42, Kind: KindSpareRequest, A: 1},
		{At: 2_000_000, Src: ControllerID, Dst: 17, Seq: 43, Kind: KindSpareGrant, A: 1},
		{At: 2_000_000, Src: ControllerID, Dst: 18, Seq: 44, Kind: KindSpareDeny, A: 2},
		{At: 3_000_000, Src: ControllerID, Dst: 5, Seq: 45, Kind: KindMigrateCmd},
		{At: 4_000_000, Src: 5, Dst: 6, Seq: 46, Kind: KindHandover, A: 12},
		{At: 5_000_000, Src: ControllerID, Dst: 7, Seq: 47, Kind: KindUpgradeKill},
		{At: 6_000_000, Src: 7, Dst: ControllerID, Seq: 48, Kind: KindSpareRelease},
		{At: 6_500_000, Src: 0xFFFE, Dst: ControllerID, Seq: 49, Kind: KindSpareRelease, A: ^uint64(0)},
		{At: -1, Src: 0xFFFE, Dst: 0xFFFE, Seq: ^uint64(0), Kind: KindHandover, B: ^uint64(0)},
		{At: 1, Src: 3, Dst: 4, Seq: 2, Kind: KindBackhaul, Payload: bytes.Repeat([]byte{0xAB}, 300)},
	}
}

// FuzzDecodeMessage asserts the codec is total and canonical: Decode never
// panics on arbitrary bytes, and any frame Decode accepts re-encodes to
// the identical bytes.
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range corpusMessages() {
		mm := m
		f.Add(Encode(&mm))
	}
	// Malformed seeds: truncations, bad magic, bad kind, dirty reserved
	// bytes, length mismatches.
	good := Encode(&Message{At: 9, Src: 1, Dst: 2, Seq: 3, Kind: KindBackhaul, Payload: []byte{0xEE}})
	f.Add([]byte{})
	f.Add(good[:headerLen-1])
	f.Add(append([]byte{}, good...))
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	f.Add(bad)
	bad2 := append([]byte{}, good...)
	bad2[2] = byte(kindEnd)
	f.Add(bad2)
	bad3 := append([]byte{}, good...)
	bad3[39] = 1
	f.Add(bad3)
	f.Add(append(append([]byte{}, good...), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(&m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
		if m.Kind == 0 || m.Kind >= kindEnd {
			t.Fatalf("decode accepted invalid kind %d", m.Kind)
		}
	})
}

// TestCodecRoundTrip pins the struct→wire→struct path for every corpus
// message, including payload aliasing (decoded payloads must not share
// the input buffer).
func TestCodecRoundTrip(t *testing.T) {
	for i, m := range corpusMessages() {
		mm := m
		buf := Encode(&mm)
		if len(buf) != mm.EncodedLen() {
			t.Fatalf("msg %d: encoded %d bytes, EncodedLen says %d", i, len(buf), mm.EncodedLen())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if got.At != m.At || got.Src != m.Src || got.Dst != m.Dst ||
			got.Seq != m.Seq || got.Kind != m.Kind || got.A != m.A || got.B != m.B ||
			!bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("msg %d: round-trip mismatch\n in  %v\n out %v", i, m, got)
		}
		if len(buf) > headerLen && len(got.Payload) > 0 {
			buf[headerLen] ^= 0xFF
			if got.Payload[0] == buf[headerLen] {
				t.Fatalf("msg %d: decoded payload aliases the input buffer", i)
			}
		}
	}
}

// TestCodecRejects pins the validation errors.
func TestCodecRejects(t *testing.T) {
	good := Encode(&Message{At: sim.Time(7), Src: 1, Dst: 2, Seq: 3, Kind: KindHandover, Payload: []byte{9, 9}})
	upg := Encode(&Message{At: sim.Time(11), Src: ControllerID, Dst: 4, Seq: 9, Kind: KindUpgradeKill})
	rel := Encode(&Message{At: sim.Time(12), Src: 4, Dst: ControllerID, Seq: 10, Kind: KindSpareRelease})
	cases := map[string][]byte{
		"empty":          {},
		"short":          good[:headerLen-1],
		"bad magic":      append([]byte{'x', 'y'}, good[2:]...),
		"zero kind":      mutate(good, 2, 0),
		"kind past end":  mutate(good, 2, byte(kindEnd)),
		"dirty reserved": mutate(good, 39, 0x01),
		"trailing bytes": append(append([]byte{}, good...), 0xFF),
		"truncated body": good[:len(good)-1],
		// The new partition/zone-era kinds stay strict too: the kind byte
		// is valid only in [1, kindEnd), reserved bytes must be zero.
		"upgrade-kill dirty reserved": mutate(upg, 40, 0x80),
		"spare-release trailing":      append(append([]byte{}, rel...), 0x00),
		"spare-release truncated":     rel[:headerLen-2],
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted %x", name, data)
		}
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("control case rejected: %v", err)
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte{}, b...)
	out[i] = v
	return out
}
