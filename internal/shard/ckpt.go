package shard

import (
	"fmt"
	"sort"

	"slingshot/internal/ckpt/wire"
)

// SnapshotTo writes the whole fleet's state at a lockstep barrier as
// named sections: controller ledgers, the mailbox in canonical (At, Src,
// Seq) order, then one section per cell wrapping its deployment, checker
// and fleet-side stats. Callers must only invoke this between Step calls
// — that is the one moment cell outboxes are empty and no engine is
// mid-event. Message payloads fold in as digests so the snapshot never
// retains pooled buffers.
func (f *Fleet) SnapshotTo(w *wire.W) {
	w.Section("fleet", func(w *wire.W) {
		w.I64(int64(f.now))
		w.U64(f.ctlSeq)
		w.U32(uint32(f.grantsLocal))
		w.U32(uint32(f.grantsCross))
		w.U32(uint32(f.denials))
		w.U32(uint32(f.dupReqs))
		w.U32(uint32(f.released))
		w.U32(uint32(f.migPosted))
		w.U32(uint32(f.upgPosted))
		w.U64(f.partDefer)
		w.U64(f.partDrop)
		w.U64(f.exchanged)
		w.U32(uint32(f.overflow))
		w.U32(uint32(len(f.zoneSpares)))
		for _, n := range f.zoneSpares {
			w.U32(uint32(n))
		}
		for _, zs := range [][]int{f.zGrantL, f.zGrantX, f.zDeny} {
			w.U32(uint32(len(zs)))
			for _, n := range zs {
				w.U32(uint32(n))
			}
		}
		cells := make([]int, 0, len(f.granted))
		for id, on := range f.granted {
			if on {
				cells = append(cells, int(id))
			}
		}
		sort.Ints(cells)
		w.U32(uint32(len(cells)))
		for _, id := range cells {
			w.U16(uint16(id))
		}
		w.U32(uint32(len(f.faults)))
		for _, fl := range f.faults {
			w.Str(fl)
		}
	})
	w.Section("mailbox", func(w *wire.W) {
		msgs := make([]Message, len(f.mbox.h))
		copy(msgs, f.mbox.h)
		sort.Slice(msgs, func(i, j int) bool {
			a, b := msgs[i], msgs[j]
			if a.At != b.At {
				return a.At < b.At
			}
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			return a.Seq < b.Seq
		})
		w.U32(uint32(len(msgs)))
		for _, m := range msgs {
			w.I64(int64(m.At))
			w.U16(m.Src)
			w.U16(m.Dst)
			w.U64(m.Seq)
			w.U8(uint8(m.Kind))
			w.U64(m.A)
			w.U64(m.B)
			w.U32(uint32(len(m.Payload)))
			w.U64(wire.Hash64(m.Payload))
		}
	})
	for _, cs := range f.cells {
		cs := cs
		w.Section(fmt.Sprintf("cell.%d", cs.idx), func(w *wire.W) {
			w.U64(cs.msgSeq)
			w.U32(uint32(cs.attempts))
			w.U32(uint32(len(cs.out))) // 0 at a barrier, by construction
			st := &cs.stat
			w.U64(st.UL)
			w.U64(st.DL)
			w.U64(st.BackhaulRx)
			w.U64(st.HandoverRx)
			w.U64(st.Digest)
			w.U32(uint32(st.Violations))
			w.U32(uint32(st.Retries))
			w.U32(uint32(st.UpgSkipped))
			w.Bool(st.Killed)
			w.Bool(st.SpareOK)
			w.Bool(st.CrossSpare)
			w.Bool(st.Upgraded)
			w.U32(uint32(len(cs.ulSeq)))
			for _, s := range cs.ulSeq {
				w.U64(s)
			}
			for _, s := range cs.dlSeq {
				w.U64(s)
			}
			if cs.rec != nil {
				w.U64(cs.rec.Total())
				w.U64(cs.rec.Metrics().Fingerprint())
			} else {
				w.U64(0)
				w.U64(0)
			}
			w.Section("checker", cs.chk.SnapshotTo)
			w.Section("deploy", cs.d.SnapshotTo)
		})
	}
}
