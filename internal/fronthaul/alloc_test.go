package fronthaul

import (
	"testing"

	"slingshot/internal/mem"
)

// TestPacketRoundTripAllocs pins the pooled fronthaul TX path: building a
// U-plane packet (pooled struct + pooled BFP payload), serializing,
// recycling, and decoding the wire bytes back (including IQ decompression
// into a reused buffer). Serialize's wire buffer and Decode's packet struct
// are the only remaining allocations — the wire buffer's ownership
// transfers to the frame consumer and decoded packets alias the frame, so
// neither is pooled by design.
func TestPacketRoundTripAllocs(t *testing.T) {
	if mem.DetectorArmed() {
		t.Skip("pool leak detector armed (-race or SLINGSHOT_POOL=debug); its bookkeeping allocates")
	}
	prev := mem.SetEnabled(true)
	defer mem.SetEnabled(prev)
	iq := make([]complex128, 120)
	for i := range iq {
		iq[i] = complex(float64(i%7)/3.5-1, float64(i%5)/2.5-1)
	}
	slot := SlotFromCounter(4)
	var iqBuf []complex128
	cycle := func() {
		pkt, err := NewUplinkIQ(3, 1, slot, 0, 10, iq, 9)
		if err != nil {
			t.Fatal(err)
		}
		wire := pkt.Serialize()
		mem.PutBytes(pkt.Payload)
		pkt.Recycle()
		rx, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		iqBuf, err = rx.AppendIQ(iqBuf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	cycle() // prime the packet and buffer pools, size iqBuf
	if avg := testing.AllocsPerRun(200, cycle); avg > 2 {
		t.Fatalf("packet round trip allocates %.1f times, want <= 2 (wire buffer + decoded struct)", avg)
	}
}
