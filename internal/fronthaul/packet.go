package fronthaul

import (
	"encoding/binary"
	"errors"
	"fmt"

	"slingshot/internal/mem"
)

// MessageType is the eCPRI message type of a fronthaul packet.
type MessageType uint8

// eCPRI message types used by O-RAN fronthaul.
const (
	MsgIQData    MessageType = 0 // U-plane: IQ samples
	MsgRTControl MessageType = 2 // C-plane: realtime control
)

func (m MessageType) String() string {
	switch m {
	case MsgIQData:
		return "U-plane"
	case MsgRTControl:
		return "C-plane"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(m))
	}
}

// Errors returned by the decoder.
var (
	ErrShortPacket = errors.New("fronthaul: packet too short")
	ErrBadVersion  = errors.New("fronthaul: unsupported eCPRI version")
	ErrBadSlot     = errors.New("fronthaul: slot fields out of range")
)

// Packet is a decoded fronthaul packet. One C-plane packet describes the
// slot's sections; U-plane packets carry the BFP-compressed IQ payload for
// a PRB range.
//
// Wire layout (big endian):
//
//	byte 0      : eCPRI version (high nibble) | msgType (low nibble is
//	              enough for our two types)
//	bytes 1-2   : payload length
//	bytes 3-4   : eAxC id (RU port id; carries the RU's logical identity)
//	byte 5      : sequence id
//	byte 6      : direction (bit 7) | frame low bit unused
//	byte 7      : frame
//	byte 8      : subframe (high nibble) | slot (low nibble+... 6 bits)
//	byte 9      : startSymbol (we emit per-slot packets, so 0)
//	bytes 10-11 : sectionID
//	bytes 12-13 : startPRB
//	bytes 14-15 : numPRB
//	byte 16     : mantissa bits (U-plane) / section count (C-plane)
//	bytes 17-20 : aux length
//	bytes 21+   : payload (BFP IQ for U-plane, section descriptors for C),
//	              then aux bytes
type Packet struct {
	Version  uint8
	Type     MessageType
	EAxC     uint16
	Seq      uint8
	Dir      Direction
	Slot     SlotID
	Section  uint16
	StartPRB uint16
	NumPRB   uint16
	// MantissaBits is the BFP width for U-plane payloads; for C-plane
	// packets the field carries the section count.
	MantissaBits uint8
	Payload      []byte
	// Aux carries simulation-sidecar bytes (the transport-block payload
	// represented by the sampled code block in the IQ). A real fronthaul
	// encodes all bits in IQ; the sampled-fidelity PHY carries the
	// remainder here so end-to-end data flows byte-exactly. See DESIGN.md.
	Aux []byte
}

// CurrentVersion is the eCPRI protocol version we emit.
const CurrentVersion = 1

// headerLen is the fixed header size before the payload.
const headerLen = 21

// WireLen returns the packet's serialized size.
func (p *Packet) WireLen() int { return headerLen + len(p.Payload) + len(p.Aux) }

// Serialize encodes the packet to wire format in a fresh buffer.
func (p *Packet) Serialize() []byte {
	return p.SerializeInto(make([]byte, p.WireLen()))
}

// SerializePooled encodes the packet into a wire buffer leased from
// internal/mem. Ownership transfers to the caller (typically straight
// into a Frame.Payload, whose terminal receiver returns it); with pooling
// disabled this is exactly Serialize.
func (p *Packet) SerializePooled() []byte {
	n := p.WireLen()
	return p.SerializeInto(mem.GetBytesCap(n)[:n])
}

// SerializeInto encodes the packet into out, which must be exactly
// WireLen() bytes, and returns it.
func (p *Packet) SerializeInto(out []byte) []byte {
	out[0] = p.Version<<4 | uint8(p.Type)&0x0F
	binary.BigEndian.PutUint16(out[1:3], uint16(len(p.Payload)))
	binary.BigEndian.PutUint16(out[3:5], p.EAxC)
	out[5] = p.Seq
	// Write every header byte unconditionally: the buffer may be a pooled
	// lease carrying a previous packet's bytes, not a zeroed allocation.
	out[6] = 0
	if p.Dir == Downlink {
		out[6] = 0x80
	}
	out[7] = p.Slot.Frame
	out[8] = p.Slot.Subframe<<4 | p.Slot.Slot&0x0F
	out[9] = 0
	binary.BigEndian.PutUint16(out[10:12], p.Section)
	binary.BigEndian.PutUint16(out[12:14], p.StartPRB)
	binary.BigEndian.PutUint16(out[14:16], p.NumPRB)
	out[16] = p.MantissaBits
	binary.BigEndian.PutUint32(out[17:21], uint32(len(p.Aux)))
	copy(out[headerLen:], p.Payload)
	copy(out[headerLen+len(p.Payload):], p.Aux)
	return out
}

// TraceArgs packs the packet's identity into the two scalar arguments of
// a trace event (kinds fh-tx / fh-rx): a carries the wrapped slot index,
// message type and sequence id; b the on-wire byte count. Keeping the
// packing next to the wire format means every emission site across phy,
// ru and chaos renders identically in the timeline.
func (p *Packet) TraceArgs() (a, b uint64) {
	a = uint64(p.Slot.Index())&0xFFFF |
		uint64(p.Type&0xF)<<16 |
		uint64(p.Seq)<<24
	b = uint64(headerLen + len(p.Payload) + len(p.Aux))
	return a, b
}

// Decode parses a wire-format packet. The payload slice aliases data
// (zero-copy); callers that retain it past the frame's lifetime must copy.
func Decode(data []byte) (*Packet, error) {
	if len(data) < headerLen {
		return nil, ErrShortPacket
	}
	p := &Packet{
		Version: data[0] >> 4,
		Type:    MessageType(data[0] & 0x0F),
	}
	if p.Version != CurrentVersion {
		return nil, ErrBadVersion
	}
	plen := int(binary.BigEndian.Uint16(data[1:3]))
	alen := int(binary.BigEndian.Uint32(data[17:21]))
	if len(data) < headerLen+plen+alen {
		return nil, ErrShortPacket
	}
	p.EAxC = binary.BigEndian.Uint16(data[3:5])
	p.Seq = data[5]
	if data[6]&0x80 != 0 {
		p.Dir = Downlink
	}
	p.Slot = SlotID{Frame: data[7], Subframe: data[8] >> 4, Slot: data[8] & 0x0F}
	if !p.Slot.Valid() {
		return nil, ErrBadSlot
	}
	p.Section = binary.BigEndian.Uint16(data[10:12])
	p.StartPRB = binary.BigEndian.Uint16(data[12:14])
	p.NumPRB = binary.BigEndian.Uint16(data[14:16])
	p.MantissaBits = data[16]
	p.Payload = data[headerLen : headerLen+plen]
	p.Aux = data[headerLen+plen : headerLen+plen+alen]
	return p, nil
}

// PeekSlot extracts only the slot identifier and direction from a
// wire-format packet without a full decode — this mirrors what the switch
// dataplane parser does (it never touches the IQ payload).
func PeekSlot(data []byte) (SlotID, Direction, bool) {
	if len(data) < headerLen {
		return SlotID{}, Uplink, false
	}
	dir := Uplink
	if data[6]&0x80 != 0 {
		dir = Downlink
	}
	s := SlotID{Frame: data[7], Subframe: data[8] >> 4, Slot: data[8] & 0x0F}
	return s, dir, s.Valid()
}

// PeekEAxC extracts the eAxC (RU port) identifier the way the switch
// parser does.
func PeekEAxC(data []byte) (uint16, bool) {
	if len(data) < headerLen {
		return 0, false
	}
	return binary.BigEndian.Uint16(data[3:5]), true
}

// PeekType extracts the message type.
func PeekType(data []byte) (MessageType, bool) {
	if len(data) < 1 {
		return 0, false
	}
	return MessageType(data[0] & 0x0F), true
}

// packetPool recycles locally built transmit packets. Packets returned by
// Decode are NOT pooled: their Payload/Aux alias the received frame, so
// their lifetime belongs to the frame's owner.
var packetPool = mem.NewPool[Packet](func(p *Packet) { *p = Packet{} })

// Recycle returns a locally built packet's struct to the free list. Call it
// only after Serialize has copied the packet to the wire and only for
// packets from NewControl/NewUplinkIQ/NewDownlinkIQ; Payload and Aux are
// not recycled here (mem.PutBytes an owned Payload first, never Aux you do
// not own).
func (p *Packet) Recycle() { packetPool.Put(p) }

// NewUplinkIQ builds a U-plane uplink packet carrying IQ samples for a PRB
// range, compressing with the given mantissa width. The payload is built in
// a recycled buffer; senders that serialize immediately may Recycle the
// packet and mem.PutBytes its payload.
func NewUplinkIQ(eaxc uint16, seq uint8, slot SlotID, startPRB, numPRB uint16, iq []complex128, mantissaBits int) (*Packet, error) {
	if len(iq)%12 != 0 || mantissaBits < 2 || mantissaBits > 16 {
		// Let the encoder produce the error before any buffer is leased.
		if _, err := AppendCompressBFP(nil, iq, mantissaBits); err != nil {
			return nil, err
		}
	}
	payload, err := AppendCompressBFP(
		mem.GetBytesCap(len(iq)/12*BFPBlockBytes(mantissaBits)), iq, mantissaBits)
	if err != nil {
		return nil, err
	}
	p := packetPool.Get()
	p.Version, p.Type, p.EAxC, p.Seq = CurrentVersion, MsgIQData, eaxc, seq
	p.Dir, p.Slot, p.StartPRB, p.NumPRB = Uplink, slot, startPRB, numPRB
	p.MantissaBits, p.Payload = uint8(mantissaBits), payload
	return p, nil
}

// NewDownlinkIQ builds a U-plane downlink packet.
func NewDownlinkIQ(eaxc uint16, seq uint8, slot SlotID, startPRB, numPRB uint16, iq []complex128, mantissaBits int) (*Packet, error) {
	p, err := NewUplinkIQ(eaxc, seq, slot, startPRB, numPRB, iq, mantissaBits)
	if err != nil {
		return nil, err
	}
	p.Dir = Downlink
	return p, nil
}

// NewControl builds a C-plane packet for the slot. A healthy PHY emits one
// downlink C-plane packet per slot; Slingshot's failure detector treats
// the stream as a natural heartbeat.
func NewControl(eaxc uint16, seq uint8, dir Direction, slot SlotID, sections uint8) *Packet {
	p := packetPool.Get()
	p.Version, p.Type, p.EAxC, p.Seq = CurrentVersion, MsgRTControl, eaxc, seq
	p.Dir, p.Slot, p.MantissaBits = dir, slot, sections
	return p
}

// IQ decodes the packet's payload into complex samples. Only valid for
// U-plane packets.
func (p *Packet) IQ() ([]complex128, error) {
	return p.AppendIQ(nil)
}

// AppendIQ is IQ appending into dst (pass a recycled buffer's [:0] to
// decode a packet without allocating).
func (p *Packet) AppendIQ(dst []complex128) ([]complex128, error) {
	if p.Type != MsgIQData {
		return nil, fmt.Errorf("fronthaul: IQ() on %v packet", p.Type)
	}
	return AppendDecompressBFP(dst, p.Payload, int(p.MantissaBits))
}
