package fronthaul

import (
	"bytes"
	"math"
	"testing"

	"slingshot/internal/sim"
)

// TestBFPMatchesReference drives the staged SoA codec and the retained
// reference codec with the same randomized inputs across every mantissa
// width and asserts byte-exact encodes and bit-exact decodes. Inputs cover
// the nominal range, saturation, near-zero blocks, all-zero blocks, and
// values straddling exponent boundaries.
func TestBFPMatchesReference(t *testing.T) {
	rng := sim.NewRNG(77)
	for bits := 2; bits <= 16; bits++ {
		for trial := 0; trial < 200; trial++ {
			nBlk := 1 + rng.Intn(4)
			iq := make([]complex128, nBlk*12)
			amp := math.Pow(2, rng.Float64()*24-16) // 2^-16 .. 2^8
			for i := range iq {
				re := rng.Norm() * amp
				im := rng.Norm() * amp
				switch rng.Intn(8) {
				case 0:
					re, im = 0, 0
				case 1:
					re = math.Pow(2, float64(rng.Intn(20)-15)) // exact powers of two at bracket edges
				case 2:
					im = 16 * rng.Norm() // saturating
				}
				iq[i] = complex(re, im)
			}
			enc, err := AppendCompressBFP(nil, iq, bits)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := CompressBFPReference(iq, bits)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, ref) {
				t.Fatalf("bits=%d trial=%d: encode diverged from reference", bits, trial)
			}
			dec, err := AppendDecompressBFP(nil, enc, bits)
			if err != nil {
				t.Fatal(err)
			}
			refDec, err := DecompressBFPReference(enc, bits)
			if err != nil {
				t.Fatal(err)
			}
			for i := range dec {
				if math.Float64bits(real(dec[i])) != math.Float64bits(real(refDec[i])) ||
					math.Float64bits(imag(dec[i])) != math.Float64bits(imag(refDec[i])) {
					t.Fatalf("bits=%d trial=%d sample %d: decode %v != reference %v",
						bits, trial, i, dec[i], refDec[i])
				}
			}
		}
	}
}

// TestBFPHostilePayloadMatchesReference feeds random (not encoder-produced)
// payload bytes to both decoders: the clamp and sign-extension paths must
// agree bit-exactly even on mantissa patterns the encoder never emits.
func TestBFPHostilePayloadMatchesReference(t *testing.T) {
	rng := sim.NewRNG(78)
	for bits := 2; bits <= 16; bits++ {
		blockBytes := BFPBlockBytes(bits)
		for trial := 0; trial < 100; trial++ {
			data := make([]byte, (1+rng.Intn(3))*blockBytes)
			for i := range data {
				data[i] = byte(rng.Intn(256))
			}
			dec, err := AppendDecompressBFP(nil, data, bits)
			refDec, refErr := DecompressBFPReference(data, bits)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("bits=%d: error divergence %v vs %v", bits, err, refErr)
			}
			if err != nil {
				continue
			}
			for i := range dec {
				if math.Float64bits(real(dec[i])) != math.Float64bits(real(refDec[i])) ||
					math.Float64bits(imag(dec[i])) != math.Float64bits(imag(refDec[i])) {
					t.Fatalf("bits=%d trial=%d sample %d: decode %v != reference %v",
						bits, trial, i, dec[i], refDec[i])
				}
			}
		}
	}
}
