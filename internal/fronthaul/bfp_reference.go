package fronthaul

import (
	"fmt"
	"math"
)

// This file retains the pre-SoA BFP codec verbatim: exponent search by
// iterated doubling, value-at-a-time shift-register bit packing, and a
// division per dequantized value. It is the differential-test oracle for the
// staged codec in bfp.go — TestBFPMatchesReference asserts the production
// path is byte-exact (encode) and bit-exact (decode) against it for every
// mantissa width — and the plainest statement of the format for readers. It
// is not called from any hot path.

// CompressBFPReference encodes exactly like CompressBFP but via the retained
// reference implementation.
func CompressBFPReference(iq []complex128, mantissaBits int) ([]byte, error) {
	if len(iq)%12 != 0 {
		return nil, fmt.Errorf("fronthaul: %d IQ samples not a multiple of 12", len(iq))
	}
	if mantissaBits < 2 || mantissaBits > 16 {
		return nil, fmt.Errorf("fronthaul: mantissa width %d out of range", mantissaBits)
	}
	nBlocks := len(iq) / 12
	out := make([]byte, 0, nBlocks*BFPBlockBytes(mantissaBits))
	var vals [ValuesPerBlock]float64
	maxMant := float64(int(1)<<(mantissaBits-1)) - 1

	for b := 0; b < nBlocks; b++ {
		for i := 0; i < 12; i++ {
			s := iq[b*12+i]
			vals[2*i] = real(s)
			vals[2*i+1] = imag(s)
		}
		var peak float64
		for _, v := range &vals {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		// Choose exponent e in [0,15] so values scaled by maxMant/2^(e-12)
		// land in [-maxMant, maxMant]: reference amplitude 8 maps to e=15.
		e := 0
		ref := peak / 8
		for e < 15 && float64(int(1)<<e)/float64(1<<15) < ref {
			e++
		}
		scale := 8 * float64(int(1)<<e) / float64(1<<15)
		if scale == 0 {
			scale = 1
		}
		out = append(out, byte(e))
		var acc uint64
		accBits := 0
		for _, v := range &vals {
			q := int64(math.Round(v / scale * maxMant))
			if q > int64(maxMant) {
				q = int64(maxMant)
			}
			if q < -int64(maxMant) {
				q = -int64(maxMant)
			}
			u := uint64(q) & ((1 << mantissaBits) - 1)
			acc = acc<<mantissaBits | u
			accBits += mantissaBits
			for accBits >= 8 {
				out = append(out, byte(acc>>(accBits-8)))
				accBits -= 8
			}
		}
		if accBits > 0 {
			out = append(out, byte(acc<<(8-accBits)))
		}
	}
	return out, nil
}

// DecompressBFPReference decodes exactly like DecompressBFP but via the
// retained reference implementation.
func DecompressBFPReference(data []byte, mantissaBits int) ([]complex128, error) {
	if mantissaBits < 2 || mantissaBits > 16 {
		return nil, fmt.Errorf("fronthaul: mantissa width %d out of range", mantissaBits)
	}
	blockBytes := BFPBlockBytes(mantissaBits)
	if len(data)%blockBytes != 0 {
		return nil, fmt.Errorf("fronthaul: %d bytes not a multiple of block size %d", len(data), blockBytes)
	}
	nBlocks := len(data) / blockBytes
	out := make([]complex128, 0, nBlocks*12)
	maxMant := float64(int(1)<<(mantissaBits-1)) - 1
	signBit := uint64(1) << (mantissaBits - 1)
	mask := uint64(1)<<mantissaBits - 1

	var vals [ValuesPerBlock]float64
	for b := 0; b < nBlocks; b++ {
		blk := data[b*blockBytes : (b+1)*blockBytes]
		e := int(blk[0] & 0x0F)
		scale := 8 * float64(int(1)<<e) / float64(1<<15)
		var acc uint64
		accBits := 0
		pos := 1
		for v := 0; v < ValuesPerBlock; v++ {
			for accBits < mantissaBits {
				acc = acc<<8 | uint64(blk[pos])
				pos++
				accBits += 8
			}
			u := acc >> (accBits - mantissaBits) & mask
			accBits -= mantissaBits
			q := int64(u)
			if u&signBit != 0 {
				q = int64(u) - int64(mask) - 1
			}
			// The encoder never emits the two's-complement minimum; clamp
			// so hostile payloads cannot exceed the nominal dynamic range.
			if q < -int64(maxMant) {
				q = -int64(maxMant)
			}
			vals[v] = float64(q) / maxMant * scale
		}
		for i := 0; i < 12; i++ {
			out = append(out, complex(vals[2*i], vals[2*i+1]))
		}
	}
	return out, nil
}
