package fronthaul

import (
	"encoding/binary"
	"errors"
)

// Section is one C-plane section descriptor: it tells the RU (and, over
// the air, the UE) which resources a UE occupies in the slot and how the
// transport block is protected. Downlink C-plane packets carry one section
// per scheduled UE; the UL grant sections ride on downlink C-plane packets
// the way PDCCH grants do.
type Section struct {
	UEID     uint16
	Dir      Direction // resources granted for UL or carrying DL data
	StartPRB uint16
	NumPRB   uint16
	ModBits  uint8 // modulation order (bits/symbol)
	HARQID   uint8
	Rv       uint8
	NewData  bool
	TBBytes  uint32
	// GrantSlot is the absolute slot the grant applies to (UL grants are
	// issued ahead of time; for DL data sections it equals the packet's
	// slot).
	GrantSlot uint64
}

const sectionWire = 2 + 1 + 2 + 2 + 1 + 1 + 1 + 1 + 4 + 8

// ErrBadSectionList reports a malformed C-plane section payload.
var ErrBadSectionList = errors.New("fronthaul: malformed section list")

// SectionsSize returns the encoded C-plane payload size for n sections.
func SectionsSize(n int) int { return 2 + n*sectionWire }

// EncodeSections serializes sections as a C-plane payload.
func EncodeSections(sections []Section) []byte {
	return AppendSections(make([]byte, 0, SectionsSize(len(sections))), sections)
}

// AppendSections is EncodeSections appending to dst, so the PHY's per-slot
// heartbeat path can build payloads in recycled buffers.
func AppendSections(dst []byte, sections []Section) []byte {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(sections)))
	out := append(dst, n[:]...)
	for _, s := range sections {
		var buf [sectionWire]byte
		binary.BigEndian.PutUint16(buf[0:2], s.UEID)
		buf[2] = uint8(s.Dir)
		binary.BigEndian.PutUint16(buf[3:5], s.StartPRB)
		binary.BigEndian.PutUint16(buf[5:7], s.NumPRB)
		buf[7] = s.ModBits
		buf[8] = s.HARQID
		buf[9] = s.Rv
		if s.NewData {
			buf[10] = 1
		}
		binary.BigEndian.PutUint32(buf[11:15], s.TBBytes)
		binary.BigEndian.PutUint64(buf[15:23], s.GrantSlot)
		out = append(out, buf[:]...)
	}
	return out
}

// DecodeSections parses a C-plane section payload.
func DecodeSections(data []byte) ([]Section, error) {
	if len(data) < 2 {
		return nil, ErrBadSectionList
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	data = data[2:]
	if len(data) < n*sectionWire {
		return nil, ErrBadSectionList
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Section, n)
	for i := 0; i < n; i++ {
		buf := data[i*sectionWire:]
		out[i] = Section{
			UEID:      binary.BigEndian.Uint16(buf[0:2]),
			Dir:       Direction(buf[2]),
			StartPRB:  binary.BigEndian.Uint16(buf[3:5]),
			NumPRB:    binary.BigEndian.Uint16(buf[5:7]),
			ModBits:   buf[7],
			HARQID:    buf[8],
			Rv:        buf[9],
			NewData:   buf[10] == 1,
			TBBytes:   binary.BigEndian.Uint32(buf[11:15]),
			GrantSlot: binary.BigEndian.Uint64(buf[15:23]),
		}
	}
	return out, nil
}
