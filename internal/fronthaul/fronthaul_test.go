package fronthaul

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

func TestSlotFromCounterRoundTrip(t *testing.T) {
	f := func(counter uint64) bool {
		s := SlotFromCounter(counter)
		return s.Valid() && s.Index() == counter%SlotWrap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotIDSequence(t *testing.T) {
	// Consecutive counters walk slot, then subframe, then frame.
	s0 := SlotFromCounter(0)
	s1 := SlotFromCounter(1)
	s2 := SlotFromCounter(2)
	if s0 != (SlotID{0, 0, 0}) || s1 != (SlotID{0, 0, 1}) || s2 != (SlotID{0, 1, 0}) {
		t.Fatalf("sequence: %v %v %v", s0, s1, s2)
	}
	if got := SlotFromCounter(SlotsPerFrame); got != (SlotID{1, 0, 0}) {
		t.Fatalf("frame rollover: %v", got)
	}
	if got := SlotFromCounter(SlotWrap); got != (SlotID{0, 0, 0}) {
		t.Fatalf("full wrap: %v", got)
	}
}

func TestSlotIDString(t *testing.T) {
	if got := (SlotID{3, 7, 1}).String(); got != "f3.sf7.s1" {
		t.Fatalf("String = %q", got)
	}
}

func TestDirectionString(t *testing.T) {
	if Uplink.String() != "UL" || Downlink.String() != "DL" {
		t.Fatal("direction strings wrong")
	}
}

func randomIQ(rng *sim.RNG, n int) []complex128 {
	iq := make([]complex128, n)
	for i := range iq {
		iq[i] = complex(rng.NormMeanStd(0, 1), rng.NormMeanStd(0, 1))
	}
	return iq
}

func TestBFPRoundTripAccuracy(t *testing.T) {
	rng := sim.NewRNG(1)
	iq := randomIQ(rng, 12*20)
	for _, width := range []int{9, 12, 14} {
		enc, err := CompressBFP(iq, width)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecompressBFP(enc, width)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(iq) {
			t.Fatalf("width %d: length %d != %d", width, len(dec), len(iq))
		}
		var errPow, sigPow float64
		for i := range iq {
			d := dec[i] - iq[i]
			errPow += real(d)*real(d) + imag(d)*imag(d)
			sigPow += real(iq[i])*real(iq[i]) + imag(iq[i])*imag(iq[i])
		}
		snr := 10 * math.Log10(sigPow/errPow)
		// Each mantissa bit is worth ~6 dB; 9 bits should exceed 35 dB.
		minSNR := 6*float64(width) - 20
		if snr < minSNR {
			t.Errorf("width %d: quantization SNR %.1f dB < %.1f dB", width, snr, minSNR)
		}
		if width > 9 {
			continue
		}
	}
}

func TestBFPMoreMantissaBitsBetter(t *testing.T) {
	rng := sim.NewRNG(2)
	iq := randomIQ(rng, 12*50)
	snrAt := func(width int) float64 {
		enc, _ := CompressBFP(iq, width)
		dec, _ := DecompressBFP(enc, width)
		var errPow, sigPow float64
		for i := range iq {
			d := dec[i] - iq[i]
			errPow += real(d)*real(d) + imag(d)*imag(d)
			sigPow += real(iq[i]) * real(iq[i])
		}
		return sigPow / errPow
	}
	if snrAt(14) <= snrAt(9) {
		t.Fatal("14-bit BFP not better than 9-bit")
	}
}

func TestBFPErrors(t *testing.T) {
	if _, err := CompressBFP(make([]complex128, 5), 9); err == nil {
		t.Fatal("ragged IQ accepted")
	}
	if _, err := CompressBFP(make([]complex128, 12), 1); err == nil {
		t.Fatal("1-bit mantissa accepted")
	}
	if _, err := DecompressBFP([]byte{1, 2, 3}, 9); err == nil {
		t.Fatal("ragged BFP payload accepted")
	}
}

func TestBFPBlockBytes(t *testing.T) {
	if got := BFPBlockBytes(9); got != 1+27 {
		t.Fatalf("BFPBlockBytes(9) = %d", got)
	}
	if got := BFPBlockBytes(8); got != 1+24 {
		t.Fatalf("BFPBlockBytes(8) = %d", got)
	}
}

func TestBFPSaturation(t *testing.T) {
	iq := make([]complex128, 12)
	iq[0] = complex(100, -100) // way outside [-8, 8]
	enc, err := CompressBFP(iq, 9)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressBFP(enc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if real(dec[0]) > 8.01 || imag(dec[0]) < -8.01 {
		t.Fatalf("saturated value decoded as %v, want clamp near +-8", dec[0])
	}
	if cmplx.Abs(dec[0]) < 1 {
		t.Fatalf("saturated value collapsed: %v", dec[0])
	}
}

func TestPacketSerializeDecodeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(3)
	iq := randomIQ(rng, 12*4)
	p, err := NewUplinkIQ(7, 42, SlotID{5, 3, 1}, 10, 4, iq, 9)
	if err != nil {
		t.Fatal(err)
	}
	wire := p.Serialize()
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.EAxC != 7 || got.Seq != 42 || got.Dir != Uplink {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Slot != (SlotID{5, 3, 1}) || got.StartPRB != 10 || got.NumPRB != 4 {
		t.Fatalf("slot/PRB mismatch: %+v", got)
	}
	dec, err := got.IQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(iq) {
		t.Fatalf("IQ length %d", len(dec))
	}
}

func TestPacketDecodeProperty(t *testing.T) {
	f := func(eaxc uint16, seq uint8, frame uint8, sub, slot uint8, start, num uint16) bool {
		s := SlotID{Frame: frame, Subframe: sub % 10, Slot: slot % 2}
		p := NewControl(eaxc, seq, Downlink, s, 3)
		got, err := Decode(p.Serialize())
		if err != nil {
			return false
		}
		return got.EAxC == eaxc && got.Seq == seq && got.Slot == s &&
			got.Dir == Downlink && got.Type == MsgRTControl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err != ErrShortPacket {
		t.Fatalf("short: %v", err)
	}
	p := NewControl(1, 1, Uplink, SlotID{}, 0)
	wire := p.Serialize()
	wire[0] = 0x30 // version 3
	if _, err := Decode(wire); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	wire = p.Serialize()
	wire[8] = 0xF0 // subframe 15
	if _, err := Decode(wire); err != ErrBadSlot {
		t.Fatalf("slot: %v", err)
	}
	wire = p.Serialize()
	wire[2] = 200 // claims 200-byte payload not present
	if _, err := Decode(wire); err != ErrShortPacket {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestPeekers(t *testing.T) {
	p := NewControl(9, 0, Downlink, SlotID{1, 2, 1}, 0)
	wire := p.Serialize()
	s, dir, ok := PeekSlot(wire)
	if !ok || s != (SlotID{1, 2, 1}) || dir != Downlink {
		t.Fatalf("PeekSlot: %v %v %v", s, dir, ok)
	}
	id, ok := PeekEAxC(wire)
	if !ok || id != 9 {
		t.Fatalf("PeekEAxC: %d %v", id, ok)
	}
	mt, ok := PeekType(wire)
	if !ok || mt != MsgRTControl {
		t.Fatalf("PeekType: %v %v", mt, ok)
	}
	if _, _, ok := PeekSlot(nil); ok {
		t.Fatal("PeekSlot on nil ok")
	}
	if _, ok := PeekEAxC([]byte{1}); ok {
		t.Fatal("PeekEAxC on short ok")
	}
	if _, ok := PeekType(nil); ok {
		t.Fatal("PeekType on nil ok")
	}
}

func TestIQOnControlPacketFails(t *testing.T) {
	p := NewControl(1, 0, Uplink, SlotID{}, 0)
	if _, err := p.IQ(); err == nil {
		t.Fatal("IQ() on C-plane packet succeeded")
	}
}

func TestMessageTypeString(t *testing.T) {
	if MsgIQData.String() != "U-plane" || MsgRTControl.String() != "C-plane" {
		t.Fatal("message type strings wrong")
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	secs := []Section{
		{UEID: 1, Dir: Downlink, StartPRB: 0, NumPRB: 50, ModBits: 6,
			HARQID: 2, Rv: 1, NewData: true, TBBytes: 4000, GrantSlot: 1234},
		{UEID: 2, Dir: Uplink, StartPRB: 50, NumPRB: 20, ModBits: 2,
			TBBytes: 100, GrantSlot: 1238},
	}
	got, err := DecodeSections(EncodeSections(secs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d sections", len(got))
	}
	for i := range secs {
		if got[i] != secs[i] {
			t.Fatalf("section %d: %+v vs %+v", i, got[i], secs[i])
		}
	}
}

func TestSectionsEmptyAndErrors(t *testing.T) {
	got, err := DecodeSections(EncodeSections(nil))
	if err != nil || got != nil {
		t.Fatalf("empty sections: %v %v", got, err)
	}
	if _, err := DecodeSections([]byte{0}); err == nil {
		t.Fatal("short list accepted")
	}
	if _, err := DecodeSections([]byte{0, 5, 1, 2}); err == nil {
		t.Fatal("truncated sections accepted")
	}
}

func TestPacketAuxRoundTrip(t *testing.T) {
	rng := sim.NewRNG(9)
	iq := randomIQ(rng, 12)
	p, err := NewUplinkIQ(1, 0, SlotID{}, 0, 1, iq, 9)
	if err != nil {
		t.Fatal(err)
	}
	p.Aux = []byte("transport block sidecar")
	got, err := Decode(p.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Aux) != "transport block sidecar" {
		t.Fatalf("Aux = %q", got.Aux)
	}
	if _, err := got.IQ(); err != nil {
		t.Fatalf("IQ after aux: %v", err)
	}
}
