package fronthaul

import (
	"testing"

	"slingshot/internal/sim"
)

// BenchmarkBFPRoundTrip tracks the BFP compress+decompress kernel as the
// hot paths run it — append-style APIs over recycled buffers, zero
// allocations per packet. (The seed kernel allocated the encode and decode
// buffers on every call; see BENCH_2026-08-06_baseline.json.) 288 samples
// is a 24-PRB allocation, a typical sampled-block payload.
// BenchmarkBFPCompress and BenchmarkBFPDecompress track the two kernel
// halves separately so a regression in one is not masked by the other.
func BenchmarkBFPCompress(b *testing.B) {
	rng := sim.NewRNG(3)
	iq := make([]complex128, 288)
	for i := range iq {
		iq[i] = complex(rng.Norm(), rng.Norm())
	}
	enc, err := AppendCompressBFP(nil, iq, 9) // size the buffer before timing
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err = AppendCompressBFP(enc[:0], iq, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFPDecompress(b *testing.B) {
	rng := sim.NewRNG(3)
	iq := make([]complex128, 288)
	for i := range iq {
		iq[i] = complex(rng.Norm(), rng.Norm())
	}
	enc, err := CompressBFP(iq, 9)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := AppendDecompressBFP(nil, enc, 9) // size buffer, build tables
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err = AppendDecompressBFP(dec[:0], enc, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = dec
}

func BenchmarkBFPRoundTrip(b *testing.B) {
	rng := sim.NewRNG(3)
	iq := make([]complex128, 288)
	for i := range iq {
		iq[i] = complex(rng.Norm(), rng.Norm())
	}
	// One untimed round trip sizes both buffers and builds the dequant
	// tables: the timed loop is the steady state, zero allocations.
	enc, err := AppendCompressBFP(nil, iq, 9)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := AppendDecompressBFP(nil, enc, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err = AppendCompressBFP(enc[:0], iq, 9)
		if err != nil {
			b.Fatal(err)
		}
		dec, err = AppendDecompressBFP(dec[:0], enc, 9)
		if err != nil {
			b.Fatal(err)
		}
		if len(dec) != len(iq) {
			b.Fatalf("round trip length %d != %d", len(dec), len(iq))
		}
	}
}
