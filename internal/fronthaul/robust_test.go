package fronthaul

import (
	"testing"
	"testing/quick"

	"slingshot/internal/sim"
)

// Decoder robustness: arbitrary bytes must never panic, only error or
// produce a structurally valid packet. These guard the switch dataplane
// and PHY ingress, which parse frames straight off the wire.

func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		pkt, err := Decode(data)
		if err != nil {
			return pkt == nil
		}
		return pkt.Slot.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		PeekSlot(data)
		PeekEAxC(data)
		PeekType(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSectionsNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		secs, err := DecodeSections(data)
		return err != nil || secs != nil || len(data) >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressBFPNeverPanics(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(n uint16, width uint8) bool {
		w := int(width%15) + 2
		data := make([]byte, int(n)%4096)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		iq, err := DecompressBFP(data, w)
		if err != nil {
			return iq == nil
		}
		// Every decoded value must be finite and bounded by the BFP
		// dynamic range.
		for _, s := range iq {
			if real(s) > 9 || real(s) < -9 || imag(s) > 9 || imag(s) < -9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBitflipCorruptionIsNoise: corrupting a valid U-plane payload must
// never crash the receive path; it decodes to (possibly garbage) IQ —
// which the PHY treats as channel noise, the §4 equivalence.
func TestBitflipCorruptionIsNoise(t *testing.T) {
	rng := sim.NewRNG(2)
	iq := make([]complex128, 24)
	for i := range iq {
		iq[i] = complex(rng.Norm(), rng.Norm())
	}
	pkt, err := NewUplinkIQ(1, 0, SlotID{}, 0, 2, iq, 9)
	if err != nil {
		t.Fatal(err)
	}
	wire := pkt.Serialize()
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), wire...)
		for k := 0; k < 3; k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		got, err := Decode(mut)
		if err != nil {
			continue // header corruption -> rejected, fine
		}
		if got.Type == MsgIQData {
			got.IQ() // must not panic
		}
	}
}
