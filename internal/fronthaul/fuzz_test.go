package fronthaul

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// FuzzDecodePacket feeds arbitrary bytes to the eCPRI packet decoder: it
// must never panic, and any packet it accepts must survive a
// serialize/decode round trip unchanged (decode is a left inverse of
// serialize on the decoder's image).
func FuzzDecodePacket(f *testing.F) {
	iq, _ := NewUplinkIQ(3, 7, SlotID{Frame: 1, Subframe: 2, Slot: 1}, 0, 4,
		make([]complex128, 24), 9)
	iq.Aux = []byte("aux-bytes")
	f.Add(iq.Serialize())
	ctl := NewControl(1, 0, Downlink, SlotID{}, 2)
	ctl.Payload = EncodeSections([]Section{{UEID: 5, NumPRB: 4, ModBits: 2, TBBytes: 100}})
	f.Add(ctl.Serialize())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x10}, 21))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		// Peek helpers must agree with the full decode.
		if slot, dir, ok := PeekSlot(data); !ok || slot != p.Slot || dir != p.Dir {
			t.Fatalf("PeekSlot = %v/%v/%v, decode = %v/%v", slot, dir, ok, p.Slot, p.Dir)
		}
		if eaxc, ok := PeekEAxC(data); !ok || eaxc != p.EAxC {
			t.Fatalf("PeekEAxC = %d/%v, decode = %d", eaxc, ok, p.EAxC)
		}
		if mt, ok := PeekType(data); !ok || mt != p.Type {
			t.Fatalf("PeekType = %v/%v, decode = %v", mt, ok, p.Type)
		}
		wire := p.Serialize()
		q, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode of serialized packet failed: %v", err)
		}
		// Compare by re-serialization: Serialize is deterministic, so byte
		// equality means full field equality including payload and aux.
		if !bytes.Equal(wire, q.Serialize()) {
			t.Fatalf("round trip changed packet:\n  first  %#v\n  second %#v", p, q)
		}
	})
}

// FuzzDecodeSections checks the C-plane section-list codec: no panic on
// arbitrary bytes, and decode∘encode∘decode == decode.
func FuzzDecodeSections(f *testing.F) {
	f.Add(EncodeSections(nil))
	f.Add(EncodeSections([]Section{
		{UEID: 1, Dir: Uplink, StartPRB: 0, NumPRB: 6, ModBits: 4, HARQID: 2, Rv: 1, NewData: true, TBBytes: 320, GrantSlot: 99},
		{UEID: 2, Dir: Downlink, NumPRB: 1, ModBits: 2, TBBytes: 64},
	}))
	f.Add([]byte{0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		secs, err := DecodeSections(data)
		if err != nil {
			return
		}
		again, err := DecodeSections(EncodeSections(secs))
		if err != nil {
			t.Fatalf("re-decode of encoded sections failed: %v", err)
		}
		if len(secs) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(secs, again) {
			t.Fatalf("round trip changed sections:\n  first  %#v\n  second %#v", secs, again)
		}
	})
}

// FuzzDecompressBFP throws arbitrary bytes at the BFP decompressor across
// mantissa widths: no panic, outputs bounded to the nominal dynamic range,
// and recompression of the (already quantized) samples stays within one
// quantization step.
func FuzzDecompressBFP(f *testing.F) {
	good, _ := CompressBFP(make([]complex128, 12), 9)
	f.Add(good, uint8(9))
	f.Add([]byte{0x0F, 1, 2, 3}, uint8(2))
	f.Add([]byte{}, uint8(16))

	f.Fuzz(func(t *testing.T, data []byte, mant uint8) {
		bits := int(mant%15) + 2 // [2,16]
		iq, err := DecompressBFP(data, bits)
		if err != nil {
			return
		}
		for _, s := range iq {
			if math.IsNaN(real(s)) || math.IsInf(real(s), 0) ||
				math.IsNaN(imag(s)) || math.IsInf(imag(s), 0) {
				t.Fatalf("non-finite sample %v", s)
			}
			if math.Abs(real(s)) > 8 || math.Abs(imag(s)) > 8 {
				t.Fatalf("sample %v outside nominal [-8,8] range", s)
			}
		}
		re, err := CompressBFP(iq, bits)
		if err != nil {
			t.Fatalf("recompression of decompressed samples failed: %v", err)
		}
		iq2, err := DecompressBFP(re, bits)
		if err != nil || len(iq2) != len(iq) {
			t.Fatalf("second decompression failed: %v (%d vs %d samples)", err, len(iq2), len(iq))
		}
		// One full quantization step at the largest exponent bounds the
		// drift; BFP is lossy so exact byte stability is not promised.
		tol := 8.0/(float64(int(1)<<(bits-1))-1) + 1e-12
		for i := range iq {
			if math.Abs(real(iq[i])-real(iq2[i])) > tol || math.Abs(imag(iq[i])-imag(iq2[i])) > tol {
				t.Fatalf("sample %d drifted beyond one step (%g): %v -> %v", i, tol, iq[i], iq2[i])
			}
		}
	})
}

// FuzzCompressBFP drives the compressor with arbitrary sample values and
// checks the decompressed result stays within half a quantization step of
// the (saturated) input.
func FuzzCompressBFP(f *testing.F) {
	f.Add([]byte{0, 64, 128, 192, 255, 1, 2, 3}, uint8(9))
	f.Add(bytes.Repeat([]byte{0xAB}, 48), uint8(5))

	f.Fuzz(func(t *testing.T, data []byte, mant uint8) {
		bits := int(mant%15) + 2
		n := len(data) / 2 / 12 * 12 // complex samples, multiple of 12
		if n == 0 {
			return
		}
		iq := make([]complex128, n)
		for i := range iq {
			re := (float64(data[2*i]) - 128) / 16 // [-8, 7.94]
			im := (float64(data[2*i+1]) - 128) / 16
			iq[i] = complex(re, im)
		}
		enc, err := CompressBFP(iq, bits)
		if err != nil {
			t.Fatalf("compress rejected in-range input: %v", err)
		}
		if want := n / 12 * BFPBlockBytes(bits); len(enc) != want {
			t.Fatalf("encoded %d bytes, want %d", len(enc), want)
		}
		dec, err := DecompressBFP(enc, bits)
		if err != nil || len(dec) != n {
			t.Fatalf("decompress failed: %v", err)
		}
		tol := 8.0/(float64(int(1)<<(bits-1))-1) + 1e-12
		for i := range iq {
			if math.Abs(real(iq[i])-real(dec[i])) > tol || math.Abs(imag(iq[i])-imag(dec[i])) > tol {
				t.Fatalf("sample %d error beyond %g: %v -> %v", i, tol, iq[i], dec[i])
			}
		}
	})
}
