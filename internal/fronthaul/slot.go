// Package fronthaul implements the O-RAN split option-7.2x fronthaul
// protocol between the RU and the PHY: eCPRI framing, control-plane (C)
// and user-plane (U) section headers carrying the frame/subframe/slot
// identifiers Slingshot's switch logic keys on, and block-floating-point
// (BFP) IQ compression.
//
// The codec follows the gopacket idiom: types decode from and serialize to
// byte slices with explicit errors, no hidden allocation on the decode
// path beyond the payload copy.
package fronthaul

import "fmt"

// Numerology: 30 kHz subcarrier spacing gives 2 slots per 1 ms subframe,
// 10 subframes per 10 ms frame, and an 8-bit frame counter (O-RAN).
const (
	SlotsPerSubframe  = 2
	SubframesPerFrame = 10
	SlotsPerFrame     = SlotsPerSubframe * SubframesPerFrame
	FrameWrap         = 256
	// SlotWrap is the number of distinct SlotID values before wrap-around
	// (2.56 s of airtime).
	SlotWrap = FrameWrap * SlotsPerFrame
)

// SlotID identifies a TTI on the air interface the way fronthaul packet
// headers do: 8-bit frame, 4-bit subframe, 6-bit slot-in-subframe.
type SlotID struct {
	Frame    uint8
	Subframe uint8
	Slot     uint8
}

// SlotFromCounter converts an absolute slot counter (monotonic TTI index
// since simulation start) into the wrapped on-air SlotID.
func SlotFromCounter(counter uint64) SlotID {
	w := counter % SlotWrap
	return SlotID{
		Frame:    uint8(w / SlotsPerFrame),
		Subframe: uint8(w % SlotsPerFrame / SlotsPerSubframe),
		Slot:     uint8(w % SlotsPerSubframe),
	}
}

// Index returns the SlotID's position within the wrap period [0, SlotWrap).
func (s SlotID) Index() uint64 {
	return uint64(s.Frame)*SlotsPerFrame + uint64(s.Subframe)*SlotsPerSubframe + uint64(s.Slot)
}

// Valid reports whether the fields are within protocol ranges.
func (s SlotID) Valid() bool {
	return s.Subframe < SubframesPerFrame && s.Slot < SlotsPerSubframe
}

func (s SlotID) String() string {
	return fmt.Sprintf("f%d.sf%d.s%d", s.Frame, s.Subframe, s.Slot)
}

// Direction distinguishes uplink from downlink fronthaul traffic.
type Direction uint8

// Fronthaul traffic directions.
const (
	Uplink   Direction = 0
	Downlink Direction = 1
)

func (d Direction) String() string {
	if d == Uplink {
		return "UL"
	}
	return "DL"
}
