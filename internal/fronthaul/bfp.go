package fronthaul

import (
	"fmt"
	"math"
)

// Block floating point (BFP) IQ compression, as used by O-RAN fronthaul:
// each PRB's 12 complex samples (24 real values) share one 4-bit exponent;
// each value is stored as a signed mantissa of MantissaBits bits.
//
// Compression is lossy: quantization noise appears exactly like a slightly
// worse channel, which is the behaviour the paper relies on when fronthaul
// packets are disturbed.

// DefaultMantissaBits is the common 9-bit O-RAN BFP configuration.
const DefaultMantissaBits = 9

// ValuesPerBlock is the number of real values sharing an exponent
// (12 subcarriers x I/Q).
const ValuesPerBlock = 24

// BFPBlockBytes returns the encoded size of one block at the given
// mantissa width: 1 exponent byte + ceil(24*width/8) mantissa bytes.
func BFPBlockBytes(mantissaBits int) int {
	return 1 + (ValuesPerBlock*mantissaBits+7)/8
}

// CompressBFP encodes complex samples (len must be a multiple of 12) into
// BFP blocks. Values are expected in roughly [-8, 8]; larger magnitudes
// saturate.
func CompressBFP(iq []complex128, mantissaBits int) ([]byte, error) {
	return AppendCompressBFP(nil, iq, mantissaBits)
}

// AppendCompressBFP is CompressBFP appending to dst, so per-packet hot
// paths can reuse one output buffer (pass dst[:0]) instead of allocating.
func AppendCompressBFP(dst []byte, iq []complex128, mantissaBits int) ([]byte, error) {
	if len(iq)%12 != 0 {
		return nil, fmt.Errorf("fronthaul: %d IQ samples not a multiple of 12", len(iq))
	}
	if mantissaBits < 2 || mantissaBits > 16 {
		return nil, fmt.Errorf("fronthaul: mantissa width %d out of range", mantissaBits)
	}
	nBlocks := len(iq) / 12
	out := dst
	if need := len(out) + nBlocks*BFPBlockBytes(mantissaBits); cap(out) < need {
		grown := make([]byte, len(out), need)
		copy(grown, out)
		out = grown
	}
	var vals [ValuesPerBlock]float64
	maxMant := float64(int(1)<<(mantissaBits-1)) - 1

	for b := 0; b < nBlocks; b++ {
		for i := 0; i < 12; i++ {
			s := iq[b*12+i]
			vals[2*i] = real(s)
			vals[2*i+1] = imag(s)
		}
		var peak float64
		for _, v := range &vals {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		// Choose exponent e in [0,15] so peak * 2^(mantissaBits-1-4+?) ...
		// We normalize with scale = maxMant / 2^e * 2^-3 reference: pick e
		// such that peak/2^(e-7) <= 1, i.e. values scaled into [-1,1] then
		// quantized to maxMant steps.
		e := 0
		ref := peak / 8 // reference amplitude 8 maps to e=15 ceiling
		for e < 15 && float64(int(1)<<e)/float64(1<<15) < ref {
			e++
		}
		scale := 8 * float64(int(1)<<e) / float64(1<<15)
		if scale == 0 {
			scale = 1
		}
		out = append(out, byte(e))
		var acc uint64
		accBits := 0
		for _, v := range &vals {
			q := int64(math.Round(v / scale * maxMant))
			if q > int64(maxMant) {
				q = int64(maxMant)
			}
			if q < -int64(maxMant) {
				q = -int64(maxMant)
			}
			u := uint64(q) & ((1 << mantissaBits) - 1)
			acc = acc<<mantissaBits | u
			accBits += mantissaBits
			for accBits >= 8 {
				out = append(out, byte(acc>>(accBits-8)))
				accBits -= 8
			}
		}
		if accBits > 0 {
			out = append(out, byte(acc<<(8-accBits)))
		}
	}
	return out, nil
}

// DecompressBFP decodes BFP blocks back into complex samples.
func DecompressBFP(data []byte, mantissaBits int) ([]complex128, error) {
	return AppendDecompressBFP(nil, data, mantissaBits)
}

// AppendDecompressBFP is DecompressBFP appending to dst, so per-packet hot
// paths can reuse one IQ buffer (pass dst[:0]) instead of allocating.
func AppendDecompressBFP(dst []complex128, data []byte, mantissaBits int) ([]complex128, error) {
	if mantissaBits < 2 || mantissaBits > 16 {
		return nil, fmt.Errorf("fronthaul: mantissa width %d out of range", mantissaBits)
	}
	blockBytes := BFPBlockBytes(mantissaBits)
	if len(data)%blockBytes != 0 {
		return nil, fmt.Errorf("fronthaul: %d bytes not a multiple of block size %d", len(data), blockBytes)
	}
	nBlocks := len(data) / blockBytes
	out := dst
	if need := len(out) + nBlocks*12; cap(out) < need {
		grown := make([]complex128, len(out), need)
		copy(grown, out)
		out = grown
	}
	maxMant := float64(int(1)<<(mantissaBits-1)) - 1
	signBit := uint64(1) << (mantissaBits - 1)
	mask := uint64(1)<<mantissaBits - 1

	var vals [ValuesPerBlock]float64
	for b := 0; b < nBlocks; b++ {
		blk := data[b*blockBytes : (b+1)*blockBytes]
		e := int(blk[0] & 0x0F)
		scale := 8 * float64(int(1)<<e) / float64(1<<15)
		var acc uint64
		accBits := 0
		pos := 1
		for v := 0; v < ValuesPerBlock; v++ {
			for accBits < mantissaBits {
				acc = acc<<8 | uint64(blk[pos])
				pos++
				accBits += 8
			}
			u := acc >> (accBits - mantissaBits) & mask
			accBits -= mantissaBits
			q := int64(u)
			if u&signBit != 0 {
				q = int64(u) - int64(mask) - 1
			}
			// The encoder never emits the two's-complement minimum; clamp
			// so hostile payloads cannot exceed the nominal dynamic range.
			if q < -int64(maxMant) {
				q = -int64(maxMant)
			}
			vals[v] = float64(q) / maxMant * scale
		}
		for i := 0; i < 12; i++ {
			out = append(out, complex(vals[2*i], vals[2*i+1]))
		}
	}
	return out, nil
}
