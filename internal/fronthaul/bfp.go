package fronthaul

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Block floating point (BFP) IQ compression, as used by O-RAN fronthaul:
// each PRB's 12 complex samples (24 real values) share one 4-bit exponent;
// each value is stored as a signed mantissa of MantissaBits bits.
//
// Compression is lossy: quantization noise appears exactly like a slightly
// worse channel, which is the behaviour the paper relies on when fronthaul
// packets are disturbed.
//
// The codec is structured as per-block SoA passes (DESIGN.md §13): stage the
// 24 real values, find the peak and exponent in the float bit domain, then
// quantize/pack (or unpack/dequantize) the whole block with branch-free
// inner loops. Output is byte-exact with the retained reference codec
// (bfp_reference.go) for all finite inputs — the exponent comes straight
// from the IEEE exponent field instead of a doubling loop, quantization
// folds the exact power-of-two scale into one multiply, and dequantization
// reads the once-rounded q/maxMant quotient from a per-width table.

// DefaultMantissaBits is the common 9-bit O-RAN BFP configuration.
const DefaultMantissaBits = 9

// ValuesPerBlock is the number of real values sharing an exponent
// (12 subcarriers x I/Q).
const ValuesPerBlock = 24

// BFPBlockBytes returns the encoded size of one block at the given
// mantissa width: 1 exponent byte + ceil(24*width/8) mantissa bytes.
func BFPBlockBytes(mantissaBits int) int {
	return 1 + (ValuesPerBlock*mantissaBits+7)/8
}

// bfpScale returns 2^(e-12), the amplitude one mantissa unit short of
// saturating exponent e. Exact: it is built directly in the exponent field.
func bfpScale(e int) float64 {
	return math.Float64frombits(uint64(e-12+1023) << 52)
}

// bfpExponent picks the smallest e in [0,15] with 2^(e-15) >= peak/8 —
// the same exponent the reference's doubling loop finds, read straight off
// the IEEE representation: for x >= 0, 2^k >= x iff k+1023 >= ceil(bits/2^52)
// (subnormals and zero fall out with ceil == 0 or 1, infinities clamp high).
func bfpExponent(peak float64) int {
	rb := math.Float64bits(peak / 8)
	e := int((rb+(1<<52-1))>>52) - 1008
	if e < 0 {
		e = 0
	}
	if e > 15 {
		e = 15
	}
	return e
}

// dequantTables lazily caches the per-width dequantization table, indexed
// by the raw mantissa field: tab[u] = float64(sext(u) clamped)/maxMant, so
// decoding is a single lookup — sign extension, the clamp of the
// never-emitted two's-complement minimum, and the quotient (rounded once;
// the power-of-two scale multiply afterwards is exact, so lookup is
// bit-identical to dividing per value) are all baked in.
var dequantTables [17]struct {
	once sync.Once
	tab  []float64
}

func dequantTable(mantissaBits int) []float64 {
	d := &dequantTables[mantissaBits]
	d.once.Do(func() {
		n := int(1) << mantissaBits
		maxMant := n/2 - 1
		tab := make([]float64, n)
		for u := 0; u < n; u++ {
			q := u
			if u >= n/2 {
				q = u - n
			}
			if q < -maxMant {
				q = -maxMant
			}
			tab[u] = float64(q) / float64(maxMant)
		}
		d.tab = tab
	})
	return d.tab
}

// CompressBFP encodes complex samples (len must be a multiple of 12) into
// BFP blocks. Values are expected in roughly [-8, 8]; larger magnitudes
// saturate.
func CompressBFP(iq []complex128, mantissaBits int) ([]byte, error) {
	return AppendCompressBFP(nil, iq, mantissaBits)
}

// AppendCompressBFP is CompressBFP appending to dst, so per-packet hot
// paths can reuse one output buffer (pass dst[:0]) instead of allocating.
func AppendCompressBFP(dst []byte, iq []complex128, mantissaBits int) ([]byte, error) {
	if len(iq)%12 != 0 {
		return nil, fmt.Errorf("fronthaul: %d IQ samples not a multiple of 12", len(iq))
	}
	if mantissaBits < 2 || mantissaBits > 16 {
		return nil, fmt.Errorf("fronthaul: mantissa width %d out of range", mantissaBits)
	}
	nBlocks := len(iq) / 12
	out := dst
	if need := len(out) + nBlocks*BFPBlockBytes(mantissaBits); cap(out) < need {
		grown := make([]byte, len(out), need)
		copy(grown, out)
		out = grown
	}
	maxMant := float64(int(1)<<(mantissaBits-1)) - 1
	qMax := int64(maxMant)
	mask := uint64(1)<<mantissaBits - 1

	if mantissaBits == 9 {
		return compressBFP9(out, iq), nil
	}
	var mant [ValuesPerBlock]uint64
	for b := 0; b < nBlocks; b++ {
		blk := iq[b*12 : b*12+12 : b*12+12]
		e := bfpBlockExponent(blk)
		qscale := maxMant * bfpQScale(e)
		out = append(out, byte(e))
		for i, s := range blk {
			mant[2*i] = uint64(bfpRound(real(s)*qscale, qMax)) & mask
			mant[2*i+1] = uint64(bfpRound(imag(s)*qscale, qMax)) & mask
		}
		var acc uint64
		accBits := 0
		for _, u := range &mant {
			acc = acc<<mantissaBits | u
			accBits += mantissaBits
			for accBits >= 8 {
				out = append(out, byte(acc>>(accBits-8)))
				accBits -= 8
			}
		}
		if accBits > 0 {
			out = append(out, byte(acc<<(8-accBits)))
		}
	}
	return out, nil
}

// bfpPeakBits returns the block peak |value| as float bits: clearing the
// sign bit is Abs, and sign-cleared doubles order as their uint64 bits, so
// the running maxima are integer compare/selects with no float branches
// (two accumulators halve the select chain).
func bfpPeakBits(blk []complex128) uint64 {
	var pr, pi uint64
	for _, s := range blk {
		ar := math.Float64bits(real(s)) &^ (1 << 63)
		ai := math.Float64bits(imag(s)) &^ (1 << 63)
		if ar > pr {
			pr = ar
		}
		if ai > pi {
			pi = ai
		}
	}
	if pi > pr {
		pr = pi
	}
	return pr
}

// bfpBlockExponent runs the peak pass and picks the block exponent.
func bfpBlockExponent(blk []complex128) int {
	return bfpExponent(math.Float64frombits(bfpPeakBits(blk)))
}

// bfpQScale returns 2^(12-e) — the exact power-of-two factor mapping values
// onto the mantissa grid (multiplying by it rounds identically to dividing
// by the block scale).
func bfpQScale(e int) float64 {
	return math.Float64frombits(uint64(1023+12-e) << 52)
}

// bfpRound is int64(math.Round(x)) clamped to [-qMax, qMax], via the
// magic-number trick: 1.5*2^52 puts any |x| <= 2^51 in the [2^52, 2^53)
// binade whose spacing is exactly 1, so x + magic - magic rounds x to the
// integer grid (half to even) for either sign with no transfers out of the
// float domain; the ties-only fixup turns that into half away from zero,
// matching math.Round (x is t+d with integral t, so q's sign stands in for
// x's, and the rare branches never fire on continuous data). Bit-exact with
// the reference's conversion for every input: |x| >= 2^51 (coarsened but
// beyond the clamp), NaN, and ±Inf all land on the same clamped value.
func bfpRound(x float64, qMax int64) int64 {
	const magic = 3 * (1 << 51) // 1.5*2^52
	t := x + magic - magic
	q := int64(t)
	d := x - t
	if d == 0.5 { // tie rounded toward -inf; round positives away
		if q >= 0 {
			q++
		}
	} else if d == -0.5 { // tie rounded toward +inf; round negatives away
		if q <= 0 {
			q--
		}
	}
	if q > qMax {
		q = qMax
	}
	if q < -qMax {
		q = -qMax
	}
	return q
}

// compressBFP9 is the 9-bit fast path: quantization fuses straight into the
// byte-aligned group layout (8 mantissas fill exactly 9 bytes), writing the
// whole 28-byte block with indexed stores — no mantissa staging array and
// no shift-register state. out already has capacity for every block.
func compressBFP9(out []byte, iq []complex128) []byte {
	const mask = 511
	for b := 0; b < len(iq)/12; b++ {
		blk := iq[b*12 : b*12+12 : b*12+12]
		e := bfpBlockExponent(blk)
		qscale := 255 * bfpQScale(e)
		n := len(out)
		out = out[:n+28]
		out[n] = byte(e)
		for g := 0; g < 3; g++ {
			s4 := blk[g*4 : g*4+4 : g*4+4]
			u0 := uint64(bfpRound(real(s4[0])*qscale, 255)) & mask
			u1 := uint64(bfpRound(imag(s4[0])*qscale, 255)) & mask
			u2 := uint64(bfpRound(real(s4[1])*qscale, 255)) & mask
			u3 := uint64(bfpRound(imag(s4[1])*qscale, 255)) & mask
			u4 := uint64(bfpRound(real(s4[2])*qscale, 255)) & mask
			u5 := uint64(bfpRound(imag(s4[2])*qscale, 255)) & mask
			u6 := uint64(bfpRound(real(s4[3])*qscale, 255)) & mask
			u7 := uint64(bfpRound(imag(s4[3])*qscale, 255)) & mask
			hi := u0<<55 | u1<<46 | u2<<37 | u3<<28 |
				u4<<19 | u5<<10 | u6<<1 | u7>>8
			binary.BigEndian.PutUint64(out[n+1+g*9:], hi)
			out[n+1+g*9+8] = byte(u7)
		}
	}
	return out
}

// DecompressBFP decodes BFP blocks back into complex samples.
func DecompressBFP(data []byte, mantissaBits int) ([]complex128, error) {
	return AppendDecompressBFP(nil, data, mantissaBits)
}

// AppendDecompressBFP is DecompressBFP appending to dst, so per-packet hot
// paths can reuse one IQ buffer (pass dst[:0]) instead of allocating.
func AppendDecompressBFP(dst []complex128, data []byte, mantissaBits int) ([]complex128, error) {
	if mantissaBits < 2 || mantissaBits > 16 {
		return nil, fmt.Errorf("fronthaul: mantissa width %d out of range", mantissaBits)
	}
	blockBytes := BFPBlockBytes(mantissaBits)
	if len(data)%blockBytes != 0 {
		return nil, fmt.Errorf("fronthaul: %d bytes not a multiple of block size %d", len(data), blockBytes)
	}
	nBlocks := len(data) / blockBytes
	out := dst
	if need := len(out) + nBlocks*12; cap(out) < need {
		grown := make([]complex128, len(out), need)
		copy(grown, out)
		out = grown
	}
	tab := dequantTable(mantissaBits)
	mask := uint64(1)<<mantissaBits - 1

	if mantissaBits == 9 {
		// Fixed-width fast path: unpack each 9-byte group as one big-endian
		// word plus a tail byte; every mantissa field indexes the raw table
		// directly (the array-pointer conversion checks the length once;
		// shift/mask-bounded indices need no per-value bounds check).
		t9 := (*[512]float64)(tab)
		for b := 0; b < nBlocks; b++ {
			blk := data[b*blockBytes : (b+1)*blockBytes : (b+1)*blockBytes]
			scale := bfpScale(int(blk[0] & 0x0F))
			o := out[len(out) : len(out)+12 : len(out)+12]
			for g := 0; g < 3; g++ {
				a := binary.BigEndian.Uint64(blk[1+g*9:])
				c := uint64(blk[1+g*9+8])
				v0 := t9[a>>55] * scale
				v1 := t9[a>>46&511] * scale
				v2 := t9[a>>37&511] * scale
				v3 := t9[a>>28&511] * scale
				v4 := t9[a>>19&511] * scale
				v5 := t9[a>>10&511] * scale
				v6 := t9[a>>1&511] * scale
				v7 := t9[(a&1)<<8|c] * scale
				og := o[g*4 : g*4+4 : g*4+4]
				og[0] = complex(v0, v1)
				og[1] = complex(v2, v3)
				og[2] = complex(v4, v5)
				og[3] = complex(v6, v7)
			}
			out = out[:len(out)+12]
		}
		return out, nil
	}

	var vals [ValuesPerBlock]float64
	for b := 0; b < nBlocks; b++ {
		blk := data[b*blockBytes : (b+1)*blockBytes : (b+1)*blockBytes]
		scale := bfpScale(int(blk[0] & 0x0F))
		var acc uint64
		accBits := 0
		pos := 1
		for v := 0; v < ValuesPerBlock; v++ {
			for accBits < mantissaBits {
				acc = acc<<8 | uint64(blk[pos])
				pos++
				accBits += 8
			}
			vals[v] = tab[acc>>(accBits-mantissaBits)&mask] * scale
			accBits -= mantissaBits
		}
		o := out[len(out) : len(out)+12 : len(out)+12]
		for i := range o {
			o[i] = complex(vals[2*i], vals[2*i+1])
		}
		out = out[:len(out)+12]
	}
	return out, nil
}
