package chaos

// Soak runs seeds 1..n in ascending order and returns the report of the
// first failing seed — ascending order makes it the minimal one, which is
// what a developer wants to replay. ok is true when every seed passed.
func Soak(n int, run func(seed uint64) *Report) (failing *Report, ok bool) {
	for seed := uint64(1); seed <= uint64(n); seed++ {
		rep := run(seed)
		if rep.TotalViolations > 0 {
			return rep, false
		}
	}
	return nil, true
}
