package chaos

import "slingshot/internal/par"

// Soak runs seeds 1..n and returns the report of the first failing seed —
// reporting in ascending order makes it the minimal one, which is what a
// developer wants to replay. ok is true when every seed passed.
//
// The seeds are independent simulations (each run builds its own engine
// and RNG tree), so they shard across the internal/par worker pool; the
// reports are then scanned in ascending seed order, making the outcome
// identical to the sequential loop. With SLINGSHOT_WORKERS=1 the runs
// execute inline in ascending order, exactly like the sequential code.
func Soak(n int, run func(seed uint64) *Report) (failing *Report, ok bool) {
	reports := par.Map(n, func(i int) *Report {
		return run(uint64(i) + 1)
	})
	for _, rep := range reports {
		if rep.TotalViolations > 0 {
			return rep, false
		}
	}
	return nil, true
}
