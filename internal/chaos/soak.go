package chaos

import "slingshot/internal/par"

// SoakReports runs seeds 1..n where one seed may span many deployments —
// a sharded fleet returns one report per cell — and returns the first
// failing report in (seed, position) order: ascending seed, then the
// run's own report order (cell index for fleets). That is the minimal
// reproducer a developer wants to replay.
//
// Seeds are independent simulations, so they shard across the
// internal/par worker pool; scanning afterwards in ascending order makes
// the outcome identical to the sequential loop. With SLINGSHOT_WORKERS=1
// the runs execute inline in ascending order, exactly like the
// sequential code. A fleet's own internal parallelism nests safely: par
// batches run inline when the pool is already drained by the soak.
func SoakReports(n int, run func(seed uint64) []*Report) (failing *Report, ok bool) {
	batches := par.Map(n, func(i int) []*Report {
		return run(uint64(i) + 1)
	})
	for _, reports := range batches {
		for _, rep := range reports {
			if rep.TotalViolations > 0 {
				return rep, false
			}
		}
	}
	return nil, true
}

// Soak is the single-deployment-per-seed form: seeds 1..n, first failing
// seed's report returned. ok is true when every seed passed.
func Soak(n int, run func(seed uint64) *Report) (failing *Report, ok bool) {
	return SoakReports(n, func(seed uint64) []*Report {
		return []*Report{run(seed)}
	})
}
