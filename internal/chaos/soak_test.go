package chaos

import (
	"flag"
	"fmt"
	"testing"

	"slingshot/internal/mem"
	"slingshot/internal/sim"
)

// chaosSeeds is the soak width: `go test ./internal/chaos -chaos.seeds 25`
// runs the default profile over seeds 1..25 and fails with the minimal
// failing seed on any invariant violation.
var chaosSeeds = flag.Int("chaos.seeds", 3, "number of seeds to soak the default chaos profile over")

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	profile := Default()
	rep, ok := Soak(*chaosSeeds, func(seed uint64) *Report {
		r := Run(seed, profile)
		t.Logf("seed %d: %d events, %d violations, fingerprint %016x",
			seed, len(r.Events), r.TotalViolations, r.Fingerprint)
		return r
	})
	if !ok {
		t.Fatalf("minimal failing seed: %d\n%s", rep.Seed, rep)
	}
}

// TestSoakFingerprintsInvariantToPooling runs the soak lane's seeds with
// buffer pooling on and again with the SLINGSHOT_POOL=off escape hatch:
// every seed's fingerprinted report must come out byte-identical, proving
// recycling changes only allocator traffic, never what the chaos schedule
// computes — across kills, migrations, fronthaul faults and all.
func TestSoakFingerprintsInvariantToPooling(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	prev := mem.SetEnabled(true)
	defer mem.SetEnabled(prev)
	profile := Light()
	for seed := uint64(1); seed <= 5; seed++ {
		mem.SetEnabled(true)
		on := Run(seed, profile)
		mem.SetEnabled(false)
		off := Run(seed, profile)
		if on.Fingerprint != off.Fingerprint {
			t.Fatalf("seed %d fingerprint differs: pooled %016x vs SLINGSHOT_POOL=off %016x",
				seed, on.Fingerprint, off.Fingerprint)
		}
		if on.String() != off.String() {
			t.Fatalf("seed %d report differs between pooling modes:\n--- pooled ---\n%s\n--- off ---\n%s",
				seed, on, off)
		}
	}
}

// TestChaosHeavyProfile drives the two-cell profile with an active and a
// standby kill through a couple of seeds.
func TestChaosHeavyProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy profile skipped in -short mode")
	}
	for seed := uint64(1); seed <= 2; seed++ {
		rep := Run(seed, Heavy())
		if rep.TotalViolations > 0 {
			t.Fatalf("seed %d:\n%s", seed, rep)
		}
		if rep.Migrations == 0 {
			t.Fatalf("seed %d executed no migrations:\n%s", seed, rep)
		}
	}
}

// TestSoakReportsMinimalFailingSeed stubs a violating run and checks the
// soak loop surfaces the smallest failing seed, not just any.
func TestSoakReportsMinimalFailingSeed(t *testing.T) {
	stub := func(seed uint64) *Report {
		rep := &Report{Seed: seed, Profile: "stub"}
		if seed >= 3 { // seeds 3..n all "fail"; 3 is minimal
			rep.TotalViolations = 1
			rep.Violations = []Violation{{Invariant: "stub", Detail: "injected"}}
		}
		return rep
	}
	rep, ok := Soak(10, stub)
	if ok {
		t.Fatal("stubbed violation not detected")
	}
	if rep.Seed != 3 {
		t.Fatalf("reported seed %d, want minimal failing seed 3", rep.Seed)
	}
	if rep.Err() == nil {
		t.Fatal("failing report must return a non-nil Err")
	}
}

// TestSoakReportsShardAware: one seed may span many shards (a fleet's
// per-cell reports); the soak must surface the first failing report in
// (seed, position) order — the minimal seed, then the lowest cell.
func TestSoakReportsShardAware(t *testing.T) {
	stub := func(seed uint64) []*Report {
		// Three "cells" per seed; seed 2 fails in cells 1 and 2.
		out := make([]*Report, 3)
		for cell := range out {
			rep := &Report{Seed: seed, Profile: fmt.Sprintf("fleet-cell%d", cell)}
			if seed == 2 && cell >= 1 {
				rep.TotalViolations = 1
				rep.Violations = []Violation{{Invariant: "stub", Detail: "injected"}}
			}
			out[cell] = rep
		}
		return out
	}
	rep, ok := SoakReports(5, stub)
	if ok {
		t.Fatal("stubbed fleet violation not detected")
	}
	if rep.Seed != 2 || rep.Profile != "fleet-cell1" {
		t.Fatalf("reported seed %d profile %q, want minimal (seed 2, fleet-cell1)", rep.Seed, rep.Profile)
	}

	// All-clean fleets pass.
	if _, ok := SoakReports(3, func(seed uint64) []*Report {
		return []*Report{{Seed: seed}, {Seed: seed}}
	}); !ok {
		t.Fatal("clean fleet soak reported failure")
	}
}

// TestChaosDeterminism runs one seed twice and demands byte-identical
// reports (events, metric series, fingerprint); a different seed must
// diverge.
func TestChaosDeterminism(t *testing.T) {
	a := Run(7, Light())
	b := Run(7, Light())
	if a.String() != b.String() {
		t.Fatalf("same seed produced different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	if len(a.Bins) == 0 {
		t.Fatal("no traffic bins recorded")
	}
	c := Run(8, Light())
	if c.Fingerprint == a.Fingerprint {
		t.Fatalf("different seeds produced identical fingerprint %016x", a.Fingerprint)
	}
}

// TestProfiles exercises name resolution and scaling.
func TestProfiles(t *testing.T) {
	for _, name := range []string{"light", "default", "heavy", ""} {
		if _, ok := ByName(name); !ok {
			t.Fatalf("profile %q not resolved", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown profile resolved")
	}
	p := Heavy().Scale(0.25)
	if p.Horizon >= Heavy().Horizon {
		t.Fatalf("Scale did not shrink horizon: %v", p.Horizon)
	}
	if p.Kills < 1 {
		t.Fatal("Scale dropped the kill below the floor of 1")
	}
	if full := Default().Scale(1.5); full.Horizon != Default().Horizon {
		t.Fatal("Scale >1 must clamp to the original")
	}
}

// TestPacketStamp round-trips the chaos traffic framing.
func TestPacketStamp(t *testing.T) {
	pkt := stampPacket(dirUp, 42, 12345, 400)
	if len(pkt) != 400 {
		t.Fatalf("len = %d", len(pkt))
	}
	seq, ok := parseSeq(pkt, dirUp)
	if !ok || seq != 12345 {
		t.Fatalf("parseSeq = %d, %v", seq, ok)
	}
	if _, ok := parseSeq(pkt, dirDown); ok {
		t.Fatal("direction tag not enforced")
	}
	if _, ok := parseSeq([]byte("short"), dirUp); ok {
		t.Fatal("short packet parsed")
	}
}

// TestCheckerFlagsRegression feeds the checker a hand-built violating
// observation stream and expects it to fire.
func TestCheckerFlagsRegression(t *testing.T) {
	c := &Checker{
		eng:          sim.NewEngine(),
		lastSlotInd:  make(map[uint16]uint64),
		lastFailover: make(map[uint16]sim.Time),
		droppedTTIs:  make(map[uint16]uint64),
		harqBuf:      make(map[harqKey]uint64),
		ulLast:       make(map[uint16]uint64),
		ulCount:      make(map[uint16]uint64),
		dlLast:       make(map[uint16]uint64),
		dlCount:      make(map[uint16]uint64),
	}
	// Slot regression.
	c.observeSlot(0, 100)
	c.observeSlot(0, 99)
	if c.Total != 1 || c.violations[0].Invariant != "tti-regression" {
		t.Fatalf("regression not flagged: %+v", c.violations)
	}
	// Unexplained gap (no failover in flight).
	c.observeSlot(0, 110)
	if c.Total != 2 {
		t.Fatalf("gap without failover not flagged (total=%d)", c.Total)
	}
	// Gap within a failover window, under the §8.2 bound: allowed.
	c.lastFailover[0] = c.eng.Now()
	c.observeSlot(0, 113)
	if c.Total != 2 {
		t.Fatalf("bounded failover gap wrongly flagged (total=%d)", c.Total)
	}
	// Gap within a failover window but over the bound: flagged.
	c.observeSlot(0, 120)
	if c.Total != 3 {
		t.Fatalf("oversized failover gap not flagged (total=%d)", c.Total)
	}
	// HARQ conservation: retransmission with a different TB hash.
	c.onULDecode(1, 0, 1, 0, true, 0xAAAA, false)
	c.onULDecode(1, 0, 1, 0, false, 0xBBBB, false)
	if c.Total != 4 {
		t.Fatalf("cross-TB combine not flagged (total=%d)", c.Total)
	}
	// Same hash retransmission is fine; decode success releases the buffer.
	c.onULDecode(1, 0, 2, 1, true, 0xCCCC, false)
	c.onULDecode(1, 0, 2, 1, false, 0xCCCC, true)
	c.onULDecode(1, 0, 2, 1, false, 0xDDDD, false) // buffer released: new TB ok
	if c.Total != 4 {
		t.Fatalf("legal HARQ sequence flagged (total=%d)", c.Total)
	}
	// RLC ordering: duplicate sequence number.
	c.ObserveUplink(1, stampPacket(dirUp, 1, 5, 64))
	c.ObserveUplink(1, stampPacket(dirUp, 1, 5, 64))
	if c.Total != 5 {
		t.Fatalf("duplicate delivery not flagged (total=%d)", c.Total)
	}
}
