package chaos

import "slingshot/internal/sim"

// Profile describes the shape of a randomized fault schedule: how long the
// run lasts, how many faults of each family are drawn, and how intense the
// fronthaul perturbation bursts are. The concrete fault times, targets and
// per-packet decisions are drawn from the run's seed, so (seed, profile)
// fully determines the schedule.
type Profile struct {
	Name string

	// Horizon is the virtual duration of the run; Settle is the fault-free
	// warmup before the first fault may fire (attach + link adaptation).
	Horizon sim.Time
	Settle  sim.Time

	// Cells is the number of cells (1 = the paper's single-cell testbed;
	// more co-locate primaries and secondaries across the two PHY servers).
	Cells int

	// Kills crashes the active PHY process (SIGKILL → in-switch detection
	// → failover). StandbyKills crashes the current hot standby instead.
	// A spare server is provisioned automatically when any kill is drawn.
	Kills        int
	StandbyKills int

	// Migrations draws planned zero-downtime migrations (migration storm).
	Migrations int

	// L2Upgrades replaces the L2 process mid-flow with state preserved.
	L2Upgrades int

	// RUGlitches stops an RU's slot clock for GlitchSlots slots.
	RUGlitches  int
	GlitchSlots int

	// RogueSlotInds injects stale slot indications into the L2-side Orion
	// tap, violating TTI monotonicity on purpose. Zero in every stock
	// profile: the fault exists to exercise the invariant checker and its
	// flight recorder deterministically (tests and drills only).
	RogueSlotInds int

	// Fronthaul perturbation bursts, each lasting BurstLen: random loss,
	// IQ corruption, reordering, and added link latency.
	LossBursts    int
	LossProb      float64
	CorruptBursts int
	CorruptProb   float64
	ReorderBursts int
	ReorderProb   float64
	LatencySpikes int
	SpikeExtra    sim.Time
	BurstLen      sim.Time

	// Background traffic: every TrafficPeriod each UE sends one uplink and
	// receives one downlink packet of PacketBytes, sequence-stamped so the
	// invariant checker can assert per-bearer in-order delivery.
	TrafficPeriod sim.Time
	PacketBytes   int
}

// Light is a short schedule without process kills: fronthaul perturbation
// and planned migrations only.
func Light() Profile {
	return Profile{
		Name:    "light",
		Horizon: 800 * sim.Millisecond,
		Settle:  120 * sim.Millisecond,
		Cells:   1,

		Migrations: 2,
		RUGlitches: 1, GlitchSlots: 3,
		LossBursts: 1, LossProb: 0.2,
		CorruptBursts: 1, CorruptProb: 0.2,
		LatencySpikes: 1, SpikeExtra: 120 * sim.Microsecond,
		BurstLen: 2 * sim.Millisecond,

		TrafficPeriod: 2 * sim.Millisecond,
		PacketBytes:   400,
	}
}

// Default is the standard soak schedule: one failover plus migrations, an
// L2 upgrade, an RU glitch and all four fronthaul perturbation families.
func Default() Profile {
	return Profile{
		Name:    "default",
		Horizon: 1500 * sim.Millisecond,
		Settle:  150 * sim.Millisecond,
		Cells:   1,

		Kills:      1,
		Migrations: 3,
		L2Upgrades: 1,
		RUGlitches: 1, GlitchSlots: 4,
		LossBursts: 2, LossProb: 0.25,
		CorruptBursts: 2, CorruptProb: 0.25,
		ReorderBursts: 1, ReorderProb: 0.2,
		LatencySpikes: 2, SpikeExtra: 150 * sim.Microsecond,
		BurstLen: 3 * sim.Millisecond,

		TrafficPeriod: 2 * sim.Millisecond,
		PacketBytes:   400,
	}
}

// Heavy is a two-cell schedule with co-located primaries/secondaries, an
// active kill and a standby kill, and a denser migration storm.
func Heavy() Profile {
	return Profile{
		Name:    "heavy",
		Horizon: 2500 * sim.Millisecond,
		Settle:  200 * sim.Millisecond,
		Cells:   2,

		Kills:        1,
		StandbyKills: 1,
		Migrations:   6,
		L2Upgrades:   2,
		RUGlitches:   2, GlitchSlots: 4,
		LossBursts: 3, LossProb: 0.25,
		CorruptBursts: 3, CorruptProb: 0.25,
		ReorderBursts: 2, ReorderProb: 0.2,
		LatencySpikes: 3, SpikeExtra: 150 * sim.Microsecond,
		BurstLen: 3 * sim.Millisecond,

		TrafficPeriod: 2 * sim.Millisecond,
		PacketBytes:   400,
	}
}

// ByName resolves a profile name ("light", "default", "heavy"); it reports
// false for unknown names.
func ByName(name string) (Profile, bool) {
	switch name {
	case "light":
		return Light(), true
	case "default", "":
		return Default(), true
	case "heavy":
		return Heavy(), true
	}
	return Profile{}, false
}

// Scale shrinks the schedule horizon (and fault counts proportionally) for
// quick smoke runs; s in (0,1]. Scaling up is clamped to the original.
func (p Profile) Scale(s float64) Profile {
	if s >= 1 || s <= 0 {
		return p
	}
	scaleN := func(n int) int {
		if n == 0 {
			return 0
		}
		m := int(float64(n) * s)
		if m < 1 {
			m = 1
		}
		return m
	}
	p.Horizon = sim.Time(float64(p.Horizon) * s)
	if p.Horizon < p.Settle+200*sim.Millisecond {
		p.Horizon = p.Settle + 200*sim.Millisecond
	}
	p.Kills = scaleN(p.Kills)
	p.StandbyKills = scaleN(p.StandbyKills)
	p.Migrations = scaleN(p.Migrations)
	p.L2Upgrades = scaleN(p.L2Upgrades)
	p.RUGlitches = scaleN(p.RUGlitches)
	p.RogueSlotInds = scaleN(p.RogueSlotInds)
	p.LossBursts = scaleN(p.LossBursts)
	p.CorruptBursts = scaleN(p.CorruptBursts)
	p.ReorderBursts = scaleN(p.ReorderBursts)
	p.LatencySpikes = scaleN(p.LatencySpikes)
	return p
}
