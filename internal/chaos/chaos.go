// Package chaos is a deterministic fault-injection engine for the
// simulated vRAN: from a single uint64 seed it draws a randomized fault
// schedule — PHY SIGKILLs, standby kills, migration storms, fronthaul
// loss/corruption/reorder bursts, link latency spikes, RU glitches, L2
// live upgrades — and executes it against a core.Deployment on the
// virtual clock while the cross-layer invariant Checker (invariants.go)
// watches every seam. The same (seed, profile) pair always reproduces
// the same schedule, the same packet-level perturbations, and the same
// metric series, so any violation is replayable from its seed alone.
package chaos

import (
	"fmt"
	"strings"

	"slingshot/internal/core"
	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/mem"
	"slingshot/internal/netmodel"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
	"slingshot/internal/trace"
)

// Traffic direction tags in the sequence-stamped chaos packets.
const (
	dirUp   = 0x55
	dirDown = 0xAA
)

// stampPacket builds one chaos traffic packet: "CH" magic, direction tag,
// flow id and a big-endian sequence number, padded to size.
func stampPacket(dir byte, flow uint16, seq uint64, size int) []byte {
	if size < 13 {
		size = 13
	}
	pkt := make([]byte, size)
	pkt[0], pkt[1], pkt[2] = 'C', 'H', dir
	pkt[3], pkt[4] = byte(flow>>8), byte(flow)
	for i := 0; i < 8; i++ {
		pkt[5+i] = byte(seq >> (56 - 8*i))
	}
	for i := 13; i < size; i++ {
		pkt[i] = byte(seq) ^ byte(i)
	}
	return pkt
}

// parseSeq recovers the sequence number from a chaos traffic packet; it
// reports false for packets that are not chaos-stamped for dir.
func parseSeq(pkt []byte, dir byte) (uint64, bool) {
	if len(pkt) < 13 || pkt[0] != 'C' || pkt[1] != 'H' || pkt[2] != dir {
		return 0, false
	}
	var seq uint64
	for i := 0; i < 8; i++ {
		seq = seq<<8 | uint64(pkt[5+i])
	}
	return seq, true
}

// TrafficPacket builds one sequence-stamped traffic packet in the chaos
// framing, understood by Checker.ObserveUplink/ObserveDownlink — exported
// so external traffic generators (the shard fleet) feed the same in-order
// delivery invariant.
func TrafficPacket(down bool, flow uint16, seq uint64, size int) []byte {
	dir := byte(dirUp)
	if down {
		dir = dirDown
	}
	return stampPacket(dir, flow, seq, size)
}

// interceptor sits on one fronthaul cable (it wraps the link's receiver)
// and applies the currently armed perturbations to eCPRI frames only.
// Burst executors toggle the probability fields; outside bursts every
// field is zero and frames pass through untouched.
type interceptor struct {
	eng   *sim.Engine
	rng   *sim.RNG
	inner netmodel.Receiver

	// rec records each perturbation as a fh-perturb event; cell and dir
	// (0=uplink, 1=downlink) locate the tapped cable. Frame delivery runs
	// on the event-loop goroutine, so emission is worker-count invariant.
	rec  *trace.Recorder
	cell uint16
	dir  uint8

	lossProb    float64
	corruptProb float64
	reorderProb float64
	extraDelay  sim.Time

	Dropped   uint64
	Corrupted uint64
	Reordered uint64
}

func (ic *interceptor) HandleFrame(f *netmodel.Frame) {
	if f.Type != netmodel.EtherTypeECPRI {
		ic.inner.HandleFrame(f)
		return
	}
	if ic.lossProb > 0 && ic.rng.Bool(ic.lossProb) {
		ic.Dropped++
		ic.perturb("loss", ic.Dropped, "chaos.fh.dropped")
		netmodel.ReleaseFrame(f)
		return
	}
	if ic.corruptProb > 0 && ic.rng.Bool(ic.corruptProb) {
		if g := corruptIQ(f, ic.rng); g != nil {
			ic.Corrupted++
			ic.perturb("corrupt", ic.Corrupted, "chaos.fh.corrupted")
			netmodel.ReleaseFrame(f)
			f = g
		}
	}
	delay := ic.extraDelay
	if ic.reorderProb > 0 && ic.rng.Bool(ic.reorderProb) {
		// Hold the frame long enough for later frames to overtake it.
		delay += 40 * sim.Microsecond
		ic.Reordered++
		ic.perturb("reorder", ic.Reordered, "chaos.fh.reordered")
	}
	if delay > 0 {
		held := f
		ic.eng.After(delay, "chaos.fh-delay", func() { ic.inner.HandleFrame(held) })
		return
	}
	ic.inner.HandleFrame(f)
}

// perturb records one applied perturbation in the trace and bumps its
// per-family counter.
func (ic *interceptor) perturb(family string, cum uint64, counter string) {
	if ic.rec == nil {
		return
	}
	ic.rec.EmitLabeled(trace.KindFronthaulLoss, family, 0, ic.cell, 0, uint64(ic.dir), cum)
	ic.rec.Metrics().Counter(counter).Inc()
}

// corruptIQ flips 1-3 bytes inside the U-plane IQ payload region of an
// eCPRI frame. Only the BFP IQ bytes are touched: the header, the C-plane
// and the Aux sidecar model CRC-protected control in a real fronthaul, and
// corrupting them would forge grants rather than emulate channel noise.
// Returns nil when the frame is not a corruptible U-plane packet.
func corruptIQ(f *netmodel.Frame, rng *sim.RNG) *netmodel.Frame {
	data := f.Payload
	const hdr = 21 // fronthaul fixed header length
	if len(data) < hdr || data[0]>>4 != fronthaul.CurrentVersion ||
		fronthaul.MessageType(data[0]&0x0F) != fronthaul.MsgIQData {
		return nil
	}
	plen := int(data[1])<<8 | int(data[2])
	if plen == 0 || len(data) < hdr+plen {
		return nil
	}
	buf := append(mem.GetBytesCap(len(data)), data...)
	for n := 1 + rng.Intn(3); n > 0; n-- {
		buf[hdr+rng.Intn(plen)] ^= byte(1 + rng.Intn(255))
	}
	g := netmodel.GetFrame()
	*g = *f
	g.Payload = buf
	return g
}

// TrafficBin aggregates delivered application bytes over one 10 ms window
// of virtual time; the bin series is the run's metric fingerprint input.
type TrafficBin struct {
	UL uint64
	DL uint64
}

const binWidth = 10 * sim.Millisecond

// CellDrop reports the total slot-indication gap observed for one cell.
type CellDrop struct {
	Cell    uint16
	Dropped uint64
}

// FlowStat reports per-UE in-order delivered packet counts.
type FlowStat struct {
	UE uint16
	UL uint64
	DL uint64
}

// Report is the deterministic outcome of one chaos run.
type Report struct {
	Seed    uint64
	Profile string
	Horizon sim.Time

	Events          []string
	Violations      []Violation
	TotalViolations int

	Migrations int
	Detections int
	Dropped    []CellDrop
	Flows      []FlowStat
	Bins       []TrafficBin

	Fingerprint uint64

	// Flight is the flight-recorder dump captured at the first invariant
	// violation: the trace timeline leading up to it plus counter deltas
	// since the checker attached. Empty on clean runs. It is rendered after
	// the fingerprint line and excluded from the fingerprint itself, so
	// clean-run fingerprints are unchanged by tracing.
	Flight string
}

func (r *Report) addBin(at sim.Time, n int, down bool) {
	i := int(at / binWidth)
	if i < 0 {
		return
	}
	for len(r.Bins) <= i {
		r.Bins = append(r.Bins, TrafficBin{})
	}
	if down {
		r.Bins[i].DL += uint64(n)
	} else {
		r.Bins[i].UL += uint64(n)
	}
}

// body renders everything the fingerprint covers.
func (r *Report) body() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run: seed=%d profile=%s horizon=%.3fs\n",
		r.Seed, r.Profile, float64(r.Horizon)/float64(sim.Second))
	fmt.Fprintf(&b, "switch: %d migrations executed, %d failures detected\n",
		r.Migrations, r.Detections)
	for _, c := range r.Dropped {
		fmt.Fprintf(&b, "cell %d: %d TTIs dropped total\n", c.Cell, c.Dropped)
	}
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "ue %d: %d uplink / %d downlink packets in order\n", f.UE, f.UL, f.DL)
	}
	fmt.Fprintf(&b, "traffic series: %d bins, digest %016x\n", len(r.Bins), r.seriesDigest())
	fmt.Fprintf(&b, "events (%d):\n", len(r.Events))
	for _, e := range r.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "violations: %d\n", r.TotalViolations)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// seriesDigest hashes the 10 ms UL/DL byte series.
func (r *Report) seriesDigest() uint64 {
	h := fnvOffset
	for _, bin := range r.Bins {
		for _, v := range [2]uint64{bin.UL, bin.DL} {
			for i := 0; i < 8; i++ {
				h ^= uint64(byte(v >> (8 * i)))
				h *= fnvPrime
			}
		}
	}
	return h
}

// String renders the report with its fingerprint line, followed by the
// flight-recorder dump when the run violated an invariant.
func (r *Report) String() string {
	s := r.body() + fmt.Sprintf("fingerprint: %016x\n", r.Fingerprint)
	if r.TotalViolations > 0 && r.Flight != "" {
		s += r.Flight
	}
	return s
}

// Finalize computes the fingerprint from the report's rendered body.
// chaos.Run calls it implicitly; external report builders (per-cell fleet
// reports) call it once after filling in the fields.
func (r *Report) Finalize() { r.Fingerprint = fnv64(r.body()) }

// Err returns a non-nil error when any invariant was violated.
func (r *Report) Err() error {
	if r.TotalViolations == 0 {
		return nil
	}
	first := ""
	if len(r.Violations) > 0 {
		first = ": " + r.Violations[0].String()
	}
	return fmt.Errorf("chaos: seed %d violated %d invariant(s)%s", r.Seed, r.TotalViolations, first)
}

const (
	fnvOffset = uint64(0xcbf29ce484222325)
	fnvPrime  = uint64(0x100000001b3)
)

func fnv64(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

type runner struct {
	seed uint64
	p    Profile
	d    *core.Deployment
	eng  *sim.Engine
	chk  *Checker
	rep  *Report
	rec  *trace.Recorder

	cells []uint16
	ues   []uint16
	taps  map[uint16][2]*interceptor

	ulSeq map[uint16]uint64
	dlSeq map[uint16]uint64
}

// Run executes one chaos schedule and returns its report. The same
// (seed, profile) pair reproduces the identical run.
func Run(seed uint64, p Profile) *Report {
	rep, _ := RunTraced(seed, p)
	return rep
}

// RunTraced is Run, additionally returning the run's trace recorder: the
// full cross-layer event ring and counter registry the flight recorder
// samples from. Every chaos run records (the recorder is how violations
// get explained); RunTraced just exposes it for export and the
// determinism tests.
func RunTraced(seed uint64, p Profile) (*Report, *trace.Recorder) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Trace = trace.NewRecorder(0)
	if p.Kills+p.StandbyKills > 0 {
		cfg.SpareServer = 3
	}
	// Additional cells co-locate crossed primary/secondary roles in the
	// two existing PHY processes (§8's multi-RU placement).
	for i := 1; i < p.Cells; i++ {
		cell := uint16(i)
		cfg.ExtraCells = append(cfg.ExtraCells, core.CellSpec{
			Cell:      cell,
			Seed:      cfg.CellSeed + uint64(cell)*0x1001,
			Primary:   cfg.SecondaryServer,
			Secondary: cfg.PrimaryServer,
			UEs: []core.UESpec{
				{ID: uint16(100*i + 1), Name: fmt.Sprintf("cell%d-a", i), MeanSNRdB: 24},
				{ID: uint16(100*i + 2), Name: fmt.Sprintf("cell%d-b", i), MeanSNRdB: 21},
			},
		})
	}

	d := core.NewSlingshot(cfg)
	r := &runner{
		seed:  seed,
		p:     p,
		d:     d,
		eng:   d.Engine,
		rec:   cfg.Trace,
		taps:  make(map[uint16][2]*interceptor),
		ulSeq: make(map[uint16]uint64),
		dlSeq: make(map[uint16]uint64),
		rep: &Report{
			Seed:    seed,
			Profile: p.Name,
			Horizon: p.Horizon,
		},
	}
	r.cells = append(r.cells, cfg.Cell)
	for _, spec := range cfg.ExtraCells {
		r.cells = append(r.cells, spec.Cell)
	}
	r.ues = append(r.ues, ueIDs(cfg.UEs)...)
	for _, spec := range cfg.ExtraCells {
		r.ues = append(r.ues, ueIDs(spec.UEs)...)
	}

	r.chk = Attach(d)

	// The chaos RNG root forks off the deployment's (already fully forked)
	// root stream, so chaos draws never perturb component randomness.
	crng := d.RNG.Fork(0xC7A055ED)
	r.installInterceptors(crng)
	r.installTrafficSinks()

	d.Start()
	r.scheduleTraffic()
	r.scheduleFaults(crng)
	d.Run(p.Horizon)
	d.Stop()
	r.chk.Finish()
	return r.finalize(), r.rec
}

func ueIDs(specs []core.UESpec) []uint16 {
	out := make([]uint16, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.ID)
	}
	return out
}

// installInterceptors wraps each cell's two fronthaul cables (RU→switch
// and switch→RU) with perturbation hooks.
func (r *runner) installInterceptors(crng *sim.RNG) {
	for _, cell := range r.cells {
		addr := netmodel.RUAddr(cell)
		up := r.d.Links[addr]         // RU → switch
		down := r.d.Switch.Port(addr) // switch → RU
		icUp := &interceptor{eng: r.eng, rng: crng.Fork(0x100 + uint64(cell)), inner: up.To,
			rec: r.rec, cell: cell, dir: 0}
		up.To = icUp
		icDown := &interceptor{eng: r.eng, rng: crng.Fork(0x200 + uint64(cell)), inner: down.To,
			rec: r.rec, cell: cell, dir: 1}
		down.To = icDown
		r.taps[cell] = [2]*interceptor{icUp, icDown}
	}
}

// installTrafficSinks routes delivered packets into the invariant checker
// and the 10 ms metric bins.
func (r *runner) installTrafficSinks() {
	r.d.OnUplink(func(ueID uint16, pkt []byte) {
		r.chk.ObserveUplink(ueID, pkt)
		r.rep.addBin(r.eng.Now(), len(pkt), false)
	})
	for _, id := range r.ues {
		u := r.d.UEs[id]
		uid := id
		inner := u.OnDownlink
		u.OnDownlink = func(pkt []byte) {
			r.chk.ObserveDownlink(uid, pkt)
			r.rep.addBin(r.eng.Now(), len(pkt), true)
			if inner != nil {
				inner(pkt)
			}
		}
	}
}

// scheduleTraffic drives sequence-stamped uplink and downlink packets for
// every UE; traffic ends shortly before the horizon so tails drain.
func (r *runner) scheduleTraffic() {
	period := r.p.TrafficPeriod
	if period <= 0 {
		return
	}
	stopAt := r.p.Horizon - 30*sim.Millisecond
	var tick func()
	tick = func() {
		for _, id := range r.ues {
			u := r.d.UEs[id]
			r.ulSeq[id]++
			u.SendUplink(stampPacket(dirUp, id, r.ulSeq[id], r.p.PacketBytes))
			r.dlSeq[id]++
			r.d.SendDownlink(id, stampPacket(dirDown, id, r.dlSeq[id], r.p.PacketBytes))
		}
		if r.eng.Now()+period < stopAt {
			r.eng.After(period, "chaos.traffic", tick)
		}
	}
	r.eng.At(40*sim.Millisecond, "chaos.traffic", tick)
}

func (r *runner) event(format string, args ...any) {
	r.rep.Events = append(r.rep.Events,
		fmt.Sprintf("%9.3fms  %s", float64(r.eng.Now())/float64(sim.Millisecond), fmt.Sprintf(format, args...)))
}

// scheduleFaults draws the whole fault schedule up front from dedicated
// RNG streams — one per fault family, so profiles compose independently.
func (r *runner) scheduleFaults(crng *sim.RNG) {
	p := r.p

	// Process kills: segmented across the window so detection, failover
	// and spare reprovisioning complete between consecutive kills.
	if kills := p.Kills + p.StandbyKills; kills > 0 {
		st := crng.Fork(1)
		lo, hi := p.Settle, p.Horizon-250*sim.Millisecond
		if hi <= lo {
			hi = lo + 20*sim.Millisecond
		}
		seg := (hi - lo) / sim.Time(kills)
		for i := 0; i < kills; i++ {
			jitter := sim.Time(st.Float64() * float64(seg) * 0.6)
			t := lo + sim.Time(i)*seg + jitter
			standby := i >= p.Kills
			r.eng.At(t, "chaos.kill", func() { r.execKill(standby) })
		}
	}

	if p.Migrations > 0 {
		st := crng.Fork(2)
		lo, hi := p.Settle, p.Horizon-150*sim.Millisecond
		if hi <= lo {
			hi = lo + 20*sim.Millisecond
		}
		for i := 0; i < p.Migrations; i++ {
			t := lo + sim.Time(st.Float64()*float64(hi-lo))
			cell := r.cells[st.Intn(len(r.cells))]
			r.eng.At(t, "chaos.migrate", func() { r.execMigrate(cell) })
		}
	}

	if p.L2Upgrades > 0 {
		st := crng.Fork(3)
		lo, hi := p.Settle, p.Horizon-150*sim.Millisecond
		if hi <= lo {
			hi = lo + 20*sim.Millisecond
		}
		for i := 0; i < p.L2Upgrades; i++ {
			t := lo + sim.Time(st.Float64()*float64(hi-lo))
			r.eng.At(t, "chaos.upgrade", r.execUpgrade)
		}
	}

	if p.RUGlitches > 0 {
		st := crng.Fork(4)
		lo, hi := p.Settle, p.Horizon-150*sim.Millisecond
		if hi <= lo {
			hi = lo + 20*sim.Millisecond
		}
		for i := 0; i < p.RUGlitches; i++ {
			t := lo + sim.Time(st.Float64()*float64(hi-lo))
			cell := r.cells[st.Intn(len(r.cells))]
			r.eng.At(t, "chaos.glitch", func() { r.execGlitch(cell) })
		}
	}

	if p.RogueSlotInds > 0 {
		st := crng.Fork(9)
		lo, hi := p.Settle, p.Horizon-150*sim.Millisecond
		if hi <= lo {
			hi = lo + 20*sim.Millisecond
		}
		for i := 0; i < p.RogueSlotInds; i++ {
			t := lo + sim.Time(st.Float64()*float64(hi-lo))
			cell := r.cells[st.Intn(len(r.cells))]
			r.eng.At(t, "chaos.rogue-slot", func() { r.execRogueSlot(cell) })
		}
	}

	r.scheduleBursts(crng.Fork(5), p.LossBursts, "loss",
		func(ic *interceptor) { ic.lossProb = p.LossProb },
		func(ic *interceptor) { ic.lossProb = 0 })
	r.scheduleBursts(crng.Fork(6), p.CorruptBursts, "corrupt",
		func(ic *interceptor) { ic.corruptProb = p.CorruptProb },
		func(ic *interceptor) { ic.corruptProb = 0 })
	r.scheduleBursts(crng.Fork(7), p.ReorderBursts, "reorder",
		func(ic *interceptor) { ic.reorderProb = p.ReorderProb },
		func(ic *interceptor) { ic.reorderProb = 0 })
	r.scheduleBursts(crng.Fork(8), p.LatencySpikes, "latency-spike",
		func(ic *interceptor) { ic.extraDelay = p.SpikeExtra },
		func(ic *interceptor) { ic.extraDelay = 0 })
}

// scheduleBursts arms one perturbation family on a random cell/direction
// for BurstLen at each drawn time.
func (r *runner) scheduleBursts(st *sim.RNG, count int, kind string, arm, disarm func(*interceptor)) {
	if count <= 0 {
		return
	}
	p := r.p
	lo, hi := p.Settle, p.Horizon-p.BurstLen-100*sim.Millisecond
	if hi <= lo {
		hi = lo + 20*sim.Millisecond
	}
	dirName := [2]string{"uplink", "downlink"}
	for i := 0; i < count; i++ {
		t := lo + sim.Time(st.Float64()*float64(hi-lo))
		cell := r.cells[st.Intn(len(r.cells))]
		dir := st.Intn(2)
		r.eng.At(t, "chaos.burst", func() {
			ic := r.taps[cell][dir]
			arm(ic)
			r.rec.EmitLabeled(trace.KindChaosFault, kind, 0, cell, 0, uint64(dir), 0)
			r.event("%s burst on cell %d %s fronthaul (%.1fms)",
				kind, cell, dirName[dir], float64(p.BurstLen)/float64(sim.Millisecond))
			r.eng.After(p.BurstLen, "chaos.burst-end", func() { disarm(ic) })
		})
	}
}

// execKill crashes the primary cell's active (or standby) PHY process and
// schedules standby reprovisioning onto the spare server.
func (r *runner) execKill(standby bool) {
	cell := r.cells[0]
	var server uint8
	kind := "active"
	if standby {
		server = r.d.L2Orion.StandbyServer(cell)
		kind = "standby"
	} else {
		server = r.d.ActivePHYServerOf(cell)
	}
	p := r.d.PHYs[server]
	if server == 0 || p == nil || p.Crashed() {
		r.event("%s kill skipped (target unavailable)", kind)
		return
	}
	r.event("SIGKILL %s PHY on server %d", kind, server)
	r.rec.EmitLabeled(trace.KindChaosFault, "kill", server, cell, 0, 0, 0)
	r.d.KillServer(server)
	r.eng.After(15*sim.Millisecond, "chaos.reprovision", r.reprovision)
}

// reprovision points every cell whose standby died at the spare server,
// re-initializing the standby from Orion's stored CONFIG (§6.3).
func (r *runner) reprovision() {
	spare := r.d.Cfg.SpareServer
	sp := r.d.PHYs[spare]
	if spare == 0 || sp == nil || sp.Crashed() {
		return
	}
	for _, cell := range r.cells {
		standby := r.d.L2Orion.StandbyServer(cell)
		active := r.d.L2Orion.ActiveServer(cell)
		if active == spare {
			continue // the spare already serves this cell
		}
		if p := r.d.PHYs[standby]; standby != 0 && p != nil && !p.Crashed() {
			continue // standby healthy
		}
		if err := r.d.ProvisionSpare(cell); err == nil {
			r.event("cell %d standby reprovisioned on spare server %d", cell, spare)
		}
	}
}

func (r *runner) execMigrate(cell uint16) {
	boundary, err := r.d.PlannedMigrationOf(cell)
	if err != nil {
		r.event("cell %d planned migration refused (%v)", cell, err)
		return
	}
	r.rec.EmitLabeled(trace.KindChaosFault, "migrate", 0, cell, 0, boundary, 0)
	r.event("cell %d planned migration armed at slot %d", cell, boundary)
}

// execRogueSlot replays a stale slot indication into the L2-side Orion
// tap, deliberately violating TTI monotonicity — a deterministic drill
// for the invariant checker and its flight recorder (never drawn by the
// stock profiles).
func (r *runner) execRogueSlot(cell uint16) {
	slot := uint64(r.eng.Now() / phy.TTI)
	if slot > 10 {
		slot -= 10
	}
	r.rec.EmitLabeled(trace.KindChaosFault, "rogue-slot", 0, cell, 0, slot, 0)
	r.event("cell %d rogue stale slot indication replayed (slot %d)", cell, slot)
	if tap := r.d.L2Orion.ToL2; tap != nil {
		tap(&fapi.SlotIndication{CellID: cell, Slot: slot})
	}
}

func (r *runner) execUpgrade() {
	if _, err := r.d.UpgradeL2(true); err != nil {
		r.event("l2 upgrade failed (%v)", err)
		return
	}
	// UpgradeL2 rewires the Orion→L2 tap to the fresh process, which
	// removes the checker's wrap; re-arm it.
	r.chk.TapL2()
	r.rec.EmitLabeled(trace.KindChaosFault, "l2-upgrade", 0, 0, 0, 0, 0)
	r.event("l2 upgraded in place, state preserved")
}

// execGlitch stops a cell's RU slot clock for GlitchSlots slots (an RU
// firmware hiccup); downlink reception keeps working, only UL collection
// and status packets pause.
func (r *runner) execGlitch(cell uint16) {
	radio := r.d.RUs[cell]
	dur := sim.Time(r.p.GlitchSlots) * phy.TTI
	radio.Stop()
	r.rec.EmitLabeled(trace.KindChaosFault, "ru-glitch", 0, cell, 0, uint64(r.p.GlitchSlots), 0)
	r.event("cell %d RU glitch: slot clock stopped for %d slots", cell, r.p.GlitchSlots)
	r.eng.After(dur, "chaos.glitch-end", func() {
		radio.Start()
		r.event("cell %d RU glitch over, slot clock resumed", cell)
	})
}

func (r *runner) finalize() *Report {
	rep := r.rep
	rep.Violations = r.chk.Violations()
	rep.TotalViolations = r.chk.Total
	rep.Flight = r.chk.Flight()
	rep.Migrations = len(r.d.Switch.MigrationLog)
	rep.Detections = len(r.d.Switch.DetectionLog)
	for _, cell := range r.cells {
		rep.Dropped = append(rep.Dropped, CellDrop{Cell: cell, Dropped: r.chk.DroppedTTIs(cell)})
	}
	for _, id := range r.ues {
		ul, dl := r.chk.Delivered(id)
		rep.Flows = append(rep.Flows, FlowStat{UE: id, UL: ul, DL: dl})
	}
	rep.Finalize()
	return rep
}
