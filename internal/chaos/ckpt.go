package chaos

import (
	"sort"

	"slingshot/internal/ckpt/wire"
	"slingshot/internal/sim"
)

// SnapshotTo writes the checker's cross-layer watch state: violation
// totals, the flight-recorder dump (if one latched), and every per-cell /
// per-HARQ cursor map in sorted key order. Restoring a run must land the
// checker on identical cursors or later violations would differ between
// the restored and the straight run.
func (c *Checker) SnapshotTo(w *wire.W) {
	w.U32(uint32(c.Total))
	w.U32(uint32(len(c.violations)))
	for _, v := range c.violations {
		w.Str(v.Invariant)
		w.I64(int64(v.At))
		w.Str(v.Detail)
	}
	w.Str(c.flight)

	snapCellU64(w, c.lastSlotInd)
	snapCellI64(w, c.lastFailover)
	snapCellU64(w, c.droppedTTIs)
	snapCellU64(w, c.ulLast)
	snapCellU64(w, c.dlLast)
	snapCellU64(w, c.ulCount)
	snapCellU64(w, c.dlCount)

	hkeys := make([]harqKey, 0, len(c.harqBuf))
	for k := range c.harqBuf {
		hkeys = append(hkeys, k)
	}
	sort.Slice(hkeys, func(i, j int) bool {
		a, b := hkeys[i], hkeys[j]
		if a.server != b.server {
			return a.server < b.server
		}
		if a.cell != b.cell {
			return a.cell < b.cell
		}
		if a.ue != b.ue {
			return a.ue < b.ue
		}
		return a.proc < b.proc
	})
	w.U32(uint32(len(hkeys)))
	for _, k := range hkeys {
		w.U8(k.server)
		w.U16(k.cell)
		w.U16(k.ue)
		w.U8(k.proc)
		w.U64(c.harqBuf[k])
	}

	servers := make([]int, 0, len(c.ruServing))
	for ru := range c.ruServing {
		servers = append(servers, int(ru))
	}
	sort.Ints(servers)
	w.U32(uint32(len(servers)))
	for _, ru := range servers {
		w.U8(uint8(ru))
		w.U8(c.ruServing[uint8(ru)])
	}
}

func snapCellU64(w *wire.W, m map[uint16]uint64) {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U16(uint16(id))
		w.U64(m[uint16(id)])
	}
}

func snapCellI64(w *wire.W, m map[uint16]sim.Time) {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U16(uint16(id))
		w.I64(int64(m[uint16(id)]))
	}
}
